(* Tests for the gray-failure / overload robustness stack: the bounded
   per-site service model, deadline propagation, hedged reads, circuit
   breakers and admission control — plus the regression for the
   decorrelated-jitter-without-rng silent fallback. *)

module Types = Blockrep.Types
module Cluster = Blockrep.Cluster
module Device = Blockrep.Reliable_device
module Stub = Blockrep.Driver_stub
module Robustness = Blockrep.Robustness
module Breaker = Blockrep.Breaker
module Experiment = Workload.Experiment
module Chaos = Check.Chaos
module Block = Blockdev.Block

(* ------------------------------------------------------------------ *)
(* Sim.Server: the bounded per-site work queue                         *)
(* ------------------------------------------------------------------ *)

let test_server_fifo_and_shed () =
  let e = Sim.Engine.create () in
  let s = Sim.Server.create e ~capacity:2 in
  let order = ref [] in
  let job tag = fun () -> order := tag :: !order in
  (* One in service + two waiting fills the machine; the fourth sheds. *)
  Alcotest.(check bool) "first accepted" true (Sim.Server.submit s ~cost:1.0 (job "a"));
  Alcotest.(check bool) "second accepted" true (Sim.Server.submit s ~cost:1.0 (job "b"));
  Alcotest.(check bool) "third accepted" true (Sim.Server.submit s ~cost:1.0 (job "c"));
  Alcotest.(check bool) "fourth shed" false (Sim.Server.submit s ~cost:1.0 (job "d"));
  Alcotest.(check int) "shed counted" 1 (Sim.Server.shed s);
  Alcotest.(check int) "depth counts in-service" 3 (Sim.Server.depth s);
  Sim.Engine.run_until e 10.0;
  Alcotest.(check (list string)) "FIFO order" [ "a"; "b"; "c" ] (List.rev !order);
  Alcotest.(check int) "served" 3 (Sim.Server.served s);
  Alcotest.(check bool) "idle after drain" false (Sim.Server.busy s)

let test_server_rate_factor () =
  let e = Sim.Engine.create () in
  let s = Sim.Server.create e ~capacity:8 in
  let done_at = ref nan in
  Sim.Server.set_rate_factor s 10.0;
  ignore (Sim.Server.submit s ~cost:1.0 (fun () -> done_at := Sim.Engine.now e) : bool);
  Sim.Engine.run_until e 100.0;
  Alcotest.(check (float 1e-9)) "10x slower service" 10.0 !done_at;
  (match Sim.Server.set_rate_factor s 0.0 with
  | () -> Alcotest.fail "rate factor 0 accepted"
  | exception Invalid_argument _ -> ())

let test_server_flood_and_clear () =
  let e = Sim.Engine.create () in
  let s = Sim.Server.create e ~capacity:4 in
  Sim.Server.flood s ~count:10 ~cost:1.0;
  (* 1 in service + 4 waiting; the other 5 shed. *)
  Alcotest.(check int) "flood fills" 5 (Sim.Server.depth s);
  Alcotest.(check int) "flood sheds the rest" 5 (Sim.Server.shed s);
  let ran = ref false in
  Alcotest.(check bool) "legit work shed behind flood" false
    (Sim.Server.submit s ~cost:0.1 (fun () -> ran := true));
  Sim.Server.clear s;
  Alcotest.(check int) "clear drops everything" 5 (Sim.Server.dropped s);
  Alcotest.(check int) "empty after clear" 0 (Sim.Server.depth s);
  Sim.Engine.run_until e 50.0;
  Alcotest.(check bool) "cleared jobs never run" false !ran;
  Alcotest.(check int) "nothing served" 0 (Sim.Server.served s)

(* ------------------------------------------------------------------ *)
(* Breaker state machine                                               *)
(* ------------------------------------------------------------------ *)

let test_breaker_lifecycle () =
  let e = Sim.Engine.create () in
  let b = Breaker.create e ~threshold:2 ~cooldown:5.0 in
  Alcotest.(check bool) "starts closed" true (Breaker.state b = Breaker.Closed);
  Breaker.record_failure b;
  Alcotest.(check bool) "below threshold stays closed" true (Breaker.allows b);
  Breaker.record_failure b;
  Alcotest.(check bool) "trips open" true (Breaker.state b = Breaker.Open);
  Alcotest.(check bool) "open refuses" false (Breaker.allows b);
  Alcotest.(check int) "one trip" 1 (Breaker.trips b);
  Sim.Engine.run_until e 6.0;
  Alcotest.(check bool) "half-open after cooldown" true (Breaker.state b = Breaker.Half_open);
  Alcotest.(check bool) "half-open allows a probe" true (Breaker.allows b);
  Breaker.record_failure b;
  Alcotest.(check bool) "failed probe re-opens" false (Breaker.allows b);
  Alcotest.(check int) "re-open is not a new trip" 1 (Breaker.trips b);
  Sim.Engine.run_until e 12.0;
  Breaker.record_success b;
  Alcotest.(check bool) "successful probe closes" true (Breaker.state b = Breaker.Closed);
  Breaker.record_failure b;
  Alcotest.(check bool) "run reset by success" true (Breaker.allows b)

(* ------------------------------------------------------------------ *)
(* Satellite regression: Decorrelated jitter demands an rng            *)
(* ------------------------------------------------------------------ *)

let test_decorrelated_requires_rng () =
  let config =
    Blockrep.Config.make_exn ~scheme:Types.Available_copy ~n_sites:3 ~n_blocks:8 ~seed:7 ()
  in
  let cluster = Cluster.create config in
  let policy = { (Blockrep.Retry.default_policy ()) with jitter = Blockrep.Retry.Decorrelated } in
  (match Stub.create ~policy cluster with
  | _ -> Alcotest.fail "Decorrelated without rng must be rejected at create"
  | exception Invalid_argument _ -> ());
  (* With an rng the same policy is fine and operations go through. *)
  let stub = Stub.create ~policy ~rng:(Random.State.make [| 11 |]) cluster in
  (match Stub.write_block stub 0 (Block.of_string "jittered") with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "write through decorrelated stub failed")

(* ------------------------------------------------------------------ *)
(* Deadline propagation                                                *)
(* ------------------------------------------------------------------ *)

(* The deadline property: no protocol round opens at or past its
   operation's deadline.  Round-start probes fire before any request is
   sent, so a violation here means a sub-request would have been issued
   for an operation that already missed its budget. *)
let test_no_round_opens_past_deadline () =
  let env = Chaos.overload_env ~seed:23 Types.Available_copy in
  let cluster = Chaos.cluster_of_env env in
  let engine = Cluster.engine cluster in
  let deadline_rounds = ref 0 and late_opens = ref 0 in
  Blockrep.Runtime.on_round_start (Cluster.runtime cluster)
    (fun ~coordinator:_ ~deadline ~expected:_ ->
      match deadline with
      | None -> ()
      | Some d ->
          incr deadline_rounds;
          if Sim.Engine.now engine >= d then incr late_opens);
  let outcome = Chaos.run_against env ~cluster ~schedule:(Chaos.generate_schedule env) in
  Alcotest.(check bool) "overload run passes the oracle" true (Chaos.passed outcome);
  Alcotest.(check bool) "deadlines actually propagated" true (!deadline_rounds > 0);
  Alcotest.(check int) "no round opened past its deadline" 0 !late_opens

let test_deadline_budget_surfaces () =
  let robustness = { Robustness.off with deadlines = true; op_budget = Some 12.5 } in
  let config =
    Blockrep.Config.make_exn ~scheme:Types.Available_copy ~n_sites:3 ~n_blocks:8 ~seed:3
      ~robustness ()
  in
  let d = Device.of_config config in
  Alcotest.(check (option (float 1e-9))) "budget visible" (Some 12.5)
    (Stub.deadline_budget (Device.stub d));
  let off = Device.of_config (Blockrep.Config.make_exn ~scheme:Types.Available_copy ~n_sites:3 ~n_blocks:8 ~seed:3 ()) in
  Alcotest.(check (option (float 1e-9))) "no budget when off" None
    (Stub.deadline_budget (Device.stub off))

(* ------------------------------------------------------------------ *)
(* Twin runs: determinism of the whole stack                           *)
(* ------------------------------------------------------------------ *)

(* Two runs from the same seed must agree bit-for-bit — counters,
   quantiles, everything — with the full robustness stack on and a
   gray-slow site in play.  This is the determinism guarantee the chaos
   harness's replayability rests on. *)
let test_twin_runs_bit_identical () =
  let run () =
    Experiment.measure_brownout ~scheme:Types.Available_copy ~n_sites:3
      ~offered_rate:(2.0 *. Experiment.saturation_rate ())
      ~robustness:true ~slow:(0, 10.0) ~horizon:150.0 ~seed:41 ()
  in
  let a = run () and b = run () in
  Alcotest.(check int) "issued" a.Experiment.issued b.Experiment.issued;
  Alcotest.(check int) "succeeded" a.succeeded b.succeeded;
  Alcotest.(check int) "timeouts" a.timeouts b.timeouts;
  Alcotest.(check int) "rejected" a.rejected b.rejected;
  Alcotest.(check int) "shed" a.shed b.shed;
  Alcotest.(check int) "hedged" a.hedged b.hedged;
  Alcotest.(check int) "hedge wins" a.hedge_wins b.hedge_wins;
  Alcotest.(check int) "breaker trips" a.breaker_trips b.breaker_trips;
  Alcotest.(check int) "messages shed" a.messages_shed b.messages_shed;
  Alcotest.(check (float 0.0)) "p50 bit-identical" a.latency_p50 b.latency_p50;
  Alcotest.(check (float 0.0)) "p99 bit-identical" a.latency_p99 b.latency_p99

(* Robustness.off must be behaviourally identical to a config that never
   mentions robustness at all: same traffic, same stub counters. *)
let test_robustness_off_is_inert () =
  let drive config =
    let d = Device.of_config config in
    let c = Device.cluster d in
    for i = 0 to 19 do
      ignore (Device.write_block d (i mod 8) (Block.of_string (Printf.sprintf "v%d" i)) : bool);
      ignore (Device.read_block d (i mod 8) : Block.t option)
    done;
    Cluster.fail_site c 1;
    ignore (Device.read_block d 0 : Block.t option);
    Cluster.repair_site c 1;
    Cluster.settle c;
    (Net.Traffic.total (Cluster.traffic c), Net.Traffic.total_bytes (Cluster.traffic c),
     Stub.requests (Device.stub d), Stub.site_attempts (Device.stub d))
  in
  let plain =
    drive (Blockrep.Config.make_exn ~scheme:Types.Available_copy ~n_sites:3 ~n_blocks:8 ~seed:13 ())
  in
  let off =
    drive
      (Blockrep.Config.make_exn ~scheme:Types.Available_copy ~n_sites:3 ~n_blocks:8 ~seed:13
         ~robustness:Robustness.off ())
  in
  Alcotest.(check (pair (pair int int) (pair int int)))
    "identical traffic and counters"
    ((let a, b, c, d = plain in ((a, b), (c, d))))
    ((let a, b, c, d = off in ((a, b), (c, d))))

(* ------------------------------------------------------------------ *)
(* Gray failure: slowness degrades the tail, never correctness         *)
(* ------------------------------------------------------------------ *)

let brownout ?slow ~robustness () =
  Experiment.measure_brownout ~scheme:Types.Available_copy ~n_sites:3
    ~offered_rate:(2.0 *. Experiment.saturation_rate ())
    ~robustness ?slow ~horizon:200.0 ()

let test_slow_site_degrades_p99_not_correctness () =
  let healthy = brownout ~robustness:false () in
  let gray = brownout ~slow:(0, 10.0) ~robustness:false () in
  Alcotest.(check bool) "healthy counters reconcile" true healthy.Experiment.conserved;
  Alcotest.(check bool) "gray counters reconcile" true gray.Experiment.conserved;
  Alcotest.(check bool) "gray run still serves" true (gray.succeeded > 0);
  Alcotest.(check bool) "p99 degrades without the stack" true
    (gray.latency_p99 > 2.0 *. healthy.latency_p99)

let test_hedged_reads_restore_p99 () =
  let healthy = brownout ~robustness:true () in
  let gray = brownout ~slow:(0, 10.0) ~robustness:true () in
  Alcotest.(check bool) "hedges fired" true (gray.Experiment.hedged > 0);
  Alcotest.(check bool) "hedges won" true (gray.hedge_wins > 0);
  Alcotest.(check bool) "p99 within 2x of healthy baseline" true
    (gray.latency_p99 <= 2.0 *. healthy.Experiment.latency_p99)

let test_robustness_strictly_better_past_saturation () =
  let off = brownout ~robustness:false () in
  let on = brownout ~robustness:true () in
  Alcotest.(check bool) "goodput strictly better" true (on.Experiment.goodput > off.Experiment.goodput);
  Alcotest.(check bool) "p99 strictly better" true (on.latency_p99 < off.latency_p99);
  Alcotest.(check bool) "on counters reconcile" true on.conserved;
  Alcotest.(check bool) "off counters reconcile" true off.conserved

(* ------------------------------------------------------------------ *)
(* Admission control at the device                                     *)
(* ------------------------------------------------------------------ *)

let test_admission_sheds_fast () =
  let robustness = { Robustness.off with admission = Some 1 } in
  let config =
    Blockrep.Config.make_exn ~scheme:Types.Available_copy ~n_sites:3 ~n_blocks:8 ~seed:5
      ~service:Net.Service_model.default ~robustness ()
  in
  let d = Device.of_config config in
  let first = ref None and second = ref None in
  Device.read_block_async d 0 (fun r -> first := Some r);
  Alcotest.(check int) "one in flight" 1 (Device.in_flight d);
  Device.read_block_async d 1 (fun r -> second := Some r);
  (match !second with
  | Some (Error Types.Overloaded) -> ()
  | _ -> Alcotest.fail "second op should be refused fast with Overloaded");
  Cluster.settle (Device.cluster d);
  (match !first with
  | Some (Ok _) -> ()
  | _ -> Alcotest.fail "admitted op should complete");
  Alcotest.(check int) "drained" 0 (Device.in_flight d);
  let deg = Device.degradation d in
  Alcotest.(check int) "shed counted" 1 deg.Device.shed;
  Alcotest.(check bool) "conservation holds" true (Device.degradation_conserved deg)

(* ------------------------------------------------------------------ *)
(* Availability monitor: truncated outages                             *)
(* ------------------------------------------------------------------ *)

let test_current_outage () =
  let config =
    Blockrep.Config.make_exn ~scheme:Types.Available_copy ~n_sites:3 ~n_blocks:8 ~seed:17 ()
  in
  let c = Cluster.create config in
  let m = Cluster.monitor c in
  Alcotest.(check (option (float 0.0))) "up at start" None (Blockrep.Availability_monitor.current_outage m);
  for s = 0 to 2 do Cluster.fail_site c s done;
  let t0 = Sim.Engine.now (Cluster.engine c) in
  Cluster.run_until c (t0 +. 7.0);
  (match Blockrep.Availability_monitor.current_outage m with
  | Some elapsed -> Alcotest.(check bool) "outage elapsed grows" true (elapsed >= 7.0 -. 1e-9)
  | None -> Alcotest.fail "total failure should be an open outage");
  (* Available-copy: after a total failure only the last site down may
     restore service, and that was site 2; bring the others back too so
     recovery has peers to talk to. *)
  Cluster.repair_site c 2;
  Cluster.repair_site c 1;
  Cluster.repair_site c 0;
  Cluster.settle c;
  Alcotest.(check (option (float 0.0))) "closed after repair" None
    (Blockrep.Availability_monitor.current_outage m)

(* ------------------------------------------------------------------ *)
(* Chaos events and the scenario DSL                                   *)
(* ------------------------------------------------------------------ *)

let test_overload_schedule_roundtrip () =
  let env = Chaos.overload_env ~seed:9 Types.Dynamic_voting in
  let schedule = Chaos.generate_schedule env in
  let has p = List.exists (fun (_, e) -> p e) schedule in
  Alcotest.(check bool) "schedules slow sites" true
    (has (function Chaos.Slow_site _ -> true | _ -> false));
  Alcotest.(check bool) "schedules bursts" true
    (has (function Chaos.Burst _ -> true | _ -> false));
  Alcotest.(check bool) "schedules queue floods" true
    (has (function Chaos.Queue_flood _ -> true | _ -> false));
  match Chaos.schedule_of_string (Chaos.schedule_to_string schedule) with
  | Error e -> Alcotest.fail ("overload schedule does not round-trip: " ^ e)
  | Ok parsed ->
      Alcotest.(check int) "round-trips every event" (List.length schedule) (List.length parsed);
      Alcotest.(check string) "text is stable"
        (Chaos.schedule_to_string schedule)
        (Chaos.schedule_to_string parsed)

let test_overload_chaos_passes () =
  List.iter
    (fun scheme ->
      let outcome = Chaos.run (Chaos.overload_env ~seed:31 scheme) in
      Alcotest.(check bool)
        (Types.scheme_to_string scheme ^ " overload envelope is violation-free")
        true (Chaos.passed outcome))
    [ Types.Available_copy; Types.Voting ]

let overload_scenario =
  {|
scheme ac
sites 3
blocks 8
seed 21
service-model true
horizon 200

@5   write 0 2 stable
@10  slow-site 1 10
@20  burst 0 12
@30  queue-flood 2 48
@40  expect-read 0 2 stable
@60  slow-site 1 1
@80  expect-read 0 2 stable
@90  expect-available true
@120 check-invariants
|}

let test_scenario_overload_events () =
  match Scenario.check overload_scenario with
  | Ok () -> ()
  | Error failures -> Alcotest.fail (String.concat "; " failures)

let () =
  Alcotest.run "robustness"
    [
      ( "server",
        [
          Alcotest.test_case "fifo and shed" `Quick test_server_fifo_and_shed;
          Alcotest.test_case "rate factor" `Quick test_server_rate_factor;
          Alcotest.test_case "flood and clear" `Quick test_server_flood_and_clear;
        ] );
      ("breaker", [ Alcotest.test_case "lifecycle" `Quick test_breaker_lifecycle ]);
      ( "retry",
        [ Alcotest.test_case "decorrelated requires rng" `Quick test_decorrelated_requires_rng ] );
      ( "deadlines",
        [
          Alcotest.test_case "no round opens past deadline" `Quick test_no_round_opens_past_deadline;
          Alcotest.test_case "budget surfaces" `Quick test_deadline_budget_surfaces;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "twin runs bit-identical" `Quick test_twin_runs_bit_identical;
          Alcotest.test_case "robustness off is inert" `Quick test_robustness_off_is_inert;
        ] );
      ( "gray",
        [
          Alcotest.test_case "slow site degrades p99 not correctness" `Quick
            test_slow_site_degrades_p99_not_correctness;
          Alcotest.test_case "hedged reads restore p99" `Quick test_hedged_reads_restore_p99;
          Alcotest.test_case "strictly better past saturation" `Quick
            test_robustness_strictly_better_past_saturation;
        ] );
      ("admission", [ Alcotest.test_case "sheds fast" `Quick test_admission_sheds_fast ]);
      ("monitor", [ Alcotest.test_case "current outage" `Quick test_current_outage ]);
      ( "chaos",
        [
          Alcotest.test_case "overload schedule round-trips" `Quick test_overload_schedule_roundtrip;
          Alcotest.test_case "overload envelope passes" `Quick test_overload_chaos_passes;
        ] );
      ( "scenario",
        [ Alcotest.test_case "overload events" `Quick test_scenario_overload_events ] );
    ]
