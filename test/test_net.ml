(* Tests for Net: Message, Traffic, Network. *)

module Payload = struct
  type t = Ping of int | Data of string

  let category = function
    | Ping _ -> Net.Message.Vote_request
    | Data _ -> Net.Message.Block_transfer

  let size = function Ping _ -> 8 | Data s -> String.length s

  (* A real checksummed frame, so encoded-delivery tests exercise the same
     rejection machinery the production [Wire] payload does. *)
  let encode = function
    | Ping n ->
        Codec.Frame.encode ~payload:(fun w ->
            Codec.Buf.u8 w 1;
            Codec.Buf.varint w n)
    | Data s ->
        Codec.Frame.encode ~payload:(fun w ->
            Codec.Buf.u8 w 2;
            Codec.Buf.string w s)

  let decode_frame buf =
    match Codec.Frame.decode buf with
    | Error (Codec.Frame.Truncated _) -> Error Net.Message.Reject_truncated
    | Error (Codec.Frame.Bad_magic _) -> Error Net.Message.Reject_bad_magic
    | Error (Codec.Frame.Trailing _) -> Error Net.Message.Reject_trailing
    | Error (Codec.Frame.Crc_mismatch _) -> Error Net.Message.Reject_crc
    | Ok r -> (
        match
          match Codec.Buf.r_u8 r with
          | 1 -> Ok (Ping (Codec.Buf.r_varint r))
          | 2 -> Ok (Data (Codec.Buf.r_string r))
          | _ -> Error Net.Message.Reject_bad_tag
        with
        | Ok m when Codec.Buf.at_end r -> Ok m
        | Ok _ -> Error Net.Message.Reject_malformed
        | (Error _ as e) -> e
        | exception Codec.Buf.Short -> Error Net.Message.Reject_malformed
        | exception Codec.Buf.Bad _ -> Error Net.Message.Reject_malformed)
end

module N = Net.Network.Make (Payload)

let make ?(mode = Net.Network.Multicast) ?(latency = Util.Dist.Constant 1.0) ?(n_sites = 4) () =
  let engine = Sim.Engine.create () in
  let net = N.create engine ~mode ~latency ~rng:(Util.Prng.create 1) ~n_sites in
  (engine, net)

(* ------------------------------------------------------------------ *)
(* Message / Traffic                                                   *)
(* ------------------------------------------------------------------ *)

let test_message_strings_unique () =
  let names = List.map Net.Message.to_string Net.Message.all in
  Alcotest.(check int) "no duplicate names" (List.length names)
    (List.length (List.sort_uniq compare names))

let test_traffic_record () =
  let t = Net.Traffic.create () in
  Net.Traffic.record t Net.Message.Read Net.Message.Vote_request 3;
  Net.Traffic.record t Net.Message.Write Net.Message.Vote_request 2;
  Net.Traffic.record t Net.Message.Read Net.Message.Block_transfer 1;
  Alcotest.(check int) "total" 6 (Net.Traffic.total t);
  Alcotest.(check int) "by category" 5 (Net.Traffic.by_category t Net.Message.Vote_request);
  Alcotest.(check int) "by operation" 4 (Net.Traffic.by_operation t Net.Message.Read);
  Alcotest.(check int) "cell" 3 (Net.Traffic.of_cell t Net.Message.Read Net.Message.Vote_request)

let test_traffic_reset () =
  let t = Net.Traffic.create () in
  Net.Traffic.record t Net.Message.Recovery Net.Message.Recovery_probe 5;
  Net.Traffic.reset t;
  Alcotest.(check int) "reset" 0 (Net.Traffic.total t)

let test_traffic_rejects_negative () =
  let t = Net.Traffic.create () in
  Alcotest.check_raises "negative count" (Invalid_argument "Traffic.record: negative count")
    (fun () -> Net.Traffic.record t Net.Message.Read Net.Message.Vote_reply (-1))

let test_traffic_snapshot () =
  let t = Net.Traffic.create () in
  Net.Traffic.record t Net.Message.Write Net.Message.Block_update 7;
  Alcotest.(check int) "one non-zero cell" 1 (List.length (Net.Traffic.snapshot t))

let test_traffic_rejects () =
  let t = Net.Traffic.create () in
  Net.Traffic.record_rejected t Net.Message.Reject_crc;
  Net.Traffic.record_rejected t Net.Message.Reject_crc;
  Net.Traffic.record_rejected t Net.Message.Reject_bad_tag;
  Net.Traffic.record_quarantined t;
  Alcotest.(check int) "per class" 2 (Net.Traffic.rejected_of t Net.Message.Reject_crc);
  Alcotest.(check int) "sum over classes" 3 (Net.Traffic.frames_rejected t);
  (* Quarantined frames were never decoded, so they carry no reject class
     and stay out of the frames_rejected sum. *)
  Alcotest.(check int) "quarantined separate" 1 (Net.Traffic.frames_quarantined t);
  let snap = Net.Traffic.rejected_snapshot t in
  Alcotest.(check int) "snapshot has the non-zero classes" 2 (List.length snap);
  Net.Traffic.reset t;
  Alcotest.(check int) "reset clears rejects" 0 (Net.Traffic.frames_rejected t);
  Alcotest.(check int) "reset clears quarantined" 0 (Net.Traffic.frames_quarantined t)

(* ------------------------------------------------------------------ *)
(* Network                                                             *)
(* ------------------------------------------------------------------ *)

let collect_at net id log =
  N.register net ~id (fun ~from payload -> log := (from, payload) :: !log)

let test_send_delivers () =
  let engine, net = make () in
  let log = ref [] in
  collect_at net 1 log;
  N.send net ~op:Net.Message.Read ~from:0 ~dst:1 (Payload.Ping 7);
  Alcotest.(check int) "not delivered before latency" 0 (List.length !log);
  Sim.Engine.run engine;
  Alcotest.(check int) "delivered" 1 (List.length !log);
  (match !log with
  | [ (from, Payload.Ping 7) ] -> Alcotest.(check int) "sender id" 0 from
  | _ -> Alcotest.fail "wrong delivery");
  Alcotest.(check (float 1e-9)) "took one latency" 1.0 (Sim.Engine.now engine)

let test_send_counts_one () =
  let _, net = make () in
  N.send net ~op:Net.Message.Read ~from:0 ~dst:1 (Payload.Ping 1);
  Alcotest.(check int) "one transmission" 1 (Net.Traffic.total (N.traffic net))

let test_send_rejects_self () =
  let _, net = make () in
  Alcotest.check_raises "self send" (Invalid_argument "Network.send: local access needs no transmission")
    (fun () -> N.send net ~op:Net.Message.Read ~from:2 ~dst:2 (Payload.Ping 0))

let test_send_from_down_site_rejected () =
  let _, net = make () in
  N.set_up net 0 false;
  Alcotest.check_raises "dead sender" (Invalid_argument "Network.send: sender is down") (fun () ->
      N.send net ~op:Net.Message.Read ~from:0 ~dst:1 (Payload.Ping 0))

let test_down_receiver_drops () =
  let engine, net = make () in
  let log = ref [] in
  collect_at net 1 log;
  N.set_up net 1 false;
  N.send net ~op:Net.Message.Read ~from:0 ~dst:1 (Payload.Ping 1);
  Sim.Engine.run engine;
  Alcotest.(check int) "dropped" 0 (List.length !log);
  Alcotest.(check int) "but still counted as sent" 1 (Net.Traffic.total (N.traffic net))

let test_receiver_fails_in_flight () =
  let engine, net = make () in
  let log = ref [] in
  collect_at net 1 log;
  N.send net ~op:Net.Message.Read ~from:0 ~dst:1 (Payload.Ping 1);
  (* The receiver dies before the message lands. *)
  ignore (Sim.Engine.schedule engine ~delay:0.5 (fun () -> N.set_up net 1 false));
  Sim.Engine.run engine;
  Alcotest.(check int) "lost with the site" 0 (List.length !log)

let test_broadcast_multicast_counts_one () =
  let engine, net = make ~mode:Net.Network.Multicast () in
  let logs = Array.init 4 (fun _ -> ref []) in
  for i = 0 to 3 do
    collect_at net i logs.(i)
  done;
  N.broadcast net ~op:Net.Message.Write ~from:0 (Payload.Data "x");
  Sim.Engine.run engine;
  Alcotest.(check int) "one transmission in multicast" 1 (Net.Traffic.total (N.traffic net));
  Alcotest.(check int) "sender not delivered to" 0 (List.length !(logs.(0)));
  for i = 1 to 3 do
    Alcotest.(check int) (Printf.sprintf "site %d got it" i) 1 (List.length !(logs.(i)))
  done

let test_broadcast_unicast_counts_n_minus_1 () =
  let engine, net = make ~mode:Net.Network.Unicast () in
  N.set_up net 3 false;
  N.broadcast net ~op:Net.Message.Write ~from:0 (Payload.Data "x");
  Sim.Engine.run engine;
  (* Down destinations still cost a transmission: the sender cannot know. *)
  Alcotest.(check int) "n-1 transmissions in unicast" 3 (Net.Traffic.total (N.traffic net))

let test_partition_blocks () =
  let engine, net = make () in
  let log = ref [] in
  collect_at net 3 log;
  N.partition net [ [ 0; 1 ]; [ 2; 3 ] ];
  Alcotest.(check bool) "same group reachable" true (N.reachable net 2 3);
  Alcotest.(check bool) "cross group unreachable" false (N.reachable net 0 3);
  N.send net ~op:Net.Message.Read ~from:0 ~dst:3 (Payload.Ping 1);
  Sim.Engine.run engine;
  Alcotest.(check int) "message did not cross" 0 (List.length !log);
  N.heal net;
  N.send net ~op:Net.Message.Read ~from:0 ~dst:3 (Payload.Ping 2);
  Sim.Engine.run engine;
  Alcotest.(check int) "after heal it flows" 1 (List.length !log)

let test_partition_isolates_missing_sites () =
  let _, net = make () in
  N.partition net [ [ 0; 1 ] ];
  Alcotest.(check bool) "listed pair" true (N.reachable net 0 1);
  Alcotest.(check bool) "unlisted site isolated" false (N.reachable net 2 3);
  Alcotest.(check bool) "unlisted to listed" false (N.reachable net 2 0)

let test_up_sites () =
  let _, net = make () in
  N.set_up net 2 false;
  Alcotest.(check (list int)) "up sites" [ 0; 1; 3 ] (N.up_sites net)

let test_latency_distribution_applied () =
  let engine, net = make ~latency:(Util.Dist.Constant 2.5) ~n_sites:2 () in
  let at = ref 0.0 in
  N.register net ~id:1 (fun ~from:_ _ -> at := Sim.Engine.now engine);
  N.send net ~op:Net.Message.Read ~from:0 ~dst:1 (Payload.Ping 1);
  Sim.Engine.run engine;
  Alcotest.(check (float 1e-9)) "constant latency applied" 2.5 !at

let test_delivered_counter () =
  let engine, net = make () in
  let log = ref [] in
  collect_at net 1 log;
  N.set_up net 2 false;
  N.broadcast net ~op:Net.Message.Write ~from:0 (Payload.Data "y");
  Sim.Engine.run engine;
  (* 3 destinations, one down, one without a handler (site 3): handler-less
     deliveries do not count. *)
  Alcotest.(check int) "delivered to registered up sites" 1 (N.messages_delivered net)

(* ------------------------------------------------------------------ *)
(* Encoded delivery                                                    *)
(* ------------------------------------------------------------------ *)

(* One run of a fixed message program, returning everything observable. *)
let run_program ~encoded ?faults () =
  let engine, net = make ~n_sites:3 () in
  (match faults with
  | Some profile -> N.install_faults net (Net.Faults.of_seed ~seed:42 profile)
  | None -> ());
  if encoded then N.set_encoded net true;
  let logs = Array.init 3 (fun _ -> ref []) in
  for i = 0 to 2 do
    collect_at net i logs.(i)
  done;
  N.send net ~op:Net.Message.Read ~from:0 ~dst:1 (Payload.Ping 7);
  N.send net ~op:Net.Message.Write ~from:1 ~dst:2 (Payload.Data "hello");
  N.broadcast net ~op:Net.Message.Write ~from:2 (Payload.Data "world");
  Sim.Engine.run engine;
  (net, logs, Sim.Engine.now engine)

let test_encoded_default_off () =
  let _, net = make () in
  Alcotest.(check bool) "encoded delivery is opt-in" false (N.encoded net)

let test_encoded_twin_run_identical () =
  (* Encoded delivery with no corruption must be bit-identical to the
     in-heap path: same deliveries, same virtual time, same traffic. *)
  let net_a, logs_a, end_a = run_program ~encoded:false () in
  let net_b, logs_b, end_b = run_program ~encoded:true () in
  Alcotest.(check (float 0.0)) "same end time" end_a end_b;
  Alcotest.(check int) "same traffic total" (Net.Traffic.total (N.traffic net_a))
    (Net.Traffic.total (N.traffic net_b));
  Alcotest.(check int) "same delivered" (N.messages_delivered net_a) (N.messages_delivered net_b);
  for i = 0 to 2 do
    Alcotest.(check bool)
      (Printf.sprintf "site %d saw the same messages" i)
      true
      (!(logs_a.(i)) = !(logs_b.(i)))
  done;
  Alcotest.(check int) "no rejects" 0 (Net.Traffic.frames_rejected (N.traffic net_b));
  Alcotest.(check int) "no retransmissions" 0 (N.frames_retransmitted net_b)

let test_encoded_ambient_corruption_recovers () =
  (* Ambient bit flips on every link: the bounded link-layer redelivery
     must still get every message through, and every corruption draw must
     be classified (the conservation identity). *)
  let profile = Net.Faults.make_exn ~corruption:{ Net.Faults.no_corruption with bit_flip = 0.4 } () in
  let net, logs, _ = run_program ~encoded:true ~faults:profile () in
  (* Disable quarantine interference for this test by checking it did not
     trip (threshold 3 consecutive failures at p=0.4 is unlikely but
     possible; the seed is fixed, so this is deterministic either way). *)
  let delivered = List.length !(logs.(1)) + List.length !(logs.(2)) + List.length !(logs.(0)) in
  Alcotest.(check int) "all four deliveries landed" 4 delivered;
  Alcotest.(check bool) "some frames were damaged" true
    (match N.faults net with Some f -> Net.Faults.corrupted_deliveries f > 0 | None -> false);
  Alcotest.(check bool) "rejected frames were retransmitted" true
    (N.frames_retransmitted net >= Net.Traffic.frames_rejected (N.traffic net));
  Alcotest.(check bool) "conservation" true (N.corruption_conserved net)

let test_persistent_corruptor_quarantined () =
  (* A persistent corruptor (every frame damaged) must burn through the
     strike threshold and land in quarantine: 3 rejects (each
     retransmitted), then the 4th attempt is discarded undecoded and the
     redelivery chain stops. *)
  let engine, net = make ~n_sites:2 () in
  let f = Net.Faults.of_seed ~seed:7 Net.Faults.pristine in
  Net.Faults.set_link f ~from:0 ~dst:1 Net.Faults.persistent_corruptor;
  N.install_faults net f;
  N.set_encoded net true;
  let log = ref [] in
  collect_at net 1 log;
  N.send net ~op:Net.Message.Read ~from:0 ~dst:1 (Payload.Ping 1);
  Sim.Engine.run engine;
  Alcotest.(check int) "nothing delivered" 0 (List.length !log);
  Alcotest.(check int) "threshold rejects" 3 (Net.Traffic.frames_rejected (N.traffic net));
  Alcotest.(check int) "then quarantined" 1 (Net.Traffic.frames_quarantined (N.traffic net));
  Alcotest.(check int) "one quarantine trip" 1 (N.quarantine_trips net);
  Alcotest.(check int) "retransmissions stopped at the trip" 3 (N.frames_retransmitted net);
  Alcotest.(check int) "every attempt was damaged" 4 (Net.Faults.corrupted_deliveries f);
  Alcotest.(check bool) "conservation" true (N.corruption_conserved net);
  (* After the cooldown the link is usable again. *)
  Net.Faults.set_link f ~from:0 ~dst:1 Net.Faults.pristine;
  Sim.Engine.run_until engine 30.0;
  N.send net ~op:Net.Message.Read ~from:0 ~dst:1 (Payload.Ping 2);
  Sim.Engine.run engine;
  Alcotest.(check int) "clean frame flows after cooldown" 1 (List.length !log)

let test_reject_hook_sees_failures () =
  let engine, net = make ~n_sites:2 () in
  let f = Net.Faults.of_seed ~seed:7 Net.Faults.pristine in
  Net.Faults.set_link f ~from:0 ~dst:1 Net.Faults.persistent_corruptor;
  N.install_faults net f;
  N.set_encoded net true;
  N.register net ~id:1 (fun ~from:_ _ -> ());
  let hook_calls = ref [] in
  N.set_reject_hook net (fun ~dst ~from reject -> hook_calls := (dst, from, reject) :: !hook_calls);
  N.send net ~op:Net.Message.Read ~from:0 ~dst:1 (Payload.Ping 1);
  Sim.Engine.run engine;
  Alcotest.(check int) "hook fired per reject" 3 (List.length !hook_calls);
  List.iter
    (fun (dst, from, _) ->
      Alcotest.(check int) "receiver" 1 dst;
      Alcotest.(check int) "sender" 0 from)
    !hook_calls

let () =
  Alcotest.run "net"
    [
      ( "traffic",
        [
          Alcotest.test_case "category names unique" `Quick test_message_strings_unique;
          Alcotest.test_case "record/query" `Quick test_traffic_record;
          Alcotest.test_case "reset" `Quick test_traffic_reset;
          Alcotest.test_case "negative rejected" `Quick test_traffic_rejects_negative;
          Alcotest.test_case "snapshot" `Quick test_traffic_snapshot;
          Alcotest.test_case "reject classes" `Quick test_traffic_rejects;
        ] );
      ( "network",
        [
          Alcotest.test_case "send delivers after latency" `Quick test_send_delivers;
          Alcotest.test_case "send counts one" `Quick test_send_counts_one;
          Alcotest.test_case "self send rejected" `Quick test_send_rejects_self;
          Alcotest.test_case "dead sender rejected" `Quick test_send_from_down_site_rejected;
          Alcotest.test_case "down receiver drops" `Quick test_down_receiver_drops;
          Alcotest.test_case "receiver fails in flight" `Quick test_receiver_fails_in_flight;
          Alcotest.test_case "multicast broadcast costs 1" `Quick test_broadcast_multicast_counts_one;
          Alcotest.test_case "unicast broadcast costs n-1" `Quick test_broadcast_unicast_counts_n_minus_1;
          Alcotest.test_case "partitions block traffic" `Quick test_partition_blocks;
          Alcotest.test_case "partition isolates unlisted" `Quick test_partition_isolates_missing_sites;
          Alcotest.test_case "up_sites" `Quick test_up_sites;
          Alcotest.test_case "latency applied" `Quick test_latency_distribution_applied;
          Alcotest.test_case "delivered counter" `Quick test_delivered_counter;
        ] );
      ( "encoded",
        [
          Alcotest.test_case "off by default" `Quick test_encoded_default_off;
          Alcotest.test_case "twin run identical" `Quick test_encoded_twin_run_identical;
          Alcotest.test_case "ambient corruption recovers" `Quick
            test_encoded_ambient_corruption_recovers;
          Alcotest.test_case "persistent corruptor quarantined" `Quick
            test_persistent_corruptor_quarantined;
          Alcotest.test_case "reject hook" `Quick test_reject_hook_sees_failures;
        ] );
    ]
