(* Tests for Sim: Heap, Engine, Process. *)

(* ------------------------------------------------------------------ *)
(* Heap                                                                *)
(* ------------------------------------------------------------------ *)

let int_heap () = Sim.Heap.create ~cmp:Int.compare

let test_heap_order () =
  let h = int_heap () in
  List.iter (Sim.Heap.push h) [ 5; 1; 4; 1; 3; 9; 2 ];
  let rec drain acc = match Sim.Heap.pop h with Some x -> drain (x :: acc) | None -> List.rev acc in
  Alcotest.(check (list int)) "sorted extraction" [ 1; 1; 2; 3; 4; 5; 9 ] (drain [])

let test_heap_empty () =
  let h = int_heap () in
  Alcotest.(check bool) "is_empty" true (Sim.Heap.is_empty h);
  Alcotest.(check (option int)) "pop empty" None (Sim.Heap.pop h);
  Alcotest.(check (option int)) "peek empty" None (Sim.Heap.peek h)

let test_heap_peek () =
  let h = int_heap () in
  Sim.Heap.push h 3;
  Sim.Heap.push h 1;
  Alcotest.(check (option int)) "peek min" (Some 1) (Sim.Heap.peek h);
  Alcotest.(check int) "peek does not remove" 2 (Sim.Heap.size h)

let test_heap_clear () =
  let h = int_heap () in
  List.iter (Sim.Heap.push h) [ 1; 2; 3 ];
  Sim.Heap.clear h;
  Alcotest.(check int) "cleared" 0 (Sim.Heap.size h)

let test_heap_filter () =
  let h = int_heap () in
  List.iter (Sim.Heap.push h) [ 5; 1; 4; 2; 3 ];
  Sim.Heap.filter_in_place h (fun x -> x mod 2 = 1);
  Alcotest.(check int) "survivors" 3 (Sim.Heap.size h);
  let rec drain acc = match Sim.Heap.pop h with Some x -> drain (x :: acc) | None -> List.rev acc in
  Alcotest.(check (list int)) "odd survivors in order" [ 1; 3; 5 ] (drain [])

let test_heap_filter_drops_references () =
  (* Regression: filter_in_place compacted live elements but left the old
     tail of the backing array populated, pinning dropped elements (and
     everything their closures captured) against the GC. *)
  let h = Sim.Heap.create ~cmp:(fun (a, _) (b, _) -> Int.compare a b) in
  let dropped = ref [] in
  for i = 1 to 64 do
    let payload = Bytes.make 16 'x' in
    if i > 32 then dropped := Weak.create 1 :: !dropped;
    (match !dropped with
    | w :: _ when i > 32 -> Weak.set w 0 (Some payload)
    | _ -> ());
    Sim.Heap.push h (i, payload)
  done;
  Sim.Heap.filter_in_place h (fun (i, _) -> i <= 32);
  Alcotest.(check int) "survivors" 32 (Sim.Heap.size h);
  Gc.full_major ();
  List.iter
    (fun w ->
      if Weak.check w 0 then Alcotest.fail "dropped element still pinned by the heap's tail")
    !dropped;
  (* Dropping everything must release everything too. *)
  let w = Weak.create 1 in
  let payload = Bytes.make 16 'y' in
  Weak.set w 0 (Some payload);
  Sim.Heap.push h (0, payload);
  Sim.Heap.filter_in_place h (fun _ -> false);
  Alcotest.(check int) "emptied" 0 (Sim.Heap.size h);
  Gc.full_major ();
  if Weak.check w 0 then Alcotest.fail "emptied heap still pins its former contents"

let test_heap_grows () =
  let h = int_heap () in
  for i = 1000 downto 1 do
    Sim.Heap.push h i
  done;
  Alcotest.(check int) "size" 1000 (Sim.Heap.size h);
  Alcotest.(check (option int)) "min" (Some 1) (Sim.Heap.peek h)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap drains in sorted order" ~count:300
    QCheck.(list small_int)
    (fun xs ->
      let h = int_heap () in
      List.iter (Sim.Heap.push h) xs;
      let rec drain acc = match Sim.Heap.pop h with Some x -> drain (x :: acc) | None -> List.rev acc in
      drain [] = List.sort compare xs)

(* ------------------------------------------------------------------ *)
(* Engine                                                              *)
(* ------------------------------------------------------------------ *)

let test_engine_fires_in_time_order () =
  let e = Sim.Engine.create () in
  let log = ref [] in
  let note tag () = log := tag :: !log in
  ignore (Sim.Engine.schedule e ~delay:3.0 (note "c"));
  ignore (Sim.Engine.schedule e ~delay:1.0 (note "a"));
  ignore (Sim.Engine.schedule e ~delay:2.0 (note "b"));
  Sim.Engine.run e;
  Alcotest.(check (list string)) "time order" [ "a"; "b"; "c" ] (List.rev !log)

let test_engine_fifo_at_equal_times () =
  let e = Sim.Engine.create () in
  let log = ref [] in
  for i = 1 to 5 do
    ignore (Sim.Engine.schedule e ~delay:1.0 (fun () -> log := i :: !log))
  done;
  Sim.Engine.run e;
  Alcotest.(check (list int)) "fifo among simultaneous events" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let test_engine_clock_advances () =
  let e = Sim.Engine.create () in
  let seen = ref [] in
  ignore (Sim.Engine.schedule e ~delay:2.5 (fun () -> seen := Sim.Engine.now e :: !seen));
  ignore (Sim.Engine.schedule e ~delay:1.5 (fun () -> seen := Sim.Engine.now e :: !seen));
  Sim.Engine.run e;
  Alcotest.(check (list (float 1e-9))) "clock at event times" [ 1.5; 2.5 ] (List.rev !seen);
  Alcotest.(check (float 1e-9)) "final clock" 2.5 (Sim.Engine.now e)

let test_engine_cancel () =
  let e = Sim.Engine.create () in
  let fired = ref false in
  let h = Sim.Engine.schedule e ~delay:1.0 (fun () -> fired := true) in
  Sim.Engine.cancel e h;
  Sim.Engine.run e;
  Alcotest.(check bool) "cancelled event did not fire" false !fired

let test_engine_cancel_does_not_leak_past_horizon () =
  (* A cancelled event before the horizon must not cause an event beyond
     the horizon to fire when skipped. *)
  let e = Sim.Engine.create () in
  let fired = ref false in
  let h = Sim.Engine.schedule e ~delay:1.0 (fun () -> ()) in
  ignore (Sim.Engine.schedule e ~delay:10.0 (fun () -> fired := true));
  Sim.Engine.cancel e h;
  Sim.Engine.run_until e 5.0;
  Alcotest.(check bool) "beyond-horizon event pending" false !fired;
  Alcotest.(check (float 1e-9)) "clock at horizon" 5.0 (Sim.Engine.now e);
  Sim.Engine.run e;
  Alcotest.(check bool) "fires later" true !fired

let test_engine_run_until () =
  let e = Sim.Engine.create () in
  let count = ref 0 in
  for i = 1 to 10 do
    ignore (Sim.Engine.schedule e ~delay:(float_of_int i) (fun () -> incr count))
  done;
  Sim.Engine.run_until e 5.0;
  Alcotest.(check int) "only first five" 5 !count;
  Sim.Engine.run_until e 20.0;
  Alcotest.(check int) "the rest" 10 !count;
  Alcotest.(check (float 1e-9)) "clock at horizon even with no events" 20.0 (Sim.Engine.now e)

let test_engine_reentrant_run_until_never_rewinds () =
  (* Regression: an event handler that drives the engine reentrantly (a
     synchronous client inside a scheduled event — e.g. a cache flush on
     failover) used to have its progress undone when the outer run_until
     snapped the clock back to its own horizon.  Virtual time must be
     monotonic. *)
  let e = Sim.Engine.create () in
  ignore
    (Sim.Engine.schedule e ~delay:1.0 (fun () ->
         ignore (Sim.Engine.schedule e ~delay:7.0 (fun () -> ()));
         Sim.Engine.run e));
  Sim.Engine.run_until e 2.0;
  Alcotest.(check (float 1e-9)) "clock kept the reentrant progress" 8.0 (Sim.Engine.now e)

let test_engine_rejects_past () =
  let e = Sim.Engine.create () in
  ignore (Sim.Engine.schedule e ~delay:2.0 (fun () -> ()));
  Sim.Engine.run e;
  Alcotest.check_raises "negative delay" (Invalid_argument "Engine.schedule: negative delay")
    (fun () -> ignore (Sim.Engine.schedule e ~delay:(-1.0) (fun () -> ())));
  Alcotest.check_raises "absolute time in the past"
    (Invalid_argument "Engine.schedule_at: time is in the past") (fun () ->
      ignore (Sim.Engine.schedule_at e ~time:1.0 (fun () -> ())))

let test_engine_nested_scheduling () =
  let e = Sim.Engine.create () in
  let log = ref [] in
  ignore
    (Sim.Engine.schedule e ~delay:1.0 (fun () ->
         log := "outer" :: !log;
         ignore (Sim.Engine.schedule e ~delay:1.0 (fun () -> log := "inner" :: !log))));
  Sim.Engine.run e;
  Alcotest.(check (list string)) "nested event fired" [ "outer"; "inner" ] (List.rev !log);
  Alcotest.(check (float 1e-9)) "clock" 2.0 (Sim.Engine.now e)

let test_engine_pending_and_fired () =
  let e = Sim.Engine.create () in
  ignore (Sim.Engine.schedule e ~delay:1.0 (fun () -> ()));
  let h = Sim.Engine.schedule e ~delay:2.0 (fun () -> ()) in
  Alcotest.(check int) "two pending" 2 (Sim.Engine.pending e);
  Sim.Engine.cancel e h;
  Alcotest.(check int) "one pending after cancel" 1 (Sim.Engine.pending e);
  Sim.Engine.run e;
  Alcotest.(check int) "none pending" 0 (Sim.Engine.pending e);
  Alcotest.(check int) "one fired" 1 (Sim.Engine.events_fired e)

let test_engine_pending_is_counter () =
  (* [pending] is a live counter now; check every transition that feeds it:
     schedule, cancel, double cancel, cancel after fire, firing. *)
  let e = Sim.Engine.create () in
  let h1 = Sim.Engine.schedule e ~delay:1.0 (fun () -> ()) in
  let h2 = Sim.Engine.schedule e ~delay:2.0 (fun () -> ()) in
  ignore (Sim.Engine.schedule e ~delay:3.0 (fun () -> ()));
  Alcotest.(check int) "three live" 3 (Sim.Engine.pending e);
  Sim.Engine.cancel e h2;
  Alcotest.(check int) "two live after cancel" 2 (Sim.Engine.pending e);
  Sim.Engine.cancel e h2;
  Alcotest.(check int) "double cancel is a no-op" 2 (Sim.Engine.pending e);
  Sim.Engine.run_until e 1.5;
  Alcotest.(check int) "one live after h1 fired" 1 (Sim.Engine.pending e);
  Sim.Engine.cancel e h1;
  Alcotest.(check int) "cancel after fire is a no-op" 1 (Sim.Engine.pending e);
  Sim.Engine.run e;
  Alcotest.(check int) "none live" 0 (Sim.Engine.pending e);
  Alcotest.(check int) "two fired" 2 (Sim.Engine.events_fired e)

let test_engine_compacts_cancelled () =
  (* Regression: cancelled events used to linger in the heap until popped,
     so a long chaos sweep cancelling many timeouts grew the queue without
     bound.  Now cancellation compacts once the dead outnumber the live. *)
  let e = Sim.Engine.create () in
  let n = 10_000 in
  let handles =
    Array.init n (fun i -> Sim.Engine.schedule e ~delay:(float_of_int (i + 1)) (fun () -> ()))
  in
  (* Cancel all but every 100th event without ever running the engine. *)
  Array.iteri (fun i h -> if i mod 100 <> 0 then Sim.Engine.cancel e h) handles;
  Alcotest.(check int) "live events" (n / 100) (Sim.Engine.pending e);
  Alcotest.(check bool)
    (Printf.sprintf "queue compacted (%d physical for %d live)" (Sim.Engine.queue_size e)
       (Sim.Engine.pending e))
    true
    (Sim.Engine.queue_size e <= (2 * Sim.Engine.pending e) + 16);
  (* The survivors still fire, in order. *)
  Sim.Engine.run e;
  Alcotest.(check int) "survivors fired" (n / 100) (Sim.Engine.events_fired e);
  Alcotest.(check int) "queue drained" 0 (Sim.Engine.queue_size e)

let prop_engine_pending_matches_model =
  (* Random interleaving of schedule/cancel ops: the O(1) counter must agree
     with a naive model of the live set at every step. *)
  QCheck.Test.make ~name:"pending counter agrees with naive model" ~count:200
    QCheck.(list (pair bool (float_range 0.0 50.0)))
    (fun ops ->
      let e = Sim.Engine.create () in
      let live = ref [] in
      let model = ref 0 in
      let ok = ref true in
      List.iter
        (fun (do_cancel, delay) ->
          (if do_cancel then (
             match !live with
             | h :: rest ->
                 Sim.Engine.cancel e h;
                 live := rest;
                 decr model
             | [] -> ())
           else begin
             live := Sim.Engine.schedule e ~delay (fun () -> ()) :: !live;
             incr model
           end);
          if Sim.Engine.pending e <> !model then ok := false;
          if Sim.Engine.queue_size e < Sim.Engine.pending e then ok := false)
        ops;
      Sim.Engine.run e;
      !ok && Sim.Engine.pending e = 0)

let prop_engine_time_monotone =
  QCheck.Test.make ~name:"events observe non-decreasing time" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 50) (float_range 0.0 100.0))
    (fun delays ->
      let e = Sim.Engine.create () in
      let last = ref neg_infinity in
      let ok = ref true in
      List.iter
        (fun d ->
          ignore
            (Sim.Engine.schedule e ~delay:d (fun () ->
                 if Sim.Engine.now e < !last then ok := false;
                 last := Sim.Engine.now e)))
        delays;
      Sim.Engine.run e;
      !ok)

(* ------------------------------------------------------------------ *)
(* Process                                                             *)
(* ------------------------------------------------------------------ *)

let test_process_alternates () =
  let e = Sim.Engine.create () in
  let rng = Util.Prng.create 3 in
  let log = ref [] in
  let p =
    Sim.Process.alternating e ~rng ~up_time:(Util.Dist.Constant 2.0)
      ~down_time:(Util.Dist.Constant 1.0)
      ~on_fail:(fun () -> log := `F :: !log)
      ~on_repair:(fun () -> log := `R :: !log)
      ()
  in
  Sim.Engine.run_until e 10.0;
  Sim.Process.stop p;
  (* up 2, down 1 cycle: fail at 2,5,8; repair at 3,6,9 *)
  Alcotest.(check int) "transitions" 6 (Sim.Process.transitions p);
  let expected = [ `F; `R; `F; `R; `F; `R ] in
  Alcotest.(check bool) "alternating pattern" true (List.rev !log = expected)

let test_process_stop () =
  let e = Sim.Engine.create () in
  let rng = Util.Prng.create 5 in
  let count = ref 0 in
  let p =
    Sim.Process.alternating e ~rng ~up_time:(Util.Dist.Constant 1.0)
      ~down_time:(Util.Dist.Constant 1.0)
      ~on_fail:(fun () -> incr count)
      ~on_repair:(fun () -> ())
      ()
  in
  Sim.Engine.run_until e 3.5;
  Sim.Process.stop p;
  let at_stop = !count in
  Sim.Engine.run_until e 100.0;
  Alcotest.(check int) "no transitions after stop" at_stop !count

let test_process_initial_phase () =
  let e = Sim.Engine.create () in
  let rng = Util.Prng.create 7 in
  let first = ref None in
  let p =
    Sim.Process.alternating e ~rng ~up_time:(Util.Dist.Constant 5.0)
      ~down_time:(Util.Dist.Constant 1.0) ~initial:Sim.Process.Down
      ~on_fail:(fun () -> if !first = None then first := Some `F)
      ~on_repair:(fun () -> if !first = None then first := Some `R)
      ()
  in
  Alcotest.(check bool) "starts down" true (Sim.Process.phase p = Sim.Process.Down);
  Sim.Engine.run_until e 2.0;
  Sim.Process.stop p;
  Alcotest.(check bool) "first transition is a repair" true (!first = Some `R)

let test_process_duty_cycle () =
  (* Long-run up fraction of an exp(lambda)/exp(mu) process is 1/(1+rho). *)
  let e = Sim.Engine.create () in
  let rng = Util.Prng.create 11 in
  let rho = 0.25 in
  let up_time = ref 0.0 in
  let last = ref 0.0 in
  let up = ref true in
  let p =
    Sim.Process.alternating e ~rng ~up_time:(Util.Dist.Exponential rho)
      ~down_time:(Util.Dist.Exponential 1.0)
      ~on_fail:(fun () ->
        up_time := !up_time +. (Sim.Engine.now e -. !last);
        last := Sim.Engine.now e;
        up := false)
      ~on_repair:(fun () ->
        last := Sim.Engine.now e;
        up := true)
      ()
  in
  let horizon = 50_000.0 in
  Sim.Engine.run_until e horizon;
  Sim.Process.stop p;
  if !up then up_time := !up_time +. (horizon -. !last);
  Alcotest.(check (float 0.01))
    "duty cycle near 1/(1+rho)"
    (1.0 /. (1.0 +. rho))
    (!up_time /. horizon)

let () =
  Alcotest.run "sim"
    [
      ( "heap",
        [
          Alcotest.test_case "sorted extraction" `Quick test_heap_order;
          Alcotest.test_case "empty heap" `Quick test_heap_empty;
          Alcotest.test_case "peek" `Quick test_heap_peek;
          Alcotest.test_case "clear" `Quick test_heap_clear;
          Alcotest.test_case "filter in place" `Quick test_heap_filter;
          Alcotest.test_case "filter releases dropped elements" `Quick
            test_heap_filter_drops_references;
          Alcotest.test_case "growth" `Quick test_heap_grows;
          QCheck_alcotest.to_alcotest prop_heap_sorts;
        ] );
      ( "engine",
        [
          Alcotest.test_case "time order" `Quick test_engine_fires_in_time_order;
          Alcotest.test_case "fifo ties" `Quick test_engine_fifo_at_equal_times;
          Alcotest.test_case "clock" `Quick test_engine_clock_advances;
          Alcotest.test_case "cancel" `Quick test_engine_cancel;
          Alcotest.test_case "cancel vs horizon" `Quick test_engine_cancel_does_not_leak_past_horizon;
          Alcotest.test_case "run_until" `Quick test_engine_run_until;
          Alcotest.test_case "reentrant run_until never rewinds" `Quick
            test_engine_reentrant_run_until_never_rewinds;
          Alcotest.test_case "rejects past" `Quick test_engine_rejects_past;
          Alcotest.test_case "nested scheduling" `Quick test_engine_nested_scheduling;
          Alcotest.test_case "pending/fired counters" `Quick test_engine_pending_and_fired;
          Alcotest.test_case "pending transitions" `Quick test_engine_pending_is_counter;
          Alcotest.test_case "cancelled events compacted" `Quick test_engine_compacts_cancelled;
          QCheck_alcotest.to_alcotest prop_engine_pending_matches_model;
          QCheck_alcotest.to_alcotest prop_engine_time_monotone;
        ] );
      ( "process",
        [
          Alcotest.test_case "alternates" `Quick test_process_alternates;
          Alcotest.test_case "stop" `Quick test_process_stop;
          Alcotest.test_case "initial phase" `Quick test_process_initial_phase;
          Alcotest.test_case "duty cycle" `Slow test_process_duty_cycle;
        ] );
    ]
