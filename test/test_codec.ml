(* The binary wire codec: round-trip per constructor, measured size =
   encoded length, and the corruption envelope — truncation, CRC damage,
   trailing garbage, bad tags, malformed payloads all come back as typed
   errors, never exceptions.  A seeded single-byte-corruption property
   checks the claim the media chaos relies on: any one-byte change to a
   frame is detected (CRC-32 catches all bursts up to 32 bits). *)

open Blockrep
module Block = Blockdev.Block
module Vv = Blockdev.Version_vector

let set = Types.int_set_of_list

let vv l =
  let v = Vv.create (List.length l) in
  List.iteri (fun i x -> Vv.set v i x) l;
  v

(* One sample per constructor, with non-trivial field values. *)
let info =
  {
    Wire.origin = 2;
    state = Types.Available;
    versions = vv [ 3; 0; 7; 1 ];
    was_available = set [ 0; 2; 3 ];
  }

let blk s = Block.of_string s

let sample_messages =
  [
    Wire.Vote_request { rid = 1; block = 5; purpose = Net.Message.Write };
    Wire.Vote_reply { rid = 1; block = 5; version = 9; weight = 2; group_size = 4 };
    Wire.Block_update
      { rid = Some 2; block = 0; version = 3; data = blk "payload"; carried_w = set [ 0; 1 ] };
    Wire.Block_update { rid = None; block = 1; version = 1; data = Block.zero; carried_w = set [] };
    Wire.Write_ack { rid = 2; block = 0 };
    Wire.Block_request { rid = 3; block = 7 };
    Wire.Block_transfer { rid = 3; block = 7; version = 4; data = blk "xfer" };
    Wire.Recovery_probe { rid = 4; info };
    Wire.Recovery_reply { rid = 4; info };
    Wire.Vv_send { rid = 5; versions = vv [ 1; 2; 0; 0 ]; w_of_sender = set [ 1 ] };
    Wire.Vv_reply
      {
        rid = 5;
        versions = vv [ 2; 2; 1; 0 ];
        updates = [ (0, 2, blk "a"); (2, 1, blk "b") ];
        w_of_source = set [ 0; 1; 2 ];
      };
    Wire.Group_fix { block = 3; version = 6; group = set [ 0; 2 ] };
    Wire.Batch_vote_request { rid = 6; blocks = [ 0; 3; 5 ]; purpose = Net.Message.Read };
    Wire.Batch_vote_reply { rid = 6; votes = [ (0, 1); (3, 2) ]; weight = 1; group_size = 5 };
    Wire.Batch_update
      { rid = Some 7; writes = [ (0, 2, blk "w0"); (4, 5, blk "w4") ]; carried_w = set [ 1 ] };
    Wire.Batch_ack { rid = 7; blocks = [ 0; 4 ] };
    Wire.Batch_request { rid = 8; blocks = [ 1; 2; 3 ] };
    Wire.Batch_transfer { rid = 8; payloads = [ (1, 1, Block.zero) ] };
  ]

(* Structural equality with the right notion per field (Int_set trees can
   differ in shape for equal sets, so polymorphic compare is unsafe). *)
let info_equal (a : Wire.site_info) (b : Wire.site_info) =
  a.origin = b.origin && a.state = b.state
  && Vv.equal a.versions b.versions
  && Types.Int_set.equal a.was_available b.was_available

let triple_eq (b1, v1, d1) (b2, v2, d2) = b1 = b2 && v1 = v2 && Block.equal d1 d2
let pair_eq (b1, v1) (b2, v2) = b1 = b2 && v1 = v2

let wire_equal (a : Wire.t) (b : Wire.t) =
  match (a, b) with
  | Wire.Vote_request x, Wire.Vote_request y ->
      x.rid = y.rid && x.block = y.block && x.purpose = y.purpose
  | Wire.Vote_reply x, Wire.Vote_reply y ->
      x.rid = y.rid && x.block = y.block && x.version = y.version && x.weight = y.weight
      && x.group_size = y.group_size
  | Wire.Block_update x, Wire.Block_update y ->
      x.rid = y.rid && x.block = y.block && x.version = y.version && Block.equal x.data y.data
      && Types.Int_set.equal x.carried_w y.carried_w
  | Wire.Write_ack x, Wire.Write_ack y -> x.rid = y.rid && x.block = y.block
  | Wire.Block_request x, Wire.Block_request y -> x.rid = y.rid && x.block = y.block
  | Wire.Block_transfer x, Wire.Block_transfer y ->
      x.rid = y.rid && x.block = y.block && x.version = y.version && Block.equal x.data y.data
  | Wire.Recovery_probe x, Wire.Recovery_probe y -> x.rid = y.rid && info_equal x.info y.info
  | Wire.Recovery_reply x, Wire.Recovery_reply y -> x.rid = y.rid && info_equal x.info y.info
  | Wire.Vv_send x, Wire.Vv_send y ->
      x.rid = y.rid && Vv.equal x.versions y.versions
      && Types.Int_set.equal x.w_of_sender y.w_of_sender
  | Wire.Vv_reply x, Wire.Vv_reply y ->
      x.rid = y.rid && Vv.equal x.versions y.versions
      && List.equal triple_eq x.updates y.updates
      && Types.Int_set.equal x.w_of_source y.w_of_source
  | Wire.Group_fix x, Wire.Group_fix y ->
      x.block = y.block && x.version = y.version && Types.Int_set.equal x.group y.group
  | Wire.Batch_vote_request x, Wire.Batch_vote_request y ->
      x.rid = y.rid && x.blocks = y.blocks && x.purpose = y.purpose
  | Wire.Batch_vote_reply x, Wire.Batch_vote_reply y ->
      x.rid = y.rid && List.equal pair_eq x.votes y.votes && x.weight = y.weight
      && x.group_size = y.group_size
  | Wire.Batch_update x, Wire.Batch_update y ->
      x.rid = y.rid && List.equal triple_eq x.writes y.writes
      && Types.Int_set.equal x.carried_w y.carried_w
  | Wire.Batch_ack x, Wire.Batch_ack y -> x.rid = y.rid && x.blocks = y.blocks
  | Wire.Batch_request x, Wire.Batch_request y -> x.rid = y.rid && x.blocks = y.blocks
  | Wire.Batch_transfer x, Wire.Batch_transfer y ->
      x.rid = y.rid && List.equal triple_eq x.payloads y.payloads
  | _, _ -> false

let check_roundtrip m =
  match Wire.decode (Wire.encode m) with
  | Ok m' ->
      if not (wire_equal m m') then
        Alcotest.failf "roundtrip changed %s into %s" (Wire.describe m) (Wire.describe m')
  | Error e ->
      Alcotest.failf "roundtrip of %s failed: %s" (Wire.describe m) (Wire.decode_error_to_string e)

let test_roundtrip_every_constructor () = List.iter check_roundtrip sample_messages

let test_size_is_encoded_length () =
  List.iter
    (fun m ->
      Alcotest.(check int) (Wire.describe m) (Bytes.length (Wire.encode m)) (Wire.size m))
    sample_messages

let test_tags_distinct_and_stable () =
  let codes = List.map (fun m -> Wire.Tag.to_int (Wire.tag_of m)) sample_messages in
  let distinct = List.sort_uniq compare codes in
  (* 18 samples over 17 constructors: two Block_updates share a tag. *)
  Alcotest.(check int) "17 distinct tags" 17 (List.length distinct);
  List.iter
    (fun c ->
      match Wire.Tag.of_int c with
      | Some t -> Alcotest.(check int) "of_int/to_int" c (Wire.Tag.to_int t)
      | None -> Alcotest.failf "tag code %d not decodable" c)
    codes;
  Alcotest.(check bool) "0 is not a tag" true (Wire.Tag.of_int 0 = None);
  Alcotest.(check bool) "18 is not a tag" true (Wire.Tag.of_int 18 = None)

(* --- corruption envelope: typed errors, never exceptions --- *)

let expect_error name buf pred =
  match Wire.decode buf with
  | Ok m -> Alcotest.failf "%s: decoded %s instead of failing" name (Wire.describe m)
  | Error e ->
      if not (pred e) then
        Alcotest.failf "%s: wrong error %s" name (Wire.decode_error_to_string e)

let is_truncated = function Wire.Frame_error (Codec.Frame.Truncated _) -> true | _ -> false
let is_crc = function Wire.Frame_error (Codec.Frame.Crc_mismatch _) -> true | _ -> false
let is_trailing = function Wire.Frame_error (Codec.Frame.Trailing _) -> true | _ -> false
let is_bad_magic = function Wire.Frame_error (Codec.Frame.Bad_magic _) -> true | _ -> false
let is_bad_tag = function Wire.Bad_tag _ -> true | _ -> false
let is_malformed = function Wire.Malformed _ -> true | _ -> false

let test_truncated_frame () =
  List.iter
    (fun m ->
      let enc = Wire.encode m in
      List.iter
        (fun n ->
          if n < Bytes.length enc then
            expect_error (Printf.sprintf "truncate to %d" n) (Bytes.sub enc 0 n) is_truncated)
        [ 0; 1; 5; 8; Bytes.length enc - 1 ])
    sample_messages

let test_corrupted_crc () =
  List.iter
    (fun m ->
      let enc = Wire.encode m in
      (* Flip a payload byte: the stored CRC no longer matches. *)
      let p = Bytes.copy enc in
      Bytes.set p 9 (Char.chr (Char.code (Bytes.get p 9) lxor 0xA5));
      expect_error "payload flip" p is_crc;
      (* Flip a stored-CRC byte: same verdict from the other side. *)
      let c = Bytes.copy enc in
      Bytes.set c 5 (Char.chr (Char.code (Bytes.get c 5) lxor 0x01));
      expect_error "crc flip" c is_crc)
    sample_messages

let test_trailing_garbage () =
  List.iter
    (fun m ->
      let enc = Wire.encode m in
      let g = Bytes.cat enc (Bytes.of_string "\042") in
      expect_error "one trailing byte" g is_trailing;
      let g4 = Bytes.cat enc (Bytes.of_string "ABCD") in
      expect_error "four trailing bytes" g4 is_trailing)
    sample_messages

let test_bad_magic () =
  let enc = Wire.encode (List.hd sample_messages) in
  let b = Bytes.copy enc in
  Bytes.set b 0 '\000';
  expect_error "zeroed magic" b is_bad_magic

let test_bad_tag () =
  let frame = Codec.Frame.encode ~payload:(fun w -> Codec.Buf.varint w 99) in
  expect_error "tag 99" frame is_bad_tag;
  let zero = Codec.Frame.encode ~payload:(fun w -> Codec.Buf.varint w 0) in
  expect_error "tag 0" zero is_bad_tag

let test_malformed_payload () =
  (* A valid tag with missing fields... *)
  let short = Codec.Frame.encode ~payload:(fun w -> Codec.Buf.varint w 1) in
  expect_error "fields missing" short is_malformed;
  (* ... and a complete message followed by payload junk inside the frame. *)
  let padded =
    Codec.Frame.encode ~payload:(fun w ->
        Codec.Buf.varint w 4 (* Write_ack *);
        Codec.Buf.varint w 3;
        Codec.Buf.varint w 0;
        Codec.Buf.u8 w 0xEE)
  in
  expect_error "payload junk" padded is_malformed;
  (* A declared list length far beyond the payload must be rejected
     before any allocation. *)
  let hugelist =
    Codec.Frame.encode ~payload:(fun w ->
        Codec.Buf.varint w 15 (* Batch_ack *);
        Codec.Buf.varint w 1;
        Codec.Buf.varint w 1_000_000)
  in
  expect_error "huge list length" hugelist is_malformed

(* --- seeded generator over every constructor --- *)

let gen_message =
  let open QCheck.Gen in
  let g_rid = int_range 0 1000 in
  let g_block = int_range 0 500 in
  let g_version = int_range 0 100 in
  let g_data =
    map
      (fun s -> Block.of_string s)
      (string_size ~gen:(map Char.chr (int_range 0 255)) (int_range 0 600))
  in
  let g_set = map set (list_size (int_range 0 6) (int_range 0 30)) in
  let g_vv = map vv (list_size (int_range 0 8) g_version) in
  let g_purpose =
    oneofl [ Net.Message.Read; Net.Message.Write; Net.Message.Recovery; Net.Message.Repair ]
  in
  let g_state = oneofl [ Types.Failed; Types.Comatose; Types.Available ] in
  let g_info =
    map
      (fun (((origin, state), versions), was_available) ->
        { Wire.origin; state; versions; was_available })
      (pair (pair (pair (int_range 0 10) g_state) g_vv) g_set)
  in
  let g_triples = list_size (int_range 0 5) (map (fun ((b, v), d) -> (b, v, d)) (pair (pair g_block g_version) g_data)) in
  let g_blocks = list_size (int_range 0 6) g_block in
  oneof
    [
      map (fun ((rid, block), purpose) -> Wire.Vote_request { rid; block; purpose })
        (pair (pair g_rid g_block) g_purpose);
      map
        (fun ((((rid, block), version), weight), group_size) ->
          Wire.Vote_reply { rid; block; version; weight; group_size })
        (pair (pair (pair (pair g_rid g_block) g_version) (int_range 0 9)) (int_range 0 9));
      map
        (fun ((((rid, block), version), data), carried_w) ->
          Wire.Block_update { rid; block; version; data; carried_w })
        (pair (pair (pair (pair (opt g_rid) g_block) g_version) g_data) g_set);
      map (fun (rid, block) -> Wire.Write_ack { rid; block }) (pair g_rid g_block);
      map (fun (rid, block) -> Wire.Block_request { rid; block }) (pair g_rid g_block);
      map
        (fun (((rid, block), version), data) -> Wire.Block_transfer { rid; block; version; data })
        (pair (pair (pair g_rid g_block) g_version) g_data);
      map (fun (rid, info) -> Wire.Recovery_probe { rid; info }) (pair g_rid g_info);
      map (fun (rid, info) -> Wire.Recovery_reply { rid; info }) (pair g_rid g_info);
      map
        (fun ((rid, versions), w_of_sender) -> Wire.Vv_send { rid; versions; w_of_sender })
        (pair (pair g_rid g_vv) g_set);
      map
        (fun (((rid, versions), updates), w_of_source) ->
          Wire.Vv_reply { rid; versions; updates; w_of_source })
        (pair (pair (pair g_rid g_vv) g_triples) g_set);
      map
        (fun ((block, version), group) -> Wire.Group_fix { block; version; group })
        (pair (pair g_block g_version) g_set);
      map
        (fun ((rid, blocks), purpose) -> Wire.Batch_vote_request { rid; blocks; purpose })
        (pair (pair g_rid g_blocks) g_purpose);
      map
        (fun (((rid, votes), weight), group_size) ->
          Wire.Batch_vote_reply { rid; votes; weight; group_size })
        (pair
           (pair (pair g_rid (list_size (int_range 0 5) (pair g_block g_version))) (int_range 0 9))
           (int_range 0 9));
      map
        (fun ((rid, writes), carried_w) -> Wire.Batch_update { rid; writes; carried_w })
        (pair (pair (opt g_rid) g_triples) g_set);
      map (fun (rid, blocks) -> Wire.Batch_ack { rid; blocks }) (pair g_rid g_blocks);
      map (fun (rid, blocks) -> Wire.Batch_request { rid; blocks }) (pair g_rid g_blocks);
      map (fun (rid, payloads) -> Wire.Batch_transfer { rid; payloads }) (pair g_rid g_triples);
    ]

let arb_message = QCheck.make ~print:Wire.describe gen_message

let prop_roundtrip =
  QCheck.Test.make ~name:"decode (encode m) = m for generated messages" ~count:500 arb_message
    (fun m ->
      match Wire.decode (Wire.encode m) with
      | Ok m' -> wire_equal m m'
      | Error e -> QCheck.Test.fail_reportf "decode failed: %s" (Wire.decode_error_to_string e))

let prop_size_measured =
  QCheck.Test.make ~name:"size m = |encode m|" ~count:500 arb_message (fun m ->
      Wire.size m = Bytes.length (Wire.encode m))

let prop_single_byte_corruption_detected =
  QCheck.Test.make ~name:"any single-byte corruption yields a typed error" ~count:500
    QCheck.(triple arb_message (int_range 0 100_000) (int_range 1 255))
    (fun (m, posk, mask) ->
      let enc = Wire.encode m in
      let pos = posk mod Bytes.length enc in
      Bytes.set enc pos (Char.chr (Char.code (Bytes.get enc pos) lxor mask));
      match Wire.decode enc with
      | Ok m' -> QCheck.Test.fail_reportf "corrupt frame decoded as %s" (Wire.describe m')
      | Error _ -> true)

(* The hostile-bytes property behind the hardened ingress: whatever the
   injector does to a valid frame — single or multi-byte damage, the
   structural kinds (truncate, garbage prefix/suffix, splice), or any
   combination — decoding NEVER raises and NEVER returns a payload
   different from one that was actually encoded.  (A mutation may cancel
   out or a splice may reassemble a whole sent frame; decoding the
   original payload back is the benign "survived" case the ingress counts
   separately.) *)

let never_misdecodes ~originals buf =
  match Wire.decode_frame buf with
  | Ok m' ->
      List.exists (fun m -> wire_equal m m') originals
      || QCheck.Test.fail_reportf "damaged frame decoded as a different payload: %s"
           (Wire.describe m')
  | Error (_ : Net.Message.reject) -> true
  | exception e -> QCheck.Test.fail_reportf "decode raised %s" (Printexc.to_string e)

let prop_multi_byte_mutation_safe =
  QCheck.Test.make ~name:"any multi-byte mutation decodes safely" ~count:500
    QCheck.(
      pair arb_message (list_of_size (Gen.int_range 1 8) (pair (int_range 0 100_000) (int_range 0 255))))
    (fun (m, muts) ->
      let enc = Wire.encode m in
      List.iter
        (fun (posk, mask) ->
          let pos = posk mod Bytes.length enc in
          Bytes.set enc pos (Char.chr (Char.code (Bytes.get enc pos) lxor mask)))
        muts;
      never_misdecodes ~originals:[ m ] enc)

let prop_structural_damage_safe =
  QCheck.Test.make ~name:"truncation / garbage / splice decode safely" ~count:500
    QCheck.(
      pair (pair arb_message arb_message)
        (pair (pair (int_range 0 100_000) (int_range 0 100_000)) (int_range 0 3)))
    (fun ((m1, m2), ((cut1k, cut2k), kind)) ->
      let e1 = Wire.encode m1 and e2 = Wire.encode m2 in
      let originals = [ m1; m2 ] in
      let damaged =
        match kind with
        | 0 ->
            (* truncate: keep a strict, nonempty prefix when possible *)
            Bytes.sub e1 0 (1 + (cut1k mod max 1 (Bytes.length e1 - 1)))
        | 1 -> Bytes.cat (Bytes.sub e2 0 (cut2k mod (Bytes.length e2 + 1))) e1
        | 2 -> Bytes.cat e1 (Bytes.sub e2 0 (cut2k mod (Bytes.length e2 + 1)))
        | _ ->
            (* splice: head of the previous frame + tail of the current,
               the injector's frame-splice shape *)
            Bytes.cat
              (Bytes.sub e1 0 (1 + (cut1k mod Bytes.length e1)))
              (let cut = cut2k mod (Bytes.length e2 + 1) in
               Bytes.sub e2 cut (Bytes.length e2 - cut))
      in
      never_misdecodes ~originals damaged)

let prop_decode_sub_mutation_safe =
  QCheck.Test.make ~name:"decode_sub of a damaged window never raises" ~count:500
    QCheck.(pair arb_message (pair (int_range 0 100_000) (pair (int_range 0 100_000) (int_range 0 255))))
    (fun (m, (posk, (lenk, mask))) ->
      let enc = Wire.encode m in
      let n = Bytes.length enc in
      let pos = posk mod n in
      Bytes.set enc pos (Char.chr (Char.code (Bytes.get enc pos) lxor mask));
      let sub_pos = posk mod (n + 1) in
      let sub_len = lenk mod (n - sub_pos + 1) in
      match Codec.Frame.decode_sub enc ~pos:sub_pos ~len:sub_len with
      | Ok _ | Error _ -> true
      | exception e -> QCheck.Test.fail_reportf "decode_sub raised %s" (Printexc.to_string e))

(* --- codec primitives --- *)

let test_varint_roundtrip () =
  List.iter
    (fun v ->
      let w = Codec.Buf.writer 16 in
      Codec.Buf.varint w v;
      let b = Codec.Buf.contents w in
      let r = Codec.Buf.reader b ~pos:0 ~len:(Bytes.length b) in
      Alcotest.(check int) (Printf.sprintf "varint %d" v) v (Codec.Buf.r_varint r);
      Alcotest.(check bool) "consumed" true (Codec.Buf.at_end r))
    [ 0; 1; 127; 128; 300; 16383; 16384; 1_000_000; max_int; -1; min_int ]

let test_crc_known_value () =
  (* CRC-32("123456789") = 0xCBF43926: the standard check value pins the
     polynomial and reflection conventions. *)
  Alcotest.(check int) "check value" 0xCBF43926 (Codec.Crc.digest_string "123456789")

let () =
  Alcotest.run "codec"
    [
      ( "roundtrip",
        [
          Alcotest.test_case "every constructor" `Quick test_roundtrip_every_constructor;
          Alcotest.test_case "size = encoded length" `Quick test_size_is_encoded_length;
          Alcotest.test_case "tags distinct and stable" `Quick test_tags_distinct_and_stable;
          QCheck_alcotest.to_alcotest prop_roundtrip;
          QCheck_alcotest.to_alcotest prop_size_measured;
        ] );
      ( "corruption",
        [
          Alcotest.test_case "truncated frame" `Quick test_truncated_frame;
          Alcotest.test_case "corrupted crc" `Quick test_corrupted_crc;
          Alcotest.test_case "trailing garbage" `Quick test_trailing_garbage;
          Alcotest.test_case "bad magic" `Quick test_bad_magic;
          Alcotest.test_case "bad tag" `Quick test_bad_tag;
          Alcotest.test_case "malformed payload" `Quick test_malformed_payload;
          QCheck_alcotest.to_alcotest prop_single_byte_corruption_detected;
          QCheck_alcotest.to_alcotest prop_multi_byte_mutation_safe;
          QCheck_alcotest.to_alcotest prop_structural_damage_safe;
          QCheck_alcotest.to_alcotest prop_decode_sub_mutation_safe;
        ] );
      ( "primitives",
        [
          Alcotest.test_case "varint roundtrip" `Quick test_varint_roundtrip;
          Alcotest.test_case "crc-32 check value" `Quick test_crc_known_value;
        ] );
    ]
