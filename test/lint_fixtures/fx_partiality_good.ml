(* Expected findings: none.  Total counterparts of the banned partial
   operations. *)

let first = function [] -> None | x :: _ -> Some x
let rest = function [] -> [] | _ :: tl -> tl
let force ~default = function None -> default | Some x -> x
