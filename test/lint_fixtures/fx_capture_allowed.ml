(* The suppression path for the domain-safety rules: both findings
   below are real, both are hidden by a justified [@lint.allow], and
   both must surface in the report as suppressed-with-justification. *)

let audit_log : int Queue.t = Queue.create ()
[@@lint.allow "shared-global"
  "fixture: exercises the justified-suppression path for the shared-global rule"]

let suppressed_capture () =
  let tbl : (int, int) Hashtbl.t = Hashtbl.create 4 in
  ignore
    ((Sim.Shard_engine.map_tasks ~shards:2 ~tasks:2 (fun i ->
          Hashtbl.replace tbl i i;
          i))
    [@lint.allow "domain-capture"
      "fixture: exercises the justified-suppression path for the domain-capture rule"]);
  Hashtbl.length tbl
