(* Expected findings: 2x wire-exhaustive — a dispatch over enough
   frame-tag constructors to count as a codec dispatch but ending in a
   wildcard (a new wire message would silently fall through the
   decoder), and a tag-charging function (named in the test config)
   whose catch-all would silently hand a new constructor a default
   tag. *)

open Blockrep

let tag_name = function
  | Wire.Tag.Vote_request -> "vote-request"
  | Wire.Tag.Block_update -> "block-update"
  | Wire.Tag.Write_ack -> "write-ack"
  | Wire.Tag.Batch_transfer -> "batch-transfer"
  | _ -> "other"

(* Two distinct wire constructors: below the dispatch threshold, so
   only the charging rule fires here. *)
let bad_tag_of : Wire.t -> Wire.Tag.t = function
  | Wire.Vote_request _ -> Wire.Tag.Vote_request
  | Wire.Block_update _ -> Wire.Tag.Block_update
  | _ -> Wire.Tag.Group_fix
