(* Top-level state the shared-global rule must accept: immutable
   scalars, strings, lists, constant constructors, persistent
   functor-built sets, and plain functions. *)

let block_size = 4096

let name = "fixture"

let defaults = [ 1; 2; 3 ]

type mode = Fast | Safe

let default_mode = Fast

module Int_set = Set.Make (Int)

let empty_ids = Int_set.empty

let preset_ids = Int_set.add 3 (Int_set.add 1 Int_set.empty)

let scale (x : int) = x * block_size
