(* Expected findings: 2x wire-exhaustive — a protocol dispatch over
   enough Wire constructors to count as one but ending in a wildcard,
   and a charging function (named in the test config) whose catch-all
   would silently give a new constructor a default traffic category. *)

open Blockrep

type cat = Vote | Other

let summarize = function
  | Wire.Vote_request _ -> "vote-request"
  | Wire.Vote_reply _ -> "vote-reply"
  | Wire.Block_update _ -> "block-update"
  | Wire.Write_ack _ -> "write-ack"
  | _ -> "other"

(* Two distinct constructors: below the dispatch threshold, so only the
   charging rule fires here. *)
let bad_category : Wire.t -> cat = function
  | Wire.Vote_request _ | Wire.Batch_vote_request _ -> Vote
  | _ -> Other
