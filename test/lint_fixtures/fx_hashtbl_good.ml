(* Expected findings: none.  Both recognized sorted contexts: piping the
   fold into a sort, and wrapping it in one directly. *)

let keys_piped tbl = Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] |> List.sort Int.compare
let keys_direct tbl = List.sort Int.compare (Hashtbl.fold (fun k _ acc -> k :: acc) tbl [])
