(* Expected findings: none.  [verdict] is a pure constant-constructor
   enum, which pass 1 proves safe for structural comparison even though
   the test config marks every fixture type suspicious. *)

type verdict = Accept | Reject | Defer

let same_verdict (a : verdict) b = a = b
let eq_int = Int.equal
