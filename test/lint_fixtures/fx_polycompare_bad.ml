(* Expected findings: 4x poly-compare — structural equality at a wire
   message type, at a closure-carrying record, at a function type, and
   at a record the test config marks suspicious without being a pure
   enum. *)

type handler = { tag : int; run : int -> int }
type pair = { left : int; right : string }

let same_message (a : Blockrep.Wire.t) b = a = b
let same_handler (a : handler) b = a = b
let same_fn (f : int -> int) g = f = g
let same_pair (x : pair) y = x = y
