(* Suppression-machinery fixture.  Expected:
   - 1 suppressed determinism finding (module-wide floating allow),
   - 1 suppressed hashtbl-order finding (well-formed local allow),
   - 2 unsuppressed hashtbl-order findings whose allows are rejected
     (missing and blank justification), and
   - 3 lint-allow findings (missing justification, blank justification,
     unknown rule name). *)

[@@@lint.allow "determinism" "fixture: a module-wide allow covers every use in the unit"]

let stamp () = Sys.time ()

let count tbl =
  (Hashtbl.fold (fun _ _ n -> n + 1) tbl 0
  [@lint.allow "hashtbl-order" "commutative count, kept to exercise suppression"])

let keys_missing_just tbl =
  (Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] [@lint.allow "hashtbl-order"])

let keys_blank_just tbl =
  (Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] [@lint.allow "hashtbl-order" "   "])

let answer = ((41 + 1) [@lint.allow "no-such-rule" "the rule name is bogus on purpose"])
