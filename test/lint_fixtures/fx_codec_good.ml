(* Expected findings: none.  Codec-side counterparts of fx_wire_good:
   a full-width dispatch over the frame-tag enumeration with no
   wildcard, and a tag-charging function (named in the test config)
   that maps every wire constructor to a constant tag. *)

open Blockrep

let tag_byte = function
  | Wire.Tag.Vote_request -> 'a'
  | Wire.Tag.Vote_reply -> 'b'
  | Wire.Tag.Block_update -> 'c'
  | Wire.Tag.Write_ack -> 'd'
  | Wire.Tag.Block_request -> 'e'
  | Wire.Tag.Block_transfer -> 'f'
  | Wire.Tag.Recovery_probe -> 'g'
  | Wire.Tag.Recovery_reply -> 'h'
  | Wire.Tag.Vv_send -> 'i'
  | Wire.Tag.Vv_reply -> 'j'
  | Wire.Tag.Group_fix -> 'k'
  | Wire.Tag.Batch_vote_request -> 'l'
  | Wire.Tag.Batch_vote_reply -> 'm'
  | Wire.Tag.Batch_update -> 'n'
  | Wire.Tag.Batch_ack -> 'o'
  | Wire.Tag.Batch_request -> 'p'
  | Wire.Tag.Batch_transfer -> 'q'

let good_tag_of : Wire.t -> Wire.Tag.t = function
  | Wire.Vote_request _ -> Wire.Tag.Vote_request
  | Wire.Vote_reply _ -> Wire.Tag.Vote_reply
  | Wire.Block_update _ -> Wire.Tag.Block_update
  | Wire.Write_ack _ -> Wire.Tag.Write_ack
  | Wire.Block_request _ -> Wire.Tag.Block_request
  | Wire.Block_transfer _ -> Wire.Tag.Block_transfer
  | Wire.Recovery_probe _ -> Wire.Tag.Recovery_probe
  | Wire.Recovery_reply _ -> Wire.Tag.Recovery_reply
  | Wire.Vv_send _ -> Wire.Tag.Vv_send
  | Wire.Vv_reply _ -> Wire.Tag.Vv_reply
  | Wire.Group_fix _ -> Wire.Tag.Group_fix
  | Wire.Batch_vote_request _ -> Wire.Tag.Batch_vote_request
  | Wire.Batch_vote_reply _ -> Wire.Tag.Batch_vote_reply
  | Wire.Batch_update _ -> Wire.Tag.Batch_update
  | Wire.Batch_ack _ -> Wire.Tag.Batch_ack
  | Wire.Batch_request _ -> Wire.Tag.Batch_request
  | Wire.Batch_transfer _ -> Wire.Tag.Batch_transfer
