(* Lane bodies the capture analysis must stay silent on: immutable
   captures, lane-fresh allocation, Atomic state, a blessed merge
   point, and a locally-defined helper function the analyzer resolves
   and looks through. *)

(* Captured ints are deeply immutable: sharing them is fine. *)
let sum_with_offset ~n (offset : int) =
  Sim.Shard_engine.map_tasks ~shards:2 ~tasks:n (fun i -> i + offset)

(* Mutable state allocated inside the thunk is lane-fresh: no lane can
   see another lane's table. *)
let lane_fresh ~n =
  Sim.Shard_engine.map_tasks ~shards:2 ~tasks:n (fun i ->
      let tbl : (int, int) Hashtbl.t = Hashtbl.create 8 in
      Hashtbl.replace tbl i i;
      Hashtbl.length tbl)

(* An Atomic.t over immutable contents is the sanctioned cross-lane
   cell. *)
let atomic_progress ~n (progress : int Atomic.t) =
  Sim.Shard_engine.map_tasks ~shards:2 ~tasks:n (fun i ->
      Atomic.incr progress;
      i)

(* Captured mutable traffic flows ONLY into Traffic.accumulate, a
   blessed merge point; the per-lane counter is lane-fresh. *)
let blessed_merge ~n =
  let traffic = Net.Traffic.create () in
  ignore
    (Sim.Shard_engine.map_tasks ~shards:2 ~tasks:n (fun i ->
         let lane = Net.Traffic.create () in
         Net.Traffic.accumulate ~into:traffic lane;
         i));
  traffic

(* A locally-defined function captured by the thunk: the analyzer
   resolves it through the unit's bindings and analyses ITS captures
   (none that matter) instead of rejecting the closure outright. *)
let double (x : int) = x * 2

let via_helper ~n = Sim.Shard_engine.map_tasks ~shards:2 ~tasks:n (fun i -> double i)
