(* Expected findings: none.  Explicitly seeded Random.State streams are
   the sanctioned randomness source inside the simulation envelope. *)

let make_stream ~seed = Random.State.make [| seed |]
let draw st = Random.State.float st 1.0
