(* Six flavours of top-level shared state the shared-global rule must
   flag in a sim-critical library: plain ref, Hashtbl, Bytes, a record
   with a mutable field, mutable state hidden inside a top-level
   closure, and an Atomic global (serialised but still shared). *)

let total = ref 0

let cache : (int, int) Hashtbl.t = Hashtbl.create 16

let scratch = Bytes.create 64

type counters = { mutable hits : int }

let counters = { hits = 0 }

(* The binding is a function, but it closes over a memo table every
   caller in every lane shares. *)
let memo =
  let seen : (int, int) Hashtbl.t = Hashtbl.create 16 in
  fun x ->
    match Hashtbl.find_opt seen x with
    | Some y -> y
    | None ->
        let y = x * x in
        Hashtbl.add seen x y;
        y

let progress = Atomic.make 0
