(* Expected findings: 2x hashtbl-order — a fold whose result flows into
   a list with no sort in sight, and a bare iter. *)

let keys tbl = Hashtbl.fold (fun k _ acc -> k :: acc) tbl []
let visit f tbl = Hashtbl.iter f tbl
