(* Expected findings: 3x determinism (host clock, self-seeding, and an
   unseeded global Random draw). *)

let cpu_seconds () = Sys.time ()
let reseed () = Random.self_init ()
let coin () = Random.bool ()
