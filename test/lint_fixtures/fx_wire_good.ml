(* Expected findings: none.  Full-width dispatch with no wildcard, and a
   charging function (named in the test config) that enumerates every
   constructor with a constant category on the right-hand side. *)

open Blockrep

type cat = Vote | Data | Ack | Control

let good_category : Wire.t -> cat = function
  | Wire.Vote_request _ | Wire.Batch_vote_request _ -> Vote
  | Wire.Vote_reply _ | Wire.Batch_vote_reply _ -> Vote
  | Wire.Block_update _ | Wire.Batch_update _ -> Data
  | Wire.Block_transfer _ | Wire.Batch_transfer _ -> Data
  | Wire.Write_ack _ | Wire.Batch_ack _ -> Ack
  | Wire.Block_request _ | Wire.Batch_request _ -> Control
  | Wire.Recovery_probe _ | Wire.Recovery_reply _ -> Control
  | Wire.Vv_send _ | Wire.Vv_reply _ -> Control
  | Wire.Group_fix _ -> Control
