(* Expected findings: 5x partiality — the four banned idents plus one
   assert false. *)

let first l = List.hd l
let rest l = List.tl l
let force o = Option.get o
let fail_op () = failwith "nope"
let absurd () = assert false
