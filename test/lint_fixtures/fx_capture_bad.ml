(* Deliberately race-y lane bodies: every thunk here captures mutable
   state it must not, one way per function.  Counts are asserted
   exactly in test_lint.ml. *)

(* Direct mutation of a captured Hashtbl: domain-capture. *)
let leak_hashtbl () =
  let tbl : (int, int) Hashtbl.t = Hashtbl.create 16 in
  ignore
    (Sim.Shard_engine.map_tasks ~shards:2 ~tasks:4 (fun i ->
         Hashtbl.replace tbl i i;
         i));
  Hashtbl.length tbl

(* Reading a captured array is still sharing it: domain-capture. *)
let leak_array (arr : int array) =
  Sim.Shard_engine.map_tasks ~shards:2 ~tasks:(Array.length arr) (fun i -> arr.(i))

(* A captured ref cell mutated from every lane: domain-capture. *)
let leak_ref () =
  let total = ref 0 in
  ignore
    (Sim.Shard_engine.map_tasks ~shards:2 ~tasks:4 (fun i ->
         total := !total + i;
         i));
  !total

(* The captured table flows only into a function call — but not one of
   the blessed merge points: merge-only-sharing, not domain-capture. *)
let merge_into (dst : (int, int) Hashtbl.t) (src : int) = Hashtbl.replace dst src src

let unblessed_merge () =
  let tbl : (int, int) Hashtbl.t = Hashtbl.create 16 in
  ignore
    (Sim.Shard_engine.map_tasks ~shards:2 ~tasks:4 (fun i ->
         merge_into tbl i;
         i));
  Hashtbl.length tbl
