(* Tests for the scenario DSL: parser behaviour, executor semantics, and
   the shipped corpus of .scn files. *)

let parse_ok text =
  match Scenario.parse text with
  | Ok t -> t
  | Error e -> Alcotest.failf "parse failed: %s" e

let parse_err text =
  match Scenario.parse text with Ok _ -> Alcotest.fail "parse should have failed" | Error e -> e

let run_ok text =
  match Scenario.check text with
  | Ok () -> ()
  | Error failures -> Alcotest.failf "scenario failed:\n%s" (String.concat "\n" failures)

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

let test_parse_minimal () =
  ignore (parse_ok "scheme nac\nsites 3\n@1 fail 0\n")

let test_parse_requires_scheme () =
  let e = parse_err "sites 3\n@1 fail 0\n" in
  Alcotest.(check bool) "mentions scheme" true (String.length e > 0 && String.exists (fun _ -> true) e);
  Alcotest.(check string) "message" "missing 'scheme' directive" e

let test_parse_requires_sites () =
  Alcotest.(check string) "message" "missing 'sites' directive" (parse_err "scheme ac\n@1 heal\n")

let test_parse_rejects_bad_command () =
  let e = parse_err "scheme ac\nsites 3\n@1 explode 0\n" in
  Alcotest.(check bool) "line number in error" true
    (String.length e >= 6 && String.sub e 0 6 = "line 3")

let test_parse_rejects_bad_time () =
  let e = parse_err "scheme ac\nsites 3\n@abc fail 0\n" in
  Alcotest.(check bool) "bad time reported" true (String.length e > 0)

let test_parse_comments_and_blanks () =
  let t = parse_ok "# top\nscheme nac\n\nsites 2   # trailing\n@1 fail 0  # why not\n\n" in
  ignore t

let test_parse_partition_groups () =
  ignore (parse_ok "scheme voting\nsites 5\n@1 partition 0 1 | 2 3 4\n@2 heal\n")

let test_parse_witnesses_directive () =
  ignore (parse_ok "scheme voting\nsites 3\nwitnesses 2\n@1 fail 0\n")

let test_parse_fault_directives () =
  ignore
    (parse_ok
       "scheme voting\nsites 3\nfault-drop 0.1\nfault-duplicate 0.05\nfault-reorder 0.2\n\
        fault-jitter 2.0\nfault-delay 0.25\n@1 fail 0\n")

let test_parse_rejects_bad_fault_probability () =
  let e = parse_err "scheme voting\nsites 3\nfault-drop 1.5\n@1 fail 0\n" in
  Alcotest.(check bool) "bad fault directive reported" true (String.length e > 0)

let test_faulty_scenario_still_passes_expectations () =
  (* A lossy wire plus the retry layer: the scenario's expectations must
     still hold because synchronous operations ride the engine until their
     round resolves. *)
  run_ok
    {|
scheme nac
sites 3
seed 11
fault-duplicate 0.2
fault-delay 0.1
@1  write 0 0 hello
@5  expect-read 0 0 hello
@9  expect-available true
|}

(* ------------------------------------------------------------------ *)
(* Executor                                                            *)
(* ------------------------------------------------------------------ *)

let test_run_passing_expectations () =
  run_ok
    {|
scheme nac
sites 3
@1  write 0 0 hello
@5  expect-read 0 0 hello
@6  expect-available true
@10 expect-consistent
|}

let test_run_detects_wrong_payload () =
  match Scenario.check "scheme nac\nsites 3\n@1 write 0 0 real\n@5 expect-read 0 0 bogus\n" with
  | Ok () -> Alcotest.fail "expected a failure"
  | Error [ failure ] ->
      Alcotest.(check bool) "names the line" true (String.sub failure 0 6 = "line 4")
  | Error other -> Alcotest.failf "unexpected failures: %s" (String.concat ";" other)

let test_run_detects_wrong_state () =
  match Scenario.check "scheme ac\nsites 3\n@1 fail 1\n@2 expect-state 1 available\n" with
  | Ok () -> Alcotest.fail "expected a failure"
  | Error failures -> Alcotest.(check int) "one failure" 1 (List.length failures)

let test_run_collects_multiple_failures () =
  match
    Scenario.check
      "scheme ac\nsites 3\n@1 fail 1\n@2 expect-state 1 available\n@3 expect-available false\n"
  with
  | Ok () -> Alcotest.fail "expected failures"
  | Error failures -> Alcotest.(check int) "both reported" 2 (List.length failures)

(* Tiny substring helper (no external deps). *)
let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

let test_run_write_failure_reported () =
  match Scenario.check "scheme voting\nsites 3\n@1 fail 1\n@2 fail 2\n@3 write 0 0 x\n" with
  | Ok () -> Alcotest.fail "write without quorum must be reported"
  | Error [ failure ] -> Alcotest.(check bool) "mentions quorum" true (contains failure "no quorum")
  | Error other -> Alcotest.failf "unexpected: %s" (String.concat ";" other)

let test_outcome_exposes_cluster () =
  let t = parse_ok "scheme nac\nsites 3\n@1 write 0 2 peek\n" in
  let outcome = Scenario.run t in
  Alcotest.(check bool) "passed" true outcome.Scenario.passed;
  Alcotest.(check int) "events ran" 1 outcome.Scenario.events_run;
  match Blockrep.Cluster.read_sync outcome.Scenario.cluster ~site:0 ~block:2 with
  | Ok (b, _) ->
      Alcotest.(check string) "state visible afterwards" "peek"
        (String.sub (Blockdev.Block.to_string b) 0 4)
  | Error _ -> Alcotest.fail "post-run read failed"

(* ------------------------------------------------------------------ *)
(* Corpus                                                              *)
(* ------------------------------------------------------------------ *)

(* `dune runtest` runs with cwd = test/, `dune exec` from the project
   root; look in both places. *)
let corpus_dir =
  if Sys.file_exists "scenarios" && Sys.is_directory "scenarios" then "scenarios"
  else Filename.concat "test" "scenarios"

let corpus_case file =
  Alcotest.test_case file `Quick (fun () ->
      match Scenario.parse_file (Filename.concat corpus_dir file) with
      | Error e -> Alcotest.failf "parse: %s" e
      | Ok t -> (
          let outcome = Scenario.run t in
          match outcome.Scenario.failures with
          | [] -> ()
          | failures -> Alcotest.failf "%s" (String.concat "\n" failures)))

(* Generated scenarios: random well-formed fail/repair/write schedules
   against AC with a trailing consistency expectation must always pass —
   the DSL executor and the protocol together. *)
let prop_generated_schedules_consistent =
  let gen_event =
    QCheck.Gen.(
      map2
        (fun site kind -> (site, kind))
        (int_range 0 2)
        (frequency [ (2, return `Fail); (2, return `Repair); (3, return `Write) ]))
  in
  QCheck.Test.make ~name:"generated fail/repair/write scenarios end consistent" ~count:30
    (QCheck.make QCheck.Gen.(list_size (int_range 1 15) gen_event))
    (fun events ->
      let buf = Buffer.create 256 in
      Buffer.add_string buf "scheme ac\nsites 3\nblocks 4\n";
      List.iteri
        (fun i (site, kind) ->
          let t = 10 * (i + 1) in
          match kind with
          | `Fail -> Buffer.add_string buf (Printf.sprintf "@%d fail %d\n" t site)
          | `Repair -> Buffer.add_string buf (Printf.sprintf "@%d repair %d\n" t site)
          | `Write -> Buffer.add_string buf (Printf.sprintf "@%d write %d %d w%d\n" t site (i mod 4) i))
        events;
      let finish = (10 * (List.length events + 1)) + 100 in
      (* Repair everyone, then require convergence. *)
      Buffer.add_string buf (Printf.sprintf "@%d repair 0\n" (finish - 80));
      Buffer.add_string buf (Printf.sprintf "@%d repair 1\n" (finish - 79));
      Buffer.add_string buf (Printf.sprintf "@%d repair 2\n" (finish - 78));
      Buffer.add_string buf (Printf.sprintf "@%d expect-consistent\n" finish);
      Buffer.add_string buf (Printf.sprintf "@%d expect-available true\n" finish);
      match Scenario.parse (Buffer.contents buf) with
      | Error _ -> false
      | Ok t ->
          let outcome = Scenario.run t in
          (* Writes at down sites legitimately fail; the trailing
             consistency and availability expectations must hold. *)
          not
            (List.exists
               (fun f -> contains f "stores disagree" || contains f "availability is")
               outcome.Scenario.failures))

let corpus_tests () =
  Sys.readdir corpus_dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".scn")
  |> List.sort compare |> List.map corpus_case

let () =
  Alcotest.run "scenario"
    [
      ( "parser",
        [
          Alcotest.test_case "minimal" `Quick test_parse_minimal;
          Alcotest.test_case "scheme required" `Quick test_parse_requires_scheme;
          Alcotest.test_case "sites required" `Quick test_parse_requires_sites;
          Alcotest.test_case "bad command" `Quick test_parse_rejects_bad_command;
          Alcotest.test_case "bad time" `Quick test_parse_rejects_bad_time;
          Alcotest.test_case "comments and blanks" `Quick test_parse_comments_and_blanks;
          Alcotest.test_case "partition groups" `Quick test_parse_partition_groups;
          Alcotest.test_case "witnesses directive" `Quick test_parse_witnesses_directive;
          Alcotest.test_case "fault directives" `Quick test_parse_fault_directives;
          Alcotest.test_case "bad fault probability" `Quick test_parse_rejects_bad_fault_probability;
          Alcotest.test_case "faulty scenario runs" `Quick test_faulty_scenario_still_passes_expectations;
        ] );
      ("generated", [ QCheck_alcotest.to_alcotest prop_generated_schedules_consistent ]);
      ( "executor",
        [
          Alcotest.test_case "passing expectations" `Quick test_run_passing_expectations;
          Alcotest.test_case "wrong payload detected" `Quick test_run_detects_wrong_payload;
          Alcotest.test_case "wrong state detected" `Quick test_run_detects_wrong_state;
          Alcotest.test_case "multiple failures collected" `Quick test_run_collects_multiple_failures;
          Alcotest.test_case "write failure reported" `Quick test_run_write_failure_reported;
          Alcotest.test_case "outcome exposes cluster" `Quick test_outcome_exposes_cluster;
        ] );
      ("corpus", corpus_tests ());
    ]
