(* Tests for the sharded engine lanes: stable partition, per-lane seed
   derivation, order-preserving parallel maps, and the twin-run guarantee
   that execution width never changes results — an N-shard campaign or
   chaos sweep is bit-identical to [--shards 1], on the OCaml 4.14
   sequential fallback and on OCaml 5 domains alike. *)

module Shard = Sim.Shard_engine
module Chaos = Check.Chaos
module Experiment = Workload.Experiment
module Types = Blockrep.Types

(* ------------------------------------------------------------------ *)
(* Partition and seeds                                                 *)
(* ------------------------------------------------------------------ *)

let test_shard_of_block_stable () =
  (* The partition is a pure function of the block id: independent of
     shard count at execution time, and in range. *)
  for block = 0 to 999 do
    let s = Shard.shard_of_block ~shards:7 block in
    Alcotest.(check bool) "in range" true (s >= 0 && s < 7);
    Alcotest.(check int) "stable across calls" s (Shard.shard_of_block ~shards:7 block)
  done

let test_shard_of_block_spreads () =
  (* A stable hash, not a modulus of the id: every shard of a small count
     gets a healthy share of a contiguous block range. *)
  let shards = 4 in
  let counts = Array.make shards 0 in
  for block = 0 to 4_095 do
    let s = Shard.shard_of_block ~shards block in
    counts.(s) <- counts.(s) + 1
  done;
  Array.iteri
    (fun s c ->
      if c < 4_096 / shards / 2 then
        Alcotest.failf "shard %d starved: %d of 4096 blocks" s c)
    counts

let test_lane_seeds_distinct () =
  let seen = Hashtbl.create 64 in
  for shard = 0 to 63 do
    let s = Shard.lane_seed ~seed:41 ~shard in
    (match Hashtbl.find_opt seen s with
    | Some other -> Alcotest.failf "lanes %d and %d share seed %d" other shard s
    | None -> ());
    Hashtbl.replace seen s shard
  done

let test_lane_streams_not_shifts () =
  (* The raw-seed regression: before pre-mixing, lane seeds were additive
     in the SplitMix64 increment, so lane k's stream was lane 0's stream
     shifted by k.  Derived lanes must not replay each other. *)
  let stream shard n =
    let g = Util.Prng.create (Shard.lane_seed ~seed:41 ~shard) in
    List.init n (fun _ -> Util.Prng.bits64 g)
  in
  let lane0 = stream 0 24 in
  let lane1 = stream 1 12 in
  let rec is_prefix p l =
    match (p, l) with
    | [], _ -> true
    | x :: p', y :: l' -> Int64.equal x y && is_prefix p' l'
    | _ :: _, [] -> false
  in
  let rec occurs_in sub l =
    is_prefix sub l || match l with [] -> false | _ :: tl -> occurs_in sub tl
  in
  Alcotest.(check bool) "lane 1 is not a shift of lane 0" false (occurs_in lane1 lane0)

(* ------------------------------------------------------------------ *)
(* Parallel maps                                                       *)
(* ------------------------------------------------------------------ *)

let test_map_list_preserves_order () =
  let xs = List.init 37 (fun i -> i) in
  let doubled = Shard.map_list ~shards:4 xs (fun x -> 2 * x) in
  Alcotest.(check (list int)) "order preserved" (List.map (fun x -> 2 * x) xs) doubled

let test_map_list_matches_sequential () =
  let xs = List.init 23 (fun i -> 100 + i) in
  let f x = (x * 31) lxor (x lsr 2) in
  Alcotest.(check (list int)) "same as shards:1" (Shard.map_list ~shards:1 xs f)
    (Shard.map_list ~shards:8 xs f)

let test_plan_lanes () =
  let stats = Shard.plan_lanes ~shards:8 ~tasks:3 in
  Alcotest.(check int) "lanes capped by tasks" 3 stats.Shard.lanes_used;
  let stats1 = Shard.plan_lanes ~shards:1 ~tasks:100 in
  Alcotest.(check int) "one shard, one lane" 1 stats1.Shard.lanes_used;
  Alcotest.(check bool) "parallel only above one lane" false stats1.Shard.parallel

let test_domains_compat_order () =
  let results = Sim.Domains_compat.parallel_run ~lanes:5 (fun lane -> lane * lane) in
  Alcotest.(check (array int)) "lane results in lane order" [| 0; 1; 4; 9; 16 |] results

(* ------------------------------------------------------------------ *)
(* Twin runs: execution width never changes results                    *)
(* ------------------------------------------------------------------ *)

let check_stats name a b =
  Alcotest.(check int) (name ^ " count") (Util.Stats.count a) (Util.Stats.count b);
  Alcotest.(check (float 0.0)) (name ^ " mean") (Util.Stats.mean a) (Util.Stats.mean b)

let test_campaign_bit_identical_across_shards () =
  let run shards =
    Experiment.measure_campaign ~scheme:Types.Dynamic_voting ~n_sites:3 ~n_blocks:512 ~shards
      ~groups:6 ~ops_per_group:30 ()
  in
  let a = run 1 in
  let b = run 4 in
  Alcotest.(check int) "issued" a.Experiment.issued b.Experiment.issued;
  Alcotest.(check int) "read_ok" a.Experiment.read_ok b.Experiment.read_ok;
  Alcotest.(check int) "read_failed" a.Experiment.read_failed b.Experiment.read_failed;
  Alcotest.(check int) "write_ok" a.Experiment.write_ok b.Experiment.write_ok;
  Alcotest.(check int) "write_failed" a.Experiment.write_failed b.Experiment.write_failed;
  check_stats "read latency" a.Experiment.read_latency b.Experiment.read_latency;
  check_stats "write latency" a.Experiment.write_latency b.Experiment.write_latency;
  Alcotest.(check (array int)) "latency histogram"
    (Util.Stats.Histogram.counts a.Experiment.latency_hist)
    (Util.Stats.Histogram.counts b.Experiment.latency_hist);
  Alcotest.(check int) "messages" a.Experiment.total_messages b.Experiment.total_messages;
  Alcotest.(check int) "bytes" a.Experiment.total_bytes b.Experiment.total_bytes;
  Alcotest.(check int) "lanes actually used" 4 b.Experiment.lanes_used

let test_campaign_shards_above_groups () =
  (* More lanes than groups must clamp, not skew the merge. *)
  let run shards =
    Experiment.measure_campaign ~scheme:Types.Available_copy ~n_sites:3 ~n_blocks:128 ~shards
      ~groups:3 ~ops_per_group:20 ()
  in
  let a = run 1 and b = run 16 in
  Alcotest.(check int) "lanes clamped to groups" 3 b.Experiment.lanes_used;
  Alcotest.(check int) "issued identical" a.Experiment.issued b.Experiment.issued;
  Alcotest.(check int) "messages identical" a.Experiment.total_messages b.Experiment.total_messages

let summary_list (sw : Chaos.sweep_result) =
  List.map
    (fun (s : Chaos.run_summary) ->
      ( s.Chaos.run_seed,
        s.Chaos.run_passed,
        s.Chaos.run_violations,
        s.Chaos.run_ops_ok,
        s.Chaos.run_ops_failed,
        s.Chaos.run_faults ))
    sw.Chaos.summaries

let test_sweep_bit_identical_across_shards () =
  let env = Chaos.default_env Types.Available_copy in
  let seeds = List.init 12 (fun i -> i + 1) in
  let a = Chaos.sweep ~shrink_failures:false ~shards:1 env ~seeds in
  let b = Chaos.sweep ~shrink_failures:false ~shards:3 env ~seeds in
  Alcotest.(check (list (pair int (pair bool (pair int (pair int (pair int int)))))))
    "per-seed summaries identical"
    (List.map (fun (a, b, c, d, e, f) -> (a, (b, (c, (d, (e, f)))))) (summary_list a))
    (List.map (fun (a, b, c, d, e, f) -> (a, (b, (c, (d, (e, f)))))) (summary_list b));
  Alcotest.(check (list int)) "failing seeds identical" a.Chaos.failing b.Chaos.failing

let () =
  Alcotest.run "shard"
    [
      ( "partition",
        [
          Alcotest.test_case "stable in-range hash" `Quick test_shard_of_block_stable;
          Alcotest.test_case "spreads blocks" `Quick test_shard_of_block_spreads;
          Alcotest.test_case "lane seeds distinct" `Quick test_lane_seeds_distinct;
          Alcotest.test_case "lane streams not shifts" `Quick test_lane_streams_not_shifts;
        ] );
      ( "maps",
        [
          Alcotest.test_case "map_list order" `Quick test_map_list_preserves_order;
          Alcotest.test_case "map_list vs sequential" `Quick test_map_list_matches_sequential;
          Alcotest.test_case "plan_lanes" `Quick test_plan_lanes;
          Alcotest.test_case "domains_compat order" `Quick test_domains_compat_order;
        ] );
      ( "twin-runs",
        [
          Alcotest.test_case "campaign identical across shards" `Slow
            test_campaign_bit_identical_across_shards;
          Alcotest.test_case "campaign shards above groups" `Quick
            test_campaign_shards_above_groups;
          Alcotest.test_case "sweep identical across shards" `Slow
            test_sweep_bit_identical_across_shards;
        ] );
    ]
