(* Tests for the reliable-device layer: Driver_stub and Reliable_device. *)

module Cluster = Blockrep.Cluster
module Types = Blockrep.Types
module Device = Blockrep.Reliable_device
module Stub = Blockrep.Driver_stub
module Block = Blockdev.Block

let make_device ?(scheme = Types.Naive_available_copy) ?(n = 3) ?(blocks = 16) () =
  Device.of_config (Blockrep.Config.make_exn ~scheme ~n_sites:n ~n_blocks:blocks ~seed:404 ())

let test_device_capacity () =
  let d = make_device ~blocks:32 () in
  Alcotest.(check int) "capacity" 32 (Device.capacity d)

let test_device_rw () =
  let d = make_device () in
  Alcotest.(check bool) "write" true (Device.write_block d 3 (Block.of_string "payload"));
  match Device.read_block d 3 with
  | Some b -> Alcotest.(check string) "read back" "payload" (String.sub (Block.to_string b) 0 7)
  | None -> Alcotest.fail "read failed"

let test_device_read_your_writes () =
  (* The stub pins a home site, so even fire-and-forget NAC writes are
     immediately readable through the device interface. *)
  let d = make_device ~scheme:Types.Naive_available_copy () in
  for i = 0 to 9 do
    let tag = Printf.sprintf "rw%d" i in
    assert (Device.write_block d (i mod 4) (Block.of_string tag));
    match Device.read_block d (i mod 4) with
    | Some b -> Alcotest.(check string) tag tag (String.sub (Block.to_string b) 0 (String.length tag))
    | None -> Alcotest.fail "read failed"
  done

let test_device_bounds () =
  let d = make_device ~blocks:8 () in
  Alcotest.(check bool) "read oob" true (Device.read_block d 8 = None);
  Alcotest.(check bool) "write oob" false (Device.write_block d (-1) Block.zero)

let test_stub_failover () =
  let d = make_device () in
  let c = Device.cluster d in
  assert (Device.write_block d 0 (Block.of_string "seed"));
  (* Let the fire-and-forget propagation land on the other replicas before
     the home site dies. *)
  Cluster.run_until c (Sim.Engine.now (Cluster.engine c) +. 10.0);
  Alcotest.(check int) "home is 0" 0 (Stub.home (Device.stub d));
  Cluster.fail_site c 0;
  (match Device.read_block d 0 with
  | Some b -> Alcotest.(check string) "served after failover" "seed" (String.sub (Block.to_string b) 0 4)
  | None -> Alcotest.fail "failover read failed");
  Alcotest.(check int) "home does not migrate" 0 (Stub.home (Device.stub d));
  Alcotest.(check bool) "failovers counted" true (Stub.failovers (Device.stub d) >= 1)

let test_stub_failover_writes () =
  let d = make_device () in
  let c = Device.cluster d in
  Cluster.fail_site c 0;
  Cluster.fail_site c 1;
  Alcotest.(check bool) "write lands on the survivor" true
    (Device.write_block d 5 (Block.of_string "survivor"));
  Alcotest.(check int) "home stays put through failover" 0 (Stub.home (Device.stub d))

let test_stub_home_service_resumes () =
  (* The bug: a transient [Site_not_available] at the home site migrated
     [home] permanently, so the preferred site never got traffic back after
     repair.  Home is now sticky: once site 0 recovers, requests are served
     there again with no further failovers. *)
  let d = make_device () in
  let c = Device.cluster d in
  assert (Device.write_block d 0 (Block.of_string "before"));
  Cluster.run_until c (Sim.Engine.now (Cluster.engine c) +. 10.0);
  Cluster.fail_site c 0;
  (match Device.read_block d 0 with
  | Some _ -> ()
  | None -> Alcotest.fail "read during outage failed");
  let failovers_during_outage = Stub.failovers (Device.stub d) in
  Alcotest.(check bool) "outage caused failovers" true (failovers_during_outage >= 1);
  Cluster.repair_site c 0;
  Cluster.run_until c (Sim.Engine.now (Cluster.engine c) +. 10.0);
  assert (Device.write_block d 1 (Block.of_string "after"));
  (match Device.read_block d 1 with
  | Some b -> Alcotest.(check string) "served post-repair" "after" (String.sub (Block.to_string b) 0 5)
  | None -> Alcotest.fail "post-repair read failed");
  Alcotest.(check int) "home unchanged" 0 (Stub.home (Device.stub d));
  Alcotest.(check int) "no failovers once home is back" failovers_during_outage
    (Stub.failovers (Device.stub d))

let test_stub_retries_counted_separately () =
  (* Retries used to be folded into [requests]; now each device operation
     counts once, and extra probing shows up in [site_attempts]. *)
  let d = make_device () in
  let c = Device.cluster d in
  Cluster.fail_site c 0;
  ignore (Device.write_block d 2 (Block.of_string "x"));
  ignore (Device.read_block d 2);
  Alcotest.(check int) "one request per operation" 2 (Stub.requests (Device.stub d));
  Alcotest.(check bool) "site attempts exceed requests under failover" true
    (Stub.site_attempts (Device.stub d) > Stub.requests (Device.stub d))

let test_total_failure_surfaces_error () =
  let d = make_device () in
  let c = Device.cluster d in
  for i = 0 to 2 do
    Cluster.fail_site c i
  done;
  Alcotest.(check bool) "read fails" true (Device.read_block d 0 = None);
  Alcotest.(check bool) "error reason recorded" true (Device.last_error d <> None);
  Alcotest.(check bool) "write fails" false (Device.write_block d 0 Block.zero)

let test_device_recovers_after_total_failure () =
  let d = make_device () in
  let c = Device.cluster d in
  assert (Device.write_block d 1 (Block.of_string "durable"));
  for i = 0 to 2 do
    Cluster.fail_site c i
  done;
  for i = 0 to 2 do
    Cluster.repair_site c i
  done;
  Cluster.run_until c (Sim.Engine.now (Cluster.engine c) +. 100.0);
  match Device.read_block d 1 with
  | Some b -> Alcotest.(check string) "durable" "durable" (String.sub (Block.to_string b) 0 7)
  | None -> Alcotest.fail "device did not recover"

let test_voting_device_under_partition () =
  (* A device over voting refuses on the minority side rather than serving
     stale data. *)
  let d = make_device ~scheme:Types.Voting ~n:5 () in
  let c = Device.cluster d in
  assert (Device.write_block d 0 (Block.of_string "pre"));
  Cluster.partition c [ [ 0; 1 ]; [ 2; 3; 4 ] ];
  (* The stub (homed in the minority) walks every site; the majority side
     is unreachable from the client's partition in reality, but the stub
     models a client inside each partition as it rotates; what matters is
     that minority-side service refuses. *)
  match Cluster.write_sync c ~site:0 ~block:0 (Block.of_string "post") with
  | Error Types.No_quorum -> ()
  | _ -> Alcotest.fail "minority side accepted a write"

let test_stub_request_counting () =
  let d = make_device () in
  ignore (Device.write_block d 0 Block.zero);
  ignore (Device.read_block d 0);
  Alcotest.(check bool) "requests counted" true (Stub.requests (Device.stub d) >= 2)

let () =
  Alcotest.run "device"
    [
      ( "reliable-device",
        [
          Alcotest.test_case "capacity" `Quick test_device_capacity;
          Alcotest.test_case "read/write" `Quick test_device_rw;
          Alcotest.test_case "read-your-writes" `Quick test_device_read_your_writes;
          Alcotest.test_case "bounds" `Quick test_device_bounds;
          Alcotest.test_case "survives total failure" `Quick test_device_recovers_after_total_failure;
          Alcotest.test_case "total failure surfaces error" `Quick test_total_failure_surfaces_error;
          Alcotest.test_case "voting device partition-safe" `Quick test_voting_device_under_partition;
        ] );
      ( "driver-stub",
        [
          Alcotest.test_case "read failover" `Quick test_stub_failover;
          Alcotest.test_case "write failover" `Quick test_stub_failover_writes;
          Alcotest.test_case "home service resumes" `Quick test_stub_home_service_resumes;
          Alcotest.test_case "retries counted separately" `Quick
            test_stub_retries_counted_separately;
          Alcotest.test_case "request counting" `Quick test_stub_request_counting;
        ] );
    ]
