(* Tests for the checking subsystem: recorded histories, the per-block
   one-copy oracle, quiescent invariant scans, and the seeded chaos
   harness — including the sweeps over each scheme's supported fault
   envelope and the demonstrations that stepping outside it (or weakening
   the quorum) is caught with a shrunken, replayable schedule. *)

module Chaos = Check.Chaos
module History = Check.History
module Oracle = Check.Oracle
module Invariant = Check.Invariant
module Types = Blockrep.Types
module Cluster = Blockrep.Cluster
module Block = Blockdev.Block

let block s = Block.of_string s

let codes violations = List.map (fun (v : Check.Violation.t) -> v.code) violations

(* ------------------------------------------------------------------ *)
(* Oracle on synthetic histories                                       *)
(* ------------------------------------------------------------------ *)

let write h ~t ~block:b ~v payload =
  History.record h ~kind:History.Write ~block:b ~site:0 ~invoked:t ~responded:(t +. 1.0)
    ~payload:(block payload) ~version:v ()

let read h ~t ~block:b ~v payload =
  History.record h ~kind:History.Read ~block:b ~site:0 ~invoked:t ~responded:(t +. 1.0)
    ~payload:(block payload) ~version:v ()

let test_oracle_clean () =
  let h = History.create () in
  read h ~t:0.0 ~block:0 ~v:0 "";
  write h ~t:2.0 ~block:0 ~v:1 "a";
  read h ~t:4.0 ~block:0 ~v:1 "a";
  write h ~t:6.0 ~block:0 ~v:2 "b";
  read h ~t:8.0 ~block:0 ~v:2 "b";
  read h ~t:10.0 ~block:1 ~v:0 "";
  Alcotest.(check (list string)) "clean history" [] (codes (Oracle.check h))

let test_oracle_stale_read () =
  let h = History.create () in
  write h ~t:0.0 ~block:3 ~v:1 "a";
  write h ~t:2.0 ~block:3 ~v:2 "b";
  read h ~t:4.0 ~block:3 ~v:1 "a";
  Alcotest.(check (list string)) "stale read caught" [ "stale-read" ] (codes (Oracle.check h))

let test_oracle_phantom_and_conflict () =
  let h = History.create () in
  write h ~t:0.0 ~block:0 ~v:1 "a";
  read h ~t:2.0 ~block:0 ~v:1 "z";
  (* never written *)
  read h ~t:4.0 ~block:0 ~v:2 "ghost";
  (* version above the floor, contents from nowhere *)
  Alcotest.(check (list string))
    "value conflict then phantom"
    [ "read-value-conflict"; "phantom-read" ]
    (codes (Oracle.check h))

let test_oracle_version_collision () =
  let h = History.create () in
  write h ~t:0.0 ~block:0 ~v:1 "a";
  write h ~t:2.0 ~block:0 ~v:1 "b";
  let cs = codes (Oracle.check h) in
  Alcotest.(check bool) "collision reported" true (List.mem "version-collision" cs);
  Alcotest.(check bool) "regression reported" true (List.mem "write-version-regression" cs)

let test_oracle_read_regression () =
  let h = History.create () in
  write h ~t:0.0 ~block:0 ~v:1 "a";
  (* a failed write: client saw an error, the register may have absorbed it *)
  History.record h ~kind:History.Write ~block:0 ~site:0 ~invoked:2.0 ~responded:3.0
    ~payload:(block "maybe") ~error:"timed-out" ();
  read h ~t:4.0 ~block:0 ~v:2 "maybe";
  (* once observed, it must stay observed *)
  read h ~t:6.0 ~block:0 ~v:1 "a";
  Alcotest.(check (list string)) "regression caught" [ "read-regression" ] (codes (Oracle.check h))

let test_oracle_failed_write_is_maybe () =
  let h = History.create () in
  write h ~t:0.0 ~block:0 ~v:1 "a";
  History.record h ~kind:History.Write ~block:0 ~site:1 ~invoked:2.0 ~responded:3.0
    ~payload:(block "maybe") ~error:"no-quorum" ();
  (* both futures are legal: the failed write surfaced ... *)
  let h2 = History.create () in
  write h2 ~t:0.0 ~block:0 ~v:1 "a";
  History.record h2 ~kind:History.Write ~block:0 ~site:1 ~invoked:2.0 ~responded:3.0
    ~payload:(block "maybe") ~error:"no-quorum" ();
  read h2 ~t:4.0 ~block:0 ~v:2 "maybe";
  Alcotest.(check (list string)) "absorbed" [] (codes (Oracle.check h2));
  (* ... or it vanished. *)
  read h ~t:4.0 ~block:0 ~v:1 "a";
  Alcotest.(check (list string)) "vanished" [] (codes (Oracle.check h))

let test_oracle_baseline () =
  let h = History.create () in
  read h ~t:0.0 ~block:0 ~v:7 "restored";
  Alcotest.(check bool) "baseline-less flags phantom" true (Oracle.check h <> []);
  let baseline = function 0 -> (7, block "restored") | _ -> (0, Block.zero) in
  Alcotest.(check (list string)) "baseline accepted" [] (codes (Oracle.check ~baseline h));
  (* reading below the baseline version is stale *)
  let h2 = History.create () in
  read h2 ~t:0.0 ~block:0 ~v:3 "old";
  Alcotest.(check bool) "below baseline is stale" true
    (List.mem "stale-read" (codes (Oracle.check ~baseline h2)))

let test_oracle_non_sequential () =
  let h = History.create () in
  History.record h ~kind:History.Write ~block:0 ~site:0 ~invoked:0.0 ~responded:10.0
    ~payload:(block "a") ~version:1 ();
  History.record h ~kind:History.Read ~block:0 ~site:0 ~invoked:5.0 ~responded:6.0
    ~payload:(block "a") ~version:1 ();
  Alcotest.(check bool) "overlap reported" true
    (List.mem "non-sequential-history" (codes (Oracle.check h)))

(* ------------------------------------------------------------------ *)
(* History instrumentation                                             *)
(* ------------------------------------------------------------------ *)

let test_history_attach_stub () =
  let config = Blockrep.Config.make_exn ~scheme:Types.Naive_available_copy ~n_sites:3 ~n_blocks:4 () in
  let device = Blockrep.Reliable_device.of_config config in
  let h = History.create () in
  History.attach_stub h (Blockrep.Reliable_device.stub device);
  Alcotest.(check bool) "write ok" true (Blockrep.Reliable_device.write_block device 1 (block "x"));
  Alcotest.(check bool) "read ok" true (Blockrep.Reliable_device.read_block device 1 <> None);
  let entries = History.entries h in
  Alcotest.(check int) "two logical ops" 2 (List.length entries);
  (match entries with
  | [ w; r ] ->
      Alcotest.(check bool) "write first" true (w.History.kind = History.Write);
      Alcotest.(check bool) "both ok" true (History.ok w && History.ok r);
      Alcotest.(check (option int)) "versions line up" w.History.version r.History.version;
      Alcotest.(check bool) "read after write" true (r.History.invoked >= w.History.responded)
  | _ -> Alcotest.fail "unexpected shape");
  Alcotest.(check (list string)) "history is consistent" [] (codes (Oracle.check h))

(* ------------------------------------------------------------------ *)
(* Invariant scans                                                     *)
(* ------------------------------------------------------------------ *)

let test_invariant_healthy () =
  List.iter
    (fun scheme ->
      let config = Blockrep.Config.make_exn ~scheme ~n_sites:3 ~n_blocks:4 () in
      let cluster = Cluster.create config in
      for b = 0 to 3 do
        match Cluster.write_sync cluster ~site:0 ~block:b (block (Printf.sprintf "b%d" b)) with
        | Ok _ -> ()
        | Error e -> Alcotest.failf "write refused: %s" (Types.failure_reason_to_string e)
      done;
      Cluster.settle cluster;
      Alcotest.(check (list string))
        (Types.scheme_to_string scheme ^ " healthy")
        [] (codes (Invariant.scan cluster)))
    [ Types.Voting; Types.Available_copy; Types.Naive_available_copy; Types.Dynamic_voting ]

let test_invariant_detects_divergence () =
  (* Plant a newer version at one site behind the protocol's back: every
     other available site is now stale, which the scan must flag. *)
  let config = Blockrep.Config.make_exn ~scheme:Types.Available_copy ~n_sites:3 ~n_blocks:4 () in
  let cluster = Cluster.create config in
  (match Cluster.write_sync cluster ~site:0 ~block:0 (block "legit") with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "write refused");
  Cluster.settle cluster;
  let rt = Cluster.runtime cluster in
  let s2 = Blockrep.Runtime.site rt 2 in
  (* Through the durable layer, so the planted copy carries a valid
     checksum — a raw store write would be quarantined and excused. *)
  Blockdev.Durable_store.write s2.durable 0 (block "planted") ~version:9;
  let cs = codes (Invariant.scan cluster) in
  Alcotest.(check bool) "stale copies flagged" true (List.mem "stale-available-copy" cs)

let test_invariant_voting_quorum_stale () =
  let config = Blockrep.Config.make_exn ~scheme:Types.Voting ~n_sites:3 ~n_blocks:2 () in
  let cluster = Cluster.create config in
  (match Cluster.write_sync cluster ~site:0 ~block:0 (block "v1") with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "write refused");
  Cluster.settle cluster;
  Alcotest.(check (list string)) "healthy quorum" [] (codes (Invariant.scan cluster));
  (* Push the newest version beyond what any up site knows. *)
  Cluster.fail_site cluster 0;
  let rt = Cluster.runtime cluster in
  let s0 = Blockrep.Runtime.site rt 0 in
  Blockdev.Durable_store.write s0.durable 0 (block "hidden") ~version:9;
  let cs = codes (Invariant.scan cluster) in
  Alcotest.(check (list string)) "stale quorum flagged" [ "quorum-stale" ] cs

(* ------------------------------------------------------------------ *)
(* Chaos harness                                                       *)
(* ------------------------------------------------------------------ *)

let test_schedule_roundtrip () =
  let env = { (Chaos.default_env Types.Available_copy) with Chaos.partitions = true } in
  let schedule = Chaos.generate_schedule env in
  Alcotest.(check bool) "nonempty" true (schedule <> []);
  match Chaos.schedule_of_string (Chaos.schedule_to_string schedule) with
  | Error e -> Alcotest.failf "roundtrip failed: %s" e
  | Ok parsed ->
      Alcotest.(check int) "same length" (List.length schedule) (List.length parsed);
      List.iter2
        (fun (t1, e1) (t2, e2) ->
          (* times are serialized to 4 decimals; events must be exact *)
          Alcotest.(check (float 1e-4)) "time" t1 t2;
          Alcotest.(check bool) "event" true (e1 = e2))
        schedule parsed

let test_schedule_bad_input () =
  (match Chaos.schedule_of_string "@1.0 explode 3" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "nonsense accepted");
  match Chaos.schedule_of_string "# comment\n\n@1.0 fail 2\n@2.0 heal" with
  | Ok [ (_, Chaos.Fail 2); (_, Chaos.Heal) ] -> ()
  | Ok _ | Error _ -> Alcotest.fail "comment/blank handling"

let test_chaos_deterministic () =
  let env = Chaos.default_env ~seed:7 Types.Available_copy in
  let a = Chaos.run env and b = Chaos.run env in
  Alcotest.(check bool) "same schedule" true (a.Chaos.schedule = b.Chaos.schedule);
  Alcotest.(check int) "same ops ok" a.Chaos.ops_ok b.Chaos.ops_ok;
  Alcotest.(check int) "same faults" a.Chaos.faults_injected b.Chaos.faults_injected;
  Alcotest.(check int) "same history length" (History.length a.Chaos.history)
    (History.length b.Chaos.history);
  Alcotest.(check (float 0.0)) "same end time" a.Chaos.end_time b.Chaos.end_time

let sweep_clean scheme =
  let env = Chaos.default_env scheme in
  let sweep = Chaos.sweep ~shrink_failures:false env ~seeds:(List.init 100 (fun i -> i + 1)) in
  Alcotest.(check (list int))
    (Types.scheme_to_string scheme ^ " supported envelope clean")
    [] sweep.Chaos.failing;
  (* the sweep must actually have exercised the cluster *)
  let ops =
    List.fold_left (fun acc (s : Chaos.run_summary) -> acc + s.run_ops_ok) 0 sweep.Chaos.summaries
  in
  Alcotest.(check bool) "workload ran" true (ops > 5_000)

let test_sweep_voting () = sweep_clean Types.Voting
let test_sweep_ac () = sweep_clean Types.Available_copy
let test_sweep_nac () = sweep_clean Types.Naive_available_copy
let test_sweep_dynamic () = sweep_clean Types.Dynamic_voting

(* Storage-fault envelope: torn writes at crash boundaries, maskable
   bitrot and disk replacement on top of each scheme's supported failure
   envelope.  One-copy consistency must survive all of it — every
   quarantined copy gets healed from a peer before it can be served. *)
let media_sweep_clean scheme =
  let env = Chaos.media_env scheme in
  let sweep = Chaos.sweep ~shrink_failures:false env ~seeds:(List.init 6 (fun i -> i + 1)) in
  Alcotest.(check (list int))
    (Types.scheme_to_string scheme ^ " media envelope clean")
    [] sweep.Chaos.failing;
  (* the sweep must actually have injected storage faults *)
  let faults =
    List.fold_left
      (fun acc (s : Chaos.run_summary) -> acc + s.Chaos.run_storage_faults)
      0 sweep.Chaos.summaries
  in
  Alcotest.(check bool) "storage faults injected" true (faults > 0)

let test_media_sweep_voting () = media_sweep_clean Types.Voting
let test_media_sweep_ac () = media_sweep_clean Types.Available_copy
let test_media_sweep_nac () = media_sweep_clean Types.Naive_available_copy
let test_media_sweep_dynamic () = media_sweep_clean Types.Dynamic_voting

let test_media_schedule_roundtrip () =
  let env = Chaos.media_env Types.Available_copy in
  let schedule = Chaos.generate_schedule env in
  let has p = List.exists (fun (_, e) -> p e) schedule in
  Alcotest.(check bool) "crash-torn events generated" true
    (has (function Chaos.Crash_torn _ -> true | _ -> false));
  Alcotest.(check bool) "bitrot events generated" true
    (has (function Chaos.Bitrot _ -> true | _ -> false));
  match Chaos.schedule_of_string (Chaos.schedule_to_string schedule) with
  | Error e -> Alcotest.failf "media roundtrip failed: %s" e
  | Ok parsed ->
      Alcotest.(check int) "same length" (List.length schedule) (List.length parsed);
      List.iter2
        (fun (t1, e1) (t2, e2) ->
          Alcotest.(check (float 1e-4)) "time" t1 t2;
          Alcotest.(check bool) "event" true (e1 = e2))
        schedule parsed

(* Hostile-bytes envelope: encoded frames with ambient byte damage on
   every link.  The hardened ingress must absorb all of it — zero
   violations, and the run itself fails with a wire-unconserved violation
   if any injected corruption went unaccounted for. *)
let wire_sweep_clean scheme =
  let env = Chaos.wire_env scheme in
  let sweep = Chaos.sweep ~shrink_failures:false env ~seeds:(List.init 6 (fun i -> i + 1)) in
  Alcotest.(check (list int))
    (Types.scheme_to_string scheme ^ " wire envelope clean")
    [] sweep.Chaos.failing

let test_wire_sweep_voting () = wire_sweep_clean Types.Voting
let test_wire_sweep_ac () = wire_sweep_clean Types.Available_copy
let test_wire_sweep_nac () = wire_sweep_clean Types.Naive_available_copy
let test_wire_sweep_dynamic () = wire_sweep_clean Types.Dynamic_voting

let test_wire_run_injects_and_conserves () =
  let env = Chaos.wire_env ~seed:3 Types.Voting in
  let cluster = Chaos.cluster_of_env env in
  let outcome = Chaos.run_against env ~cluster ~schedule:(Chaos.generate_schedule env) in
  Alcotest.(check bool) "clean" true (Chaos.passed outcome);
  Alcotest.(check bool) "corruption actually injected" true
    (Blockrep.Cluster.corrupted_deliveries cluster > 0);
  Alcotest.(check bool) "frames rejected" true (Blockrep.Cluster.frames_rejected cluster > 0);
  Alcotest.(check bool) "frames retransmitted" true
    (Blockrep.Cluster.frames_retransmitted cluster > 0);
  Alcotest.(check bool) "conserved" true (Blockrep.Cluster.corruption_conserved cluster)

let test_wire_corrupt_schedule_roundtrip () =
  let env =
    { (Chaos.wire_env Types.Voting) with Chaos.wire_corrupt_links = true; wire_corrupt_rate = 0.05 }
  in
  let schedule = Chaos.generate_schedule env in
  let has p = List.exists (fun (_, e) -> p e) schedule in
  Alcotest.(check bool) "wire-corrupt events generated" true
    (has (function Chaos.Wire_corrupt _ -> true | _ -> false));
  Alcotest.(check bool) "paired heals generated" true
    (has (function Chaos.Wire_heal _ -> true | _ -> false));
  match Chaos.schedule_of_string (Chaos.schedule_to_string schedule) with
  | Error e -> Alcotest.failf "wire roundtrip failed: %s" e
  | Ok parsed ->
      Alcotest.(check int) "same length" (List.length schedule) (List.length parsed);
      List.iter2
        (fun (t1, e1) (t2, e2) ->
          Alcotest.(check (float 1e-4)) "time" t1 t2;
          Alcotest.(check bool) "event" true (e1 = e2))
        schedule parsed

let test_voting_window_caught () =
  (* Outside the envelope: voting under site failures must be caught by
     the oracle, and shrinking must keep the violation while dropping
     most of the schedule. *)
  let env = { (Chaos.default_env Types.Voting) with Chaos.failures = true } in
  let sweep = Chaos.sweep env ~seeds:(List.init 40 (fun i -> i + 1)) in
  Alcotest.(check bool) "some seed caught" true (sweep.Chaos.failing <> []);
  match (sweep.Chaos.shrunk, sweep.Chaos.first_failure) with
  | Some (schedule, outcome), Some (_, original) ->
      Alcotest.(check bool) "still failing" true (Chaos.violations outcome <> []);
      Alcotest.(check bool) "shrunk" true
        (List.length schedule < List.length original.Chaos.schedule);
      (* the shrunken schedule replays to the same verdict *)
      let seed = (List.hd sweep.Chaos.failing : int) in
      let replay = Chaos.run ~schedule { env with Chaos.seed } in
      Alcotest.(check bool) "replay fails too" true (Chaos.violations replay <> [])
  | _ -> Alcotest.fail "no shrunken reproduction"

let test_weakened_quorum_caught () =
  let env =
    {
      (Chaos.default_env Types.Voting) with
      Chaos.failures = true;
      weaken_read = Some 1;
      weaken_write = Some 2;
    }
  in
  let sweep = Chaos.sweep ~shrink_failures:false env ~seeds:(List.init 40 (fun i -> i + 1)) in
  Alcotest.(check bool) "read quorum 1 caught" true (sweep.Chaos.failing <> [])

let test_drops_caught_or_survived () =
  (* Message drops are outside every envelope because updates are
     fire-and-forget; under heavy loss the oracle (not availability
     accounting) is what decides.  We only assert the harness runs and
     reaches a verdict on every seed — deterministically. *)
  let env =
    {
      (Chaos.default_env Types.Naive_available_copy) with
      Chaos.faults = Net.Faults.make_exn ~drop:0.3 ();
    }
  in
  let a = Chaos.sweep ~shrink_failures:false env ~seeds:[ 1; 2; 3; 4; 5 ] in
  let b = Chaos.sweep ~shrink_failures:false env ~seeds:[ 1; 2; 3; 4; 5 ] in
  Alcotest.(check (list int)) "deterministic verdict" a.Chaos.failing b.Chaos.failing;
  Alcotest.(check bool) "drops do break fire-and-forget NAC" true (a.Chaos.failing <> [])

(* ------------------------------------------------------------------ *)
(* Checkpoint round trip under chaos                                   *)
(* ------------------------------------------------------------------ *)

let prop_checkpoint_roundtrip =
  QCheck.Test.make ~name:"chaos -> checkpoint -> restore -> chaos stays consistent" ~count:8
    QCheck.(int_range 1 500)
    (fun seed ->
      let env = { (Chaos.default_env ~seed Types.Available_copy) with Chaos.ops = 60 } in
      (* Phase 1 ends quiescent and fully repaired (run_against settles and
         repairs before its final scans). *)
      let cluster = Chaos.cluster_of_env env in
      let phase1 = Chaos.run_against env ~cluster ~schedule:(Chaos.generate_schedule env) in
      if Chaos.violations phase1 <> [] then
        QCheck.Test.fail_reportf "phase 1 violated its own envelope (seed %d)" seed;
      let path = Filename.temp_file "blockrep" ".ckpt" in
      let ( let* ) = Result.bind in
      let result =
        let* () = Blockrep.Checkpoint.save cluster path in
        let fresh = Chaos.cluster_of_env env in
        let* () = Blockrep.Checkpoint.restore fresh path in
        Ok fresh
      in
      Sys.remove path;
      match result with
      | Error e -> QCheck.Test.fail_reportf "checkpoint failed: %s" e
      | Ok fresh ->
          (* Resume different chaos on the restored cluster; the oracle's
             baseline comes from the restored stores. *)
          let env2 = { env with Chaos.seed = seed + 1000 } in
          let phase2 =
            Chaos.run_against env2 ~cluster:fresh ~schedule:(Chaos.generate_schedule env2)
          in
          (match Chaos.violations phase2 with
          | [] -> ()
          | v :: _ ->
              QCheck.Test.fail_reportf "after restore (seed %d): %s" seed
                (Check.Violation.to_string v));
          true)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "check"
    [
      ( "oracle",
        [
          Alcotest.test_case "clean history" `Quick test_oracle_clean;
          Alcotest.test_case "stale read" `Quick test_oracle_stale_read;
          Alcotest.test_case "phantom + conflict" `Quick test_oracle_phantom_and_conflict;
          Alcotest.test_case "version collision" `Quick test_oracle_version_collision;
          Alcotest.test_case "read regression" `Quick test_oracle_read_regression;
          Alcotest.test_case "failed write is maybe" `Quick test_oracle_failed_write_is_maybe;
          Alcotest.test_case "baseline" `Quick test_oracle_baseline;
          Alcotest.test_case "non-sequential" `Quick test_oracle_non_sequential;
        ] );
      ("history", [ Alcotest.test_case "attach stub" `Quick test_history_attach_stub ]);
      ( "invariants",
        [
          Alcotest.test_case "healthy clusters" `Quick test_invariant_healthy;
          Alcotest.test_case "planted divergence" `Quick test_invariant_detects_divergence;
          Alcotest.test_case "voting quorum stale" `Quick test_invariant_voting_quorum_stale;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "schedule roundtrip" `Quick test_schedule_roundtrip;
          Alcotest.test_case "schedule bad input" `Quick test_schedule_bad_input;
          Alcotest.test_case "deterministic" `Quick test_chaos_deterministic;
          Alcotest.test_case "sweep voting" `Slow test_sweep_voting;
          Alcotest.test_case "sweep available-copy" `Slow test_sweep_ac;
          Alcotest.test_case "sweep naive" `Slow test_sweep_nac;
          Alcotest.test_case "sweep dynamic" `Slow test_sweep_dynamic;
          Alcotest.test_case "media schedule roundtrip" `Quick test_media_schedule_roundtrip;
          Alcotest.test_case "media sweep voting" `Slow test_media_sweep_voting;
          Alcotest.test_case "media sweep available-copy" `Slow test_media_sweep_ac;
          Alcotest.test_case "media sweep naive" `Slow test_media_sweep_nac;
          Alcotest.test_case "media sweep dynamic" `Slow test_media_sweep_dynamic;
          Alcotest.test_case "wire schedule roundtrip" `Quick test_wire_corrupt_schedule_roundtrip;
          Alcotest.test_case "wire run injects and conserves" `Quick
            test_wire_run_injects_and_conserves;
          Alcotest.test_case "wire sweep voting" `Slow test_wire_sweep_voting;
          Alcotest.test_case "wire sweep available-copy" `Slow test_wire_sweep_ac;
          Alcotest.test_case "wire sweep naive" `Slow test_wire_sweep_nac;
          Alcotest.test_case "wire sweep dynamic" `Slow test_wire_sweep_dynamic;
          Alcotest.test_case "voting window caught" `Slow test_voting_window_caught;
          Alcotest.test_case "weakened quorum caught" `Slow test_weakened_quorum_caught;
          Alcotest.test_case "drops break NAC" `Quick test_drops_caught_or_survived;
        ] );
      ("checkpoint", [ QCheck_alcotest.to_alcotest prop_checkpoint_roundtrip ]);
    ]
