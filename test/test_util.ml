(* Tests for Util: Prng, Dist, Stats. *)

let check_float = Alcotest.(check (float 1e-9))
let check_close msg tolerance expected actual = Alcotest.(check (float tolerance)) msg expected actual

(* ------------------------------------------------------------------ *)
(* Prng                                                                *)
(* ------------------------------------------------------------------ *)

let test_prng_deterministic () =
  let a = Util.Prng.create 42 and b = Util.Prng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Util.Prng.bits64 a) (Util.Prng.bits64 b)
  done

let test_prng_seeds_differ () =
  let a = Util.Prng.create 1 and b = Util.Prng.create 2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if Util.Prng.bits64 a <> Util.Prng.bits64 b then differs := true
  done;
  Alcotest.(check bool) "different seeds, different streams" true !differs

let test_prng_copy_independent () =
  let a = Util.Prng.create 7 in
  ignore (Util.Prng.bits64 a);
  let b = Util.Prng.copy a in
  let xa = Util.Prng.bits64 a in
  let xb = Util.Prng.bits64 b in
  Alcotest.(check int64) "copy continues the same stream" xa xb;
  ignore (Util.Prng.bits64 a);
  (* advancing a does not advance b *)
  let xa2 = Util.Prng.bits64 a and xb2 = Util.Prng.bits64 b in
  Alcotest.(check bool) "streams advance independently" true (xa2 <> xb2 || xa2 = xb2)

let test_prng_split_independent () =
  let parent = Util.Prng.create 11 in
  let child = Util.Prng.split parent in
  (* a split child with the same immediate state as a sibling must not
     replay the parent's stream *)
  let child_vals = List.init 10 (fun _ -> Util.Prng.bits64 child) in
  let parent_vals = List.init 10 (fun _ -> Util.Prng.bits64 parent) in
  Alcotest.(check bool) "child stream differs from parent" true (child_vals <> parent_vals)

let test_prng_derive_distinct_and_deterministic () =
  let seen = Hashtbl.create 256 in
  for k = 0 to 127 do
    let s = Util.Prng.derive ~seed:41 k in
    Alcotest.(check int) "derive is a pure function" s (Util.Prng.derive ~seed:41 k);
    (match Hashtbl.find_opt seen s with
    | Some k' -> Alcotest.failf "derive collision: k=%d and k=%d both map to %d" k' k s
    | None -> ());
    Hashtbl.replace seen s k
  done;
  Alcotest.(check bool) "different roots, different derivations" true
    (Util.Prng.derive ~seed:41 0 <> Util.Prng.derive ~seed:42 0)

let test_prng_premix_decorrelates_derived_streams () =
  (* Stream version 2 regression: with raw (un-premixed) seeding, the
     k-th derived stream was the root stream shifted by k — every lane of
     a sharded run replayed its neighbour.  No derived stream may appear
     as a contiguous window of another. *)
  let stream k n =
    let g = Util.Prng.create (Util.Prng.derive ~seed:41 k) in
    Array.init n (fun _ -> Util.Prng.bits64 g)
  in
  let a = stream 0 40 in
  let b = stream 1 10 in
  for off = 0 to Array.length a - Array.length b do
    let matches = ref true in
    for i = 0 to Array.length b - 1 do
      if not (Int64.equal a.(off + i) b.(i)) then matches := false
    done;
    if !matches then Alcotest.failf "derived stream 1 replays stream 0 at offset %d" off
  done

let test_float_range () =
  let g = Util.Prng.create 3 in
  for _ = 1 to 10_000 do
    let u = Util.Prng.float g in
    if u < 0.0 || u >= 1.0 then Alcotest.failf "float out of [0,1): %f" u
  done

let test_float_pos_never_zero () =
  let g = Util.Prng.create 5 in
  for _ = 1 to 10_000 do
    if Util.Prng.float_pos g <= 0.0 then Alcotest.fail "float_pos returned a non-positive value"
  done

let test_int_bounds () =
  let g = Util.Prng.create 13 in
  for _ = 1 to 10_000 do
    let v = Util.Prng.int g 7 in
    if v < 0 || v >= 7 then Alcotest.failf "int out of range: %d" v
  done

let test_int_rejects_bad_bound () =
  let g = Util.Prng.create 1 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Prng.int: bound must be positive") (fun () ->
      ignore (Util.Prng.int g 0))

let test_int_covers_all_values () =
  let g = Util.Prng.create 17 in
  let seen = Array.make 5 false in
  for _ = 1 to 1000 do
    seen.(Util.Prng.int g 5) <- true
  done;
  Alcotest.(check bool) "all residues reached" true (Array.for_all Fun.id seen)

let test_float_mean () =
  let g = Util.Prng.create 23 in
  let n = 100_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Util.Prng.float g
  done;
  check_close "uniform mean near 0.5" 0.01 0.5 (!sum /. float_of_int n)

let test_shuffle_permutation () =
  let g = Util.Prng.create 31 in
  let a = Array.init 20 Fun.id in
  Util.Prng.shuffle g a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "shuffle is a permutation" (Array.init 20 Fun.id) sorted

let test_pick () =
  let g = Util.Prng.create 37 in
  let l = [ 1; 2; 3 ] in
  for _ = 1 to 50 do
    Alcotest.(check bool) "pick yields a member" true (List.mem (Util.Prng.pick g l) l)
  done;
  Alcotest.check_raises "empty pick" (Invalid_argument "Prng.pick: empty list") (fun () ->
      ignore (Util.Prng.pick g []))

(* ------------------------------------------------------------------ *)
(* Dist                                                                *)
(* ------------------------------------------------------------------ *)

let sample_mean d n seed =
  let g = Util.Prng.create seed in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Util.Dist.sample d g
  done;
  !sum /. float_of_int n

let test_exponential_mean () =
  check_close "exp(2) mean 0.5" 0.02 0.5 (sample_mean (Util.Dist.Exponential 2.0) 100_000 41)

let test_erlang_mean () =
  check_close "erlang(4, 2) mean 2.0" 0.05 2.0 (sample_mean (Util.Dist.Erlang (4, 2.0)) 100_000 43)

let test_uniform_mean () =
  check_close "uniform[2,6) mean 4" 0.05 4.0 (sample_mean (Util.Dist.Uniform (2.0, 6.0)) 100_000 47)

let test_constant () =
  let g = Util.Prng.create 1 in
  check_float "constant" 3.25 (Util.Dist.sample (Util.Dist.Constant 3.25) g)

let test_analytic_means () =
  check_float "exp mean" 0.25 (Util.Dist.mean (Util.Dist.Exponential 4.0));
  check_float "erlang mean" 1.5 (Util.Dist.mean (Util.Dist.Erlang (3, 2.0)));
  check_float "uniform mean" 2.0 (Util.Dist.mean (Util.Dist.Uniform (1.0, 3.0)));
  check_float "constant mean" 9.0 (Util.Dist.mean (Util.Dist.Constant 9.0))

let test_cv () =
  check_float "exp cv" 1.0 (Util.Dist.coefficient_of_variation (Util.Dist.Exponential 3.0));
  check_float "erlang4 cv" 0.5 (Util.Dist.coefficient_of_variation (Util.Dist.Erlang (4, 1.0)));
  check_float "constant cv" 0.0 (Util.Dist.coefficient_of_variation (Util.Dist.Constant 2.0))

let test_validate () =
  let bad d = match Util.Dist.validate d with Error _ -> true | Ok _ -> false in
  Alcotest.(check bool) "negative constant rejected" true (bad (Util.Dist.Constant (-1.0)));
  Alcotest.(check bool) "zero-rate exp rejected" true (bad (Util.Dist.Exponential 0.0));
  Alcotest.(check bool) "erlang k=0 rejected" true (bad (Util.Dist.Erlang (0, 1.0)));
  Alcotest.(check bool) "inverted uniform rejected" true (bad (Util.Dist.Uniform (2.0, 1.0)));
  Alcotest.(check bool) "good exp accepted" false (bad (Util.Dist.Exponential 1.0))

let test_erlang_concentration () =
  (* Erlang-16 is much more concentrated than an exponential of equal mean. *)
  let g = Util.Prng.create 51 in
  let below_half d =
    let count = ref 0 in
    for _ = 1 to 10_000 do
      if Util.Dist.sample d g < 0.5 then incr count
    done;
    float_of_int !count /. 10_000.0
  in
  let exp_frac = below_half (Util.Dist.Exponential 1.0) in
  let erl_frac = below_half (Util.Dist.Erlang (16, 16.0)) in
  Alcotest.(check bool)
    (Printf.sprintf "erlang mass near mean (exp %.3f vs erl %.3f)" exp_frac erl_frac)
    true (erl_frac < exp_frac)

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

let test_stats_basic () =
  let s = Util.Stats.create () in
  List.iter (Util.Stats.add s) [ 1.0; 2.0; 3.0; 4.0 ];
  Alcotest.(check int) "count" 4 (Util.Stats.count s);
  check_float "mean" 2.5 (Util.Stats.mean s);
  check_close "variance" 1e-9 (5.0 /. 3.0) (Util.Stats.variance s);
  check_float "min" 1.0 (Util.Stats.min_value s);
  check_float "max" 4.0 (Util.Stats.max_value s)

let test_stats_empty () =
  let s = Util.Stats.create () in
  Alcotest.(check bool) "empty mean is nan" true (Float.is_nan (Util.Stats.mean s))

let test_stats_merge () =
  let a = Util.Stats.create () and b = Util.Stats.create () and whole = Util.Stats.create () in
  let xs = [ 5.0; 1.0; 3.0 ] and ys = [ 2.0; 8.0; 13.0; 1.0 ] in
  List.iter (Util.Stats.add a) xs;
  List.iter (Util.Stats.add b) ys;
  List.iter (Util.Stats.add whole) (xs @ ys);
  let merged = Util.Stats.merge a b in
  Alcotest.(check int) "merged count" (Util.Stats.count whole) (Util.Stats.count merged);
  check_close "merged mean" 1e-9 (Util.Stats.mean whole) (Util.Stats.mean merged);
  check_close "merged variance" 1e-9 (Util.Stats.variance whole) (Util.Stats.variance merged)

let test_timed_average () =
  let t = Util.Stats.Timed.create ~at:0.0 ~value:1.0 in
  Util.Stats.Timed.update t ~at:4.0 ~value:0.0;
  Util.Stats.Timed.update t ~at:6.0 ~value:1.0;
  check_float "integral" 8.0 (Util.Stats.Timed.integral t ~upto:10.0);
  check_float "average" 0.8 (Util.Stats.Timed.average t ~upto:10.0)

let test_timed_monotonic () =
  let t = Util.Stats.Timed.create ~at:5.0 ~value:1.0 in
  Alcotest.check_raises "time going backwards"
    (Invalid_argument "Stats.Timed.update: time went backwards") (fun () ->
      Util.Stats.Timed.update t ~at:4.0 ~value:0.0)

let test_histogram () =
  let h = Util.Stats.Histogram.create ~lo:0.0 ~hi:10.0 ~bins:10 in
  List.iter (Util.Stats.Histogram.add h) [ 0.5; 1.5; 1.6; 9.5; 42.0; -3.0 ];
  let counts = Util.Stats.Histogram.counts h in
  Alcotest.(check int) "first bin holds only in-range samples" 1 counts.(0);
  Alcotest.(check int) "second bin" 2 counts.(1);
  Alcotest.(check int) "last bin holds only in-range samples" 1 counts.(9);
  Alcotest.(check int) "total counts every sample" 6 (Util.Stats.Histogram.total h);
  Alcotest.(check int) "underflow" 1 (Util.Stats.Histogram.underflow h);
  Alcotest.(check int) "overflow" 1 (Util.Stats.Histogram.overflow h);
  Alcotest.(check int) "in_range" 4 (Util.Stats.Histogram.in_range h)

let test_histogram_outliers_excluded_from_quantile () =
  (* Ten in-range samples spread over [0,100), then a burst of far-out
     outliers on each side.  Under the old clamping behaviour the outliers
     piled into the edge bins and dragged the median; now the quantiles
     must be computed over the in-range samples alone. *)
  let h = Util.Stats.Histogram.create ~lo:0.0 ~hi:100.0 ~bins:100 in
  for i = 0 to 9 do
    Util.Stats.Histogram.add h ((float_of_int i *. 10.0) +. 5.0)
  done;
  let clean_median = Util.Stats.Histogram.quantile h 0.5 in
  for _ = 1 to 50 do
    Util.Stats.Histogram.add h 1.0e6;
    Util.Stats.Histogram.add h (-1.0e6)
  done;
  check_close "median unmoved by outliers" 1e-9 clean_median
    (Util.Stats.Histogram.quantile h 0.5);
  Alcotest.(check int) "overflow counted" 50 (Util.Stats.Histogram.overflow h);
  Alcotest.(check int) "underflow counted" 50 (Util.Stats.Histogram.underflow h);
  Alcotest.(check int) "in_range stable" 10 (Util.Stats.Histogram.in_range h)

let test_histogram_empty_after_outliers () =
  let h = Util.Stats.Histogram.create ~lo:0.0 ~hi:1.0 ~bins:4 in
  Util.Stats.Histogram.add h 5.0;
  Util.Stats.Histogram.add h (-5.0);
  Alcotest.(check bool)
    "quantile is nan with no in-range samples" true
    (Float.is_nan (Util.Stats.Histogram.quantile h 0.5))

let test_histogram_quantile () =
  let h = Util.Stats.Histogram.create ~lo:0.0 ~hi:100.0 ~bins:100 in
  for i = 1 to 100 do
    Util.Stats.Histogram.add h (float_of_int i -. 0.5)
  done;
  check_close "median near 50" 1.5 50.0 (Util.Stats.Histogram.quantile h 0.5);
  check_close "p90 near 90" 1.5 90.0 (Util.Stats.Histogram.quantile h 0.9)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let prop_prng_int_in_bounds =
  QCheck.Test.make ~name:"prng int stays within bound" ~count:500
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let g = Util.Prng.create seed in
      let v = Util.Prng.int g bound in
      v >= 0 && v < bound)

let prop_stats_mean_bounded =
  QCheck.Test.make ~name:"sample mean lies within [min,max]" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 50) (float_range (-1000.0) 1000.0))
    (fun xs ->
      let s = Util.Stats.create () in
      List.iter (Util.Stats.add s) xs;
      let m = Util.Stats.mean s in
      m >= Util.Stats.min_value s -. 1e-9 && m <= Util.Stats.max_value s +. 1e-9)

let prop_merge_matches_whole =
  QCheck.Test.make ~name:"merge equals single-pass stats" ~count:200
    QCheck.(
      pair
        (list_of_size (Gen.int_range 1 30) (float_range (-100.0) 100.0))
        (list_of_size (Gen.int_range 1 30) (float_range (-100.0) 100.0)))
    (fun (xs, ys) ->
      let a = Util.Stats.create () and b = Util.Stats.create () and w = Util.Stats.create () in
      List.iter (Util.Stats.add a) xs;
      List.iter (Util.Stats.add b) ys;
      List.iter (Util.Stats.add w) (xs @ ys);
      let m = Util.Stats.merge a b in
      Float.abs (Util.Stats.mean m -. Util.Stats.mean w) < 1e-6)

let () =
  Alcotest.run "util"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "seeds differ" `Quick test_prng_seeds_differ;
          Alcotest.test_case "copy" `Quick test_prng_copy_independent;
          Alcotest.test_case "split" `Quick test_prng_split_independent;
          Alcotest.test_case "derive distinct" `Quick test_prng_derive_distinct_and_deterministic;
          Alcotest.test_case "premix decorrelates" `Quick
            test_prng_premix_decorrelates_derived_streams;
          Alcotest.test_case "float range" `Quick test_float_range;
          Alcotest.test_case "float_pos positive" `Quick test_float_pos_never_zero;
          Alcotest.test_case "int bounds" `Quick test_int_bounds;
          Alcotest.test_case "int bad bound" `Quick test_int_rejects_bad_bound;
          Alcotest.test_case "int coverage" `Quick test_int_covers_all_values;
          Alcotest.test_case "float mean" `Slow test_float_mean;
          Alcotest.test_case "shuffle permutation" `Quick test_shuffle_permutation;
          Alcotest.test_case "pick" `Quick test_pick;
          QCheck_alcotest.to_alcotest prop_prng_int_in_bounds;
        ] );
      ( "dist",
        [
          Alcotest.test_case "exponential mean" `Slow test_exponential_mean;
          Alcotest.test_case "erlang mean" `Slow test_erlang_mean;
          Alcotest.test_case "uniform mean" `Slow test_uniform_mean;
          Alcotest.test_case "constant" `Quick test_constant;
          Alcotest.test_case "analytic means" `Quick test_analytic_means;
          Alcotest.test_case "coefficients of variation" `Quick test_cv;
          Alcotest.test_case "validate" `Quick test_validate;
          Alcotest.test_case "erlang concentration" `Quick test_erlang_concentration;
        ] );
      ( "stats",
        [
          Alcotest.test_case "basic moments" `Quick test_stats_basic;
          Alcotest.test_case "empty" `Quick test_stats_empty;
          Alcotest.test_case "merge" `Quick test_stats_merge;
          Alcotest.test_case "timed average" `Quick test_timed_average;
          Alcotest.test_case "timed monotonicity" `Quick test_timed_monotonic;
          Alcotest.test_case "histogram binning" `Quick test_histogram;
          Alcotest.test_case "histogram quantile" `Quick test_histogram_quantile;
          Alcotest.test_case "histogram outliers excluded from quantile" `Quick
            test_histogram_outliers_excluded_from_quantile;
          Alcotest.test_case "histogram all-outlier quantile is nan" `Quick
            test_histogram_empty_after_outliers;
          QCheck_alcotest.to_alcotest prop_stats_mean_bounded;
          QCheck_alcotest.to_alcotest prop_merge_matches_whole;
        ] );
    ]
