(* Behavioural tests of the voting protocol (Section 3.1, Figures 3-4). *)

module Cluster = Blockrep.Cluster
module Types = Blockrep.Types
module Block = Blockdev.Block

let make ?(n = 3) ?(blocks = 8) ?quorum ?(net_mode = Net.Network.Multicast) () =
  Cluster.create
    (Blockrep.Config.make_exn ~scheme:Types.Voting ~n_sites:n ~n_blocks:blocks ?quorum ~net_mode
       ~seed:101 ())

let payload s = Block.of_string s

let write_ok c ~site ~block data =
  match Cluster.write_sync c ~site ~block (payload data) with
  | Ok v -> v
  | Error e -> Alcotest.failf "write failed: %s" (Types.failure_reason_to_string e)

let read_ok c ~site ~block =
  match Cluster.read_sync c ~site ~block with
  | Ok (b, v) -> (Block.to_string b, v)
  | Error e -> Alcotest.failf "read failed: %s" (Types.failure_reason_to_string e)

let test_read_write_roundtrip () =
  let c = make () in
  let v = write_ok c ~site:0 ~block:3 "hello" in
  Alcotest.(check int) "first version" 1 v;
  let data, rv = read_ok c ~site:1 ~block:3 in
  Alcotest.(check int) "read version" 1 rv;
  Alcotest.(check string) "data" "hello" (String.sub data 0 5)

let test_versions_increment () =
  let c = make () in
  Alcotest.(check int) "v1" 1 (write_ok c ~site:0 ~block:0 "a");
  Alcotest.(check int) "v2" 2 (write_ok c ~site:1 ~block:0 "b");
  Alcotest.(check int) "v3" 3 (write_ok c ~site:2 ~block:0 "c");
  Alcotest.(check int) "other blocks independent" 1 (write_ok c ~site:0 ~block:1 "x")

let test_write_updates_all_reachable () =
  let c = make () in
  ignore (write_ok c ~site:0 ~block:2 "spread");
  Cluster.run_until c 50.0;
  for site = 0 to 2 do
    let v = Blockdev.Version_vector.get (Cluster.site_versions c site) 2 in
    Alcotest.(check int) (Printf.sprintf "site %d version" site) 1 v
  done

let test_no_quorum_refuses () =
  let c = make ~n:3 () in
  Cluster.fail_site c 1;
  Cluster.fail_site c 2;
  (match Cluster.write_sync c ~site:0 ~block:0 (payload "x") with
  | Error Types.No_quorum -> ()
  | Ok _ -> Alcotest.fail "write accepted without quorum"
  | Error e -> Alcotest.failf "unexpected error: %s" (Types.failure_reason_to_string e));
  match Cluster.read_sync c ~site:0 ~block:0 with
  | Error Types.No_quorum -> ()
  | Ok _ -> Alcotest.fail "read accepted without quorum"
  | Error e -> Alcotest.failf "unexpected error: %s" (Types.failure_reason_to_string e)

let test_minority_partition_refused () =
  let c = make ~n:5 () in
  Cluster.partition c [ [ 0; 1 ]; [ 2; 3; 4 ] ];
  (match Cluster.write_sync c ~site:0 ~block:0 (payload "minority") with
  | Error Types.No_quorum -> ()
  | _ -> Alcotest.fail "minority side accepted a write");
  match Cluster.write_sync c ~site:2 ~block:0 (payload "majority") with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "majority refused: %s" (Types.failure_reason_to_string e)

let test_failed_local_site_refuses () =
  let c = make () in
  Cluster.fail_site c 0;
  match Cluster.read_sync c ~site:0 ~block:0 with
  | Error Types.Site_not_available -> ()
  | _ -> Alcotest.fail "failed site served a read"

let test_repair_is_immediate () =
  let c = make () in
  Cluster.fail_site c 2;
  Cluster.repair_site c 2;
  Alcotest.(check bool) "no comatose state under voting" true
    (Cluster.site_state c 2 = Types.Available);
  (* And no recovery traffic was generated. *)
  Alcotest.(check int) "no recovery messages" 0
    (Net.Traffic.by_operation (Cluster.traffic c) Net.Message.Recovery)

let test_lazy_block_recovery_on_read () =
  let c = make () in
  Cluster.fail_site c 2;
  ignore (write_ok c ~site:0 ~block:5 "updated");
  Cluster.repair_site c 2;
  Cluster.run_until c (Sim.Engine.now (Cluster.engine c) +. 20.0);
  (* Site 2 is stale on block 5 but up; a read at site 2 pulls the block. *)
  Alcotest.(check int) "stale before read" 0
    (Blockdev.Version_vector.get (Cluster.site_versions c 2) 5);
  let data, v = read_ok c ~site:2 ~block:5 in
  Alcotest.(check int) "current version served" 1 v;
  Alcotest.(check string) "current data served" "updated" (String.sub data 0 7);
  Alcotest.(check int) "local copy repaired" 1
    (Blockdev.Version_vector.get (Cluster.site_versions c 2) 5);
  Alcotest.(check int) "one block transfer" 1
    (Net.Traffic.by_category (Cluster.traffic c) Net.Message.Block_transfer);
  (* A second read is purely local-current: no more transfers. *)
  ignore (read_ok c ~site:2 ~block:5);
  Alcotest.(check int) "no further transfers" 1
    (Net.Traffic.by_category (Cluster.traffic c) Net.Message.Block_transfer)

let test_stale_write_needs_no_transfer () =
  (* A write at a stale site never fetches the old contents: it only needs
     the version numbers from the votes. *)
  let c = make () in
  Cluster.fail_site c 2;
  ignore (write_ok c ~site:0 ~block:1 "first");
  Cluster.repair_site c 2;
  Cluster.run_until c (Sim.Engine.now (Cluster.engine c) +. 20.0);
  let v = write_ok c ~site:2 ~block:1 "second" in
  Alcotest.(check int) "version above the unseen one" 2 v;
  Alcotest.(check int) "no block transfers at all" 0
    (Net.Traffic.by_category (Cluster.traffic c) Net.Message.Block_transfer);
  let data, _ = read_ok c ~site:0 ~block:1 in
  Alcotest.(check string) "all sites converged on the new write" "second" (String.sub data 0 6)

let test_even_n_tiebreak_behaviour () =
  let c = make ~n:4 () in
  (* Down to sites {0,1}: weight 5 of 9 — quorum holds. *)
  Cluster.fail_site c 2;
  Cluster.fail_site c 3;
  ignore (write_ok c ~site:1 ~block:0 "heavy side");
  (* Down to sites {1,2}: weight 4 of 9 — no quorum. *)
  let c2 = make ~n:4 () in
  Cluster.fail_site c2 0;
  Cluster.fail_site c2 3;
  match Cluster.write_sync c2 ~site:1 ~block:0 (payload "light side") with
  | Error Types.No_quorum -> ()
  | _ -> Alcotest.fail "light side formed a quorum"

let test_safety_across_failures () =
  (* The invariant behind voting: any read quorum returns the latest
     successfully written value, whatever the failure pattern. *)
  let c = make ~n:5 ~blocks:4 () in
  let latest = Array.make 4 "" in
  let rng = Util.Prng.create 7 in
  let sites_up = Array.make 5 true in
  for step = 1 to 200 do
    let roll = Util.Prng.int rng 10 in
    if roll < 2 then begin
      (* Flip a site.  Drain in-flight traffic first: the one-round write
         acks on votes and propagates with an unacknowledged multicast
         (the paper's 1+u budget), so the voting envelope only promises
         safety for failures that land between settled operations — a
         crash that swallows an in-flight update is the documented window
         that {!Check.Chaos}'s forced-failure demonstration exercises. *)
      Cluster.settle c;
      let s = Util.Prng.int rng 5 in
      if sites_up.(s) then Cluster.fail_site c s else Cluster.repair_site c s;
      sites_up.(s) <- not sites_up.(s)
    end
    else begin
      let block = Util.Prng.int rng 4 in
      let site = Util.Prng.int rng 5 in
      if sites_up.(site) then
        if roll < 6 then begin
          let tag = Printf.sprintf "s%d" step in
          match Cluster.write_sync c ~site ~block (payload tag) with
          | Ok _ -> latest.(block) <- tag
          | Error _ -> ()
        end
        else
          match Cluster.read_sync c ~site ~block with
          | Ok (b, _) ->
              if latest.(block) <> "" then
                let got = String.sub (Block.to_string b) 0 (String.length latest.(block)) in
                if got <> latest.(block) then
                  Alcotest.failf "stale read at step %d: got %s want %s" step got latest.(block)
          | Error _ -> ()
    end;
    if not (Cluster.consistent_available_stores c) then
      Alcotest.failf "quorum-safety invariant broken at step %d" step
  done

let test_unicast_mode_works () =
  let c = make ~net_mode:Net.Network.Unicast () in
  ignore (write_ok c ~site:0 ~block:0 "uni");
  let data, _ = read_ok c ~site:2 ~block:0 in
  Alcotest.(check string) "unicast roundtrip" "uni" (String.sub data 0 3)

let () =
  Alcotest.run "voting"
    [
      ( "operations",
        [
          Alcotest.test_case "roundtrip" `Quick test_read_write_roundtrip;
          Alcotest.test_case "version increments" `Quick test_versions_increment;
          Alcotest.test_case "write updates reachable sites" `Quick test_write_updates_all_reachable;
          Alcotest.test_case "unicast mode" `Quick test_unicast_mode_works;
        ] );
      ( "quorums",
        [
          Alcotest.test_case "no quorum refused" `Quick test_no_quorum_refuses;
          Alcotest.test_case "minority partition refused" `Quick test_minority_partition_refused;
          Alcotest.test_case "failed local site" `Quick test_failed_local_site_refuses;
          Alcotest.test_case "even-n tie-break" `Quick test_even_n_tiebreak_behaviour;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "repair is immediate" `Quick test_repair_is_immediate;
          Alcotest.test_case "lazy per-block recovery" `Quick test_lazy_block_recovery_on_read;
          Alcotest.test_case "stale write avoids transfer" `Quick test_stale_write_needs_no_transfer;
        ] );
      ("safety", [ Alcotest.test_case "random failures" `Slow test_safety_across_failures ]);
    ]
