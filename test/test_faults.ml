(* Tests for the fault-injection layer (Net.Faults), the bounded-retry
   layer (Blockrep.Retry) and their end-to-end composition: a reliable
   device that keeps serving — and reports its degradation — on a lossy
   network. *)

module Faults = Net.Faults
module Retry = Blockrep.Retry
module Cluster = Blockrep.Cluster
module Runtime = Blockrep.Runtime
module Config = Blockrep.Config
module Types = Blockrep.Types
module Device = Blockrep.Reliable_device
module Block = Blockdev.Block

(* ------------------------------------------------------------------ *)
(* Profiles                                                            *)
(* ------------------------------------------------------------------ *)

let test_profile_validation () =
  Alcotest.(check bool) "pristine is pristine" true (Faults.is_pristine Faults.pristine);
  (match Faults.make ~drop:0.1 ~duplicate:0.05 () with
  | Ok p -> Alcotest.(check bool) "valid profile not pristine" false (Faults.is_pristine p)
  | Error e -> Alcotest.failf "valid profile rejected: %s" e);
  (match Faults.make ~drop:1.5 () with
  | Ok _ -> Alcotest.fail "drop > 1 accepted"
  | Error _ -> ());
  (match Faults.make ~duplicate:(-0.1) () with
  | Ok _ -> Alcotest.fail "negative probability accepted"
  | Error _ -> ());
  (match Faults.make ~extra_delay:(-1.0) () with
  | Ok _ -> Alcotest.fail "negative delay accepted"
  | Error _ -> ());
  match Faults.make ~reorder:0.5 ~jitter:(Util.Dist.Constant (-2.0)) () with
  | Ok _ -> Alcotest.fail "negative jitter accepted"
  | Error _ -> ()

let test_plan_pristine_is_clean () =
  let f = Faults.of_seed ~seed:1 Faults.pristine in
  for _ = 1 to 100 do
    Alcotest.(check (list (float 0.0))) "one undisturbed copy" [ 0.0 ]
      (Faults.plan f ~from:0 ~dst:1)
  done;
  Alcotest.(check int) "nothing injected" 0 (Faults.total_injected f)

let test_plan_drop_all () =
  let f = Faults.of_seed ~seed:2 (Faults.make_exn ~drop:1.0 ()) in
  for _ = 1 to 10 do
    Alcotest.(check (list (float 0.0))) "dropped" [] (Faults.plan f ~from:0 ~dst:1)
  done;
  Alcotest.(check int) "drops counted" 10 (Faults.drops f)

let test_plan_duplicate_all () =
  let f = Faults.of_seed ~seed:3 (Faults.make_exn ~duplicate:1.0 ()) in
  List.iter
    (fun d -> Alcotest.(check (float 0.0)) "no extra delay" 0.0 d)
    (Faults.plan f ~from:0 ~dst:1);
  Alcotest.(check int) "two copies" 2 (List.length (Faults.plan f ~from:0 ~dst:1));
  Alcotest.(check int) "duplicates counted" 2 (Faults.duplicates f)

let test_plan_extra_delay () =
  let f = Faults.of_seed ~seed:4 (Faults.make_exn ~extra_delay:0.5 ()) in
  Alcotest.(check (list (float 1e-9))) "deterministic extra delay" [ 0.5 ]
    (Faults.plan f ~from:0 ~dst:1);
  Alcotest.(check int) "delayed counted" 1 (Faults.delayed f)

let test_plan_reorder_jitter () =
  let f =
    Faults.of_seed ~seed:5 (Faults.make_exn ~reorder:1.0 ~jitter:(Util.Dist.Constant 2.0) ())
  in
  (* Every delivery takes the base jitter draw; a reorder defers it by a
     second, independent draw on top.  Constant 2.0 makes both exact. *)
  Alcotest.(check (list (float 1e-9))) "jitter added" [ 4.0 ] (Faults.plan f ~from:0 ~dst:1);
  Alcotest.(check int) "reorders counted" 1 (Faults.reorders f);
  Alcotest.(check int) "jitter counted" 1 (Faults.jittered f)

let test_plan_jitter_only () =
  (* Regression: a jitter-only profile used to be classified pristine
     (is_pristine ignored the jitter field), so it injected nothing. *)
  let p = Faults.make_exn ~jitter:(Util.Dist.Constant 2.0) () in
  Alcotest.(check bool) "jitter-only profile is not pristine" false (Faults.is_pristine p);
  let f = Faults.of_seed ~seed:5 p in
  Alcotest.(check (list (float 1e-9))) "delivery delayed by the draw" [ 2.0 ]
    (Faults.plan f ~from:0 ~dst:1);
  Alcotest.(check int) "jitter counted" 1 (Faults.jittered f);
  Alcotest.(check int) "no reorder charged" 0 (Faults.reorders f)

let test_per_link_override () =
  let f = Faults.of_seed ~seed:6 Faults.pristine in
  let lossy = Faults.make_exn ~drop:1.0 () in
  Faults.set_link f ~from:0 ~dst:1 lossy;
  Alcotest.(check bool) "override applies" true
    (Faults.link_profile f ~from:0 ~dst:1 = lossy);
  Alcotest.(check bool) "other links keep the default" true
    (Faults.is_pristine (Faults.link_profile f ~from:1 ~dst:0));
  Alcotest.(check (list (float 0.0))) "overridden link drops" [] (Faults.plan f ~from:0 ~dst:1);
  Alcotest.(check (list (float 0.0))) "default link clean" [ 0.0 ] (Faults.plan f ~from:1 ~dst:0);
  Faults.reset_counters f;
  Alcotest.(check int) "counters reset" 0 (Faults.total_injected f)

(* ------------------------------------------------------------------ *)
(* Network-level behaviour                                             *)
(* ------------------------------------------------------------------ *)

let make_cluster ?(scheme = Types.Naive_available_copy) ?(n = 3) ?fault_profile () =
  Cluster.create (Config.make_exn ~scheme ~n_sites:n ~n_blocks:8 ~seed:909 ?fault_profile ())

let settle c = Cluster.run_until c (Sim.Engine.now (Cluster.engine c) +. 50.0)

let test_network_drop_all_starves_receivers () =
  let c = make_cluster () in
  settle c;
  let f = Faults.of_seed ~seed:7 (Faults.make_exn ~drop:1.0 ()) in
  Cluster.install_faults c f;
  let net = Cluster.network c in
  let sent0 = Net.Traffic.total (Cluster.traffic c) in
  let delivered0 = Runtime.Transport.messages_delivered net in
  ignore (Cluster.write_sync c ~site:0 ~block:0 (Block.of_string "lost"));
  settle c;
  Alcotest.(check bool) "sends still charged" true (Net.Traffic.total (Cluster.traffic c) > sent0);
  Alcotest.(check int) "nothing delivered" delivered0 (Runtime.Transport.messages_delivered net);
  Alcotest.(check bool) "drops recorded" true (Faults.drops f > 0)

let test_network_duplicates_deliver_twice () =
  let c = make_cluster () in
  settle c;
  let f = Faults.of_seed ~seed:8 (Faults.make_exn ~duplicate:1.0 ()) in
  Cluster.install_faults c f;
  let net = Cluster.network c in
  let delivered0 = Runtime.Transport.messages_delivered net in
  (* NAC write: one broadcast, n-1 = 2 receivers, each delivery doubled. *)
  ignore (Cluster.write_sync c ~site:0 ~block:1 (Block.of_string "twice"));
  settle c;
  Alcotest.(check int) "each receiver sees two copies" 4
    (Runtime.Transport.messages_delivered net - delivered0);
  Alcotest.(check int) "duplicates recorded" 2 (Faults.duplicates f)

let test_network_jitter_only_perturbs_delivery () =
  (* End-to-end regression for the is_pristine fix: a jitter-only profile
     must actually slow deliveries down.  Two identical clusters run the
     same voting write (its vote round waits on real round trips, unlike
     the fire-and-forget copy-scheme update); the jittered one finishes
     strictly later in virtual time — Constant 2.0 adds exactly 2.0 per
     delivery, so the slowest vote round trip gains at least 2.0. *)
  let finish_time fault_profile =
    let c = make_cluster ~scheme:Types.Voting ?fault_profile () in
    settle c;
    let t0 = Sim.Engine.now (Cluster.engine c) in
    ignore (Cluster.write_sync c ~site:0 ~block:0 (Block.of_string "slow"));
    Sim.Engine.now (Cluster.engine c) -. t0
  in
  let clean = finish_time None in
  let jittered = finish_time (Some (Faults.make_exn ~jitter:(Util.Dist.Constant 2.0) ())) in
  Alcotest.(check bool)
    (Printf.sprintf "jitter-only profile delays the round (%.3f vs %.3f)" jittered clean)
    true
    (jittered >= clean +. 2.0)

let test_config_fault_profile_installs_injector () =
  let c = make_cluster ~fault_profile:(Faults.make_exn ~drop:0.5 ()) () in
  (match Cluster.faults c with
  | Some _ -> ()
  | None -> Alcotest.fail "non-pristine profile must install an injector");
  let pristine = make_cluster () in
  match Cluster.faults pristine with
  | None -> ()
  | Some _ -> Alcotest.fail "pristine config must not install an injector"

(* ------------------------------------------------------------------ *)
(* Retry                                                               *)
(* ------------------------------------------------------------------ *)

let test_backoff_schedule () =
  let p = Retry.default_policy ~unit:1.0 () in
  Alcotest.(check (float 1e-9)) "first backoff" 1.0 (Retry.backoff p ~attempt:1);
  Alcotest.(check (float 1e-9)) "doubles" 2.0 (Retry.backoff p ~attempt:2);
  Alcotest.(check (float 1e-9)) "keeps doubling" 8.0 (Retry.backoff p ~attempt:4);
  Alcotest.(check (float 1e-9)) "caps at 16 units" 16.0 (Retry.backoff p ~attempt:7);
  (match Retry.validate Retry.no_retry with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "no_retry invalid: %s" e);
  match Retry.validate { p with max_attempts = 0 } with
  | Ok _ -> Alcotest.fail "zero attempts accepted"
  | Error _ -> ()

let test_jitter_bounds () =
  let p = { (Retry.default_policy ~unit:1.0 ()) with jitter = Retry.Decorrelated } in
  let rng = Random.State.make [| 42 |] in
  (* Seed of the chain: previous delay = base_delay. *)
  let d1 = Retry.backoff_jittered p ~rng ~prev:p.Retry.base_delay in
  Alcotest.(check bool) "first draw >= base" true (d1 >= p.Retry.base_delay);
  Alcotest.(check bool) "first draw <= 3*base" true (d1 <= 3.0 *. p.Retry.base_delay);
  (* A huge previous delay is clamped to the policy envelope. *)
  let d2 = Retry.backoff_jittered p ~rng ~prev:1_000_000.0 in
  Alcotest.(check bool) "clamped below max" true (d2 <= p.Retry.max_delay);
  (* A degenerate previous delay still respects the floor. *)
  let d3 = Retry.backoff_jittered p ~rng ~prev:0.0 in
  Alcotest.(check (float 1e-9)) "floor when prev collapses" p.Retry.base_delay d3

let prop_jitter_preserves_bounds =
  (* The decorrelated-jitter satellite's contract: whatever the rng draws
     and wherever the chain has wandered, every delay stays within the
     policy's [base_delay, max_delay] envelope. *)
  QCheck.Test.make ~name:"decorrelated jitter stays within [base_delay, max_delay]" ~count:500
    QCheck.(pair (int_range 0 10_000) (float_bound_exclusive 200.0))
    (fun (seed, prev) ->
      let p = { (Retry.default_policy ~unit:1.0 ()) with jitter = Retry.Decorrelated } in
      let rng = Random.State.make [| seed |] in
      let d = Retry.backoff_jittered p ~rng ~prev in
      d >= p.Retry.base_delay && d <= p.Retry.max_delay)

let test_jitter_chain_in_run () =
  (* A failing operation under Decorrelated jitter: the slept virtual time
     is bounded by the same envelope, per retry, and the run is
     deterministic in the rng seed. *)
  let total_slept seed =
    let engine = Sim.Engine.create () in
    let stats = Retry.create_stats () in
    let p =
      { (Retry.default_policy ~unit:1.0 ()) with Retry.jitter = Retry.Decorrelated }
    in
    let rng = Random.State.make [| seed |] in
    ignore (Retry.run p ~engine ~stats ~rng (fun ~attempt:_ -> Error Types.No_quorum));
    (Retry.attempts stats, Sim.Engine.now engine)
  in
  let attempts, slept = total_slept 7 in
  let retries = attempts - 1 in
  Alcotest.(check bool) "at least base per retry" true (slept >= float_of_int retries *. 1.0);
  Alcotest.(check bool) "at most max per retry" true (slept <= float_of_int retries *. 16.0);
  let _, slept' = total_slept 7 in
  Alcotest.(check (float 1e-9)) "deterministic in the seed" slept slept'

let test_jitter_off_is_bit_identical () =
  (* Default-off: passing an rng without opting into Decorrelated jitter
     must not perturb the deterministic schedule. *)
  let run_with rng =
    let engine = Sim.Engine.create () in
    let stats = Retry.create_stats () in
    let p = Retry.default_policy ~unit:1.0 () in
    ignore
      (Retry.run p ~engine ~stats ?rng (fun ~attempt ->
           if attempt < 3 then Error Types.No_quorum else Ok ()));
    Sim.Engine.now engine
  in
  Alcotest.(check (float 1e-9))
    "No_jitter ignores the rng" (run_with None)
    (run_with (Some (Random.State.make [| 99 |])))

let test_retry_recovers_and_advances_time () =
  let engine = Sim.Engine.create () in
  let stats = Retry.create_stats () in
  let p = Retry.default_policy ~unit:1.0 () in
  let calls = ref 0 in
  let result =
    Retry.run p ~engine ~stats (fun ~attempt ->
        incr calls;
        if attempt < 3 then Error Types.No_quorum else Ok "served")
  in
  Alcotest.(check bool) "eventually succeeds" true (result = Ok "served");
  Alcotest.(check int) "three calls" 3 !calls;
  Alcotest.(check int) "operations" 1 (Retry.operations stats);
  Alcotest.(check int) "attempts" 3 (Retry.attempts stats);
  Alcotest.(check int) "retries" 2 (Retry.retries stats);
  Alcotest.(check int) "recovered" 1 (Retry.recovered stats);
  Alcotest.(check int) "no give-ups" 0 (Retry.gave_up stats);
  (* Backoffs 1 and 2 were slept in virtual time. *)
  Alcotest.(check (float 1e-9)) "virtual time advanced" 3.0 (Sim.Engine.now engine);
  Alcotest.(check int) "both errors remembered" 2 (List.length (Retry.last_errors stats))

let test_retry_gives_up () =
  let engine = Sim.Engine.create () in
  let stats = Retry.create_stats () in
  let p = { (Retry.default_policy ~unit:1.0 ()) with max_attempts = 3 } in
  let result = Retry.run p ~engine ~stats (fun ~attempt:_ -> Error Types.Timed_out) in
  Alcotest.(check bool) "last error surfaced" true (result = Error Types.Timed_out);
  Alcotest.(check int) "all attempts used" 3 (Retry.attempts stats);
  Alcotest.(check int) "gave up once" 1 (Retry.gave_up stats);
  Alcotest.(check int) "no timeout counted" 0 (Retry.timeouts stats)

let test_retry_deadline () =
  let engine = Sim.Engine.create () in
  let stats = Retry.create_stats () in
  let p =
    {
      Retry.max_attempts = 10;
      base_delay = 10.0;
      multiplier = 2.0;
      max_delay = 80.0;
      deadline = 5.0;
      jitter = Retry.No_jitter;
    }
  in
  let result = Retry.run p ~engine ~stats (fun ~attempt:_ -> Error Types.No_quorum) in
  Alcotest.(check bool) "error surfaced" true (result = Error Types.No_quorum);
  Alcotest.(check int) "stopped by deadline, not attempts" 1 (Retry.attempts stats);
  Alcotest.(check int) "timeout counted" 1 (Retry.timeouts stats);
  Alcotest.(check int) "not a give-up" 0 (Retry.gave_up stats)

let test_retry_respects_retryable_predicate () =
  let engine = Sim.Engine.create () in
  let stats = Retry.create_stats () in
  let p = Retry.default_policy ~unit:1.0 () in
  let calls = ref 0 in
  let result =
    Retry.run p ~engine ~stats
      ~retryable:(fun r -> r <> Types.Site_not_available)
      (fun ~attempt:_ ->
        incr calls;
        Error Types.Site_not_available)
  in
  Alcotest.(check bool) "error surfaced" true (result = Error Types.Site_not_available);
  Alcotest.(check int) "no retry on non-retryable error" 1 !calls;
  Alcotest.(check int) "no retries counted" 0 (Retry.retries stats)

let test_retry_invalid_bounds () =
  let p = Retry.default_policy ~unit:1.0 () in
  let reject label bad =
    match Retry.validate bad with
    | Ok _ -> Alcotest.failf "%s accepted" label
    | Error _ -> ()
  in
  reject "zero attempts" { p with max_attempts = 0 };
  reject "negative attempts" { p with max_attempts = -3 };
  reject "zero deadline" { p with deadline = 0.0 };
  reject "negative deadline" { p with deadline = -1.0 };
  reject "negative base delay" { p with base_delay = -0.5 };
  reject "shrinking multiplier" { p with multiplier = 0.5 };
  reject "max below base" { p with base_delay = 4.0; max_delay = 1.0 };
  (* ...and run refuses to start on an invalid policy. *)
  let engine = Sim.Engine.create () in
  let stats = Retry.create_stats () in
  match
    Retry.run { p with max_attempts = 0 } ~engine ~stats (fun ~attempt:_ -> Ok ())
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "run accepted an invalid policy"

let test_retry_conservation () =
  (* Every operation submitted must terminate in exactly one of the four
     ways the counters distinguish, whatever mix of outcomes occurs. *)
  let engine = Sim.Engine.create () in
  let stats = Retry.create_stats () in
  let p = { (Retry.default_policy ~unit:1.0 ()) with max_attempts = 2 } in
  (* success on first try *)
  ignore (Retry.run p ~engine ~stats (fun ~attempt:_ -> Ok ()));
  (* recovery on second try *)
  ignore
    (Retry.run p ~engine ~stats (fun ~attempt ->
         if attempt = 1 then Error Types.No_quorum else Ok ()));
  (* exhausts attempts *)
  ignore (Retry.run p ~engine ~stats (fun ~attempt:_ -> Error Types.No_quorum));
  (* rejected by the retryable predicate *)
  ignore
    (Retry.run p ~engine ~stats
       ~retryable:(fun _ -> false)
       (fun ~attempt:_ -> Error Types.Site_not_available));
  (* stopped by the deadline before the first retry *)
  let tight = { p with max_attempts = 10; base_delay = 10.0; deadline = 5.0 } in
  ignore (Retry.run tight ~engine ~stats (fun ~attempt:_ -> Error Types.Timed_out));
  Alcotest.(check int) "operations" 5 (Retry.operations stats);
  Alcotest.(check int) "succeeded" 2 (Retry.succeeded stats);
  Alcotest.(check int) "recovered" 1 (Retry.recovered stats);
  Alcotest.(check int) "gave up" 1 (Retry.gave_up stats);
  Alcotest.(check int) "rejected" 1 (Retry.rejected stats);
  Alcotest.(check int) "timeouts" 1 (Retry.timeouts stats);
  Alcotest.(check bool) "conserved" true (Retry.conserved stats)

let test_no_retry_is_fail_fast () =
  let engine = Sim.Engine.create () in
  let stats = Retry.create_stats () in
  let calls = ref 0 in
  ignore
    (Retry.run Retry.no_retry ~engine ~stats (fun ~attempt:_ ->
         incr calls;
         Error Types.No_quorum));
  Alcotest.(check int) "exactly one attempt" 1 !calls;
  Alcotest.(check (float 0.0)) "no virtual time consumed" 0.0 (Sim.Engine.now engine)

(* ------------------------------------------------------------------ *)
(* End to end: MCV on a lossy network                                  *)
(* ------------------------------------------------------------------ *)

let test_voting_survives_message_loss () =
  (* The acceptance scenario: a majority-consensus-voting device on a
     network that drops a tenth of all deliveries.  Every read and write
     must still complete — via retries — and the degradation report must
     show nonzero retry and fault-injection counters. *)
  let config =
    Config.make_exn ~scheme:Types.Voting ~n_sites:3 ~n_blocks:8 ~seed:1234
      ~fault_profile:(Faults.make_exn ~drop:0.1 ()) ()
  in
  let d = Device.of_config config in
  let ops = 20 in
  for i = 0 to ops - 1 do
    let tag = Printf.sprintf "op%02d" i in
    Alcotest.(check bool) (tag ^ " write completes") true
      (Device.write_block d (i mod 8) (Block.of_string tag));
    match Device.read_block d (i mod 8) with
    | Some b ->
        Alcotest.(check string) (tag ^ " read completes") tag
          (String.sub (Block.to_string b) 0 (String.length tag))
    | None -> Alcotest.failf "%s read failed: device gave up under drops" tag
  done;
  let deg = Device.degradation d in
  Alcotest.(check int) "every operation counted" (2 * ops) deg.Device.requests;
  Alcotest.(check bool) "faults were injected" true (deg.Device.faults_injected > 0);
  Alcotest.(check bool) "retries were needed" true (deg.Device.retries > 0);
  Alcotest.(check bool) "retried operations recovered" true (deg.Device.recovered > 0);
  Alcotest.(check int) "nothing abandoned" 0 (deg.Device.gave_up + deg.Device.timeouts);
  Alcotest.(check bool) "recent errors recorded" true (List.length deg.Device.last_errors > 0)

let test_degradation_all_zero_when_healthy () =
  let d =
    Device.of_config (Config.make_exn ~scheme:Types.Voting ~n_sites:3 ~n_blocks:8 ~seed:77 ())
  in
  assert (Device.write_block d 0 (Block.of_string "calm"));
  ignore (Device.read_block d 0);
  let deg = Device.degradation d in
  Alcotest.(check int) "requests" 2 deg.Device.requests;
  Alcotest.(check int) "no failovers" 0 deg.Device.failovers;
  Alcotest.(check int) "no retries" 0 deg.Device.retries;
  Alcotest.(check int) "no faults" 0 deg.Device.faults_injected;
  Alcotest.(check int) "no errors" 0 (List.length deg.Device.last_errors)

let test_degradation_report_renders () =
  let config =
    Config.make_exn ~scheme:Types.Voting ~n_sites:3 ~n_blocks:8 ~seed:4321
      ~fault_profile:(Faults.make_exn ~drop:0.15 ()) ()
  in
  let d = Device.of_config config in
  for i = 0 to 9 do
    ignore (Device.write_block d (i mod 8) (Block.of_string "r"))
  done;
  let row = Report.Degradation.collect ~label:"mcv drop=0.15" d in
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  Report.Degradation.print ppf ~errors:true [ row ];
  Format.pp_print_flush ppf ();
  let rendered = Buffer.contents buf in
  let contains needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec at i = i + nl <= hl && (String.sub hay i nl = needle || at (i + 1)) in
    at 0
  in
  Alcotest.(check bool) "table mentions the label" true (contains "mcv drop=0.15" rendered);
  Alcotest.(check bool) "csv has a row per device" true
    (List.length (Report.Degradation.csv_rows [ row ]) >= 2)

(* ------------------------------------------------------------------ *)
(* Byte-level wire corruption                                          *)
(* ------------------------------------------------------------------ *)

let corruption_only = { Faults.no_corruption with Faults.bit_flip = 0.2 }

let test_corruption_validation () =
  (* The PR-6 regression class: every new fault knob must be covered by
     is_pristine, or a profile carrying only that knob silently no-ops
     pristine fast paths. *)
  Alcotest.(check bool) "corruption-only profile is NOT pristine" false
    (Faults.is_pristine (Faults.make_exn ~corruption:corruption_only ()));
  Alcotest.(check bool) "persistent corruptor is NOT pristine" false
    (Faults.is_pristine Faults.persistent_corruptor);
  (match Faults.make ~corruption:{ Faults.no_corruption with Faults.bit_flip = 1.5 } () with
  | Ok _ -> Alcotest.fail "bit_flip > 1 accepted"
  | Error _ -> ());
  match Faults.make ~corruption:{ Faults.no_corruption with Faults.splice = -0.1 } () with
  | Ok _ -> Alcotest.fail "negative splice accepted"
  | Error _ -> ()

let test_corrupt_bytes () =
  let f = Faults.of_seed ~seed:11 Faults.pristine in
  let frame = Bytes.of_string "pristine frame" in
  let out, mutated = Faults.corrupt f ~from:0 ~dst:1 frame in
  Alcotest.(check bool) "trivial corruption returns the input" true (out == frame);
  Alcotest.(check bool) "not mutated" false mutated;
  Alcotest.(check int) "nothing counted" 0 (Faults.total_injected f);
  let g = Faults.of_seed ~seed:11 Faults.persistent_corruptor in
  let out, mutated = Faults.corrupt g ~from:0 ~dst:1 frame in
  Alcotest.(check bool) "bit flip mutated the copy" true mutated;
  Alcotest.(check bool) "input buffer untouched" true (Bytes.to_string frame = "pristine frame");
  Alcotest.(check int) "same length under a flip" (Bytes.length frame) (Bytes.length out);
  Alcotest.(check int) "one bit differs" 1
    (let diff = ref 0 in
     Bytes.iteri
       (fun i c ->
         let x = Char.code c lxor Char.code (Bytes.get out i) in
         diff := !diff + (let rec pop x = if x = 0 then 0 else (x land 1) + pop (x lsr 1) in pop x))
       frame;
     !diff);
  Alcotest.(check int) "flip counted" 1 (Faults.bit_flips g);
  Alcotest.(check int) "delivery counted once" 1 (Faults.corrupted_deliveries g)

let test_config_refuses_corruption_without_encoded () =
  (match
     Config.make ~scheme:Types.Voting ~n_sites:3 ~n_blocks:8 ~seed:1
       ~fault_profile:(Faults.make_exn ~corruption:corruption_only ())
       ()
   with
  | Ok _ -> Alcotest.fail "corruption without encoded delivery accepted"
  | Error _ -> ());
  match
    Config.make ~scheme:Types.Voting ~n_sites:3 ~n_blocks:8 ~seed:1 ~encoded_delivery:true
      ~fault_profile:(Faults.make_exn ~corruption:corruption_only ())
      ()
  with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "corruption with encoded delivery rejected: %s" e

let test_encoded_cluster_bit_identical () =
  (* Encoded delivery with no corruption must be bit-identical to the
     default in-heap path: same answers, same virtual time, same traffic. *)
  let run encoded =
    let d =
      Device.of_config
        (Config.make_exn ~scheme:Types.Voting ~n_sites:3 ~n_blocks:8 ~seed:555
           ~encoded_delivery:encoded ())
    in
    let answers = ref [] in
    for i = 0 to 11 do
      let tag = Printf.sprintf "tw%02d" i in
      assert (Device.write_block d (i mod 8) (Block.of_string tag));
      answers := Option.map Block.to_string (Device.read_block d (i mod 8)) :: !answers
    done;
    let c = Device.cluster d in
    (!answers, Sim.Engine.now (Cluster.engine c), Net.Traffic.total (Cluster.traffic c))
  in
  let answers_a, time_a, traffic_a = run false in
  let answers_b, time_b, traffic_b = run true in
  Alcotest.(check bool) "same answers" true (answers_a = answers_b);
  Alcotest.(check (float 0.0)) "same virtual time" time_a time_b;
  Alcotest.(check int) "same traffic" traffic_a traffic_b

let test_ambient_corruption_device_recovers () =
  (* Ambient byte damage on every link: the hardened ingress (reject +
     bounded redelivery) must keep every operation succeeding, and the
     conservation identities must hold. *)
  let config =
    Config.make_exn ~scheme:Types.Voting ~n_sites:3 ~n_blocks:8 ~seed:777 ~encoded_delivery:true
      ~fault_profile:
        (Faults.make_exn
           ~corruption:
             {
               Faults.bit_flip = 0.05;
               truncate = 0.02;
               garbage_prefix = 0.02;
               garbage_suffix = 0.02;
               splice = 0.02;
             }
           ())
      ()
  in
  let d = Device.of_config config in
  for i = 0 to 19 do
    let tag = Printf.sprintf "wc%02d" i in
    Alcotest.(check bool) (tag ^ " write survives corruption") true
      (Device.write_block d (i mod 8) (Block.of_string tag));
    match Device.read_block d (i mod 8) with
    | Some b ->
        Alcotest.(check string) (tag ^ " read survives corruption") tag
          (String.sub (Block.to_string b) 0 (String.length tag))
    | None -> Alcotest.failf "%s read failed under ambient corruption" tag
  done;
  let deg = Device.degradation d in
  Alcotest.(check bool) "frames were damaged" true (deg.Device.corrupted_deliveries > 0);
  Alcotest.(check bool) "ingress rejected them" true (deg.Device.frames_rejected > 0);
  Alcotest.(check bool) "link layer redelivered" true (deg.Device.frames_retransmitted > 0);
  Alcotest.(check bool) "wire conservation" true (Device.wire_conserved deg);
  Alcotest.(check bool) "request conservation" true (Device.degradation_conserved deg)

let test_breaker_trips_on_corruptor () =
  (* Satellite regression: a persistently corrupting peer link must feed
     the receiving site's circuit breaker through the reject hook and trip
     it — frame damage shows up as peer failure, not silent retries. *)
  let config =
    Config.make_exn ~scheme:Types.Voting ~n_sites:3 ~n_blocks:8 ~seed:888 ~encoded_delivery:true
      ~robustness:
        {
          Blockrep.Robustness.off with
          Blockrep.Robustness.breaker = Some { Blockrep.Robustness.threshold = 5; cooldown = 30.0 };
        }
      ~fault_profile:Faults.pristine ()
  in
  let d = Device.of_config config in
  let c = Device.cluster d in
  Cluster.install_faults c (Faults.of_seed ~seed:9 Faults.pristine);
  (* Site 1's replies to the coordinator at site 0 are all damaged. *)
  Cluster.corrupt_link c ~from:1 ~dst:0;
  for i = 0 to 9 do
    (* Voting quorum 2/3 still forms from sites 0 and 2, so operations
       succeed while link 1->0 burns strikes. *)
    Alcotest.(check bool) "write succeeds without site 1's vote" true
      (Device.write_block d (i mod 8) (Block.of_string "bk"))
  done;
  let deg = Device.degradation d in
  Alcotest.(check bool) "rejects recorded" true (deg.Device.frames_rejected > 0);
  Alcotest.(check bool) "breaker tripped on the corruptor" true (deg.Device.breaker_trips > 0);
  Alcotest.(check bool) "quarantine contained the flood" true (deg.Device.quarantine_trips > 0);
  Alcotest.(check bool) "wire conservation" true (Device.wire_conserved deg);
  (* Healing the link restores clean delivery. *)
  Cluster.heal_link c ~from:1 ~dst:0;
  Cluster.run_until c (Sim.Engine.now (Cluster.engine c) +. 100.0);
  Alcotest.(check bool) "clean write after heal" true
    (Device.write_block d 0 (Block.of_string "ok"))

let () =
  Alcotest.run "faults"
    [
      ( "profiles",
        [
          Alcotest.test_case "validation" `Quick test_profile_validation;
          Alcotest.test_case "pristine plan" `Quick test_plan_pristine_is_clean;
          Alcotest.test_case "drop all" `Quick test_plan_drop_all;
          Alcotest.test_case "duplicate all" `Quick test_plan_duplicate_all;
          Alcotest.test_case "extra delay" `Quick test_plan_extra_delay;
          Alcotest.test_case "reorder jitter" `Quick test_plan_reorder_jitter;
          Alcotest.test_case "jitter only" `Quick test_plan_jitter_only;
          Alcotest.test_case "per-link override" `Quick test_per_link_override;
        ] );
      ( "network",
        [
          Alcotest.test_case "drop-all starves receivers" `Quick
            test_network_drop_all_starves_receivers;
          Alcotest.test_case "duplicates deliver twice" `Quick test_network_duplicates_deliver_twice;
          Alcotest.test_case "jitter-only delays delivery" `Quick
            test_network_jitter_only_perturbs_delivery;
          Alcotest.test_case "config wires the injector" `Quick
            test_config_fault_profile_installs_injector;
        ] );
      ( "retry",
        [
          Alcotest.test_case "backoff schedule" `Quick test_backoff_schedule;
          Alcotest.test_case "jitter bounds" `Quick test_jitter_bounds;
          Alcotest.test_case "jitter chain in run" `Quick test_jitter_chain_in_run;
          Alcotest.test_case "jitter off is bit-identical" `Quick test_jitter_off_is_bit_identical;
          QCheck_alcotest.to_alcotest prop_jitter_preserves_bounds;
          Alcotest.test_case "recovers and advances time" `Quick
            test_retry_recovers_and_advances_time;
          Alcotest.test_case "gives up" `Quick test_retry_gives_up;
          Alcotest.test_case "deadline" `Quick test_retry_deadline;
          Alcotest.test_case "retryable predicate" `Quick test_retry_respects_retryable_predicate;
          Alcotest.test_case "invalid bounds rejected" `Quick test_retry_invalid_bounds;
          Alcotest.test_case "counters conserved" `Quick test_retry_conservation;
          Alcotest.test_case "no_retry fail-fast" `Quick test_no_retry_is_fail_fast;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "voting survives message loss" `Quick test_voting_survives_message_loss;
          Alcotest.test_case "healthy device reports zeros" `Quick
            test_degradation_all_zero_when_healthy;
          Alcotest.test_case "degradation report renders" `Quick test_degradation_report_renders;
        ] );
      ( "wire",
        [
          Alcotest.test_case "corruption validation / is_pristine" `Quick
            test_corruption_validation;
          Alcotest.test_case "corrupt bytes" `Quick test_corrupt_bytes;
          Alcotest.test_case "config refuses corruption without encoded" `Quick
            test_config_refuses_corruption_without_encoded;
          Alcotest.test_case "encoded cluster bit-identical" `Quick
            test_encoded_cluster_bit_identical;
          Alcotest.test_case "ambient corruption recovers" `Quick
            test_ambient_corruption_device_recovers;
          Alcotest.test_case "breaker trips on corruptor" `Quick test_breaker_trips_on_corruptor;
        ] );
    ]
