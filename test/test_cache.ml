(* Tests for Fs.Buffer_cache: the Figure 1 buffer-cache layer. *)

module Cache = Fs.Buffer_cache.Make (Blockdev.Mem_device)
module Cache_on_reliable = Fs.Buffer_cache.Make (Blockrep.Reliable_device)
module Fs_on_cache = Fs.Flat_fs.Make (Fs.Buffer_cache.Make (Blockrep.Reliable_device))
module Block = Blockdev.Block

let make ?(dev_capacity = 32) ?(cache_capacity = 4) () =
  let dev = Blockdev.Mem_device.create ~capacity:dev_capacity in
  (dev, Cache.create ~capacity:cache_capacity dev)

let test_capacity_is_cache_budget () =
  (* Regression: [capacity] used to delegate to the underlying device
     (the functor argument shadowed the record field), reporting 32 for a
     4-block cache. *)
  let dev, cache = make ~dev_capacity:32 ~cache_capacity:4 () in
  Alcotest.(check int) "capacity is the cache budget" 4 (Cache.capacity cache);
  Alcotest.(check int) "device_capacity is the device's" 32 (Cache.device_capacity cache);
  Alcotest.(check int) "device agrees" (Blockdev.Mem_device.capacity dev)
    (Cache.device_capacity cache)

let test_passthrough_read () =
  let dev, cache = make () in
  ignore (Blockdev.Mem_device.write_block dev 0 (Block.of_string "under"));
  (match Cache.read_block cache 0 with
  | Some b -> Alcotest.(check string) "reads through" "under" (String.sub (Block.to_string b) 0 5)
  | None -> Alcotest.fail "read failed");
  Alcotest.(check int) "one miss" 1 (Cache.misses cache);
  Alcotest.(check int) "no hits yet" 0 (Cache.hits cache)

let test_hit_on_second_read () =
  let dev, cache = make () in
  ignore (Blockdev.Mem_device.write_block dev 1 (Block.of_string "cached"));
  ignore (Cache.read_block cache 1);
  ignore (Cache.read_block cache 1);
  ignore (Cache.read_block cache 1);
  Alcotest.(check int) "one miss" 1 (Cache.misses cache);
  Alcotest.(check int) "two hits" 2 (Cache.hits cache);
  Alcotest.(check (float 1e-9)) "hit rate" (2.0 /. 3.0) (Cache.hit_rate cache)

let test_write_through () =
  let dev, cache = make () in
  Alcotest.(check bool) "write ok" true (Cache.write_block cache 2 (Block.of_string "both"));
  (* The device saw it immediately... *)
  (match Blockdev.Mem_device.read_block dev 2 with
  | Some b -> Alcotest.(check string) "on device" "both" (String.sub (Block.to_string b) 0 4)
  | None -> Alcotest.fail "device read failed");
  (* ...and the cache serves it without a device read. *)
  ignore (Cache.read_block cache 2);
  Alcotest.(check int) "served from cache" 1 (Cache.hits cache)

let test_lru_eviction () =
  let dev, cache = make ~cache_capacity:2 () in
  for k = 0 to 2 do
    ignore (Blockdev.Mem_device.write_block dev k (Block.of_string (string_of_int k)))
  done;
  ignore (Cache.read_block cache 0);
  ignore (Cache.read_block cache 1);
  (* Touch 0 so 1 is the LRU victim. *)
  ignore (Cache.read_block cache 0);
  ignore (Cache.read_block cache 2);
  Alcotest.(check int) "capacity respected" 2 (Cache.cached_blocks cache);
  let hits_before = Cache.hits cache in
  ignore (Cache.read_block cache 0);
  Alcotest.(check int) "0 survived" (hits_before + 1) (Cache.hits cache);
  ignore (Cache.read_block cache 1);
  Alcotest.(check bool) "1 was evicted (miss)" true (Cache.hits cache = hits_before + 1)

let test_failed_write_not_cached () =
  let dev, cache = make () in
  Blockdev.Mem_device.fail dev;
  Alcotest.(check bool) "write refused" false (Cache.write_block cache 0 (Block.of_string "no"));
  Blockdev.Mem_device.revive dev;
  (* A subsequent read must go to the device, not serve the failed write. *)
  (match Cache.read_block cache 0 with
  | Some b -> Alcotest.(check bool) "zeroes from device" true (Block.equal b Block.zero)
  | None -> Alcotest.fail "read failed");
  Alcotest.(check int) "was a miss" 1 (Cache.misses cache)

let test_failed_read_not_cached () =
  let dev, cache = make () in
  Blockdev.Mem_device.fail dev;
  Alcotest.(check bool) "read fails through" true (Cache.read_block cache 0 = None);
  Blockdev.Mem_device.revive dev;
  ignore (Blockdev.Mem_device.write_block dev 0 (Block.of_string "later"));
  match Cache.read_block cache 0 with
  | Some b -> Alcotest.(check string) "fresh from device" "later" (String.sub (Block.to_string b) 0 5)
  | None -> Alcotest.fail "read failed after revive"

let test_flush () =
  let dev, cache = make () in
  ignore (Blockdev.Mem_device.write_block dev 0 (Block.of_string "v1"));
  ignore (Cache.read_block cache 0);
  (* Out-of-band device write invisible to the cache... *)
  ignore (Blockdev.Mem_device.write_block dev 0 (Block.of_string "v2"));
  (match Cache.read_block cache 0 with
  | Some b -> Alcotest.(check string) "stale before flush" "v1" (String.sub (Block.to_string b) 0 2)
  | None -> Alcotest.fail "read failed");
  Cache.flush cache;
  match Cache.read_block cache 0 with
  | Some b -> Alcotest.(check string) "fresh after flush" "v2" (String.sub (Block.to_string b) 0 2)
  | None -> Alcotest.fail "read failed"

let test_cache_cuts_voting_read_traffic () =
  (* The Figure 1 payoff: in front of a voting reliable device, cached
     reads skip the vote collection entirely. *)
  let device =
    Blockrep.Reliable_device.of_config
      (Blockrep.Config.make_exn ~scheme:Blockrep.Types.Voting ~n_sites:3 ~n_blocks:16 ~seed:1010 ())
  in
  let cluster = Blockrep.Reliable_device.cluster device in
  let cache = Cache_on_reliable.create ~capacity:8 device in
  assert (Cache_on_reliable.write_block cache 0 (Block.of_string "hot"));
  let before = Net.Traffic.by_operation (Blockrep.Cluster.traffic cluster) Net.Message.Read in
  for _ = 1 to 10 do
    ignore (Cache_on_reliable.read_block cache 0)
  done;
  let after = Net.Traffic.by_operation (Blockrep.Cluster.traffic cluster) Net.Message.Read in
  Alcotest.(check int) "ten hot reads cost zero vote rounds" before after;
  Alcotest.(check int) "all hits" 10 (Cache_on_reliable.hits cache)

let test_fs_runs_on_cached_reliable_device () =
  (* Full stack: Flat_fs -> Buffer_cache -> Reliable_device. *)
  let device =
    Blockrep.Reliable_device.of_config
      (Blockrep.Config.make_exn ~scheme:Blockrep.Types.Naive_available_copy ~n_sites:3 ~n_blocks:128
         ~seed:1111 ())
  in
  let cache = Cache_on_reliable.create ~capacity:16 device in
  let fs =
    match Fs_on_cache.format cache with
    | Ok fs -> fs
    | Error e -> Alcotest.failf "format: %s" (Fs.Flat_fs.error_to_string e)
  in
  let ok = function
    | Ok v -> v
    | Error e -> Alcotest.failf "fs error: %s" (Fs.Flat_fs.error_to_string e)
  in
  ok (Fs_on_cache.create fs "stacked");
  ok (Fs_on_cache.write fs "stacked" (Bytes.of_string "through every layer"));
  Alcotest.(check string) "full-stack roundtrip" "through every layer"
    (Bytes.to_string (ok (Fs_on_cache.read fs "stacked")));
  ok (Fs_on_cache.fsck fs);
  Alcotest.(check bool) "cache actually used" true (Cache_on_reliable.hits cache > 0)

let prop_cache_transparent =
  QCheck.Test.make ~name:"cached device is observationally equal to the raw device" ~count:50
    QCheck.(list_of_size (Gen.int_range 1 40) (triple bool (int_range 0 7) printable_string))
    (fun ops ->
      let raw = Blockdev.Mem_device.create ~capacity:8 in
      let backing = Blockdev.Mem_device.create ~capacity:8 in
      let cached = Cache.create ~capacity:3 backing in
      List.for_all
        (fun (is_write, k, payload) ->
          if is_write then
            Blockdev.Mem_device.write_block raw k (Block.of_string payload)
            = Cache.write_block cached k (Block.of_string payload)
          else
            match (Blockdev.Mem_device.read_block raw k, Cache.read_block cached k) with
            | Some a, Some b -> Block.equal a b
            | None, None -> true
            | Some _, None | None, Some _ -> false)
        ops)

let () =
  Alcotest.run "buffer-cache"
    [
      ( "cache",
        [
          Alcotest.test_case "capacity is cache budget" `Quick test_capacity_is_cache_budget;
          Alcotest.test_case "passthrough read" `Quick test_passthrough_read;
          Alcotest.test_case "hit on re-read" `Quick test_hit_on_second_read;
          Alcotest.test_case "write-through" `Quick test_write_through;
          Alcotest.test_case "lru eviction" `Quick test_lru_eviction;
          Alcotest.test_case "failed write not cached" `Quick test_failed_write_not_cached;
          Alcotest.test_case "failed read not cached" `Quick test_failed_read_not_cached;
          Alcotest.test_case "flush" `Quick test_flush;
          QCheck_alcotest.to_alcotest prop_cache_transparent;
        ] );
      ( "stacking",
        [
          Alcotest.test_case "cache cuts voting reads" `Quick test_cache_cuts_voting_read_traffic;
          Alcotest.test_case "fs on cached reliable device" `Quick test_fs_runs_on_cached_reliable_device;
        ] );
    ]
