(* Tests for Fs.Buffer_cache: the Figure 1 buffer-cache layer. *)

module Cache = Fs.Buffer_cache.Make (Blockdev.Mem_device)
module Cache_on_reliable = Fs.Buffer_cache.Make (Blockrep.Reliable_device)
module Fs_on_cache = Fs.Flat_fs.Make (Fs.Buffer_cache.Make (Blockrep.Reliable_device))
module Block = Blockdev.Block

let make ?(dev_capacity = 32) ?(cache_capacity = 4) () =
  let dev = Blockdev.Mem_device.create ~capacity:dev_capacity in
  (dev, Cache.create ~capacity:cache_capacity dev)

let test_capacity_is_cache_budget () =
  (* Regression: [capacity] used to delegate to the underlying device
     (the functor argument shadowed the record field), reporting 32 for a
     4-block cache. *)
  let dev, cache = make ~dev_capacity:32 ~cache_capacity:4 () in
  Alcotest.(check int) "capacity is the cache budget" 4 (Cache.capacity cache);
  Alcotest.(check int) "device_capacity is the device's" 32 (Cache.device_capacity cache);
  Alcotest.(check int) "device agrees" (Blockdev.Mem_device.capacity dev)
    (Cache.device_capacity cache)

let test_passthrough_read () =
  let dev, cache = make () in
  ignore (Blockdev.Mem_device.write_block dev 0 (Block.of_string "under"));
  (match Cache.read_block cache 0 with
  | Some b -> Alcotest.(check string) "reads through" "under" (String.sub (Block.to_string b) 0 5)
  | None -> Alcotest.fail "read failed");
  Alcotest.(check int) "one miss" 1 (Cache.misses cache);
  Alcotest.(check int) "no hits yet" 0 (Cache.hits cache)

let test_hit_on_second_read () =
  let dev, cache = make () in
  ignore (Blockdev.Mem_device.write_block dev 1 (Block.of_string "cached"));
  ignore (Cache.read_block cache 1);
  ignore (Cache.read_block cache 1);
  ignore (Cache.read_block cache 1);
  Alcotest.(check int) "one miss" 1 (Cache.misses cache);
  Alcotest.(check int) "two hits" 2 (Cache.hits cache);
  Alcotest.(check (float 1e-9)) "hit rate" (2.0 /. 3.0) (Cache.hit_rate cache)

let test_write_through () =
  let dev, cache = make () in
  Alcotest.(check bool) "write ok" true (Cache.write_block cache 2 (Block.of_string "both"));
  (* The device saw it immediately... *)
  (match Blockdev.Mem_device.read_block dev 2 with
  | Some b -> Alcotest.(check string) "on device" "both" (String.sub (Block.to_string b) 0 4)
  | None -> Alcotest.fail "device read failed");
  (* ...and the cache serves it without a device read. *)
  ignore (Cache.read_block cache 2);
  Alcotest.(check int) "served from cache" 1 (Cache.hits cache)

let test_lru_eviction () =
  let dev, cache = make ~cache_capacity:2 () in
  for k = 0 to 2 do
    ignore (Blockdev.Mem_device.write_block dev k (Block.of_string (string_of_int k)))
  done;
  ignore (Cache.read_block cache 0);
  ignore (Cache.read_block cache 1);
  (* Touch 0 so 1 is the LRU victim. *)
  ignore (Cache.read_block cache 0);
  ignore (Cache.read_block cache 2);
  Alcotest.(check int) "capacity respected" 2 (Cache.cached_blocks cache);
  let hits_before = Cache.hits cache in
  ignore (Cache.read_block cache 0);
  Alcotest.(check int) "0 survived" (hits_before + 1) (Cache.hits cache);
  ignore (Cache.read_block cache 1);
  Alcotest.(check bool) "1 was evicted (miss)" true (Cache.hits cache = hits_before + 1)

let test_failed_write_not_cached () =
  let dev, cache = make () in
  Blockdev.Mem_device.fail dev;
  Alcotest.(check bool) "write refused" false (Cache.write_block cache 0 (Block.of_string "no"));
  Blockdev.Mem_device.revive dev;
  (* A subsequent read must go to the device, not serve the failed write. *)
  (match Cache.read_block cache 0 with
  | Some b -> Alcotest.(check bool) "zeroes from device" true (Block.equal b Block.zero)
  | None -> Alcotest.fail "read failed");
  Alcotest.(check int) "was a miss" 1 (Cache.misses cache)

let test_failed_read_not_cached () =
  let dev, cache = make () in
  Blockdev.Mem_device.fail dev;
  Alcotest.(check bool) "read fails through" true (Cache.read_block cache 0 = None);
  Blockdev.Mem_device.revive dev;
  ignore (Blockdev.Mem_device.write_block dev 0 (Block.of_string "later"));
  match Cache.read_block cache 0 with
  | Some b -> Alcotest.(check string) "fresh from device" "later" (String.sub (Block.to_string b) 0 5)
  | None -> Alcotest.fail "read failed after revive"

let test_invalidate () =
  let dev, cache = make () in
  ignore (Blockdev.Mem_device.write_block dev 0 (Block.of_string "v1"));
  ignore (Cache.read_block cache 0);
  (* Out-of-band device write invisible to the cache... *)
  ignore (Blockdev.Mem_device.write_block dev 0 (Block.of_string "v2"));
  (match Cache.read_block cache 0 with
  | Some b ->
      Alcotest.(check string) "stale before invalidate" "v1" (String.sub (Block.to_string b) 0 2)
  | None -> Alcotest.fail "read failed");
  Cache.invalidate cache;
  match Cache.read_block cache 0 with
  | Some b ->
      Alcotest.(check string) "fresh after invalidate" "v2" (String.sub (Block.to_string b) 0 2)
  | None -> Alcotest.fail "read failed"

let test_cache_cuts_voting_read_traffic () =
  (* The Figure 1 payoff: in front of a voting reliable device, cached
     reads skip the vote collection entirely. *)
  let device =
    Blockrep.Reliable_device.of_config
      (Blockrep.Config.make_exn ~scheme:Blockrep.Types.Voting ~n_sites:3 ~n_blocks:16 ~seed:1010 ())
  in
  let cluster = Blockrep.Reliable_device.cluster device in
  let cache = Cache_on_reliable.create ~capacity:8 device in
  assert (Cache_on_reliable.write_block cache 0 (Block.of_string "hot"));
  let before = Net.Traffic.by_operation (Blockrep.Cluster.traffic cluster) Net.Message.Read in
  for _ = 1 to 10 do
    ignore (Cache_on_reliable.read_block cache 0)
  done;
  let after = Net.Traffic.by_operation (Blockrep.Cluster.traffic cluster) Net.Message.Read in
  Alcotest.(check int) "ten hot reads cost zero vote rounds" before after;
  Alcotest.(check int) "all hits" 10 (Cache_on_reliable.hits cache)

let test_fs_runs_on_cached_reliable_device () =
  (* Full stack: Flat_fs -> Buffer_cache -> Reliable_device. *)
  let device =
    Blockrep.Reliable_device.of_config
      (Blockrep.Config.make_exn ~scheme:Blockrep.Types.Naive_available_copy ~n_sites:3 ~n_blocks:128
         ~seed:1111 ())
  in
  let cache = Cache_on_reliable.create ~capacity:16 device in
  let fs =
    match Fs_on_cache.format cache with
    | Ok fs -> fs
    | Error e -> Alcotest.failf "format: %s" (Fs.Flat_fs.error_to_string e)
  in
  let ok = function
    | Ok v -> v
    | Error e -> Alcotest.failf "fs error: %s" (Fs.Flat_fs.error_to_string e)
  in
  ok (Fs_on_cache.create fs "stacked");
  ok (Fs_on_cache.write fs "stacked" (Bytes.of_string "through every layer"));
  Alcotest.(check string) "full-stack roundtrip" "through every layer"
    (Bytes.to_string (ok (Fs_on_cache.read fs "stacked")));
  ok (Fs_on_cache.fsck fs);
  Alcotest.(check bool) "cache actually used" true (Cache_on_reliable.hits cache > 0)

let prop_cache_transparent =
  QCheck.Test.make ~name:"cached device is observationally equal to the raw device" ~count:50
    QCheck.(list_of_size (Gen.int_range 1 40) (triple bool (int_range 0 7) printable_string))
    (fun ops ->
      let raw = Blockdev.Mem_device.create ~capacity:8 in
      let backing = Blockdev.Mem_device.create ~capacity:8 in
      let cached = Cache.create ~capacity:3 backing in
      List.for_all
        (fun (is_write, k, payload) ->
          if is_write then
            Blockdev.Mem_device.write_block raw k (Block.of_string payload)
            = Cache.write_block cached k (Block.of_string payload)
          else
            match (Blockdev.Mem_device.read_block raw k, Cache.read_block cached k) with
            | Some a, Some b -> Block.equal a b
            | None, None -> true
            | Some _, None | None, Some _ -> false)
        ops)

(* ------------------------------------------------------------------ *)
(* Write-back (group commit) mode                                      *)
(* ------------------------------------------------------------------ *)

(* A batched device that records every write request (single or group)
   and can refuse writes touching selected blocks — a group containing a
   refused block fails atomically, like a quorum round lost for the
   whole batch. *)
module Flaky_dev = struct
  type t = {
    mem : Blockdev.Mem_device.t;
    mutable bad : int list;
    mutable write_requests : int;
    mutable group_sizes : int list;  (** newest first *)
  }

  let create ~capacity =
    { mem = Blockdev.Mem_device.create ~capacity; bad = []; write_requests = 0; group_sizes = [] }

  let capacity t = Blockdev.Mem_device.capacity t.mem
  let read_block t k = Blockdev.Mem_device.read_block t.mem k

  let write_block t k d =
    t.write_requests <- t.write_requests + 1;
    t.group_sizes <- 1 :: t.group_sizes;
    (not (List.mem k t.bad)) && Blockdev.Mem_device.write_block t.mem k d

  let read_blocks t ks =
    let rec go acc = function
      | [] -> Some (List.rev acc)
      | k :: rest -> ( match read_block t k with Some d -> go (d :: acc) rest | None -> None)
    in
    if ks = [] then None else go [] ks

  let write_blocks t ws =
    t.write_requests <- t.write_requests + 1;
    t.group_sizes <- List.length ws :: t.group_sizes;
    ws <> []
    && (not (List.exists (fun (k, _) -> List.mem k t.bad) ws))
    && List.for_all (fun (k, d) -> Blockdev.Mem_device.write_block t.mem k d) ws
end

module Wb = Fs.Buffer_cache.Make_batched (Flaky_dev)

let make_wb ?scheduler ?(window = 0.0) ?(capacity = 8) () =
  let dev = Flaky_dev.create ~capacity:32 in
  (dev, Wb.create ~policy:Fs.Buffer_cache.Write_back ?scheduler ~window ~capacity dev)

let on_device dev k expect =
  match Flaky_dev.read_block dev k with
  | Some b -> Alcotest.(check string) "on device" expect (String.sub (Block.to_string b) 0 (String.length expect))
  | None -> Alcotest.fail "device read failed"

let test_wb_absorbs_then_flushes_as_one_group () =
  let dev, cache = make_wb () in
  for k = 0 to 3 do
    Alcotest.(check bool) "absorbed" true (Wb.write_block cache k (Block.of_string (string_of_int k)))
  done;
  Alcotest.(check int) "nothing reached the device" 0 dev.Flaky_dev.write_requests;
  Alcotest.(check int) "four dirty" 4 (Wb.dirty_blocks cache);
  Alcotest.(check bool) "flush commits" true (Wb.flush cache);
  Alcotest.(check int) "one group request" 1 dev.Flaky_dev.write_requests;
  Alcotest.(check (list int)) "whole dirty set in it" [ 4 ] dev.Flaky_dev.group_sizes;
  Alcotest.(check int) "clean" 0 (Wb.dirty_blocks cache);
  on_device dev 2 "2";
  (* Idempotent: nothing dirty, so a second flush issues no request. *)
  Alcotest.(check bool) "second flush trivially ok" true (Wb.flush cache);
  Alcotest.(check int) "no further request" 1 dev.Flaky_dev.write_requests

let test_wb_dirty_eviction_writes_exactly_once () =
  let dev, cache = make_wb ~capacity:2 () in
  ignore (Wb.write_block cache 0 (Block.of_string "zero"));
  ignore (Wb.write_block cache 1 (Block.of_string "one"));
  (* Every frame dirty; inserting a third block must write back the LRU
     dirty block (0) exactly once to make room. *)
  ignore (Wb.write_block cache 2 (Block.of_string "two"));
  Alcotest.(check int) "one eviction write-back" 1 dev.Flaky_dev.write_requests;
  Alcotest.(check int) "cache counted it" 1 (Wb.write_backs cache);
  Alcotest.(check int) "carrying one block" 1 (Wb.blocks_written_back cache);
  on_device dev 0 "zero";
  Alcotest.(check int) "capacity held" 2 (Wb.cached_blocks cache);
  Alcotest.(check int) "1 and 2 still dirty" 2 (Wb.dirty_blocks cache)

let test_wb_crash_before_flush_loses_updates () =
  (* The documented durability cost of group commit: a crash of the
     caching host (modelled by [invalidate]) silently drops absorbed
     writes. *)
  let dev, cache = make_wb () in
  ignore (Wb.write_block cache 0 (Block.of_string "gone"));
  ignore (Wb.write_block cache 1 (Block.of_string "also gone"));
  Wb.invalidate cache;
  Alcotest.(check int) "two updates lost" 2 (Wb.lost_updates cache);
  Alcotest.(check int) "device never saw them" 0 dev.Flaky_dev.write_requests;
  (match Flaky_dev.read_block dev 0 with
  | Some b -> Alcotest.(check bool) "block 0 untouched" true (Block.equal b Block.zero)
  | None -> Alcotest.fail "device read failed");
  Alcotest.(check int) "cache empty" 0 (Wb.cached_blocks cache)

let test_wb_flush_splits_on_partial_failure () =
  let dev, cache = make_wb () in
  for k = 0 to 3 do
    ignore (Wb.write_block cache k (Block.of_string (string_of_int k)))
  done;
  (* Block 2 cannot commit — e.g. its round lost quorum — so the whole
     group is refused and the cache must narrow by halving. *)
  dev.Flaky_dev.bad <- [ 2 ];
  Alcotest.(check bool) "flush reports the residue" false (Wb.flush cache);
  (* [0;1;2;3] fails -> [0;1] ok, [2;3] fails -> [2] fails, [3] ok
     (newest request first). *)
  Alcotest.(check (list int)) "halving request trail" [ 1; 1; 2; 2; 4 ] dev.Flaky_dev.group_sizes;
  on_device dev 0 "0";
  on_device dev 1 "1";
  on_device dev 3 "3";
  Alcotest.(check int) "only the impossible block stays dirty" 1 (Wb.dirty_blocks cache);
  (* Once the device recovers, the residue commits and nothing is lost. *)
  dev.Flaky_dev.bad <- [];
  Alcotest.(check bool) "retry commits the residue" true (Wb.flush cache);
  on_device dev 2 "2";
  Alcotest.(check int) "clean" 0 (Wb.dirty_blocks cache);
  Alcotest.(check int) "no updates lost" 0 (Wb.lost_updates cache)

let test_wb_refused_eviction_overflows_not_loses () =
  let dev, cache = make_wb ~capacity:1 () in
  dev.Flaky_dev.bad <- [ 0 ];
  ignore (Wb.write_block cache 0 (Block.of_string "stuck"));
  (* Evicting 0 needs a write-back the device refuses: the frame must be
     kept (overflowing capacity) rather than dropped. *)
  ignore (Wb.write_block cache 1 (Block.of_string "new"));
  Alcotest.(check int) "overflowed by one frame" 2 (Wb.cached_blocks cache);
  Alcotest.(check int) "both dirty" 2 (Wb.dirty_blocks cache);
  Alcotest.(check int) "nothing lost" 0 (Wb.lost_updates cache);
  dev.Flaky_dev.bad <- [];
  Alcotest.(check bool) "later flush drains both" true (Wb.flush cache);
  on_device dev 0 "stuck";
  on_device dev 1 "new"

let test_wb_window_coalesces () =
  let engine = Sim.Engine.create () in
  let scheduler delay k = ignore (Sim.Engine.schedule engine ~delay k : Sim.Engine.handle) in
  let dev, cache = make_wb ~scheduler ~window:5.0 () in
  for k = 0 to 2 do
    ignore (Wb.write_block cache k (Block.of_string (string_of_int k)))
  done;
  Sim.Engine.run_until engine 4.9;
  Alcotest.(check int) "window still open: nothing written" 0 dev.Flaky_dev.write_requests;
  Sim.Engine.run_until engine 5.1;
  Alcotest.(check (list int)) "window closed: one group of three" [ 3 ] dev.Flaky_dev.group_sizes;
  Alcotest.(check int) "clean" 0 (Wb.dirty_blocks cache);
  (* The next dirtying write re-arms the window. *)
  ignore (Wb.write_block cache 7 (Block.of_string "again"));
  Sim.Engine.run_until engine 20.0;
  Alcotest.(check (list int)) "second window flushed too" [ 1; 3 ] dev.Flaky_dev.group_sizes

let test_wb_write_through_unchanged_by_functor () =
  (* The default policy through Make_batched behaves exactly like the
     historical write-through cache: every write reaches the device
     immediately and nothing is ever dirty. *)
  let dev = Flaky_dev.create ~capacity:32 in
  let cache = Wb.create ~capacity:4 dev in
  Alcotest.(check bool) "policy defaults to write-through" true
    (Wb.policy cache = Fs.Buffer_cache.Write_through);
  ignore (Wb.write_block cache 0 (Block.of_string "now"));
  Alcotest.(check int) "device saw it immediately" 1 dev.Flaky_dev.write_requests;
  Alcotest.(check int) "never dirty" 0 (Wb.dirty_blocks cache);
  Alcotest.(check bool) "flush is a no-op" true (Wb.flush cache);
  Alcotest.(check int) "no extra request" 1 dev.Flaky_dev.write_requests

let () =
  Alcotest.run "buffer-cache"
    [
      ( "cache",
        [
          Alcotest.test_case "capacity is cache budget" `Quick test_capacity_is_cache_budget;
          Alcotest.test_case "passthrough read" `Quick test_passthrough_read;
          Alcotest.test_case "hit on re-read" `Quick test_hit_on_second_read;
          Alcotest.test_case "write-through" `Quick test_write_through;
          Alcotest.test_case "lru eviction" `Quick test_lru_eviction;
          Alcotest.test_case "failed write not cached" `Quick test_failed_write_not_cached;
          Alcotest.test_case "failed read not cached" `Quick test_failed_read_not_cached;
          Alcotest.test_case "invalidate" `Quick test_invalidate;
          QCheck_alcotest.to_alcotest prop_cache_transparent;
        ] );
      ( "stacking",
        [
          Alcotest.test_case "cache cuts voting reads" `Quick test_cache_cuts_voting_read_traffic;
          Alcotest.test_case "fs on cached reliable device" `Quick test_fs_runs_on_cached_reliable_device;
        ] );
      ( "write-back",
        [
          Alcotest.test_case "absorbs then flushes as one group" `Quick
            test_wb_absorbs_then_flushes_as_one_group;
          Alcotest.test_case "dirty eviction writes exactly once" `Quick
            test_wb_dirty_eviction_writes_exactly_once;
          Alcotest.test_case "crash before flush loses updates" `Quick
            test_wb_crash_before_flush_loses_updates;
          Alcotest.test_case "flush splits on partial failure" `Quick
            test_wb_flush_splits_on_partial_failure;
          Alcotest.test_case "refused eviction overflows, not loses" `Quick
            test_wb_refused_eviction_overflows_not_loses;
          Alcotest.test_case "coalescing window" `Quick test_wb_window_coalesces;
          Alcotest.test_case "write-through default unchanged" `Quick
            test_wb_write_through_unchanged_by_functor;
        ] );
    ]
