(* Tests for blockrep-lint against the deliberately good/bad modules in
   test/lint_fixtures/.  The linter reads the fixtures' .cmt files from
   the build tree (tests run inside _build/default/test, and the
   fixture library is a link-time dependency, so its object dir is
   always present and fresh).  Counts are exact: a fixture that stops
   producing its finding, or starts producing an extra one, is a rule
   regression either way. *)

module C = Lint.Config
module F = Lint.Finding

(* Scope the library-gated rules to the fixture library, mark fixture
   types as protocol types for the poly-compare rule (so the pure-enum
   exemption is exercised), and register the fixtures' charging
   functions. *)
let cfg =
  {
    C.default with
    C.determinism_libs = [ "lint_fixtures" ];
    C.hashtbl_libs = [ "lint_fixtures" ];
    C.partiality_libs = [ "lint_fixtures" ];
    C.suspicious_prefixes = "Lint_fixtures." :: C.default.C.suspicious_prefixes;
    C.shared_global_libs = [ "lint_fixtures" ];
    C.charging =
      ("Lint_fixtures.Fx_wire_bad", "bad_category")
      :: ("Lint_fixtures.Fx_wire_good", "good_category")
      :: ("Lint_fixtures.Fx_codec_bad", "bad_tag_of")
      :: ("Lint_fixtures.Fx_codec_good", "good_tag_of")
      :: C.default.C.charging;
  }

let scan = lazy (Lint.Driver.run_dirs ~cfg ~root:"." ~dirs:[ "lint_fixtures" ])
let unit_of fx = "Lint_fixtures." ^ fx

let in_unit fx =
  List.filter (fun (f : F.t) -> f.F.unit_name = unit_of fx) (Lazy.force scan)

let count ?(suppressed = false) fx rule =
  List.length
    (List.filter (fun (f : F.t) -> f.F.rule = rule && F.suppressed f = suppressed) (in_unit fx))

let check_count ?suppressed fx rule expected =
  Alcotest.(check int)
    (Printf.sprintf "%s %s%s" fx rule
       (match suppressed with Some true -> " (suppressed)" | _ -> ""))
    expected
    (count ?suppressed fx rule)

let check_silent fx =
  let fs = in_unit fx in
  List.iter (fun f -> Printf.printf "unexpected: %s\n" (F.to_string f)) fs;
  Alcotest.(check int) (fx ^ " is clean") 0 (List.length fs)

(* ------------------------------------------------------------------ *)

let test_determinism () =
  check_count "Fx_determinism_bad" C.rule_determinism 3;
  check_silent "Fx_determinism_good"

let test_hashtbl () =
  check_count "Fx_hashtbl_bad" C.rule_hashtbl 2;
  let flows =
    List.filter
      (fun (f : F.t) ->
        let msg = f.F.message in
        let sub = "flows into a list" in
        let n = String.length sub in
        let rec at i = i + n <= String.length msg && (String.sub msg i n = sub || at (i + 1)) in
        at 0)
      (in_unit "Fx_hashtbl_bad")
  in
  Alcotest.(check int) "fold into a list is called out" 1 (List.length flows);
  check_silent "Fx_hashtbl_good"

let test_poly_compare () =
  check_count "Fx_polycompare_bad" C.rule_poly_compare 4;
  check_silent "Fx_polycompare_good"

let test_wire () =
  check_count "Fx_wire_bad" C.rule_wire 2;
  check_silent "Fx_wire_good"

let test_codec () =
  check_count "Fx_codec_bad" C.rule_wire 2;
  check_silent "Fx_codec_good"

let test_partiality () =
  check_count "Fx_partiality_bad" C.rule_partiality 5;
  check_silent "Fx_partiality_good"

let test_capture () =
  (* Hashtbl mutation, array read, ref mutation: one domain-capture
     each; the unblessed merge helper is the distinct merge-only case. *)
  check_count "Fx_capture_bad" C.rule_capture 3;
  check_count "Fx_capture_bad" C.rule_merge_only 1;
  check_count "Fx_capture_bad" C.rule_shared_global 0;
  (* Immutable capture, lane-fresh Hashtbl, Atomic.t, the blessed
     Traffic.accumulate merge, and a resolved local helper: silent. *)
  check_silent "Fx_capture_good"

let test_shared_global () =
  (* ref, Hashtbl, Bytes, mutable record field, closure-hidden memo
     table, Atomic global. *)
  check_count "Fx_global_bad" C.rule_shared_global 6;
  check_count "Fx_global_bad" C.rule_capture 0;
  (* Scalars, strings, lists, constant constructors, Set.Make sets and
     plain functions are not shared state. *)
  check_silent "Fx_global_good"

let test_capture_allowed () =
  check_count ~suppressed:true "Fx_capture_allowed" C.rule_capture 1;
  check_count ~suppressed:true "Fx_capture_allowed" C.rule_shared_global 1;
  check_count "Fx_capture_allowed" C.rule_capture 0;
  check_count "Fx_capture_allowed" C.rule_shared_global 0

let test_allow () =
  (* A well-formed allow suppresses; the finding stays in the report
     with its justification attached. *)
  check_count ~suppressed:true "Fx_allow" C.rule_hashtbl 1;
  check_count ~suppressed:true "Fx_allow" C.rule_determinism 1;
  List.iter
    (fun (f : F.t) ->
      if F.suppressed f then
        match f.F.justification with
        | Some j -> Alcotest.(check bool) "justification is non-blank" false (String.trim j = "")
        | None -> Alcotest.fail "suppressed finding without justification")
    (in_unit "Fx_allow");
  (* An allow missing (or blanking) its justification is itself a
     finding, and the finding it meant to hide still fires. *)
  check_count "Fx_allow" C.rule_allow 3;
  check_count "Fx_allow" C.rule_hashtbl 2

let test_summary () =
  let s = Lint.Report.summarize (Lazy.force scan) in
  Alcotest.(check int) "unsuppressed" 33 s.Lint.Report.unsuppressed;
  Alcotest.(check int) "suppressed" 4 s.Lint.Report.suppressed;
  Alcotest.(check bool) "fixtures are not clean" false (Lint.Report.clean (Lazy.force scan));
  Alcotest.(check int)
    "internal errors" 0
    (List.length
       (List.filter (fun (f : F.t) -> f.F.rule = C.rule_internal) (Lazy.force scan)))

(* The production policy over the real tree: every library the test
   suite links is already built next to us, so scan it and require the
   same cleanliness `dune build @lint` enforces. *)
let test_real_tree_clean () =
  if not (Sys.file_exists "../lib") then ()
  else begin
    let findings = Lint.Driver.run_dirs ~cfg:C.default ~root:".." ~dirs:[ "lib" ] in
    let bad = List.filter (fun f -> not (F.suppressed f)) findings in
    List.iter (fun f -> Printf.printf "unexpected: %s\n" (F.to_string f)) bad;
    Alcotest.(check int) "lib/ lints clean" 0 (List.length bad)
  end

(* PR 8 claimed Codec.Buf's counting mode is domain-safe in a comment;
   the analyzer now proves it.  The codec library is inside
   shared_global_libs, so any hidden global or leaked capture would
   surface here — and Codec.Buf itself must produce nothing at all,
   not even a suppressed finding. *)
let test_codec_domain_safe () =
  if not (Sys.file_exists "../lib") then ()
  else begin
    let findings = Lint.Driver.run_dirs ~cfg:C.default ~root:".." ~dirs:[ "lib/codec" ] in
    let in_buf = List.filter (fun (f : F.t) -> f.F.unit_name = "Codec.Buf") findings in
    List.iter (fun f -> Printf.printf "unexpected: %s\n" (F.to_string f)) in_buf;
    Alcotest.(check int) "Codec.Buf is finding-free (suppressed included)" 0 (List.length in_buf);
    let domain_rules = [ C.rule_capture; C.rule_shared_global; C.rule_merge_only ] in
    let bad =
      List.filter
        (fun (f : F.t) -> List.mem f.F.rule domain_rules && not (F.suppressed f))
        findings
    in
    List.iter (fun f -> Printf.printf "unexpected: %s\n" (F.to_string f)) bad;
    Alcotest.(check int) "codec library is domain-safe" 0 (List.length bad)
  end

let () =
  Alcotest.run "lint"
    [
      ( "rules",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "hashtbl order" `Quick test_hashtbl;
          Alcotest.test_case "poly compare" `Quick test_poly_compare;
          Alcotest.test_case "wire exhaustiveness" `Quick test_wire;
          Alcotest.test_case "codec tag exhaustiveness" `Quick test_codec;
          Alcotest.test_case "partiality" `Quick test_partiality;
          Alcotest.test_case "domain capture" `Quick test_capture;
          Alcotest.test_case "shared globals" `Quick test_shared_global;
        ] );
      ( "suppression",
        [
          Alcotest.test_case "lint.allow machinery" `Quick test_allow;
          Alcotest.test_case "domain-safety suppressions" `Quick test_capture_allowed;
          Alcotest.test_case "summary totals" `Quick test_summary;
        ] );
      ( "policy",
        [
          Alcotest.test_case "real tree lints clean" `Quick test_real_tree_clean;
          Alcotest.test_case "codec domain-safe" `Quick test_codec_domain_safe;
        ] );
    ]
