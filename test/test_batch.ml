(* Group commit: batched reads/writes through the cluster and the driver
   stub, batch-1 equivalence with the single-block path, the amortization
   payoff, and a chaos sweep showing the batched path introduces no new
   violation classes. *)

module Block = Blockdev.Block

let mk ?(scheme = Blockrep.Types.Voting) ?(n_sites = 5) ?(n_blocks = 32)
    ?(net_mode = Net.Network.Multicast) ?(seed = 42) () =
  Blockrep.Cluster.create
    (Blockrep.Config.make_exn ~scheme ~n_sites ~n_blocks ~net_mode ~seed ())

let payloads n = List.init n (fun i -> (i, Block.of_string (Printf.sprintf "blk%d" i)))

let scheme_name = function
  | Blockrep.Types.Voting -> "voting"
  | Blockrep.Types.Available_copy -> "ac"
  | Blockrep.Types.Naive_available_copy -> "nac"
  | Blockrep.Types.Dynamic_voting -> "dynamic"

(* ------------------------------------------------------------------ *)
(* Cluster batched operations                                          *)
(* ------------------------------------------------------------------ *)

let test_batch_roundtrip scheme () =
  let cluster = mk ~scheme () in
  let writes = payloads 4 in
  (match Blockrep.Cluster.write_blocks_sync cluster ~site:0 writes with
  | Ok versions -> Alcotest.(check int) "one version per block" 4 (List.length versions)
  | Error e -> Alcotest.failf "batch write failed: %s" (Blockrep.Types.failure_reason_to_string e));
  Blockrep.Cluster.settle cluster;
  (match Blockrep.Cluster.read_blocks_sync cluster ~site:0 ~blocks:[ 0; 1; 2; 3 ] with
  | Ok results ->
      List.iteri
        (fun i (data, version) ->
          Alcotest.(check bool)
            (Printf.sprintf "block %d data" i)
            true
            (Block.equal data (List.assoc i writes));
          Alcotest.(check bool) "versioned" true (version >= 1))
        results
  | Error e -> Alcotest.failf "batch read failed: %s" (Blockrep.Types.failure_reason_to_string e));
  Alcotest.(check bool) "replicas consistent" true
    (Blockrep.Cluster.consistent_available_stores cluster)

let test_batch_validation () =
  let cluster = mk () in
  let raises f = try ignore (f ()); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "empty batch rejected" true
    (raises (fun () -> Blockrep.Cluster.read_blocks_sync cluster ~site:0 ~blocks:[]));
  Alcotest.(check bool) "duplicate blocks rejected" true
    (raises (fun () -> Blockrep.Cluster.read_blocks_sync cluster ~site:0 ~blocks:[ 1; 2; 1 ]));
  Alcotest.(check bool) "out-of-range rejected" true
    (raises (fun () ->
         Blockrep.Cluster.write_blocks_sync cluster ~site:0 [ (99, Block.of_string "x") ]))

let traffic_snapshot cluster =
  let traffic = Blockrep.Cluster.traffic cluster in
  List.map
    (fun op ->
      ( Net.Traffic.by_operation traffic op,
        Net.Traffic.bytes_by_operation traffic op ))
    [ Net.Message.Read; Net.Message.Write; Net.Message.Recovery ]

let test_batch_of_one_is_bit_identical scheme () =
  (* Twin clusters, same seed: a singleton batch must leave exactly the
     same wire traffic and produce the same result as the single-block
     call — the acceptance criterion for untouched defaults. *)
  let a = mk ~scheme () and b = mk ~scheme () in
  let data = Block.of_string "same" in
  let ra = Blockrep.Cluster.write_sync a ~site:0 ~block:3 data in
  let rb = Blockrep.Cluster.write_blocks_sync b ~site:0 [ (3, data) ] in
  (match (ra, rb) with
  | Ok v, Ok [ v' ] -> Alcotest.(check int) "same version" v v'
  | Error e, Error e' ->
      Alcotest.(check string) "same error" (Blockrep.Types.failure_reason_to_string e)
        (Blockrep.Types.failure_reason_to_string e')
  | _ -> Alcotest.fail "single and singleton-batch write disagree");
  (match (Blockrep.Cluster.read_sync a ~site:1 ~block:3, Blockrep.Cluster.read_blocks_sync b ~site:1 ~blocks:[ 3 ]) with
  | Ok (d, v), Ok [ (d', v') ] ->
      Alcotest.(check bool) "same data" true (Block.equal d d');
      Alcotest.(check int) "same read version" v v'
  | Error _, Error _ -> ()
  | _ -> Alcotest.fail "single and singleton-batch read disagree");
  Blockrep.Cluster.settle a;
  Blockrep.Cluster.settle b;
  Alcotest.(check (list (pair int int))) "identical traffic counters" (traffic_snapshot a)
    (traffic_snapshot b)

let test_batch_amortizes_write_traffic () =
  (* Eight single writes vs one batch of eight on twin voting clusters:
     the batch pays one vote round + one update multicast in total, so it
     must use at least 4x fewer Write transmissions. *)
  let single = mk () and batched = mk () in
  let writes = payloads 8 in
  List.iter
    (fun (k, d) ->
      match Blockrep.Cluster.write_sync single ~site:0 ~block:k d with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "single write: %s" (Blockrep.Types.failure_reason_to_string e))
    writes;
  (match Blockrep.Cluster.write_blocks_sync batched ~site:0 writes with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "batched write: %s" (Blockrep.Types.failure_reason_to_string e));
  Blockrep.Cluster.settle single;
  Blockrep.Cluster.settle batched;
  let cost c = Net.Traffic.by_operation (Blockrep.Cluster.traffic c) Net.Message.Write in
  let s = cost single and b = cost batched in
  Alcotest.(check bool)
    (Printf.sprintf "batch >= 4x cheaper (single %d vs batched %d)" s b)
    true
    (b * 4 <= s)

let test_observers_see_one_event_per_block () =
  let cluster = mk ~scheme:Blockrep.Types.Available_copy () in
  let seen = ref [] in
  Blockrep.Cluster.add_observer cluster (fun ev ->
      seen := (ev.Blockrep.Cluster.Observe.kind, ev.Blockrep.Cluster.Observe.block) :: !seen);
  ignore (Blockrep.Cluster.write_blocks_sync cluster ~site:0 (payloads 3));
  ignore (Blockrep.Cluster.read_blocks_sync cluster ~site:0 ~blocks:[ 0; 1; 2 ]);
  let writes =
    List.filter (fun (k, _) -> k = Blockrep.Cluster.Observe.Write) !seen |> List.length
  in
  let reads = List.filter (fun (k, _) -> k = Blockrep.Cluster.Observe.Read) !seen |> List.length in
  Alcotest.(check int) "three write events" 3 writes;
  Alcotest.(check int) "three read events" 3 reads

(* ------------------------------------------------------------------ *)
(* Driver stub batched forwarding                                      *)
(* ------------------------------------------------------------------ *)

let test_stub_batch_roundtrip_and_counters () =
  let cluster = mk ~scheme:Blockrep.Types.Available_copy () in
  let stub = Blockrep.Driver_stub.create cluster in
  let writes = payloads 4 in
  (match Blockrep.Driver_stub.write_blocks stub writes with
  | Ok versions -> Alcotest.(check int) "four versions" 4 (List.length versions)
  | Error e -> Alcotest.failf "stub batch write: %s" (Blockrep.Types.failure_reason_to_string e));
  (match Blockrep.Driver_stub.read_blocks stub [ 0; 1; 2; 3 ] with
  | Ok results -> Alcotest.(check int) "four blocks back" 4 (List.length results)
  | Error e -> Alcotest.failf "stub batch read: %s" (Blockrep.Types.failure_reason_to_string e));
  Alcotest.(check int) "two batched requests" 2 (Blockrep.Driver_stub.batch_requests stub);
  Alcotest.(check int) "eight batched blocks" 8 (Blockrep.Driver_stub.batched_blocks stub);
  Alcotest.(check int) "batches counted as requests too" 2 (Blockrep.Driver_stub.requests stub)

let test_stub_batch_fails_over () =
  (* Home down: the whole batch fails over in one rotation. *)
  let cluster = mk ~scheme:Blockrep.Types.Available_copy () in
  let stub = Blockrep.Driver_stub.create cluster in
  Blockrep.Cluster.fail_site cluster 0;
  Blockrep.Cluster.run_until cluster 1.0;
  (match Blockrep.Driver_stub.write_blocks stub (payloads 4) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "batch should fail over: %s" (Blockrep.Types.failure_reason_to_string e));
  Alcotest.(check bool) "failover happened" true (Blockrep.Driver_stub.failovers stub >= 1);
  Alcotest.(check bool) "served off-home" true (Blockrep.Driver_stub.last_served stub <> 0)

let test_stub_observers_per_block () =
  let cluster = mk ~scheme:Blockrep.Types.Voting () in
  let stub = Blockrep.Driver_stub.create cluster in
  let events = ref 0 in
  Blockrep.Driver_stub.add_observer stub (fun _ -> incr events);
  ignore (Blockrep.Driver_stub.write_blocks stub (payloads 5));
  Alcotest.(check int) "one client-visible event per block" 5 !events

(* ------------------------------------------------------------------ *)
(* Amortization (the acceptance criterion)                             *)
(* ------------------------------------------------------------------ *)

let test_mcv_batch16_at_least_4x_fewer_messages () =
  let sample batch =
    Workload.Experiment.measure_batch_amortization ~scheme:Blockrep.Types.Voting ~n_sites:5
      ~env:Net.Network.Multicast ~batch ~groups:20 ()
  in
  let s1 = sample 1 and s16 = sample 16 in
  let ratio =
    s1.Workload.Experiment.messages_per_block /. s16.Workload.Experiment.messages_per_block
  in
  Alcotest.(check bool)
    (Printf.sprintf "voting multicast batch-16 ratio %.1fx >= 4x" ratio)
    true (ratio >= 4.0)

(* ------------------------------------------------------------------ *)
(* Chaos: the batched path stays inside the scheme's envelope          *)
(* ------------------------------------------------------------------ *)

let violation_codes outcome =
  let vs = Check.Chaos.violations outcome in
  List.iter (fun v -> Printf.eprintf "violation: %s\n%!" (Check.Violation.to_string v)) vs;
  if vs <> [] then Format.eprintf "history:@.%a@." Check.History.pp outcome.Check.Chaos.history;
  List.map (fun v -> v.Check.Violation.code) vs |> List.sort_uniq String.compare

let test_chaos_batched_no_new_violation_classes scheme () =
  (* Within the supported envelope batch = 1 is violation-free, so the
     batched runs must be too: group commit may change timing and
     message layout but not the consistency classes the oracle sees. *)
  List.iter
    (fun seed ->
      let base = Check.Chaos.default_env ~seed scheme in
      let baseline = violation_codes (Check.Chaos.run { base with batch = 1 }) in
      Alcotest.(check (list string))
        (Printf.sprintf "seed %d: batch=1 clean" seed)
        [] baseline;
      List.iter
        (fun batch ->
          let codes = violation_codes (Check.Chaos.run { base with batch }) in
          Alcotest.(check (list string))
            (Printf.sprintf "seed %d: batch=%d no new classes" seed batch)
            baseline codes)
        [ 4; 16 ])
    [ 1; 2 ]

let roundtrip_cases =
  List.map
    (fun scheme ->
      Alcotest.test_case (scheme_name scheme ^ " roundtrip") `Quick (test_batch_roundtrip scheme))
    [
      Blockrep.Types.Voting;
      Blockrep.Types.Available_copy;
      Blockrep.Types.Naive_available_copy;
      Blockrep.Types.Dynamic_voting;
    ]

let equivalence_cases =
  List.map
    (fun scheme ->
      Alcotest.test_case
        (scheme_name scheme ^ " batch of one bit-identical")
        `Quick
        (test_batch_of_one_is_bit_identical scheme))
    [ Blockrep.Types.Voting; Blockrep.Types.Available_copy; Blockrep.Types.Naive_available_copy ]

let () =
  Alcotest.run "group-commit"
    [
      ( "cluster",
        roundtrip_cases
        @ equivalence_cases
        @ [
            Alcotest.test_case "batch validation" `Quick test_batch_validation;
            Alcotest.test_case "batch amortizes write traffic" `Quick
              test_batch_amortizes_write_traffic;
            Alcotest.test_case "observers see per-block events" `Quick
              test_observers_see_one_event_per_block;
          ] );
      ( "stub",
        [
          Alcotest.test_case "batch roundtrip and counters" `Quick
            test_stub_batch_roundtrip_and_counters;
          Alcotest.test_case "batch fails over" `Quick test_stub_batch_fails_over;
          Alcotest.test_case "per-block observer events" `Quick test_stub_observers_per_block;
        ] );
      ( "amortization",
        [
          Alcotest.test_case "mcv batch-16 >= 4x fewer messages" `Quick
            test_mcv_batch16_at_least_4x_fewer_messages;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "voting: batched path adds no violation classes" `Slow
            (test_chaos_batched_no_new_violation_classes Blockrep.Types.Voting);
          Alcotest.test_case "available copy: batched path adds no violation classes" `Slow
            (test_chaos_batched_no_new_violation_classes Blockrep.Types.Available_copy);
        ] );
    ]
