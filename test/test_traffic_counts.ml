(* Exact transmission counts vs the Section 5 formulas.

   In a failure-free cluster every participation U equals n, so each cost
   in the Section 5 table becomes an exact integer we can assert against
   the network's counters, operation by operation. *)

module Cluster = Blockrep.Cluster
module Runtime = Blockrep.Runtime
module Types = Blockrep.Types
module Block = Blockdev.Block

let make scheme ~n ~mode =
  Cluster.create
    (Blockrep.Config.make_exn ~scheme ~n_sites:n ~n_blocks:8 ~net_mode:mode ~seed:707 ())

let settle c = Cluster.run_until c (Sim.Engine.now (Cluster.engine c) +. 50.0)

let total c = Net.Traffic.total (Cluster.traffic c)

let write c = ignore (Cluster.write_sync c ~site:0 ~block:0 (Block.of_string "w"))
let read c = ignore (Cluster.read_sync c ~site:0 ~block:0)

(* Cost of one settled operation. *)
let cost_of c op =
  settle c;
  let before = total c in
  op c;
  settle c;
  total c - before

let check_cost scheme mode ~n ~op ~expected label =
  let c = make scheme ~n ~mode in
  Alcotest.(check int) label expected (cost_of c op)

let test_multicast_write_costs () =
  (* Voting: 1 request + (n-1) replies + 1 update = n+1 = 1+U.
     AC: 1 update + (n-1) acks = n = U.  NAC: 1. *)
  List.iter
    (fun n ->
      check_cost Types.Voting Net.Network.Multicast ~n ~op:write ~expected:(n + 1)
        (Printf.sprintf "voting multicast write n=%d" n);
      check_cost Types.Available_copy Net.Network.Multicast ~n ~op:write ~expected:n
        (Printf.sprintf "ac multicast write n=%d" n);
      check_cost Types.Naive_available_copy Net.Network.Multicast ~n ~op:write ~expected:1
        (Printf.sprintf "nac multicast write n=%d" n))
    [ 2; 3; 5; 8 ]

let test_multicast_read_costs () =
  (* Voting: 1 request + (n-1) replies = n = U.  Copy schemes: 0. *)
  List.iter
    (fun n ->
      check_cost Types.Voting Net.Network.Multicast ~n ~op:read ~expected:n
        (Printf.sprintf "voting multicast read n=%d" n);
      check_cost Types.Available_copy Net.Network.Multicast ~n ~op:read ~expected:0
        (Printf.sprintf "ac multicast read n=%d" n);
      check_cost Types.Naive_available_copy Net.Network.Multicast ~n ~op:read ~expected:0
        (Printf.sprintf "nac multicast read n=%d" n))
    [ 2; 3; 5; 8 ]

let test_unicast_write_costs () =
  (* Voting: (n-1) requests + (n-1) replies + (n-1) updates = 3n-3 = n+2U-3.
     AC: (n-1) updates + (n-1) acks = 2n-2 = n+U-2.  NAC: n-1. *)
  List.iter
    (fun n ->
      check_cost Types.Voting Net.Network.Unicast ~n ~op:write ~expected:((3 * n) - 3)
        (Printf.sprintf "voting unicast write n=%d" n);
      check_cost Types.Available_copy Net.Network.Unicast ~n ~op:write ~expected:((2 * n) - 2)
        (Printf.sprintf "ac unicast write n=%d" n);
      check_cost Types.Naive_available_copy Net.Network.Unicast ~n ~op:write ~expected:(n - 1)
        (Printf.sprintf "nac unicast write n=%d" n))
    [ 2; 3; 5 ]

let test_unicast_read_costs () =
  (* Voting: (n-1) requests + (n-1) replies = 2n-2 = n+U-2. *)
  List.iter
    (fun n ->
      check_cost Types.Voting Net.Network.Unicast ~n ~op:read ~expected:((2 * n) - 2)
        (Printf.sprintf "voting unicast read n=%d" n))
    [ 2; 3; 5 ]

let test_degraded_voting_write () =
  (* With one site down in multicast, a voting write costs 1 + (U-1) + 1
     where U-1 = n-2 live remote voters. *)
  let c = make Types.Voting ~n:5 ~mode:Net.Network.Multicast in
  Cluster.fail_site c 4;
  Alcotest.(check int) "degraded write" 5 (cost_of c write)

let test_degraded_ac_write () =
  (* AC write with a failed site: 1 update + (n-2) acks. *)
  let c = make Types.Available_copy ~n:5 ~mode:Net.Network.Multicast in
  Cluster.fail_site c 4;
  settle c;
  Alcotest.(check int) "degraded ac write" 4 (cost_of c write)

let test_voting_recovery_free () =
  let c = make Types.Voting ~n:5 ~mode:Net.Network.Multicast in
  settle c;
  let before = total c in
  Cluster.fail_site c 3;
  Cluster.repair_site c 3;
  settle c;
  Alcotest.(check int) "no recovery traffic under voting" before (total c)

let test_copy_recovery_cost_multicast () =
  (* Recovery with everyone else up: probe (1) + replies (n-1) + vv send
     (1) + vv reply (1) = n+2 = U+2 with U = n-1 respondents + ...; the
     paper writes U_A + 2 — with all sites up this is n + 2.  We assert
     the exact event count. *)
  List.iter
    (fun scheme ->
      let c = make scheme ~n:5 ~mode:Net.Network.Multicast in
      settle c;
      Cluster.fail_site c 3;
      let before = total c in
      Cluster.repair_site c 3;
      settle c;
      Alcotest.(check int)
        (Printf.sprintf "%s recovery = n+2" (Types.scheme_to_string scheme))
        7 (total c - before))
    [ Types.Available_copy; Types.Naive_available_copy ]

let test_copy_recovery_cost_unicast () =
  (* Unicast: probe (n-1) + replies (n-1) + vv send (1) + vv reply (1). *)
  List.iter
    (fun scheme ->
      let c = make scheme ~n:5 ~mode:Net.Network.Unicast in
      settle c;
      Cluster.fail_site c 3;
      let before = total c in
      Cluster.repair_site c 3;
      settle c;
      Alcotest.(check int)
        (Printf.sprintf "%s unicast recovery" (Types.scheme_to_string scheme))
        10 (total c - before))
    [ Types.Available_copy; Types.Naive_available_copy ]

let test_stale_voting_read_extra () =
  (* A read at a freshly repaired (stale) voting site costs U plus one
     request and one transfer (our 2-message pull; the paper charges 1 —
     see EXPERIMENTS.md). *)
  let c = make Types.Voting ~n:3 ~mode:Net.Network.Multicast in
  write c;
  settle c;
  Cluster.fail_site c 2;
  write c;
  settle c;
  Cluster.repair_site c 2;
  settle c;
  let before = total c in
  ignore (Cluster.read_sync c ~site:2 ~block:0);
  settle c;
  Alcotest.(check int) "stale read = U + 2" 5 (total c - before)

let test_workload_mix_matches_model () =
  (* 1 write + 2 reads, failure-free: compare against the model at rho→0
     for all schemes and both environments. *)
  let combos =
    [
      (Types.Voting, Analysis.Traffic_model.Voting);
      (Types.Available_copy, Analysis.Traffic_model.Available_copy);
      (Types.Naive_available_copy, Analysis.Traffic_model.Naive_available_copy);
    ]
  in
  List.iter
    (fun (mode, env) ->
      List.iter
        (fun (scheme, model_scheme) ->
          let c = make scheme ~n:5 ~mode in
          settle c;
          let before = total c in
          write c;
          read c;
          read c;
          settle c;
          let measured = total c - before in
          let model =
            Analysis.Traffic_model.workload_cost env model_scheme ~n:5 ~rho:1e-12 ~reads_per_write:2.0
          in
          Alcotest.(check (float 1e-6))
            (Printf.sprintf "%s/%s write group"
               (Types.scheme_to_string scheme)
               (Net.Network.mode_to_string mode))
            model (float_of_int measured))
        combos)
    [
      (Net.Network.Multicast, Analysis.Traffic_model.Multicast);
      (Net.Network.Unicast, Analysis.Traffic_model.Unique_address);
    ]

let test_zero_probability_faults_are_noop () =
  (* Installing a zero-probability fault injector must leave every traffic
     counter exactly as in a fault-free run — the fault layer defaults to a
     strict no-op, not merely a statistical one. *)
  let drive c =
    settle c;
    write c;
    read c;
    Cluster.fail_site c 2;
    write c;
    Cluster.repair_site c 2;
    settle c;
    read c;
    settle c
  in
  List.iter
    (fun mode ->
      List.iter
        (fun scheme ->
          let plain = make scheme ~n:5 ~mode in
          let faulty = make scheme ~n:5 ~mode in
          Cluster.install_faults faulty (Net.Faults.of_seed ~seed:2024 Net.Faults.pristine);
          drive plain;
          drive faulty;
          let label suffix =
            Printf.sprintf "%s/%s %s" (Types.scheme_to_string scheme)
              (Net.Network.mode_to_string mode) suffix
          in
          Alcotest.(check int) (label "messages") (total plain) (total faulty);
          Alcotest.(check int) (label "bytes")
            (Net.Traffic.total_bytes (Cluster.traffic plain))
            (Net.Traffic.total_bytes (Cluster.traffic faulty));
          Alcotest.(check int) (label "delivered")
            (Runtime.Transport.messages_delivered (Cluster.network plain))
            (Runtime.Transport.messages_delivered (Cluster.network faulty)))
        [ Types.Voting; Types.Available_copy; Types.Naive_available_copy ])
    [ Net.Network.Multicast; Net.Network.Unicast ]

let test_repair_cells_zero_without_media_faults () =
  (* The Repair operation exists only for media-fault read-repair: with no
     faults injected its traffic cells stay exactly zero through writes,
     reads, and a full failure/recovery cycle — so every Section 5 count
     above, and every recorded snapshot, is untouched by the durable
     layer. *)
  List.iter
    (fun mode ->
      List.iter
        (fun scheme ->
          let c = make scheme ~n:5 ~mode in
          settle c;
          write c;
          read c;
          Cluster.fail_site c 2;
          write c;
          Cluster.repair_site c 2;
          settle c;
          read c;
          settle c;
          Alcotest.(check int)
            (Printf.sprintf "%s/%s no Repair traffic" (Types.scheme_to_string scheme)
               (Net.Network.mode_to_string mode))
            0
            (Net.Traffic.by_operation (Cluster.traffic c) Net.Message.Repair))
        [
          Types.Voting;
          Types.Available_copy;
          Types.Naive_available_copy;
          Types.Dynamic_voting;
        ])
    [ Net.Network.Multicast; Net.Network.Unicast ]

let test_unicast_broadcast_charges_unreachable () =
  (* Section 5 counts sends: under unique addressing a broadcast costs n-1
     whether or not each destination can take delivery.  NAC n=5 with one
     site down and one partitioned away: the write is still charged 4
     sends, but only the two live, reachable destinations receive it. *)
  let c = make Types.Naive_available_copy ~n:5 ~mode:Net.Network.Unicast in
  settle c;
  Cluster.fail_site c 4;
  Cluster.partition c [ [ 0; 1; 2 ]; [ 3; 4 ] ];
  settle c;
  let net = Cluster.network c in
  let sent0 = total c and delivered0 = Runtime.Transport.messages_delivered net in
  write c;
  settle c;
  Alcotest.(check int) "charged n-1 sends" 4 (total c - sent0);
  Alcotest.(check int) "only reachable live sites take delivery" 2
    (Runtime.Transport.messages_delivered net - delivered0)

let test_multicast_broadcast_unreachable_cost_one () =
  (* Same degraded topology under multicast: one send on the wire, and the
     delivery count is unchanged by the addressing mode. *)
  let c = make Types.Naive_available_copy ~n:5 ~mode:Net.Network.Multicast in
  settle c;
  Cluster.fail_site c 4;
  Cluster.partition c [ [ 0; 1; 2 ]; [ 3; 4 ] ];
  settle c;
  let net = Cluster.network c in
  let sent0 = total c and delivered0 = Runtime.Transport.messages_delivered net in
  write c;
  settle c;
  Alcotest.(check int) "multicast broadcast costs one send" 1 (total c - sent0);
  Alcotest.(check int) "delivery unchanged by addressing mode" 2
    (Runtime.Transport.messages_delivered net - delivered0)

(* Modeled vs measured wire size.

   [Wire.size] is now the measured encoded-frame length; the legacy
   analytic model survives as [Wire.model_size] purely as a cross-check.
   Remaining divergence per category, and why:

   - Block carriers (Block_update, Block_transfer, Vv_reply-with-updates,
     Batch_update, Batch_transfer): within 15%.  The 512-byte payload
     dominates both sides; the gap is the modeled 32-byte header vs the
     9-byte frame plus 1–2-byte varints.

   - Control messages (everything else): the model over-states by up to
     ~75%.  It charges a 32-byte header and 4 bytes per integer where
     the codec spends 9 frame bytes and 1–2-byte varints — consistently
     conservative, never optimistic.

   Two invariants hold across every category at protocol-realistic field
   values: the model never under-estimates (measured <= modeled), and it
   is never more than 5x the measured size. *)
let test_model_vs_measured_size () =
  let module Wire = Blockrep.Wire in
  let set = Types.int_set_of_list in
  let vv l =
    let v = Blockdev.Version_vector.create (List.length l) in
    List.iteri (fun i x -> Blockdev.Version_vector.set v i x) l;
    v
  in
  let info =
    { Wire.origin = 2; state = Types.Available; versions = vv [ 3; 0; 7; 1 ];
      was_available = set [ 0; 2; 3 ] }
  in
  let carriers =
    [
      Wire.Block_update
        { rid = Some 2; block = 3; version = 4; data = Block.zero; carried_w = set [ 0; 1 ] };
      Wire.Block_transfer { rid = 3; block = 7; version = 4; data = Block.zero };
      Wire.Vv_reply
        { rid = 5; versions = vv [ 2; 2; 1; 0 ]; updates = [ (0, 2, Block.zero); (2, 1, Block.zero) ];
          w_of_source = set [ 0; 1; 2 ] };
      Wire.Batch_update
        { rid = Some 7; writes = [ (0, 2, Block.zero); (4, 5, Block.zero) ]; carried_w = set [ 1 ] };
      Wire.Batch_transfer { rid = 8; payloads = [ (1, 1, Block.zero) ] };
    ]
  in
  let control =
    [
      Wire.Vote_request { rid = 11; block = 5; purpose = Net.Message.Write };
      Wire.Vote_reply { rid = 11; block = 5; version = 9; weight = 2; group_size = 4 };
      Wire.Write_ack { rid = 12; block = 0 };
      Wire.Block_request { rid = 13; block = 7 };
      Wire.Recovery_probe { rid = 14; info };
      Wire.Recovery_reply { rid = 14; info };
      Wire.Vv_send { rid = 15; versions = vv [ 1; 2; 0; 0 ]; w_of_sender = set [ 1 ] };
      Wire.Group_fix { block = 3; version = 6; group = set [ 0; 2 ] };
      Wire.Batch_vote_request { rid = 16; blocks = [ 0; 3; 5 ]; purpose = Net.Message.Read };
      Wire.Batch_vote_reply { rid = 16; votes = [ (0, 1); (3, 2) ]; weight = 1; group_size = 5 };
      Wire.Batch_ack { rid = 17; blocks = [ 0; 4 ] };
      Wire.Batch_request { rid = 18; blocks = [ 1; 2; 3 ] };
    ]
  in
  let check_bounds ~tol m =
    let modeled = Wire.model_size m and measured = Wire.size m in
    let name = Wire.describe m in
    if measured > modeled then
      Alcotest.failf "%s: model under-estimates (measured %d > modeled %d)" name measured modeled;
    if 5 * measured < modeled then
      Alcotest.failf "%s: model exceeds 5x measured (%d vs %d)" name modeled measured;
    let divergence = float_of_int (modeled - measured) /. float_of_int modeled in
    if divergence > tol then
      Alcotest.failf "%s: divergence %.3f exceeds documented tolerance %.2f (modeled %d, measured %d)"
        name divergence tol modeled measured
  in
  List.iter (check_bounds ~tol:0.15) carriers;
  List.iter (check_bounds ~tol:0.75) control

let () =
  Alcotest.run "traffic-counts"
    [
      ( "section-5-exact",
        [
          Alcotest.test_case "multicast writes" `Quick test_multicast_write_costs;
          Alcotest.test_case "multicast reads" `Quick test_multicast_read_costs;
          Alcotest.test_case "unicast writes" `Quick test_unicast_write_costs;
          Alcotest.test_case "unicast reads" `Quick test_unicast_read_costs;
          Alcotest.test_case "degraded voting write" `Quick test_degraded_voting_write;
          Alcotest.test_case "degraded ac write" `Quick test_degraded_ac_write;
          Alcotest.test_case "voting recovery free" `Quick test_voting_recovery_free;
          Alcotest.test_case "copy recovery multicast" `Quick test_copy_recovery_cost_multicast;
          Alcotest.test_case "copy recovery unicast" `Quick test_copy_recovery_cost_unicast;
          Alcotest.test_case "stale voting read" `Quick test_stale_voting_read_extra;
          Alcotest.test_case "write group vs model" `Quick test_workload_mix_matches_model;
          Alcotest.test_case "modeled vs measured size" `Quick test_model_vs_measured_size;
        ] );
      ( "faults-and-reachability",
        [
          Alcotest.test_case "zero-probability faults are a no-op" `Quick
            test_zero_probability_faults_are_noop;
          Alcotest.test_case "repair cells zero without media faults" `Quick
            test_repair_cells_zero_without_media_faults;
          Alcotest.test_case "unicast broadcast charges unreachable sites" `Quick
            test_unicast_broadcast_charges_unreachable;
          Alcotest.test_case "multicast broadcast costs one regardless" `Quick
            test_multicast_broadcast_unreachable_cost_one;
        ] );
    ]
