(* Tests for Blockrep.Wire (message codec metadata) and Blockrep.Config
   validation. *)

module Wire = Blockrep.Wire
module Types = Blockrep.Types
module Config = Blockrep.Config
module Block = Blockdev.Block
module Vv = Blockdev.Version_vector

let set = Types.int_set_of_list

let sample_info origin =
  { Wire.origin; state = Types.Available; versions = Vv.create 4; was_available = set [ 0; 1 ] }

let sample_messages =
  [
    Wire.Vote_request { rid = 1; block = 0; purpose = Net.Message.Read };
    Wire.Vote_reply { rid = 1; block = 0; version = 3; weight = 2; group_size = 5 };
    Wire.Block_update
      { rid = Some 2; block = 1; version = 4; data = Block.of_string "x"; carried_w = set [ 0; 1; 2 ] };
    Wire.Write_ack { rid = 2; block = 1 };
    Wire.Block_request { rid = 3; block = 2 };
    Wire.Block_transfer { rid = 3; block = 2; version = 1; data = Block.zero };
    Wire.Recovery_probe { rid = 4; info = sample_info 1 };
    Wire.Recovery_reply { rid = 4; info = sample_info 2 };
    Wire.Vv_send { rid = 5; versions = Vv.create 4; w_of_sender = set [ 1 ] };
    Wire.Vv_reply
      { rid = 5; versions = Vv.create 4; updates = [ (0, 2, Block.zero) ]; w_of_source = set [ 1; 2 ] };
    Wire.Group_fix { block = 0; version = 7; group = set [ 0; 2 ] };
    Wire.Batch_vote_request { rid = 6; blocks = [ 0; 1; 2 ]; purpose = Net.Message.Write };
    Wire.Batch_vote_reply { rid = 6; votes = [ (0, 1); (1, 0); (2, 2) ]; weight = 1; group_size = 5 };
    Wire.Batch_update
      { rid = Some 6; writes = [ (0, 2, Block.zero); (1, 1, Block.zero) ]; carried_w = set [ 0; 1 ] };
    Wire.Batch_ack { rid = 6; blocks = [ 0; 1 ] };
    Wire.Batch_request { rid = 7; blocks = [ 0; 1 ] };
    Wire.Batch_transfer { rid = 7; payloads = [ (0, 2, Block.zero); (1, 1, Block.zero) ] };
  ]

let test_sizes_positive () =
  List.iter
    (fun m ->
      if Wire.size m <= 0 then Alcotest.failf "non-positive size for %s" (Wire.describe m))
    sample_messages

let test_block_carriers_dominate () =
  (* Messages carrying block payloads must be at least a block big — the
     size model that makes the Section 5 byte remark meaningful. *)
  let carries_block = function
    | Wire.Block_update _ | Wire.Block_transfer _ | Wire.Batch_update _ | Wire.Batch_transfer _ ->
        true
    | Wire.Vv_reply { updates; _ } -> updates <> []
    | _ -> false
  in
  List.iter
    (fun m ->
      let s = Wire.size m in
      if carries_block m then
        Alcotest.(check bool) (Wire.describe m) true (s >= Block.size)
      else Alcotest.(check bool) (Wire.describe m) true (s < Block.size))
    sample_messages

let test_vv_reply_size_grows_with_updates () =
  let mk updates = Wire.Vv_reply { rid = 1; versions = Vv.create 4; updates; w_of_source = set [] } in
  let one = Wire.size (mk [ (0, 1, Block.zero) ]) in
  let three = Wire.size (mk [ (0, 1, Block.zero); (1, 1, Block.zero); (2, 1, Block.zero) ]) in
  (* Measured encoding: each extra update costs its block payload plus a
     few varint bytes of (block, version) framing — strictly between one
     raw block and a block plus the legacy 8-byte overhead. *)
  Alcotest.(check bool) "two more blocks (lower)" true (three - one >= 2 * Block.size);
  Alcotest.(check bool) "two more blocks (upper)" true (three - one <= 2 * (Block.size + 8))

let test_describe_nonempty_and_distinct () =
  let described = List.map Wire.describe sample_messages in
  List.iter (fun d -> Alcotest.(check bool) d true (String.length d > 5)) described;
  Alcotest.(check int) "descriptions distinct" (List.length described)
    (List.length (List.sort_uniq compare described))

let test_rid_extraction () =
  Alcotest.(check (option int)) "vote request" (Some 1) (Wire.rid (List.nth sample_messages 0));
  Alcotest.(check (option int)) "acked update" (Some 2) (Wire.rid (List.nth sample_messages 2));
  Alcotest.(check (option int)) "group fix has no round" None
    (Wire.rid (Wire.Group_fix { block = 0; version = 1; group = set [] }));
  Alcotest.(check (option int)) "fire-and-forget update" None
    (Wire.rid
       (Wire.Block_update { rid = None; block = 0; version = 1; data = Block.zero; carried_w = set [] }))

let test_batch_categories_match_single_block () =
  (* Group-commit accounting: every batch message is charged to the same
     Section 5 category as its single-block counterpart, so one batched
     transmission replaces k single ones without touching the traffic
     tables. *)
  let pairs =
    [
      (Wire.Batch_vote_request { rid = 1; blocks = [ 0 ]; purpose = Net.Message.Write },
       Net.Message.Vote_request);
      (Wire.Batch_vote_reply { rid = 1; votes = [ (0, 1) ]; weight = 1; group_size = 3 },
       Net.Message.Vote_reply);
      (Wire.Batch_update { rid = None; writes = [ (0, 1, Block.zero) ]; carried_w = set [] },
       Net.Message.Block_update);
      (Wire.Batch_ack { rid = 1; blocks = [ 0 ] }, Net.Message.Write_ack);
      (Wire.Batch_request { rid = 1; blocks = [ 0 ] }, Net.Message.Block_request);
      (Wire.Batch_transfer { rid = 1; payloads = [ (0, 1, Block.zero) ] },
       Net.Message.Block_transfer);
    ]
  in
  List.iter
    (fun (m, expected) ->
      Alcotest.(check string) (Wire.describe m)
        (Net.Message.to_string expected)
        (Net.Message.to_string (Wire.category m)))
    pairs

let test_batch_update_size_grows_per_block () =
  (* One transmission, but the bytes still travel: a k-write batch update
     is k block payloads big, which is what keeps the size-based
     comparison of Section 5 honest under group commit. *)
  let mk k =
    Wire.Batch_update
      { rid = None; writes = List.init k (fun i -> (i, 1, Block.zero)); carried_w = set [] }
  in
  let one = Wire.size (mk 1) in
  let four = Wire.size (mk 4) in
  Alcotest.(check bool) "k payloads" true (four - one >= 3 * Block.size)

let test_categories_cover_accounting () =
  (* Every message lands in some accounting category (total function), and
     data-plane vs recovery-plane messages are separated. *)
  List.iter
    (fun m -> ignore (Net.Message.to_string (Wire.category m) : string))
    sample_messages;
  Alcotest.(check bool) "probe is recovery-plane" true
    (Wire.category (List.nth sample_messages 6) = Net.Message.Recovery_probe)

(* ------------------------------------------------------------------ *)
(* Config validation                                                   *)
(* ------------------------------------------------------------------ *)

let rejects ?n_blocks ?latency ?op_timeout ?quorum ?witnesses ?(scheme = Types.Voting) ~n_sites () =
  match Config.make ~scheme ~n_sites ?n_blocks ?latency ?op_timeout ?quorum ?witnesses () with
  | Error _ -> true
  | Ok _ -> false

let test_config_validation_matrix () =
  Alcotest.(check bool) "zero sites" true (rejects ~n_sites:0 ());
  Alcotest.(check bool) "zero blocks" true (rejects ~n_sites:3 ~n_blocks:0 ());
  Alcotest.(check bool) "bad latency" true (rejects ~n_sites:3 ~latency:(Util.Dist.Exponential 0.0) ());
  Alcotest.(check bool) "bad timeout" true (rejects ~n_sites:3 ~op_timeout:0.0 ());
  Alcotest.(check bool) "quorum size mismatch" true
    (rejects ~n_sites:3 ~quorum:(Blockrep.Quorum.majority ~n:4) ());
  Alcotest.(check bool) "valid accepted" false (rejects ~n_sites:3 ());
  Alcotest.(check bool) "dynamic with witnesses rejected" true
    (rejects ~n_sites:3 ~scheme:Types.Dynamic_voting ~witnesses:[ 2 ] ())

let test_config_defaults () =
  let c = Config.make_exn ~scheme:Types.Voting ~n_sites:3 () in
  Alcotest.(check int) "default blocks" 64 c.Config.n_blocks;
  Alcotest.(check bool) "timeout exceeds two latencies" true
    (c.Config.op_timeout > 2.0 *. Util.Dist.mean c.Config.latency);
  Alcotest.(check bool) "no witnesses" true (Types.Int_set.is_empty c.Config.witnesses)

let test_config_pp () =
  let c = Config.make_exn ~scheme:Types.Available_copy ~n_sites:4 ~seed:9 () in
  let rendered = Format.asprintf "%a" Config.pp c in
  Alcotest.(check bool) "mentions the scheme" true
    (let n = "available-copy" in
     let rec go i =
       i + String.length n <= String.length rendered
       && (String.sub rendered i (String.length n) = n || go (i + 1))
     in
     go 0)

let () =
  Alcotest.run "wire-config"
    [
      ( "wire",
        [
          Alcotest.test_case "sizes positive" `Quick test_sizes_positive;
          Alcotest.test_case "block payloads dominate" `Quick test_block_carriers_dominate;
          Alcotest.test_case "vv-reply growth" `Quick test_vv_reply_size_grows_with_updates;
          Alcotest.test_case "describe" `Quick test_describe_nonempty_and_distinct;
          Alcotest.test_case "rid extraction" `Quick test_rid_extraction;
          Alcotest.test_case "categories total" `Quick test_categories_cover_accounting;
          Alcotest.test_case "batch categories match single-block" `Quick
            test_batch_categories_match_single_block;
          Alcotest.test_case "batch update size grows per block" `Quick
            test_batch_update_size_grows_per_block;
        ] );
      ( "config",
        [
          Alcotest.test_case "validation matrix" `Quick test_config_validation_matrix;
          Alcotest.test_case "defaults" `Quick test_config_defaults;
          Alcotest.test_case "pp" `Quick test_config_pp;
        ] );
    ]
