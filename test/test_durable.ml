(* Tests for Blockdev.Durable_store: checksums, the two-phase intention
   journal, torn-write crash faults, bitrot quarantine discipline,
   journaled metadata, and disk replacement. *)

module Block = Blockdev.Block
module Vv = Blockdev.Version_vector
module Store = Blockdev.Store
module Durable = Blockdev.Durable_store

let block = Block.of_string

(* ------------------------------------------------------------------ *)
(* Fault-free pass-through                                             *)
(* ------------------------------------------------------------------ *)

let test_passthrough () =
  let d = Durable.create ~capacity:8 in
  Alcotest.(check bool) "fresh block verified" true (Durable.checksum_ok d 3);
  Alcotest.(check int) "fresh effective version" 0 (Durable.effective_version d 3);
  Durable.write d 3 (block "hello") ~version:2;
  Alcotest.(check bool) "written block verified" true (Durable.checksum_ok d 3);
  Alcotest.(check int) "effective = stored" 2 (Durable.effective_version d 3);
  (match Durable.read_verified d 3 with
  | Some (b, v) ->
      Alcotest.(check bool) "contents" true (Block.equal b (block "hello"));
      Alcotest.(check int) "version" 2 v
  | None -> Alcotest.fail "verified read refused a clean block");
  (* The underlying store agrees: no faults means bit-identical state. *)
  Alcotest.(check int) "store version" 2 (Store.version (Durable.store d) 3)

let test_version_regression_on_verified () =
  let d = Durable.create ~capacity:4 in
  Durable.write d 0 (block "v2") ~version:2;
  Alcotest.check_raises "regression over a verified block raises"
    (Invalid_argument "Durable_store.write: version regression on block 0 (1 < 2)") (fun () ->
      Durable.write d 0 (block "v1") ~version:1)

(* ------------------------------------------------------------------ *)
(* Bitrot quarantine                                                   *)
(* ------------------------------------------------------------------ *)

let test_bitrot_quarantines () =
  let d = Durable.create ~capacity:4 in
  Durable.write d 1 (block "precious") ~version:3;
  Durable.inject_bitrot d 1;
  Alcotest.(check bool) "checksum fails" false (Durable.checksum_ok d 1);
  Alcotest.(check int) "effective version drops to 0" 0 (Durable.effective_version d 1);
  Alcotest.(check bool) "verified read refuses" true (Durable.read_verified d 1 = None);
  (* Stored version metadata stays trustworthy: decay hits data bytes,
     not the separately journaled version table. *)
  Alcotest.(check int) "stored version intact" 3 (Store.version (Durable.store d) 1);
  Alcotest.(check int) "counted" 1 (Durable.counters d).Durable.bitrot_injected

let test_quarantined_never_transferred () =
  let d = Durable.create ~capacity:4 in
  Durable.write d 0 (block "good") ~version:1;
  Durable.write d 2 (block "bad") ~version:5;
  Durable.inject_bitrot d 2;
  let updates = Durable.verified_blocks_newer_than d (Vv.create 4) in
  Alcotest.(check (list int)) "only the verified block ships" [ 0 ]
    (List.map (fun (k, _, _) -> k) updates)

let test_version_floor () =
  let d = Durable.create ~capacity:4 in
  Durable.write d 0 (block "acked") ~version:4;
  Durable.inject_bitrot d 0;
  (* Below the stored floor: silently refused, still quarantined. *)
  Durable.write d 0 (block "stale") ~version:2;
  Alcotest.(check bool) "still quarantined" false (Durable.checksum_ok d 0);
  Alcotest.(check int) "refusal counted" 1 (Durable.counters d).Durable.refused_installs;
  Alcotest.(check int) "floor intact" 4 (Store.version (Durable.store d) 0);
  (* At the floor: verified data heals the block in place. *)
  Durable.write d 0 (block "current") ~version:4;
  Alcotest.(check bool) "healed" true (Durable.checksum_ok d 0);
  Alcotest.(check int) "repair counted" 1 (Durable.counters d).Durable.repaired_blocks;
  match Durable.read_verified d 0 with
  | Some (b, 4) -> Alcotest.(check bool) "healed contents" true (Block.equal b (block "current"))
  | _ -> Alcotest.fail "healed block unreadable"

let test_apply_updates_repairs_at_floor () =
  let d = Durable.create ~capacity:4 in
  Durable.write d 1 (block "x") ~version:3;
  Durable.inject_bitrot d 1;
  (* A recovery transfer at the exact stored version repairs in place;
     plain Store.apply_updates would drop it as not-strictly-newer. *)
  Durable.apply_updates d [ (1, 3, block "x") ];
  Alcotest.(check bool) "repaired by transfer" true (Durable.checksum_ok d 1);
  Alcotest.(check int) "version kept" 3 (Durable.effective_version d 1);
  (* And a below-floor transfer entry is refused, not installed. *)
  Durable.inject_bitrot d 1;
  Durable.apply_updates d [ (1, 2, block "older") ];
  Alcotest.(check bool) "below-floor transfer refused" false (Durable.checksum_ok d 1)

(* ------------------------------------------------------------------ *)
(* Torn writes and the recovery scrub                                  *)
(* ------------------------------------------------------------------ *)

let test_torn_apply_replayed () =
  let d = Durable.create ~capacity:4 in
  Durable.write d 2 (block "a") ~version:1;
  Durable.write d 2 (block "b") ~version:2;
  Durable.arm_torn_write d;
  Durable.crash d;
  (* The journal committed but the in-place apply tore: garbage bytes
     under an intact version number. *)
  Alcotest.(check bool) "torn block quarantined" false (Durable.checksum_ok d 2);
  Alcotest.(check int) "torn write counted" 1 (Durable.counters d).Durable.torn_writes;
  let report = Durable.scrub d in
  Alcotest.(check int) "scrub replays the intention" 1 report.Durable.replayed;
  Alcotest.(check int) "nothing discarded" 0 report.Durable.discarded;
  match Durable.read_verified d 2 with
  | Some (b, 2) ->
      Alcotest.(check bool) "acknowledged write survives" true (Block.equal b (block "b"))
  | _ -> Alcotest.fail "replayed block unreadable"

let test_torn_journal_discarded () =
  let d = Durable.create ~capacity:4 in
  Durable.write d 0 (block "a") ~version:1;
  Durable.write d 0 (block "b") ~version:2;
  Durable.arm_torn_write ~mode:Durable.Torn_journal d;
  Durable.crash d;
  let report = Durable.scrub d in
  Alcotest.(check int) "scrub discards the half-written record" 1 report.Durable.discarded;
  Alcotest.(check int) "nothing replayed" 0 report.Durable.replayed;
  (* The un-journaled write never happened: pre-image restored, verified. *)
  match Durable.read_verified d 0 with
  | Some (b, 1) -> Alcotest.(check bool) "pre-image restored" true (Block.equal b (block "a"))
  | _ -> Alcotest.fail "pre-image unreadable"

let test_crash_unarmed_is_harmless () =
  let d = Durable.create ~capacity:4 in
  Durable.write d 1 (block "kept") ~version:1;
  Durable.crash d;
  Alcotest.(check bool) "disk intact" true (Durable.checksum_ok d 1);
  let report = Durable.scrub d in
  Alcotest.(check int) "clean scrub: nothing to replay" 0 report.Durable.replayed;
  Alcotest.(check int) "clean scrub: nothing quarantined" 0 report.Durable.quarantined

let test_scrub_counts_quarantined () =
  let d = Durable.create ~capacity:4 in
  Durable.write d 0 (block "x") ~version:1;
  Durable.write d 3 (block "y") ~version:1;
  (* A later clean write: the journal's single slot holds block 1, so the
     rot below is genuine decay, not a torn apply the journal could replay. *)
  Durable.write d 1 (block "z") ~version:1;
  Durable.inject_bitrot d 0;
  Durable.inject_bitrot d 3;
  let report = Durable.scrub d in
  Alcotest.(check int) "both rotten blocks counted" 2 report.Durable.quarantined;
  Alcotest.(check bool) "last_scrub kept" true (Durable.last_scrub d = Some report)

(* ------------------------------------------------------------------ *)
(* Journaled metadata                                                  *)
(* ------------------------------------------------------------------ *)

let test_meta_roundtrip () =
  let d = Durable.create ~capacity:2 in
  Alcotest.(check (option (list int))) "unset key" None (Durable.get_meta d "w");
  Durable.set_meta_default d "w" [ 0; 1; 2 ];
  Alcotest.(check (option (list int))) "default installs" (Some [ 0; 1; 2 ]) (Durable.get_meta d "w");
  Durable.set_meta d "w" [ 1 ];
  Alcotest.(check (option (list int))) "update sticks" (Some [ 1 ]) (Durable.get_meta d "w")

let test_torn_meta_reset_to_default () =
  let d = Durable.create ~capacity:2 in
  Durable.set_meta_default d "w" [ 0; 1; 2 ];
  Durable.set_meta d "w" [ 1 ];
  Durable.arm_torn_write d;
  Durable.crash d;
  let report = Durable.scrub d in
  Alcotest.(check (list string)) "torn key reported" [ "w" ] report.Durable.meta_reset;
  Alcotest.(check (option (list int)))
    "conservative default restored" (Some [ 0; 1; 2 ]) (Durable.get_meta d "w")

let test_torn_meta_journal_restores_previous () =
  let d = Durable.create ~capacity:2 in
  Durable.set_meta_default d "g" [ 9 ];
  Durable.set_meta d "g" [ 1; 2 ];
  Durable.set_meta d "g" [ 3 ];
  Durable.arm_torn_write ~mode:Durable.Torn_journal d;
  Durable.crash d;
  (* The append tore: the write never became durable, previous value back. *)
  Alcotest.(check (option (list int))) "previous value" (Some [ 1; 2 ]) (Durable.get_meta d "g");
  let report = Durable.scrub d in
  Alcotest.(check int) "discarded" 1 report.Durable.discarded

(* ------------------------------------------------------------------ *)
(* Disk replacement and re-blessing                                    *)
(* ------------------------------------------------------------------ *)

let test_replace_disk () =
  let d = Durable.create ~capacity:4 in
  Durable.set_meta_default d "w" [ 0; 1 ];
  Durable.set_meta d "w" [ 0 ];
  Durable.write d 2 (block "doomed") ~version:7;
  Durable.inject_bitrot d 2;
  Durable.replace_disk d;
  Alcotest.(check bool) "blank block verified" true (Durable.checksum_ok d 2);
  Alcotest.(check int) "version reset" 0 (Durable.effective_version d 2);
  Alcotest.(check bool) "contents zeroed" true
    (Block.equal (Store.read (Durable.store d) 2) Block.zero);
  Alcotest.(check (option (list int))) "meta back to default" (Some [ 0; 1 ])
    (Durable.get_meta d "w");
  Alcotest.(check int) "counted" 1 (Durable.counters d).Durable.disk_replacements

let test_rebless_after_direct_store_write () =
  let d = Durable.create ~capacity:2 in
  (* Checkpoint restore writes the underlying store directly... *)
  Store.write (Durable.store d) 0 (block "restored") ~version:5;
  Alcotest.(check bool) "stale checksum before" false (Durable.checksum_ok d 0);
  (* ...then re-blesses: by construction it restores only verified state. *)
  Durable.rebless d;
  Alcotest.(check bool) "verified after" true (Durable.checksum_ok d 0);
  Alcotest.(check int) "effective version" 5 (Durable.effective_version d 0)

let test_counter_accumulation () =
  let a = Durable.zero_counters () in
  let d = Durable.create ~capacity:2 in
  Durable.write d 0 (block "x") ~version:1;
  Durable.inject_bitrot d 0;
  Durable.write d 0 (block "x") ~version:1;
  Durable.accumulate_counters a (Durable.counters d);
  Durable.accumulate_counters a (Durable.counters d);
  Alcotest.(check int) "bitrot summed" 2 a.Durable.bitrot_injected;
  Alcotest.(check int) "repairs summed" 2 a.Durable.repaired_blocks

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

(* Bitrot is always detected: whatever (contents, version) pair is on the
   platter, scrambling the data bytes breaks the checksum. *)
let prop_bitrot_always_detected =
  QCheck.Test.make ~name:"inject_bitrot always breaks the checksum" ~count:300
    QCheck.(pair (string_of_size (Gen.int_range 0 64)) (int_range 1 50))
    (fun (s, v) ->
      let d = Durable.create ~capacity:4 in
      Durable.write d 1 (block s) ~version:v;
      Durable.inject_bitrot d 1;
      (not (Durable.checksum_ok d 1)) && Store.version (Durable.store d) 1 = v)

(* Crash-atomicity: whichever way the crash tears, after the scrub the
   block is verified and holds either the old or the new write — never a
   mix, never garbage. *)
let prop_scrub_restores_old_or_new =
  QCheck.Test.make ~name:"scrub leaves either pre- or post-image, verified" ~count:200
    QCheck.(pair bool (pair small_printable_string small_printable_string))
    (fun (torn_journal, (old_s, new_s)) ->
      let d = Durable.create ~capacity:2 in
      Durable.write d 0 (block old_s) ~version:1;
      Durable.write d 0 (block new_s) ~version:2;
      Durable.arm_torn_write
        ~mode:(if torn_journal then Durable.Torn_journal else Durable.Torn_apply)
        d;
      Durable.crash d;
      ignore (Durable.scrub d : Durable.scrub_report);
      match Durable.read_verified d 0 with
      | Some (b, 1) -> Block.equal b (block old_s)
      | Some (b, 2) -> Block.equal b (block new_s)
      | _ -> false)

let () =
  Alcotest.run "durable"
    [
      ( "pass-through",
        [
          Alcotest.test_case "checked read/write" `Quick test_passthrough;
          Alcotest.test_case "version regression" `Quick test_version_regression_on_verified;
        ] );
      ( "bitrot",
        [
          Alcotest.test_case "quarantine" `Quick test_bitrot_quarantines;
          Alcotest.test_case "never transferred" `Quick test_quarantined_never_transferred;
          Alcotest.test_case "version floor" `Quick test_version_floor;
          Alcotest.test_case "transfer repairs at floor" `Quick test_apply_updates_repairs_at_floor;
          QCheck_alcotest.to_alcotest prop_bitrot_always_detected;
        ] );
      ( "torn-writes",
        [
          Alcotest.test_case "torn apply replayed" `Quick test_torn_apply_replayed;
          Alcotest.test_case "torn journal discarded" `Quick test_torn_journal_discarded;
          Alcotest.test_case "unarmed crash harmless" `Quick test_crash_unarmed_is_harmless;
          Alcotest.test_case "scrub counts quarantined" `Quick test_scrub_counts_quarantined;
          QCheck_alcotest.to_alcotest prop_scrub_restores_old_or_new;
        ] );
      ( "metadata",
        [
          Alcotest.test_case "roundtrip" `Quick test_meta_roundtrip;
          Alcotest.test_case "torn apply resets to default" `Quick test_torn_meta_reset_to_default;
          Alcotest.test_case "torn journal restores previous" `Quick
            test_torn_meta_journal_restores_previous;
        ] );
      ( "replacement",
        [
          Alcotest.test_case "replace disk" `Quick test_replace_disk;
          Alcotest.test_case "rebless" `Quick test_rebless_after_direct_store_write;
          Alcotest.test_case "counter accumulation" `Quick test_counter_accumulation;
        ] );
    ]
