(* Tests for Blockdev: Block, Version_vector, Store, Mem_device. *)

module Block = Blockdev.Block
module Vv = Blockdev.Version_vector
module Store = Blockdev.Store

(* ------------------------------------------------------------------ *)
(* Block                                                               *)
(* ------------------------------------------------------------------ *)

let test_block_size () = Alcotest.(check int) "512-byte blocks" 512 Block.size

let test_block_zero () =
  Alcotest.(check bool) "zero block all zeroes" true
    (String.for_all (fun c -> c = '\000') (Block.to_string Block.zero))

let test_block_roundtrip () =
  let b = Block.of_string "hello" in
  let s = Block.to_string b in
  Alcotest.(check int) "padded to size" Block.size (String.length s);
  Alcotest.(check string) "prefix preserved" "hello" (String.sub s 0 5)

let test_block_truncates () =
  let long = String.make 1000 'a' in
  let b = Block.of_string long in
  Alcotest.(check int) "truncated" Block.size (String.length (Block.to_string b))

let test_block_get_set () =
  let b = Block.of_string "abc" in
  Alcotest.(check char) "get" 'b' (Block.get b 1);
  let b' = Block.set b 1 'X' in
  Alcotest.(check char) "set produces new block" 'X' (Block.get b' 1);
  Alcotest.(check char) "original unchanged" 'b' (Block.get b 1)

let test_block_bounds () =
  Alcotest.check_raises "get out of range" (Invalid_argument "Block.get: offset out of range")
    (fun () -> ignore (Block.get Block.zero Block.size))

let test_block_equal () =
  Alcotest.(check bool) "equal" true (Block.equal (Block.of_string "x") (Block.of_string "x"));
  Alcotest.(check bool) "not equal" false (Block.equal (Block.of_string "x") (Block.of_string "y"))

let test_block_blit () =
  let b = Block.of_string "blit me" in
  let dst = Bytes.make (Block.size + 10) '?' in
  Block.blit_into b dst 10;
  Alcotest.(check string) "blit content" "blit me" (Bytes.sub_string dst 10 7);
  Alcotest.(check char) "prefix untouched" '?' (Bytes.get dst 0)

(* ------------------------------------------------------------------ *)
(* Version_vector                                                      *)
(* ------------------------------------------------------------------ *)

let test_vv_create () =
  let v = Vv.create 4 in
  Alcotest.(check int) "length" 4 (Vv.length v);
  for k = 0 to 3 do
    Alcotest.(check int) "zeroed" 0 (Vv.get v k)
  done

let test_vv_bump () =
  let v = Vv.create 3 in
  Alcotest.(check int) "bump returns new" 1 (Vv.bump v 1);
  Alcotest.(check int) "bump again" 2 (Vv.bump v 1);
  Alcotest.(check int) "others untouched" 0 (Vv.get v 0)

let test_vv_stale_blocks () =
  let mine = Vv.create 4 and theirs = Vv.create 4 in
  Vv.set theirs 1 3;
  Vv.set theirs 3 1;
  Vv.set mine 3 1;
  Vv.set mine 0 5 (* mine is newer on 0: not stale *);
  Alcotest.(check (list int)) "stale set" [ 1 ] (Vv.stale_blocks ~mine ~theirs)

let test_vv_dominates () =
  let a = Vv.create 3 and b = Vv.create 3 in
  Vv.set a 0 2;
  Vv.set b 0 1;
  Alcotest.(check bool) "a dominates b" true (Vv.dominates a b);
  Alcotest.(check bool) "b does not dominate a" false (Vv.dominates b a);
  Vv.set b 1 9;
  Alcotest.(check bool) "incomparable" false (Vv.dominates a b || Vv.dominates b a)

let test_vv_max_merge () =
  let a = Vv.create 3 and b = Vv.create 3 in
  Vv.set a 0 2;
  Vv.set b 1 5;
  let m = Vv.max_merge a b in
  Alcotest.(check int) "component 0" 2 (Vv.get m 0);
  Alcotest.(check int) "component 1" 5 (Vv.get m 1);
  Alcotest.(check bool) "merge dominates both" true (Vv.dominates m a && Vv.dominates m b)

let test_vv_length_mismatch () =
  Alcotest.check_raises "mismatch" (Invalid_argument "Version_vector.dominates: length mismatch")
    (fun () -> ignore (Vv.dominates (Vv.create 2) (Vv.create 3)))

let test_vv_negative_rejected () =
  let v = Vv.create 2 in
  Alcotest.check_raises "negative version" (Invalid_argument "Version_vector.set: negative version")
    (fun () -> Vv.set v 0 (-1))

(* ------------------------------------------------------------------ *)
(* Store                                                               *)
(* ------------------------------------------------------------------ *)

let test_store_initial () =
  let s = Store.create ~capacity:8 in
  Alcotest.(check int) "capacity" 8 (Store.capacity s);
  Alcotest.(check bool) "initial zero blocks" true (Block.equal Block.zero (Store.read s 3));
  Alcotest.(check int) "initial versions" 0 (Store.version s 3)

let test_store_write_read () =
  let s = Store.create ~capacity:4 in
  Store.write s 2 (Block.of_string "data") ~version:1;
  Alcotest.(check bool) "read back" true (Block.equal (Block.of_string "data") (Store.read s 2));
  Alcotest.(check int) "version" 1 (Store.version s 2)

let test_store_version_regression () =
  let s = Store.create ~capacity:4 in
  Store.write s 0 (Block.of_string "v2") ~version:2;
  Alcotest.check_raises "regression"
    (Invalid_argument "Store.write: version regression on block 0 (1 < 2)") (fun () ->
      Store.write s 0 (Block.of_string "v1") ~version:1)

let test_store_idempotent_same_version () =
  let s = Store.create ~capacity:4 in
  Store.write s 0 (Block.of_string "a") ~version:1;
  Store.write s 0 (Block.of_string "a") ~version:1;
  Alcotest.(check int) "same version ok" 1 (Store.version s 0)

let test_store_versions_snapshot () =
  let s = Store.create ~capacity:3 in
  Store.write s 1 (Block.of_string "x") ~version:4;
  let v = Store.versions s in
  Alcotest.(check int) "snapshot" 4 (Vv.get v 1);
  (* mutation of the snapshot does not touch the store *)
  Vv.set v 1 9;
  Alcotest.(check int) "store unaffected" 4 (Store.version s 1)

let test_store_newer_than_and_apply () =
  let a = Store.create ~capacity:4 and b = Store.create ~capacity:4 in
  Store.write a 0 (Block.of_string "zero") ~version:2;
  Store.write a 3 (Block.of_string "three") ~version:1;
  Store.write b 3 (Block.of_string "stale") ~version:1 (* same version: not newer *);
  let updates = Store.blocks_newer_than a (Store.versions b) in
  Alcotest.(check int) "one newer block" 1 (List.length updates);
  Store.apply_updates b updates;
  Alcotest.(check bool) "b now has a's block 0" true
    (Block.equal (Store.read b 0) (Block.of_string "zero"));
  Alcotest.(check bool) "stores not equal (block 3 differs)" false (Store.equal_contents a b)

let test_store_apply_ignores_stale () =
  let s = Store.create ~capacity:2 in
  Store.write s 0 (Block.of_string "new") ~version:5;
  Store.apply_updates s [ (0, 3, Block.of_string "old") ];
  Alcotest.(check int) "kept newer" 5 (Store.version s 0);
  Alcotest.(check bool) "content kept" true (Block.equal (Store.read s 0) (Block.of_string "new"))

let test_store_transfer_roundtrip_idempotent () =
  let a = Store.create ~capacity:6 and b = Store.create ~capacity:6 in
  Store.write a 0 (Block.of_string "zero") ~version:3;
  Store.write a 2 (Block.of_string "two") ~version:1;
  Store.write a 5 (Block.of_string "five") ~version:2;
  Store.write b 2 (Block.of_string "old-two") ~version:1 (* equal version: stays *);
  Store.write b 4 (Block.of_string "mine") ~version:7 (* b-only: untouched *);
  let updates = Store.blocks_newer_than a (Store.versions b) in
  Store.apply_updates b updates;
  Alcotest.(check int) "b caught up on 0" 3 (Store.version b 0);
  Alcotest.(check int) "b caught up on 5" 2 (Store.version b 5);
  Alcotest.(check bool) "equal-version block untouched" true
    (Block.equal (Store.read b 2) (Block.of_string "old-two"));
  Alcotest.(check int) "b-only block untouched" 7 (Store.version b 4);
  (* Round trip is now dry in both directions... *)
  Alcotest.(check int) "a->b dry" 0 (List.length (Store.blocks_newer_than a (Store.versions b)));
  (* ...and replaying the same transfer set is a no-op (idempotent). *)
  let snapshot = Array.init 6 (Store.version b) in
  Store.apply_updates b updates;
  Alcotest.(check bool) "replay is a no-op" true
    (Array.for_all Fun.id (Array.init 6 (fun k -> Store.version b k = snapshot.(k))))

let test_store_blank_disk_full_transfer () =
  (* The fresh-replica case: a blank disk's version vector is all zeros,
     so the transfer set is exactly every block ever written and a single
     application converges the replica. *)
  let a = Store.create ~capacity:8 and blank = Store.create ~capacity:8 in
  List.iter
    (fun (k, v) -> Store.write a k (Block.of_string (Printf.sprintf "blk%d" k)) ~version:v)
    [ (0, 2); (1, 1); (3, 4); (7, 1) ];
  let updates = Store.blocks_newer_than a (Store.versions blank) in
  Alcotest.(check (list int)) "every written block ships" [ 0; 1; 3; 7 ]
    (List.sort compare (List.map (fun (k, _, _) -> k) updates));
  Store.apply_updates blank updates;
  Alcotest.(check bool) "replica converged" true (Store.equal_contents a blank)

let test_store_equal_contents () =
  let a = Store.create ~capacity:2 and b = Store.create ~capacity:2 in
  Alcotest.(check bool) "fresh stores equal" true (Store.equal_contents a b);
  Store.write a 0 (Block.of_string "x") ~version:1;
  Alcotest.(check bool) "diverged" false (Store.equal_contents a b);
  Store.write b 0 (Block.of_string "x") ~version:1;
  Alcotest.(check bool) "converged" true (Store.equal_contents a b)

(* ------------------------------------------------------------------ *)
(* Mem_device                                                          *)
(* ------------------------------------------------------------------ *)

let test_mem_device_rw () =
  let d = Blockdev.Mem_device.create ~capacity:4 in
  Alcotest.(check bool) "write ok" true (Blockdev.Mem_device.write_block d 1 (Block.of_string "m"));
  match Blockdev.Mem_device.read_block d 1 with
  | Some b -> Alcotest.(check bool) "read back" true (Block.equal b (Block.of_string "m"))
  | None -> Alcotest.fail "read failed"

let test_mem_device_bounds () =
  let d = Blockdev.Mem_device.create ~capacity:4 in
  Alcotest.(check (option reject)) "read out of range" None (Blockdev.Mem_device.read_block d 4);
  Alcotest.(check bool) "write out of range" false
    (Blockdev.Mem_device.write_block d (-1) Block.zero)

let test_mem_device_fail_revive () =
  let d = Blockdev.Mem_device.create ~capacity:4 in
  ignore (Blockdev.Mem_device.write_block d 0 (Block.of_string "kept"));
  Blockdev.Mem_device.fail d;
  Alcotest.(check bool) "failed device refuses reads" true (Blockdev.Mem_device.read_block d 0 = None);
  Alcotest.(check bool) "failed device refuses writes" false
    (Blockdev.Mem_device.write_block d 0 Block.zero);
  Blockdev.Mem_device.revive d;
  match Blockdev.Mem_device.read_block d 0 with
  | Some b -> Alcotest.(check bool) "data survives" true (Block.equal b (Block.of_string "kept"))
  | None -> Alcotest.fail "revive failed"

let test_mem_device_bitrot_is_fatal () =
  let d = Blockdev.Mem_device.create ~capacity:4 in
  ignore (Blockdev.Mem_device.write_block d 2 (Block.of_string "precious"));
  Blockdev.Mem_device.inject_bitrot d 2;
  Alcotest.(check bool) "checksum broken" false (Blockdev.Mem_device.checksum_ok d 2);
  (* One disk, one copy: a rotten sector is a failed read, not a repair. *)
  Alcotest.(check bool) "rotten sector unreadable" true (Blockdev.Mem_device.read_block d 2 = None);
  Alcotest.(check bool) "other blocks unaffected" true (Blockdev.Mem_device.read_block d 0 <> None);
  Alcotest.(check int) "no peer, no repair" 0
    (Blockdev.Mem_device.storage_counters d).Blockdev.Durable_store.repaired_blocks;
  (* A fresh write supersedes the rot. *)
  ignore (Blockdev.Mem_device.write_block d 2 (Block.of_string "rewritten"));
  Alcotest.(check bool) "rewrite heals" true (Blockdev.Mem_device.read_block d 2 <> None)

let test_mem_device_torn_write_scrubbed () =
  let d = Blockdev.Mem_device.create ~capacity:4 in
  ignore (Blockdev.Mem_device.write_block d 1 (Block.of_string "acked"));
  Blockdev.Mem_device.arm_torn_write d;
  Blockdev.Mem_device.fail d (* the crash fires the armed tear *);
  Blockdev.Mem_device.revive d (* power-on scrub replays the journal *);
  (match Blockdev.Mem_device.read_block d 1 with
  | Some b ->
      Alcotest.(check bool) "acknowledged write survives the tear" true
        (Block.equal b (Block.of_string "acked"))
  | None -> Alcotest.fail "torn write not replayed");
  Alcotest.(check int) "tear counted" 1
    (Blockdev.Mem_device.storage_counters d).Blockdev.Durable_store.torn_writes

let test_mem_device_replace_disk () =
  let d = Blockdev.Mem_device.create ~capacity:4 in
  ignore (Blockdev.Mem_device.write_block d 0 (Block.of_string "gone"));
  Blockdev.Mem_device.replace_disk d;
  match Blockdev.Mem_device.read_block d 0 with
  | Some b -> Alcotest.(check bool) "blank medium reads zeroes" true (Block.equal b Block.zero)
  | None -> Alcotest.fail "replaced disk should serve blank blocks"

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let prop_block_roundtrip =
  QCheck.Test.make ~name:"block of_string/to_string round trip (short strings)" ~count:300
    QCheck.(string_of_size (Gen.int_range 0 512))
    (fun s ->
      let b = Block.of_string s in
      String.sub (Block.to_string b) 0 (String.length s) = s)

let prop_stale_blocks_sound =
  QCheck.Test.make ~name:"stale_blocks lists exactly the strictly-newer components" ~count:300
    QCheck.(pair (list_of_size (Gen.return 6) (int_range 0 5)) (list_of_size (Gen.return 6) (int_range 0 5)))
    (fun (xs, ys) ->
      let mine = Vv.create 6 and theirs = Vv.create 6 in
      List.iteri (Vv.set mine) xs;
      List.iteri (Vv.set theirs) ys;
      let stale = Vv.stale_blocks ~mine ~theirs in
      List.for_all (fun k -> Vv.get theirs k > Vv.get mine k) stale
      && List.length stale
         = List.length (List.filteri (fun i x -> List.nth ys i > x) xs))

let prop_transfer_roundtrip_idempotent =
  QCheck.Test.make ~name:"blocks_newer_than/apply_updates round trip converges and is idempotent"
    ~count:200
    QCheck.(
      pair (list_of_size (Gen.return 4) (int_range 0 6)) (list_of_size (Gen.return 4) (int_range 0 6)))
    (fun (xs, ys) ->
      let a = Store.create ~capacity:4 and b = Store.create ~capacity:4 in
      let plant s tag =
        List.iteri (fun k v ->
            if v > 0 then Store.write s k (Block.of_string (Printf.sprintf "%s%d.%d" tag k v)) ~version:v)
      in
      plant a "a" xs;
      plant b "b" ys;
      let updates = Store.blocks_newer_than a (Store.versions b) in
      Store.apply_updates b updates;
      Store.blocks_newer_than a (Store.versions b) = []
      &&
      let snap = Array.init 4 (Store.version b) in
      Store.apply_updates b updates;
      Array.for_all Fun.id (Array.init 4 (fun k -> Store.version b k = snap.(k))))

let prop_apply_updates_monotone =
  QCheck.Test.make ~name:"apply_updates never lowers a version" ~count:200
    QCheck.(list_of_size (Gen.int_range 0 20) (triple (int_range 0 3) (int_range 0 9) printable_string))
    (fun updates ->
      let s = Store.create ~capacity:4 in
      Store.write s 0 Blockdev.Block.zero ~version:4;
      let before = Array.init 4 (Store.version s) in
      Store.apply_updates s (List.map (fun (k, v, d) -> (k, v, Block.of_string d)) updates);
      Array.for_all Fun.id (Array.init 4 (fun k -> Store.version s k >= before.(k))))

let () =
  Alcotest.run "blockdev"
    [
      ( "block",
        [
          Alcotest.test_case "size" `Quick test_block_size;
          Alcotest.test_case "zero" `Quick test_block_zero;
          Alcotest.test_case "roundtrip" `Quick test_block_roundtrip;
          Alcotest.test_case "truncates" `Quick test_block_truncates;
          Alcotest.test_case "get/set" `Quick test_block_get_set;
          Alcotest.test_case "bounds" `Quick test_block_bounds;
          Alcotest.test_case "equality" `Quick test_block_equal;
          Alcotest.test_case "blit" `Quick test_block_blit;
          QCheck_alcotest.to_alcotest prop_block_roundtrip;
        ] );
      ( "version-vector",
        [
          Alcotest.test_case "create" `Quick test_vv_create;
          Alcotest.test_case "bump" `Quick test_vv_bump;
          Alcotest.test_case "stale blocks" `Quick test_vv_stale_blocks;
          Alcotest.test_case "dominance" `Quick test_vv_dominates;
          Alcotest.test_case "max merge" `Quick test_vv_max_merge;
          Alcotest.test_case "length mismatch" `Quick test_vv_length_mismatch;
          Alcotest.test_case "negative rejected" `Quick test_vv_negative_rejected;
          QCheck_alcotest.to_alcotest prop_stale_blocks_sound;
        ] );
      ( "store",
        [
          Alcotest.test_case "initial state" `Quick test_store_initial;
          Alcotest.test_case "write/read" `Quick test_store_write_read;
          Alcotest.test_case "version regression" `Quick test_store_version_regression;
          Alcotest.test_case "idempotent same version" `Quick test_store_idempotent_same_version;
          Alcotest.test_case "versions snapshot" `Quick test_store_versions_snapshot;
          Alcotest.test_case "newer-than and apply" `Quick test_store_newer_than_and_apply;
          Alcotest.test_case "apply ignores stale" `Quick test_store_apply_ignores_stale;
          Alcotest.test_case "transfer round trip idempotent" `Quick
            test_store_transfer_roundtrip_idempotent;
          Alcotest.test_case "blank-disk full transfer" `Quick test_store_blank_disk_full_transfer;
          Alcotest.test_case "equal contents" `Quick test_store_equal_contents;
          QCheck_alcotest.to_alcotest prop_transfer_roundtrip_idempotent;
          QCheck_alcotest.to_alcotest prop_apply_updates_monotone;
        ] );
      ( "mem-device",
        [
          Alcotest.test_case "read/write" `Quick test_mem_device_rw;
          Alcotest.test_case "bounds" `Quick test_mem_device_bounds;
          Alcotest.test_case "fail/revive" `Quick test_mem_device_fail_revive;
          Alcotest.test_case "bitrot is fatal" `Quick test_mem_device_bitrot_is_fatal;
          Alcotest.test_case "torn write scrubbed" `Quick test_mem_device_torn_write_scrubbed;
          Alcotest.test_case "disk replacement" `Quick test_mem_device_replace_disk;
        ] );
    ]
