(* Benchmark harness: regenerates every evaluation artifact of the paper
   and micro-benchmarks the implementation.

   Sections:
     1. Figure 9   availability, 3 copies vs 6 voting copies (model + sim)
     2. Figure 10  availability, 4 copies vs 8 voting copies (model + sim)
     3. Figure 11  multicast traffic per write group (model + sim)
     4. Figure 12  unique-address traffic per write group (model + sim)
     5. Identities A_V(2k)=A_V(2k-1), A_NA(2)=A_V(3), eqs (2)-(4), bound
                   (5), Theorem 4.1, U_V closed form
     6. Ablations  repair-time distribution (Section 4.4 discussion);
                   was-available maintenance policy; lazy vs eager voting
                   recovery
     7. Bechamel   protocol operation latencies, Markov solver, recovery
                   cycles, file-system-on-reliable-device

   Absolute numbers are simulator-dependent; the shapes (who wins, by what
   factor, where the curves sit) are the reproduction targets — see
   EXPERIMENTS.md. *)

let section title =
  Format.printf "@.==================================================================@.";
  Format.printf "%s@." title;
  Format.printf "==================================================================@."

(* Flags: --quick shrinks every simulation horizon / op count to CI-smoke
   size; --json additionally writes machine-readable results (per-section
   wall clock, group-commit amortization, cache hit rates, engine event
   counts) to BENCH_results.json. *)
let quick = Array.exists (( = ) "--quick") Sys.argv
let emit_json = Array.exists (( = ) "--json") Sys.argv

(* --shards N runs the independent-simulation sections (dynamic-voting
   churn, the scaling campaign) on up to N domains via Sim.Shard_engine.
   Results are bit-identical to --shards 1 by construction; only wall
   clock changes. *)
let shards =
  let rec find i =
    if i + 1 >= Array.length Sys.argv then None
    else if Sys.argv.(i) = "--shards" then int_of_string_opt Sys.argv.(i + 1)
    else find (i + 1)
  in
  match find 1 with
  | Some n when n > 0 -> n
  | Some _ -> failwith "bench: --shards must be positive"
  | None -> 1

(* ------------------------------------------------------------------ *)
(* JSON output (hand-rolled: no JSON library in the tree)              *)
(* ------------------------------------------------------------------ *)

module Json = struct
  type t =
    | Obj of (string * t) list
    | Arr of t list
    | Str of string
    | Num of float
    | Int of int
    | Bool of bool
    | Null

  let escape s =
    let buf = Buffer.create (String.length s) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  let rec emit buf indent = function
    | Str s -> Buffer.add_string buf (Printf.sprintf "\"%s\"" (escape s))
    | Num f ->
        (* JSON has no NaN/inf; the hit rate before any read is NaN. *)
        if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.6g" f)
        else Buffer.add_string buf "null"
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Bool b -> Buffer.add_string buf (string_of_bool b)
    | Null -> Buffer.add_string buf "null"
    | Arr [] -> Buffer.add_string buf "[]"
    | Arr items ->
        let pad = String.make (indent + 2) ' ' in
        Buffer.add_string buf "[\n";
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_string buf ",\n";
            Buffer.add_string buf pad;
            emit buf (indent + 2) item)
          items;
        Buffer.add_string buf ("\n" ^ String.make indent ' ' ^ "]")
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
        let pad = String.make (indent + 2) ' ' in
        Buffer.add_string buf "{\n";
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_string buf ",\n";
            Buffer.add_string buf (Printf.sprintf "%s\"%s\": " pad (escape k));
            emit buf (indent + 2) v)
          fields;
        Buffer.add_string buf ("\n" ^ String.make indent ' ' ^ "}")

  let to_string t =
    let buf = Buffer.create 4096 in
    emit buf 0 t;
    Buffer.add_char buf '\n';
    Buffer.contents buf
end

let section_times : (string * float) list ref = ref []

let timed name f =
  let t0 = Unix.gettimeofday () in
  f ();
  section_times := (name, Unix.gettimeofday () -. t0) :: !section_times

(* ------------------------------------------------------------------ *)
(* 1-4: figures                                                        *)
(* ------------------------------------------------------------------ *)

let sim_horizon = if quick then 500.0 else 20_000.0
let ablation_horizon = if quick then 500.0 else 20_000.0
let extension_horizon = if quick then 500.0 else 10_000.0

let figures () =
  section "Figure 9: availability, 3 copies (voting: 6 copies), rho in [0, 0.20]";
  Format.printf "%a@."
    (fun ppf -> Report.Figures.print_availability ppf ~title:"")
    (Report.Figures.figure_9_10 ~n_copies:3 ~simulate:true ~sim_horizon ());
  section "Figure 10: availability, 4 copies (voting: 8 copies), rho in [0, 0.20]";
  Format.printf "%a@."
    (fun ppf -> Report.Figures.print_availability ppf ~title:"")
    (Report.Figures.figure_9_10 ~n_copies:4 ~simulate:true ~sim_horizon ());
  section "Figure 11: multicast transmissions per (1 write + x reads), rho = 0.05";
  Format.printf "%a@."
    (fun ppf -> Report.Figures.print_traffic ppf ~title:"(sim columns measured at x = 2)")
    (Report.Figures.figure_11 ~simulate:true ());
  section "Figure 12: unique-address transmissions per (1 write + x reads), rho = 0.05";
  Format.printf "%a@."
    (fun ppf -> Report.Figures.print_traffic ppf ~title:"(sim columns measured at x = 2)")
    (Report.Figures.figure_12 ~simulate:true ())

let identities () =
  section "Section 4/5 identities and theorems";
  Format.printf "%a@." Report.Figures.print_identities (Report.Figures.identity_checks ())

(* ------------------------------------------------------------------ *)
(* 6: ablations                                                        *)
(* ------------------------------------------------------------------ *)

(* Section 4.4: with repair-time coefficient of variation < 1 sites tend to
   recover in failure order, so conventional AC loses its edge over naive
   AC after total failures.  Compare both schemes under exponential and
   Erlang-4 repairs at aggressive rho where total failures actually occur. *)
let ablation_repair_distribution () =
  section "Ablation (Section 4.4): repair-time distribution, AC vs NAC, n = 3";
  Format.printf "%8s %12s %12s %12s %12s@." "rho" "AC/exp" "NAC/exp" "AC/erlang4" "NAC/erlang4";
  List.iter
    (fun rho ->
      let measure scheme repair =
        let config =
          Blockrep.Config.make_exn ~scheme ~n_sites:3 ~n_blocks:4
            ~latency:(Util.Dist.Constant 0.001) ~track_liveness:true ~seed:5 ()
        in
        let cluster = Blockrep.Cluster.create config in
        let gen =
          Workload.Failure_gen.attach_dist cluster ~rng:(Util.Prng.create 17)
            ~up_time:(Util.Dist.Exponential rho) ~down_time:repair
        in
        Blockrep.Cluster.run_until cluster ablation_horizon;
        Workload.Failure_gen.stop gen;
        Blockrep.Availability_monitor.availability (Blockrep.Cluster.monitor cluster)
      in
      (* Same mean repair time 1.0 in both cases; only the shape changes. *)
      let exp_d = Util.Dist.Exponential 1.0 in
      let erl_d = Util.Dist.Erlang (4, 4.0) in
      Format.printf "%8.2f %12.5f %12.5f %12.5f %12.5f@." rho
        (measure Blockrep.Types.Available_copy exp_d)
        (measure Blockrep.Types.Naive_available_copy exp_d)
        (measure Blockrep.Types.Available_copy erl_d)
        (measure Blockrep.Types.Naive_available_copy erl_d))
    [ 0.2; 0.5; 1.0 ]

(* Was-available maintenance: the paper's protocol refreshes W only on
   writes and repairs; the idealised variant tracks liveness.  The idealised
   one matches the chain; the write-driven one approaches it as the write
   rate grows past the failure rate. *)
let ablation_w_maintenance () =
  section "Ablation (Section 3.2): W-set maintenance policy, AC, n = 3, rho = 0.2";
  let rho = 0.2 in
  let chain = Markov.Chains.ac_availability ~n:3 ~rho in
  let nac_chain = Markov.Chains.nac_availability ~n:3 ~rho in
  Format.printf "Figure 7 chain (idealised AC): %.5f    Figure 8 chain (NAC): %.5f@." chain nac_chain;
  let measure ~track_liveness ~write_rate =
    let config =
      Blockrep.Config.make_exn ~scheme:Blockrep.Types.Available_copy ~n_sites:3 ~n_blocks:4
        ~latency:(Util.Dist.Constant 0.001) ~track_liveness ~seed:23 ()
    in
    let cluster = Blockrep.Cluster.create config in
    let gen = Workload.Failure_gen.attach cluster ~rng:(Util.Prng.create 29) ~lambda:rho ~mu:1.0 in
    (if write_rate > 0.0 then begin
       let access =
         Workload.Access_gen.create ~rng:(Util.Prng.create 31) ~n_blocks:4 ~reads_per_write:0.0 ()
       in
       ignore
         (Workload.Runner.run_open_loop cluster access ~site:0 ~rate:write_rate ~horizon:ablation_horizon
           : Workload.Runner.results)
     end);
    Blockrep.Cluster.run_until cluster ablation_horizon;
    Workload.Failure_gen.stop gen;
    Blockrep.Availability_monitor.availability (Blockrep.Cluster.monitor cluster)
  in
  Format.printf "idealised (track liveness)      : %.5f@." (measure ~track_liveness:true ~write_rate:0.0);
  List.iter
    (fun rate ->
      Format.printf "write-driven W, write rate %5.1f : %.5f@." rate
        (measure ~track_liveness:false ~write_rate:rate))
    [ 0.0; 1.0; 10.0 ]

(* Lazy (the paper's block-level refinement) vs eager voting recovery:
   after a failure window with w writes over b blocks, eager recovery
   transfers every stale block at repair time; lazy recovery pays one
   request+transfer only when a stale block is actually read. *)
let ablation_lazy_recovery () =
  section "Ablation (Section 3.1): lazy vs eager recovery under voting, n = 3";
  Format.printf "%18s %14s %18s %14s@." "writes while down" "stale blocks" "eager transfers"
    "lazy transfers";
  List.iter
    (fun (writes, reads_after) ->
      let config =
        Blockrep.Config.make_exn ~scheme:Blockrep.Types.Voting ~n_sites:3 ~n_blocks:64 ~seed:47 ()
      in
      let cluster = Blockrep.Cluster.create config in
      let rng = Util.Prng.create 53 in
      Blockrep.Cluster.fail_site cluster 2;
      for i = 1 to writes do
        ignore
          (Blockrep.Cluster.write_sync cluster ~site:0 ~block:(Util.Prng.int rng 64)
             (Blockdev.Block.of_string (Printf.sprintf "w%d" i))
            : Blockrep.Types.write_result)
      done;
      Blockrep.Cluster.repair_site cluster 2;
      Blockrep.Cluster.run_until cluster (Sim.Engine.now (Blockrep.Cluster.engine cluster) +. 10.0);
      (* Stale blocks at repair = what eager recovery would transfer. *)
      let versions_repaired = Blockrep.Cluster.site_versions cluster 2 in
      let versions_current = Blockrep.Cluster.site_versions cluster 0 in
      let stale =
        List.length
          (Blockdev.Version_vector.stale_blocks ~mine:versions_repaired ~theirs:versions_current)
      in
      let before =
        Net.Traffic.by_category (Blockrep.Cluster.traffic cluster) Net.Message.Block_transfer
      in
      for _ = 1 to reads_after do
        ignore
          (Blockrep.Cluster.read_sync cluster ~site:2 ~block:(Util.Prng.int rng 64)
            : Blockrep.Types.read_result)
      done;
      let after =
        Net.Traffic.by_category (Blockrep.Cluster.traffic cluster) Net.Message.Block_transfer
      in
      Format.printf "%18d %14d %18d %14d@." writes stale (2 * stale) (after - before))
    [ (8, 16); (32, 16); (128, 16) ]

(* Reliability companion metrics: the introduction motivates replication by
   availability AND reliability; report MTTF (mean time to first service
   interruption, all sites initially up) for each scheme and copy count. *)
let reliability_table () =
  section "Reliability: mean time to first service interruption (mu = 1, rho = 0.05)";
  let rho = 0.05 in
  Format.printf "%3s %16s %16s %16s@." "n" "voting" "available-copy" "naive-ac";
  (* Odd n only: the site-count chain cannot express the even-n
     tie-breaking weight, which matters for first-passage times (it does
     not for steady-state availability). *)
  List.iter
    (fun n ->
      let voting =
        let chain = Markov.Chains.voting_chain ~n ~rho in
        let initial = Array.init (n + 1) (fun k -> if k = n then 1.0 else 0.0) in
        Markov.Transient.mean_time_to_failure chain ~initial ~operational:(fun k -> 2 * k > n)
      in
      let copy build =
        let chain = build ~n ~rho in
        let initial = Array.init (2 * n) (fun s -> if s = n - 1 then 1.0 else 0.0) in
        Markov.Transient.mean_time_to_failure chain ~initial ~operational:(fun s -> s < n)
      in
      Format.printf "%3d %16.1f %16.1f %16.1f@." n voting
        (copy Markov.Chains.ac_chain)
        (copy Markov.Chains.nac_chain))
    [ 3; 5; 7 ];
  (* MTTF is about the first interruption, so AC and NAC coincide: they
     differ only in how they come back. *)
  Format.printf "(AC and NAC agree by construction: they differ only after the first outage)@."

(* Operation latency in virtual time (one-hop latency 0.5): copy-scheme
   reads are local and immediate, NAC writes are fire-and-forget, while
   voting pays a vote round trip on every operation — the responsiveness
   side of the Section 5 comparison. *)
let latency_table () =
  section "Operation latency (virtual time units; one-hop latency = 0.5)";
  Format.printf "%-22s %12s %12s@." "scheme" "read" "write";
  List.iter
    (fun scheme ->
      let c =
        Blockrep.Cluster.create
          (Blockrep.Config.make_exn ~scheme ~n_sites:5 ~n_blocks:16
             ~latency:(Util.Dist.Constant 0.5) ~seed:71 ())
      in
      let gen =
        Workload.Access_gen.create ~rng:(Util.Prng.create 73) ~n_blocks:16 ~reads_per_write:2.5 ()
      in
      let r = Workload.Runner.run_closed_loop c gen ~site:0 ~ops:500 in
      Format.printf "%-22s %12.3f %12.3f@."
        (Blockrep.Types.scheme_to_string scheme)
        (Workload.Runner.mean_read_latency r)
        (Workload.Runner.mean_write_latency r))
    Blockrep.Types.all_schemes;
  (* The durable layer's journal commits are sync-write points; charging
     them the Mingardi-Vieira device-class latencies shows how much of
     the write path a real fsync would dominate at each class. *)
  Format.printf
    "@.mean write latency by journal sync profile (fsync charged per commit, simulated ms)@.";
  Format.printf "%-22s %12s %12s %12s %12s@." "scheme" "none" "hdd" "ssd" "nvme";
  List.iter
    (fun scheme ->
      let write_latency sync_profile =
        let c =
          Blockrep.Cluster.create
            (Blockrep.Config.make_exn ~scheme ~n_sites:5 ~n_blocks:16
               ~latency:(Util.Dist.Constant 0.5) ?sync_profile ~seed:71 ())
        in
        let gen =
          Workload.Access_gen.create ~rng:(Util.Prng.create 73) ~n_blocks:16 ~reads_per_write:2.5 ()
        in
        let r =
          Workload.Runner.run_closed_loop c gen ~site:0 ~ops:(if quick then 100 else 500)
        in
        Workload.Runner.mean_write_latency r
      in
      Format.printf "%-22s %12.3f %12.3f %12.3f %12.3f@."
        (Blockrep.Types.scheme_to_string scheme)
        (write_latency None)
        (write_latency (Some Blockdev.Sync_cost.Hdd))
        (write_latency (Some Blockdev.Sync_cost.Ssd))
        (write_latency (Some Blockdev.Sync_cost.Nvme)))
    Blockrep.Types.all_schemes

(* Extension (the paper's reference [10] family): voting with witnesses —
   replicas that vote and version but store no data.  Compare availability
   (model + protocol simulation with a background write stream keeping
   repaired data sites current) and storage cost against full replication. *)
let extension_witnesses () =
  section "Extension: weighted voting with witnesses (cf. reference [10]), rho = 0.1";
  let rho = 0.1 in
  Format.printf "%14s %12s %12s %14s@." "configuration" "model" "simulated" "storage-blocks";
  let simulate ~data ~witnesses =
    let n = data + witnesses in
    let config =
      Blockrep.Config.make_exn ~scheme:Blockrep.Types.Voting ~n_sites:n ~n_blocks:2
        ~witnesses:(List.init witnesses (fun i -> data + i))
        ~latency:(Util.Dist.Constant 0.001) ~seed:59 ()
    in
    let cluster = Blockrep.Cluster.create config in
    let gen = Workload.Failure_gen.attach cluster ~rng:(Util.Prng.create 61) ~lambda:rho ~mu:1.0 in
    let access =
      Workload.Access_gen.create ~rng:(Util.Prng.create 67) ~n_blocks:2 ~reads_per_write:0.5 ()
    in
    ignore
      (Workload.Runner.run_open_loop cluster access ~site:0 ~rate:20.0 ~horizon:extension_horizon
        : Workload.Runner.results);
    Workload.Failure_gen.stop gen;
    Blockrep.Availability_monitor.availability (Blockrep.Cluster.monitor cluster)
  in
  List.iter
    (fun (data, witnesses) ->
      let model = Analysis.Witness_model.majority_availability ~data ~witnesses ~rho in
      let sim = simulate ~data ~witnesses in
      let _, storage = Analysis.Witness_model.storage_blocks ~data ~witnesses ~n_blocks:64 in
      Format.printf "%8dd + %dw %12.5f %12.5f %14d@." data witnesses model sim storage)
    [ (3, 0); (2, 1); (1, 2); (5, 0); (3, 2) ]

(* Extension: dynamic voting (the reference [10] line) — quorums follow the
   last update group, so with writes interleaved, service survives failure
   sequences far deeper than static majority voting.  Measure how many
   sequential failures each scheme survives (writes between failures), and
   availability under Poisson churn with a background write stream. *)
let extension_dynamic_voting () =
  section "Extension: dynamic voting vs static voting, 5 sites";
  let survivable scheme =
    let c =
      Blockrep.Cluster.create
        (Blockrep.Config.make_exn ~scheme ~n_sites:5 ~n_blocks:2 ~seed:83 ())
    in
    let settle () =
      Blockrep.Cluster.run_until c (Sim.Engine.now (Blockrep.Cluster.engine c) +. 20.0)
    in
    let rec kill i =
      if i >= 4 then 4
      else begin
        Blockrep.Cluster.fail_site c (4 - i);
        match
          Blockrep.Cluster.write_sync c ~site:0 ~block:0
            (Blockdev.Block.of_string (Printf.sprintf "k%d" i))
        with
        | Ok _ ->
            settle ();
            kill (i + 1)
        | Error _ -> i
      end
    in
    kill 0
  in
  Format.printf "sequential failures survived (writes interleaved): static=%d dynamic=%d@."
    (survivable Blockrep.Types.Voting)
    (survivable Blockrep.Types.Dynamic_voting);
  let churn (scheme, rho) =
    let c =
      Blockrep.Cluster.create
        (Blockrep.Config.make_exn ~scheme ~n_sites:5 ~n_blocks:2
           ~latency:(Util.Dist.Constant 0.01) ~seed:89 ())
    in
    let gen = Workload.Failure_gen.attach c ~rng:(Util.Prng.create 97) ~lambda:rho ~mu:1.0 in
    let writes =
      Workload.Access_gen.create ~rng:(Util.Prng.create 101) ~n_blocks:2 ~reads_per_write:0.0 ()
    in
    ignore
      (Workload.Runner.run_open_loop c writes ~site:0 ~rate:20.0 ~horizon:extension_horizon
        : Workload.Runner.results);
    Workload.Failure_gen.stop gen;
    Blockrep.Availability_monitor.availability (Blockrep.Cluster.monitor c)
  in
  (* Every (scheme, rho) cell is a self-contained simulation, so the six
     cells shard across domains; the row layout below reassembles them
     from the order-preserving result list. *)
  let rhos = [ 0.1; 0.3; 0.5 ] in
  let cells =
    List.concat_map
      (fun rho -> [ (Blockrep.Types.Voting, rho); (Blockrep.Types.Dynamic_voting, rho) ])
      rhos
  in
  let avail = Sim.Shard_engine.map_list ~shards cells churn in
  Format.printf "%8s %12s %12s %12s@." "rho" "static-sim" "dynamic-sim" "A_V(5) chain";
  List.iteri
    (fun i rho ->
      match (List.nth_opt avail (2 * i), List.nth_opt avail ((2 * i) + 1)) with
      | Some static_a, Some dynamic_a ->
          Format.printf "%8.2f %12.5f %12.5f %12.5f@." rho static_a dynamic_a
            (Markov.Chains.voting_availability ~n:5 ~rho)
      | _ -> ())
    rhos;
  Format.printf
    "(dynamic wins at realistic rho and survives deeper failure sequences; at extreme churn@.";
  Format.printf
    " its groups get trapped at pairs — the known pathology later work fixes with tie-breakers)@."

(* Section 5's size remark: "while it is possible to instead focus on the
   sizes of the messages ... the differences are similar ... though
   slightly less pronounced".  Compare the voting/NAC ratio measured in
   transmissions against the one measured in payload bytes. *)
let size_based_comparison () =
  section "Section 5 remark: message-count vs byte-count comparison (x = 2, multicast)";
  Format.printf "%3s %12s %12s %12s %14s %14s@." "n" "V/NAC msgs" "V/NAC bytes" "less?" "V/AC msgs"
    "V/AC bytes";
  List.iter
    (fun n ->
      let sample scheme =
        Workload.Experiment.measure_traffic ~scheme ~n_sites:n ~env:Net.Network.Multicast
          ~reads_per_write:2.0
          ~ops:(if quick then 200 else 1500)
          ()
      in
      let v = sample Blockrep.Types.Voting in
      let ac = sample Blockrep.Types.Available_copy in
      let nac = sample Blockrep.Types.Naive_available_copy in
      let msg_ratio_nac = v.messages_per_write_group /. nac.messages_per_write_group in
      let byte_ratio_nac = v.bytes_per_write_group /. nac.bytes_per_write_group in
      let msg_ratio_ac = v.messages_per_write_group /. ac.messages_per_write_group in
      let byte_ratio_ac = v.bytes_per_write_group /. ac.bytes_per_write_group in
      Format.printf "%3d %12.2f %12.2f %12s %14.2f %14.2f@." n msg_ratio_nac byte_ratio_nac
        (if byte_ratio_nac < msg_ratio_nac then "yes" else "no")
        msg_ratio_ac byte_ratio_ac)
    [ 3; 5; 8 ]

(* ------------------------------------------------------------------ *)
(* Group commit: batched-write amortization and the write-back cache   *)
(* ------------------------------------------------------------------ *)

let amortization_rows : Report.Figures.amortization_row list ref = ref []

let amortization () =
  section "Group commit: Write transmissions / bytes / host time per block vs batch size (n = 5, multicast)";
  let rows = Report.Figures.amortization_table ~groups:(if quick then 25 else 100) () in
  amortization_rows := rows;
  Format.printf "%a@."
    (fun ppf ->
      Report.Figures.print_amortization ppf
        ~title:"(per committed block; batch 1 = the unbatched baseline)")
    rows;
  (match
     ( List.find_opt (fun (r : Report.Figures.amortization_row) -> r.batch = 1) rows,
       List.find_opt (fun (r : Report.Figures.amortization_row) -> r.batch = 16) rows )
   with
  | Some b1, Some b16 -> (
      match
        ( List.assoc_opt Blockrep.Types.Voting b1.per_scheme,
          List.assoc_opt Blockrep.Types.Voting b16.per_scheme )
      with
      | Some s1, Some s16 ->
          Format.printf "voting batch-16 amortization: %.2fx fewer Write transmissions per block@."
            (s1.Workload.Experiment.messages_per_block /. s16.Workload.Experiment.messages_per_block)
      | _ -> ())
  | _ -> ())

type cache_run = {
  cache_policy : string;
  cache_hits : int;
  cache_misses : int;
  cache_hit_rate : float;
  cache_write_backs : int;
  cache_blocks_written_back : int;
  cache_events_fired : int;
  cache_write_messages : int;
}

let cache_runs : cache_run list ref = ref []

(* The full stack the tentpole adds: workload -> write-back cache ->
   batched reliable device (voting).  Write-through over the same
   workload is the baseline; the write-back column shows the same
   client work reaching the wire in far fewer Write transmissions. *)
let cache_section () =
  section "Buffer cache over the reliable device: write-through vs write-back (voting, n = 5)";
  let module C = Fs.Buffer_cache.Make_batched (Blockrep.Reliable_device) in
  let run policy tag =
    let device =
      Blockrep.Reliable_device.of_config
        (Blockrep.Config.make_exn ~scheme:Blockrep.Types.Voting ~n_sites:5 ~n_blocks:64
           ~net_mode:Net.Network.Multicast ~seed:131 ())
    in
    let cluster = Blockrep.Reliable_device.cluster device in
    let engine = Blockrep.Cluster.engine cluster in
    let cache =
      C.create ~policy
        ~scheduler:(fun delay k -> ignore (Sim.Engine.schedule engine ~delay k : Sim.Engine.handle))
        ~window:10.0 ~capacity:16 device
    in
    let gen =
      Workload.Access_gen.create ~rng:(Util.Prng.create 137) ~n_blocks:64 ~reads_per_write:3.0 ()
    in
    let ops = if quick then 200 else 2000 in
    for _ = 1 to ops do
      Blockrep.Cluster.run_until cluster (Sim.Engine.now engine +. 0.5);
      match Workload.Access_gen.next gen with
      | Workload.Access_gen.Read block -> ignore (C.read_block cache block : Blockdev.Block.t option)
      | Workload.Access_gen.Write (block, data) -> ignore (C.write_block cache block data : bool)
    done;
    ignore (C.flush cache : bool);
    Blockrep.Cluster.settle cluster;
    let traffic = Blockrep.Cluster.traffic cluster in
    let sample =
      {
        cache_policy = tag;
        cache_hits = C.hits cache;
        cache_misses = C.misses cache;
        cache_hit_rate = C.hit_rate cache;
        cache_write_backs = C.write_backs cache;
        cache_blocks_written_back = C.blocks_written_back cache;
        cache_events_fired = Sim.Engine.events_fired engine;
        cache_write_messages = Net.Traffic.by_operation traffic Net.Message.Write;
      }
    in
    cache_runs := !cache_runs @ [ sample ];
    sample
  in
  let wt = run Fs.Buffer_cache.Write_through "write-through" in
  let wb = run Fs.Buffer_cache.Write_back "write-back" in
  Format.printf "%-14s %8s %8s %9s %11s %11s %12s %12s@." "policy" "hits" "misses" "hit-rate"
    "write-backs" "blks-wrtbk" "write-msgs" "events";
  List.iter
    (fun s ->
      Format.printf "%-14s %8d %8d %9.3f %11d %11d %12d %12d@." s.cache_policy s.cache_hits
        s.cache_misses s.cache_hit_rate s.cache_write_backs s.cache_blocks_written_back
        s.cache_write_messages s.cache_events_fired)
    [ wt; wb ];
  if wb.cache_write_messages > 0 then
    Format.printf "write-back cut Write transmissions by %.2fx for the same client workload@."
      (float_of_int wt.cache_write_messages /. float_of_int wb.cache_write_messages)

(* ------------------------------------------------------------------ *)
(* Storage faults: scrub and peer read-repair cost                      *)
(* ------------------------------------------------------------------ *)

let repair_samples : Workload.Experiment.repair_sample list ref = ref []

(* The marginal wire price of surviving media decay: a closed loop with
   periodic maskable bitrot, then a full readback so every quarantined
   copy is healed from a peer.  Repair cells are zero in a fault-free
   run, so the overhead column is exactly the cost of the fault model. *)
let repair_cost () =
  section "Storage faults: peer read-repair traffic under periodic bitrot (n = 3)";
  let ops = if quick then 120 else 400 in
  let samples =
    List.map
      (fun scheme -> Workload.Experiment.measure_repair_cost ~scheme ~n_sites:3 ~ops ())
      [
        Blockrep.Types.Available_copy;
        Blockrep.Types.Naive_available_copy;
        Blockrep.Types.Voting;
        Blockrep.Types.Dynamic_voting;
      ]
  in
  repair_samples := samples;
  Format.printf "%-22s %6s %7s %9s %8s %12s %12s %10s@." "scheme" "ops" "bitrot" "repaired"
    "replayed" "repair-msgs" "total-msgs" "overhead";
  List.iter
    (fun (s : Workload.Experiment.repair_sample) ->
      Format.printf "%-22s %6d %7d %9d %8d %12d %12d %9.4f@." (Blockrep.Types.scheme_to_string s.scheme) s.ops
        s.bitrot_injected s.repaired_blocks s.scrub_replayed s.repair_messages s.total_messages
        s.repair_overhead)
    samples;
  Format.printf "overhead = Repair transmissions / all transmissions; every injected fault is@.";
  Format.printf "maskable by construction.  Voting schemes mask rot inside the ordinary quorum@.";
  Format.printf "read (Block traffic), so their Repair cells stay zero; available-copy pays with@.";
  Format.printf "explicit Repair messages.  Dynamic voting may leave a copy outside a block's@.";
  Format.printf "current majority group quarantined until the group re-expands (repaired < bitrot)@."

(* ------------------------------------------------------------------ *)
(* Brown-out: goodput and tail latency vs offered load                 *)
(* ------------------------------------------------------------------ *)

(* Each row tags its sample with the offered-load multiple of the
   saturation rate and the gray-slow site, if any. *)
type brownout_row = {
  bo_multiple : float;
  bo_slow : (int * float) option;
  bo_sample : Workload.Experiment.brownout_sample;
}

let brownout_rows : brownout_row list ref = ref []

(* Overload and gray failure: open-loop Poisson arrivals against bounded
   per-site work queues, with the client-side robustness stack (deadlines,
   hedged reads with spillover, breakers, admission) toggled on and off
   over the identical arrival stream.  Past saturation the off flavour
   queues until latency is all queueing delay; the on flavour sheds and
   spills instead.  The 2x comparison is asserted, not just printed: the
   stack must buy both goodput AND tail latency or the bench fails. *)
let brownout_section () =
  section "Brown-out: goodput and p99 vs offered load (available-copy, n = 3, robustness on vs off)";
  let horizon = if quick then 200.0 else 400.0 in
  let sat = Workload.Experiment.saturation_rate () in
  let run ~mult ~robustness ?slow () =
    {
      bo_multiple = mult;
      bo_slow = slow;
      bo_sample =
        Workload.Experiment.measure_brownout ~scheme:Blockrep.Types.Available_copy ~n_sites:3
          ~offered_rate:(mult *. sat) ~robustness ?slow ~horizon ();
    }
  in
  let rows =
    List.concat_map
      (fun mult -> [ run ~mult ~robustness:false (); run ~mult ~robustness:true () ])
      [ 0.5; 1.0; 2.0; 3.0 ]
    @ [
        (* gray failure: the coordinator site serves everything 10x slow *)
        run ~mult:2.0 ~slow:(0, 10.0) ~robustness:false ();
        run ~mult:2.0 ~slow:(0, 10.0) ~robustness:true ();
      ]
  in
  brownout_rows := rows;
  Format.printf "saturation ~ %.1f ops/s at one site under the default service model@." sat;
  Format.printf "%6s %6s %7s %7s %6s %5s %6s %6s %8s %7s %7s %7s %6s %6s@." "load" "slow"
    "robust" "issued" "ok" "t/o" "reject" "shed" "goodput" "p50" "p99" "hedged" "wins" "trips";
  List.iter
    (fun { bo_multiple; bo_slow; bo_sample = s } ->
      Format.printf "%5.1fx %6s %7B %7d %6d %5d %6d %6d %8.2f %7.3f %7.3f %7d %6d %6d@."
        bo_multiple
        (match bo_slow with Some (site, f) -> Printf.sprintf "%d@%gx" site f | None -> "-")
        s.robustness_on s.issued s.succeeded s.timeouts s.rejected s.shed s.goodput s.latency_p50
        s.latency_p99 s.hedged s.hedge_wins s.breaker_trips)
    rows;
  Format.printf "goodput = successful ops per virtual second of the arrival window; latencies@.";
  Format.printf "are successful-op response times.  Robustness on = deadlines + hedged reads@.";
  Format.printf "(with full-queue spillover to a peer) + circuit breakers + admission control.@.";
  List.iter
    (fun { bo_multiple; bo_slow; bo_sample = s } ->
      if not s.conserved then
        failwith
          (Printf.sprintf
             "bench: brown-out counters do not reconcile at %.1fx (slow=%b robust=%b)" bo_multiple
             (bo_slow <> None) s.robustness_on))
    rows;
  let sample ~mult ~slow ~robust =
    List.find
      (fun r -> r.bo_multiple = mult && r.bo_slow <> None = slow && r.bo_sample.robustness_on = robust)
      rows
  in
  List.iter
    (fun (mult, slow) ->
      let off = (sample ~mult ~slow ~robust:false).bo_sample in
      let on = (sample ~mult ~slow ~robust:true).bo_sample in
      if not (on.goodput > off.goodput && on.latency_p99 < off.latency_p99) then
        failwith
          (Printf.sprintf
             "bench: robustness stack not strictly better at %.1fx saturation (slow=%b): goodput \
              %.3f vs %.3f, p99 %.3f vs %.3f"
             mult slow on.goodput off.goodput on.latency_p99 off.latency_p99))
    [ (2.0, false); (3.0, false); (2.0, true) ]

(* ------------------------------------------------------------------ *)
(* Wire corruption: goodput, tail latency and hot-path overhead        *)
(* ------------------------------------------------------------------ *)

type corruption_row = {
  co_rate : float;  (* ambient per-frame corruption rate *)
  co_encoded : bool;
  co_issued : int;
  co_ok : int;
  co_failed : int;
  co_violations : int;  (* read-your-write check failures *)
  co_goodput : float;  (* successful ops per virtual second *)
  co_p50 : float;
  co_p99 : float;
  co_wall_ns : float;  (* wall-clock ns per op, whole stack *)
  co_corrupted : int;
  co_rejected : int;
  co_quarantined : int;
  co_retx : int;
  co_conserved : bool;
}

let corruption_rows : corruption_row list ref = ref []

(* Closed-loop write/read pairs on a voting cluster whose frames cross
   the network encoded, with ambient byte damage at 0 / 0.1% / 1% per
   frame (spread over the injector's five kinds).  Every read of a block
   this client just wrote is model-checked against the written payload —
   a decoder that ever let a damaged frame through as a different valid
   payload would show up here as a violation.  The rate-0 encoded row
   against the in-heap baseline row isolates the encode+decode hot-path
   cost; the damaged rows price the redelivery traffic.  All gates are
   asserted, not just printed. *)
let corruption_section () =
  section "Wire corruption: goodput and p99 vs frame-corruption rate (voting, n = 3, encoded)";
  let pairs = if quick then 300 else 1200 in
  let n_blocks = 16 in
  let run ~encoded ~rate =
    let corruption =
      {
        Net.Faults.bit_flip = 0.6 *. rate;
        truncate = 0.1 *. rate;
        garbage_prefix = 0.1 *. rate;
        garbage_suffix = 0.1 *. rate;
        splice = 0.1 *. rate;
      }
    in
    let config =
      Blockrep.Config.make_exn ~scheme:Blockrep.Types.Voting ~n_sites:3 ~n_blocks ~seed:4242
        ~fault_profile:(Net.Faults.make_exn ~corruption ())
        ~encoded_delivery:encoded ()
    in
    let device = Blockrep.Reliable_device.of_config config in
    let engine = Blockrep.Cluster.engine (Blockrep.Reliable_device.cluster device) in
    let latencies = Array.make (2 * pairs) 0.0 in
    let ok = ref 0 and failed = ref 0 and violations = ref 0 in
    let wall0 = Unix.gettimeofday () in
    let t0 = Sim.Engine.now engine in
    for i = 0 to pairs - 1 do
      let block = i mod n_blocks in
      let tag = Printf.sprintf "co%06d" i in
      let t_w = Sim.Engine.now engine in
      let wrote = Blockrep.Reliable_device.write_block device block (Blockdev.Block.of_string tag) in
      latencies.(2 * i) <- Sim.Engine.now engine -. t_w;
      if wrote then incr ok else incr failed;
      let t_r = Sim.Engine.now engine in
      (match Blockrep.Reliable_device.read_block device block with
      | Some b ->
          incr ok;
          if wrote && String.sub (Blockdev.Block.to_string b) 0 (String.length tag) <> tag then
            incr violations
      | None -> incr failed);
      latencies.(2 * i + 1) <- Sim.Engine.now engine -. t_r
    done;
    let wall_ns = (Unix.gettimeofday () -. wall0) *. 1e9 /. float_of_int (2 * pairs) in
    let span = Sim.Engine.now engine -. t0 in
    Array.sort compare latencies;
    let quantile q = latencies.(min (Array.length latencies - 1) (int_of_float (q *. float_of_int (Array.length latencies)))) in
    let deg = Blockrep.Reliable_device.degradation device in
    {
      co_rate = rate;
      co_encoded = encoded;
      co_issued = 2 * pairs;
      co_ok = !ok;
      co_failed = !failed;
      co_violations = !violations;
      co_goodput = (if span > 0.0 then float_of_int !ok /. span else 0.0);
      co_p50 = quantile 0.5;
      co_p99 = quantile 0.99;
      co_wall_ns = wall_ns;
      co_corrupted = deg.Blockrep.Reliable_device.corrupted_deliveries;
      co_rejected = deg.Blockrep.Reliable_device.frames_rejected;
      co_quarantined = deg.Blockrep.Reliable_device.frames_quarantined;
      co_retx = deg.Blockrep.Reliable_device.frames_retransmitted;
      co_conserved =
        Blockrep.Reliable_device.wire_conserved deg
        && Blockrep.Reliable_device.degradation_conserved deg;
    }
  in
  let rows =
    run ~encoded:false ~rate:0.0
    :: List.map (fun rate -> run ~encoded:true ~rate) [ 0.0; 0.001; 0.01 ]
  in
  corruption_rows := rows;
  Format.printf "%7s %8s %6s %6s %5s %8s %7s %7s %10s %9s %6s %6s %5s@." "rate" "encoded"
    "issued" "ok" "viol" "goodput" "p50" "p99" "wall-ns/op" "corrupted" "frej" "retx" "cons";
  List.iter
    (fun r ->
      Format.printf "%7.4f %8B %6d %6d %5d %8.2f %7.3f %7.3f %10.0f %9d %6d %6d %5B@." r.co_rate
        r.co_encoded r.co_issued r.co_ok r.co_violations r.co_goodput r.co_p50 r.co_p99 r.co_wall_ns
        r.co_corrupted r.co_rejected r.co_retx r.co_conserved)
    rows;
  (match rows with
  | baseline :: encoded_clean :: _ ->
      Format.printf
        "hot path: encoded delivery at rate 0 costs %.0f ns/op wall vs %.0f in-heap (%.2fx); \
         virtual goodput identical by construction@."
        encoded_clean.co_wall_ns baseline.co_wall_ns
        (if baseline.co_wall_ns > 0.0 then encoded_clean.co_wall_ns /. baseline.co_wall_ns else 0.0)
  | _ -> ());
  Format.printf "goodput = successful ops per virtual second; p50/p99 are per-op virtual response@.";
  Format.printf "times; wall-ns/op is real time for the whole simulated stack.  corrupted frames@.";
  Format.printf "are rejected at ingress and redelivered from the sender's pristine copy.@.";
  (* Gates: the corruption section is load-bearing, not illustrative. *)
  List.iter
    (fun r ->
      if r.co_violations > 0 then
        failwith
          (Printf.sprintf "bench: %d one-copy violation(s) under %.4f corruption" r.co_violations
             r.co_rate);
      if not r.co_conserved then
        failwith (Printf.sprintf "bench: wire counters not conserved at rate %.4f" r.co_rate);
      if not (Float.is_finite r.co_wall_ns && r.co_wall_ns > 0.0) then
        failwith (Printf.sprintf "bench: non-finite wall timing at rate %.4f" r.co_rate);
      if not (Float.is_finite r.co_p99 && r.co_p99 >= r.co_p50 && r.co_p50 > 0.0) then
        failwith (Printf.sprintf "bench: degenerate latency quantiles at rate %.4f" r.co_rate);
      if r.co_rate > 0.0 && not (r.co_corrupted > 0 && r.co_rejected > 0 && r.co_retx > 0) then
        failwith
          (Printf.sprintf
             "bench: corruption at rate %.4f injected nothing (corrupted=%d rejected=%d retx=%d)"
             r.co_rate r.co_corrupted r.co_rejected r.co_retx);
      if r.co_rate = 0.0 && r.co_rejected > 0 then
        failwith "bench: frames rejected without any injected corruption")
    rows

(* ------------------------------------------------------------------ *)
(* Sharded scaling: the multicore block campaign                       *)
(* ------------------------------------------------------------------ *)

type scaling_run = {
  scaling_shards : int;
  scaling_lanes : int;
  scaling_parallel : bool;
  scaling_wall_s : float;
  scaling_identical : bool;
  scaling_ops_ok : int;
  scaling_messages : int;
}

let scaling_runs : scaling_run list ref = ref []

let same_campaign (a : Workload.Experiment.campaign_sample) (b : Workload.Experiment.campaign_sample)
    =
  let same_hist x y =
    let cx = Util.Stats.Histogram.counts x and cy = Util.Stats.Histogram.counts y in
    Array.length cx = Array.length cy
    && (let ok = ref true in
        Array.iteri (fun i c -> if c <> cy.(i) then ok := false) cx;
        !ok)
    && Util.Stats.Histogram.total x = Util.Stats.Histogram.total y
    && Util.Stats.Histogram.underflow x = Util.Stats.Histogram.underflow y
    && Util.Stats.Histogram.overflow x = Util.Stats.Histogram.overflow y
  in
  a.issued = b.issued && a.read_ok = b.read_ok && a.read_failed = b.read_failed
  && a.write_ok = b.write_ok && a.write_failed = b.write_failed
  && a.total_messages = b.total_messages && a.total_bytes = b.total_bytes
  && same_hist a.latency_hist b.latency_hist

(* The headline tentpole measurement: one dynamic-voting campaign over a
   large block space, run at --shards 1 and at the requested width.  The
   merged counters/traffic/histograms must match bit-for-bit; only the
   wall clock is allowed to move. *)
let scaling_section () =
  section (Printf.sprintf "Sharded scaling: dynamic-voting block campaign (--shards %d)" shards);
  let n_blocks = if quick then 4_096 else 1_000_000 in
  let groups = if quick then 8 else 32 in
  let ops_per_group = if quick then 40 else 250 in
  let campaign s =
    Workload.Experiment.measure_campaign ~scheme:Blockrep.Types.Dynamic_voting ~n_sites:5 ~n_blocks
      ~shards:s ~groups ~ops_per_group ()
  in
  let shard_counts = if shards = 1 then [ 1 ] else [ 1; shards ] in
  let samples = List.map campaign shard_counts in
  (match samples with
  | [] -> ()
  | base :: _ ->
      scaling_runs :=
        List.map
          (fun (c : Workload.Experiment.campaign_sample) ->
            {
              scaling_shards = c.shards;
              scaling_lanes = c.lanes_used;
              scaling_parallel = c.parallel;
              scaling_wall_s = c.wall_clock;
              scaling_identical = same_campaign base c;
              scaling_ops_ok = c.read_ok + c.write_ok;
              scaling_messages = c.total_messages;
            })
          samples;
      Format.printf "campaign: %d blocks in %d groups, %d ops/group, n = 5, dynamic voting@."
        n_blocks groups ops_per_group;
      Format.printf "%8s %6s %9s %10s %10s %12s %10s %10s@." "shards" "lanes" "parallel" "wall(s)"
        "speedup" "ops-ok" "messages" "identical";
      List.iter
        (fun r ->
          Format.printf "%8d %6d %9B %10.3f %9.2fx %12d %10d %10s@." r.scaling_shards
            r.scaling_lanes r.scaling_parallel r.scaling_wall_s
            (match !scaling_runs with
            | b :: _ when r.scaling_wall_s > 0.0 -> b.scaling_wall_s /. r.scaling_wall_s
            | _ -> 1.0)
            r.scaling_ops_ok r.scaling_messages
            (if r.scaling_identical then "yes" else "NO"))
        !scaling_runs;
      if not (List.for_all (fun r -> r.scaling_identical) !scaling_runs) then
        failwith "bench: sharded campaign diverged from --shards 1 — determinism bug");
  Format.printf "(domains available: %B; runtime recommends %d)@."
    Sim.Domains_compat.parallel_available
    (Sim.Domains_compat.recommended_domains ())

(* ------------------------------------------------------------------ *)
(* Codec: frame encode/decode cost and bytes on the wire               *)
(* ------------------------------------------------------------------ *)

type codec_row = {
  codec_label : string;
  codec_bytes : int;
  codec_encode_ns : float;
  codec_decode_ns : float;
}

let codec_rows : codec_row list ref = ref []
let codec_batch = ref (0, 0) (* (single Block_update frame bytes, Batch_update x16 frame bytes) *)

(* Micro-benchmark the zero-copy frame codec directly: ns/op to encode
   and decode one representative message per wire category, the exact
   frame size Net.Traffic now charges, and the batching payoff — one
   Batch_update carrying 16 blocks against 16 single-block frames. *)
let codec_section () =
  section "Codec: binary frame encode/decode cost and bytes per block";
  let module W = Blockrep.Wire in
  let set = Blockrep.Types.int_set_of_list in
  let vv l =
    let v = Blockdev.Version_vector.create (List.length l) in
    List.iteri (fun i x -> Blockdev.Version_vector.set v i x) l;
    v
  in
  let info =
    {
      W.origin = 2;
      state = Blockrep.Types.Available;
      versions = vv [ 3; 0; 7; 1 ];
      was_available = set [ 0; 2; 3 ];
    }
  in
  let block c = Blockdev.Block.of_string (String.make 8 c) in
  let writes n = List.init n (fun i -> (i, i + 1, block (Char.chr (Char.code 'a' + (i mod 26))))) in
  let samples =
    [
      ("vote-request", W.Vote_request { rid = 1; block = 5; purpose = Net.Message.Write });
      ("vote-reply", W.Vote_reply { rid = 1; block = 5; version = 9; weight = 2; group_size = 4 });
      ( "block-update",
        W.Block_update
          { rid = Some 2; block = 0; version = 3; data = block 'd'; carried_w = set [ 0; 1; 3 ] } );
      ("write-ack", W.Write_ack { rid = 2; block = 0 });
      ("block-request", W.Block_request { rid = 3; block = 7 });
      ("block-transfer", W.Block_transfer { rid = 3; block = 7; version = 4; data = block 'x' });
      ("recovery-probe", W.Recovery_probe { rid = 4; info });
      ("recovery-reply", W.Recovery_reply { rid = 4; info });
      ("vv-send", W.Vv_send { rid = 5; versions = vv [ 1; 2; 0; 0 ]; w_of_sender = set [ 1 ] });
      ( "vv-reply",
        W.Vv_reply
          {
            rid = 5;
            versions = vv [ 2; 2; 1; 0 ];
            updates = [ (0, 2, block 'a'); (2, 1, block 'b') ];
            w_of_source = set [ 0; 1; 2 ];
          } );
      ("group-fix", W.Group_fix { block = 3; version = 6; group = set [ 0; 2 ] });
      ( "batch-update-16",
        W.Batch_update { rid = Some 7; writes = writes 16; carried_w = set [ 1; 2 ] } );
    ]
  in
  let iters = if quick then 2_000 else 50_000 in
  let ns_per f =
    for _ = 1 to 100 do
      ignore (Sys.opaque_identity (f ()))
    done;
    let t0 = Unix.gettimeofday () in
    for _ = 1 to iters do
      ignore (Sys.opaque_identity (f ()))
    done;
    (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int iters
  in
  let rows =
    List.map
      (fun (label, m) ->
        let encoded = W.encode m in
        (match W.decode encoded with
        | Ok _ -> ()
        | Error e -> failwith ("bench: codec round-trip failed for " ^ label ^ ": " ^ W.decode_error_to_string e));
        {
          codec_label = label;
          codec_bytes = Bytes.length encoded;
          codec_encode_ns = ns_per (fun () -> W.encode m);
          codec_decode_ns = ns_per (fun () -> W.decode encoded);
        })
      samples
  in
  codec_rows := rows;
  let single =
    Bytes.length
      (W.encode
         (W.Block_update
            { rid = Some 1; block = 0; version = 1; data = block 's'; carried_w = set [ 0; 1 ] }))
  in
  let batch16 =
    Bytes.length (W.encode (W.Batch_update { rid = Some 1; writes = writes 16; carried_w = set [ 0; 1 ] }))
  in
  codec_batch := (single, batch16);
  Format.printf "%-18s %8s %14s %14s@." "message" "bytes" "encode ns/op" "decode ns/op";
  List.iter
    (fun r ->
      Format.printf "%-18s %8d %14.1f %14.1f@." r.codec_label r.codec_bytes r.codec_encode_ns
        r.codec_decode_ns)
    rows;
  Format.printf
    "bytes/block: one Block_update frame = %d; one Batch_update x16 frame = %d (%.1f per block, %.2fx the unbatched frames)@."
    single batch16
    (float_of_int batch16 /. 16.0)
    (float_of_int batch16 /. (16.0 *. float_of_int single))

(* ------------------------------------------------------------------ *)
(* JSON results file                                                   *)
(* ------------------------------------------------------------------ *)

let scheme_tag = function
  | Blockrep.Types.Voting -> "voting"
  | Blockrep.Types.Available_copy -> "available-copy"
  | Blockrep.Types.Naive_available_copy -> "naive-available-copy"
  | Blockrep.Types.Dynamic_voting -> "dynamic-voting"

let write_json_results path =
  let amortization =
    List.concat_map
      (fun (row : Report.Figures.amortization_row) ->
        List.map
          (fun (scheme, (s : Workload.Experiment.amortization_sample)) ->
            Json.Obj
              [
                ("scheme", Json.Str (scheme_tag scheme));
                ("batch", Json.Int row.batch);
                ("groups", Json.Int s.groups);
                ("blocks_committed", Json.Int s.blocks_committed);
                ("write_messages", Json.Int s.write_messages);
                ("write_bytes", Json.Int s.write_bytes);
                ("messages_per_block", Json.Num s.messages_per_block);
                ("bytes_per_block", Json.Num s.bytes_per_block);
                ("wall_clock_per_block_us", Json.Num (s.wall_clock_per_block *. 1e6));
              ])
          row.per_scheme)
      !amortization_rows
  in
  let caches =
    List.map
      (fun s ->
        Json.Obj
          [
            ("policy", Json.Str s.cache_policy);
            ("hits", Json.Int s.cache_hits);
            ("misses", Json.Int s.cache_misses);
            ("hit_rate", Json.Num s.cache_hit_rate);
            ("write_backs", Json.Int s.cache_write_backs);
            ("blocks_written_back", Json.Int s.cache_blocks_written_back);
            ("write_messages", Json.Int s.cache_write_messages);
            ("events_fired", Json.Int s.cache_events_fired);
          ])
      !cache_runs
  in
  let traffic =
    List.map
      (fun scheme ->
        let s =
          Workload.Experiment.measure_traffic ~scheme ~n_sites:5 ~env:Net.Network.Multicast
            ~reads_per_write:2.0
            ~ops:(if quick then 200 else 1000)
            ()
        in
        Json.Obj
          [
            ("scheme", Json.Str (scheme_tag scheme));
            ("messages_per_write_group", Json.Num s.messages_per_write_group);
            ("bytes_per_write_group", Json.Num s.bytes_per_write_group);
          ])
      [ Blockrep.Types.Voting; Blockrep.Types.Available_copy; Blockrep.Types.Naive_available_copy ]
  in
  let repair =
    List.map
      (fun (s : Workload.Experiment.repair_sample) ->
        Json.Obj
          [
            ("scheme", Json.Str (scheme_tag s.scheme));
            ("n_sites", Json.Int s.n_sites);
            ("ops", Json.Int s.ops);
            ("bitrot_injected", Json.Int s.bitrot_injected);
            ("repaired_blocks", Json.Int s.repaired_blocks);
            ("scrub_replayed", Json.Int s.scrub_replayed);
            ("repair_messages", Json.Int s.repair_messages);
            ("repair_bytes", Json.Int s.repair_bytes);
            ("total_messages", Json.Int s.total_messages);
            ("repair_overhead", Json.Num s.repair_overhead);
          ])
      !repair_samples
  in
  let brownout =
    List.map
      (fun { bo_multiple; bo_slow; bo_sample = s } ->
        Json.Obj
          [
            ("scheme", Json.Str (scheme_tag s.scheme));
            ("n_sites", Json.Int s.n_sites);
            ("offered_multiple", Json.Num bo_multiple);
            ("offered_rate", Json.Num s.offered_rate);
            ("slow_site", match bo_slow with Some (site, _) -> Json.Int site | None -> Json.Null);
            ("slow_factor", match bo_slow with Some (_, f) -> Json.Num f | None -> Json.Null);
            ("robustness", Json.Bool s.robustness_on);
            ("horizon", Json.Num s.horizon);
            ("issued", Json.Int s.issued);
            ("succeeded", Json.Int s.succeeded);
            ("timeouts", Json.Int s.timeouts);
            ("gave_up", Json.Int s.gave_up);
            ("rejected", Json.Int s.rejected);
            ("shed", Json.Int s.shed);
            ("goodput", Json.Num s.goodput);
            ("latency_p50", Json.Num s.latency_p50);
            ("latency_p99", Json.Num s.latency_p99);
            ("hedged", Json.Int s.hedged);
            ("hedge_wins", Json.Int s.hedge_wins);
            ("breaker_trips", Json.Int s.breaker_trips);
            ("messages_shed", Json.Int s.messages_shed);
            ("conserved", Json.Bool s.conserved);
          ])
      !brownout_rows
  in
  let corruption =
    List.map
      (fun r ->
        Json.Obj
          [
            ("rate", Json.Num r.co_rate);
            ("encoded", Json.Bool r.co_encoded);
            ("issued", Json.Int r.co_issued);
            ("succeeded", Json.Int r.co_ok);
            ("failed", Json.Int r.co_failed);
            ("violations", Json.Int r.co_violations);
            ("goodput", Json.Num r.co_goodput);
            ("latency_p50", Json.Num r.co_p50);
            ("latency_p99", Json.Num r.co_p99);
            ("wall_ns_per_op", Json.Num r.co_wall_ns);
            ("corrupted_deliveries", Json.Int r.co_corrupted);
            ("frames_rejected", Json.Int r.co_rejected);
            ("frames_quarantined", Json.Int r.co_quarantined);
            ("frames_retransmitted", Json.Int r.co_retx);
            ("conserved", Json.Bool r.co_conserved);
          ])
      !corruption_rows
  in
  let sections =
    List.rev_map
      (fun (name, seconds) -> Json.Obj [ ("name", Json.Str name); ("wall_clock_s", Json.Num seconds) ])
      !section_times
  in
  let scaling =
    let base_wall =
      match !scaling_runs with r :: _ -> r.scaling_wall_s | [] -> 0.0
    in
    List.map
      (fun r ->
        Json.Obj
          [
            ("shards", Json.Int r.scaling_shards);
            ("lanes_used", Json.Int r.scaling_lanes);
            ("parallel", Json.Bool r.scaling_parallel);
            ("wall_clock_s", Json.Num r.scaling_wall_s);
            ( "speedup_vs_shards1",
              Json.Num (if r.scaling_wall_s > 0.0 then base_wall /. r.scaling_wall_s else 1.0) );
            ("ops_ok", Json.Int r.scaling_ops_ok);
            ("messages", Json.Int r.scaling_messages);
            ("identical_to_shards1", Json.Bool r.scaling_identical);
          ])
      !scaling_runs
  in
  let codec =
    let single, batch16 = !codec_batch in
    Json.Obj
      [
        ( "messages",
          Json.Arr
            (List.map
               (fun r ->
                 Json.Obj
                   [
                     ("name", Json.Str r.codec_label);
                     ("frame_bytes", Json.Int r.codec_bytes);
                     ("encode_ns_per_op", Json.Num r.codec_encode_ns);
                     ("decode_ns_per_op", Json.Num r.codec_decode_ns);
                   ])
               !codec_rows) );
        ("single_frame_bytes", Json.Int single);
        ("batch16_frame_bytes", Json.Int batch16);
        ("batch16_bytes_per_block", Json.Num (float_of_int batch16 /. 16.0));
      ]
  in
  let doc =
    Json.Obj
      [
        ("generator", Json.Str "bench/main.ml");
        ("quick", Json.Bool quick);
        ("shards", Json.Int shards);
        ("parallel_available", Json.Bool Sim.Domains_compat.parallel_available);
        ("recommended_domains", Json.Int (Sim.Domains_compat.recommended_domains ()));
        ("sections", Json.Arr sections);
        ("codec", codec);
        ("scaling", Json.Arr scaling);
        ("amortization", Json.Arr amortization);
        ("cache", Json.Arr caches);
        ("traffic_per_write_group", Json.Arr traffic);
        ("repair_cost", Json.Arr repair);
        ("brownout", Json.Arr brownout);
        ("corruption", Json.Arr corruption);
      ]
  in
  let oc = open_out path in
  output_string oc (Json.to_string doc);
  close_out oc;
  Format.printf "@.json results written to %s@." path

(* ------------------------------------------------------------------ *)
(* 7: Bechamel micro-benchmarks                                        *)
(* ------------------------------------------------------------------ *)

let make_cluster scheme =
  let config =
    Blockrep.Config.make_exn ~scheme ~n_sites:5 ~n_blocks:64 ~latency:(Util.Dist.Constant 0.01)
      ~seed:3 ()
  in
  Blockrep.Cluster.create config

let op_tests () =
  let payload = Blockdev.Block.of_string "bench payload" in
  let test_rw scheme tag =
    let cluster = make_cluster scheme in
    ignore (Blockrep.Cluster.write_sync cluster ~site:0 ~block:0 payload : Blockrep.Types.write_result);
    let cnt = ref 0 in
    [
      Bechamel.Test.make ~name:(tag ^ "-read")
        (Bechamel.Staged.stage (fun () ->
             ignore (Blockrep.Cluster.read_sync cluster ~site:0 ~block:0 : Blockrep.Types.read_result)));
      Bechamel.Test.make ~name:(tag ^ "-write")
        (Bechamel.Staged.stage (fun () ->
             incr cnt;
             ignore
               (Blockrep.Cluster.write_sync cluster ~site:0 ~block:(!cnt mod 64) payload
                 : Blockrep.Types.write_result)));
    ]
  in
  test_rw Blockrep.Types.Voting "voting"
  @ test_rw Blockrep.Types.Available_copy "ac"
  @ test_rw Blockrep.Types.Naive_available_copy "nac"

let recovery_tests () =
  let test scheme tag =
    let cluster = make_cluster scheme in
    Bechamel.Test.make ~name:(tag ^ "-recovery-cycle")
      (Bechamel.Staged.stage (fun () ->
           Blockrep.Cluster.fail_site cluster 4;
           Blockrep.Cluster.repair_site cluster 4;
           Blockrep.Cluster.run_until cluster (Sim.Engine.now (Blockrep.Cluster.engine cluster) +. 5.0)))
  in
  [
    test Blockrep.Types.Voting "voting";
    test Blockrep.Types.Available_copy "ac";
    test Blockrep.Types.Naive_available_copy "nac";
  ]

let analysis_tests () =
  [
    Bechamel.Test.make ~name:"ctmc-ac-chain-n8"
      (Bechamel.Staged.stage (fun () -> ignore (Markov.Chains.ac_availability ~n:8 ~rho:0.05 : float)));
    Bechamel.Test.make ~name:"nac-closed-form-n8"
      (Bechamel.Staged.stage (fun () -> ignore (Analysis.Nac_model.availability ~n:8 ~rho:0.05 : float)));
    Bechamel.Test.make ~name:"voting-availability-n9"
      (Bechamel.Staged.stage (fun () ->
           ignore (Analysis.Voting_model.availability ~n:9 ~rho:0.05 : float)));
  ]

let fs_tests () =
  let module Rfs = Fs.Flat_fs.Make (Blockrep.Reliable_device) in
  let config =
    Blockrep.Config.make_exn ~scheme:Blockrep.Types.Naive_available_copy ~n_sites:3 ~n_blocks:256
      ~seed:9 ()
  in
  let device = Blockrep.Reliable_device.of_config config in
  let fs = match Rfs.format device with Ok fs -> fs | Error _ -> assert false in
  (match Rfs.create fs "bench" with Ok () -> () | Error _ -> assert false);
  let data = Bytes.make 1024 'x' in
  [
    Bechamel.Test.make ~name:"fs-write-1k-on-reliable-device"
      (Bechamel.Staged.stage (fun () ->
           ignore (Rfs.write fs "bench" data : (unit, Fs.Flat_fs.error) result)));
    Bechamel.Test.make ~name:"fs-read-1k-on-reliable-device"
      (Bechamel.Staged.stage (fun () -> ignore (Rfs.read fs "bench" : (bytes, Fs.Flat_fs.error) result)));
  ]

let run_bechamel tests =
  let open Bechamel in
  let open Toolkit in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~stabilize:false () in
  let test = Test.make_grouped ~name:"blockrep" ~fmt:"%s %s" tests in
  let raw = Benchmark.all cfg instances test in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Format.printf "%-45s %15s@." "benchmark" "ns/op";
  Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  |> List.iter (fun (name, ols) ->
         match Analyze.OLS.estimates ols with
         | Some (value :: _) -> Format.printf "%-45s %15.1f@." name value
         | Some [] | None -> Format.printf "%-45s %15s@." name "n/a")

let () =
  timed "figures" figures;
  timed "identities" identities;
  timed "ablation_repair_distribution" ablation_repair_distribution;
  timed "ablation_w_maintenance" ablation_w_maintenance;
  timed "ablation_lazy_recovery" ablation_lazy_recovery;
  timed "size_based_comparison" size_based_comparison;
  timed "reliability_table" reliability_table;
  timed "latency_table" latency_table;
  timed "extension_witnesses" extension_witnesses;
  timed "extension_dynamic_voting" extension_dynamic_voting;
  timed "codec" codec_section;
  timed "amortization" amortization;
  timed "cache" cache_section;
  timed "repair_cost" repair_cost;
  timed "brownout" brownout_section;
  timed "corruption" corruption_section;
  timed "scaling" scaling_section;
  timed "bechamel" (fun () ->
      section "Bechamel micro-benchmarks (simulated-protocol operation costs)";
      run_bechamel (op_tests () @ recovery_tests () @ analysis_tests () @ fs_tests ()));
  if emit_json then write_json_results "BENCH_results.json";
  Format.printf "@.bench: done@."
