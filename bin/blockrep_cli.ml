(* blockrep: command-line front end to the reproduction.

   Subcommands:
     figure      regenerate one of the paper's figures (9, 10, 11, 12)
     identities  check every analytic identity/theorem of Section 4-5
     availability  one availability measurement (model + chain + simulation)
     traffic     one traffic measurement (model + simulation)
     simulate    free-form cluster run with failures and a workload
     chaos       seeded chaos sweep with a one-copy consistency oracle *)

open Cmdliner

let scheme_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "voting" | "mcv" -> Ok Blockrep.Types.Voting
    | "ac" | "available-copy" -> Ok Blockrep.Types.Available_copy
    | "nac" | "naive" | "naive-available-copy" -> Ok Blockrep.Types.Naive_available_copy
    | "dynamic" | "dynamic-voting" | "dv" -> Ok Blockrep.Types.Dynamic_voting
    | other -> Error (`Msg (Printf.sprintf "unknown scheme %S (voting|ac|nac|dynamic)" other))
  in
  Arg.conv (parse, fun ppf s -> Format.pp_print_string ppf (Blockrep.Types.scheme_to_string s))

let scheme_arg =
  Arg.(
    value
    & opt scheme_conv Blockrep.Types.Naive_available_copy
    & info [ "scheme" ] ~docv:"SCHEME" ~doc:"Consistency scheme: voting, ac or nac.")

let sites_arg =
  Arg.(value & opt int 3 & info [ "sites"; "n" ] ~docv:"N" ~doc:"Number of sites holding copies.")

let rho_arg =
  Arg.(value & opt float 0.05 & info [ "rho" ] ~docv:"RHO" ~doc:"Failure-to-repair rate ratio.")

let simulate_arg =
  Arg.(value & flag & info [ "simulate" ] ~doc:"Add event-driven simulation measurements (slower).")

let horizon_arg =
  Arg.(
    value & opt float 50_000.0
    & info [ "horizon" ] ~docv:"T" ~doc:"Virtual-time horizon for simulations.")

(* ------------------------------------------------------------------ *)

let figure_cmd =
  let which = Arg.(required & pos 0 (some int) None & info [] ~docv:"FIGURE" ~doc:"9, 10, 11 or 12.") in
  let csv_arg =
    Arg.(
      value & opt (some string) None
      & info [ "csv" ] ~docv:"FILE" ~doc:"Also write the series as CSV for external plotting.")
  in
  let maybe_csv csv lines =
    match csv with
    | None -> `Ok ()
    | Some path -> (
        match Report.Csv.write_file path lines with
        | Ok () ->
            Format.printf "(wrote %s)@." path;
            `Ok ()
        | Error msg -> `Error (false, msg))
  in
  let run which simulate horizon csv =
    match which with
    | 9 | 10 ->
        let n_copies = if which = 9 then 3 else 4 in
        let rows = Report.Figures.figure_9_10 ~n_copies ~simulate ~sim_horizon:horizon () in
        Format.printf "%a@."
          (fun ppf ->
            Report.Figures.print_availability ppf
              ~title:
                (Printf.sprintf "Figure %d: %d copies (voting: %d); availability vs rho" which
                   n_copies (2 * n_copies)))
          rows;
        maybe_csv csv (Report.Csv.availability_rows rows)
    | 11 ->
        let rows = Report.Figures.figure_11 ~simulate () in
        Format.printf "%a@."
          (fun ppf ->
            Report.Figures.print_traffic ppf
              ~title:"Figure 11: multicast transmissions per (1 write + x reads), rho=0.05")
          rows;
        maybe_csv csv (Report.Csv.traffic_rows rows)
    | 12 ->
        let rows = Report.Figures.figure_12 ~simulate () in
        Format.printf "%a@."
          (fun ppf ->
            Report.Figures.print_traffic ppf
              ~title:"Figure 12: unique-address transmissions per (1 write + x reads), rho=0.05")
          rows;
        maybe_csv csv (Report.Csv.traffic_rows rows)
    | other -> `Error (false, Printf.sprintf "no figure %d in the paper's evaluation" other)
  in
  Cmd.v
    (Cmd.info "figure" ~doc:"Regenerate one of the paper's evaluation figures.")
    Term.(ret (const run $ which $ simulate_arg $ horizon_arg $ csv_arg))

let identities_cmd =
  let run () =
    let rows = Report.Figures.identity_checks () in
    Format.printf "%a@." Report.Figures.print_identities rows;
    if List.for_all (fun r -> r.Report.Figures.holds) rows then `Ok ()
    else `Error (false, "some identities violated")
  in
  Cmd.v
    (Cmd.info "identities" ~doc:"Check the analytic identities and theorems of Sections 4 and 5.")
    Term.(ret (const run $ const ()))

let availability_cmd =
  let run scheme n rho horizon =
    let model =
      match scheme with
      | Blockrep.Types.Voting -> Some (Analysis.Voting_model.availability ~n ~rho)
      | Blockrep.Types.Available_copy -> Some (Analysis.Ac_model.availability ~n ~rho)
      | Blockrep.Types.Naive_available_copy -> Some (Analysis.Nac_model.availability ~n ~rho)
      | Blockrep.Types.Dynamic_voting -> None (* simulation-only; no closed form shipped *)
    in
    let chain =
      match scheme with
      | Blockrep.Types.Voting -> Some (Markov.Chains.voting_availability ~n ~rho)
      | Blockrep.Types.Available_copy -> Some (Markov.Chains.ac_availability ~n ~rho)
      | Blockrep.Types.Naive_available_copy -> Some (Markov.Chains.nac_availability ~n ~rho)
      | Blockrep.Types.Dynamic_voting -> None
    in
    let sample = Workload.Experiment.measure_availability ~scheme ~n_sites:n ~rho ~horizon () in
    Format.printf "scheme=%s n=%d rho=%g@." (Blockrep.Types.scheme_to_string scheme) n rho;
    let print_opt label = function
      | Some v -> Format.printf "%s: %.6f@." label v
      | None -> Format.printf "%s: (not available for this scheme)@." label
    in
    print_opt "closed form " model;
    print_opt "markov chain" chain;
    Format.printf "simulation  : %.6f  (horizon %.0f, %d failures injected)@."
      sample.Workload.Experiment.availability horizon sample.Workload.Experiment.failures
  in
  Cmd.v
    (Cmd.info "availability" ~doc:"Availability of one configuration, three ways.")
    Term.(const run $ scheme_arg $ sites_arg $ rho_arg $ horizon_arg)

let traffic_cmd =
  let env_arg =
    let env_conv =
      Arg.conv
        ( (fun s ->
            match String.lowercase_ascii s with
            | "multicast" -> Ok Net.Network.Multicast
            | "unicast" | "unique" | "unique-address" -> Ok Net.Network.Unicast
            | other -> Error (`Msg (Printf.sprintf "unknown environment %S" other))),
          fun ppf m -> Format.pp_print_string ppf (Net.Network.mode_to_string m) )
    in
    Arg.(
      value & opt env_conv Net.Network.Multicast
      & info [ "env" ] ~docv:"ENV" ~doc:"Network environment: multicast or unique-address.")
  in
  let ratio_arg =
    Arg.(value & opt float 2.5 & info [ "ratio" ] ~docv:"X" ~doc:"Reads per write (paper: 2.5).")
  in
  let ops_arg = Arg.(value & opt int 2000 & info [ "ops" ] ~docv:"OPS" ~doc:"Operations to run.") in
  let run scheme n env ratio ops rho =
    let model_scheme =
      match scheme with
      | Blockrep.Types.Voting
      (* Failure-free, dynamic voting generates exactly static voting's
         message pattern: the groups never shrink. *)
      | Blockrep.Types.Dynamic_voting -> Analysis.Traffic_model.Voting
      | Blockrep.Types.Available_copy -> Analysis.Traffic_model.Available_copy
      | Blockrep.Types.Naive_available_copy -> Analysis.Traffic_model.Naive_available_copy
    in
    let model_env =
      match env with
      | Net.Network.Multicast -> Analysis.Traffic_model.Multicast
      | Net.Network.Unicast -> Analysis.Traffic_model.Unique_address
    in
    let model_at rho =
      Analysis.Traffic_model.workload_cost model_env model_scheme ~n ~rho ~reads_per_write:ratio
    in
    let sample =
      Workload.Experiment.measure_traffic ~scheme ~n_sites:n ~env ~reads_per_write:ratio ~ops ()
    in
    Format.printf "scheme=%s n=%d env=%s reads/write=%g@."
      (Blockrep.Types.scheme_to_string scheme)
      n
      (Net.Network.mode_to_string env)
      ratio;
    Format.printf "model (rho=%g)        : %.3f transmissions per write group@." rho (model_at rho);
    Format.printf "model (failure-free)  : %.3f@." (model_at 1e-12);
    Format.printf "measured (failure-free): %.3f  (%d writes, %d reads, %.0f payload bytes/group)@."
      sample.Workload.Experiment.messages_per_write_group sample.Workload.Experiment.writes
      sample.Workload.Experiment.reads sample.Workload.Experiment.bytes_per_write_group
  in
  Cmd.v
    (Cmd.info "traffic" ~doc:"Message traffic of one configuration, model vs measured.")
    Term.(const run $ scheme_arg $ sites_arg $ env_arg $ ratio_arg $ ops_arg $ rho_arg)

let simulate_cmd =
  let blocks_arg =
    Arg.(value & opt int 64 & info [ "blocks" ] ~docv:"B" ~doc:"Device capacity in blocks.")
  in
  let rate_arg =
    Arg.(
      value & opt float 5.0
      & info [ "op-rate" ] ~docv:"R" ~doc:"Client operation arrival rate (per time unit).")
  in
  let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Master seed.") in
  let run scheme n blocks rho horizon rate seed =
    let config = Blockrep.Config.make_exn ~scheme ~n_sites:n ~n_blocks:blocks ~seed () in
    let cluster = Blockrep.Cluster.create config in
    let frng = Util.Prng.create (seed + 1) in
    let failures =
      if rho > 0.0 then Some (Workload.Failure_gen.attach cluster ~rng:frng ~lambda:rho ~mu:1.0)
      else None
    in
    let gen =
      Workload.Access_gen.create ~rng:(Util.Prng.create (seed + 2)) ~n_blocks:blocks
        ~reads_per_write:2.5 ()
    in
    let results = Workload.Runner.run_open_loop cluster gen ~site:0 ~rate ~horizon in
    Option.iter Workload.Failure_gen.stop failures;
    let monitor = Blockrep.Cluster.monitor cluster in
    Format.printf "scheme=%s n=%d rho=%g horizon=%.0f@."
      (Blockrep.Types.scheme_to_string scheme)
      n rho horizon;
    Format.printf "ops: %d issued, %d/%d reads ok, %d/%d writes ok@." results.Workload.Runner.issued
      results.Workload.Runner.read_ok
      (results.Workload.Runner.read_ok + results.Workload.Runner.read_failed)
      results.Workload.Runner.write_ok
      (results.Workload.Runner.write_ok + results.Workload.Runner.write_failed);
    Format.printf "availability: %.6f (%d outages, MTTR %.3f)@."
      (Blockrep.Availability_monitor.availability monitor)
      (Blockrep.Availability_monitor.outages monitor)
      (Blockrep.Availability_monitor.mean_time_to_repair monitor);
    Format.printf "traffic:@.%a@." Net.Traffic.pp (Blockrep.Cluster.traffic cluster)
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Free-form cluster simulation with failures and a client workload.")
    Term.(const run $ scheme_arg $ sites_arg $ blocks_arg $ rho_arg $ horizon_arg $ rate_arg $ seed_arg)

let chaos_cmd =
  let seeds_arg =
    Arg.(value & opt int 100 & info [ "seeds" ] ~docv:"N" ~doc:"Number of seeds to sweep.")
  in
  let seed0_arg =
    Arg.(value & opt int 1 & info [ "seed0" ] ~docv:"S" ~doc:"First seed of the sweep.")
  in
  let ops_arg =
    Arg.(value & opt (some int) None & info [ "ops" ] ~docv:"OPS" ~doc:"Client operations per run.")
  in
  let failures_arg =
    Arg.(
      value & flag
      & info [ "failures" ]
          ~doc:
            "Force individual site failures on (outside the voting/dynamic envelope: expected to \
             surface violations there).")
  in
  let partitions_arg =
    Arg.(
      value & flag
      & info [ "partitions" ] ~doc:"Force network partitions on (outside every scheme's envelope).")
  in
  let total_failures_arg =
    Arg.(value & flag & info [ "total-failures" ] ~doc:"Force whole-system crashes on.")
  in
  let media_arg =
    Arg.(
      value & flag
      & info [ "media" ]
          ~doc:
            "Turn on the scheme's storage-fault envelope: crash-torn writes, latent bitrot and \
             disk replacement for the copy schemes, bitrot only for the voting flavours.")
  in
  let overload_arg =
    Arg.(
      value & flag
      & info [ "overload" ]
          ~doc:
            "Turn on the overload + gray-failure envelope: per-site service model, slow-site \
             episodes, client bursts and queue floods, with deadlines, hedged reads, circuit \
             breakers and admission control enabled client-side.")
  in
  let wire_arg =
    Arg.(
      value & flag
      & info [ "wire" ]
          ~doc:
            "Turn on the hostile-bytes envelope: frames cross the network encoded and the injector \
             damages their bytes (bit flips, truncation, garbage prefix/suffix, frame splices) at \
             ambient rates; the hardened ingress must absorb all of it with every injected \
             corruption accounted for.")
  in
  let crash_writes_arg =
    Arg.(
      value & flag
      & info [ "crash-writes" ] ~doc:"Force crash-torn writes on (crash mid-write; scrub replays).")
  in
  let bitrot_arg =
    Arg.(
      value & flag
      & info [ "bitrot" ] ~doc:"Force latent sector errors on (maskable injections only).")
  in
  let disk_replace_arg =
    Arg.(
      value & flag
      & info [ "disk-replace" ]
          ~doc:"Force whole-disk replacements on (blank medium, rebuilt by recovery).")
  in
  let drop_arg =
    Arg.(
      value & opt (some float) None
      & info [ "drop" ] ~docv:"P" ~doc:"Message drop probability (outside every envelope).")
  in
  let read_threshold_arg =
    Arg.(
      value & opt (some int) None
      & info [ "read-threshold" ] ~docv:"R"
          ~doc:
            "Voting: force this read threshold through the unsafe quorum constructor (e.g. 1 to \
             break read/write intersection).")
  in
  let write_threshold_arg =
    Arg.(
      value & opt (some int) None
      & info [ "write-threshold" ] ~docv:"W" ~doc:"Voting: force this write threshold (unsafe).")
  in
  let no_shrink_arg =
    Arg.(value & flag & info [ "no-shrink" ] ~doc:"Skip schedule minimization of the first failure.")
  in
  let shards_arg =
    Arg.(
      value & opt int 1
      & info [ "shards" ] ~docv:"N"
          ~doc:
            "Run the sweep's seeds on up to N parallel domains (OCaml 5; sequential fallback on \
             4.14). Results are bit-identical to --shards 1.")
  in
  let expect_violations_arg =
    Arg.(
      value & flag
      & info [ "expect-violations" ]
          ~doc:"Invert the verdict: succeed only if the sweep finds at least one violation.")
  in
  let dump_schedule_arg =
    Arg.(
      value & opt (some string) None
      & info [ "dump-schedule" ] ~docv:"FILE"
          ~doc:"Write the (shrunken, if available) failing schedule to FILE for replay.")
  in
  let replay_arg =
    Arg.(
      value & opt (some file) None
      & info [ "replay" ] ~docv:"FILE"
          ~doc:"Replay one run (seed = --seed0) against the schedule in FILE instead of sweeping.")
  in
  let csv_arg =
    Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"FILE" ~doc:"Write the row as CSV.")
  in
  let run scheme sites seeds seed0 ops failures partitions total_failures media overload wire
      crash_writes bitrot disk_replace drop read_threshold write_threshold no_shrink shards
      expect_violations dump_schedule replay csv =
    if shards <= 0 then `Error (false, "--shards must be positive")
    else
    let env =
      if overload then Check.Chaos.overload_env ~seed:seed0 scheme
      else if media then Check.Chaos.media_env ~seed:seed0 scheme
      else if wire then Check.Chaos.wire_env ~seed:seed0 scheme
      else Check.Chaos.default_env ~seed:seed0 scheme
    in
    let env = { env with Check.Chaos.n_sites = sites } in
    let env = match ops with Some ops -> { env with Check.Chaos.ops } | None -> env in
    let env = if failures then { env with Check.Chaos.failures = true } else env in
    let env = if partitions then { env with Check.Chaos.partitions = true } else env in
    let env = if total_failures then { env with Check.Chaos.total_failures = true } else env in
    let env = if crash_writes then { env with Check.Chaos.crash_writes = true } else env in
    let env = if bitrot then { env with Check.Chaos.bitrot = true } else env in
    let env = if disk_replace then { env with Check.Chaos.disk_replace = true } else env in
    let env =
      match drop with
      | Some p -> { env with Check.Chaos.faults = { env.Check.Chaos.faults with Net.Faults.drop = p } }
      | None -> env
    in
    let env = { env with Check.Chaos.weaken_read = read_threshold; weaken_write = write_threshold } in
    match replay with
    | Some file -> (
        let ic = open_in file in
        let text = really_input_string ic (in_channel_length ic) in
        close_in ic;
        match Check.Chaos.schedule_of_string text with
        | Error e -> `Error (false, "bad schedule file: " ^ e)
        | Ok schedule ->
            let outcome = Check.Chaos.run ~schedule env in
            let violations = Check.Chaos.violations outcome in
            Format.printf "replay of %s (seed %d): %d event(s), %d violation(s)@." file seed0
              (List.length schedule) (List.length violations);
            List.iter (fun v -> Format.printf "  %a@." Check.Violation.pp v) violations;
            if (violations <> []) = expect_violations then `Ok ()
            else `Error (false, "replay verdict did not match expectation"))
    | None ->
        let seed_list = List.init seeds (fun i -> seed0 + i) in
        let sweep = Check.Chaos.sweep ~shrink_failures:(not no_shrink) ~shards env ~seeds:seed_list in
        let label =
          Printf.sprintf "%s%s%s%s%s%s%s%s%s%s%s"
            (Blockrep.Types.scheme_to_string scheme)
            (if env.Check.Chaos.failures then "+fail" else "")
            (if env.Check.Chaos.partitions then "+part" else "")
            (if env.Check.Chaos.total_failures then "+total" else "")
            (if env.Check.Chaos.crash_writes then "+torn" else "")
            (if env.Check.Chaos.bitrot then "+rot" else "")
            (if env.Check.Chaos.disk_replace then "+swap" else "")
            (if env.Check.Chaos.slow_sites || env.Check.Chaos.queue_floods then "+over" else "")
            (if env.Check.Chaos.encoded then "+wire" else "")
            (match drop with Some p -> Printf.sprintf "+drop%g" p | None -> "")
            (match (read_threshold, write_threshold) with
            | None, None -> ""
            | r, w ->
                Printf.sprintf "+weak(r=%s,w=%s)"
                  (match r with Some r -> string_of_int r | None -> "-")
                  (match w with Some w -> string_of_int w | None -> "-"))
        in
        let row = Report.Chaos_report.row_of_sweep ~label sweep in
        Format.printf "%a@." Report.Chaos_report.print [ row ];
        if sweep.Check.Chaos.failing <> [] then
          Format.printf "%a@." Report.Chaos_report.print_failure sweep;
        (match dump_schedule with
        | Some path ->
            let schedule =
              match (sweep.Check.Chaos.shrunk, sweep.Check.Chaos.first_failure) with
              | Some (s, _), _ -> Some s
              | None, Some (_, o) -> Some o.Check.Chaos.schedule
              | None, None -> None
            in
            (match schedule with
            | Some s ->
                let oc = open_out path in
                output_string oc (Check.Chaos.schedule_to_string s);
                output_string oc "\n";
                close_out oc;
                Format.printf "(wrote %s)@." path
            | None -> Format.printf "(no failing schedule to dump)@.")
        | None -> ());
        (match csv with
        | Some path -> (
            match Report.Csv.write_file path (Report.Chaos_report.csv_rows [ row ]) with
            | Ok () -> Format.printf "(wrote %s)@." path
            | Error msg -> Format.printf "(csv error: %s)@." msg)
        | None -> ());
        let failed = sweep.Check.Chaos.failing <> [] in
        if failed = expect_violations then `Ok ()
        else if expect_violations then
          `Error (false, "expected the sweep to surface violations, but every seed passed")
        else
          `Error
            ( false,
              Printf.sprintf "%d of %d seed(s) violated one-copy consistency"
                (List.length sweep.Check.Chaos.failing)
                seeds )
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Seeded chaos sweep: failures/partitions/message faults and media faults (torn writes, \
          bitrot, disk replacement) over a live workload, judged by a one-copy consistency oracle \
          and quiescent invariant scans, with greedy schedule shrinking of any failure.")
    Term.(
      ret
        (const run $ scheme_arg $ sites_arg $ seeds_arg $ seed0_arg $ ops_arg $ failures_arg
       $ partitions_arg $ total_failures_arg $ media_arg $ overload_arg $ wire_arg
       $ crash_writes_arg $ bitrot_arg
       $ disk_replace_arg $ drop_arg $ read_threshold_arg $ write_threshold_arg $ no_shrink_arg
       $ shards_arg $ expect_violations_arg $ dump_schedule_arg $ replay_arg $ csv_arg))

let scenario_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Scenario (.scn) file to run.")
  in
  let run file =
    match Scenario.parse_file file with
    | Error e -> `Error (false, "parse error: " ^ e)
    | Ok t ->
        let outcome = Scenario.run t in
        if outcome.Scenario.passed then begin
          Format.printf "%s: ok (%d events)@." file outcome.Scenario.events_run;
          `Ok ()
        end
        else begin
          List.iter (fun f -> Format.printf "%s: %s@." file f) outcome.Scenario.failures;
          `Error (false, Printf.sprintf "%d expectation(s) failed" (List.length outcome.Scenario.failures))
        end
  in
  Cmd.v
    (Cmd.info "scenario"
       ~doc:"Run a failure/workload scenario file and check its expectations (see lib/scenario).")
    Term.(ret (const run $ file))

(* ------------------------------------------------------------------ *)
(* Device images and an offline file-system tool                       *)
(* ------------------------------------------------------------------ *)

module Hfs = Fs.Hier_fs.Make (Blockdev.Mem_device)

let image_create_cmd =
  let path_arg = Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"Image file.") in
  let blocks_arg =
    Arg.(value & opt int 256 & info [ "blocks" ] ~docv:"N" ~doc:"Device capacity in blocks.")
  in
  let run path blocks =
    let dev = Blockdev.Mem_device.create ~capacity:blocks in
    match Hfs.format dev with
    | Error e -> `Error (false, Fs.Fs_core.error_to_string e)
    | Ok _fs -> (
        match Blockdev.Image.save (module Blockdev.Mem_device) dev path with
        | Error msg -> `Error (false, msg)
        | Ok () ->
            Format.printf "created %s: %d blocks, hierarchical file system@." path blocks;
            `Ok ())
  in
  Cmd.v
    (Cmd.info "image-create" ~doc:"Create a device image with a fresh hierarchical file system.")
    Term.(ret (const run $ path_arg $ blocks_arg))

let fs_cmd =
  let image_arg =
    Arg.(required & opt (some file) None & info [ "image"; "i" ] ~docv:"FILE" ~doc:"Device image.")
  in
  let op_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"OP" ~doc:"One of: ls, tree, cat, write, append, mkdir, rm, rmdir, mv, fsck.")
  in
  let args_arg = Arg.(value & pos_right 0 string [] & info [] ~docv:"ARGS") in
  let run image op args =
    let ( let* ) = Result.bind in
    let fail_fs e = Error (Fs.Fs_core.error_to_string e) in
    let outcome =
      let* dev = Blockdev.Image.load_mem image in
      let* fs = Result.map_error Fs.Fs_core.error_to_string (Hfs.mount dev) in
      let save () = Blockdev.Image.save (module Blockdev.Mem_device) dev image in
      let mutating result =
        match result with
        | Error e -> fail_fs e
        | Ok () ->
            let* () = save () in
            Ok ()
      in
      match (op, args) with
      | "ls", ([] | [ _ ]) -> (
          let path = match args with [ p ] -> p | _ -> "/" in
          match Hfs.list fs path with
          | Error e -> fail_fs e
          | Ok entries ->
              List.iter
                (fun e ->
                  Format.printf "%s%s@." e.Fs.Hier_fs.name
                    (match e.Fs.Hier_fs.kind with Fs.Hier_fs.Directory -> "/" | Fs.Hier_fs.File -> ""))
                entries;
              Ok ())
      | "tree", ([] | [ _ ]) -> (
          let path = match args with [ p ] -> p | _ -> "/" in
          match Hfs.walk fs path with
          | Error e -> fail_fs e
          | Ok paths ->
              List.iter (Format.printf "%s@.") paths;
              Ok ())
      | "cat", [ path ] -> (
          match Hfs.read fs path with
          | Error e -> fail_fs e
          | Ok data ->
              print_string (Bytes.to_string data);
              Ok ())
      | "write", [ path; text ] ->
          let* () =
            match Hfs.exists fs path with
            | true -> Ok ()
            | false -> Result.map_error Fs.Fs_core.error_to_string (Hfs.create fs path)
          in
          let* () =
            Result.map_error Fs.Fs_core.error_to_string (Hfs.truncate fs path)
          in
          mutating (Hfs.write fs path (Bytes.of_string text))
      | "append", [ path; text ] -> mutating (Hfs.append fs path (Bytes.of_string text))
      | "mkdir", [ path ] -> mutating (Hfs.mkdir_p fs path)
      | "rm", [ path ] -> mutating (Hfs.unlink fs path)
      | "rmdir", [ path ] -> mutating (Hfs.rmdir fs path)
      | "mv", [ src; dst ] -> mutating (Hfs.rename fs src dst)
      | "fsck", [] -> (
          match Hfs.fsck fs with
          | Error e -> fail_fs e
          | Ok () ->
              Format.printf "clean@.";
              Ok ())
      | _ -> Error (Printf.sprintf "bad operation %S or wrong arguments" op)
    in
    match outcome with Ok () -> `Ok () | Error msg -> `Error (false, msg)
  in
  Cmd.v
    (Cmd.info "fs" ~doc:"Operate on the hierarchical file system inside a device image.")
    Term.(ret (const run $ image_arg $ op_arg $ args_arg))

let () =
  let info =
    Cmd.info "blockrep" ~version:"1.0.0"
      ~doc:"Block-level consistency of replicated files (ICDCS 1987) — reproduction toolkit"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            figure_cmd;
            identities_cmd;
            availability_cmd;
            traffic_cmd;
            simulate_cmd;
            chaos_cmd;
            scenario_cmd;
            image_create_cmd;
            fs_cmd;
          ]))
