(* blockrep-lint: typed-AST protocol linter for this repository.

   Scans dune-produced .cmt files (default: lib/ and bin/ under
   _build/default) and enforces the repo's determinism,
   polymorphic-compare, wire-exhaustiveness and no-partiality
   invariants.  Exit status: 0 when every finding is suppressed with a
   justification, 1 when unsuppressed findings remain, 2 on usage or
   internal errors.  See DESIGN.md section 4f for the rules. *)

let usage =
  "blockrep_lint [--root DIR] [--json FILE] [--sarif FILE] [--list-rules] [DIR ...]\n\n\
   Scans .cmt files under the given directories (default: lib bin),\n\
   resolved relative to --root (default: _build/default when it\n\
   exists, else the current directory)."

let () =
  let root = ref None in
  let json = ref None in
  let sarif = ref None in
  let list_rules = ref false in
  let dirs = ref [] in
  let spec =
    [
      ("--root", Arg.String (fun s -> root := Some s), "DIR scan root (default: _build/default)");
      ("--json", Arg.String (fun s -> json := Some s), "FILE also write a JSON report to FILE");
      ( "--sarif",
        Arg.String (fun s -> sarif := Some s),
        "FILE also write a SARIF 2.1.0 report to FILE (GitHub code scanning)" );
      ("--list-rules", Arg.Set list_rules, " print the rule identifiers and exit");
    ]
  in
  (try Arg.parse spec (fun d -> dirs := d :: !dirs) usage
   with e ->
     prerr_endline (Printexc.to_string e);
     exit 2);
  if !list_rules then begin
    List.iter print_endline Lint.Config.rule_ids;
    exit 0
  end;
  let root =
    match !root with
    | Some r -> r
    | None -> if Sys.file_exists "_build/default" then "_build/default" else "."
  in
  let dirs = match List.rev !dirs with [] -> [ "lib"; "bin" ] | ds -> ds in
  let cfg = Lint.Config.default in
  let units = Lint.Driver.find_units ~root ~dirs in
  if units = [] then begin
    Printf.eprintf
      "blockrep_lint: no .cmt files under %s in %s — build first (dune build @check)\n" root
      (String.concat ", " dirs);
    exit 2
  end;
  let findings = Lint.Driver.run ~cfg units in
  Format.printf "%a" Lint.Report.pp_human findings;
  (match !json with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      output_string oc (Lint.Report.to_json findings);
      close_out oc;
      Printf.printf "JSON report written to %s\n" path);
  (match !sarif with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      output_string oc (Lint.Report.to_sarif findings);
      close_out oc;
      Printf.printf "SARIF report written to %s\n" path);
  (* 2: the linter could not analyse the tree (unreadable .cmt et al.);
     1: real unsuppressed findings; 0: clean.  CI treats 2 as an
     infrastructure failure, not a dirty tree. *)
  if Lint.Report.internal_error findings then exit 2
  else if Lint.Report.clean findings then exit 0
  else exit 1
