lib/net/traffic.mli: Format Message
