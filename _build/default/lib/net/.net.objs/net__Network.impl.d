lib/net/network.ml: Array List Message Printf Sim Traffic Util
