lib/net/network.mli: Message Sim Traffic Util
