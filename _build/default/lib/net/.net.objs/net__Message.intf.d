lib/net/message.mli: Format
