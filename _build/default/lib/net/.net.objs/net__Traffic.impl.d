lib/net/traffic.ml: Array Format List Message
