lib/net/message.ml: Format
