let check ~n ~rho name =
  if n < 1 then invalid_arg (Printf.sprintf "Ac_model.%s: need n >= 1" name);
  if rho < 0.0 then invalid_arg (Printf.sprintf "Ac_model.%s: rho must be non-negative" name)

let availability_closed ~n ~rho =
  check ~n ~rho "availability_closed";
  let p = rho in
  match n with
  | 1 -> Some (1.0 /. (1.0 +. p))
  | 2 ->
      (* Equation (2). *)
      Some ((1.0 +. (3.0 *. p) +. (p *. p)) /. ((1.0 +. p) ** 3.0))
  | 3 ->
      (* Equation (3). *)
      let num =
        2.0 +. (9.0 *. p) +. (17.0 *. (p ** 2.0)) +. (11.0 *. (p ** 3.0)) +. (2.0 *. (p ** 4.0))
      in
      let den = ((1.0 +. p) ** 3.0) *. (2.0 +. (3.0 *. p) +. (2.0 *. (p ** 2.0))) in
      Some (num /. den)
  | 4 ->
      (* Equation (4). *)
      let num =
        6.0 +. (37.0 *. p)
        +. (99.0 *. (p ** 2.0))
        +. (152.0 *. (p ** 3.0))
        +. (124.0 *. (p ** 4.0))
        +. (47.0 *. (p ** 5.0))
        +. (6.0 *. (p ** 6.0))
      in
      let den =
        ((1.0 +. p) ** 4.0)
        *. (6.0 +. (13.0 *. p) +. (11.0 *. (p ** 2.0)) +. (6.0 *. (p ** 3.0)))
      in
      Some (num /. den)
  | _ -> None

let availability ~n ~rho =
  match availability_closed ~n ~rho with
  | Some a -> a
  | None -> Markov.Chains.ac_availability ~n ~rho

let lower_bound ~n ~rho =
  check ~n ~rho "lower_bound";
  let nf = float_of_int n in
  1.0 -. (nf *. (rho ** nf) /. ((1.0 +. rho) ** nf))

let participation ~n ~rho =
  check ~n ~rho "participation";
  Markov.Chains.ac_participation ~n ~rho

let theorem_4_1_sufficient ~n ~rho =
  check ~n ~rho "theorem_4_1_sufficient";
  Voting_model.binomial ((2 * n) - 1) n /. float_of_int n > (1.0 +. rho) ** float_of_int (n - 1)
