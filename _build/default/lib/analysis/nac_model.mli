(** Closed-form model of the naive available copy scheme (Section 4.3).

    A_NA(n) = B(n;ρ) / (B(n;ρ) + ρ·B(n;1/ρ)) where

    B(n;ρ) = Σ_{k=1}^{n} Σ_{j=1}^{k} ((n-j)!(j-1)!)/((n-k)!k!) ρ^{j-k}.

    Notable identity (checked in the test suite): A_NA(2) = A_V(3) — two
    naive-available-copy replicas match three voting replicas. *)

val b_poly : n:int -> rho:float -> float
(** The paper's B(n;ρ) double sum.  [rho] must be positive (the sum contains
    negative powers of ρ). *)

val availability : n:int -> rho:float -> float
(** A_NA(n) via the closed form; for [rho = 0] returns the limit 1. *)

val participation : n:int -> rho:float -> float
(** U_N^n, exact from the Figure 8 chain. *)
