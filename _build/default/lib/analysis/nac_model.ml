let check ~n name =
  if n < 1 then invalid_arg (Printf.sprintf "Nac_model.%s: need n >= 1" name)

(* Factorials as floats; arguments stay small (n copies of a block). *)
let rec fact k = if k <= 1 then 1.0 else float_of_int k *. fact (k - 1)

let b_poly ~n ~rho =
  check ~n "b_poly";
  if rho <= 0.0 then invalid_arg "Nac_model.b_poly: rho must be positive";
  let acc = ref 0.0 in
  for k = 1 to n do
    for j = 1 to k do
      let coeff = fact (n - j) *. fact (j - 1) /. (fact (n - k) *. fact k) in
      acc := !acc +. (coeff *. (rho ** float_of_int (j - k)))
    done
  done;
  !acc

let availability ~n ~rho =
  check ~n "availability";
  if rho < 0.0 then invalid_arg "Nac_model.availability: rho must be non-negative";
  if rho = 0.0 then 1.0
  else begin
    let b = b_poly ~n ~rho in
    let b_inv = b_poly ~n ~rho:(1.0 /. rho) in
    b /. (b +. (rho *. b_inv))
  end

let participation ~n ~rho =
  check ~n "participation";
  Markov.Chains.nac_participation ~n ~rho
