(** The message-count model of Section 5.

    Costs are expected numbers of high-level transmissions per operation, as
    functions of the number of sites [n] and the failure-to-repair ratio
    [rho].  The participation averages U (operational sites for voting,
    available sites for the copy schemes) are taken exactly from the Markov
    chains; the paper shows they agree to O(ρ²).

    Summary of the model, [U] being the scheme's participation:

    {v
                     multicast              unique addressing
    voting   write   1 + U                  n + 2U - 3
             read    U   (stale: U + 1)     n + U - 2  (stale: n + U - 1)
             recov   0                      0
    AC       write   U                      n + U - 2
             read    0                      0
             recov   U + 2                  n + U
    NAC      write   1                      n - 1
             read    0                      0
             recov   U + 2                  n + U
    v} *)

type scheme = Voting | Available_copy | Naive_available_copy

val scheme_to_string : scheme -> string
val all_schemes : scheme list

type environment = Multicast | Unique_address

val environment_to_string : environment -> string

val participation : scheme -> n:int -> rho:float -> float
(** The U entering each scheme's costs. *)

val write_cost : environment -> scheme -> n:int -> rho:float -> float
val read_cost : ?stale:bool -> environment -> scheme -> n:int -> rho:float -> float
(** [stale] (default [false]): the local copy was out of date, adding one
    block transfer under voting.  Irrelevant to the copy schemes (reads are
    local). *)

val recovery_cost : environment -> scheme -> n:int -> rho:float -> float

val workload_cost :
  environment -> scheme -> n:int -> rho:float -> reads_per_write:float -> float
(** Cost of one write plus [reads_per_write] reads — the dependent axis of
    Figures 11 and 12. *)
