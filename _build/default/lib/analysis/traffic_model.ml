type scheme = Voting | Available_copy | Naive_available_copy

let scheme_to_string = function
  | Voting -> "voting"
  | Available_copy -> "available-copy"
  | Naive_available_copy -> "naive-available-copy"

let all_schemes = [ Voting; Available_copy; Naive_available_copy ]

type environment = Multicast | Unique_address

let environment_to_string = function
  | Multicast -> "multicast"
  | Unique_address -> "unique-address"

let check ~n ~rho name =
  if n < 2 then invalid_arg (Printf.sprintf "Traffic_model.%s: need n >= 2" name);
  if rho < 0.0 then invalid_arg (Printf.sprintf "Traffic_model.%s: rho must be non-negative" name)

let participation scheme ~n ~rho =
  check ~n ~rho "participation";
  match scheme with
  | Voting -> Voting_model.participation ~n ~rho
  | Available_copy -> Ac_model.participation ~n ~rho
  | Naive_available_copy -> Nac_model.participation ~n ~rho

let write_cost env scheme ~n ~rho =
  check ~n ~rho "write_cost";
  let u = participation scheme ~n ~rho in
  let nf = float_of_int n in
  match (env, scheme) with
  | Multicast, Voting -> 1.0 +. u
  | Multicast, Available_copy -> u
  | Multicast, Naive_available_copy -> 1.0
  | Unique_address, Voting -> nf +. (2.0 *. u) -. 3.0
  | Unique_address, Available_copy -> nf +. u -. 2.0
  | Unique_address, Naive_available_copy -> nf -. 1.0

let read_cost ?(stale = false) env scheme ~n ~rho =
  check ~n ~rho "read_cost";
  let extra = if stale then 1.0 else 0.0 in
  match (env, scheme) with
  | Multicast, Voting -> participation Voting ~n ~rho +. extra
  | Unique_address, Voting -> float_of_int n +. participation Voting ~n ~rho -. 2.0 +. extra
  | (Multicast | Unique_address), (Available_copy | Naive_available_copy) -> 0.0

let recovery_cost env scheme ~n ~rho =
  check ~n ~rho "recovery_cost";
  match (env, scheme) with
  | (Multicast | Unique_address), Voting -> 0.0
  | Multicast, (Available_copy | Naive_available_copy) -> participation scheme ~n ~rho +. 2.0
  | Unique_address, (Available_copy | Naive_available_copy) ->
      float_of_int n +. participation scheme ~n ~rho

let workload_cost env scheme ~n ~rho ~reads_per_write =
  if reads_per_write < 0.0 then invalid_arg "Traffic_model.workload_cost: negative read ratio";
  write_cost env scheme ~n ~rho +. (reads_per_write *. read_cost env scheme ~n ~rho)
