let availability ~weights ~witness ~threshold ~rho =
  let n = Array.length weights in
  if n = 0 || Array.length witness <> n then
    invalid_arg "Witness_model.availability: arrays must be non-empty and of equal length";
  if not (Array.exists not witness) then
    invalid_arg "Witness_model.availability: need at least one data site";
  if threshold <= 0 then invalid_arg "Witness_model.availability: threshold must be positive";
  if rho < 0.0 then invalid_arg "Witness_model.availability: rho must be non-negative";
  if n > 20 then invalid_arg "Witness_model.availability: enumeration capped at 20 sites";
  let p_up = 1.0 /. (1.0 +. rho) in
  let p_down = 1.0 -. p_up in
  let total = ref 0.0 in
  for mask = 0 to (1 lsl n) - 1 do
    let weight_up = ref 0 in
    let data_up = ref false in
    let prob = ref 1.0 in
    for i = 0 to n - 1 do
      if mask land (1 lsl i) <> 0 then begin
        weight_up := !weight_up + weights.(i);
        if not witness.(i) then data_up := true;
        prob := !prob *. p_up
      end
      else prob := !prob *. p_down
    done;
    if !weight_up >= threshold && !data_up then total := !total +. !prob
  done;
  !total

let majority_availability ~data ~witnesses ~rho =
  if data < 1 then invalid_arg "Witness_model.majority_availability: need a data site";
  if witnesses < 0 then invalid_arg "Witness_model.majority_availability: negative witnesses";
  let n = data + witnesses in
  (* Mirror Blockrep.Quorum.majority: equal weights for odd n; for even n
     one site (a data site, id 0) gets weight 3 and the rest 2. *)
  let weights = if n mod 2 = 1 then Array.make n 1 else Array.init n (fun i -> if i = 0 then 3 else 2) in
  let total = Array.fold_left ( + ) 0 weights in
  let threshold = (total / 2) + 1 in
  let witness = Array.init n (fun i -> i >= data) in
  availability ~weights ~witness ~threshold ~rho

let storage_blocks ~data ~witnesses ~n_blocks =
  if data < 1 || witnesses < 0 || n_blocks < 0 then
    invalid_arg "Witness_model.storage_blocks: bad arguments";
  ((data + witnesses) * n_blocks, data * n_blocks)
