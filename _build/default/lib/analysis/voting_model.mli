(** Closed-form model of majority consensus voting (Section 4.1, 5).

    All formulas are in terms of the failure-to-repair ratio ρ = λ/μ; an
    individual site is up with stationary probability 1/(1+ρ). *)

val availability : n:int -> rho:float -> float
(** Equations (1.a) and (1.b): stationary probability that a majority
    quorum of [n] equally weighted copies is up.  For even [n] the paper
    perturbs one copy's weight to break ties, which contributes half of the
    half-up state's probability; consequently
    [availability ~n:(2*k) = availability ~n:(2*k - 1)]. *)

val site_availability : rho:float -> float
(** [1/(1+ρ)], the availability of a single site. *)

val availability_upper_bound : n:int -> rho:float -> float
(** The bound used in the proof of Theorem 4.1:
    [A_V(2n-1) < 1 - C(2n-1, n) ρⁿ / (1+ρ)^{2n-1}], evaluated for odd
    arguments; raises [Invalid_argument] on even [n]. *)

val participation : n:int -> rho:float -> float
(** [U_V^n = n(1+ρ)^{n-1} / ((1+ρ)ⁿ - ρⁿ)]: expected number of operational
    sites given that at least one (the local site) is operational. *)

val participation_approx : n:int -> rho:float -> float
(** First-order expansion [n(1-ρ)], accurate to O(ρ²); the paper argues all
    three schemes share it. *)

val binomial : int -> int -> float
(** [binomial n k] = C(n,k) as a float (exact for the small arguments used
    here); 0 outside [0 <= k <= n]. *)
