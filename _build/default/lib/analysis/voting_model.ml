let binomial n k =
  if k < 0 || k > n then 0.0
  else begin
    (* Multiplicative form, exact in float for the modest n used here. *)
    let k = Int.min k (n - k) in
    let rec go acc i =
      if i > k then acc else go (acc *. float_of_int (n - k + i) /. float_of_int i) (i + 1)
    in
    go 1.0 1
  end

let check ~n ~rho name =
  if n < 1 then invalid_arg (Printf.sprintf "Voting_model.%s: need n >= 1" name);
  if rho < 0.0 then invalid_arg (Printf.sprintf "Voting_model.%s: rho must be non-negative" name)

let site_availability ~rho = 1.0 /. (1.0 +. rho)

(* P(exactly k of n sites up) with site availability 1/(1+rho):
   C(n,k) rho^(n-k) / (1+rho)^n. *)
let p_up ~n ~rho k = binomial n k *. (rho ** float_of_int (n - k)) /. ((1.0 +. rho) ** float_of_int n)

let availability ~n ~rho =
  check ~n ~rho "availability";
  let acc = ref 0.0 in
  for k = 0 to n do
    if 2 * k > n then acc := !acc +. p_up ~n ~rho k
    else if 2 * k = n then acc := !acc +. (0.5 *. p_up ~n ~rho k)
  done;
  !acc

let availability_upper_bound ~n ~rho =
  check ~n ~rho "availability_upper_bound";
  if n mod 2 = 0 then invalid_arg "Voting_model.availability_upper_bound: odd n only";
  let half = (n + 1) / 2 in
  1.0 -. (binomial n half *. (rho ** float_of_int half) /. ((1.0 +. rho) ** float_of_int n))

let participation ~n ~rho =
  check ~n ~rho "participation";
  let nf = float_of_int n in
  nf *. ((1.0 +. rho) ** (nf -. 1.0)) /. (((1.0 +. rho) ** nf) -. (rho ** nf))

let participation_approx ~n ~rho =
  check ~n ~rho "participation_approx";
  float_of_int n *. (1.0 -. rho)
