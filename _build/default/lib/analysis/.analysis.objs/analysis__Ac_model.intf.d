lib/analysis/ac_model.mli:
