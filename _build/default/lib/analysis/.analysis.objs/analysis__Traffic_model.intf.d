lib/analysis/traffic_model.mli:
