lib/analysis/nac_model.ml: Markov Printf
