lib/analysis/traffic_model.ml: Ac_model Nac_model Printf Voting_model
