lib/analysis/voting_model.mli:
