lib/analysis/witness_model.ml: Array
