lib/analysis/nac_model.mli:
