lib/analysis/voting_model.ml: Int Printf
