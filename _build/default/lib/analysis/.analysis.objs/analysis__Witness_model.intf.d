lib/analysis/witness_model.mli:
