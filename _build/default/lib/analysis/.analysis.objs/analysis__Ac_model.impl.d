lib/analysis/ac_model.ml: Markov Printf Voting_model
