(** Closed-form model of the available copy scheme (Section 4.2).

    The paper gives exact rational expressions for 2, 3 and 4 copies
    (equations (2)–(4)) and a lower bound (5) for general [n]; for other [n]
    {!availability} falls back on the exact Figure 7 Markov chain. *)

val availability : n:int -> rho:float -> float
(** A_A(n).  Uses the published closed forms for [n <= 4] (n = 1 is the
    single-site [1/(1+ρ)]) and the exact chain solution otherwise. *)

val availability_closed : n:int -> rho:float -> float option
(** The published closed form when one exists ([n <= 4]), [None]
    otherwise — lets tests compare closed forms against the chain. *)

val lower_bound : n:int -> rho:float -> float
(** Inequality (5): [A_A(n) > 1 - nρⁿ/(1+ρ)ⁿ]. *)

val participation : n:int -> rho:float -> float
(** U_A^n: expected number of available sites given the block is available
    (exact, from the Figure 7 chain). *)

val theorem_4_1_sufficient : n:int -> rho:float -> bool
(** Inequality (6) of the proof: [C(2n-1, n)/n > (1+ρ)^{n-1}], the
    sufficient condition under which [A_A(n) > A_V(2n-1)]. *)
