(** Availability of weighted voting with witnesses.

    A witness votes — version number plus weight — but stores no data
    (Pâris, "Voting with a Variable Number of Copies", the paper's
    reference [10] family).  Writes need only a quorum; reads additionally
    need a reachable data site holding the current version.

    The model below makes the same idealisation as the paper's voting
    analysis: a repaired data site is brought current on first access
    (lazy per-block recovery), so any up data site inside a quorum counts
    as current.  Under that assumption the system is available iff a
    quorum of sites is up {e and} at least one data site is up, and the
    availability is a finite sum over up-sets.  The event-driven
    simulation validates the approximation (see the bench harness). *)

val availability :
  weights:int array -> witness:bool array -> threshold:int -> rho:float -> float
(** Exact enumeration over the [2^n] up/down patterns with iid site
    availability [1/(1+rho)].  Arrays must have equal length; [witness]
    must leave at least one data site; raises [Invalid_argument]
    otherwise. *)

val majority_availability : data:int -> witnesses:int -> rho:float -> float
(** Convenience: [data + witnesses] sites under the same majority
    configuration as [Blockrep.Quorum.majority] (equal weights when the
    total count is odd; one inflated weight to break ties when even, given
    to a data site). *)

val storage_blocks : data:int -> witnesses:int -> n_blocks:int -> int * int
(** [(full, with_witnesses)] device-block storage cost of a configuration:
    every data copy stores [n_blocks] blocks, a witness stores none (its
    version vector is bookkeeping, not block storage).  Quantifies the
    witness trade-off against [data + witnesses] full copies. *)
