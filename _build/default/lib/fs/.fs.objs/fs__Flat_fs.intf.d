lib/fs/flat_fs.mli: Blockdev Fs_core
