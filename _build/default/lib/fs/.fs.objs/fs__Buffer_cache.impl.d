lib/fs/buffer_cache.ml: Blockdev Hashtbl
