lib/fs/hier_fs.ml: Blockdev Bytes Fs_core Hashtbl List Printf Result String
