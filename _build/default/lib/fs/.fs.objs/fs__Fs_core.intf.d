lib/fs/fs_core.mli: Blockdev
