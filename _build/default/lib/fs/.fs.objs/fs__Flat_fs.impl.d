lib/fs/flat_fs.ml: Blockdev Bytes Fs_core List Printf Result String
