lib/fs/fs_core.ml: Array Blockdev Bytes Hashtbl Int Int32 List Printf Result String
