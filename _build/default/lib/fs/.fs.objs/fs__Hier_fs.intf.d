lib/fs/hier_fs.mli: Blockdev Fs_core
