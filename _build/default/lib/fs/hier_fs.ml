type entry_kind = File | Directory

type entry = { name : string; kind : entry_kind }

type stats = { size : int; blocks_used : int; inode : int; kind : entry_kind }

let flavour = 'H'
let file_kind = 'f'
let dir_kind = 'd'
let root_inode = 0
let dirent_size = Fs_core.dirent_size

let ( let* ) = Result.bind

(* "/a/b/" -> ["a"; "b"]; "" and "/" -> []. *)
let split_path path =
  String.split_on_char '/' path |> List.filter (fun c -> c <> "")

let kind_of_char c = if c = dir_kind then Directory else File

module Make (Dev : Blockdev.Device_intf.S) = struct
  module Core = Fs_core.Make (Dev)

  type t = Core.t

  let device = Core.device

  let format ?(n_inodes = 128) dev = Core.format ~flavour ~n_inodes ~root_kind:dir_kind dev
  let mount dev = Core.mount ~flavour dev

  (* ---------------------------------------------------------------- *)
  (* Directory primitives (work on any directory inode)                *)
  (* ---------------------------------------------------------------- *)

  let dir_contents t ino = Core.read_inode_range t ino ~offset:0 ~length:ino.Core.size

  let dir_entries t ino =
    let* contents = dir_contents t ino in
    let n = Bytes.length contents / dirent_size in
    let rec collect i acc =
      if i >= n then Ok (List.rev acc)
      else
        match Core.decode_dirent contents (i * dirent_size) with
        | Some entry -> collect (i + 1) ((i, entry) :: acc)
        | None -> collect (i + 1) acc
    in
    collect 0 []

  let dir_lookup t ino name =
    let* entries = dir_entries t ino in
    Ok (List.find_opt (fun (_, (entry_name, _)) -> String.equal entry_name name) entries)

  let dir_add t dir_idx ino name child =
    let* contents = dir_contents t ino in
    let n = Bytes.length contents / dirent_size in
    let rec first_free i =
      if i >= n then n
      else if Core.decode_dirent contents (i * dirent_size) = None then i
      else first_free (i + 1)
    in
    let slot = first_free 0 in
    let* _ino =
      Core.write_inode_range t dir_idx ino ~offset:(slot * dirent_size)
        (Core.encode_dirent name child)
    in
    Ok ()

  let dir_remove t dir_idx ino slot =
    let* _ino =
      Core.write_inode_range t dir_idx ino ~offset:(slot * dirent_size)
        (Bytes.make dirent_size '\000')
    in
    Ok ()

  let dir_is_empty t ino =
    let* entries = dir_entries t ino in
    Ok (entries = [])

  (* ---------------------------------------------------------------- *)
  (* Path resolution                                                   *)
  (* ---------------------------------------------------------------- *)

  (* Resolve a path to (inode index, inode). *)
  let resolve t path =
    let rec walk idx components =
      let* ino = Core.load_inode t idx in
      match components with
      | [] -> Ok (idx, ino)
      | name :: rest ->
          if ino.Core.kind <> dir_kind then Error Fs_core.Not_a_directory
          else
            let* () = Core.check_name name in
            let* hit = dir_lookup t ino name in
            (match hit with
            | None -> Error Fs_core.Not_found
            | Some (_, (_, child)) -> walk child rest)
    in
    walk root_inode (split_path path)

  (* Resolve the parent directory of a path; returns
     (parent_idx, parent_inode, final component). *)
  let resolve_parent t path =
    match List.rev (split_path path) with
    | [] -> Error Fs_core.Invalid_path
    | name :: rev_parent ->
        let parent_path = String.concat "/" (List.rev rev_parent) in
        let* parent_idx, parent_ino = resolve t parent_path in
        if parent_ino.Core.kind <> dir_kind then Error Fs_core.Not_a_directory
        else
          let* () = Core.check_name name in
          Ok (parent_idx, parent_ino, name)

  (* ---------------------------------------------------------------- *)
  (* Creation                                                          *)
  (* ---------------------------------------------------------------- *)

  let make_node t path kind =
    let* parent_idx, parent_ino, name = resolve_parent t path in
    let* existing = dir_lookup t parent_ino name in
    match existing with
    | Some _ -> Error Fs_core.Already_exists
    | None ->
        let* idx = Core.find_free_inode t in
        let* () = Core.store_inode t idx { Core.empty_inode with used = true; kind } in
        dir_add t parent_idx parent_ino name idx

  let create t path = make_node t path file_kind
  let mkdir t path = make_node t path dir_kind

  let rec mkdir_p t path =
    match mkdir t path with
    | Ok () -> Ok ()
    | Error Fs_core.Already_exists -> (
        (* Fine if it is already a directory. *)
        let* _, ino = resolve t path in
        if ino.Core.kind = dir_kind then Ok () else Error Fs_core.Not_a_directory)
    | Error Fs_core.Not_found -> (
        match List.rev (split_path path) with
        | [] -> Error Fs_core.Invalid_path
        | _ :: rev_parent when rev_parent <> [] ->
            let parent = String.concat "/" (List.rev rev_parent) in
            let* () = mkdir_p t parent in
            mkdir t path
        | _ -> Error Fs_core.Not_found)
    | Error _ as err -> err

  (* ---------------------------------------------------------------- *)
  (* File operations                                                   *)
  (* ---------------------------------------------------------------- *)

  let resolve_file t path =
    let* parent_idx, parent_ino, name = resolve_parent t path in
    let* hit = dir_lookup t parent_ino name in
    match hit with
    | None -> Error Fs_core.Not_found
    | Some (slot, (_, idx)) ->
        let* ino = Core.load_inode t idx in
        if not ino.Core.used then Error (Fs_core.Corrupt "entry to free inode")
        else Ok (parent_idx, parent_ino, slot, idx, ino)

  let as_file (ino : Core.inode) = if ino.Core.kind = dir_kind then Error Fs_core.Is_a_directory else Ok ino

  let write t path ?(offset = 0) data =
    let* _, _, _, idx, ino = resolve_file t path in
    let* ino = as_file ino in
    let* _ino = Core.write_inode_range t idx ino ~offset data in
    Ok ()

  let append t path data =
    let* _, _, _, idx, ino = resolve_file t path in
    let* ino = as_file ino in
    let* _ino = Core.write_inode_range t idx ino ~offset:ino.Core.size data in
    Ok ()

  let read t path =
    let* _, ino = resolve t path in
    let* ino = as_file ino in
    Core.read_inode_range t ino ~offset:0 ~length:ino.Core.size

  let read_range t path ~offset ~length =
    let* _, ino = resolve t path in
    let* ino = as_file ino in
    Core.read_inode_range t ino ~offset ~length

  let truncate t path =
    let* _, _, _, idx, ino = resolve_file t path in
    let* _ = as_file ino in
    let* () = Core.free_inode_blocks t ino in
    Core.store_inode t idx { Core.empty_inode with used = true; kind = file_kind }

  let unlink t path =
    let* parent_idx, parent_ino, slot, idx, ino = resolve_file t path in
    let* _ = as_file ino in
    let* () = Core.free_inode_blocks t ino in
    let* () = Core.store_inode t idx Core.empty_inode in
    dir_remove t parent_idx parent_ino slot

  let rmdir t path =
    if split_path path = [] then Error Fs_core.Invalid_path
    else
      let* parent_idx, parent_ino, slot, idx, ino = resolve_file t path in
      if ino.Core.kind <> dir_kind then Error Fs_core.Not_a_directory
      else
        let* empty = dir_is_empty t ino in
        if not empty then Error Fs_core.Directory_not_empty
        else begin
          let* () = Core.free_inode_blocks t ino in
          let* () = Core.store_inode t idx Core.empty_inode in
          dir_remove t parent_idx parent_ino slot
        end

  (* ---------------------------------------------------------------- *)
  (* Queries                                                           *)
  (* ---------------------------------------------------------------- *)

  let list t path =
    let* _, ino = resolve t path in
    if ino.Core.kind <> dir_kind then Error Fs_core.Not_a_directory
    else
      let* entries = dir_entries t ino in
      List.fold_left
        (fun acc (_, (name, idx)) ->
          let* acc = acc in
          let* child = Core.load_inode t idx in
          Ok ({ name; kind = kind_of_char child.Core.kind } :: acc))
        (Ok []) entries
      |> Result.map List.rev

  let exists t path = match resolve t path with Ok _ -> true | Error _ -> false

  let kind_of t path =
    let* _, ino = resolve t path in
    Ok (kind_of_char ino.Core.kind)

  let stat t path =
    let* idx, ino = resolve t path in
    let* blocks = Core.blocks_used t ino in
    Ok { size = ino.Core.size; blocks_used = blocks; inode = idx; kind = kind_of_char ino.Core.kind }

  let rename t src dst =
    let src_components = split_path src in
    if src_components = [] then Error Fs_core.Invalid_path
    else begin
      (* Reject moving a directory under itself: dst's components must not
         extend src's. *)
      let dst_components = split_path dst in
      let rec is_prefix a b =
        match (a, b) with
        | [], _ -> true
        | _, [] -> false
        | x :: xs, y :: ys -> x = y && is_prefix xs ys
      in
      if is_prefix src_components dst_components then Error Fs_core.Invalid_path
      else
        let* src_parent_idx, src_parent_ino, src_slot, idx, _ino = resolve_file t src in
        let* dst_parent_idx, dst_parent_ino, dst_name = resolve_parent t dst in
        let* existing = dir_lookup t dst_parent_ino dst_name in
        match existing with
        | Some _ -> Error Fs_core.Already_exists
        | None ->
            (* Insert at the destination first: a crash between the two
               steps leaves the node reachable (twice) rather than lost. *)
            let* () = dir_add t dst_parent_idx dst_parent_ino dst_name idx in
            (* The source directory's inode may just have changed (same
               parent): reload before rewriting the slot. *)
            let* src_parent_ino =
              if src_parent_idx = dst_parent_idx then Core.load_inode t src_parent_idx
              else Ok src_parent_ino
            in
            dir_remove t src_parent_idx src_parent_ino src_slot
    end

  let walk t path =
    let rec go prefix idx acc =
      let* ino = Core.load_inode t idx in
      if ino.Core.kind <> dir_kind then Ok acc
      else
        let* entries = dir_entries t ino in
        List.fold_left
          (fun acc (_, (name, child_idx)) ->
            let* acc = acc in
            let child_path = if prefix = "" then name else prefix ^ "/" ^ name in
            let* child = Core.load_inode t child_idx in
            let acc = child_path :: acc in
            if child.Core.kind = dir_kind then go child_path child_idx acc else Ok acc)
          (Ok acc) entries
    in
    let* idx, ino = resolve t path in
    if ino.Core.kind <> dir_kind then Error Fs_core.Not_a_directory
    else
      let prefix = String.concat "/" (split_path path) in
      let* paths = go prefix idx [] in
      Ok (List.rev paths)

  (* ---------------------------------------------------------------- *)
  (* Fsck: tree walk + block accounting                                *)
  (* ---------------------------------------------------------------- *)

  let fsck t =
    let visited = Hashtbl.create 64 in
    (* Reachability walk from the root, rejecting inode sharing. *)
    let rec visit idx acc =
      if Hashtbl.mem visited idx then Error (Fs_core.Corrupt (Printf.sprintf "inode %d linked twice" idx))
      else begin
        Hashtbl.add visited idx ();
        let* ino = Core.load_inode t idx in
        if not ino.Core.used then Error (Fs_core.Corrupt (Printf.sprintf "entry to free inode %d" idx))
        else begin
          let acc = (idx, ino) :: acc in
          if ino.Core.kind <> dir_kind then Ok acc
          else
            let* entries = dir_entries t ino in
            List.fold_left
              (fun acc (_, (_, child)) ->
                let* acc = acc in
                visit child acc)
              (Ok acc) entries
        end
      end
    in
    let* reachable = visit root_inode [] in
    (* Every used inode must be reachable (no orphans). *)
    let rec check_orphans idx =
      if idx >= Core.n_inodes t then Ok ()
      else
        let* ino = Core.load_inode t idx in
        if ino.Core.used && not (Hashtbl.mem visited idx) then
          Error (Fs_core.Corrupt (Printf.sprintf "orphan inode %d" idx))
        else check_orphans (idx + 1)
    in
    let* () = check_orphans 0 in
    Core.fsck_blocks t ~live:reachable
end
