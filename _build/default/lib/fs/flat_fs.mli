(** A small UNIX-style file system over the ordinary block-device interface.

    The point of this module in the reproduction is the paper's transparency
    argument (Section 2): because the reliable device presents the same
    interface as one disk, "the file system requires no modification and
    normal file system semantics are preserved".  [Flat_fs] is accordingly a
    functor over {!Blockdev.Device_intf.S}: the {e same} code mounts a
    {!Blockdev.Mem_device} or a [Blockrep.Reliable_device].

    On-disk layout (512-byte blocks, all integers big-endian):
    - block 0: superblock (magic, geometry);
    - allocation bitmap, one byte per data block;
    - inode table, 64-byte inodes (8 per block): flags, size, 11 direct
      block pointers, 1 singly indirect pointer — files up to
      [(11 + 128) * 512] bytes;
    - a flat root directory held in inode 0, with 32-byte entries
      (27-byte names).

    Unallocated file ranges read back as zeroes (sparse files). *)

type error = Fs_core.error =
  | Device_unavailable  (** the device returned None/false mid-operation *)
  | No_space  (** no free data block or inode *)
  | Not_found
  | Already_exists
  | Name_too_long  (** names are limited to 27 bytes *)
  | File_too_large
  | Not_formatted  (** mount: bad magic or wrong flavour *)
  | Not_a_directory  (** unused here; shared with {!Hier_fs} *)
  | Is_a_directory  (** unused here; shared with {!Hier_fs} *)
  | Directory_not_empty  (** unused here; shared with {!Hier_fs} *)
  | Invalid_path  (** unused here; shared with {!Hier_fs} *)
  | Corrupt of string  (** fsck or mount found an inconsistency *)

val error_to_string : error -> string

type stats = { size : int; blocks_used : int; inode : int }

module Make (Dev : Blockdev.Device_intf.S) : sig
  type t

  val format : ?n_inodes:int -> Dev.t -> (t, error) result
  (** Write a fresh file system (default 64 inodes) and return it mounted.
      Needs a device of at least 8 blocks. *)

  val mount : Dev.t -> (t, error) result
  (** Read and validate the superblock of an already formatted device. *)

  val device : t -> Dev.t

  val create : t -> string -> (unit, error) result
  (** Create an empty file. *)

  val write : t -> string -> ?offset:int -> bytes -> (unit, error) result
  (** Write bytes at [offset] (default 0), extending the file as needed. *)

  val append : t -> string -> bytes -> (unit, error) result

  val read : t -> string -> (bytes, error) result
  (** The whole file. *)

  val read_range : t -> string -> offset:int -> length:int -> (bytes, error) result
  (** [length] bytes from [offset]; reading past the end is an error. *)

  val truncate : t -> string -> (unit, error) result
  (** Free the file's blocks and reset its size to zero. *)

  val delete : t -> string -> (unit, error) result
  val exists : t -> string -> bool
  val list : t -> (string list, error) result
  val stat : t -> string -> (stats, error) result

  val free_blocks : t -> (int, error) result
  (** Unallocated data blocks remaining. *)

  val fsck : t -> (unit, error) result
  (** Structural check: superblock sane, every allocated block referenced
      exactly once, directory entries point at live inodes, sizes within
      pointer reach. *)
end
