(** A hierarchical file system over the ordinary block-device interface.

    Same on-disk machinery as {!Flat_fs} ({!Fs_core}: 512-byte blocks,
    64-byte inodes, singly indirect pointers), plus directories: an inode
    is either a regular file or a directory whose contents are 32-byte
    entries naming children.  Inode 0 is the root directory.

    Paths are slash-separated, absolute or not ("/a/b" ≡ "a/b"); each
    component is limited to 27 bytes.  There are no hard links, so the
    namespace is a tree and every inode has exactly one parent.

    Like {!Flat_fs}, this is a functor over {!Blockdev.Device_intf.S} and
    runs unchanged on one disk or on a replicated reliable device — the
    point of the paper's Section 2. *)

type entry_kind = File | Directory

type entry = { name : string; kind : entry_kind }

type stats = { size : int; blocks_used : int; inode : int; kind : entry_kind }

module Make (Dev : Blockdev.Device_intf.S) : sig
  type t

  val format : ?n_inodes:int -> Dev.t -> (t, Fs_core.error) result
  (** Fresh hierarchical file system (default 128 inodes), root mounted. *)

  val mount : Dev.t -> (t, Fs_core.error) result
  val device : t -> Dev.t

  (** {1 Directories} *)

  val mkdir : t -> string -> (unit, Fs_core.error) result
  (** Create one directory; the parent must exist
      ([mkdir "/a/b"] needs [/a]). *)

  val mkdir_p : t -> string -> (unit, Fs_core.error) result
  (** Create a directory and any missing ancestors. *)

  val list : t -> string -> (entry list, Fs_core.error) result
  (** Entries of a directory, in directory order. *)

  val rmdir : t -> string -> (unit, Fs_core.error) result
  (** Remove an {e empty} directory ([Directory_not_empty] otherwise;
      the root cannot be removed). *)

  (** {1 Files} *)

  val create : t -> string -> (unit, Fs_core.error) result
  val write : t -> string -> ?offset:int -> bytes -> (unit, Fs_core.error) result
  val append : t -> string -> bytes -> (unit, Fs_core.error) result
  val read : t -> string -> (bytes, Fs_core.error) result
  val read_range : t -> string -> offset:int -> length:int -> (bytes, Fs_core.error) result
  val truncate : t -> string -> (unit, Fs_core.error) result
  val unlink : t -> string -> (unit, Fs_core.error) result
  (** Remove a file ([Is_a_directory] on a directory — use {!rmdir}). *)

  (** {1 Common} *)

  val exists : t -> string -> bool
  val kind_of : t -> string -> (entry_kind, Fs_core.error) result
  val stat : t -> string -> (stats, Fs_core.error) result

  val rename : t -> string -> string -> (unit, Fs_core.error) result
  (** [rename t src dst] moves a file or directory to a new path, whose
      parent must exist and whose final component must be free
      ([Already_exists] otherwise).  Moving a directory into its own
      subtree, or moving the root, is [Invalid_path]. *)

  val walk : t -> string -> (string list, Fs_core.error) result
  (** Every path under (and including) the given directory, depth-first —
      the recursive listing. *)

  val fsck : t -> (unit, Fs_core.error) result
  (** Tree walk + block accounting: every used inode reachable exactly
      once from the root, all pointers valid, bitmap exact. *)
end
