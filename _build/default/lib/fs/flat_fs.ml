type error = Fs_core.error =
  | Device_unavailable
  | No_space
  | Not_found
  | Already_exists
  | Name_too_long
  | File_too_large
  | Not_formatted
  | Not_a_directory
  | Is_a_directory
  | Directory_not_empty
  | Invalid_path
  | Corrupt of string

let error_to_string = Fs_core.error_to_string

type stats = { size : int; blocks_used : int; inode : int }

let root_inode = 0
let flavour = 'F'
let file_kind = 'f'
let dirent_size = Fs_core.dirent_size

let ( let* ) = Result.bind

module Make (Dev : Blockdev.Device_intf.S) = struct
  module Core = Fs_core.Make (Dev)

  type t = Core.t

  let device = Core.device

  let format ?(n_inodes = 64) dev = Core.format ~flavour ~n_inodes ~root_kind:'d' dev
  let mount dev = Core.mount ~flavour dev

  (* ---------------------------------------------------------------- *)
  (* Directory (inode 0, flat)                                         *)
  (* ---------------------------------------------------------------- *)

  let with_directory t f =
    let* dir_ino = Core.load_inode t root_inode in
    let* contents = Core.read_inode_range t dir_ino ~offset:0 ~length:dir_ino.Core.size in
    f dir_ino contents

  let dir_entries t =
    with_directory t (fun _ contents ->
        let n = Bytes.length contents / dirent_size in
        let rec collect i acc =
          if i >= n then Ok (List.rev acc)
          else
            match Core.decode_dirent contents (i * dirent_size) with
            | Some entry -> collect (i + 1) ((i, entry) :: acc)
            | None -> collect (i + 1) acc
        in
        collect 0 [])

  let dir_lookup t name =
    let* entries = dir_entries t in
    Ok (List.find_opt (fun (_, (entry_name, _)) -> String.equal entry_name name) entries)

  let dir_add t name inode =
    with_directory t (fun dir_ino contents ->
        let n = Bytes.length contents / dirent_size in
        let rec first_free i =
          if i >= n then n
          else if Core.decode_dirent contents (i * dirent_size) = None then i
          else first_free (i + 1)
        in
        let slot = first_free 0 in
        let* _ino =
          Core.write_inode_range t root_inode dir_ino ~offset:(slot * dirent_size)
            (Core.encode_dirent name inode)
        in
        Ok ())

  let dir_remove t slot =
    with_directory t (fun dir_ino _ ->
        let* _ino =
          Core.write_inode_range t root_inode dir_ino ~offset:(slot * dirent_size)
            (Bytes.make dirent_size '\000')
        in
        Ok ())

  (* ---------------------------------------------------------------- *)
  (* Public operations                                                 *)
  (* ---------------------------------------------------------------- *)

  let create t name =
    let* () = Core.check_name name in
    let* existing = dir_lookup t name in
    match existing with
    | Some _ -> Error Already_exists
    | None ->
        let* idx = Core.find_free_inode t in
        let* () = Core.store_inode t idx { Core.empty_inode with used = true; kind = file_kind } in
        dir_add t name idx

  let lookup_inode t name =
    let* () = Core.check_name name in
    let* entry = dir_lookup t name in
    match entry with
    | None -> Error Not_found
    | Some (slot, (_, idx)) ->
        let* ino = Core.load_inode t idx in
        if not ino.Core.used then Error (Corrupt "directory entry to free inode") else Ok (slot, idx, ino)

  let write t name ?(offset = 0) data =
    let* _, idx, ino = lookup_inode t name in
    let* _ino = Core.write_inode_range t idx ino ~offset data in
    Ok ()

  let append t name data =
    let* _, idx, ino = lookup_inode t name in
    let* _ino = Core.write_inode_range t idx ino ~offset:ino.Core.size data in
    Ok ()

  let read t name =
    let* _, _, ino = lookup_inode t name in
    Core.read_inode_range t ino ~offset:0 ~length:ino.Core.size

  let read_range t name ~offset ~length =
    let* _, _, ino = lookup_inode t name in
    Core.read_inode_range t ino ~offset ~length

  let truncate t name =
    let* _, idx, ino = lookup_inode t name in
    let* () = Core.free_inode_blocks t ino in
    Core.store_inode t idx { Core.empty_inode with used = true; kind = file_kind }

  let delete t name =
    let* slot, idx, ino = lookup_inode t name in
    let* () = Core.free_inode_blocks t ino in
    let* () = Core.store_inode t idx Core.empty_inode in
    dir_remove t slot

  let exists t name = match lookup_inode t name with Ok _ -> true | Error _ -> false

  let list t =
    let* entries = dir_entries t in
    Ok (List.map (fun (_, (name, _)) -> name) entries)

  let stat t name =
    let* _, idx, ino = lookup_inode t name in
    let* blocks = Core.blocks_used t ino in
    Ok { size = ino.Core.size; blocks_used = blocks; inode = idx }

  let free_blocks = Core.free_blocks

  let fsck t =
    let rec live_inodes idx acc =
      if idx >= Core.n_inodes t then Ok (List.rev acc)
      else
        let* ino = Core.load_inode t idx in
        live_inodes (idx + 1) (if ino.Core.used then (idx, ino) :: acc else acc)
    in
    let* live = live_inodes 0 [] in
    let* () = Core.fsck_blocks t ~live in
    (* Directory entries must reference live file inodes. *)
    let* entries = dir_entries t in
    List.fold_left
      (fun acc (_, (name, idx)) ->
        let* () = acc in
        if idx <= 0 || idx >= Core.n_inodes t then
          Error (Corrupt (Printf.sprintf "entry %s: bad inode %d" name idx))
        else
          match List.assoc_opt idx live with
          | Some _ -> Ok ()
          | None -> Error (Corrupt (Printf.sprintf "entry %s: free inode" name)))
      (Ok ()) entries
end
