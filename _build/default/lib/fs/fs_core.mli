(** Shared on-disk machinery of the file systems.

    Both {!Flat_fs} (single flat directory) and {!Hier_fs} (hierarchical
    paths) use the same layout — superblock, byte-per-block allocation
    bitmap, 64-byte inodes with 11 direct pointers and one singly indirect
    pointer — and differ only in their namespace logic.  This functor
    provides the common layer: geometry, inode IO, block allocation,
    file-extent reads/writes and the block-accounting part of fsck.

    The superblock carries a one-byte {e flavour} so a device formatted by
    one file system is not silently mounted by the other. *)

type error =
  | Device_unavailable
  | No_space
  | Not_found
  | Already_exists
  | Name_too_long
  | File_too_large
  | Not_formatted
  | Not_a_directory  (** hierarchical: path component is a regular file *)
  | Is_a_directory  (** hierarchical: file operation on a directory *)
  | Directory_not_empty  (** hierarchical: delete of a non-empty directory *)
  | Invalid_path  (** hierarchical: empty path, or rename into own subtree *)
  | Corrupt of string

val error_to_string : error -> string

val max_name : int
(** Longest directory-entry name (27 bytes). *)

val dirent_size : int
val max_file_bytes : int
(** Largest representable file: [(11 + 128) * 512] bytes. *)

module Make (Dev : Blockdev.Device_intf.S) : sig
  type t

  val device : t -> Dev.t
  val n_inodes : t -> int

  (** {1 Formatting and mounting} *)

  val format : flavour:char -> n_inodes:int -> root_kind:char -> Dev.t -> (t, error) result
  (** Lay out a fresh file system; inode 0 is created with [root_kind]. *)

  val mount : flavour:char -> Dev.t -> (t, error) result

  (** {1 Inodes} *)

  type inode = { used : bool; kind : char; size : int; direct : int array; indirect : int }

  val empty_inode : inode
  val load_inode : t -> int -> (inode, error) result
  val store_inode : t -> int -> inode -> (unit, error) result
  val find_free_inode : t -> (int, error) result
  (** Lowest unused inode index above 0 (0 is always the root). *)

  (** {1 File extents} *)

  val read_inode_range : t -> inode -> offset:int -> length:int -> (bytes, error) result
  (** Bounds-checked against [inode.size]; holes read as zeroes. *)

  val write_inode_range : t -> int -> inode -> offset:int -> bytes -> (inode, error) result
  (** Writes and persists the updated inode (size grows as needed);
      returns it. *)

  val free_inode_blocks : t -> inode -> (unit, error) result
  (** Release every data block (and the indirect block) of an inode. *)

  val blocks_used : t -> inode -> (int, error) result

  (** {1 Directory entries}

      A directory's contents are just a file of fixed 32-byte entries:
      name (27 bytes, NUL-padded), inode number, a liveness byte. *)

  val decode_dirent : bytes -> int -> (string * int) option
  val encode_dirent : string -> int -> bytes
  val check_name : string -> (unit, error) result

  (** {1 Allocation} *)

  val free_blocks : t -> (int, error) result

  (** {1 Fsck support} *)

  val fsck_blocks : t -> live:(int * inode) list -> (unit, error) result
  (** Verify that the blocks referenced from [live] inodes are in range,
      referenced once, and agree exactly with the allocation bitmap. *)
end
