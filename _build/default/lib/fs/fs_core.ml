module Block = Blockdev.Block

type error =
  | Device_unavailable
  | No_space
  | Not_found
  | Already_exists
  | Name_too_long
  | File_too_large
  | Not_formatted
  | Not_a_directory
  | Is_a_directory
  | Directory_not_empty
  | Invalid_path
  | Corrupt of string

let error_to_string = function
  | Device_unavailable -> "device unavailable"
  | No_space -> "no space left on device"
  | Not_found -> "no such file or directory"
  | Already_exists -> "file exists"
  | Name_too_long -> "name too long"
  | File_too_large -> "file too large"
  | Not_formatted -> "device is not formatted"
  | Not_a_directory -> "not a directory"
  | Is_a_directory -> "is a directory"
  | Directory_not_empty -> "directory not empty"
  | Invalid_path -> "invalid path"
  | Corrupt msg -> "corrupt file system: " ^ msg

(* Geometry constants. *)
let magic = 0x42465331 (* "BFS1" *)
let inode_size = 64
let inodes_per_block = Block.size / inode_size
let direct_pointers = 11
let pointers_per_block = Block.size / 4
let max_file_blocks = direct_pointers + pointers_per_block
let max_file_bytes = max_file_blocks * Block.size
let dirent_size = 32
let max_name = 27

let ( let* ) = Result.bind

let get_u32 b off = Int32.to_int (Bytes.get_int32_be b off) land 0xFFFFFFFF
let set_u32 b off v = Bytes.set_int32_be b off (Int32.of_int v)

module Make (Dev : Blockdev.Device_intf.S) = struct
  type geometry = {
    total_blocks : int;
    n_inodes : int;
    bitmap_start : int;
    bitmap_blocks : int;
    inode_start : int;
    inode_blocks : int;
    data_start : int;
  }

  type t = { dev : Dev.t; geo : geometry }

  let device t = t.dev
  let n_inodes t = t.geo.n_inodes

  (* ---------------------------------------------------------------- *)
  (* Raw block IO                                                      *)
  (* ---------------------------------------------------------------- *)

  let read_raw dev k =
    match Dev.read_block dev k with Some b -> Ok (Block.to_bytes b) | None -> Error Device_unavailable

  let write_raw dev k bytes =
    if Dev.write_block dev k (Block.of_bytes bytes) then Ok () else Error Device_unavailable

  (* ---------------------------------------------------------------- *)
  (* Superblock                                                        *)
  (* ---------------------------------------------------------------- *)

  let geometry_of_superblock ~flavour b =
    if get_u32 b 0 <> magic then Error Not_formatted
    else if Bytes.get b 32 <> flavour then Error Not_formatted
    else begin
      let geo =
        {
          total_blocks = get_u32 b 4;
          n_inodes = get_u32 b 8;
          bitmap_start = get_u32 b 12;
          bitmap_blocks = get_u32 b 16;
          inode_start = get_u32 b 20;
          inode_blocks = get_u32 b 24;
          data_start = get_u32 b 28;
        }
      in
      if geo.data_start > geo.total_blocks || geo.bitmap_start <> 1 then
        Error (Corrupt "superblock geometry out of range")
      else Ok geo
    end

  let superblock_bytes ~flavour geo =
    let b = Bytes.make Block.size '\000' in
    set_u32 b 0 magic;
    set_u32 b 4 geo.total_blocks;
    set_u32 b 8 geo.n_inodes;
    set_u32 b 12 geo.bitmap_start;
    set_u32 b 16 geo.bitmap_blocks;
    set_u32 b 20 geo.inode_start;
    set_u32 b 24 geo.inode_blocks;
    set_u32 b 28 geo.data_start;
    Bytes.set b 32 flavour;
    b

  let plan_geometry ~total_blocks ~n_inodes =
    let inode_blocks = (n_inodes + inodes_per_block - 1) / inodes_per_block in
    let bitmap_blocks = ((total_blocks + Block.size - 1) / Block.size) + 1 in
    let bitmap_start = 1 in
    let inode_start = bitmap_start + bitmap_blocks in
    let data_start = inode_start + inode_blocks in
    if data_start >= total_blocks then None
    else Some { total_blocks; n_inodes; bitmap_start; bitmap_blocks; inode_start; inode_blocks; data_start }

  (* ---------------------------------------------------------------- *)
  (* Inodes                                                            *)
  (* ---------------------------------------------------------------- *)

  type inode = { used : bool; kind : char; size : int; direct : int array; indirect : int }

  let empty_inode =
    { used = false; kind = '\000'; size = 0; direct = Array.make direct_pointers 0; indirect = 0 }

  let inode_location geo idx =
    let block = geo.inode_start + (idx / inodes_per_block) in
    let off = idx mod inodes_per_block * inode_size in
    (block, off)

  let decode_inode b off =
    {
      used = Bytes.get b off <> '\000';
      kind = Bytes.get b (off + 1);
      size = get_u32 b (off + 4);
      direct = Array.init direct_pointers (fun i -> get_u32 b (off + 8 + (4 * i)));
      indirect = get_u32 b (off + 8 + (4 * direct_pointers));
    }

  let encode_inode b off ino =
    Bytes.set b off (if ino.used then '\001' else '\000');
    Bytes.set b (off + 1) ino.kind;
    set_u32 b (off + 4) ino.size;
    Array.iteri (fun i p -> set_u32 b (off + 8 + (4 * i)) p) ino.direct;
    set_u32 b (off + 8 + (4 * direct_pointers)) ino.indirect

  let load_inode t idx =
    if idx < 0 || idx >= t.geo.n_inodes then Error (Corrupt "inode index out of range")
    else begin
      let block, off = inode_location t.geo idx in
      let* b = read_raw t.dev block in
      Ok (decode_inode b off)
    end

  let store_inode t idx ino =
    let block, off = inode_location t.geo idx in
    let* b = read_raw t.dev block in
    encode_inode b off ino;
    write_raw t.dev block b

  let find_free_inode t =
    let rec scan idx =
      if idx >= t.geo.n_inodes then Error No_space
      else
        let* ino = load_inode t idx in
        if ino.used then scan (idx + 1) else Ok idx
    in
    scan 1

  (* ---------------------------------------------------------------- *)
  (* Allocation bitmap (one byte per data block)                       *)
  (* ---------------------------------------------------------------- *)

  let bitmap_location geo data_block =
    let idx = data_block - geo.data_start in
    (geo.bitmap_start + (idx / Block.size), idx mod Block.size)

  let set_allocated t data_block allocated =
    let block, off = bitmap_location t.geo data_block in
    let* b = read_raw t.dev block in
    Bytes.set b off (if allocated then '\001' else '\000');
    write_raw t.dev block b

  let is_allocated t data_block =
    let block, off = bitmap_location t.geo data_block in
    let* b = read_raw t.dev block in
    Ok (Bytes.get b off <> '\000')

  let alloc_block t =
    let rec scan k =
      if k >= t.geo.total_blocks then Error No_space
      else
        let* allocated = is_allocated t k in
        if not allocated then begin
          let* () = set_allocated t k true in
          (* Fresh blocks must read back as zeroes even if recycled. *)
          let* () = write_raw t.dev k (Bytes.make Block.size '\000') in
          Ok k
        end
        else scan (k + 1)
    in
    scan t.geo.data_start

  let free_block t k = set_allocated t k false

  let free_blocks t =
    let rec count k acc =
      if k >= t.geo.total_blocks then Ok acc
      else
        let* allocated = is_allocated t k in
        count (k + 1) (if allocated then acc else acc + 1)
    in
    count t.geo.data_start 0

  (* ---------------------------------------------------------------- *)
  (* File block mapping                                                *)
  (* ---------------------------------------------------------------- *)

  let pointer_of t ino fbi =
    if fbi < direct_pointers then Ok ino.direct.(fbi)
    else if fbi < max_file_blocks then
      if ino.indirect = 0 then Ok 0
      else begin
        let* b = read_raw t.dev ino.indirect in
        Ok (get_u32 b (4 * (fbi - direct_pointers)))
      end
    else Error File_too_large

  let ensure_block t ino fbi =
    let* existing = pointer_of t ino fbi in
    if existing <> 0 then Ok (existing, ino)
    else if fbi < direct_pointers then begin
      let* fresh = alloc_block t in
      let direct = Array.copy ino.direct in
      direct.(fbi) <- fresh;
      Ok (fresh, { ino with direct })
    end
    else begin
      let* ino =
        if ino.indirect <> 0 then Ok ino
        else
          let* ib = alloc_block t in
          Ok { ino with indirect = ib }
      in
      let* b = read_raw t.dev ino.indirect in
      let* fresh = alloc_block t in
      set_u32 b (4 * (fbi - direct_pointers)) fresh;
      let* () = write_raw t.dev ino.indirect b in
      Ok (fresh, ino)
    end

  let iter_file_blocks t ino f =
    let n_blocks = (ino.size + Block.size - 1) / Block.size in
    let rec go fbi acc =
      if fbi >= n_blocks then Ok acc
      else
        let* ptr = pointer_of t ino fbi in
        let* acc = f acc fbi ptr in
        go (fbi + 1) acc
    in
    go 0 ()

  (* ---------------------------------------------------------------- *)
  (* File content IO                                                   *)
  (* ---------------------------------------------------------------- *)

  let read_inode_range t ino ~offset ~length =
    if offset < 0 || length < 0 || offset + length > ino.size then Error Not_found
    else begin
      let out = Bytes.make length '\000' in
      let rec go pos =
        if pos >= length then Ok out
        else begin
          let abs = offset + pos in
          let fbi = abs / Block.size in
          let in_block = abs mod Block.size in
          let chunk = Int.min (Block.size - in_block) (length - pos) in
          let* ptr = pointer_of t ino fbi in
          let* () =
            if ptr = 0 then Ok ()
            else
              let* b = read_raw t.dev ptr in
              Bytes.blit b in_block out pos chunk;
              Ok ()
          in
          go (pos + chunk)
        end
      in
      go 0
    end

  let write_inode_range t idx ino ~offset data =
    let length = Bytes.length data in
    if offset < 0 then Error (Corrupt "negative offset")
    else if offset + length > max_file_bytes then Error File_too_large
    else begin
      let rec go ino pos =
        if pos >= length then Ok ino
        else begin
          let abs = offset + pos in
          let fbi = abs / Block.size in
          let in_block = abs mod Block.size in
          let chunk = Int.min (Block.size - in_block) (length - pos) in
          let* ptr, ino = ensure_block t ino fbi in
          let* b = read_raw t.dev ptr in
          Bytes.blit data pos b in_block chunk;
          let* () = write_raw t.dev ptr b in
          go ino (pos + chunk)
        end
      in
      let* ino = go ino 0 in
      let ino = { ino with size = Int.max ino.size (offset + length); used = true } in
      let* () = store_inode t idx ino in
      Ok ino
    end

  let free_inode_blocks t ino =
    let* () = iter_file_blocks t ino (fun () _ ptr -> if ptr = 0 then Ok () else free_block t ptr) in
    if ino.indirect <> 0 then free_block t ino.indirect else Ok ()

  let blocks_used t ino =
    let count = ref 0 in
    let* () =
      iter_file_blocks t ino (fun () _ ptr ->
          if ptr <> 0 then incr count;
          Ok ())
    in
    Ok !count

  (* ---------------------------------------------------------------- *)
  (* Directory entries                                                 *)
  (* ---------------------------------------------------------------- *)

  let decode_dirent b off =
    if Bytes.get b (off + 31) = '\000' then None
    else begin
      let raw = Bytes.sub_string b off max_name in
      let name = match String.index_opt raw '\000' with Some i -> String.sub raw 0 i | None -> raw in
      Some (name, get_u32 b (off + 27))
    end

  let encode_dirent name inode =
    let b = Bytes.make dirent_size '\000' in
    Bytes.blit_string name 0 b 0 (String.length name);
    set_u32 b 27 inode;
    Bytes.set b 31 '\001';
    b

  let check_name name =
    if String.length name = 0 || String.length name > max_name || String.contains name '\000' then
      Error Name_too_long
    else Ok ()

  (* ---------------------------------------------------------------- *)
  (* Format / mount                                                    *)
  (* ---------------------------------------------------------------- *)

  let format ~flavour ~n_inodes ~root_kind dev =
    match plan_geometry ~total_blocks:(Dev.capacity dev) ~n_inodes with
    | None -> Error No_space
    | Some geo ->
        let t = { dev; geo } in
        let* () = write_raw dev 0 (superblock_bytes ~flavour geo) in
        let zero = Bytes.make Block.size '\000' in
        let rec zero_range k upto =
          if k >= upto then Ok () else let* () = write_raw dev k zero in zero_range (k + 1) upto
        in
        let* () = zero_range geo.bitmap_start geo.data_start in
        let* () = store_inode t 0 { empty_inode with used = true; kind = root_kind } in
        Ok t

  let mount ~flavour dev =
    let* sb = read_raw dev 0 in
    let* geo = geometry_of_superblock ~flavour sb in
    if geo.total_blocks <> Dev.capacity dev then Error (Corrupt "device size does not match superblock")
    else begin
      let t = { dev; geo } in
      let* root = load_inode t 0 in
      if not root.used then Error (Corrupt "missing root directory") else Ok t
    end

  (* ---------------------------------------------------------------- *)
  (* Fsck block accounting                                             *)
  (* ---------------------------------------------------------------- *)

  let fsck_blocks t ~live =
    let seen = Hashtbl.create 64 in
    let claim idx ptr =
      if ptr < t.geo.data_start || ptr >= t.geo.total_blocks then
        Error (Corrupt (Printf.sprintf "inode %d: pointer %d outside data region" idx ptr))
      else if Hashtbl.mem seen ptr then
        Error (Corrupt (Printf.sprintf "block %d multiply referenced" ptr))
      else begin
        Hashtbl.add seen ptr ();
        Ok ()
      end
    in
    let* () =
      List.fold_left
        (fun acc (idx, ino) ->
          let* () = acc in
          if ino.size > max_file_bytes then
            Error (Corrupt (Printf.sprintf "inode %d size beyond pointer reach" idx))
          else begin
            let* () =
              iter_file_blocks t ino (fun () _ ptr -> if ptr = 0 then Ok () else claim idx ptr)
            in
            if ino.indirect <> 0 then claim idx ino.indirect else Ok ()
          end)
        (Ok ()) live
    in
    let rec check_bitmap k =
      if k >= t.geo.total_blocks then Ok ()
      else
        let* allocated = is_allocated t k in
        let referenced = Hashtbl.mem seen k in
        if allocated && not referenced then Error (Corrupt (Printf.sprintf "block %d leaked" k))
        else if referenced && not allocated then
          Error (Corrupt (Printf.sprintf "block %d in use but free in bitmap" k))
        else check_bitmap (k + 1)
    in
    check_bitmap t.geo.data_start
end
