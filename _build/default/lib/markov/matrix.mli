(** Dense linear algebra, just enough to solve steady-state equations.

    The paper derived its availability expressions symbolically with MACSYMA;
    we instead solve the balance equations numerically, which works for any
    number of copies and validates every closed form. *)

type t
(** A dense, mutable, row-major matrix of floats. *)

val create : rows:int -> cols:int -> t
(** Zero-filled matrix. *)

val of_rows : float array array -> t
(** Copies the given rows; all rows must have equal length. *)

val rows : t -> int
val cols : t -> int
val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit
val add : t -> int -> int -> float -> unit
(** In-place [m.(i).(j) <- m.(i).(j) +. v]. *)

val copy : t -> t
val transpose : t -> t

val mul_vec : t -> float array -> float array
(** Matrix–vector product; the vector length must equal [cols]. *)

val solve : t -> float array -> float array
(** [solve a b] returns [x] with [a x = b], by Gaussian elimination with
    partial pivoting.  [a] must be square and is not modified.  Raises
    [Failure "Matrix.solve: singular matrix"] when no pivot exceeds
    [1e-12]. *)

val pp : Format.formatter -> t -> unit
