type t = { rows : int; cols : int; data : float array }

let create ~rows ~cols =
  if rows <= 0 || cols <= 0 then invalid_arg "Matrix.create: dimensions must be positive";
  { rows; cols; data = Array.make (rows * cols) 0.0 }

let rows m = m.rows
let cols m = m.cols

let index m i j =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then invalid_arg "Matrix: index out of range";
  (i * m.cols) + j

let get m i j = m.data.(index m i j)
let set m i j v = m.data.(index m i j) <- v
let add m i j v = m.data.(index m i j) <- m.data.(index m i j) +. v

let of_rows rows_arr =
  let rows = Array.length rows_arr in
  if rows = 0 then invalid_arg "Matrix.of_rows: empty";
  let cols = Array.length rows_arr.(0) in
  let m = create ~rows ~cols in
  Array.iteri
    (fun i row ->
      if Array.length row <> cols then invalid_arg "Matrix.of_rows: ragged rows";
      Array.iteri (fun j v -> set m i j v) row)
    rows_arr;
  m

let copy m = { m with data = Array.copy m.data }

let transpose m =
  let t = create ~rows:m.cols ~cols:m.rows in
  for i = 0 to m.rows - 1 do
    for j = 0 to m.cols - 1 do
      set t j i (get m i j)
    done
  done;
  t

let mul_vec m v =
  if Array.length v <> m.cols then invalid_arg "Matrix.mul_vec: dimension mismatch";
  Array.init m.rows (fun i ->
      let acc = ref 0.0 in
      for j = 0 to m.cols - 1 do
        acc := !acc +. (get m i j *. v.(j))
      done;
      !acc)

let solve a b =
  if a.rows <> a.cols then invalid_arg "Matrix.solve: matrix must be square";
  if Array.length b <> a.rows then invalid_arg "Matrix.solve: vector dimension mismatch";
  let n = a.rows in
  let m = copy a in
  let x = Array.copy b in
  for col = 0 to n - 1 do
    (* Partial pivoting: bring the largest remaining entry of this column to
       the diagonal. *)
    let pivot_row = ref col in
    for r = col + 1 to n - 1 do
      if Float.abs (get m r col) > Float.abs (get m !pivot_row col) then pivot_row := r
    done;
    if Float.abs (get m !pivot_row col) < 1e-12 then failwith "Matrix.solve: singular matrix";
    if !pivot_row <> col then begin
      for j = 0 to n - 1 do
        let tmp = get m col j in
        set m col j (get m !pivot_row j);
        set m !pivot_row j tmp
      done;
      let tmp = x.(col) in
      x.(col) <- x.(!pivot_row);
      x.(!pivot_row) <- tmp
    end;
    let pivot = get m col col in
    for r = col + 1 to n - 1 do
      let factor = get m r col /. pivot in
      if factor <> 0.0 then begin
        for j = col to n - 1 do
          set m r j (get m r j -. (factor *. get m col j))
        done;
        x.(r) <- x.(r) -. (factor *. x.(col))
      end
    done
  done;
  (* Back substitution. *)
  for r = n - 1 downto 0 do
    let acc = ref x.(r) in
    for j = r + 1 to n - 1 do
      acc := !acc -. (get m r j *. x.(j))
    done;
    x.(r) <- !acc /. get m r r
  done;
  x

let pp ppf m =
  Format.fprintf ppf "@[<v>";
  for i = 0 to m.rows - 1 do
    Format.fprintf ppf "[";
    for j = 0 to m.cols - 1 do
      if j > 0 then Format.fprintf ppf " ";
      Format.fprintf ppf "%10.6f" (get m i j)
    done;
    Format.fprintf ppf "]@,"
  done;
  Format.fprintf ppf "@]"
