let check_params ~n ~rho name =
  if n < 1 then invalid_arg (Printf.sprintf "Chains.%s: need n >= 1" name);
  if rho < 0.0 then invalid_arg (Printf.sprintf "Chains.%s: rho must be non-negative" name)

(* With mu normalised to 1, lambda equals rho.  A rho of exactly 0 would
   disconnect the chain (no failures ever); nudge it so the solver still
   returns the limiting distribution (availability -> 1). *)
let effective_rho rho = if rho <= 0.0 then 1e-12 else rho

let voting_chain ~n ~rho =
  check_params ~n ~rho "voting_chain";
  let lambda = effective_rho rho and mu = 1.0 in
  let chain = Ctmc.create (n + 1) in
  for k = 0 to n do
    if k > 0 then Ctmc.add_rate chain ~src:k ~dst:(k - 1) (float_of_int k *. lambda);
    if k < n then Ctmc.add_rate chain ~src:k ~dst:(k + 1) (float_of_int (n - k) *. mu)
  done;
  chain

(* Shared state encoding for the two available-copy chains. *)
let s_index i = i - 1 (* S_i, 1 <= i <= n *)
let s'_index ~n j = n + j (* S'_j, 0 <= j <= n-1 *)

let ac_chain ~n ~rho =
  check_params ~n ~rho "ac_chain";
  let lambda = effective_rho rho and mu = 1.0 in
  let chain = Ctmc.create (2 * n) in
  (* Available states S_1 .. S_n. *)
  for i = 1 to n do
    let src = s_index i in
    let fail_dst = if i = 1 then s'_index ~n 0 else s_index (i - 1) in
    Ctmc.add_rate chain ~src ~dst:fail_dst (float_of_int i *. lambda);
    if i < n then Ctmc.add_rate chain ~src ~dst:(s_index (i + 1)) (float_of_int (n - i) *. mu)
  done;
  (* Comatose states S'_0 .. S'_{n-1}: the last-failed copy's recovery (rate
     mu) resurrects the block into S_{j+1}; other recoveries only grow the
     comatose set. *)
  for j = 0 to n - 1 do
    let src = s'_index ~n j in
    if j > 0 then Ctmc.add_rate chain ~src ~dst:(s'_index ~n (j - 1)) (float_of_int j *. lambda);
    Ctmc.add_rate chain ~src ~dst:(s_index (j + 1)) mu;
    if j < n - 1 then Ctmc.add_rate chain ~src ~dst:(s'_index ~n (j + 1)) (float_of_int (n - j - 1) *. mu)
  done;
  chain

let nac_chain ~n ~rho =
  check_params ~n ~rho "nac_chain";
  let lambda = effective_rho rho and mu = 1.0 in
  let chain = Ctmc.create (2 * n) in
  for i = 1 to n do
    let src = s_index i in
    let fail_dst = if i = 1 then s'_index ~n 0 else s_index (i - 1) in
    Ctmc.add_rate chain ~src ~dst:fail_dst (float_of_int i *. lambda);
    if i < n then Ctmc.add_rate chain ~src ~dst:(s_index (i + 1)) (float_of_int (n - i) *. mu)
  done;
  (* Naive recovery: no memory of who failed last, so every recovery merely
     grows the comatose set until all n copies are back; only S'_{n-1} leads
     to an available state. *)
  for j = 0 to n - 1 do
    let src = s'_index ~n j in
    if j > 0 then Ctmc.add_rate chain ~src ~dst:(s'_index ~n (j - 1)) (float_of_int j *. lambda);
    if j < n - 1 then Ctmc.add_rate chain ~src ~dst:(s'_index ~n (j + 1)) (float_of_int (n - j) *. mu)
    else Ctmc.add_rate chain ~src ~dst:(s_index n) mu
  done;
  chain

let voting_state_probabilities ~n ~rho = Ctmc.steady_state (voting_chain ~n ~rho)
let ac_state_probabilities ~n ~rho = Ctmc.steady_state (ac_chain ~n ~rho)
let nac_state_probabilities ~n ~rho = Ctmc.steady_state (nac_chain ~n ~rho)

let voting_availability ~n ~rho =
  let pi = voting_state_probabilities ~n ~rho in
  (* Majority quorum.  Odd n: k > n/2 sites strictly.  Even n: the paper
     perturbs one weight; the half-up states then hold a quorum exactly when
     the distinguished site is up, which by exchangeability is half of the
     stationary mass of the k = n/2 state. *)
  let acc = ref 0.0 in
  for k = 0 to n do
    if 2 * k > n then acc := !acc +. pi.(k)
    else if 2 * k = n then acc := !acc +. (0.5 *. pi.(k))
  done;
  !acc

let copy_availability probabilities ~n ~rho =
  let pi = probabilities ~n ~rho in
  let acc = ref 0.0 in
  for i = 1 to n do
    acc := !acc +. pi.(s_index i)
  done;
  !acc

let ac_availability = copy_availability ac_state_probabilities
let nac_availability = copy_availability nac_state_probabilities

let voting_participation ~n ~rho =
  let chain = voting_chain ~n ~rho in
  Ctmc.conditional_expectation chain ~pred:(fun k -> k >= 1) ~value:float_of_int

let copy_participation build ~n ~rho =
  let chain = build ~n ~rho in
  Ctmc.conditional_expectation chain
    ~pred:(fun s -> s < n)
    ~value:(fun s -> float_of_int (s + 1))

let ac_participation = copy_participation ac_chain
let nac_participation = copy_participation nac_chain
