(** Transient and first-passage analysis of CTMCs.

    The paper defines availability as A = lim p(t) of the probability of
    being operational at time t; {!probability_at} computes the full p(t)
    curve (by uniformization), showing the convergence.  The companion
    metric the replication literature reports alongside availability is
    {e reliability}: the probability that service has been continuous up
    to t, and its integral the MTTF — computed here by making the
    non-operating states absorbing. *)

val probability_at :
  Ctmc.t -> initial:float array -> t:float -> float array
(** [probability_at chain ~initial ~t] is the state distribution after
    [t] time units starting from [initial], by uniformization with
    adaptive truncation (error < 1e-12).  [initial] must be a
    distribution over the chain's states; [t] non-negative. *)

val availability_at :
  Ctmc.t -> initial:float array -> operational:(int -> bool) -> t:float -> float
(** Probability mass on operational states at time [t]. *)

val reliability_at :
  Ctmc.t -> initial:float array -> operational:(int -> bool) -> t:float -> float
(** Probability that the chain has {e never} left the operational states
    during [\[0, t\]]: transient analysis of the chain with every
    non-operational state made absorbing. *)

val mean_time_to_failure :
  Ctmc.t -> initial:float array -> operational:(int -> bool) -> float
(** Expected time until the first entry into a non-operational state
    (MTTF), from the fundamental-matrix linear system
    [Q_op · m = -1].  The initial distribution must be supported on
    operational states; raises [Invalid_argument] otherwise. *)
