let check_distribution chain initial name =
  if Array.length initial <> Ctmc.n_states chain then
    invalid_arg (Printf.sprintf "Transient.%s: initial distribution has wrong length" name);
  let total = Array.fold_left ( +. ) 0.0 initial in
  if Array.exists (fun p -> p < -1e-12) initial || Float.abs (total -. 1.0) > 1e-9 then
    invalid_arg (Printf.sprintf "Transient.%s: initial is not a distribution" name)

(* One uniformization step over an interval with q*dt small enough that
   the Poisson series is numerically benign. *)
let uniformization_chunk ~q ~p_matrix v dt =
  let n = Array.length v in
  let qt = q *. dt in
  let result = Array.make n 0.0 in
  let term = ref (Array.copy v) in
  (* Poisson(k; qt) weights computed iteratively. *)
  let weight = ref (exp (-.qt)) in
  let k = ref 0 in
  let accumulated = ref 0.0 in
  while !accumulated < 1.0 -. 1e-13 && !k < 10_000 do
    for i = 0 to n - 1 do
      result.(i) <- result.(i) +. (!weight *. !term.(i))
    done;
    accumulated := !accumulated +. !weight;
    incr k;
    weight := !weight *. qt /. float_of_int !k;
    term := Matrix.mul_vec p_matrix !term
  done;
  result

let probability_at chain ~initial ~t =
  check_distribution chain initial "probability_at";
  if t < 0.0 then invalid_arg "Transient.probability_at: negative time";
  if t = 0.0 then Array.copy initial
  else begin
    let n = Ctmc.n_states chain in
    let q_gen = Ctmc.generator chain in
    let rate =
      let m = ref 1e-12 in
      for i = 0 to n - 1 do
        m := Float.max !m (Float.abs (Matrix.get q_gen i i))
      done;
      !m *. 1.05
    in
    (* P = (I + Q/rate)^T so that mul_vec advances a row distribution. *)
    let p_matrix = Matrix.create ~rows:n ~cols:n in
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        let v = (Matrix.get q_gen j i /. rate) +. if i = j then 1.0 else 0.0 in
        Matrix.set p_matrix i j v
      done
    done;
    (* Keep q*dt <= 30 per chunk so exp(-q dt) stays representable. *)
    let chunks = Int.max 1 (int_of_float (ceil (rate *. t /. 30.0))) in
    let dt = t /. float_of_int chunks in
    let v = ref (Array.copy initial) in
    for _ = 1 to chunks do
      v := uniformization_chunk ~q:rate ~p_matrix !v dt
    done;
    !v
  end

let availability_at chain ~initial ~operational ~t =
  let p = probability_at chain ~initial ~t in
  let acc = ref 0.0 in
  Array.iteri (fun s prob -> if operational s then acc := !acc +. prob) p;
  !acc

(* The chain with every non-operational state made absorbing. *)
let absorbed_chain chain ~operational =
  let n = Ctmc.n_states chain in
  let killed = Ctmc.create n in
  for src = 0 to n - 1 do
    if operational src then
      for dst = 0 to n - 1 do
        if dst <> src then begin
          let r = Ctmc.rate chain ~src ~dst in
          if r > 0.0 then Ctmc.add_rate killed ~src ~dst r
        end
      done
  done;
  killed

let reliability_at chain ~initial ~operational ~t =
  check_distribution chain initial "reliability_at";
  let killed = absorbed_chain chain ~operational in
  let p = probability_at killed ~initial ~t in
  let acc = ref 0.0 in
  Array.iteri (fun s prob -> if operational s then acc := !acc +. prob) p;
  !acc

let mean_time_to_failure chain ~initial ~operational =
  check_distribution chain initial "mean_time_to_failure";
  let n = Ctmc.n_states chain in
  let ops = List.filter operational (List.init n Fun.id) in
  if ops = [] then invalid_arg "Transient.mean_time_to_failure: no operational states";
  Array.iteri
    (fun s p ->
      if (not (operational s)) && p > 0.0 then
        invalid_arg "Transient.mean_time_to_failure: initial mass on non-operational states")
    initial;
  let index = Hashtbl.create (List.length ops) in
  List.iteri (fun i s -> Hashtbl.replace index s i) ops;
  let k = List.length ops in
  let q_gen = Ctmc.generator chain in
  (* Restrict the generator to operational states (diagonals keep the full
     exit rates, including transitions into absorbing states). *)
  let q_op = Matrix.create ~rows:k ~cols:k in
  List.iteri
    (fun i s -> List.iteri (fun j s' -> Matrix.set q_op i j (Matrix.get q_gen s s')) ops)
    ops;
  let minus_one = Array.make k (-1.0) in
  let m = Matrix.solve q_op minus_one in
  (* MTTF = sum over initial operational states of initial(s) * m(s). *)
  let acc = ref 0.0 in
  Array.iteri
    (fun s p -> if p > 0.0 then acc := !acc +. (p *. m.(Hashtbl.find index s)))
    initial;
  !acc
