(** The paper's availability chains, built exactly as drawn.

    All chains take the failure-to-repair ratio ρ = λ/μ and normalise μ = 1:
    only the ratio matters for stationary quantities.

    {b State encodings} (exposed so tests can check individual balance
    equations):

    - {e Voting} ([voting_chain]): [n+1] states; state [k] means [k] sites
      are up.  Failures at rate [kλ], repairs at [ (n-k)μ ].
    - {e Available copy} ([ac_chain], Figure 7) and {e naive available copy}
      ([nac_chain], Figure 8): [2n] states.  State [i-1] for [i = 1..n]
      encodes S_i ("[i] copies available"); state [n+j] for [j = 0..n-1]
      encodes S'_j ("all copies failed at some point; [j] comatose copies
      have recovered; the block is unavailable").  In the AC chain the
      last-failed copy's recovery (rate μ) leads from S'_j back to S_{j+1};
      in the NAC chain only S'_{n-1} → S_n exists — the naive algorithm
      waits for {e all} copies. *)

val voting_chain : n:int -> rho:float -> Ctmc.t
val ac_chain : n:int -> rho:float -> Ctmc.t
val nac_chain : n:int -> rho:float -> Ctmc.t

(** {1 Availability} *)

val voting_availability : n:int -> rho:float -> float
(** Stationary probability that a majority quorum is up.  For even [n] the
    paper breaks ties by slightly inflating one site's weight; by symmetry
    the half-up state then counts with probability 1/2, reproducing
    equation (1.b). *)

val ac_availability : n:int -> rho:float -> float
(** Stationary probability of the states S_1..S_n of the Figure 7 chain. *)

val nac_availability : n:int -> rho:float -> float
(** Same for the Figure 8 chain. *)

(** {1 Participation (Section 5)}

    The traffic analysis needs U, the average number of sites taking part in
    an operation given that the local site can operate: operational sites
    for voting, available sites for the copy schemes. *)

val voting_participation : n:int -> rho:float -> float
(** E[number up | at least one up]; closed form
    [n(1+ρ)^{n-1} / ((1+ρ)^n - ρ^n)]. *)

val ac_participation : n:int -> rho:float -> float
(** E[i | block in some S_i] for the AC chain. *)

val nac_participation : n:int -> rho:float -> float

(** {1 Raw distributions (for tests and reports)} *)

val voting_state_probabilities : n:int -> rho:float -> float array
(** [p.(k)] = stationary probability that exactly [k] sites are up. *)

val ac_state_probabilities : n:int -> rho:float -> float array
(** Length [2n], indexed per the encoding above. *)

val nac_state_probabilities : n:int -> rho:float -> float array
