(** Continuous-time Markov chains and their stationary distributions.

    Availability in Section 4 of the paper is the stationary probability of
    the "operating" states of a CTMC whose transitions are site failures
    (rate λ) and repairs (rate μ).  This module builds the generator matrix
    from individual transition rates and solves the balance equations
    [πQ = 0, Σπ = 1] exactly (up to floating point). *)

type t

val create : int -> t
(** [create n] is a chain over states [0 .. n-1] with no transitions yet. *)

val n_states : t -> int

val add_rate : t -> src:int -> dst:int -> float -> unit
(** Add a transition at the given rate.  [src <> dst], rate must be
    positive; raises [Invalid_argument] otherwise.  Repeated calls on the
    same pair accumulate. *)

val rate : t -> src:int -> dst:int -> float
(** Total rate currently installed on a pair. *)

val generator : t -> Matrix.t
(** The generator Q: off-diagonal entries are the rates, diagonals make rows
    sum to zero. *)

val steady_state : t -> float array
(** The stationary distribution.  The chain must be irreducible; raises
    [Failure] (singular system) when it is not. *)

val stationary_expectation : t -> (int -> float) -> float
(** [stationary_expectation t f] is [Σ_s π(s) · f s]. *)

val conditional_expectation : t -> pred:(int -> bool) -> value:(int -> float) -> float
(** [conditional_expectation t ~pred ~value] is
    [E(value | pred)] under the stationary distribution: the participation
    averages U of Section 5 are instances.  [nan] if [pred] has stationary
    probability 0. *)
