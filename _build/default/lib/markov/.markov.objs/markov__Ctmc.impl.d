lib/markov/ctmc.ml: Array Matrix
