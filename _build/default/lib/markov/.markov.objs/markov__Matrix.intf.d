lib/markov/matrix.mli: Format
