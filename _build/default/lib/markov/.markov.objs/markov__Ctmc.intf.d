lib/markov/ctmc.mli: Matrix
