lib/markov/matrix.ml: Array Float Format
