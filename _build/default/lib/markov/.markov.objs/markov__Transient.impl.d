lib/markov/transient.ml: Array Ctmc Float Fun Hashtbl Int List Matrix Printf
