lib/markov/chains.mli: Ctmc
