lib/markov/chains.ml: Array Ctmc Printf
