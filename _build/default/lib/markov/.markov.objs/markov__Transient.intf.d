lib/markov/transient.mli: Ctmc
