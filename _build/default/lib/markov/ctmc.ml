type t = { n : int; rates : Matrix.t }

let create n =
  if n <= 0 then invalid_arg "Ctmc.create: need at least one state";
  { n; rates = Matrix.create ~rows:n ~cols:n }

let n_states t = t.n

let add_rate t ~src ~dst r =
  if src = dst then invalid_arg "Ctmc.add_rate: self-loop";
  if r <= 0.0 then invalid_arg "Ctmc.add_rate: rate must be positive";
  Matrix.add t.rates src dst r

let rate t ~src ~dst = Matrix.get t.rates src dst

let generator t =
  let q = Matrix.copy t.rates in
  for i = 0 to t.n - 1 do
    let out = ref 0.0 in
    for j = 0 to t.n - 1 do
      if j <> i then out := !out +. Matrix.get q i j
    done;
    Matrix.set q i i (-. !out)
  done;
  q

let steady_state t =
  (* Solve pi Q = 0 with sum(pi) = 1: transpose Q, overwrite the last
     equation with the normalisation constraint. *)
  let qt = Matrix.transpose (generator t) in
  let n = t.n in
  for j = 0 to n - 1 do
    Matrix.set qt (n - 1) j 1.0
  done;
  let b = Array.make n 0.0 in
  b.(n - 1) <- 1.0;
  let pi = Matrix.solve qt b in
  (* Floating-point dust can leave tiny negatives; clamp and renormalise. *)
  let pi = Array.map (fun p -> if p < 0.0 && p > -1e-9 then 0.0 else p) pi in
  let total = Array.fold_left ( +. ) 0.0 pi in
  Array.map (fun p -> p /. total) pi

let stationary_expectation t f =
  let pi = steady_state t in
  let acc = ref 0.0 in
  Array.iteri (fun s p -> acc := !acc +. (p *. f s)) pi;
  !acc

let conditional_expectation t ~pred ~value =
  let pi = steady_state t in
  let num = ref 0.0 and den = ref 0.0 in
  Array.iteri
    (fun s p ->
      if pred s then begin
        num := !num +. (p *. value s);
        den := !den +. p
      end)
    pi;
  if !den = 0.0 then nan else !num /. !den
