lib/util/prng.mli:
