lib/util/dist.ml: Format Prng
