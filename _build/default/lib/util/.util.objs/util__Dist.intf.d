lib/util/dist.mli: Format Prng
