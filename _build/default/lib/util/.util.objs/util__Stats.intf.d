lib/util/stats.mli:
