(** Random-variate samplers for the distributions used in the evaluation.

    Section 4 of the paper assumes Poisson site failures and repairs
    (exponential holding times with failure rate λ and repair rate μ);
    Section 4.4 discusses repair-time distributions with coefficient of
    variation below one, which we model with Erlang-k. *)

type t =
  | Constant of float  (** degenerate distribution, always the same value *)
  | Exponential of float  (** [Exponential rate], mean [1/rate] *)
  | Erlang of int * float
      (** [Erlang (k, rate)]: sum of [k] exponentials of rate [rate]; mean
          [k/rate], coefficient of variation [1/sqrt k < 1] for [k > 1] *)
  | Uniform of float * float  (** uniform on [\[lo, hi)] *)

val sample : t -> Prng.t -> float
(** [sample d g] draws one variate.  All variates are non-negative for the
    distributions accepted by {!validate}. *)

val mean : t -> float
(** Analytic mean of the distribution. *)

val coefficient_of_variation : t -> float
(** Analytic ratio of standard deviation to mean ([nan] for a zero-mean
    constant). *)

val validate : t -> (t, string) result
(** [validate d] checks the parameters (positive rates, [k >= 1],
    [lo <= hi], non-negative support) and returns [Error] with a
    human-readable reason otherwise. *)

val exponential : rate:float -> Prng.t -> float
(** Direct exponential sampler by inversion; [rate] must be positive. *)

val erlang : k:int -> rate:float -> Prng.t -> float
(** Direct Erlang-[k] sampler (sum of [k] exponentials). *)

val pp : Format.formatter -> t -> unit
