type t =
  | Constant of float
  | Exponential of float
  | Erlang of int * float
  | Uniform of float * float

let exponential ~rate g =
  if rate <= 0.0 then invalid_arg "Dist.exponential: rate must be positive";
  -.log (Prng.float_pos g) /. rate

let erlang ~k ~rate g =
  if k < 1 then invalid_arg "Dist.erlang: k must be >= 1";
  if rate <= 0.0 then invalid_arg "Dist.erlang: rate must be positive";
  (* Product of k uniforms under one log avoids k calls to log. *)
  let rec product acc i = if i = 0 then acc else product (acc *. Prng.float_pos g) (i - 1) in
  -.log (product 1.0 k) /. rate

let sample d g =
  match d with
  | Constant c -> c
  | Exponential rate -> exponential ~rate g
  | Erlang (k, rate) -> erlang ~k ~rate g
  | Uniform (lo, hi) -> lo +. ((hi -. lo) *. Prng.float g)

let mean = function
  | Constant c -> c
  | Exponential rate -> 1.0 /. rate
  | Erlang (k, rate) -> float_of_int k /. rate
  | Uniform (lo, hi) -> (lo +. hi) /. 2.0

let coefficient_of_variation = function
  | Constant c -> if c = 0.0 then nan else 0.0
  | Exponential _ -> 1.0
  | Erlang (k, _) -> 1.0 /. sqrt (float_of_int k)
  | Uniform (lo, hi) ->
      let m = (lo +. hi) /. 2.0 in
      if m = 0.0 then nan else (hi -. lo) /. (sqrt 12.0 *. m)

let validate d =
  match d with
  | Constant c when c < 0.0 -> Error "constant must be non-negative"
  | Exponential rate when rate <= 0.0 -> Error "exponential rate must be positive"
  | Erlang (k, _) when k < 1 -> Error "erlang shape must be >= 1"
  | Erlang (_, rate) when rate <= 0.0 -> Error "erlang rate must be positive"
  | Uniform (lo, hi) when lo > hi -> Error "uniform bounds must satisfy lo <= hi"
  | Uniform (lo, _) when lo < 0.0 -> Error "uniform support must be non-negative"
  | Constant _ | Exponential _ | Erlang _ | Uniform _ -> Ok d

let pp ppf = function
  | Constant c -> Format.fprintf ppf "constant(%g)" c
  | Exponential rate -> Format.fprintf ppf "exp(rate=%g)" rate
  | Erlang (k, rate) -> Format.fprintf ppf "erlang(k=%d, rate=%g)" k rate
  | Uniform (lo, hi) -> Format.fprintf ppf "uniform[%g, %g)" lo hi
