type event = { time : float; seq : int; action : unit -> unit; mutable cancelled : bool }

type handle = event

type t = {
  mutable clock : float;
  mutable next_seq : int;
  mutable fired : int;
  queue : event Heap.t;
}

let compare_events a b =
  let c = Float.compare a.time b.time in
  if c <> 0 then c else Int.compare a.seq b.seq

let create () = { clock = 0.0; next_seq = 0; fired = 0; queue = Heap.create ~cmp:compare_events }

let now t = t.clock

let schedule_at t ~time action =
  if time < t.clock then invalid_arg "Engine.schedule_at: time is in the past";
  let ev = { time; seq = t.next_seq; action; cancelled = false } in
  t.next_seq <- t.next_seq + 1;
  Heap.push t.queue ev;
  ev

let schedule t ~delay action =
  if delay < 0.0 then invalid_arg "Engine.schedule: negative delay";
  schedule_at t ~time:(t.clock +. delay) action

let cancel _t h = h.cancelled <- true

let pending t = List.length (List.filter (fun e -> not e.cancelled) (Heap.to_list t.queue))

let fire t ev =
  t.clock <- ev.time;
  t.fired <- t.fired + 1;
  ev.action ()

(* Pop the earliest live event at or before [horizon]; cancelled events are
   discarded without advancing the clock. *)
let rec pop_live t ~horizon =
  match Heap.peek t.queue with
  | None -> None
  | Some ev when ev.time > horizon -> None
  | Some _ -> (
      match Heap.pop t.queue with
      | Some ev when not ev.cancelled -> Some ev
      | Some _ -> pop_live t ~horizon
      | None -> None)

let step t =
  match pop_live t ~horizon:infinity with
  | None -> false
  | Some ev ->
      fire t ev;
      true

let run t = while step t do () done

let run_until t horizon =
  if horizon < t.clock then invalid_arg "Engine.run_until: horizon is in the past";
  let rec loop () =
    match pop_live t ~horizon with
    | Some ev ->
        fire t ev;
        loop ()
    | None -> ()
  in
  loop ();
  t.clock <- horizon

let events_fired t = t.fired
