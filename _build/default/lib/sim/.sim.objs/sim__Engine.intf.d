lib/sim/engine.mli:
