lib/sim/heap.mli:
