lib/sim/process.ml: Engine Util
