lib/sim/process.mli: Engine Util
