(** Alternating-renewal processes on the simulation engine.

    A site in the paper's model alternates between operating periods (ending
    in a failure, rate λ) and repair periods (ending in a recovery, rate μ).
    {!alternating} drives exactly this: it schedules the next transition,
    invokes the user callbacks, and repeats until stopped. *)

type t

type phase = Up | Down

val alternating :
  Engine.t ->
  rng:Util.Prng.t ->
  up_time:Util.Dist.t ->
  down_time:Util.Dist.t ->
  ?initial:phase ->
  on_fail:(unit -> unit) ->
  on_repair:(unit -> unit) ->
  unit ->
  t
(** [alternating engine ~rng ~up_time ~down_time ~on_fail ~on_repair ()]
    starts a process in phase [initial] (default [Up]).  After an [up_time]
    variate it calls [on_fail] and enters [Down]; after a [down_time] variate
    it calls [on_repair] and re-enters [Up]; and so on until {!stop}.

    The callbacks run at the transition's virtual time, so they may query
    [Engine.now] and schedule further work. *)

val stop : t -> unit
(** Cancels the process's pending transition; no further callbacks fire. *)

val phase : t -> phase
(** Phase the process is currently in. *)

val transitions : t -> int
(** Number of transitions performed so far (failures + repairs). *)
