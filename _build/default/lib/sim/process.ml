type phase = Up | Down

type t = {
  engine : Engine.t;
  rng : Util.Prng.t;
  up_time : Util.Dist.t;
  down_time : Util.Dist.t;
  on_fail : unit -> unit;
  on_repair : unit -> unit;
  mutable phase : phase;
  mutable transitions : int;
  mutable stopped : bool;
  mutable pending : Engine.handle option;
}

let rec arm t =
  if not t.stopped then begin
    let delay =
      match t.phase with
      | Up -> Util.Dist.sample t.up_time t.rng
      | Down -> Util.Dist.sample t.down_time t.rng
    in
    let handle = Engine.schedule t.engine ~delay (fun () -> transition t) in
    t.pending <- Some handle
  end

and transition t =
  t.pending <- None;
  t.transitions <- t.transitions + 1;
  (match t.phase with
  | Up ->
      t.phase <- Down;
      t.on_fail ()
  | Down ->
      t.phase <- Up;
      t.on_repair ());
  arm t

let alternating engine ~rng ~up_time ~down_time ?(initial = Up) ~on_fail ~on_repair () =
  let t =
    {
      engine;
      rng;
      up_time;
      down_time;
      on_fail;
      on_repair;
      phase = initial;
      transitions = 0;
      stopped = false;
      pending = None;
    }
  in
  arm t;
  t

let stop t =
  t.stopped <- true;
  match t.pending with
  | Some h ->
      Engine.cancel t.engine h;
      t.pending <- None
  | None -> ()

let phase t = t.phase
let transitions t = t.transitions
