(** CSV export of the figure series, for external plotting.

    Each writer emits one header row and one data row per point; floats
    are printed with enough digits to replot the curves exactly.
    Simulation columns are included when present and left empty
    otherwise. *)

val availability_rows : Figures.availability_row list -> string list
(** CSV lines (header first) for a Figure 9/10-style series. *)

val traffic_rows : Figures.traffic_row list -> string list
(** CSV lines for a Figure 11/12-style series. *)

val identity_rows : Figures.identity_row list -> string list

val write_file : string -> string list -> (unit, string) result
(** Write lines (with trailing newlines) to a file. *)
