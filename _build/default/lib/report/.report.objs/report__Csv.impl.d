lib/report/csv.ml: Figures Fun List Printf String
