lib/report/figures.ml: Analysis Blockrep Float Format List Markov Net Printf Workload
