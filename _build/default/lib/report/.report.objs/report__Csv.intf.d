lib/report/csv.mli: Figures
