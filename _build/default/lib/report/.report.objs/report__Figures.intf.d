lib/report/figures.mli: Format
