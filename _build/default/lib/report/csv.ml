let float_cell v = Printf.sprintf "%.9g" v

let opt_cell = function None -> "" | Some v -> float_cell v

let availability_rows rows =
  let header = "rho,voting,ac_closed,ac_chain,nac_closed,nac_chain,ac_sim,nac_sim,voting_sim" in
  header
  :: List.map
       (fun (r : Figures.availability_row) ->
         String.concat ","
           [
             float_cell r.rho;
             float_cell r.voting;
             float_cell r.ac_closed;
             float_cell r.ac_chain;
             float_cell r.nac_closed;
             float_cell r.nac_chain;
             opt_cell r.ac_sim;
             opt_cell r.nac_sim;
             opt_cell r.voting_sim;
           ])
       rows

let traffic_rows rows =
  let header = "n_sites,voting_x1,voting_x2,voting_x4,ac,nac,ac_sim,nac_sim,voting_x2_sim" in
  header
  :: List.map
       (fun (r : Figures.traffic_row) ->
         String.concat ","
           [
             string_of_int r.n_sites;
             float_cell r.voting_x1;
             float_cell r.voting_x2;
             float_cell r.voting_x4;
             float_cell r.ac;
             float_cell r.nac;
             opt_cell r.ac_sim;
             opt_cell r.nac_sim;
             opt_cell r.voting_x2_sim;
           ])
       rows

let escape s = if String.contains s ',' then "\"" ^ s ^ "\"" else s

let identity_rows rows =
  "label,lhs,rhs,holds"
  :: List.map
       (fun (r : Figures.identity_row) ->
         String.concat ","
           [ escape r.label; float_cell r.lhs; float_cell r.rhs; string_of_bool r.holds ])
       rows

let write_file path lines =
  match open_out path with
  | exception Sys_error msg -> Error msg
  | oc ->
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () ->
          List.iter
            (fun line ->
              output_string oc line;
              output_char oc '\n')
            lines;
          Ok ())
