(** Textual access traces: record, save, load, replay.

    A substitute for the BSD measurement traces the paper cites: we cannot
    ship the 1985 tapes, so {!synthesize_bsd_like} generates a trace with
    the published aggregate shape (≈2.5 reads per write, skewed block
    popularity) and the tooling treats generated and hand-written traces
    identically.

    Format: one operation per line — [R <block>] or [W <block> <payload>]
    where payload is a printable token written into the block (zero-padded
    to the block size).  Lines starting with [#] are comments. *)

type entry = R of int | W of int * string

val entry_to_line : entry -> string
val entry_of_line : string -> (entry, string) result
(** [Error] describes the malformed line. *)

val to_lines : entry list -> string list
val of_lines : string list -> (entry list, string) result
(** Stops at the first malformed line; comments and blank lines skipped. *)

val save : string -> entry list -> unit
(** Write to a file (one line per entry, trailing newline). *)

val load : string -> (entry list, string) result

val of_ops : Access_gen.op list -> entry list
(** Forget the block payload bytes down to their printable token. *)

val to_ops : entry list -> Access_gen.op list

val synthesize_bsd_like :
  rng:Util.Prng.t -> n_blocks:int -> length:int -> entry list
(** A trace with the Ousterhout-style profile: 2.5:1 read:write mix over a
    Zipf(0.8)-skewed block population. *)

val read_write_ratio : entry list -> float
(** Reads per write in a trace; [infinity] when there are no writes. *)
