type t = {
  mutable processes : Sim.Process.t array;
  mutable failures : int;
  mutable repairs : int;
}

let attach_dist cluster ~rng ~up_time ~down_time =
  let engine = Blockrep.Cluster.engine cluster in
  let t = { processes = [||]; failures = 0; repairs = 0 } in
  let make_process i =
    let site_rng = Util.Prng.split rng in
    Sim.Process.alternating engine ~rng:site_rng ~up_time ~down_time
      ~on_fail:(fun () ->
        t.failures <- t.failures + 1;
        Blockrep.Cluster.fail_site cluster i)
      ~on_repair:(fun () ->
        t.repairs <- t.repairs + 1;
        Blockrep.Cluster.repair_site cluster i)
      ()
  in
  t.processes <- Array.init (Blockrep.Cluster.n_sites cluster) make_process;
  t

let attach cluster ~rng ~lambda ~mu =
  if lambda <= 0.0 || mu <= 0.0 then invalid_arg "Failure_gen.attach: rates must be positive";
  attach_dist cluster ~rng ~up_time:(Util.Dist.Exponential lambda)
    ~down_time:(Util.Dist.Exponential mu)

let stop t = Array.iter Sim.Process.stop t.processes
let failures_injected t = t.failures
let repairs_injected t = t.repairs

type event = Fail of int | Repair of int

let run_script cluster events =
  let engine = Blockrep.Cluster.engine cluster in
  List.iter
    (fun (time, event) ->
      ignore
        (Sim.Engine.schedule_at engine ~time (fun () ->
             match event with
             | Fail i -> Blockrep.Cluster.fail_site cluster i
             | Repair i -> Blockrep.Cluster.repair_site cluster i)
          : Sim.Engine.handle))
    events
