(** Block-access workload generation.

    The traffic analysis weighs reads against writes; the paper takes the
    BSD 4.2 measurement of roughly 2.5 reads per write [Ousterhout 85] as
    typical.  This generator produces read/write streams at a configurable
    mix over a configurable block population. *)

type op = Read of Blockdev.Block.id | Write of Blockdev.Block.id * Blockdev.Block.t

val op_block : op -> Blockdev.Block.id
val is_read : op -> bool

(** How target blocks are drawn. *)
type locality =
  | Uniform  (** every block equally likely *)
  | Zipf of float  (** skewed popularity with the given exponent (> 0) *)
  | Sequential  (** cycle through blocks in order, wrapping *)

type t

val create :
  rng:Util.Prng.t ->
  n_blocks:int ->
  reads_per_write:float ->
  ?locality:locality ->
  ?payload_seed:string ->
  unit ->
  t
(** [reads_per_write] is the r:1 ratio (2.5 for the paper's "typical"
    system); must be non-negative.  Write payloads are generated
    deterministically from [payload_seed] and a counter, so runs are
    reproducible and every write is distinguishable. *)

val next : t -> op
val generated : t -> int
val reads_emitted : t -> int
val writes_emitted : t -> int

val take : t -> int -> op list
(** The next [n] operations. *)
