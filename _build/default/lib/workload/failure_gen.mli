(** Failure and repair injection.

    Section 4 assumes every site fails at rate λ and repairs at rate μ,
    independently (a ratio ρ = λ/μ).  {!attach} drives exactly that against
    a cluster; {!attach_dist} generalises the holding-time distributions
    (the Section 4.4 discussion uses Erlang repairs, whose coefficient of
    variation is below one); {!run_script} replays a fixed schedule for
    deterministic tests. *)

type t

val attach : Blockrep.Cluster.t -> rng:Util.Prng.t -> lambda:float -> mu:float -> t
(** One alternating exponential up/down process per site, started in the up
    phase. *)

val attach_dist :
  Blockrep.Cluster.t -> rng:Util.Prng.t -> up_time:Util.Dist.t -> down_time:Util.Dist.t -> t
(** Same with arbitrary holding-time distributions. *)

val stop : t -> unit
(** Detach: no further failures or repairs fire. *)

val failures_injected : t -> int
val repairs_injected : t -> int

(** {1 Scripted schedules} *)

type event = Fail of int | Repair of int

val run_script : Blockrep.Cluster.t -> (float * event) list -> unit
(** Schedule the listed events at the given absolute virtual times (must
    not be in the past).  The caller then runs the engine. *)
