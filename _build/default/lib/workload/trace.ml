type entry = R of int | W of int * string

let entry_to_line = function
  | R block -> Printf.sprintf "R %d" block
  | W (block, payload) -> Printf.sprintf "W %d %s" block payload

let entry_of_line line =
  match String.split_on_char ' ' (String.trim line) with
  | [ "R"; block ] -> (
      match int_of_string_opt block with
      | Some b when b >= 0 -> Ok (R b)
      | Some _ | None -> Error ("bad block in: " ^ line))
  | "W" :: block :: payload :: rest -> (
      match int_of_string_opt block with
      | Some b when b >= 0 -> Ok (W (b, String.concat " " (payload :: rest)))
      | Some _ | None -> Error ("bad block in: " ^ line))
  | _ -> Error ("unparseable trace line: " ^ line)

let to_lines entries = List.map entry_to_line entries

let of_lines lines =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
        let trimmed = String.trim line in
        if trimmed = "" || trimmed.[0] = '#' then go acc rest
        else (
          match entry_of_line trimmed with Ok e -> go (e :: acc) rest | Error _ as err -> err)
  in
  go [] lines

let save path entries =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> List.iter (fun e -> output_string oc (entry_to_line e ^ "\n")) entries)

let load path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
      let rec read_all acc =
        match input_line ic with
        | line -> read_all (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      Fun.protect ~finally:(fun () -> close_in ic) (fun () -> of_lines (read_all []))

(* Keep payload tokens printable and free of whitespace. *)
let token_of_block data =
  let s = Blockdev.Block.to_string data in
  let cut = match String.index_opt s '\000' with Some i -> String.sub s 0 i | None -> s in
  let cleaned = String.map (fun c -> if c = ' ' || c = '\n' || c = '\t' then '_' else c) cut in
  if cleaned = "" then "_" else cleaned

let of_ops ops =
  List.map
    (function
      | Access_gen.Read b -> R b
      | Access_gen.Write (b, data) -> W (b, token_of_block data))
    ops

let to_ops entries =
  List.map
    (function
      | R b -> Access_gen.Read b
      | W (b, payload) -> Access_gen.Write (b, Blockdev.Block.of_string payload))
    entries

let synthesize_bsd_like ~rng ~n_blocks ~length =
  let gen =
    Access_gen.create ~rng ~n_blocks ~reads_per_write:2.5 ~locality:(Access_gen.Zipf 0.8)
      ~payload_seed:"bsd" ()
  in
  of_ops (Access_gen.take gen length)

let read_write_ratio entries =
  let reads = List.length (List.filter (function R _ -> true | W _ -> false) entries) in
  let writes = List.length entries - reads in
  if writes = 0 then infinity else float_of_int reads /. float_of_int writes
