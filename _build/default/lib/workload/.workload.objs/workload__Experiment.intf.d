lib/workload/experiment.mli: Blockrep Net
