lib/workload/access_gen.ml: Array Blockdev List Printf Util
