lib/workload/runner.ml: Access_gen Blockrep List Sim Trace Util
