lib/workload/trace.mli: Access_gen Util
