lib/workload/trace.ml: Access_gen Blockdev Fun List Printf String
