lib/workload/runner.mli: Access_gen Blockrep Trace Util
