lib/workload/failure_gen.mli: Blockrep Util
