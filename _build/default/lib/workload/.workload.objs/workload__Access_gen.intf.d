lib/workload/access_gen.mli: Blockdev Util
