lib/workload/failure_gen.ml: Array Blockrep List Sim Util
