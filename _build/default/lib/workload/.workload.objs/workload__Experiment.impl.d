lib/workload/experiment.ml: Access_gen Blockrep Failure_gen Net Runner Util
