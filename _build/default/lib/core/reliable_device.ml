type t = { cluster : Cluster.t; stub : Driver_stub.t; mutable last_error : Types.failure_reason option }

let create ?home cluster = { cluster; stub = Driver_stub.create ?home cluster; last_error = None }

let of_config config = create (Cluster.create config)

let cluster t = t.cluster
let stub t = t.stub
let capacity t = Cluster.n_blocks t.cluster

let read_block t k =
  if k < 0 || k >= capacity t then None
  else
    match Driver_stub.read_block t.stub k with
    | Ok (data, _version) ->
        t.last_error <- None;
        Some data
    | Error reason ->
        t.last_error <- Some reason;
        None

let write_block t k data =
  if k < 0 || k >= capacity t then false
  else
    match Driver_stub.write_block t.stub k data with
    | Ok _version ->
        t.last_error <- None;
        true
    | Error reason ->
        t.last_error <- Some reason;
        false

let last_error t = t.last_error
