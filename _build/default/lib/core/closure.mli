(** Closure of was-available sets (Definition 3.2, after Long & Pâris).

    During recovery from a total failure, a site [s] must wait until every
    site that might hold data newer than anything [s] can see has come back.
    That set is the transitive closure of the was-available sets: starting
    from [W_s], repeatedly add the was-available sets of every member whose
    set is known.  Members whose sets are unknown (sites never heard from)
    stay in the closure — they must be waited for regardless, which keeps
    the computation safe under partial knowledge. *)

val compute : self:int -> own:Types.Int_set.t -> known:(int -> Types.Int_set.t option) -> Types.Int_set.t
(** [compute ~self ~own ~known] is the closure of [{self} ∪ own] where
    [known u] returns site [u]'s was-available set if we have heard it.
    Always contains [self]; always a superset of [own]. *)
