lib/core/reliable_device.mli: Blockdev Cluster Config Driver_stub Types
