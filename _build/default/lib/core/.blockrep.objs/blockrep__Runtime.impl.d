lib/core/runtime.ml: Array Blockdev Config Fun Hashtbl List Net Sim Types Util Wire
