lib/core/availability_monitor.ml: Sim Util
