lib/core/wire.ml: Blockdev List Net Printf Types
