lib/core/reliable_device.ml: Cluster Driver_stub Types
