lib/core/quorum.ml: Array Format List Option String
