lib/core/voting.ml: Array Blockdev Int List Net Quorum Runtime Types Wire
