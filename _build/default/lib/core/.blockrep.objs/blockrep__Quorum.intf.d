lib/core/quorum.mli: Format
