lib/core/cluster.ml: Array Availability_monitor Blockdev Config Copy_protocol Dynamic_voting Int List Quorum Runtime Sim Types Voting
