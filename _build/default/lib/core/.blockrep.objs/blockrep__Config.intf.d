lib/core/config.mli: Format Net Quorum Types Util
