lib/core/copy_protocol.ml: Array Blockdev Closure Fun List Net Runtime Types Wire
