lib/core/copy_protocol.mli: Blockdev Runtime Types
