lib/core/dynamic_voting.ml: Array Blockdev Config Fun Int List Net Runtime Sim Types Wire
