lib/core/checkpoint.ml: Array Blockdev Bytes Cluster Config Fun Int32 Result Runtime String Types
