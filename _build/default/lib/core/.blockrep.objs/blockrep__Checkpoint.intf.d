lib/core/checkpoint.mli: Cluster
