lib/core/wire.mli: Blockdev Net Types
