lib/core/runtime.mli: Blockdev Config Net Sim Types Util Wire
