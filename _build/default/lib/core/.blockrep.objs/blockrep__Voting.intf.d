lib/core/voting.mli: Blockdev Runtime Types
