lib/core/cluster.mli: Availability_monitor Blockdev Config Net Runtime Sim Types
