lib/core/availability_monitor.mli: Sim Util
