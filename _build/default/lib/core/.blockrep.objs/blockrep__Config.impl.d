lib/core/config.ml: Format Net Option Quorum Types Util
