lib/core/driver_stub.ml: Cluster Types
