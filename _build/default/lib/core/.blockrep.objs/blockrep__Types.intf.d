lib/core/types.mli: Blockdev Format Set
