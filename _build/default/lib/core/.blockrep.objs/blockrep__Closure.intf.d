lib/core/closure.mli: Types
