lib/core/dynamic_voting.mli: Blockdev Runtime Types
