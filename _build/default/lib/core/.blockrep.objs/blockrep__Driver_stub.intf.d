lib/core/driver_stub.mli: Blockdev Cluster Types
