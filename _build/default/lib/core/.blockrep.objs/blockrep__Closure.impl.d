lib/core/closure.ml: Types
