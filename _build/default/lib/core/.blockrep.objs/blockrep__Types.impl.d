lib/core/types.ml: Blockdev Format Int Set
