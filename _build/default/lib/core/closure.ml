module Int_set = Types.Int_set

let compute ~self ~own ~known =
  let rec expand frontier acc =
    if Int_set.is_empty frontier then acc
    else begin
      let additions =
        Int_set.fold
          (fun u adds ->
            match known u with
            | Some w_u -> Int_set.union adds (Int_set.diff w_u acc)
            | None -> adds)
          frontier Int_set.empty
      in
      expand additions (Int_set.union acc additions)
    end
  in
  let start = Int_set.add self own in
  expand start start
