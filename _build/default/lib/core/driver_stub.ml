type t = {
  cluster : Cluster.t;
  mutable home : int;
  mutable requests : int;
  mutable failovers : int;
}

let create ?(home = 0) cluster =
  if home < 0 || home >= Cluster.n_sites cluster then invalid_arg "Driver_stub.create: bad home site";
  { cluster; home; requests = 0; failovers = 0 }

let home t = t.home
let requests t = t.requests
let failovers t = t.failovers

(* Try the home site; if the local server cannot serve, rotate through the
   remaining sites once.  Other error kinds (quorum loss) are global, so
   failing over would not help and the error is surfaced as-is. *)
let forward t attempt =
  let n = Cluster.n_sites t.cluster in
  let rec go tried site =
    t.requests <- t.requests + 1;
    match attempt site with
    | Error Types.Site_not_available when tried < n - 1 ->
        t.failovers <- t.failovers + 1;
        let next = (site + 1) mod n in
        t.home <- next;
        go (tried + 1) next
    | result -> result
  in
  go 0 t.home

let read_block t block = forward t (fun site -> Cluster.read_sync t.cluster ~site ~block)

let write_block t block data = forward t (fun site -> Cluster.write_sync t.cluster ~site ~block data)
