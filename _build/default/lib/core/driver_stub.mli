(** The device-driver stub (Figures 1 and 2 of the paper).

    In the UNIX deployment the kernel's driver stub receives block requests
    from the file system and forwards them to a user-state server, which
    runs the consistency-control algorithms; under MACH the same role is
    played by IPC to a server task.  Here the stub forwards requests into
    the cluster at a {e home} server site, and — because the server need
    not live on any particular site — fails over to another operational
    site when the home site is down or cannot serve (it is this freedom
    that lets the reliable device serve diskless workstations). *)

type t

val create : ?home:int -> Cluster.t -> t
(** [create ?home cluster] forwards requests to site [home] (default 0). *)

val home : t -> int
(** The site currently receiving forwarded requests. *)

val read_block : t -> Blockdev.Block.id -> Types.read_result
(** Forward a read; on [Site_not_available] retries once at each other
    site in id order before giving up.  Synchronous: drives the engine. *)

val write_block : t -> Blockdev.Block.id -> Blockdev.Block.t -> Types.write_result

val requests : t -> int
(** Requests forwarded (including failover retries). *)

val failovers : t -> int
(** Times the stub had to move its home to another site. *)
