(** Cluster checkpoints: persist the durable state of every site.

    A checkpoint captures what would survive a power cycle of the whole
    installation — each site's blocks, version numbers, was-available set,
    and whether the site was up — so a long simulation can be snapshotted
    and resumed in another process.

    Checkpoints should be taken at {e quiescent} points (no operation or
    recovery in flight): in-flight messages and open rounds are volatile
    and deliberately not captured, exactly as a real crash would lose
    them.  {!restore} targets a {e freshly created} cluster with the same
    scheme, site count and block count; restoring over used state is
    refused (version numbers may never regress). *)

val save : Cluster.t -> string -> (unit, string) result
(** Write the cluster's durable state to a file. *)

val restore : Cluster.t -> string -> (unit, string) result
(** Load a checkpoint into a fresh, identically-configured cluster.
    After restore, up sites are in the recorded protocol state and down
    sites are failed; the availability monitor is informed. *)
