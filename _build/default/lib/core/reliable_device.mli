(** The reliable device: a replicated block device behind the ordinary
    device interface.

    This is the paper's headline artifact — "a device [that] appears to the
    file system as an ordinary block-structured device, but is implemented
    as a set of server processes on several sites".  It satisfies
    [Blockdev.Device_intf.S], so any client of that signature (notably
    [Fs.Flat_fs]) runs on it unchanged. *)

type t

val create : ?home:int -> Cluster.t -> t
(** Wrap a cluster (any scheme) as a device, forwarding through a
    {!Driver_stub} homed at [home]. *)

val of_config : Config.t -> t
(** Convenience: build the cluster too. *)

val cluster : t -> Cluster.t
val stub : t -> Driver_stub.t

include Blockdev.Device_intf.S with type t := t

val last_error : t -> Types.failure_reason option
(** Reason for the most recent [None]/[false] answer, for diagnostics. *)
