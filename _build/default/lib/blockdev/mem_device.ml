type t = { store : Store.t; mutable alive : bool }

let create ~capacity = { store = Store.create ~capacity; alive = true }

let capacity t = Store.capacity t.store

let read_block t k =
  if (not t.alive) || k < 0 || k >= capacity t then None else Some (Store.read t.store k)

let write_block t k b =
  if (not t.alive) || k < 0 || k >= capacity t then false
  else begin
    Store.write t.store k b ~version:(Store.version t.store k + 1);
    true
  end

let fail t = t.alive <- false
let revive t = t.alive <- true
