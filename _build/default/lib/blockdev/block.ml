type id = int

type t = string
(* A block is a [size]-byte string; strings are immutable in OCaml, which
   gives the sharing guarantee advertised in the interface for free. *)

let size = 512

let zero = String.make size '\000'

let normalize s =
  let len = String.length s in
  if len = size then s
  else if len > size then String.sub s 0 size
  else s ^ String.make (size - len) '\000'

let of_string s = normalize s

let of_bytes b = normalize (Bytes.to_string b)

let to_string t = t

let to_bytes t = Bytes.of_string t

let get t i =
  if i < 0 || i >= size then invalid_arg "Block.get: offset out of range";
  t.[i]

let set t i c =
  if i < 0 || i >= size then invalid_arg "Block.set: offset out of range";
  let b = Bytes.of_string t in
  Bytes.set b i c;
  Bytes.unsafe_to_string b

let blit_into t dst off = Bytes.blit_string t 0 dst off size

let equal = String.equal
let compare = String.compare

let pp ppf t =
  let prefix = String.sub t 0 8 in
  Format.fprintf ppf "block<";
  String.iter (fun c -> Format.fprintf ppf "%02x" (Char.code c)) prefix;
  Format.fprintf ppf "...>"
