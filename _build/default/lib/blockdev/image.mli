(** Device images: dump any block device to a host file and restore it.

    Lets a simulated device outlive a process — format a file system into
    an image, inspect it later, restore it into a fresh (even replicated)
    device.  The format is a small header followed by the raw blocks:

    {v
    bytes 0..7   magic "BRIMG1\n\000"
    bytes 8..11  capacity in blocks, big-endian u32
    then capacity * Block.size raw block bytes
    v} *)

val magic : string

val save :
  (module Device_intf.S with type t = 'dev) -> 'dev -> string -> (unit, string) result
(** [save (module Dev) dev path] reads every block and writes the image.
    Fails (with a message) on IO errors or if any block is unreadable
    (e.g. a reliable device with no available copy). *)

val restore :
  (module Device_intf.S with type t = 'dev) -> 'dev -> string -> (unit, string) result
(** [restore (module Dev) dev path] writes the image's blocks into an
    existing device of exactly the same capacity. *)

val load_mem : string -> (Mem_device.t, string) result
(** Convenience: build a fresh in-memory device from an image. *)

val capacity_of : string -> (int, string) result
(** Read just the header. *)
