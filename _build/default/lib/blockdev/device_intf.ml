(** The ordinary block-device interface.

    This is the boundary the paper's reliable device preserves: a file
    system written against this signature cannot tell one disk from a set
    of replicated server processes.  [Fs.Flat_fs] is a functor over it, and
    both {!Mem_device} (one local disk) and [Blockrep.Reliable_device] (the
    replicated device) implement it. *)

module type S = sig
  type t

  val capacity : t -> int
  (** Number of addressable blocks. *)

  val read_block : t -> Block.id -> Block.t option
  (** [None] when the device cannot currently serve the request (replica
      quorum lost, all servers down...).  A plain disk never says [None]
      for an in-range block. *)

  val write_block : t -> Block.id -> Block.t -> bool
  (** [false] when the write could not be performed. *)
end
