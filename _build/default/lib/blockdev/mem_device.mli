(** A single in-memory disk: the non-replicated baseline device.

    Implements {!Device_intf.S}; useful for testing the file system in
    isolation and as the "one ordinary device" a reliable device is
    compared against. *)

type t

val create : capacity:int -> t

include Device_intf.S with type t := t

val fail : t -> unit
(** Simulate the single disk dying: all subsequent operations return
    [None] / [false] — the contrast motivating replication. *)

val revive : t -> unit
