lib/blockdev/version_vector.ml: Array Format Int
