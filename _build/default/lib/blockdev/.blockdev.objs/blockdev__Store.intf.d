lib/blockdev/store.mli: Block Version_vector
