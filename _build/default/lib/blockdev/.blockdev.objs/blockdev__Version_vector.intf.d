lib/blockdev/version_vector.mli: Format
