lib/blockdev/mem_device.mli: Device_intf
