lib/blockdev/block.ml: Bytes Char Format String
