lib/blockdev/image.mli: Device_intf Mem_device
