lib/blockdev/mem_device.ml: Store
