lib/blockdev/device_intf.ml: Block
