lib/blockdev/image.ml: Block Bytes Device_intf Fun Int32 Mem_device Printf Result String
