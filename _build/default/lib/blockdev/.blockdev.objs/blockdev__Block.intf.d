lib/blockdev/block.mli: Format
