lib/blockdev/store.ml: Array Block List Printf Version_vector
