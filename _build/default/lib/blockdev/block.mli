(** Fixed-size data blocks.

    The reliable device presents the file system with an ordinary
    block-structured device, so the unit of replication — and of versioning —
    is the fixed-size block. *)

type id = int
(** Index of a block on the device, [0 .. capacity-1]. *)

type t
(** Immutable block contents.  Immutability keeps replicas safe to share in
    the simulator: handing a block to another site can never alias live
    mutable state. *)

val size : int
(** Bytes per block (512, the classic device sector). *)

val zero : t
(** The all-zeroes block: initial contents of every block on a fresh
    device. *)

val of_bytes : bytes -> t
(** [of_bytes b] copies [b] into a block, truncating or zero-padding to
    {!size}. *)

val of_string : string -> t
(** Like {!of_bytes}, from a string. *)

val to_bytes : t -> bytes
(** A fresh copy of the contents. *)

val to_string : t -> string

val get : t -> int -> char
(** Byte at an offset; raises [Invalid_argument] out of range. *)

val set : t -> int -> char -> t
(** Functional update of a single byte (copies). *)

val blit_into : t -> bytes -> int -> unit
(** [blit_into b dst off] copies the block into [dst] at [off]. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
(** Prints a short hex prefix, for debugging. *)
