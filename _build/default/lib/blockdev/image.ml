let magic = "BRIMG1\n\000"

let ( let* ) = Result.bind

let with_out path f =
  match open_out_bin path with
  | exception Sys_error msg -> Error msg
  | oc -> Fun.protect ~finally:(fun () -> close_out oc) (fun () -> f oc)

let with_in path f =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic -> Fun.protect ~finally:(fun () -> close_in ic) (fun () -> f ic)

let save (type dev) (module Dev : Device_intf.S with type t = dev) (dev : dev) path =
  let capacity = Dev.capacity dev in
  with_out path (fun oc ->
      output_string oc magic;
      let header = Bytes.create 4 in
      Bytes.set_int32_be header 0 (Int32.of_int capacity);
      output_bytes oc header;
      let rec dump k =
        if k >= capacity then Ok ()
        else
          match Dev.read_block dev k with
          | Some block ->
              output_string oc (Block.to_string block);
              dump (k + 1)
          | None -> Error (Printf.sprintf "block %d unreadable" k)
      in
      dump 0)

let read_header ic =
  match really_input_string ic (String.length magic) with
  | exception End_of_file -> Error "truncated image header"
  | m when m <> magic -> Error "not a device image (bad magic)"
  | _ -> (
      match really_input_string ic 4 with
      | exception End_of_file -> Error "truncated image header"
      | cap ->
          let capacity = Int32.to_int (Bytes.get_int32_be (Bytes.of_string cap) 0) in
          if capacity <= 0 then Error "corrupt image capacity" else Ok capacity)

let capacity_of path = with_in path read_header

let restore (type dev) (module Dev : Device_intf.S with type t = dev) (dev : dev) path =
  with_in path (fun ic ->
      let* capacity = read_header ic in
      if capacity <> Dev.capacity dev then
        Error
          (Printf.sprintf "image holds %d blocks but the device has %d" capacity (Dev.capacity dev))
      else begin
        let rec fill k =
          if k >= capacity then Ok ()
          else
            match really_input_string ic Block.size with
            | exception End_of_file -> Error (Printf.sprintf "image truncated at block %d" k)
            | raw ->
                if Dev.write_block dev k (Block.of_string raw) then fill (k + 1)
                else Error (Printf.sprintf "device refused block %d" k)
        in
        fill 0
      end)

let load_mem path =
  let* capacity = capacity_of path in
  let dev = Mem_device.create ~capacity in
  let* () = restore (module Mem_device) dev path in
  Ok dev
