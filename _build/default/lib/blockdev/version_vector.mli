(** Per-block version numbers, exchanged during recovery.

    A version vector [v] maps every block index to the version number of the
    copy a site holds.  Recovery (Figures 5 and 6 of the paper) is a
    version-vector exchange: the recovering site sends its [v], the source
    answers with its own [v'] plus the blocks whose versions differ. *)

type t

val create : int -> t
(** [create n] is the all-zero vector over [n] blocks: a freshly initialised
    device where nothing has been written. *)

val length : t -> int

val get : t -> int -> int
(** Version of one block; raises [Invalid_argument] out of range. *)

val set : t -> int -> int -> unit

val bump : t -> int -> int
(** [bump t k] increments block [k]'s version and returns the new value. *)

val copy : t -> t

val stale_blocks : mine:t -> theirs:t -> int list
(** [stale_blocks ~mine ~theirs] is the ascending list of block indices where
    [theirs] is strictly newer — the blocks a recovering site must fetch.
    The vectors must have equal length. *)

val dominates : t -> t -> bool
(** [dominates a b] iff every component of [a] is [>=] the matching
    component of [b]: [a]'s holder is at least as current everywhere. *)

val max_merge : t -> t -> t
(** Component-wise maximum (fresh vector). *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
