type t = int array

let create n =
  if n < 0 then invalid_arg "Version_vector.create: negative length";
  Array.make n 0

let length = Array.length

let get t k =
  if k < 0 || k >= Array.length t then invalid_arg "Version_vector.get: index out of range";
  t.(k)

let set t k v =
  if k < 0 || k >= Array.length t then invalid_arg "Version_vector.set: index out of range";
  if v < 0 then invalid_arg "Version_vector.set: negative version";
  t.(k) <- v

let bump t k =
  set t k (get t k + 1);
  t.(k)

let copy = Array.copy

let check_lengths a b name =
  if Array.length a <> Array.length b then invalid_arg ("Version_vector." ^ name ^ ": length mismatch")

let stale_blocks ~mine ~theirs =
  check_lengths mine theirs "stale_blocks";
  let rec collect k acc =
    if k < 0 then acc else collect (k - 1) (if theirs.(k) > mine.(k) then k :: acc else acc)
  in
  collect (Array.length mine - 1) []

let dominates a b =
  check_lengths a b "dominates";
  let rec check k = k >= Array.length a || (a.(k) >= b.(k) && check (k + 1)) in
  check 0

let max_merge a b =
  check_lengths a b "max_merge";
  Array.mapi (fun k va -> Int.max va b.(k)) a

let equal a b = a = b

let pp ppf t =
  Format.fprintf ppf "[";
  Array.iteri (fun i v -> if i = 0 then Format.fprintf ppf "%d" v else Format.fprintf ppf ";%d" v) t;
  Format.fprintf ppf "]"
