(* Traffic study: Figures 11 and 12, plus a trace-driven breakdown.

   First the analytic message-count curves for both network environments;
   then a synthetic BSD-like trace (2.5 reads per write, skewed blocks) is
   replayed against all three schemes and the measured per-category
   transmission counts are printed, showing where each scheme spends its
   messages. *)

let replay_trace scheme =
  let config =
    Blockrep.Config.make_exn ~scheme ~n_sites:5 ~n_blocks:64 ~seed:2024 ()
  in
  let cluster = Blockrep.Cluster.create config in
  let entries =
    Workload.Trace.synthesize_bsd_like ~rng:(Util.Prng.create 99) ~n_blocks:64 ~length:1000
  in
  let results = Workload.Runner.replay cluster entries ~site:0 in
  let traffic = Blockrep.Cluster.traffic cluster in
  Format.printf "@.=== %s: 1000-op BSD-like trace (r:w = %.2f), 5 sites ===@."
    (Blockrep.Types.scheme_to_string scheme)
    (Workload.Trace.read_write_ratio entries);
  Format.printf "ops ok: %d reads, %d writes; transmissions: %d total@."
    results.Workload.Runner.read_ok results.Workload.Runner.write_ok (Net.Traffic.total traffic);
  Format.printf "%a@." Net.Traffic.pp traffic

let () =
  Format.printf "%a@.@."
    (fun ppf ->
      Report.Figures.print_traffic ppf
        ~title:"Figure 11: multicast transmissions per (1 write + x reads), rho=0.05")
    (Report.Figures.figure_11 ());
  Format.printf "%a@."
    (fun ppf ->
      Report.Figures.print_traffic ppf
        ~title:"Figure 12: unique-address transmissions per (1 write + x reads), rho=0.05")
    (Report.Figures.figure_12 ());
  List.iter replay_trace Blockrep.Types.all_schemes;
  (* The punchline the paper draws from these numbers. *)
  let c scheme =
    Analysis.Traffic_model.workload_cost Analysis.Traffic_model.Multicast scheme ~n:5 ~rho:0.05
      ~reads_per_write:2.5
  in
  Format.printf
    "@.at the observed 2.5:1 read:write ratio (5 sites, multicast): voting %.1f vs AC %.1f vs NAC %.1f@."
    (c Analysis.Traffic_model.Voting)
    (c Analysis.Traffic_model.Available_copy)
    (c Analysis.Traffic_model.Naive_available_copy)
