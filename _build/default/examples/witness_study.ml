(* Witness study: the storage/availability trade-off of the reference [10]
   extension.

   Witnesses vote and carry version numbers but store no blocks.  This
   example compares, at equal total site counts, full replication against
   configurations that replace data copies with witnesses: the quorum
   arithmetic is unchanged, storage shrinks, and availability gives up a
   little because reads must still reach a current data copy. *)

let rho = 0.1

let simulate ~data ~witnesses =
  let n = data + witnesses in
  let config =
    Blockrep.Config.make_exn ~scheme:Blockrep.Types.Voting ~n_sites:n ~n_blocks:4
      ~witnesses:(List.init witnesses (fun i -> data + i))
      ~latency:(Util.Dist.Constant 0.001) ~seed:2025 ()
  in
  let cluster = Blockrep.Cluster.create config in
  let failures = Workload.Failure_gen.attach cluster ~rng:(Util.Prng.create 3) ~lambda:rho ~mu:1.0 in
  (* A steady write stream keeps repaired data copies current, so the
     measured availability isolates the witness effect. *)
  let writes = Workload.Access_gen.create ~rng:(Util.Prng.create 5) ~n_blocks:4 ~reads_per_write:0.0 () in
  ignore
    (Workload.Runner.run_open_loop cluster writes ~site:0 ~rate:25.0 ~horizon:15_000.0
      : Workload.Runner.results);
  Workload.Failure_gen.stop failures;
  Blockrep.Availability_monitor.availability (Blockrep.Cluster.monitor cluster)

let () =
  Printf.printf "Voting with witnesses at rho = %.2f (model = lazy-currency approximation):\n\n" rho;
  Printf.printf "%-16s %10s %10s %16s\n" "configuration" "model" "simulated" "storage (blocks)";
  List.iter
    (fun (data, witnesses) ->
      let model = Analysis.Witness_model.majority_availability ~data ~witnesses ~rho in
      let sim = simulate ~data ~witnesses in
      let _, storage = Analysis.Witness_model.storage_blocks ~data ~witnesses ~n_blocks:100 in
      Printf.printf "%8dd + %dw %10.5f %10.5f %16d\n" data witnesses model sim storage)
    [ (3, 0); (2, 1); (1, 2); (5, 0); (4, 1); (3, 2) ];
  print_newline ();
  Printf.printf "Reading the table:\n";
  Printf.printf "- 2 data + 1 witness matches 3 full copies almost exactly while storing a third less;\n";
  Printf.printf "- pushing further (1 data + 2 witnesses) keeps the quorum math but loses availability\n";
  Printf.printf "  whenever the lone data copy is down — witnesses cannot serve blocks;\n";
  Printf.printf "- the same pattern holds at five sites.\n"
