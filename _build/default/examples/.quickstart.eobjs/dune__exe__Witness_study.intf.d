examples/witness_study.mli:
