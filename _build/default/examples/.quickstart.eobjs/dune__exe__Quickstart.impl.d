examples/quickstart.ml: Blockdev Blockrep Format Net Printf Sim String
