examples/traffic_study.mli:
