examples/filesystem_demo.ml: Blockdev Blockrep Bytes Fs List Printf Sim String
