examples/witness_study.ml: Analysis Blockrep List Printf Util Workload
