examples/partition_demo.ml: Blockdev Blockrep Format Printf Sim String
