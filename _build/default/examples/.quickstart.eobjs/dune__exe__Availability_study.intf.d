examples/availability_study.mli:
