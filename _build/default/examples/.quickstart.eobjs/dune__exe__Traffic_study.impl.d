examples/traffic_study.ml: Analysis Blockrep Format List Net Report Util Workload
