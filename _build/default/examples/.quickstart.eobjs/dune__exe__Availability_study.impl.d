examples/availability_study.ml: Array Float Format List Report Sys
