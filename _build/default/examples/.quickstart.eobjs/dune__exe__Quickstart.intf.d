examples/quickstart.mli:
