examples/filesystem_demo.mli:
