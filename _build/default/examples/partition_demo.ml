(* Partitions: why available copy needs a partition-free network.

   The paper is explicit (Sections 3.2 and 6): available copy assumes the
   network cannot partition; voting, by contrast, "obviates the concern
   for network partitions".  This demo splits a 5-site network into {0,1}
   and {2,3,4} and issues conflicting writes from both sides:

   - under voting, the minority side cannot reach a quorum and is refused,
     so no conflict can ever be created;
   - under available copy, both sides happily accept writes to the same
     block — a split brain that violates consistency the moment the
     partition heals. *)

let payload tag = Blockdev.Block.of_string tag

let demo scheme =
  Format.printf "@.=== %s under a {0,1} | {2,3,4} partition ===@."
    (Blockrep.Types.scheme_to_string scheme);
  let config = Blockrep.Config.make_exn ~scheme ~n_sites:5 ~n_blocks:4 () in
  let cluster = Blockrep.Cluster.create config in
  ignore (Blockrep.Cluster.write_sync cluster ~site:0 ~block:0 (payload "before-partition"));
  Blockrep.Cluster.run_until cluster 10.0;

  Blockrep.Cluster.partition cluster [ [ 0; 1 ]; [ 2; 3; 4 ] ];
  let w_minority = Blockrep.Cluster.write_sync cluster ~site:0 ~block:0 (payload "minority-write") in
  let w_majority = Blockrep.Cluster.write_sync cluster ~site:2 ~block:0 (payload "majority-write") in
  let show = function
    | Ok v -> Printf.sprintf "accepted (v%d)" v
    | Error e -> Printf.sprintf "refused (%s)" (Blockrep.Types.failure_reason_to_string e)
  in
  Format.printf "write at minority site 0: %s@." (show w_minority);
  Format.printf "write at majority site 2: %s@." (show w_majority);

  Blockrep.Cluster.heal cluster;
  Blockrep.Cluster.run_until cluster (Sim.Engine.now (Blockrep.Cluster.engine cluster) +. 20.0);
  let at site =
    match Blockrep.Cluster.read_sync cluster ~site ~block:0 with
    | Ok (b, v) ->
        let s = Blockdev.Block.to_string b in
        let tag = String.sub s 0 (try String.index s '\000' with Not_found -> 16) in
        Printf.sprintf "%S v%d" tag v
    | Error e -> Blockrep.Types.failure_reason_to_string e
  in
  Format.printf "after healing: site0 sees %s, site2 sees %s@." (at 0) (at 2);
  let divergent =
    match
      ( Blockrep.Cluster.read_sync cluster ~site:0 ~block:0,
        Blockrep.Cluster.read_sync cluster ~site:2 ~block:0 )
    with
    | Ok (b0, v0), Ok (b2, v2) -> v0 = v2 && not (Blockdev.Block.equal b0 b2)
    | _ -> false
  in
  if divergent then
    Format.printf "SPLIT BRAIN: same version number, different contents — consistency lost.@."
  else Format.printf "no divergence: consistency preserved.@."

let () =
  demo Blockrep.Types.Voting;
  demo Blockrep.Types.Available_copy;
  Format.printf
    "@.Voting pays for partition tolerance in messages; available copy buys cheap operation@.\
     by assuming partitions away — exactly the trade-off of Section 6.@."
