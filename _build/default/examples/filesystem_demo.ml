(* File-system transparency demo (the Section 2 argument).

   Fs.Flat_fs is a functor over the ordinary block-device signature.  We
   mount the *same* file-system code twice: once on a single in-memory
   disk, once on a replicated reliable device — and run the same workload.
   On the single disk, a media failure kills everything; on the reliable
   device, sites die and the files do not notice. *)

module Fs_on_disk = Fs.Flat_fs.Make (Blockdev.Mem_device)
module Fs_on_reliable = Fs.Flat_fs.Make (Blockrep.Reliable_device)

let check = function Ok v -> v | Error e -> failwith (Fs.Flat_fs.error_to_string e)

let exercise_files create write read list_files label =
  create "motd" |> check;
  write "motd" (Bytes.of_string "hello from a block device\n") |> check;
  create "data.log" |> check;
  write "data.log" (Bytes.of_string (String.concat "\n" (List.init 50 (Printf.sprintf "record %04d"))))
  |> check;
  let motd = read "motd" |> check in
  Printf.printf "[%s] motd = %S\n" label (Bytes.to_string motd);
  Printf.printf "[%s] files: %s\n" label (String.concat ", " (list_files () |> check))

let () =
  (* 1. One ordinary disk. *)
  let disk = Blockdev.Mem_device.create ~capacity:128 in
  let fs1 = Fs_on_disk.format disk |> check in
  exercise_files (Fs_on_disk.create fs1) (fun n b -> Fs_on_disk.write fs1 n b) (Fs_on_disk.read fs1)
    (fun () -> Fs_on_disk.list fs1)
    "single disk";
  Blockdev.Mem_device.fail disk;
  (match Fs_on_disk.read fs1 "motd" with
  | Ok _ -> Printf.printf "[single disk] still readable?!\n"
  | Error e -> Printf.printf "[single disk] after disk failure: %s\n" (Fs.Flat_fs.error_to_string e));

  (* 2. The same file system code on a reliable device (available copy,
     3 sites). *)
  print_newline ();
  let config =
    Blockrep.Config.make_exn ~scheme:Blockrep.Types.Available_copy ~n_sites:3 ~n_blocks:128 ()
  in
  let device = Blockrep.Reliable_device.of_config config in
  let cluster = Blockrep.Reliable_device.cluster device in
  let fs2 = Fs_on_reliable.format device |> check in
  exercise_files (Fs_on_reliable.create fs2)
    (fun n b -> Fs_on_reliable.write fs2 n b)
    (Fs_on_reliable.read fs2)
    (fun () -> Fs_on_reliable.list fs2)
    "reliable device";

  Blockrep.Cluster.fail_site cluster 0;
  Blockrep.Cluster.fail_site cluster 2;
  Printf.printf "[reliable device] sites 0 and 2 failed; appending to data.log...\n";
  Fs_on_reliable.append fs2 "data.log" (Bytes.of_string "\nwritten during double failure") |> check;
  (match Fs_on_reliable.read fs2 "motd" with
  | Ok b -> Printf.printf "[reliable device] motd still reads: %S\n" (Bytes.to_string b)
  | Error e -> Printf.printf "[reliable device] read failed: %s\n" (Fs.Flat_fs.error_to_string e));

  (* Repair, let recovery finish, and check structural integrity. *)
  Blockrep.Cluster.repair_site cluster 0;
  Blockrep.Cluster.repair_site cluster 2;
  Blockrep.Cluster.run_until cluster (Sim.Engine.now (Blockrep.Cluster.engine cluster) +. 100.0);
  Fs_on_reliable.fsck fs2 |> check;
  Printf.printf "[reliable device] all sites repaired, fsck clean, replicas consistent: %b\n"
    (Blockrep.Cluster.consistent_available_stores cluster);
  let st = Fs_on_reliable.stat fs2 "data.log" |> check in
  Printf.printf "[reliable device] data.log: %d bytes in %d blocks (inode %d)\n" st.Fs.Flat_fs.size
    st.Fs.Flat_fs.blocks_used st.Fs.Flat_fs.inode
