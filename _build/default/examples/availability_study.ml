(* Availability study: Figures 9 and 10 of the paper, live.

   For each failure-to-repair ratio rho we print the availability of a
   replicated block under the three schemes, computed three independent
   ways: the paper's closed forms, an exact Markov-chain solution, and a
   discrete-event simulation of the actual protocols.  Available copy with
   n copies beats voting with 2n copies everywhere, and the naive variant
   is indistinguishable below rho = 0.1 — the paper's headline claims. *)

let () =
  let simulate = Array.length Sys.argv > 1 && Sys.argv.(1) = "--simulate" in
  if not simulate then
    print_endline "(analytic only; pass --simulate to add event-driven measurements)\n";
  let fig9 =
    Report.Figures.figure_9_10 ~n_copies:3 ~simulate ~sim_horizon:20_000.0 ()
  in
  Format.printf "%a@.@."
    (fun ppf -> Report.Figures.print_availability ppf ~title:"Figure 9: 3 copies (voting: 6)")
    fig9;
  let fig10 =
    Report.Figures.figure_9_10 ~n_copies:4 ~simulate ~sim_horizon:20_000.0 ()
  in
  Format.printf "%a@.@."
    (fun ppf -> Report.Figures.print_availability ppf ~title:"Figure 10: 4 copies (voting: 8)")
    fig10;
  (* The paper's reading of the graphs, verified mechanically. *)
  let all_dominate =
    List.for_all
      (fun (r : Report.Figures.availability_row) -> r.rho = 0.0 || (r.ac_chain > r.voting && r.nac_chain > r.voting))
      (fig9 @ fig10)
  in
  Format.printf "available copy dominates voting at every rho > 0: %b@." all_dominate;
  let ac_nac_close =
    List.for_all
      (fun (r : Report.Figures.availability_row) ->
        r.rho > 0.1 || Float.abs (r.ac_chain -. r.nac_chain) < 0.002)
      (fig9 @ fig10)
  in
  Format.printf "AC and NAC within 0.002 for rho <= 0.1: %b@." ac_nac_close
