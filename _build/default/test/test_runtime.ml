(* Unit tests for Blockrep.Runtime: the round/timeout machinery beneath
   all three protocols, exercised directly. *)

module Runtime = Blockrep.Runtime
module Wire = Blockrep.Wire
module Types = Blockrep.Types
module Int_set = Blockrep.Types.Int_set

let make ?(n = 4) ?(timeout = 4.0) () =
  let config =
    Blockrep.Config.make_exn ~scheme:Types.Voting ~n_sites:n ~n_blocks:4
      ~latency:(Util.Dist.Constant 1.0) ~op_timeout:timeout ~seed:1414 ()
  in
  Runtime.create config

let some_payload rid = Wire.Write_ack { rid; block = 0 }

let test_round_completes_when_all_reply () =
  let rt = make () in
  let engine = Runtime.engine rt in
  let result = ref None in
  let rid =
    Runtime.begin_round rt ~coordinator:0
      ~expected:(Types.int_set_of_list [ 1; 2 ])
      ~on_complete:(fun outcome replies -> result := Some (outcome, List.length replies))
  in
  Runtime.reply rt ~rid ~from:1 (some_payload rid);
  Alcotest.(check bool) "not yet" true (!result = None);
  Runtime.reply rt ~rid ~from:2 (some_payload rid);
  Alcotest.(check bool) "completes on the final reply" true
    (!result = Some (Runtime.Complete, 2));
  Alcotest.(check bool) "round closed" false (Runtime.round_active rt rid);
  Sim.Engine.run engine

let test_round_timeout_with_partial_replies () =
  let rt = make ~timeout:4.0 () in
  let engine = Runtime.engine rt in
  let result = ref None in
  let rid =
    Runtime.begin_round rt ~coordinator:0
      ~expected:(Types.int_set_of_list [ 1; 2; 3 ])
      ~on_complete:(fun outcome replies -> result := Some (outcome, List.length replies))
  in
  Runtime.reply rt ~rid ~from:1 (some_payload rid);
  Sim.Engine.run_until engine 10.0;
  Alcotest.(check bool) "timed out with the replies received" true
    (!result = Some (Runtime.Timeout, 1))

let test_round_empty_expected_completes_async () =
  let rt = make () in
  let engine = Runtime.engine rt in
  let result = ref None in
  ignore
    (Runtime.begin_round rt ~coordinator:0 ~expected:Int_set.empty ~on_complete:(fun outcome replies ->
         result := Some (outcome, List.length replies)));
  Alcotest.(check bool) "not synchronous" true (!result = None);
  Sim.Engine.run_until engine 1.0;
  Alcotest.(check bool) "completes via the engine" true (!result = Some (Runtime.Complete, 0))

let test_duplicate_replies_ignored () =
  let rt = make () in
  let result = ref None in
  let rid =
    Runtime.begin_round rt ~coordinator:0
      ~expected:(Types.int_set_of_list [ 1; 2 ])
      ~on_complete:(fun _ replies -> result := Some (List.length replies))
  in
  Runtime.reply rt ~rid ~from:1 (some_payload rid);
  Runtime.reply rt ~rid ~from:1 (some_payload rid);
  Alcotest.(check bool) "duplicate did not complete the round" true (!result = None);
  Runtime.reply rt ~rid ~from:2 (some_payload rid);
  Alcotest.(check bool) "each site counted once" true (!result = Some 2)

let test_late_reply_is_harmless () =
  let rt = make ~timeout:2.0 () in
  let engine = Runtime.engine rt in
  let completions = ref 0 in
  let rid =
    Runtime.begin_round rt ~coordinator:0
      ~expected:(Types.int_set_of_list [ 1 ])
      ~on_complete:(fun _ _ -> incr completions)
  in
  Sim.Engine.run_until engine 5.0;
  Alcotest.(check int) "completed by timeout" 1 !completions;
  (* The straggler arrives after the round is gone. *)
  Runtime.reply rt ~rid ~from:1 (some_payload rid);
  Alcotest.(check int) "no double completion" 1 !completions

let test_coordinator_failure_aborts_round () =
  let rt = make () in
  let outcome = ref None in
  ignore
    (Runtime.begin_round rt ~coordinator:2
       ~expected:(Types.int_set_of_list [ 1 ])
       ~on_complete:(fun o _ -> outcome := Some o));
  Runtime.fail_site rt 2;
  Alcotest.(check bool) "aborted synchronously with the failure" true (!outcome = Some Runtime.Aborted)

let test_fail_site_preserves_disk_clears_volatile () =
  let rt = make () in
  let s = Runtime.site rt 1 in
  Blockdev.Store.write s.Runtime.store 0 (Blockdev.Block.of_string "on disk") ~version:3;
  s.Runtime.w <- Types.int_set_of_list [ 0; 1 ];
  Runtime.cache_info rt 1 (Runtime.make_info rt 2);
  Runtime.fail_site rt 1;
  Alcotest.(check bool) "state failed" true (s.Runtime.state = Types.Failed);
  Alcotest.(check int) "versions survive" 3 (Blockdev.Store.version s.Runtime.store 0);
  Alcotest.(check bool) "was-available survives" true
    (Int_set.equal s.Runtime.w (Types.int_set_of_list [ 0; 1 ]));
  Alcotest.(check bool) "peer cache cleared" true (Array.for_all (( = ) None) s.Runtime.cache)

let test_state_change_listeners () =
  let rt = make () in
  let log = ref [] in
  Runtime.on_state_change rt (fun i st -> log := (i, st) :: !log);
  Runtime.set_state rt 0 Types.Comatose;
  Runtime.set_state rt 0 Types.Comatose (* no-op *);
  Runtime.set_state rt 0 Types.Available;
  Alcotest.(check int) "two real transitions" 2 (List.length !log)

let test_peers_matching () =
  let rt = make () in
  Runtime.fail_site rt 3;
  Runtime.set_state rt 2 Types.Comatose;
  (* up_peers sees network liveness; peers_matching filters on protocol
     state. *)
  Alcotest.(check bool) "up peers of 0" true
    (Int_set.equal (Runtime.up_peers rt 0) (Types.int_set_of_list [ 1; 2 ]));
  Alcotest.(check bool) "available peers of 0" true
    (Int_set.equal
       (Runtime.peers_matching rt 0 (fun s -> s.Runtime.state = Types.Available))
       (Types.int_set_of_list [ 1 ]))

let test_make_info_snapshot () =
  let rt = make () in
  let s = Runtime.site rt 2 in
  Blockdev.Store.write s.Runtime.store 1 (Blockdev.Block.of_string "x") ~version:5;
  let info = Runtime.make_info rt 2 in
  Alcotest.(check int) "origin" 2 info.Wire.origin;
  Alcotest.(check int) "versions snapshot" 5 (Blockdev.Version_vector.get info.Wire.versions 1);
  (* Later writes do not mutate the snapshot. *)
  Blockdev.Store.write s.Runtime.store 1 (Blockdev.Block.of_string "y") ~version:6;
  Alcotest.(check int) "immutable snapshot" 5 (Blockdev.Version_vector.get info.Wire.versions 1)

let test_repair_requires_failed () =
  let rt = make () in
  let called = ref false in
  Runtime.repair_site rt 0 (fun _ -> called := true);
  Alcotest.(check bool) "repair of an up site is a no-op" false !called;
  Runtime.fail_site rt 0;
  Runtime.repair_site rt 0 (fun _ -> called := true);
  Alcotest.(check bool) "repair of a failed site runs the hook" true !called

let () =
  Alcotest.run "runtime"
    [
      ( "rounds",
        [
          Alcotest.test_case "completes on all replies" `Quick test_round_completes_when_all_reply;
          Alcotest.test_case "timeout with partial replies" `Quick test_round_timeout_with_partial_replies;
          Alcotest.test_case "empty expected" `Quick test_round_empty_expected_completes_async;
          Alcotest.test_case "duplicate replies" `Quick test_duplicate_replies_ignored;
          Alcotest.test_case "late reply harmless" `Quick test_late_reply_is_harmless;
          Alcotest.test_case "coordinator failure aborts" `Quick test_coordinator_failure_aborts_round;
        ] );
      ( "sites",
        [
          Alcotest.test_case "failure semantics" `Quick test_fail_site_preserves_disk_clears_volatile;
          Alcotest.test_case "state listeners" `Quick test_state_change_listeners;
          Alcotest.test_case "peer queries" `Quick test_peers_matching;
          Alcotest.test_case "info snapshots" `Quick test_make_info_snapshot;
          Alcotest.test_case "repair gating" `Quick test_repair_requires_failed;
        ] );
    ]
