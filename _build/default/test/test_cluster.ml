(* Integration tests across the whole cluster: invariants under random
   failure schedules, availability accounting, and cross-scheme checks. *)

module Cluster = Blockrep.Cluster
module Types = Blockrep.Types
module Block = Blockdev.Block

let make scheme ?(n = 3) ?(blocks = 8) ?(seed = 303) ?(track_liveness = false) () =
  Cluster.create (Blockrep.Config.make_exn ~scheme ~n_sites:n ~n_blocks:blocks ~track_liveness ~seed ())

let settle c = Cluster.run_until c (Sim.Engine.now (Cluster.engine c) +. 50.0)

(* ------------------------------------------------------------------ *)
(* The linearizability-style oracle: a random single-client workload    *)
(* with failure injection; successful reads must return the latest      *)
(* successfully written value.                                          *)
(* ------------------------------------------------------------------ *)

let oracle_run scheme seed steps =
  let n = 4 and blocks = 4 in
  let c = make scheme ~n ~blocks ~seed () in
  let rng = Util.Prng.create (seed * 7) in
  let latest = Array.make blocks None in
  let up = Array.make n true in
  let violations = ref [] in
  for step = 1 to steps do
    let roll = Util.Prng.int rng 20 in
    if roll < 3 then begin
      let s = Util.Prng.int rng n in
      if up.(s) then Cluster.fail_site c s else Cluster.repair_site c s;
      up.(s) <- not up.(s)
    end
    else if roll = 3 then settle c
    else begin
      let block = Util.Prng.int rng blocks in
      let site = Util.Prng.int rng n in
      if roll < 11 then begin
        let tag = Printf.sprintf "t%d" step in
        match Cluster.write_sync c ~site ~block (Block.of_string tag) with
        | Ok _ ->
            latest.(block) <- Some tag;
            (* Propagation is asynchronous for fire-and-forget schemes;
               reads at other sites are checked after settling below, and
               same-site reads are always current. *)
            settle c
        | Error _ -> ()
      end
      else
        match (Cluster.read_sync c ~site ~block, latest.(block)) with
        | Ok (b, _), Some want ->
            let got = String.sub (Block.to_string b) 0 (String.length want) in
            if got <> want then violations := (step, got, want) :: !violations
        | Ok _, None | Error _, _ -> ()
    end
  done;
  !violations

let test_oracle scheme () =
  List.iter
    (fun seed ->
      match oracle_run scheme seed 150 with
      | [] -> ()
      | (step, got, want) :: _ ->
          Alcotest.failf "seed %d: stale read at step %d (got %s, want %s)" seed step got want)
    [ 1; 2; 3; 4; 5 ]

let prop_consistency_after_settling scheme =
  QCheck.Test.make
    ~name:
      (Printf.sprintf "%s: available stores agree after any failure schedule"
         (Types.scheme_to_string scheme))
    ~count:40
    QCheck.(pair small_int (list_of_size (Gen.int_range 0 25) (pair (int_range 0 3) bool)))
    (fun (seed, schedule) ->
      let c = make scheme ~n:4 ~seed:(seed + 1) () in
      let step = ref 0 in
      List.iter
        (fun (site, fail) ->
          incr step;
          if fail then Cluster.fail_site c site else Cluster.repair_site c site;
          (* Interleave a write from the first available site, if any. *)
          let writer =
            List.find_opt (fun i -> Cluster.site_state c i = Types.Available) [ 0; 1; 2; 3 ]
          in
          Option.iter
            (fun site ->
              ignore
                (Cluster.write_sync c ~site ~block:(!step mod 8)
                   (Block.of_string (Printf.sprintf "step%d" !step))))
            writer;
          settle c)
        schedule;
      (* Bring everyone back so recovery has a chance to finish. *)
      for i = 0 to 3 do
        Cluster.repair_site c i
      done;
      settle c;
      settle c;
      Cluster.consistent_available_stores c)

(* ------------------------------------------------------------------ *)
(* Availability accounting                                             *)
(* ------------------------------------------------------------------ *)

let test_monitor_counts_copy_scheme () =
  let c = make Types.Naive_available_copy () in
  Alcotest.(check bool) "initially available" true (Cluster.system_available c);
  Cluster.fail_site c 0;
  Cluster.fail_site c 1;
  Alcotest.(check bool) "one copy left: available" true (Cluster.system_available c);
  Cluster.fail_site c 2;
  Alcotest.(check bool) "none left: unavailable" false (Cluster.system_available c);
  let m = Cluster.monitor c in
  Alcotest.(check int) "one outage" 1 (Blockrep.Availability_monitor.outages m)

let test_monitor_counts_voting () =
  let c = make Types.Voting ~n:5 () in
  Cluster.fail_site c 0;
  Cluster.fail_site c 1;
  Alcotest.(check bool) "3 of 5 up: quorum" true (Cluster.system_available c);
  Cluster.fail_site c 2;
  Alcotest.(check bool) "2 of 5 up: no quorum" false (Cluster.system_available c);
  Cluster.repair_site c 2;
  Alcotest.(check bool) "back to quorum" true (Cluster.system_available c);
  Alcotest.(check int) "transitions" 2
    (Blockrep.Availability_monitor.transitions (Cluster.monitor c))

let test_monitor_time_weighting () =
  let c = make Types.Voting ~n:3 () in
  Cluster.run_until c 60.0;
  Cluster.fail_site c 0;
  Cluster.fail_site c 1;
  Cluster.run_until c 100.0;
  Cluster.repair_site c 0;
  Cluster.run_until c 200.0;
  (* Unavailable from t=60 to t=100: availability 160/200 = 0.8. *)
  Alcotest.(check (float 1e-6)) "time-weighted availability" 0.8
    (Blockrep.Availability_monitor.availability (Cluster.monitor c));
  Alcotest.(check (float 1e-6)) "MTTR is the 40-unit outage" 40.0
    (Blockrep.Availability_monitor.mean_time_to_repair (Cluster.monitor c))

let test_monitor_open_outage_not_counted () =
  let c = make Types.Voting ~n:3 () in
  Cluster.fail_site c 0;
  Cluster.fail_site c 1;
  Cluster.run_until c 50.0;
  (* The outage has not ended: no completed duration yet. *)
  Alcotest.(check bool) "MTTR undefined during an open outage" true
    (Float.is_nan (Blockrep.Availability_monitor.mean_time_to_repair (Cluster.monitor c)));
  Alcotest.(check int) "but the outage is counted" 1
    (Blockrep.Availability_monitor.outages (Cluster.monitor c))

(* ------------------------------------------------------------------ *)
(* Cross-scheme comparisons under one failure trace                    *)
(* ------------------------------------------------------------------ *)

let measured_availability scheme =
  (* Latency well below the mean repair time, as the chains assume. *)
  let c =
    Cluster.create
      (Blockrep.Config.make_exn ~scheme ~n_sites:3 ~n_blocks:8 ~latency:(Util.Dist.Constant 0.001)
         ~track_liveness:true ~seed:99 ())
  in
  let gen = Workload.Failure_gen.attach c ~rng:(Util.Prng.create 1234) ~lambda:0.3 ~mu:1.0 in
  Cluster.run_until c 5_000.0;
  Workload.Failure_gen.stop gen;
  Blockrep.Availability_monitor.availability (Cluster.monitor c)

let test_scheme_ordering_under_failures () =
  (* Same seed, same failure process: AC >= NAC >= voting-with-3. *)
  let v = measured_availability Types.Voting in
  let ac = measured_availability Types.Available_copy in
  let nac = measured_availability Types.Naive_available_copy in
  if not (ac >= nac && nac > v) then Alcotest.failf "ordering: ac=%.4f nac=%.4f voting=%.4f" ac nac v

(* ------------------------------------------------------------------ *)
(* Misc                                                                *)
(* ------------------------------------------------------------------ *)

(* Long-horizon stress: heavy failure churn plus a concurrent open-loop
   workload, with the consistency invariant audited at regular pauses. *)
let stress scheme () =
  let c =
    Cluster.create
      (Blockrep.Config.make_exn ~scheme ~n_sites:5 ~n_blocks:16 ~latency:(Util.Dist.Constant 0.05)
         ~seed:1717 ())
  in
  let frng = Util.Prng.create 19 in
  let gen = Workload.Access_gen.create ~rng:(Util.Prng.create 23) ~n_blocks:16 ~reads_per_write:2.0 () in
  let issued = ref 0 in
  for round = 1 to 40 do
    let failures = Workload.Failure_gen.attach c ~rng:(Util.Prng.split frng) ~lambda:0.5 ~mu:1.0 in
    let r = Workload.Runner.run_open_loop c gen ~site:(round mod 5) ~rate:3.0 ~horizon:50.0 in
    issued := !issued + r.Workload.Runner.issued;
    (* Pause the churn and let recoveries finish before auditing. *)
    Workload.Failure_gen.stop failures;
    for i = 0 to 4 do
      Cluster.repair_site c i
    done;
    settle c;
    settle c;
    if not (Cluster.consistent_available_stores c) then
      Alcotest.failf "inconsistency after round %d (%d ops so far)" round !issued
  done;
  Alcotest.(check bool) "did real work" true (!issued > 2000)

let test_block_range_checked () =
  let c = make Types.Voting () in
  Alcotest.check_raises "read out of range" (Invalid_argument "Cluster: block index out of range")
    (fun () -> ignore (Cluster.read_sync c ~site:0 ~block:99));
  Alcotest.check_raises "write out of range" (Invalid_argument "Cluster: block index out of range")
    (fun () -> ignore (Cluster.write_sync c ~site:0 ~block:(-1) Block.zero))

let test_fail_idempotent () =
  let c = make Types.Available_copy () in
  Cluster.fail_site c 1;
  Cluster.fail_site c 1;
  Alcotest.(check bool) "still failed" true (Cluster.site_state c 1 = Types.Failed);
  Cluster.repair_site c 1;
  settle c;
  Cluster.repair_site c 1;
  settle c;
  Alcotest.(check bool) "repaired once" true (Cluster.site_state c 1 = Types.Available)

let test_deterministic_runs () =
  let run () =
    let c = make Types.Available_copy ~seed:77 () in
    let gen = Workload.Failure_gen.attach c ~rng:(Util.Prng.create 88) ~lambda:0.2 ~mu:1.0 in
    let acc =
      Workload.Runner.run_open_loop c
        (Workload.Access_gen.create ~rng:(Util.Prng.create 5) ~n_blocks:8 ~reads_per_write:2.0 ())
        ~site:0 ~rate:2.0 ~horizon:500.0
    in
    Workload.Failure_gen.stop gen;
    ( acc.Workload.Runner.read_ok,
      acc.Workload.Runner.write_ok,
      Net.Traffic.total (Cluster.traffic c),
      Blockrep.Availability_monitor.availability (Cluster.monitor c) )
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "identical replays" true (a = b)

let () =
  Alcotest.run "cluster"
    [
      ( "oracle",
        [
          Alcotest.test_case "voting reads are current" `Slow (test_oracle Types.Voting);
          Alcotest.test_case "AC reads are current" `Slow (test_oracle Types.Available_copy);
          Alcotest.test_case "NAC reads are current" `Slow (test_oracle Types.Naive_available_copy);
        ] );
      ( "invariants",
        [
          QCheck_alcotest.to_alcotest (prop_consistency_after_settling Types.Available_copy);
          QCheck_alcotest.to_alcotest (prop_consistency_after_settling Types.Naive_available_copy);
          QCheck_alcotest.to_alcotest (prop_consistency_after_settling Types.Voting);
        ] );
      ( "monitor",
        [
          Alcotest.test_case "copy-scheme predicate" `Quick test_monitor_counts_copy_scheme;
          Alcotest.test_case "voting predicate" `Quick test_monitor_counts_voting;
          Alcotest.test_case "time weighting" `Quick test_monitor_time_weighting;
          Alcotest.test_case "open outage" `Quick test_monitor_open_outage_not_counted;
        ] );
      ( "comparisons",
        [ Alcotest.test_case "scheme ordering under failures" `Slow test_scheme_ordering_under_failures ]
      );
      ( "stress",
        [
          Alcotest.test_case "voting long-run churn" `Slow (stress Types.Voting);
          Alcotest.test_case "AC long-run churn" `Slow (stress Types.Available_copy);
          Alcotest.test_case "NAC long-run churn" `Slow (stress Types.Naive_available_copy);
        ] );
      ( "misc",
        [
          Alcotest.test_case "block range checked" `Quick test_block_range_checked;
          Alcotest.test_case "fail/repair idempotent" `Quick test_fail_idempotent;
          Alcotest.test_case "deterministic replay" `Quick test_deterministic_runs;
        ] );
    ]
