(* Tests for Analysis: Voting_model, Ac_model, Nac_model, Traffic_model. *)

let check_close ?(tol = 1e-9) msg expected actual = Alcotest.(check (float tol)) msg expected actual

let rhos = [ 0.0; 0.01; 0.05; 0.1; 0.2; 0.5; 1.0 ]

(* ------------------------------------------------------------------ *)
(* Voting model                                                        *)
(* ------------------------------------------------------------------ *)

let test_binomial () =
  Alcotest.(check (float 1e-9)) "C(5,2)" 10.0 (Analysis.Voting_model.binomial 5 2);
  Alcotest.(check (float 1e-9)) "C(7,0)" 1.0 (Analysis.Voting_model.binomial 7 0);
  Alcotest.(check (float 1e-9)) "C(7,7)" 1.0 (Analysis.Voting_model.binomial 7 7);
  Alcotest.(check (float 1e-9)) "C(4,5)=0" 0.0 (Analysis.Voting_model.binomial 4 5);
  Alcotest.(check (float 1e-9)) "C(4,-1)=0" 0.0 (Analysis.Voting_model.binomial 4 (-1));
  Alcotest.(check (float 1e-3)) "C(20,10)" 184756.0 (Analysis.Voting_model.binomial 20 10)

let test_voting_perfect_sites () =
  List.iter
    (fun n -> check_close (Printf.sprintf "A_V(%d) at rho=0" n) 1.0 (Analysis.Voting_model.availability ~n ~rho:0.0))
    [ 1; 3; 5; 8 ]

let test_voting_single_copy () =
  List.iter
    (fun rho ->
      check_close "A_V(1)=1/(1+rho)" (1.0 /. (1.0 +. rho)) (Analysis.Voting_model.availability ~n:1 ~rho))
    rhos

let test_voting_three_copies_closed_form () =
  (* A_V(3) = (1 + 3 rho) / (1+rho)^3. *)
  List.iter
    (fun rho ->
      check_close
        (Printf.sprintf "A_V(3) rho=%g" rho)
        ((1.0 +. (3.0 *. rho)) /. ((1.0 +. rho) ** 3.0))
        (Analysis.Voting_model.availability ~n:3 ~rho))
    rhos

let test_voting_even_odd_identity () =
  List.iter
    (fun rho ->
      List.iter
        (fun k ->
          check_close
            (Printf.sprintf "A_V(%d)=A_V(%d)" (2 * k) ((2 * k) - 1))
            (Analysis.Voting_model.availability ~n:((2 * k) - 1) ~rho)
            (Analysis.Voting_model.availability ~n:(2 * k) ~rho))
        [ 1; 2; 3; 4; 5 ])
    rhos

let test_voting_more_copies_help () =
  (* For rho < 1, more (odd) copies mean more availability. *)
  List.iter
    (fun rho ->
      let a3 = Analysis.Voting_model.availability ~n:3 ~rho in
      let a5 = Analysis.Voting_model.availability ~n:5 ~rho in
      let a7 = Analysis.Voting_model.availability ~n:7 ~rho in
      if not (a7 > a5 && a5 > a3) then Alcotest.failf "monotonicity fails at rho=%g" rho)
    [ 0.01; 0.05; 0.1; 0.2 ]

let test_voting_upper_bound () =
  List.iter
    (fun rho ->
      List.iter
        (fun n ->
          let a = Analysis.Voting_model.availability ~n ~rho in
          let bound = Analysis.Voting_model.availability_upper_bound ~n ~rho in
          if a >= bound then Alcotest.failf "bound violated at n=%d rho=%g" n rho)
        [ 3; 5; 7 ])
    [ 0.01; 0.1; 0.5; 1.0 ]

let test_voting_upper_bound_rejects_even () =
  Alcotest.check_raises "even n rejected"
    (Invalid_argument "Voting_model.availability_upper_bound: odd n only") (fun () ->
      ignore (Analysis.Voting_model.availability_upper_bound ~n:4 ~rho:0.1))

let test_participation_limits () =
  (* Perfect sites: everyone participates. *)
  check_close "U_V = n at rho=0" 5.0 (Analysis.Voting_model.participation ~n:5 ~rho:0.0);
  (* Approximation n(1-rho) for small rho. *)
  check_close ~tol:0.01 "first-order approx" (Analysis.Voting_model.participation_approx ~n:5 ~rho:0.02)
    (Analysis.Voting_model.participation ~n:5 ~rho:0.02)

(* ------------------------------------------------------------------ *)
(* AC model                                                            *)
(* ------------------------------------------------------------------ *)

let test_ac_equation_2 () =
  let rho = 0.3 in
  check_close "eq (2)"
    ((1.0 +. (3.0 *. rho) +. (rho *. rho)) /. ((1.0 +. rho) ** 3.0))
    (Analysis.Ac_model.availability ~n:2 ~rho)

let test_ac_closed_vs_chain () =
  List.iter
    (fun rho ->
      List.iter
        (fun n ->
          check_close
            (Printf.sprintf "A_A(%d) rho=%g" n rho)
            (Markov.Chains.ac_availability ~n ~rho)
            (Analysis.Ac_model.availability ~n ~rho))
        [ 1; 2; 3; 4; 5; 6 ])
    [ 0.01; 0.1; 0.5 ]

let test_ac_closed_form_coverage () =
  Alcotest.(check bool) "closed form for n<=4" true
    (List.for_all (fun n -> Analysis.Ac_model.availability_closed ~n ~rho:0.1 <> None) [ 1; 2; 3; 4 ]);
  Alcotest.(check bool) "no closed form beyond" true
    (Analysis.Ac_model.availability_closed ~n:5 ~rho:0.1 = None)

let test_ac_lower_bound () =
  List.iter
    (fun rho ->
      List.iter
        (fun n ->
          let a = Analysis.Ac_model.availability ~n ~rho in
          let b = Analysis.Ac_model.lower_bound ~n ~rho in
          if a <= b then Alcotest.failf "bound (5) violated n=%d rho=%g (%g <= %g)" n rho a b)
        [ 2; 3; 4; 5; 6; 7 ])
    [ 0.01; 0.1; 0.5; 1.0 ]

let test_theorem_4_1 () =
  (* A_A(n) > A_V(2n-1) = A_V(2n) for rho <= 1. *)
  List.iter
    (fun rho ->
      List.iter
        (fun n ->
          let ac = Analysis.Ac_model.availability ~n ~rho in
          let v = Analysis.Voting_model.availability ~n:((2 * n) - 1) ~rho in
          if ac <= v then Alcotest.failf "theorem fails n=%d rho=%g" n rho)
        [ 2; 3; 4; 5; 6 ])
    [ 0.01; 0.1; 0.5; 1.0 ]

let test_theorem_sufficient_condition () =
  (* Inequality (6) holds for n >= 4 and rho <= 1, per the proof. *)
  List.iter
    (fun rho ->
      List.iter
        (fun n ->
          Alcotest.(check bool)
            (Printf.sprintf "condition (6) n=%d rho=%g" n rho)
            true
            (Analysis.Ac_model.theorem_4_1_sufficient ~n ~rho))
        [ 4; 5; 6; 7; 8 ])
    [ 0.1; 0.5; 1.0 ]

(* ------------------------------------------------------------------ *)
(* NAC model                                                           *)
(* ------------------------------------------------------------------ *)

let test_nac_b_poly_n1 () =
  (* B(1;rho) = 1 for any rho: single term j=k=1, coefficient 0!0!/0!1! = 1. *)
  check_close "B(1;rho)" 1.0 (Analysis.Nac_model.b_poly ~n:1 ~rho:0.37)

let test_nac_single_copy () =
  List.iter
    (fun rho ->
      if rho > 0.0 then
        check_close "A_NA(1) = 1/(1+rho)" (1.0 /. (1.0 +. rho)) (Analysis.Nac_model.availability ~n:1 ~rho))
    rhos

let test_nac_equals_v3 () =
  List.iter
    (fun rho ->
      check_close
        (Printf.sprintf "A_NA(2)=A_V(3) rho=%g" rho)
        (Analysis.Voting_model.availability ~n:3 ~rho)
        (Analysis.Nac_model.availability ~n:2 ~rho))
    rhos

let test_nac_below_ac () =
  List.iter
    (fun rho ->
      List.iter
        (fun n ->
          let nac = Analysis.Nac_model.availability ~n ~rho in
          let ac = Analysis.Ac_model.availability ~n ~rho in
          if nac > ac +. 1e-12 then Alcotest.failf "NAC above AC at n=%d rho=%g" n rho)
        [ 2; 3; 4; 5 ])
    [ 0.05; 0.2; 0.5; 1.0 ]

let test_nac_rejects_bad_rho () =
  Alcotest.check_raises "rho=0 in b_poly" (Invalid_argument "Nac_model.b_poly: rho must be positive")
    (fun () -> ignore (Analysis.Nac_model.b_poly ~n:3 ~rho:0.0))

(* ------------------------------------------------------------------ *)
(* Traffic model                                                       *)
(* ------------------------------------------------------------------ *)

let test_traffic_failure_free_limits () =
  (* With rho -> 0 every participation is n, giving the table of Section 5
     with U = n. *)
  let open Analysis.Traffic_model in
  let n = 5 and rho = 1e-9 in
  let nf = 5.0 in
  check_close ~tol:1e-6 "mc voting write" (1.0 +. nf) (write_cost Multicast Voting ~n ~rho);
  check_close ~tol:1e-6 "mc voting read" nf (read_cost Multicast Voting ~n ~rho);
  check_close ~tol:1e-6 "mc ac write" nf (write_cost Multicast Available_copy ~n ~rho);
  check_close ~tol:1e-6 "mc nac write" 1.0 (write_cost Multicast Naive_available_copy ~n ~rho);
  check_close ~tol:1e-6 "mc copy read free" 0.0 (read_cost Multicast Available_copy ~n ~rho);
  check_close ~tol:1e-6 "ua voting write" ((3.0 *. nf) -. 3.0) (write_cost Unique_address Voting ~n ~rho);
  check_close ~tol:1e-6 "ua voting read" ((2.0 *. nf) -. 2.0) (read_cost Unique_address Voting ~n ~rho);
  check_close ~tol:1e-6 "ua ac write" ((2.0 *. nf) -. 2.0)
    (write_cost Unique_address Available_copy ~n ~rho);
  check_close ~tol:1e-6 "ua nac write" (nf -. 1.0)
    (write_cost Unique_address Naive_available_copy ~n ~rho)

let test_traffic_stale_read_penalty () =
  let open Analysis.Traffic_model in
  let base = read_cost Multicast Voting ~n:5 ~rho:0.05 in
  let stale = read_cost ~stale:true Multicast Voting ~n:5 ~rho:0.05 in
  check_close "one extra message" 1.0 (stale -. base)

let test_traffic_recovery () =
  let open Analysis.Traffic_model in
  check_close ~tol:1e-6 "voting free recovery" 0.0 (recovery_cost Multicast Voting ~n:5 ~rho:0.05);
  let ac = recovery_cost Multicast Available_copy ~n:5 ~rho:0.05 in
  let u = participation Available_copy ~n:5 ~rho:0.05 in
  check_close "ac recovery = U+2" (u +. 2.0) ac;
  let ua = recovery_cost Unique_address Naive_available_copy ~n:5 ~rho:0.05 in
  let un = participation Naive_available_copy ~n:5 ~rho:0.05 in
  check_close "ua nac recovery = n+U" (5.0 +. un) ua

let test_traffic_workload_linear_in_reads () =
  let open Analysis.Traffic_model in
  let w = workload_cost Multicast Voting ~n:5 ~rho:0.05 in
  let r = read_cost Multicast Voting ~n:5 ~rho:0.05 in
  check_close "x=0 is write cost" (write_cost Multicast Voting ~n:5 ~rho:0.05)
    (w ~reads_per_write:0.0);
  check_close "slope is read cost" r (w ~reads_per_write:3.0 -. w ~reads_per_write:2.0)

let test_traffic_ordering_at_typical_ratio () =
  (* The paper's conclusion: NAC < AC < voting at any realistic mix. *)
  let open Analysis.Traffic_model in
  List.iter
    (fun env ->
      List.iter
        (fun n ->
          let cost s = workload_cost env s ~n ~rho:0.05 ~reads_per_write:2.5 in
          let v = cost Voting and ac = cost Available_copy and nac = cost Naive_available_copy in
          if not (nac < ac && ac < v) then
            Alcotest.failf "ordering fails at n=%d: v=%g ac=%g nac=%g" n v ac nac)
        [ 2; 3; 5; 8; 10 ])
    [ Multicast; Unique_address ]

let test_traffic_nac_write_constant_multicast () =
  let open Analysis.Traffic_model in
  List.iter
    (fun n ->
      check_close "nac multicast write always 1" 1.0
        (write_cost Multicast Naive_available_copy ~n ~rho:0.05))
    [ 2; 4; 8 ]

let test_traffic_rejects_small_n () =
  Alcotest.check_raises "n=1 rejected" (Invalid_argument "Traffic_model.write_cost: need n >= 2")
    (fun () ->
      ignore (Analysis.Traffic_model.write_cost Analysis.Traffic_model.Multicast Analysis.Traffic_model.Voting ~n:1 ~rho:0.1))

let prop_voting_availability_in_unit_interval =
  QCheck.Test.make ~name:"A_V within [0,1]" ~count:300
    QCheck.(pair (int_range 1 12) (float_range 0.0 5.0))
    (fun (n, rho) ->
      let a = Analysis.Voting_model.availability ~n ~rho in
      a >= 0.0 && a <= 1.0)

let prop_nac_availability_in_unit_interval =
  QCheck.Test.make ~name:"A_NA within [0,1]" ~count:300
    QCheck.(pair (int_range 1 8) (float_range 0.001 5.0))
    (fun (n, rho) ->
      let a = Analysis.Nac_model.availability ~n ~rho in
      a >= 0.0 && a <= 1.0)

let () =
  Alcotest.run "analysis"
    [
      ( "voting-model",
        [
          Alcotest.test_case "binomial" `Quick test_binomial;
          Alcotest.test_case "perfect sites" `Quick test_voting_perfect_sites;
          Alcotest.test_case "single copy" `Quick test_voting_single_copy;
          Alcotest.test_case "A_V(3) closed form" `Quick test_voting_three_copies_closed_form;
          Alcotest.test_case "even = odd identity" `Quick test_voting_even_odd_identity;
          Alcotest.test_case "more copies help" `Quick test_voting_more_copies_help;
          Alcotest.test_case "upper bound" `Quick test_voting_upper_bound;
          Alcotest.test_case "upper bound odd-only" `Quick test_voting_upper_bound_rejects_even;
          Alcotest.test_case "participation limits" `Quick test_participation_limits;
          QCheck_alcotest.to_alcotest prop_voting_availability_in_unit_interval;
        ] );
      ( "ac-model",
        [
          Alcotest.test_case "equation (2)" `Quick test_ac_equation_2;
          Alcotest.test_case "closed vs chain" `Quick test_ac_closed_vs_chain;
          Alcotest.test_case "closed form coverage" `Quick test_ac_closed_form_coverage;
          Alcotest.test_case "lower bound (5)" `Quick test_ac_lower_bound;
          Alcotest.test_case "theorem 4.1" `Quick test_theorem_4_1;
          Alcotest.test_case "sufficient condition (6)" `Quick test_theorem_sufficient_condition;
        ] );
      ( "nac-model",
        [
          Alcotest.test_case "B(1;rho)" `Quick test_nac_b_poly_n1;
          Alcotest.test_case "single copy" `Quick test_nac_single_copy;
          Alcotest.test_case "A_NA(2)=A_V(3)" `Quick test_nac_equals_v3;
          Alcotest.test_case "NAC below AC" `Quick test_nac_below_ac;
          Alcotest.test_case "bad rho rejected" `Quick test_nac_rejects_bad_rho;
          QCheck_alcotest.to_alcotest prop_nac_availability_in_unit_interval;
        ] );
      ( "traffic-model",
        [
          Alcotest.test_case "failure-free limits" `Quick test_traffic_failure_free_limits;
          Alcotest.test_case "stale read penalty" `Quick test_traffic_stale_read_penalty;
          Alcotest.test_case "recovery costs" `Quick test_traffic_recovery;
          Alcotest.test_case "linearity in reads" `Quick test_traffic_workload_linear_in_reads;
          Alcotest.test_case "scheme ordering" `Quick test_traffic_ordering_at_typical_ratio;
          Alcotest.test_case "nac write constant" `Quick test_traffic_nac_write_constant_multicast;
          Alcotest.test_case "small n rejected" `Quick test_traffic_rejects_small_n;
        ] );
    ]
