(* Tests for Blockrep.Checkpoint: durable-state snapshots of a cluster. *)

module Cluster = Blockrep.Cluster
module Checkpoint = Blockrep.Checkpoint
module Types = Blockrep.Types
module Block = Blockdev.Block

let temp () = Filename.temp_file "blockrep" ".ckpt"

let make ?(scheme = Types.Available_copy) ?(seed = 1515) () =
  Cluster.create (Blockrep.Config.make_exn ~scheme ~n_sites:3 ~n_blocks:8 ~seed ())

let ok = function Ok v -> v | Error msg -> Alcotest.failf "checkpoint: %s" msg

let settle c = Cluster.run_until c (Sim.Engine.now (Cluster.engine c) +. 50.0)

let test_roundtrip () =
  let c = make () in
  ignore (Cluster.write_sync c ~site:0 ~block:1 (Block.of_string "saved"));
  ignore (Cluster.write_sync c ~site:1 ~block:5 (Block.of_string "also saved"));
  Cluster.fail_site c 2;
  ignore (Cluster.write_sync c ~site:0 ~block:1 (Block.of_string "newer"));
  settle c;
  let path = temp () in
  ok (Checkpoint.save c path);
  (* Resurrect in a brand-new cluster. *)
  let c2 = make () in
  ok (Checkpoint.restore c2 path);
  Alcotest.(check bool) "site states restored" true (Cluster.site_state c2 2 = Types.Failed);
  Alcotest.(check bool) "up sites available" true (Cluster.site_state c2 0 = Types.Available);
  (match Cluster.read_sync c2 ~site:0 ~block:1 with
  | Ok (b, v) ->
      Alcotest.(check int) "version restored" 2 v;
      Alcotest.(check string) "content restored" "newer" (String.sub (Block.to_string b) 0 5)
  | Error e -> Alcotest.failf "read: %s" (Types.failure_reason_to_string e));
  (* W sets restored too. *)
  Alcotest.(check bool) "was-available restored" true
    (Types.Int_set.equal (Cluster.site_was_available c2 0) (Cluster.site_was_available c 0));
  (* The resurrected cluster keeps working: repair the failed site. *)
  Cluster.repair_site c2 2;
  settle c2;
  Alcotest.(check bool) "recovered after restore" true (Cluster.site_state c2 2 = Types.Available);
  Alcotest.(check bool) "consistent" true (Cluster.consistent_available_stores c2);
  Sys.remove path

let test_restore_refuses_used_cluster () =
  let c = make () in
  let path = temp () in
  ok (Checkpoint.save c path);
  let c2 = make () in
  ignore (Cluster.write_sync c2 ~site:0 ~block:0 (Block.of_string "dirty"));
  settle c2;
  (match Checkpoint.restore c2 path with
  | Error msg -> Alcotest.(check bool) "refused" true (String.length msg > 0)
  | Ok () -> Alcotest.fail "restored over used state");
  Sys.remove path

let test_restore_refuses_mismatched_config () =
  let c = make ~scheme:Types.Available_copy () in
  let path = temp () in
  ok (Checkpoint.save c path);
  let other = make ~scheme:Types.Voting () in
  (match Checkpoint.restore other path with
  | Error msg -> Alcotest.(check bool) "scheme mismatch detected" true (String.length msg > 0)
  | Ok () -> Alcotest.fail "restored into the wrong scheme");
  Sys.remove path

let test_restore_refuses_garbage () =
  let path = temp () in
  let oc = open_out_bin path in
  output_string oc "garbage bytes here";
  close_out oc;
  let c = make () in
  (match Checkpoint.restore c path with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "accepted garbage");
  Sys.remove path

let test_checkpoint_mid_outage_for_nac () =
  (* Total failure under NAC; checkpoint; restore; finish the repairs in
     the new incarnation. *)
  let c = make ~scheme:Types.Naive_available_copy () in
  ignore (Cluster.write_sync c ~site:0 ~block:0 (Block.of_string "pre-crash"));
  settle c;
  Cluster.fail_site c 0;
  Cluster.fail_site c 1;
  Cluster.fail_site c 2;
  Cluster.repair_site c 1;
  settle c;
  Alcotest.(check bool) "comatose in the original" true (Cluster.site_state c 1 = Types.Comatose);
  let path = temp () in
  ok (Checkpoint.save c path);
  let c2 = make ~scheme:Types.Naive_available_copy () in
  ok (Checkpoint.restore c2 path);
  Alcotest.(check bool) "comatose restored" true (Cluster.site_state c2 1 = Types.Comatose);
  Alcotest.(check bool) "unavailable" false (Cluster.system_available c2);
  (* Bring the rest back: the naive recovery must conclude. *)
  Cluster.repair_site c2 0;
  Cluster.repair_site c2 2;
  (* Kick the waiting comatose site by re-probing: fail/repair is the
     blunt instrument a restored deployment would use. *)
  settle c2;
  Cluster.fail_site c2 1;
  Cluster.repair_site c2 1;
  settle c2;
  Alcotest.(check bool) "service resumed" true (Cluster.system_available c2);
  (match Cluster.read_sync c2 ~site:1 ~block:0 with
  | Ok (b, _) ->
      Alcotest.(check string) "data survived the checkpoint" "pre-crash"
        (String.sub (Block.to_string b) 0 9)
  | Error e -> Alcotest.failf "read: %s" (Types.failure_reason_to_string e));
  Sys.remove path

let () =
  Alcotest.run "checkpoint"
    [
      ( "checkpoint",
        [
          Alcotest.test_case "roundtrip" `Quick test_roundtrip;
          Alcotest.test_case "refuses used cluster" `Quick test_restore_refuses_used_cluster;
          Alcotest.test_case "refuses wrong scheme" `Quick test_restore_refuses_mismatched_config;
          Alcotest.test_case "refuses garbage" `Quick test_restore_refuses_garbage;
          Alcotest.test_case "mid-outage checkpoint" `Quick test_checkpoint_mid_outage_for_nac;
        ] );
    ]
