(* Behavioural tests of the available copy schemes (Sections 3.2-3.3,
   Figures 5-6). *)

module Cluster = Blockrep.Cluster
module Types = Blockrep.Types
module Block = Blockdev.Block
module Int_set = Blockrep.Types.Int_set

let make ?(scheme = Types.Available_copy) ?(n = 3) ?(blocks = 8) ?(track_liveness = false) () =
  Cluster.create
    (Blockrep.Config.make_exn ~scheme ~n_sites:n ~n_blocks:blocks ~track_liveness ~seed:202 ())

let payload s = Block.of_string s

let write_ok c ~site ~block data =
  match Cluster.write_sync c ~site ~block (payload data) with
  | Ok v -> v
  | Error e -> Alcotest.failf "write failed: %s" (Types.failure_reason_to_string e)

let read_ok c ~site ~block =
  match Cluster.read_sync c ~site ~block with
  | Ok (b, v) -> (Block.to_string b, v)
  | Error e -> Alcotest.failf "read failed: %s" (Types.failure_reason_to_string e)

let settle c = Cluster.run_until c (Sim.Engine.now (Cluster.engine c) +. 50.0)

let state c i = Cluster.site_state c i

(* ------------------------------------------------------------------ *)
(* Reads and writes                                                    *)
(* ------------------------------------------------------------------ *)

let test_local_read_is_free () =
  let c = make () in
  ignore (write_ok c ~site:0 ~block:0 "data");
  settle c;
  let before = Net.Traffic.total (Cluster.traffic c) in
  ignore (read_ok c ~site:1 ~block:0);
  ignore (read_ok c ~site:2 ~block:0);
  Alcotest.(check int) "reads cost nothing" before (Net.Traffic.total (Cluster.traffic c))

let test_write_reaches_available_sites () =
  let c = make () in
  ignore (write_ok c ~site:0 ~block:1 "all");
  settle c;
  for site = 0 to 2 do
    let data, v = read_ok c ~site ~block:1 in
    Alcotest.(check int) (Printf.sprintf "site %d version" site) 1 v;
    Alcotest.(check string) (Printf.sprintf "site %d data" site) "all" (String.sub data 0 3)
  done;
  Alcotest.(check bool) "stores identical" true (Cluster.consistent_available_stores c)

let test_single_survivor_still_writes () =
  let c = make () in
  Cluster.fail_site c 0;
  Cluster.fail_site c 1;
  Alcotest.(check bool) "still available" true (Cluster.system_available c);
  ignore (write_ok c ~site:2 ~block:0 "lonely");
  let data, _ = read_ok c ~site:2 ~block:0 in
  Alcotest.(check string) "serves alone" "lonely" (String.sub data 0 6)

let test_comatose_site_refuses () =
  let c = make () in
  (* Make 2 comatose but keep it from recovering: all other sites down. *)
  Cluster.fail_site c 0;
  Cluster.fail_site c 1;
  Cluster.fail_site c 2;
  Cluster.repair_site c 2;
  settle c;
  Alcotest.(check bool) "still comatose (others in W not back)" true (state c 2 = Types.Comatose);
  (match Cluster.read_sync c ~site:2 ~block:0 with
  | Error Types.Site_not_available -> ()
  | _ -> Alcotest.fail "comatose site served a read");
  match Cluster.write_sync c ~site:2 ~block:0 (payload "no") with
  | Error Types.Site_not_available -> ()
  | _ -> Alcotest.fail "comatose site accepted a write"

let test_was_available_tracks_writes () =
  let c = make () in
  Cluster.fail_site c 2;
  ignore (write_ok c ~site:0 ~block:0 "w1");
  settle c;
  (* Writer's W shrinks to the sites that acked. *)
  Alcotest.(check bool) "W_0 = {0,1}" true
    (Int_set.equal (Cluster.site_was_available c 0) (Types.int_set_of_list [ 0; 1 ]))

(* ------------------------------------------------------------------ *)
(* Recovery                                                            *)
(* ------------------------------------------------------------------ *)

let test_recovery_from_available_site () =
  let c = make () in
  Cluster.fail_site c 2;
  ignore (write_ok c ~site:0 ~block:3 "while-down");
  ignore (write_ok c ~site:0 ~block:4 "also-down");
  Cluster.repair_site c 2;
  settle c;
  Alcotest.(check bool) "recovered to available" true (state c 2 = Types.Available);
  Alcotest.(check bool) "stores converged" true (Cluster.consistent_available_stores c);
  let data, _ = read_ok c ~site:2 ~block:3 in
  Alcotest.(check string) "caught up" "while-down" (String.sub data 0 10)

let test_recovery_transfers_only_modified_blocks () =
  let c = make ~blocks:16 () in
  (* Write 5 blocks, fail a site, touch only 2 of them. *)
  for b = 0 to 4 do
    ignore (write_ok c ~site:0 ~block:b "base")
  done;
  settle c;
  Cluster.fail_site c 2;
  ignore (write_ok c ~site:0 ~block:1 "new");
  ignore (write_ok c ~site:0 ~block:3 "new");
  Cluster.repair_site c 2;
  settle c;
  Alcotest.(check bool) "consistent" true (Cluster.consistent_available_stores c);
  (* Versions confirm the other blocks were not re-sent: recovery applies
     only strictly newer blocks, so equality of stores plus the version
     vector check suffices. *)
  let v2 = Cluster.site_versions c 2 in
  Alcotest.(check int) "untouched block at v1" 1 (Blockdev.Version_vector.get v2 0);
  Alcotest.(check int) "touched block at v2" 2 (Blockdev.Version_vector.get v2 1)

let test_total_failure_nac_waits_for_all () =
  let c = make ~scheme:Types.Naive_available_copy () in
  ignore (write_ok c ~site:0 ~block:0 "before");
  settle c;
  Cluster.fail_site c 0;
  Cluster.fail_site c 1;
  Cluster.fail_site c 2;
  (* Even the last site to fail must wait for everyone under NAC. *)
  Cluster.repair_site c 2;
  settle c;
  Alcotest.(check bool) "2 comatose" true (state c 2 = Types.Comatose);
  Cluster.repair_site c 0;
  settle c;
  Alcotest.(check bool) "still comatose with one missing" true
    (state c 0 = Types.Comatose && state c 2 = Types.Comatose);
  Alcotest.(check bool) "system unavailable" false (Cluster.system_available c);
  Cluster.repair_site c 1;
  settle c;
  List.iter (fun i -> Alcotest.(check bool) "all available" true (state c i = Types.Available)) [ 0; 1; 2 ];
  Alcotest.(check bool) "consistent after total failure" true (Cluster.consistent_available_stores c);
  let data, _ = read_ok c ~site:1 ~block:0 in
  Alcotest.(check string) "data survived" "before" (String.sub data 0 6)

let test_total_failure_ac_with_interleaved_writes () =
  (* Writes between failures shrink W, so the survivor set is identified:
     the last site to fail recovers alone. *)
  let c = make () in
  ignore (write_ok c ~site:0 ~block:0 "v1");
  settle c;
  Cluster.fail_site c 0;
  ignore (write_ok c ~site:1 ~block:0 "v2");
  settle c;
  Cluster.fail_site c 1;
  ignore (write_ok c ~site:2 ~block:0 "v3");
  settle c;
  Cluster.fail_site c 2;
  (* Site 2 failed last and its W = {2}: it comes back alone. *)
  Cluster.repair_site c 2;
  settle c;
  Alcotest.(check bool) "last-failed recovers alone" true (state c 2 = Types.Available);
  Alcotest.(check bool) "system available again" true (Cluster.system_available c);
  (* The earlier sites recover from it. *)
  Cluster.repair_site c 0;
  settle c;
  Alcotest.(check bool) "site 0 catches up" true (state c 0 = Types.Available);
  let data, v = read_ok c ~site:0 ~block:0 in
  Alcotest.(check int) "latest version" 3 v;
  Alcotest.(check string) "latest data" "v3" (String.sub data 0 2)

let test_total_failure_ac_track_liveness () =
  (* With the idealised detector, no writes are needed for the last-failed
     site to know it can return alone. *)
  let c = make ~track_liveness:true () in
  Cluster.fail_site c 0;
  settle c;
  Cluster.fail_site c 1;
  settle c;
  Cluster.fail_site c 2;
  Cluster.repair_site c 2;
  settle c;
  Alcotest.(check bool) "last-failed alone is available" true (state c 2 = Types.Available)

let test_total_failure_ac_nonlast_waits () =
  (* The site that failed first must wait: sites that failed after it may
     hold newer data. *)
  let c = make ~track_liveness:true () in
  Cluster.fail_site c 0;
  settle c;
  ignore (write_ok c ~site:1 ~block:0 "newer");
  settle c;
  Cluster.fail_site c 1;
  settle c;
  Cluster.fail_site c 2;
  Cluster.repair_site c 0;
  settle c;
  Alcotest.(check bool) "first-failed stays comatose" true (state c 0 = Types.Comatose);
  (* Once the survivor set is back, everyone recovers and sees the write. *)
  Cluster.repair_site c 2;
  settle c;
  Cluster.repair_site c 1;
  settle c;
  let data, _ = read_ok c ~site:0 ~block:0 in
  Alcotest.(check string) "no lost write" "newer" (String.sub data 0 5)

let test_deferred_availability_notification () =
  (* A comatose site that probed before any site was available must learn
     when one becomes available later. *)
  let c = make ~track_liveness:true () in
  Cluster.fail_site c 0;
  settle c;
  Cluster.fail_site c 1;
  settle c;
  Cluster.fail_site c 2;
  (* 0 recovers first: must wait (not last to fail). *)
  Cluster.repair_site c 0;
  settle c;
  Alcotest.(check bool) "0 waits" true (state c 0 = Types.Comatose);
  (* 2 (last-failed) recovers: becomes available, then must pull 0 in. *)
  Cluster.repair_site c 2;
  settle c;
  Alcotest.(check bool) "2 available" true (state c 2 = Types.Available);
  Alcotest.(check bool) "0 pulled in via deferred notification" true (state c 0 = Types.Available)

let test_writes_continue_during_recovery () =
  let c = make ~n:4 () in
  ignore (write_ok c ~site:0 ~block:0 "gen1");
  settle c;
  Cluster.fail_site c 3;
  ignore (write_ok c ~site:0 ~block:0 "gen2");
  Cluster.repair_site c 3;
  (* Concurrent with recovery, more writes land. *)
  ignore (write_ok c ~site:0 ~block:0 "gen3");
  settle c;
  Alcotest.(check bool) "site 3 available" true (state c 3 = Types.Available);
  let data, v = read_ok c ~site:3 ~block:0 in
  Alcotest.(check int) "sees final version" 3 v;
  Alcotest.(check string) "sees final data" "gen3" (String.sub data 0 4);
  Alcotest.(check bool) "consistent" true (Cluster.consistent_available_stores c)

let test_naive_write_single_transmission () =
  let c = make ~scheme:Types.Naive_available_copy () in
  let before = Net.Traffic.total (Cluster.traffic c) in
  ignore (write_ok c ~site:0 ~block:0 "cheap");
  settle c;
  Alcotest.(check int) "exactly one transmission" (before + 1) (Net.Traffic.total (Cluster.traffic c))

let test_ac_write_acked () =
  let c = make () in
  let t = Cluster.traffic c in
  ignore (write_ok c ~site:0 ~block:0 "acked");
  settle c;
  Alcotest.(check int) "one update broadcast" 1 (Net.Traffic.by_category t Net.Message.Block_update);
  Alcotest.(check int) "two acks" 2 (Net.Traffic.by_category t Net.Message.Write_ack)

let test_flapping_site () =
  (* Rapid fail/repair cycles must neither wedge the site nor break
     consistency. *)
  let c = make ~n:3 () in
  for round = 1 to 20 do
    ignore (write_ok c ~site:0 ~block:(round mod 8) (Printf.sprintf "r%d" round));
    Cluster.fail_site c 2;
    ignore (write_ok c ~site:0 ~block:(round mod 8) (Printf.sprintf "r%d'" round));
    Cluster.repair_site c 2;
    settle c;
    Alcotest.(check bool)
      (Printf.sprintf "round %d: site 2 back" round)
      true
      (state c 2 = Types.Available);
    Alcotest.(check bool)
      (Printf.sprintf "round %d: consistent" round)
      true
      (Cluster.consistent_available_stores c)
  done

let () =
  Alcotest.run "copy-schemes"
    [
      ( "data-access",
        [
          Alcotest.test_case "reads are free" `Quick test_local_read_is_free;
          Alcotest.test_case "write reaches available sites" `Quick test_write_reaches_available_sites;
          Alcotest.test_case "single survivor serves" `Quick test_single_survivor_still_writes;
          Alcotest.test_case "comatose refuses" `Quick test_comatose_site_refuses;
          Alcotest.test_case "W tracks writes" `Quick test_was_available_tracks_writes;
          Alcotest.test_case "naive write is one message" `Quick test_naive_write_single_transmission;
          Alcotest.test_case "ac write collects acks" `Quick test_ac_write_acked;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "from available site" `Quick test_recovery_from_available_site;
          Alcotest.test_case "transfers only modified blocks" `Quick
            test_recovery_transfers_only_modified_blocks;
          Alcotest.test_case "NAC waits for all" `Quick test_total_failure_nac_waits_for_all;
          Alcotest.test_case "AC last-failed returns alone (writes)" `Quick
            test_total_failure_ac_with_interleaved_writes;
          Alcotest.test_case "AC last-failed returns alone (liveness)" `Quick
            test_total_failure_ac_track_liveness;
          Alcotest.test_case "AC non-last waits" `Quick test_total_failure_ac_nonlast_waits;
          Alcotest.test_case "deferred notification" `Quick test_deferred_availability_notification;
          Alcotest.test_case "writes during recovery" `Quick test_writes_continue_during_recovery;
          Alcotest.test_case "flapping site" `Quick test_flapping_site;
        ] );
    ]
