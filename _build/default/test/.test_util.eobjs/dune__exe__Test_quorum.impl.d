test/test_quorum.ml: Alcotest Analysis Blockrep Float Fun Gen List QCheck QCheck_alcotest
