test/test_wire.ml: Alcotest Blockdev Blockrep Format List Net String Util
