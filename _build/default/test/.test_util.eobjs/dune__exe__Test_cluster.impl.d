test/test_cluster.ml: Alcotest Array Blockdev Blockrep Float Gen List Net Option Printf QCheck QCheck_alcotest Sim String Util Workload
