test/test_copy.mli:
