test/test_blockdev.ml: Alcotest Array Blockdev Bytes Fun Gen List QCheck QCheck_alcotest String
