test/test_copy.ml: Alcotest Blockdev Blockrep List Net Printf Sim String
