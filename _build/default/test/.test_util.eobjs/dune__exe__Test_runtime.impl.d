test/test_runtime.ml: Alcotest Array Blockdev Blockrep List Sim Util
