test/test_sim.ml: Alcotest Gen Int List QCheck QCheck_alcotest Sim Util
