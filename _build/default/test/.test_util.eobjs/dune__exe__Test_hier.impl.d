test/test_hier.ml: Alcotest Blockdev Blockrep Bytes Fs Gen Int32 List Option Printf QCheck QCheck_alcotest Sim String
