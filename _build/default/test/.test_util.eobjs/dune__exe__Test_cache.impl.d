test/test_cache.ml: Alcotest Blockdev Blockrep Bytes Fs Gen List Net QCheck QCheck_alcotest String
