test/test_scenario.ml: Alcotest Array Blockdev Blockrep Buffer Filename List Printf QCheck QCheck_alcotest Scenario String Sys
