test/test_analysis.ml: Alcotest Analysis List Markov Printf QCheck QCheck_alcotest
