test/test_image.ml: Alcotest Blockdev Blockrep Bytes Filename Fs Fun Gen List QCheck QCheck_alcotest String Sys
