test/test_voting.ml: Alcotest Array Blockdev Blockrep Net Printf Sim String Util
