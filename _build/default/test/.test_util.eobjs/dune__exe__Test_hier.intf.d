test/test_hier.mli:
