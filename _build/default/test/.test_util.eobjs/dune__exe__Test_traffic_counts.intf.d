test/test_traffic_counts.mli:
