test/test_witness.ml: Alcotest Analysis Blockdev Blockrep Float List Net Printf QCheck QCheck_alcotest Sim String Util Workload
