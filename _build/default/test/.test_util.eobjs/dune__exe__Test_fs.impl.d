test/test_fs.ml: Alcotest Blockdev Blockrep Bytes Char Fs Gen List Printf QCheck QCheck_alcotest Sim String
