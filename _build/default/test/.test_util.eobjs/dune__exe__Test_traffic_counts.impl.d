test/test_traffic_counts.ml: Alcotest Analysis Blockdev Blockrep List Net Printf Sim
