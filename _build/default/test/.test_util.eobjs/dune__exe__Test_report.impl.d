test/test_report.ml: Alcotest Buffer Filename Float Format Lazy List Report String Sys
