test/test_workload.ml: Alcotest Analysis Array Blockdev Blockrep Filename Float List Net String Sys Util Workload
