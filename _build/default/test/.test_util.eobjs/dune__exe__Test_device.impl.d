test/test_device.ml: Alcotest Blockdev Blockrep Printf Sim String
