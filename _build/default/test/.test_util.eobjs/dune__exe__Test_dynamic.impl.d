test/test_dynamic.ml: Alcotest Array Blockdev Blockrep List Printf Sim String Util
