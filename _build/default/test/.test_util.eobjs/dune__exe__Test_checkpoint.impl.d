test/test_checkpoint.ml: Alcotest Blockdev Blockrep Filename Sim String Sys
