test/test_voting.mli:
