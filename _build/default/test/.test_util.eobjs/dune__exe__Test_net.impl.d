test/test_net.ml: Alcotest Array List Net Printf Sim String Util
