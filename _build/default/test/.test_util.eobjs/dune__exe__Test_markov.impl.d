test/test_markov.ml: Alcotest Analysis Array Float List Markov Printf QCheck QCheck_alcotest Util
