(* Tests for Blockrep.Quorum and Blockrep.Closure. *)

module Quorum = Blockrep.Quorum
module Closure = Blockrep.Closure
module Int_set = Blockrep.Types.Int_set

let set = Blockrep.Types.int_set_of_list

(* ------------------------------------------------------------------ *)
(* Quorum                                                              *)
(* ------------------------------------------------------------------ *)

let test_majority_odd () =
  let q = Quorum.majority ~n:5 in
  Alcotest.(check int) "total" 5 (Quorum.total_weight q);
  Alcotest.(check int) "read threshold" 3 (Quorum.read_threshold q);
  Alcotest.(check int) "write threshold" 3 (Quorum.write_threshold q);
  Alcotest.(check bool) "3 sites suffice" true (Quorum.read_quorum_met q (Quorum.weight_of q [ 0; 1; 2 ]));
  Alcotest.(check bool) "2 sites do not" false (Quorum.read_quorum_met q (Quorum.weight_of q [ 0; 1 ]))

let test_majority_even_tiebreak () =
  (* n=4: weights 3,2,2,2, total 9, thresholds 5.  Site 0 plus any other
     site wins; two non-0 sites lose — the Section 4.1 adjustment. *)
  let q = Quorum.majority ~n:4 in
  Alcotest.(check int) "total" 9 (Quorum.total_weight q);
  Alcotest.(check bool) "0+1 wins" true (Quorum.write_quorum_met q (Quorum.weight_of q [ 0; 1 ]));
  Alcotest.(check bool) "1+2 loses" false (Quorum.write_quorum_met q (Quorum.weight_of q [ 1; 2 ]));
  Alcotest.(check bool) "1+2+3 wins" true (Quorum.write_quorum_met q (Quorum.weight_of q [ 1; 2; 3 ]))

let test_create_validations () =
  let bad w ?r ?wt () =
    match Quorum.create ~weights:w ?read_threshold:r ?write_threshold:wt () with
    | Error _ -> true
    | Ok _ -> false
  in
  Alcotest.(check bool) "empty weights" true (bad [||] ());
  Alcotest.(check bool) "zero weight" true (bad [| 1; 0 |] ());
  Alcotest.(check bool) "r+w <= total rejected" true (bad [| 1; 1; 1; 1 |] ~r:2 ~wt:2 ());
  Alcotest.(check bool) "2w <= total rejected" true (bad [| 1; 1; 1; 1 |] ~r:4 ~wt:2 ());
  Alcotest.(check bool) "valid accepted" false (bad [| 1; 1; 1 |] ~r:2 ~wt:2 ())

let test_gifford_style_asymmetric () =
  (* Read-one/write-all style: r=1, w=total with r+w > total. *)
  match Quorum.create ~weights:[| 1; 1; 1 |] ~read_threshold:1 ~write_threshold:3 () with
  | Error e -> Alcotest.failf "rejected: %s" e
  | Ok q ->
      Alcotest.(check bool) "read-one" true (Quorum.read_quorum_met q 1);
      Alcotest.(check bool) "write-all" false (Quorum.write_quorum_met q 2)

let test_weight_lookup () =
  let q = Quorum.majority ~n:4 in
  Alcotest.(check int) "site 0 heavier" 3 (Quorum.weight q 0);
  Alcotest.(check int) "site 1" 2 (Quorum.weight q 1);
  Alcotest.check_raises "bad site" (Invalid_argument "Quorum.weight: bad site") (fun () ->
      ignore (Quorum.weight q 9))

let test_intersection_property () =
  (* Any two write quorums intersect; any read quorum intersects any write
     quorum — exhaustively for n <= 5 with default majority config. *)
  List.iter
    (fun n ->
      let q = Quorum.majority ~n in
      let subsets =
        List.init (1 lsl n) (fun mask -> List.filter (fun i -> mask land (1 lsl i) <> 0) (List.init n Fun.id))
      in
      let writes = List.filter (fun s -> Quorum.write_quorum_met q (Quorum.weight_of q s)) subsets in
      let reads = List.filter (fun s -> Quorum.read_quorum_met q (Quorum.weight_of q s)) subsets in
      let intersects a b = List.exists (fun x -> List.mem x b) a in
      List.iter
        (fun w1 ->
          List.iter
            (fun w2 -> if not (intersects w1 w2) then Alcotest.failf "w-w quorums disjoint at n=%d" n)
            writes;
          List.iter
            (fun r -> if not (intersects w1 r) then Alcotest.failf "r-w quorums disjoint at n=%d" n)
            reads)
        writes)
    [ 2; 3; 4; 5 ]

let prop_availability_matches_formula =
  (* Probability that a random up-set meets the write quorum (equal site
     availability p) equals the model's A_V. *)
  QCheck.Test.make ~name:"exhaustive quorum availability = A_V" ~count:30
    QCheck.(pair (int_range 1 6) (float_range 0.01 1.0))
    (fun (n, rho) ->
      let q = Quorum.majority ~n in
      let p_up = 1.0 /. (1.0 +. rho) in
      let total = ref 0.0 in
      for mask = 0 to (1 lsl n) - 1 do
        let up = List.filter (fun i -> mask land (1 lsl i) <> 0) (List.init n Fun.id) in
        let prob =
          List.fold_left
            (fun acc i -> acc *. if List.mem i up then p_up else 1.0 -. p_up)
            1.0 (List.init n Fun.id)
        in
        if Quorum.write_quorum_met q (Quorum.weight_of q up) then total := !total +. prob
      done;
      Float.abs (!total -. Analysis.Voting_model.availability ~n ~rho) < 1e-9)

(* ------------------------------------------------------------------ *)
(* Closure                                                             *)
(* ------------------------------------------------------------------ *)

let known_of_list l u = List.assoc_opt u l

let test_closure_self_only () =
  let c = Closure.compute ~self:0 ~own:Int_set.empty ~known:(fun _ -> None) in
  Alcotest.(check bool) "just self" true (Int_set.equal c (set [ 0 ]))

let test_closure_direct () =
  let c = Closure.compute ~self:0 ~own:(set [ 1; 2 ]) ~known:(fun _ -> None) in
  Alcotest.(check bool) "W members stay" true (Int_set.equal c (set [ 0; 1; 2 ]))

let test_closure_transitive () =
  let known = known_of_list [ (1, set [ 3 ]); (3, set [ 4 ]) ] in
  let c = Closure.compute ~self:0 ~own:(set [ 1 ]) ~known in
  Alcotest.(check bool) "transitively closed" true (Int_set.equal c (set [ 0; 1; 3; 4 ]))

let test_closure_unknown_members_remain () =
  (* Unknown W sets must not shrink the closure: those sites still must be
     awaited. *)
  let c = Closure.compute ~self:2 ~own:(set [ 5 ]) ~known:(fun _ -> None) in
  Alcotest.(check bool) "unknown member kept" true (Int_set.mem 5 c)

let test_closure_cycle_terminates () =
  let known = known_of_list [ (0, set [ 1 ]); (1, set [ 0 ]) ] in
  let c = Closure.compute ~self:0 ~own:(set [ 1 ]) ~known in
  Alcotest.(check bool) "cycle closed" true (Int_set.equal c (set [ 0; 1 ]))

let test_closure_idempotent () =
  let known = known_of_list [ (1, set [ 2 ]); (2, set [ 1; 3 ]) ] in
  let c1 = Closure.compute ~self:0 ~own:(set [ 1 ]) ~known in
  let c2 = Closure.compute ~self:0 ~own:c1 ~known in
  Alcotest.(check bool) "closure of closure is itself" true (Int_set.equal c1 c2)

let prop_closure_monotone =
  QCheck.Test.make ~name:"closure contains {self} ∪ own and is monotone in own" ~count:200
    QCheck.(pair (list_of_size (Gen.int_range 0 5) (int_range 0 7)) (list_of_size (Gen.int_range 0 5) (int_range 0 7)))
    (fun (own1, extra) ->
      let known u = if u mod 2 = 0 then Some (set [ (u + 1) mod 8 ]) else None in
      let o1 = set own1 in
      let o2 = Int_set.union o1 (set extra) in
      let c1 = Closure.compute ~self:0 ~own:o1 ~known in
      let c2 = Closure.compute ~self:0 ~own:o2 ~known in
      Int_set.mem 0 c1 && Int_set.subset o1 c1 && Int_set.subset c1 c2)

let () =
  Alcotest.run "quorum-closure"
    [
      ( "quorum",
        [
          Alcotest.test_case "odd majority" `Quick test_majority_odd;
          Alcotest.test_case "even tie-break" `Quick test_majority_even_tiebreak;
          Alcotest.test_case "validations" `Quick test_create_validations;
          Alcotest.test_case "asymmetric quorums" `Quick test_gifford_style_asymmetric;
          Alcotest.test_case "weights" `Quick test_weight_lookup;
          Alcotest.test_case "intersection property" `Quick test_intersection_property;
          QCheck_alcotest.to_alcotest prop_availability_matches_formula;
        ] );
      ( "closure",
        [
          Alcotest.test_case "self only" `Quick test_closure_self_only;
          Alcotest.test_case "direct members" `Quick test_closure_direct;
          Alcotest.test_case "transitive" `Quick test_closure_transitive;
          Alcotest.test_case "unknown members remain" `Quick test_closure_unknown_members_remain;
          Alcotest.test_case "cycles terminate" `Quick test_closure_cycle_terminates;
          Alcotest.test_case "idempotent" `Quick test_closure_idempotent;
          QCheck_alcotest.to_alcotest prop_closure_monotone;
        ] );
    ]
