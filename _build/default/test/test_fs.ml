(* Tests for Fs.Flat_fs, on both a plain memory device and the replicated
   reliable device — the same functor body must behave identically. *)

module Mfs = Fs.Flat_fs.Make (Blockdev.Mem_device)
module Rfs = Fs.Flat_fs.Make (Blockrep.Reliable_device)
module Block = Blockdev.Block

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected fs error: %s" (Fs.Flat_fs.error_to_string e)

let err = function
  | Ok _ -> Alcotest.fail "expected an error"
  | Error e -> e

let fresh_fs ?(capacity = 128) () =
  let dev = Blockdev.Mem_device.create ~capacity in
  (dev, ok (Mfs.format dev))

let test_format_and_mount () =
  let dev, _fs = fresh_fs () in
  let fs = ok (Mfs.mount dev) in
  Alcotest.(check (list string)) "fresh fs is empty" [] (ok (Mfs.list fs))

let test_mount_unformatted () =
  let dev = Blockdev.Mem_device.create ~capacity:64 in
  match Mfs.mount dev with
  | Error Fs.Flat_fs.Not_formatted -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Fs.Flat_fs.error_to_string e)
  | Ok _ -> Alcotest.fail "mounted garbage"

let test_format_too_small () =
  let dev = Blockdev.Mem_device.create ~capacity:3 in
  match Mfs.format dev with
  | Error Fs.Flat_fs.No_space -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Fs.Flat_fs.error_to_string e)
  | Ok _ -> Alcotest.fail "formatted an impossibly small device"

let test_create_write_read () =
  let _, fs = fresh_fs () in
  ok (Mfs.create fs "file.txt");
  ok (Mfs.write fs "file.txt" (Bytes.of_string "contents"));
  Alcotest.(check string) "read back" "contents" (Bytes.to_string (ok (Mfs.read fs "file.txt")))

let test_empty_file () =
  let _, fs = fresh_fs () in
  ok (Mfs.create fs "empty");
  Alcotest.(check int) "zero bytes" 0 (Bytes.length (ok (Mfs.read fs "empty")));
  let st = ok (Mfs.stat fs "empty") in
  Alcotest.(check int) "no blocks" 0 st.Fs.Flat_fs.blocks_used

let test_create_duplicate () =
  let _, fs = fresh_fs () in
  ok (Mfs.create fs "dup");
  Alcotest.(check bool) "duplicate rejected" true (err (Mfs.create fs "dup") = Fs.Flat_fs.Already_exists)

let test_missing_file () =
  let _, fs = fresh_fs () in
  Alcotest.(check bool) "read missing" true (err (Mfs.read fs "ghost") = Fs.Flat_fs.Not_found);
  Alcotest.(check bool) "write missing" true
    (err (Mfs.write fs "ghost" (Bytes.of_string "x")) = Fs.Flat_fs.Not_found);
  Alcotest.(check bool) "delete missing" true (err (Mfs.delete fs "ghost") = Fs.Flat_fs.Not_found)

let test_bad_names () =
  let _, fs = fresh_fs () in
  Alcotest.(check bool) "empty name" true (err (Mfs.create fs "") = Fs.Flat_fs.Name_too_long);
  Alcotest.(check bool) "28-byte name" true
    (err (Mfs.create fs (String.make 28 'n')) = Fs.Flat_fs.Name_too_long);
  ok (Mfs.create fs (String.make 27 'n'))

let test_multi_block_file () =
  let _, fs = fresh_fs () in
  ok (Mfs.create fs "big");
  let data = Bytes.init 3000 (fun i -> Char.chr (i mod 251)) in
  ok (Mfs.write fs "big" data);
  let back = ok (Mfs.read fs "big") in
  Alcotest.(check int) "length" 3000 (Bytes.length back);
  Alcotest.(check bytes) "content" data back;
  let st = ok (Mfs.stat fs "big") in
  Alcotest.(check int) "blocks used" 6 st.Fs.Flat_fs.blocks_used

let test_indirect_blocks () =
  let _, fs = fresh_fs ~capacity:256 () in
  ok (Mfs.create fs "huge");
  (* Beyond the 11 direct pointers: 20 blocks worth. *)
  let data = Bytes.init (20 * 512) (fun i -> Char.chr ((i * 7) mod 256)) in
  ok (Mfs.write fs "huge" data);
  Alcotest.(check bytes) "indirect content" data (ok (Mfs.read fs "huge"));
  ok (Mfs.fsck fs)

let test_file_too_large () =
  let _, fs = fresh_fs ~capacity:256 () in
  ok (Mfs.create fs "toolarge");
  let max_bytes = (11 + 128) * 512 in
  Alcotest.(check bool) "beyond pointer reach" true
    (err (Mfs.write fs "toolarge" ~offset:max_bytes (Bytes.of_string "x")) = Fs.Flat_fs.File_too_large)

let test_offset_write_and_sparse () =
  let _, fs = fresh_fs () in
  ok (Mfs.create fs "sparse");
  ok (Mfs.write fs "sparse" ~offset:2000 (Bytes.of_string "tail"));
  let back = ok (Mfs.read fs "sparse") in
  Alcotest.(check int) "size extends to offset+len" 2004 (Bytes.length back);
  Alcotest.(check char) "hole reads zero" '\000' (Bytes.get back 100);
  Alcotest.(check string) "tail present" "tail" (Bytes.sub_string back 2000 4);
  (* Holes consume no blocks. *)
  let st = ok (Mfs.stat fs "sparse") in
  Alcotest.(check int) "only the tail block allocated" 1 st.Fs.Flat_fs.blocks_used;
  ok (Mfs.fsck fs)

let test_overwrite_middle () =
  let _, fs = fresh_fs () in
  ok (Mfs.create fs "mid");
  ok (Mfs.write fs "mid" (Bytes.make 1024 'a'));
  ok (Mfs.write fs "mid" ~offset:500 (Bytes.of_string "BBBB"));
  let back = ok (Mfs.read fs "mid") in
  Alcotest.(check int) "size unchanged" 1024 (Bytes.length back);
  Alcotest.(check string) "patched" "BBBB" (Bytes.sub_string back 500 4);
  Alcotest.(check char) "before intact" 'a' (Bytes.get back 499);
  Alcotest.(check char) "after intact" 'a' (Bytes.get back 504)

let test_append () =
  let _, fs = fresh_fs () in
  ok (Mfs.create fs "log");
  ok (Mfs.append fs "log" (Bytes.of_string "one,"));
  ok (Mfs.append fs "log" (Bytes.of_string "two"));
  Alcotest.(check string) "appended" "one,two" (Bytes.to_string (ok (Mfs.read fs "log")))

let test_read_range () =
  let _, fs = fresh_fs () in
  ok (Mfs.create fs "ranged");
  ok (Mfs.write fs "ranged" (Bytes.of_string "0123456789"));
  Alcotest.(check string) "middle range" "345"
    (Bytes.to_string (ok (Mfs.read_range fs "ranged" ~offset:3 ~length:3)));
  Alcotest.(check bool) "past the end rejected" true
    (err (Mfs.read_range fs "ranged" ~offset:8 ~length:5) = Fs.Flat_fs.Not_found)

let test_delete_frees_space () =
  let _, fs = fresh_fs () in
  (* The first dirent allocates the directory's data block, which rightly
     outlives the file; measure after creation so only file blocks count. *)
  ok (Mfs.create fs "temp");
  let free0 = ok (Mfs.free_blocks fs) in
  ok (Mfs.write fs "temp" (Bytes.make 2048 'x'));
  Alcotest.(check int) "space consumed" (free0 - 4) (ok (Mfs.free_blocks fs));
  ok (Mfs.delete fs "temp");
  Alcotest.(check int) "file blocks reclaimed" free0 (ok (Mfs.free_blocks fs));
  Alcotest.(check bool) "gone" false (Mfs.exists fs "temp");
  ok (Mfs.fsck fs)

let test_truncate () =
  let _, fs = fresh_fs () in
  ok (Mfs.create fs "t");
  ok (Mfs.write fs "t" (Bytes.make 1500 'z'));
  ok (Mfs.truncate fs "t");
  Alcotest.(check int) "empty after truncate" 0 (Bytes.length (ok (Mfs.read fs "t")));
  ok (Mfs.write fs "t" (Bytes.of_string "fresh"));
  Alcotest.(check string) "reusable" "fresh" (Bytes.to_string (ok (Mfs.read fs "t")));
  ok (Mfs.fsck fs)

let test_many_files () =
  let _, fs = fresh_fs ~capacity:512 () in
  let names = List.init 40 (Printf.sprintf "file%02d") in
  List.iter
    (fun n ->
      ok (Mfs.create fs n);
      ok (Mfs.write fs n (Bytes.of_string n)))
    names;
  Alcotest.(check (list string)) "directory" names (List.sort compare (ok (Mfs.list fs)));
  List.iter (fun n -> Alcotest.(check string) n n (Bytes.to_string (ok (Mfs.read fs n)))) names;
  (* Delete the odd ones and check the survivors. *)
  List.iteri (fun i n -> if i mod 2 = 1 then ok (Mfs.delete fs n)) names;
  List.iteri
    (fun i n ->
      if i mod 2 = 0 then Alcotest.(check bool) "kept" true (Mfs.exists fs n)
      else Alcotest.(check bool) "gone" false (Mfs.exists fs n))
    names;
  ok (Mfs.fsck fs)

let test_out_of_space () =
  let _, fs = fresh_fs ~capacity:16 () in
  ok (Mfs.create fs "filler");
  match Mfs.write fs "filler" (Bytes.make (64 * 512) 'f') with
  | Error (Fs.Flat_fs.No_space | Fs.Flat_fs.File_too_large) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Fs.Flat_fs.error_to_string e)
  | Ok () -> Alcotest.fail "wrote beyond capacity"

let test_out_of_inodes () =
  let dev = Blockdev.Mem_device.create ~capacity:512 in
  let fs = ok (Mfs.format ~n_inodes:4 dev) in
  (* Inode 0 is the directory, so 3 files fit. *)
  ok (Mfs.create fs "a");
  ok (Mfs.create fs "b");
  ok (Mfs.create fs "c");
  Alcotest.(check bool) "inode table exhausted" true (err (Mfs.create fs "d") = Fs.Flat_fs.No_space)

let test_remount_preserves_data () =
  let dev, fs = fresh_fs () in
  ok (Mfs.create fs "persistent");
  ok (Mfs.write fs "persistent" (Bytes.of_string "still here"));
  let fs2 = ok (Mfs.mount dev) in
  Alcotest.(check string) "after remount" "still here"
    (Bytes.to_string (ok (Mfs.read fs2 "persistent")));
  ok (Mfs.fsck fs2)

let test_device_failure_mid_operation () =
  let dev, fs = fresh_fs () in
  ok (Mfs.create fs "victim");
  Blockdev.Mem_device.fail dev;
  Alcotest.(check bool) "write surfaces unavailability" true
    (err (Mfs.write fs "victim" (Bytes.of_string "x")) = Fs.Flat_fs.Device_unavailable);
  Alcotest.(check bool) "read surfaces unavailability" true
    (err (Mfs.read fs "victim") = Fs.Flat_fs.Device_unavailable)

(* ------------------------------------------------------------------ *)
(* Same file system on the replicated device                           *)
(* ------------------------------------------------------------------ *)

let reliable_fs () =
  let device =
    Blockrep.Reliable_device.of_config
      (Blockrep.Config.make_exn ~scheme:Blockrep.Types.Available_copy ~n_sites:3 ~n_blocks:128
         ~seed:505 ())
  in
  (device, ok (Rfs.format device))

let test_reliable_roundtrip () =
  let _, fs = reliable_fs () in
  ok (Rfs.create fs "replicated");
  ok (Rfs.write fs "replicated" (Bytes.of_string "three copies"));
  Alcotest.(check string) "roundtrip" "three copies" (Bytes.to_string (ok (Rfs.read fs "replicated")))

let test_reliable_survives_failures () =
  let device, fs = reliable_fs () in
  let c = Blockrep.Reliable_device.cluster device in
  ok (Rfs.create fs "hardy");
  ok (Rfs.write fs "hardy" (Bytes.make 2048 'h'));
  Blockrep.Cluster.fail_site c 0;
  Blockrep.Cluster.fail_site c 1;
  (* Still serving with one copy; writes continue. *)
  ok (Rfs.append fs "hardy" (Bytes.of_string "tail"));
  Alcotest.(check int) "size" 2052 (Bytes.length (ok (Rfs.read fs "hardy")));
  Blockrep.Cluster.repair_site c 0;
  Blockrep.Cluster.repair_site c 1;
  Blockrep.Cluster.run_until c (Sim.Engine.now (Blockrep.Cluster.engine c) +. 100.0);
  ok (Rfs.fsck fs);
  Alcotest.(check bool) "replicas consistent" true (Blockrep.Cluster.consistent_available_stores c)

let test_reliable_remount_from_other_site () =
  (* Format through site 0's stub, then mount a second fs instance whose
     stub starts at another site: the superblock must be replicated. *)
  let device, fs = reliable_fs () in
  ok (Rfs.create fs "shared");
  ok (Rfs.write fs "shared" (Bytes.of_string "visible everywhere"));
  let cluster = Blockrep.Reliable_device.cluster device in
  Blockrep.Cluster.run_until cluster (Sim.Engine.now (Blockrep.Cluster.engine cluster) +. 50.0);
  let device2 = Blockrep.Reliable_device.create ~home:2 cluster in
  let fs2 = ok (Rfs.mount device2) in
  Alcotest.(check string) "mounted elsewhere" "visible everywhere"
    (Bytes.to_string (ok (Rfs.read fs2 "shared")))

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let prop_write_read_roundtrip =
  QCheck.Test.make ~name:"write/read roundtrip at arbitrary offsets" ~count:60
    QCheck.(pair (int_range 0 5000) (string_of_size (Gen.int_range 1 2000)))
    (fun (offset, data) ->
      let _, fs = fresh_fs ~capacity:256 () in
      ok (Mfs.create fs "prop");
      match Mfs.write fs "prop" ~offset (Bytes.of_string data) with
      | Error Fs.Flat_fs.File_too_large -> offset + String.length data > (11 + 128) * 512
      | Error _ -> false
      | Ok () -> (
          match Mfs.read_range fs "prop" ~offset ~length:(String.length data) with
          | Ok back -> Bytes.to_string back = data
          | Error _ -> false))

let prop_fsck_after_random_ops =
  QCheck.Test.make ~name:"fsck holds after arbitrary operation sequences" ~count:40
    QCheck.(list_of_size (Gen.int_range 1 30) (pair (int_range 0 3) (int_range 0 4)))
    (fun ops ->
      let _, fs = fresh_fs ~capacity:256 () in
      let name i = Printf.sprintf "f%d" i in
      List.iter
        (fun (file, op) ->
          let n = name file in
          match op with
          | 0 -> ignore (Mfs.create fs n)
          | 1 -> ignore (Mfs.write fs n (Bytes.make ((file + 1) * 300) 'p'))
          | 2 -> ignore (Mfs.delete fs n)
          | 3 -> ignore (Mfs.append fs n (Bytes.of_string "more"))
          | _ -> ignore (Mfs.truncate fs n))
        ops;
      match Mfs.fsck fs with Ok () -> true | Error _ -> false)

let () =
  Alcotest.run "fs"
    [
      ( "format-mount",
        [
          Alcotest.test_case "format and mount" `Quick test_format_and_mount;
          Alcotest.test_case "unformatted device" `Quick test_mount_unformatted;
          Alcotest.test_case "too small" `Quick test_format_too_small;
          Alcotest.test_case "remount preserves data" `Quick test_remount_preserves_data;
        ] );
      ( "files",
        [
          Alcotest.test_case "create/write/read" `Quick test_create_write_read;
          Alcotest.test_case "empty file" `Quick test_empty_file;
          Alcotest.test_case "duplicate create" `Quick test_create_duplicate;
          Alcotest.test_case "missing file" `Quick test_missing_file;
          Alcotest.test_case "bad names" `Quick test_bad_names;
          Alcotest.test_case "multi-block file" `Quick test_multi_block_file;
          Alcotest.test_case "indirect blocks" `Quick test_indirect_blocks;
          Alcotest.test_case "file too large" `Quick test_file_too_large;
          Alcotest.test_case "offset write / sparse" `Quick test_offset_write_and_sparse;
          Alcotest.test_case "overwrite middle" `Quick test_overwrite_middle;
          Alcotest.test_case "append" `Quick test_append;
          Alcotest.test_case "read range" `Quick test_read_range;
          Alcotest.test_case "delete frees space" `Quick test_delete_frees_space;
          Alcotest.test_case "truncate" `Quick test_truncate;
          Alcotest.test_case "many files" `Quick test_many_files;
          Alcotest.test_case "out of space" `Quick test_out_of_space;
          Alcotest.test_case "out of inodes" `Quick test_out_of_inodes;
          Alcotest.test_case "device failure surfaces" `Quick test_device_failure_mid_operation;
        ] );
      ( "on-reliable-device",
        [
          Alcotest.test_case "roundtrip" `Quick test_reliable_roundtrip;
          Alcotest.test_case "survives failures" `Quick test_reliable_survives_failures;
          Alcotest.test_case "remount from another site" `Quick test_reliable_remount_from_other_site;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_write_read_roundtrip;
          QCheck_alcotest.to_alcotest prop_fsck_after_random_ops;
        ] );
    ]
