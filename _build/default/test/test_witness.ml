(* Tests for weighted voting with witnesses (the reference [10] extension):
   witnesses vote and version but never store or serve data. *)

module Cluster = Blockrep.Cluster
module Types = Blockrep.Types
module Block = Blockdev.Block
module Vv = Blockdev.Version_vector

(* 2 data sites (0, 1) + 1 witness (2): same quorum arithmetic as three
   full copies, a third of the storage saved. *)
let make ?(n = 3) ?(witnesses = [ 2 ]) ?(blocks = 8) () =
  Cluster.create
    (Blockrep.Config.make_exn ~scheme:Types.Voting ~n_sites:n ~n_blocks:blocks ~witnesses ~seed:808 ())

let payload s = Block.of_string s

let write_ok c ~site ~block data =
  match Cluster.write_sync c ~site ~block (payload data) with
  | Ok v -> v
  | Error e -> Alcotest.failf "write failed: %s" (Types.failure_reason_to_string e)

let read_ok c ~site ~block =
  match Cluster.read_sync c ~site ~block with
  | Ok (b, v) -> (Block.to_string b, v)
  | Error e -> Alcotest.failf "read failed: %s" (Types.failure_reason_to_string e)

let settle c = Cluster.run_until c (Sim.Engine.now (Cluster.engine c) +. 50.0)

let test_config_validation () =
  let bad ?witnesses ?(scheme = Types.Voting) () =
    match Blockrep.Config.make ~scheme ~n_sites:3 ?witnesses () with
    | Error _ -> true
    | Ok _ -> false
  in
  Alcotest.(check bool) "out-of-range witness" true (bad ~witnesses:[ 5 ] ());
  Alcotest.(check bool) "all witnesses" true (bad ~witnesses:[ 0; 1; 2 ] ());
  Alcotest.(check bool) "witnesses under AC" true
    (bad ~witnesses:[ 2 ] ~scheme:Types.Available_copy ());
  Alcotest.(check bool) "valid accepted" false (bad ~witnesses:[ 2 ] ())

let test_roundtrip_with_witness () =
  let c = make () in
  Alcotest.(check int) "write ok" 1 (write_ok c ~site:0 ~block:0 "witnessed");
  let data, v = read_ok c ~site:1 ~block:0 in
  Alcotest.(check int) "version" 1 v;
  Alcotest.(check string) "data" "witnessed" (String.sub data 0 9)

let test_witness_versions_but_no_data () =
  let c = make () in
  ignore (write_ok c ~site:0 ~block:3 "invisible");
  settle c;
  (* The witness's version advanced... *)
  Alcotest.(check int) "witness version" 1 (Vv.get (Cluster.site_versions c 2) 3);
  (* ...but a read at the witness site must fetch from a data site (the
     local store holds zeroes). *)
  let data, _ = read_ok c ~site:2 ~block:3 in
  Alcotest.(check string) "read at witness pulls real data" "invisible" (String.sub data 0 9)

let test_read_at_witness_costs_fetch () =
  let c = make () in
  ignore (write_ok c ~site:0 ~block:0 "x");
  settle c;
  let before = Net.Traffic.by_category (Cluster.traffic c) Net.Message.Block_transfer in
  ignore (read_ok c ~site:2 ~block:0);
  settle c;
  Alcotest.(check int) "one transfer per witness read" (before + 1)
    (Net.Traffic.by_category (Cluster.traffic c) Net.Message.Block_transfer);
  (* Reads at data sites stay transfer-free. *)
  ignore (read_ok c ~site:0 ~block:0);
  settle c;
  Alcotest.(check int) "data-site read free of transfers" (before + 1)
    (Net.Traffic.by_category (Cluster.traffic c) Net.Message.Block_transfer)

let test_witness_sustains_quorum () =
  (* Data site 1 down: data site 0 + witness 2 still form a majority, and
     site 0 holds current data — full service. *)
  let c = make () in
  ignore (write_ok c ~site:0 ~block:0 "pre");
  settle c;
  Cluster.fail_site c 1;
  Alcotest.(check int) "write with witness quorum" 2 (write_ok c ~site:0 ~block:0 "post");
  let data, _ = read_ok c ~site:0 ~block:0 in
  Alcotest.(check string) "read with witness quorum" "post" (String.sub data 0 4);
  Alcotest.(check bool) "system available" true (Cluster.system_available c)

let test_current_copy_unreachable () =
  (* Write while data site 1 is down, then swap: only data site 1 (stale)
     and the witness are up.  The witness's version number proves the data
     site is stale, so the read must refuse rather than serve old data. *)
  let c = make () in
  ignore (write_ok c ~site:0 ~block:0 "v1");
  settle c;
  Cluster.fail_site c 1;
  ignore (write_ok c ~site:0 ~block:0 "v2");
  settle c;
  Cluster.fail_site c 0;
  Cluster.repair_site c 1;
  settle c;
  (match Cluster.read_sync c ~site:1 ~block:0 with
  | Error Types.Current_copy_unreachable -> ()
  | Ok (b, v) ->
      Alcotest.failf "served %S v%d despite unreachable current copy"
        (String.sub (Block.to_string b) 0 2) v
  | Error e -> Alcotest.failf "wrong refusal: %s" (Types.failure_reason_to_string e));
  Alcotest.(check bool) "monitor agrees: not fully available" false (Cluster.system_available c);
  (* Witness correctness: a write at the stale data site still picks a
     version above the one it never saw. *)
  (match Cluster.write_sync c ~site:1 ~block:0 (payload "v3") with
  | Ok v -> Alcotest.(check int) "version continues past unseen one" 3 v
  | Error e -> Alcotest.failf "write refused: %s" (Types.failure_reason_to_string e));
  (* With the new write the up data site is current again. *)
  let data, _ = read_ok c ~site:1 ~block:0 in
  Alcotest.(check string) "fresh write serves" "v3" (String.sub data 0 2)

let test_witnesses_do_not_serve_transfers () =
  (* Stale data site 0 pulls from data site 1 — never from witness 2, even
     though the witness also "has" the top version. *)
  let c = make () in
  Cluster.fail_site c 0;
  ignore (write_ok c ~site:1 ~block:2 "target");
  settle c;
  Cluster.repair_site c 0;
  settle c;
  let data, _ = read_ok c ~site:0 ~block:2 in
  Alcotest.(check string) "pulled from the data site" "target" (String.sub data 0 6)

let test_five_sites_two_witnesses () =
  let c = make ~n:5 ~witnesses:[ 3; 4 ] () in
  ignore (write_ok c ~site:0 ~block:0 "majority");
  settle c;
  (* Two data sites down: remaining data site + 2 witnesses = quorum. *)
  Cluster.fail_site c 1;
  Cluster.fail_site c 2;
  let data, _ = read_ok c ~site:0 ~block:0 in
  Alcotest.(check string) "3 of 5 with one data copy" "majority" (String.sub data 0 8);
  ignore (write_ok c ~site:0 ~block:0 "still writing");
  (* Lose the last data site: quorum persists (2 witnesses... no — 2 of 5
     is no quorum; fail only after checking). *)
  Cluster.fail_site c 0;
  Alcotest.(check bool) "no data site: unavailable" false (Cluster.system_available c)

let test_model_matches_simulation () =
  (* The Witness_model approximation vs the protocol simulation. *)
  let rho = 0.1 in
  let model = Analysis.Witness_model.majority_availability ~data:2 ~witnesses:1 ~rho in
  let config =
    Blockrep.Config.make_exn ~scheme:Types.Voting ~n_sites:3 ~n_blocks:2 ~witnesses:[ 2 ]
      ~latency:(Util.Dist.Constant 0.001) ~seed:4242 ()
  in
  let c = Cluster.create config in
  (* A background write stream keeps repaired data sites current, matching
     the model's lazy-currency idealisation. *)
  let gen = Workload.Failure_gen.attach c ~rng:(Util.Prng.create 17) ~lambda:rho ~mu:1.0 in
  let access = Workload.Access_gen.create ~rng:(Util.Prng.create 18) ~n_blocks:2 ~reads_per_write:0.5 () in
  ignore (Workload.Runner.run_open_loop c access ~site:0 ~rate:20.0 ~horizon:20_000.0);
  Workload.Failure_gen.stop gen;
  let sim = Blockrep.Availability_monitor.availability (Cluster.monitor c) in
  Alcotest.(check bool)
    (Printf.sprintf "model %.4f vs sim %.4f" model sim)
    true
    (Float.abs (model -. sim) < 0.02)

let test_model_properties () =
  let rho = 0.05 in
  (* Witnesses help: 2 data + 1 witness beats 2 data copies alone. *)
  let with_w = Analysis.Witness_model.majority_availability ~data:2 ~witnesses:1 ~rho in
  let plain2 = Analysis.Voting_model.availability ~n:2 ~rho in
  Alcotest.(check bool) "witness adds availability" true (with_w > plain2);
  (* For 2 data + 1 witness the model coincides with 3 full copies: every
     majority pair contains a data site, so the data constraint is vacuous
     — a classic witness result.  (The protocol still pays a currency
     window the model idealises away.) *)
  let plain3 = Analysis.Voting_model.availability ~n:3 ~rho in
  Alcotest.(check (float 1e-9)) "2d+1w = 3 full copies in the model" plain3 with_w;
  (* Zero witnesses reduces to plain voting. *)
  List.iter
    (fun n ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "no witnesses = plain voting n=%d" n)
        (Analysis.Voting_model.availability ~n ~rho)
        (Analysis.Witness_model.majority_availability ~data:n ~witnesses:0 ~rho))
    [ 1; 2; 3; 4; 5 ]

let test_storage_accounting () =
  let full, with_w = Analysis.Witness_model.storage_blocks ~data:2 ~witnesses:1 ~n_blocks:100 in
  Alcotest.(check int) "full replication" 300 full;
  Alcotest.(check int) "witness config" 200 with_w

let prop_witness_model_bounds =
  QCheck.Test.make ~name:"witness availability between write-availability bounds" ~count:100
    QCheck.(triple (int_range 1 4) (int_range 0 4) (float_range 0.01 1.0))
    (fun (data, witnesses, rho) ->
      let a = Analysis.Witness_model.majority_availability ~data ~witnesses ~rho in
      (* Never better than plain voting over the same site count; never
         better than 1; non-negative. *)
      let plain = Analysis.Voting_model.availability ~n:(data + witnesses) ~rho in
      a >= 0.0 && a <= plain +. 1e-12)

let () =
  Alcotest.run "witness"
    [
      ( "protocol",
        [
          Alcotest.test_case "config validation" `Quick test_config_validation;
          Alcotest.test_case "roundtrip" `Quick test_roundtrip_with_witness;
          Alcotest.test_case "versions but no data" `Quick test_witness_versions_but_no_data;
          Alcotest.test_case "witness read costs a fetch" `Quick test_read_at_witness_costs_fetch;
          Alcotest.test_case "witness sustains quorum" `Quick test_witness_sustains_quorum;
          Alcotest.test_case "current copy unreachable" `Quick test_current_copy_unreachable;
          Alcotest.test_case "witnesses never serve data" `Quick test_witnesses_do_not_serve_transfers;
          Alcotest.test_case "two witnesses of five" `Quick test_five_sites_two_witnesses;
        ] );
      ( "model",
        [
          Alcotest.test_case "matches simulation" `Slow test_model_matches_simulation;
          Alcotest.test_case "ordering properties" `Quick test_model_properties;
          Alcotest.test_case "storage accounting" `Quick test_storage_accounting;
          QCheck_alcotest.to_alcotest prop_witness_model_bounds;
        ] );
    ]
