(* Tests for Blockdev.Image: device dump/restore across devices, including
   a full file system surviving the trip into a replicated device. *)

module Mem = Blockdev.Mem_device
module Block = Blockdev.Block
module Hfs_mem = Fs.Hier_fs.Make (Mem)
module Hfs_rel = Fs.Hier_fs.Make (Blockrep.Reliable_device)

let temp () = Filename.temp_file "blockrep" ".img"

let ok_or_fail = function Ok v -> v | Error msg -> Alcotest.failf "image: %s" msg

let fs_ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "fs: %s" (Fs.Fs_core.error_to_string e)

let test_save_load_roundtrip () =
  let dev = Mem.create ~capacity:16 in
  ignore (Mem.write_block dev 3 (Block.of_string "three"));
  ignore (Mem.write_block dev 15 (Block.of_string "fifteen"));
  let path = temp () in
  ok_or_fail (Blockdev.Image.save (module Mem) dev path);
  let copy = ok_or_fail (Blockdev.Image.load_mem path) in
  Alcotest.(check int) "capacity" 16 (Mem.capacity copy);
  (match Mem.read_block copy 3 with
  | Some b -> Alcotest.(check string) "block 3" "three" (String.sub (Block.to_string b) 0 5)
  | None -> Alcotest.fail "read failed");
  (match Mem.read_block copy 0 with
  | Some b -> Alcotest.(check bool) "untouched block zero" true (Block.equal b Block.zero)
  | None -> Alcotest.fail "read failed");
  Sys.remove path

let test_capacity_of () =
  let dev = Mem.create ~capacity:7 in
  let path = temp () in
  ok_or_fail (Blockdev.Image.save (module Mem) dev path);
  Alcotest.(check int) "header capacity" 7 (ok_or_fail (Blockdev.Image.capacity_of path));
  Sys.remove path

let test_restore_capacity_mismatch () =
  let dev = Mem.create ~capacity:8 in
  let path = temp () in
  ok_or_fail (Blockdev.Image.save (module Mem) dev path);
  let other = Mem.create ~capacity:9 in
  (match Blockdev.Image.restore (module Mem) other path with
  | Error msg -> Alcotest.(check bool) "explains mismatch" true (String.length msg > 0)
  | Ok () -> Alcotest.fail "restored into wrong capacity");
  Sys.remove path

let test_bad_magic () =
  let path = temp () in
  let oc = open_out_bin path in
  output_string oc "this is not an image";
  close_out oc;
  (match Blockdev.Image.load_mem path with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted garbage");
  Sys.remove path

let test_truncated_image () =
  let dev = Mem.create ~capacity:4 in
  let path = temp () in
  ok_or_fail (Blockdev.Image.save (module Mem) dev path);
  (* Chop the tail off. *)
  let ic = open_in_bin path in
  let full = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let oc = open_out_bin path in
  output_string oc (String.sub full 0 (String.length full - 600));
  close_out oc;
  (match Blockdev.Image.load_mem path with
  | Error msg -> Alcotest.(check bool) "mentions truncation" true (String.length msg > 0)
  | Ok _ -> Alcotest.fail "accepted a truncated image");
  Sys.remove path

let test_save_failed_device () =
  let dev = Mem.create ~capacity:4 in
  Mem.fail dev;
  let path = temp () in
  (match Blockdev.Image.save (module Mem) dev path with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "dumped an unreadable device");
  Sys.remove path

let test_filesystem_travels_between_device_kinds () =
  (* Format a hierarchical fs on one disk, dump it, restore into a
     replicated device, and mount it there: byte-level compatibility. *)
  let disk = Mem.create ~capacity:128 in
  let fs = fs_ok (Hfs_mem.format disk) in
  fs_ok (Hfs_mem.mkdir_p fs "/etc");
  fs_ok (Hfs_mem.create fs "/etc/motd");
  fs_ok (Hfs_mem.write fs "/etc/motd" (Bytes.of_string "travelled"));
  let path = temp () in
  ok_or_fail (Blockdev.Image.save (module Mem) disk path);
  let reliable =
    Blockrep.Reliable_device.of_config
      (Blockrep.Config.make_exn ~scheme:Blockrep.Types.Naive_available_copy ~n_sites:3 ~n_blocks:128
         ~seed:1313 ())
  in
  ok_or_fail (Blockdev.Image.restore (module Blockrep.Reliable_device) reliable path);
  let fs2 = fs_ok (Hfs_rel.mount reliable) in
  Alcotest.(check string) "mounted on the replicated device" "travelled"
    (Bytes.to_string (fs_ok (Hfs_rel.read fs2 "/etc/motd")));
  fs_ok (Hfs_rel.fsck fs2);
  (* And back again. *)
  let path2 = temp () in
  ok_or_fail (Blockdev.Image.save (module Blockrep.Reliable_device) reliable path2);
  let disk2 = ok_or_fail (Blockdev.Image.load_mem path2) in
  let fs3 = fs_ok (Hfs_mem.mount disk2) in
  Alcotest.(check string) "round trip" "travelled" (Bytes.to_string (fs_ok (Hfs_mem.read fs3 "/etc/motd")));
  Sys.remove path;
  Sys.remove path2

let prop_image_roundtrip =
  QCheck.Test.make ~name:"image save/load preserves every block" ~count:30
    QCheck.(list_of_size (Gen.int_range 0 20) (pair (int_range 0 7) printable_string))
    (fun writes ->
      let dev = Mem.create ~capacity:8 in
      List.iter (fun (k, s) -> ignore (Mem.write_block dev k (Block.of_string s))) writes;
      let path = temp () in
      let result =
        match Blockdev.Image.save (module Mem) dev path with
        | Error _ -> false
        | Ok () -> (
            match Blockdev.Image.load_mem path with
            | Error _ -> false
            | Ok copy ->
                List.for_all
                  (fun k ->
                    match (Mem.read_block dev k, Mem.read_block copy k) with
                    | Some a, Some b -> Block.equal a b
                    | _ -> false)
                  (List.init 8 Fun.id))
      in
      Sys.remove path;
      result)

let () =
  Alcotest.run "image"
    [
      ( "image",
        [
          Alcotest.test_case "save/load roundtrip" `Quick test_save_load_roundtrip;
          Alcotest.test_case "capacity_of" `Quick test_capacity_of;
          Alcotest.test_case "capacity mismatch" `Quick test_restore_capacity_mismatch;
          Alcotest.test_case "bad magic" `Quick test_bad_magic;
          Alcotest.test_case "truncated image" `Quick test_truncated_image;
          Alcotest.test_case "unreadable device" `Quick test_save_failed_device;
          Alcotest.test_case "fs travels between devices" `Quick
            test_filesystem_travels_between_device_kinds;
          QCheck_alcotest.to_alcotest prop_image_roundtrip;
        ] );
    ]
