(* Tests for Report.Figures: the figure generators behind the bench harness
   and the CLI must encode the paper's qualitative claims. *)

let rows9 = lazy (Report.Figures.figure_9_10 ~n_copies:3 ())
let rows10 = lazy (Report.Figures.figure_9_10 ~n_copies:4 ())

let test_fig9_grid () =
  let rows = Lazy.force rows9 in
  Alcotest.(check int) "11 rho points" 11 (List.length rows);
  Alcotest.(check (float 1e-9)) "starts at 0" 0.0 (List.hd rows).Report.Figures.rho;
  Alcotest.(check (float 1e-9)) "ends at 0.20" 0.20
    (List.nth rows 10).Report.Figures.rho

let test_fig9_perfect_sites () =
  let first = List.hd (Lazy.force rows9) in
  Alcotest.(check (float 1e-9)) "voting perfect" 1.0 first.Report.Figures.voting;
  Alcotest.(check (float 1e-9)) "ac perfect" 1.0 first.Report.Figures.ac_closed;
  Alcotest.(check (float 1e-9)) "nac perfect" 1.0 first.Report.Figures.nac_closed

let test_fig9_dominance () =
  (* The headline: both copy schemes beat voting-with-2n everywhere. *)
  List.iter
    (fun (r : Report.Figures.availability_row) ->
      if r.rho > 0.0 then begin
        if r.ac_chain <= r.voting then Alcotest.failf "AC below voting at rho=%.2f" r.rho;
        if r.nac_chain <= r.voting then Alcotest.failf "NAC below voting at rho=%.2f" r.rho
      end)
    (Lazy.force rows9 @ Lazy.force rows10)

let test_fig9_ac_nac_indistinguishable_low_rho () =
  (* "...fail to show any significant difference ... for rho < 0.10." *)
  List.iter
    (fun (r : Report.Figures.availability_row) ->
      if r.rho <= 0.10 && Float.abs (r.ac_chain -. r.nac_chain) > 0.002 then
        Alcotest.failf "AC/NAC gap %.4f at rho=%.2f" (Float.abs (r.ac_chain -. r.nac_chain)) r.rho)
    (Lazy.force rows9)

let test_fig9_closed_matches_chain () =
  List.iter
    (fun (r : Report.Figures.availability_row) ->
      Alcotest.(check (float 1e-9)) "ac closed=chain" r.ac_chain r.ac_closed;
      Alcotest.(check (float 1e-9)) "nac closed=chain" r.nac_chain r.nac_closed)
    (Lazy.force rows9 @ Lazy.force rows10)

let test_fig10_tighter_than_fig9 () =
  (* Four copies beat three, for every scheme, at every rho > 0. *)
  List.iter2
    (fun (r9 : Report.Figures.availability_row) (r10 : Report.Figures.availability_row) ->
      if r9.rho > 0.0 then begin
        Alcotest.(check bool) "ac4 > ac3" true (r10.ac_chain > r9.ac_chain);
        Alcotest.(check bool) "nac4 > nac3" true (r10.nac_chain > r9.nac_chain);
        Alcotest.(check bool) "v8 > v6" true (r10.voting > r9.voting)
      end)
    (Lazy.force rows9) (Lazy.force rows10)

let test_fig11_shapes () =
  let rows = Report.Figures.figure_11 () in
  List.iter
    (fun (r : Report.Figures.traffic_row) ->
      (* NAC flat at 1; ordering NAC < AC < voting at every n and x. *)
      Alcotest.(check (float 1e-9)) "nac flat" 1.0 r.nac;
      Alcotest.(check bool) "ordering" true (r.nac < r.ac && r.ac < r.voting_x1);
      Alcotest.(check bool) "voting grows in x" true
        (r.voting_x1 < r.voting_x2 && r.voting_x2 < r.voting_x4))
    rows;
  (* Voting cost grows with n; AC grows with n. *)
  let first = List.hd rows and last = List.nth rows (List.length rows - 1) in
  Alcotest.(check bool) "voting grows in n" true (last.voting_x2 > first.voting_x2);
  Alcotest.(check bool) "ac grows in n" true (last.ac > first.ac)

let test_fig12_amplifies () =
  (* Unique addressing costs more than multicast for every scheme (same n,
     same x), except the degenerate n=2 broadcast. *)
  let mc = Report.Figures.figure_11 () and ua = Report.Figures.figure_12 () in
  List.iter2
    (fun (m : Report.Figures.traffic_row) (u : Report.Figures.traffic_row) ->
      if m.n_sites > 2 then begin
        Alcotest.(check bool) "voting amplified" true (u.voting_x2 > m.voting_x2);
        Alcotest.(check bool) "ac amplified" true (u.ac > m.ac);
        Alcotest.(check bool) "nac amplified" true (u.nac > m.nac)
      end)
    mc ua

let test_identities_all_hold () =
  let rows = Report.Figures.identity_checks () in
  Alcotest.(check bool) "at least 100 checks" true (List.length rows >= 100);
  List.iter
    (fun (r : Report.Figures.identity_row) ->
      if not r.holds then Alcotest.failf "violated: %s (%.8f vs %.8f)" r.label r.lhs r.rhs)
    rows

let test_simulated_rows_close_to_model () =
  (* One simulated point per scheme, modest horizon: sims within 2% of the
     chains. *)
  let rows =
    Report.Figures.figure_9_10 ~n_copies:3 ~rhos:[ 0.1 ] ~simulate:true ~sim_horizon:10_000.0 ()
  in
  match rows with
  | [ r ] ->
      let close tag model sim =
        match sim with
        | Some s ->
            if Float.abs (s -. model) > 0.02 then Alcotest.failf "%s: sim %.4f vs model %.4f" tag s model
        | None -> Alcotest.failf "%s: no simulation column" tag
      in
      close "ac" r.ac_chain r.ac_sim;
      close "nac" r.nac_chain r.nac_sim;
      close "voting" r.voting r.voting_sim
  | _ -> Alcotest.fail "expected exactly one row"

let test_csv_export () =
  let rows = Lazy.force rows9 in
  let lines = Report.Csv.availability_rows rows in
  Alcotest.(check int) "header + one line per row" (List.length rows + 1) (List.length lines);
  let header = List.hd lines in
  Alcotest.(check bool) "header names the columns" true
    (String.length header >= 3 && String.sub header 0 3 = "rho");
  (* Every data line has the same number of commas as the header. *)
  let commas s = String.fold_left (fun acc c -> if c = ',' then acc + 1 else acc) 0 s in
  List.iter (fun l -> Alcotest.(check int) "field count" (commas header) (commas l)) (List.tl lines);
  (* Values replot exactly: parse the first data cell back. *)
  (match String.split_on_char ',' (List.nth lines 1) with
  | rho_cell :: _ -> Alcotest.(check (float 1e-12)) "parses back" 0.0 (float_of_string rho_cell)
  | [] -> Alcotest.fail "empty CSV line");
  let traffic_lines = Report.Csv.traffic_rows (Report.Figures.figure_11 ()) in
  Alcotest.(check bool) "traffic csv too" true (List.length traffic_lines > 1)

let test_csv_file_roundtrip () =
  let path = Filename.temp_file "blockrep" ".csv" in
  let lines = Report.Csv.identity_rows (Report.Figures.identity_checks ~rhos:[ 0.1 ] ()) in
  (match Report.Csv.write_file path lines with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "write: %s" msg);
  let ic = open_in path in
  let rec count acc = match input_line ic with _ -> count (acc + 1) | exception End_of_file -> acc in
  let n = count 0 in
  close_in ic;
  Sys.remove path;
  Alcotest.(check int) "all lines written" (List.length lines) n

let test_print_functions_render () =
  (* Smoke-test the formatters. *)
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  Report.Figures.print_availability ppf ~title:"t" (Lazy.force rows9);
  Report.Figures.print_traffic ppf ~title:"t" (Report.Figures.figure_11 ());
  Report.Figures.print_identities ppf (Report.Figures.identity_checks ~rhos:[ 0.1 ] ());
  Format.pp_print_flush ppf ();
  Alcotest.(check bool) "rendered something" true (Buffer.length buf > 500)

let () =
  Alcotest.run "report"
    [
      ( "figures",
        [
          Alcotest.test_case "figure 9 grid" `Quick test_fig9_grid;
          Alcotest.test_case "perfect sites" `Quick test_fig9_perfect_sites;
          Alcotest.test_case "copy schemes dominate voting" `Quick test_fig9_dominance;
          Alcotest.test_case "AC ~ NAC below rho=0.1" `Quick test_fig9_ac_nac_indistinguishable_low_rho;
          Alcotest.test_case "closed forms match chains" `Quick test_fig9_closed_matches_chain;
          Alcotest.test_case "figure 10 tighter" `Quick test_fig10_tighter_than_fig9;
          Alcotest.test_case "figure 11 shapes" `Quick test_fig11_shapes;
          Alcotest.test_case "figure 12 amplifies" `Quick test_fig12_amplifies;
          Alcotest.test_case "identities hold" `Quick test_identities_all_hold;
          Alcotest.test_case "simulation near model" `Slow test_simulated_rows_close_to_model;
          Alcotest.test_case "printers render" `Quick test_print_functions_render;
          Alcotest.test_case "csv export" `Quick test_csv_export;
          Alcotest.test_case "csv file roundtrip" `Quick test_csv_file_roundtrip;
        ] );
    ]
