(* Tests for dynamic voting (the reference [10] extension): majorities of
   the last update group, per block. *)

module Cluster = Blockrep.Cluster
module Types = Blockrep.Types
module Block = Blockdev.Block

let make ?(n = 5) ?(blocks = 4) ?(seed = 1818) () =
  Cluster.create (Blockrep.Config.make_exn ~scheme:Types.Dynamic_voting ~n_sites:n ~n_blocks:blocks ~seed ())

let payload s = Block.of_string s

let write_ok c ~site ~block data =
  match Cluster.write_sync c ~site ~block (payload data) with
  | Ok v -> v
  | Error e -> Alcotest.failf "write failed: %s" (Types.failure_reason_to_string e)

let read_ok c ~site ~block =
  match Cluster.read_sync c ~site ~block with
  | Ok (b, v) -> (Block.to_string b, v)
  | Error e -> Alcotest.failf "read failed: %s" (Types.failure_reason_to_string e)

let settle c = Cluster.run_until c (Sim.Engine.now (Cluster.engine c) +. 30.0)

let test_roundtrip () =
  let c = make () in
  Alcotest.(check int) "v1" 1 (write_ok c ~site:0 ~block:0 "dyn");
  let data, v = read_ok c ~site:3 ~block:0 in
  Alcotest.(check int) "version" 1 v;
  Alcotest.(check string) "data" "dyn" (String.sub data 0 3)

let test_survives_sequential_failures () =
  (* The headline: with writes interleaved, service survives down to a
     pair — static majority voting dies at ⌈(n+1)/2⌉-1 failures. *)
  let c = make () in
  ignore (write_ok c ~site:0 ~block:0 "g5");
  settle c;
  Cluster.fail_site c 4;
  ignore (write_ok c ~site:0 ~block:0 "g4");
  settle c;
  Cluster.fail_site c 3;
  ignore (write_ok c ~site:0 ~block:0 "g3");
  settle c;
  Cluster.fail_site c 2;
  (* 2 of 5 up: static voting refuses here; the group has shrunk to
     {0,1,2} and 2 of 3 are up, so dynamic still serves. *)
  let v = write_ok c ~site:0 ~block:0 "g2" in
  Alcotest.(check int) "still writing at 2/5" 4 v;
  settle c;
  let _, rv = read_ok c ~site:1 ~block:0 in
  Alcotest.(check int) "still reading at 2/5" 4 rv

let test_pair_is_the_floor () =
  (* A group of two needs both members: strict majorities cannot shrink
     to one. *)
  let c = make () in
  ignore (write_ok c ~site:0 ~block:0 "init");
  settle c;
  List.iter
    (fun i ->
      Cluster.fail_site c i;
      ignore (Cluster.write_sync c ~site:0 ~block:0 (payload (Printf.sprintf "shrink%d" i)));
      settle c)
    [ 4; 3; 2 ];
  (* Group is now {0,1}.  Losing 1 must stop service. *)
  Cluster.fail_site c 1;
  (match Cluster.write_sync c ~site:0 ~block:0 (payload "alone") with
  | Error Types.No_quorum -> ()
  | Ok v -> Alcotest.failf "lone site wrote v%d" v
  | Error e -> Alcotest.failf "wrong refusal: %s" (Types.failure_reason_to_string e));
  match Cluster.read_sync c ~site:0 ~block:0 with
  | Error Types.No_quorum -> ()
  | Ok _ -> Alcotest.fail "lone site served a read"
  | Error e -> Alcotest.failf "wrong refusal: %s" (Types.failure_reason_to_string e)

let test_pair_member_serves_alone_cannot () =
  (* After shrinking to {0,1}, repairing other sites does not help until a
     write adopts them. *)
  let c = make () in
  ignore (write_ok c ~site:0 ~block:0 "base");
  settle c;
  List.iter
    (fun i ->
      Cluster.fail_site c i;
      ignore (Cluster.write_sync c ~site:0 ~block:0 (payload "x"));
      settle c)
    [ 4; 3; 2 ];
  Cluster.fail_site c 0;
  Cluster.repair_site c 2;
  Cluster.repair_site c 3;
  Cluster.repair_site c 4;
  settle c;
  (* 4 of 5 sites up, but the pair {0,1} is the quorum base and 0 is down:
     site 1 alone does not make a majority of 2... *)
  (match Cluster.read_sync c ~site:1 ~block:0 with
  | Error Types.No_quorum -> ()
  | Ok _ -> Alcotest.fail "served without a group majority"
  | Error e -> Alcotest.failf "wrong refusal: %s" (Types.failure_reason_to_string e));
  (* ...until 0 returns; then a write re-adopts everyone. *)
  Cluster.repair_site c 0;
  settle c;
  ignore (write_ok c ~site:1 ~block:0 "regrown");
  settle c;
  Cluster.fail_site c 0;
  Cluster.fail_site c 1;
  (* With the group regrown to all five, {2,3,4} now suffices. *)
  let data, _ = read_ok c ~site:2 ~block:0 in
  Alcotest.(check string) "regrown group serves" "regrown" (String.sub data 0 7)

let test_no_lost_writes_on_recovery () =
  let c = make () in
  ignore (write_ok c ~site:0 ~block:1 "first");
  settle c;
  Cluster.fail_site c 4;
  Cluster.fail_site c 3;
  ignore (write_ok c ~site:0 ~block:1 "second");
  settle c;
  Cluster.repair_site c 3;
  Cluster.repair_site c 4;
  settle c;
  (* Stale sites serve only after catching up via the vote/pull path. *)
  let data, v = read_ok c ~site:4 ~block:1 in
  Alcotest.(check int) "latest version" 2 v;
  Alcotest.(check string) "latest data" "second" (String.sub data 0 6);
  ignore (write_ok c ~site:4 ~block:1 "third");
  settle c;
  Alcotest.(check bool) "consistent" true (Cluster.consistent_available_stores c)

let test_partition_minority_refused () =
  let c = make () in
  ignore (write_ok c ~site:0 ~block:0 "pre");
  settle c;
  Cluster.partition c [ [ 0; 1 ]; [ 2; 3; 4 ] ];
  (match Cluster.write_sync c ~site:0 ~block:0 (payload "minority") with
  | Error Types.No_quorum -> ()
  | Ok _ -> Alcotest.fail "minority accepted"
  | Error e -> Alcotest.failf "wrong refusal: %s" (Types.failure_reason_to_string e));
  (match Cluster.write_sync c ~site:2 ~block:0 (payload "majority") with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "majority refused: %s" (Types.failure_reason_to_string e));
  settle c;
  Cluster.heal c;
  settle c;
  let data, _ = read_ok c ~site:0 ~block:0 in
  Alcotest.(check string) "one history" "majority" (String.sub data 0 8)

let test_shrunk_partition_keeps_exclusivity () =
  (* The majority side shrinks its group to {2,3,4}; after healing, the
     old members cannot form quorums against the shrunk group. *)
  let c = make () in
  ignore (write_ok c ~site:0 ~block:0 "pre");
  settle c;
  Cluster.partition c [ [ 0; 1 ]; [ 2; 3; 4 ] ];
  ignore (write_ok c ~site:2 ~block:0 "shrunk");
  settle c;
  (* Simulate the worst: the whole old majority side goes down post-heal. *)
  Cluster.heal c;
  settle c;
  Cluster.fail_site c 2;
  Cluster.fail_site c 3;
  (* 0, 1, 4 are up: 4 holds the shrunk-group write; group {2,3,4} has
     only one member up -> refuse (0 and 1 are not members). *)
  match Cluster.read_sync c ~site:0 ~block:0 with
  | Error Types.No_quorum -> ()
  | Ok (_, v) -> Alcotest.failf "served v%d without group majority" v
  | Error e -> Alcotest.failf "wrong refusal: %s" (Types.failure_reason_to_string e)

let test_per_block_groups_independent () =
  let c = make ~blocks:2 () in
  ignore (write_ok c ~site:0 ~block:0 "b0");
  settle c;
  Cluster.fail_site c 3;
  Cluster.fail_site c 4;
  (* Shrink only block 0's group. *)
  ignore (write_ok c ~site:0 ~block:0 "b0-shrunk");
  settle c;
  Cluster.repair_site c 3;
  Cluster.repair_site c 4;
  settle c;
  Cluster.fail_site c 0;
  Cluster.fail_site c 1;
  (* Block 1's group is still all five: {2,3,4} serves it. *)
  let _, v1 = read_ok c ~site:2 ~block:1 in
  Alcotest.(check int) "block 1 at v0" 0 v1;
  (* Block 0's group is {0,1,2}: only 2 is up -> refused. *)
  match Cluster.read_sync c ~site:2 ~block:0 with
  | Error Types.No_quorum -> ()
  | Ok _ -> Alcotest.fail "block 0 served without its group"
  | Error e -> Alcotest.failf "wrong refusal: %s" (Types.failure_reason_to_string e)

let test_group_accessor () =
  let c = make () in
  ignore (write_ok c ~site:0 ~block:0 "g");
  settle c;
  Cluster.fail_site c 4;
  ignore (write_ok c ~site:0 ~block:0 "g2");
  settle c;
  (* White-box: reach the protocol through a fresh read; the recorded
     group cardinality at the coordinator should now be 4. *)
  let rt = Cluster.runtime c in
  ignore rt;
  (* site_versions suffices to check the adoption effect instead. *)
  Alcotest.(check int) "writer at v2" 2 (Blockdev.Version_vector.get (Cluster.site_versions c 0) 0);
  Alcotest.(check int) "down site missed it" 1
    (Blockdev.Version_vector.get (Cluster.site_versions c 4) 0)

let test_oracle_under_churn () =
  (* The cross-scheme oracle: successful reads always return the latest
     successfully written value, under random fail/repair churn. *)
  let c = make ~n:4 ~blocks:4 ~seed:31 () in
  let rng = Util.Prng.create 37 in
  let latest = Array.make 4 None in
  let up = Array.make 4 true in
  let violations = ref 0 in
  for step = 1 to 400 do
    let roll = Util.Prng.int rng 20 in
    if roll < 3 then begin
      let s = Util.Prng.int rng 4 in
      if up.(s) then Cluster.fail_site c s else Cluster.repair_site c s;
      up.(s) <- not up.(s)
    end
    else begin
      let block = Util.Prng.int rng 4 in
      let site = Util.Prng.int rng 4 in
      if roll < 11 then begin
        let tag = Printf.sprintf "s%d" step in
        match Cluster.write_sync c ~site ~block (payload tag) with
        | Ok _ ->
            latest.(block) <- Some tag;
            settle c
        | Error _ -> ()
      end
      else
        match (Cluster.read_sync c ~site ~block, latest.(block)) with
        | Ok (b, _), Some want ->
            if String.sub (Block.to_string b) 0 (String.length want) <> want then incr violations
        | Ok _, None | Error _, _ -> ()
    end
  done;
  Alcotest.(check int) "no stale reads" 0 !violations

let () =
  Alcotest.run "dynamic-voting"
    [
      ( "service",
        [
          Alcotest.test_case "roundtrip" `Quick test_roundtrip;
          Alcotest.test_case "survives sequential failures" `Quick test_survives_sequential_failures;
          Alcotest.test_case "pair floor" `Quick test_pair_is_the_floor;
          Alcotest.test_case "regrowth after repair" `Quick test_pair_member_serves_alone_cannot;
          Alcotest.test_case "per-block groups" `Quick test_per_block_groups_independent;
          Alcotest.test_case "version visibility" `Quick test_group_accessor;
        ] );
      ( "safety",
        [
          Alcotest.test_case "no lost writes" `Quick test_no_lost_writes_on_recovery;
          Alcotest.test_case "minority partition refused" `Quick test_partition_minority_refused;
          Alcotest.test_case "shrunk group exclusivity" `Quick test_shrunk_partition_keeps_exclusivity;
          Alcotest.test_case "oracle under churn" `Slow test_oracle_under_churn;
        ] );
    ]
