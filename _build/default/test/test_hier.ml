(* Tests for Fs.Hier_fs: the hierarchical file system, on a plain device
   and on the replicated reliable device. *)

module Hfs = Fs.Hier_fs.Make (Blockdev.Mem_device)
module Rhfs = Fs.Hier_fs.Make (Blockrep.Reliable_device)

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected fs error: %s" (Fs.Fs_core.error_to_string e)

let expect_error expected = function
  | Ok _ -> Alcotest.failf "expected %s" (Fs.Fs_core.error_to_string expected)
  | Error e ->
      if e <> expected then
        Alcotest.failf "expected %s, got %s" (Fs.Fs_core.error_to_string expected)
          (Fs.Fs_core.error_to_string e)

let fresh ?(capacity = 256) () =
  let dev = Blockdev.Mem_device.create ~capacity in
  (dev, ok (Hfs.format dev))

let names entries = List.map (fun e -> e.Fs.Hier_fs.name) entries

let test_format_mount () =
  let dev, _fs = fresh () in
  let fs = ok (Hfs.mount dev) in
  Alcotest.(check (list string)) "empty root" [] (names (ok (Hfs.list fs "/")))

let test_flavour_separation () =
  (* A device formatted flat must not mount hierarchical, and vice versa. *)
  let dev = Blockdev.Mem_device.create ~capacity:128 in
  let module Ffs = Fs.Flat_fs.Make (Blockdev.Mem_device) in
  ignore (ok (Ffs.format dev));
  expect_error Fs.Fs_core.Not_formatted (Hfs.mount dev)

let test_mkdir_and_nesting () =
  let _, fs = fresh () in
  ok (Hfs.mkdir fs "/usr");
  ok (Hfs.mkdir fs "/usr/local");
  ok (Hfs.mkdir fs "/usr/local/bin");
  Alcotest.(check (list string)) "root" [ "usr" ] (names (ok (Hfs.list fs "/")));
  Alcotest.(check (list string)) "nested" [ "local" ] (names (ok (Hfs.list fs "/usr")));
  Alcotest.(check bool) "leaf exists" true (Hfs.exists fs "usr/local/bin");
  Alcotest.(check bool) "kind is directory" true (ok (Hfs.kind_of fs "/usr/local/bin") = Fs.Hier_fs.Directory)

let test_mkdir_missing_parent () =
  let _, fs = fresh () in
  expect_error Fs.Fs_core.Not_found (Hfs.mkdir fs "/a/b/c")

let test_mkdir_p () =
  let _, fs = fresh () in
  ok (Hfs.mkdir_p fs "/deep/ly/nested/tree");
  Alcotest.(check bool) "whole chain" true (Hfs.exists fs "/deep/ly/nested/tree");
  (* Idempotent. *)
  ok (Hfs.mkdir_p fs "/deep/ly/nested/tree");
  (* But not through a file. *)
  ok (Hfs.create fs "/deep/file");
  expect_error Fs.Fs_core.Not_a_directory (Hfs.mkdir_p fs "/deep/file/sub")

let test_file_roundtrip_in_subdir () =
  let _, fs = fresh () in
  ok (Hfs.mkdir_p fs "/home/user");
  ok (Hfs.create fs "/home/user/notes.txt");
  ok (Hfs.write fs "/home/user/notes.txt" (Bytes.of_string "hierarchical"));
  Alcotest.(check string) "read back" "hierarchical"
    (Bytes.to_string (ok (Hfs.read fs "/home/user/notes.txt")));
  let st = ok (Hfs.stat fs "/home/user/notes.txt") in
  Alcotest.(check bool) "file kind" true (st.Fs.Hier_fs.kind = Fs.Hier_fs.File);
  Alcotest.(check int) "size" 12 st.Fs.Hier_fs.size

let test_same_name_in_different_dirs () =
  let _, fs = fresh () in
  ok (Hfs.mkdir fs "/a");
  ok (Hfs.mkdir fs "/b");
  ok (Hfs.create fs "/a/data");
  ok (Hfs.create fs "/b/data");
  ok (Hfs.write fs "/a/data" (Bytes.of_string "in-a"));
  ok (Hfs.write fs "/b/data" (Bytes.of_string "in-b"));
  Alcotest.(check string) "a's copy" "in-a" (Bytes.to_string (ok (Hfs.read fs "/a/data")));
  Alcotest.(check string) "b's copy" "in-b" (Bytes.to_string (ok (Hfs.read fs "/b/data")))

let test_path_through_file_rejected () =
  let _, fs = fresh () in
  ok (Hfs.create fs "/plain");
  expect_error Fs.Fs_core.Not_a_directory (Hfs.create fs "/plain/child");
  expect_error Fs.Fs_core.Not_a_directory (Hfs.list fs "/plain")

let test_file_dir_confusions () =
  let _, fs = fresh () in
  ok (Hfs.mkdir fs "/d");
  ok (Hfs.create fs "/f");
  expect_error Fs.Fs_core.Is_a_directory (Hfs.read fs "/d");
  expect_error Fs.Fs_core.Is_a_directory (Hfs.write fs "/d" (Bytes.of_string "x"));
  expect_error Fs.Fs_core.Is_a_directory (Hfs.unlink fs "/d");
  expect_error Fs.Fs_core.Not_a_directory (Hfs.rmdir fs "/f")

let test_rmdir () =
  let _, fs = fresh () in
  ok (Hfs.mkdir_p fs "/x/y");
  expect_error Fs.Fs_core.Directory_not_empty (Hfs.rmdir fs "/x");
  ok (Hfs.rmdir fs "/x/y");
  ok (Hfs.rmdir fs "/x");
  Alcotest.(check bool) "gone" false (Hfs.exists fs "/x");
  expect_error Fs.Fs_core.Invalid_path (Hfs.rmdir fs "/");
  ok (Hfs.fsck fs)

let test_unlink_frees_space () =
  let _, fs = fresh () in
  ok (Hfs.mkdir fs "/tmp");
  ok (Hfs.create fs "/tmp/big");
  let free0 = ok (Hfs.fsck fs) |> fun () -> 0 in
  ignore free0;
  ok (Hfs.write fs "/tmp/big" (Bytes.make 4096 'b'));
  ok (Hfs.unlink fs "/tmp/big");
  Alcotest.(check bool) "gone" false (Hfs.exists fs "/tmp/big");
  ok (Hfs.fsck fs)

let test_rename_file () =
  let _, fs = fresh () in
  ok (Hfs.mkdir fs "/src");
  ok (Hfs.mkdir fs "/dst");
  ok (Hfs.create fs "/src/doc");
  ok (Hfs.write fs "/src/doc" (Bytes.of_string "moving"));
  ok (Hfs.rename fs "/src/doc" "/dst/renamed");
  Alcotest.(check bool) "source gone" false (Hfs.exists fs "/src/doc");
  Alcotest.(check string) "content moved" "moving" (Bytes.to_string (ok (Hfs.read fs "/dst/renamed")));
  ok (Hfs.fsck fs)

let test_rename_same_directory () =
  let _, fs = fresh () in
  ok (Hfs.create fs "/old-name");
  ok (Hfs.write fs "/old-name" (Bytes.of_string "same dir"));
  ok (Hfs.rename fs "/old-name" "/new-name");
  Alcotest.(check bool) "old gone" false (Hfs.exists fs "/old-name");
  Alcotest.(check string) "new there" "same dir" (Bytes.to_string (ok (Hfs.read fs "/new-name")));
  ok (Hfs.fsck fs)

let test_rename_directory_with_contents () =
  let _, fs = fresh () in
  ok (Hfs.mkdir_p fs "/proj/lib");
  ok (Hfs.create fs "/proj/lib/code.ml");
  ok (Hfs.write fs "/proj/lib/code.ml" (Bytes.of_string "let x = 1"));
  ok (Hfs.rename fs "/proj" "/project");
  Alcotest.(check string) "subtree moved" "let x = 1"
    (Bytes.to_string (ok (Hfs.read fs "/project/lib/code.ml")));
  ok (Hfs.fsck fs)

let test_rename_into_own_subtree_rejected () =
  let _, fs = fresh () in
  ok (Hfs.mkdir_p fs "/a/b");
  expect_error Fs.Fs_core.Invalid_path (Hfs.rename fs "/a" "/a/b/a");
  expect_error Fs.Fs_core.Invalid_path (Hfs.rename fs "/a" "/a");
  ok (Hfs.fsck fs)

let test_rename_over_existing_rejected () =
  let _, fs = fresh () in
  ok (Hfs.create fs "/one");
  ok (Hfs.create fs "/two");
  expect_error Fs.Fs_core.Already_exists (Hfs.rename fs "/one" "/two")

let test_walk () =
  let _, fs = fresh () in
  ok (Hfs.mkdir_p fs "/a/b");
  ok (Hfs.create fs "/a/f1");
  ok (Hfs.create fs "/a/b/f2");
  ok (Hfs.create fs "/top");
  let all = List.sort compare (ok (Hfs.walk fs "/")) in
  Alcotest.(check (list string)) "full walk" [ "a"; "a/b"; "a/b/f2"; "a/f1"; "top" ] all;
  let sub = List.sort compare (ok (Hfs.walk fs "/a")) in
  Alcotest.(check (list string)) "subtree walk" [ "a/b"; "a/b/f2"; "a/f1" ] sub

let test_deep_tree_many_files () =
  let _, fs = fresh ~capacity:512 () in
  (* A fan-out tree: 3 dirs x 5 files each, nested two levels. *)
  List.iter
    (fun d ->
      let dir = Printf.sprintf "/d%d/sub" d in
      ok (Hfs.mkdir_p fs dir);
      List.iter
        (fun f ->
          let path = Printf.sprintf "%s/file%d" dir f in
          ok (Hfs.create fs path);
          ok (Hfs.write fs path (Bytes.of_string path)))
        [ 0; 1; 2; 3; 4 ])
    [ 0; 1; 2 ];
  Alcotest.(check int) "walk count" (3 * 7) (List.length (ok (Hfs.walk fs "/")));
  (* Spot-check contents. *)
  Alcotest.(check string) "content is the path" "/d2/sub/file3"
    (Bytes.to_string (ok (Hfs.read fs "/d2/sub/file3")));
  ok (Hfs.fsck fs)

let test_fsck_detects_orphan () =
  (* White-box: formatting then manually marking an inode used creates an
     orphan that fsck must flag. *)
  let dev, fs = fresh () in
  ok (Hfs.mkdir fs "/legit");
  (* Corrupt: flip a used bit deep in the inode table.  Inode table starts
     after the bitmap; inode 9 lives at block (inode_start + 1), offset 64.
     We locate it by scanning for an all-zero inode slot — simpler: write
     garbage over a known-free inode slot via the device. *)
  let sb = Option.get (Blockdev.Mem_device.read_block dev 0) in
  let inode_start =
    let b = Blockdev.Block.to_bytes sb in
    Int32.to_int (Bytes.get_int32_be b 20)
  in
  let block = Option.get (Blockdev.Mem_device.read_block dev inode_start) in
  let b = Blockdev.Block.to_bytes block in
  (* Inode 7 within the first inode block: offset 7*64; mark used, file. *)
  Bytes.set b (7 * 64) '\001';
  Bytes.set b ((7 * 64) + 1) 'f';
  ignore (Blockdev.Mem_device.write_block dev inode_start (Blockdev.Block.of_bytes b));
  match Hfs.fsck fs with
  | Error (Fs.Fs_core.Corrupt msg) ->
      Alcotest.(check bool) "mentions orphan" true
        (String.length msg >= 6 && String.sub msg 0 6 = "orphan")
  | Ok () -> Alcotest.fail "fsck missed the orphan"
  | Error e -> Alcotest.failf "unexpected error: %s" (Fs.Fs_core.error_to_string e)

let test_on_reliable_device_with_failures () =
  let device =
    Blockrep.Reliable_device.of_config
      (Blockrep.Config.make_exn ~scheme:Blockrep.Types.Available_copy ~n_sites:3 ~n_blocks:256
         ~seed:1212 ())
  in
  let cluster = Blockrep.Reliable_device.cluster device in
  let fs =
    match Rhfs.format device with
    | Ok fs -> fs
    | Error e -> Alcotest.failf "format: %s" (Fs.Fs_core.error_to_string e)
  in
  let ok = function
    | Ok v -> v
    | Error e -> Alcotest.failf "fs: %s" (Fs.Fs_core.error_to_string e)
  in
  ok (Rhfs.mkdir_p fs "/var/log");
  ok (Rhfs.create fs "/var/log/messages");
  ok (Rhfs.append fs "/var/log/messages" (Bytes.of_string "boot\n"));
  Blockrep.Cluster.fail_site cluster 1;
  ok (Rhfs.append fs "/var/log/messages" (Bytes.of_string "site 1 died\n"));
  Blockrep.Cluster.repair_site cluster 1;
  Blockrep.Cluster.run_until cluster (Sim.Engine.now (Blockrep.Cluster.engine cluster) +. 100.0);
  Alcotest.(check string) "log intact" "boot\nsite 1 died\n"
    (Bytes.to_string (ok (Rhfs.read fs "/var/log/messages")));
  ok (Rhfs.fsck fs);
  Alcotest.(check bool) "replicas consistent" true
    (Blockrep.Cluster.consistent_available_stores cluster)

let prop_tree_ops_keep_fsck =
  QCheck.Test.make ~name:"random tree operations preserve fsck" ~count:40
    QCheck.(list_of_size (Gen.int_range 1 30) (pair (int_range 0 5) (int_range 0 3)))
    (fun ops ->
      let _, fs = fresh ~capacity:512 () in
      let dir i = Printf.sprintf "/dir%d" (i mod 3) in
      let file i j = Printf.sprintf "%s/f%d" (dir i) j in
      List.iter
        (fun (i, op) ->
          match op with
          | 0 -> ignore (Hfs.mkdir fs (dir i))
          | 1 -> ignore (Hfs.create fs (file i (i mod 2)))
          | 2 -> ignore (Hfs.write fs (file i (i mod 2)) (Bytes.make (100 * (i + 1)) 'q'))
          | _ -> ignore (Hfs.unlink fs (file i (i mod 2))))
        ops;
      match Hfs.fsck fs with Ok () -> true | Error _ -> false)

let () =
  Alcotest.run "hier-fs"
    [
      ( "structure",
        [
          Alcotest.test_case "format/mount" `Quick test_format_mount;
          Alcotest.test_case "flavour separation" `Quick test_flavour_separation;
          Alcotest.test_case "mkdir and nesting" `Quick test_mkdir_and_nesting;
          Alcotest.test_case "mkdir missing parent" `Quick test_mkdir_missing_parent;
          Alcotest.test_case "mkdir_p" `Quick test_mkdir_p;
          Alcotest.test_case "path through file" `Quick test_path_through_file_rejected;
          Alcotest.test_case "file/dir confusion" `Quick test_file_dir_confusions;
          Alcotest.test_case "rmdir" `Quick test_rmdir;
        ] );
      ( "files",
        [
          Alcotest.test_case "roundtrip in subdir" `Quick test_file_roundtrip_in_subdir;
          Alcotest.test_case "same name, different dirs" `Quick test_same_name_in_different_dirs;
          Alcotest.test_case "unlink" `Quick test_unlink_frees_space;
          Alcotest.test_case "deep tree" `Quick test_deep_tree_many_files;
        ] );
      ( "rename",
        [
          Alcotest.test_case "file across dirs" `Quick test_rename_file;
          Alcotest.test_case "same directory" `Quick test_rename_same_directory;
          Alcotest.test_case "directory with contents" `Quick test_rename_directory_with_contents;
          Alcotest.test_case "into own subtree" `Quick test_rename_into_own_subtree_rejected;
          Alcotest.test_case "over existing" `Quick test_rename_over_existing_rejected;
        ] );
      ( "integrity",
        [
          Alcotest.test_case "walk" `Quick test_walk;
          Alcotest.test_case "fsck detects orphan" `Quick test_fsck_detects_orphan;
          Alcotest.test_case "on reliable device" `Quick test_on_reliable_device_with_failures;
          QCheck_alcotest.to_alcotest prop_tree_ops_keep_fsck;
        ] );
    ]
