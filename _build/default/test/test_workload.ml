(* Tests for Workload: Access_gen, Failure_gen, Trace, Runner, Experiment. *)

module Cluster = Blockrep.Cluster
module Types = Blockrep.Types

let make_cluster ?(scheme = Types.Naive_available_copy) ?(n = 3) () =
  Cluster.create (Blockrep.Config.make_exn ~scheme ~n_sites:n ~n_blocks:16 ~seed:606 ())

(* ------------------------------------------------------------------ *)
(* Access_gen                                                          *)
(* ------------------------------------------------------------------ *)

let test_gen_ratio () =
  let gen =
    Workload.Access_gen.create ~rng:(Util.Prng.create 1) ~n_blocks:16 ~reads_per_write:2.5 ()
  in
  let ops = Workload.Access_gen.take gen 20_000 in
  let reads = List.length (List.filter Workload.Access_gen.is_read ops) in
  let writes = List.length ops - reads in
  let ratio = float_of_int reads /. float_of_int writes in
  Alcotest.(check (float 0.15)) "realised ratio near 2.5" 2.5 ratio;
  Alcotest.(check int) "counters" reads (Workload.Access_gen.reads_emitted gen);
  Alcotest.(check int) "counters" writes (Workload.Access_gen.writes_emitted gen)

let test_gen_write_only () =
  let gen = Workload.Access_gen.create ~rng:(Util.Prng.create 2) ~n_blocks:4 ~reads_per_write:0.0 () in
  Alcotest.(check bool) "all writes" true
    (List.for_all (fun op -> not (Workload.Access_gen.is_read op)) (Workload.Access_gen.take gen 100))

let test_gen_blocks_in_range () =
  let gen = Workload.Access_gen.create ~rng:(Util.Prng.create 3) ~n_blocks:8 ~reads_per_write:1.0 () in
  List.iter
    (fun op ->
      let b = Workload.Access_gen.op_block op in
      if b < 0 || b >= 8 then Alcotest.failf "block out of range: %d" b)
    (Workload.Access_gen.take gen 1000)

let test_gen_sequential () =
  let gen =
    Workload.Access_gen.create ~rng:(Util.Prng.create 4) ~n_blocks:4 ~reads_per_write:1.0
      ~locality:Workload.Access_gen.Sequential ()
  in
  let blocks = List.map Workload.Access_gen.op_block (Workload.Access_gen.take gen 8) in
  Alcotest.(check (list int)) "wraps around" [ 0; 1; 2; 3; 0; 1; 2; 3 ] blocks

let test_gen_zipf_skew () =
  let gen =
    Workload.Access_gen.create ~rng:(Util.Prng.create 5) ~n_blocks:64 ~reads_per_write:1.0
      ~locality:(Workload.Access_gen.Zipf 1.0) ()
  in
  let counts = Array.make 64 0 in
  List.iter
    (fun op -> counts.(Workload.Access_gen.op_block op) <- counts.(Workload.Access_gen.op_block op) + 1)
    (Workload.Access_gen.take gen 10_000);
  Alcotest.(check bool) "block 0 much hotter than block 63" true (counts.(0) > 5 * (counts.(63) + 1))

let test_gen_payloads_distinct () =
  let gen = Workload.Access_gen.create ~rng:(Util.Prng.create 6) ~n_blocks:4 ~reads_per_write:0.0 () in
  match Workload.Access_gen.take gen 2 with
  | [ Workload.Access_gen.Write (_, a); Workload.Access_gen.Write (_, b) ] ->
      Alcotest.(check bool) "distinct payloads" false (Blockdev.Block.equal a b)
  | _ -> Alcotest.fail "expected two writes"

(* ------------------------------------------------------------------ *)
(* Failure_gen                                                         *)
(* ------------------------------------------------------------------ *)

let test_failure_gen_injects () =
  let c = make_cluster () in
  let gen = Workload.Failure_gen.attach c ~rng:(Util.Prng.create 7) ~lambda:1.0 ~mu:1.0 in
  Cluster.run_until c 200.0;
  Workload.Failure_gen.stop gen;
  Alcotest.(check bool) "failures happened" true (Workload.Failure_gen.failures_injected gen > 50);
  Alcotest.(check bool) "repairs happened" true (Workload.Failure_gen.repairs_injected gen > 50)

let test_failure_gen_stop () =
  let c = make_cluster () in
  let gen = Workload.Failure_gen.attach c ~rng:(Util.Prng.create 8) ~lambda:1.0 ~mu:1.0 in
  Cluster.run_until c 50.0;
  Workload.Failure_gen.stop gen;
  let at_stop = Workload.Failure_gen.failures_injected gen in
  Cluster.run_until c 200.0;
  Alcotest.(check int) "no more after stop" at_stop (Workload.Failure_gen.failures_injected gen)

let test_failure_script () =
  let c = make_cluster () in
  Workload.Failure_gen.run_script c
    [ (10.0, Workload.Failure_gen.Fail 1); (20.0, Workload.Failure_gen.Repair 1) ];
  Cluster.run_until c 15.0;
  Alcotest.(check bool) "failed at 10" true (Cluster.site_state c 1 = Types.Failed);
  Cluster.run_until c 60.0;
  Alcotest.(check bool) "repaired at 20" true (Cluster.site_state c 1 = Types.Available)

let test_failure_rates_rejected () =
  let c = make_cluster () in
  Alcotest.check_raises "bad rates" (Invalid_argument "Failure_gen.attach: rates must be positive")
    (fun () -> ignore (Workload.Failure_gen.attach c ~rng:(Util.Prng.create 9) ~lambda:0.0 ~mu:1.0))

(* ------------------------------------------------------------------ *)
(* Trace                                                               *)
(* ------------------------------------------------------------------ *)

let test_trace_roundtrip_lines () =
  let entries = [ Workload.Trace.R 3; Workload.Trace.W (5, "payload"); Workload.Trace.R 0 ] in
  let lines = Workload.Trace.to_lines entries in
  match Workload.Trace.of_lines lines with
  | Ok back -> Alcotest.(check bool) "roundtrip" true (back = entries)
  | Error e -> Alcotest.fail e

let test_trace_parse_errors () =
  let bad l = match Workload.Trace.entry_of_line l with Error _ -> true | Ok _ -> false in
  Alcotest.(check bool) "garbage" true (bad "X 12");
  Alcotest.(check bool) "negative block" true (bad "R -4");
  Alcotest.(check bool) "non-numeric" true (bad "R abc");
  Alcotest.(check bool) "good read ok" false (bad "R 7")

let test_trace_comments_skipped () =
  match Workload.Trace.of_lines [ "# header"; ""; "R 1"; "  # another"; "W 2 xyz" ] with
  | Ok entries -> Alcotest.(check int) "two entries" 2 (List.length entries)
  | Error e -> Alcotest.fail e

let test_trace_file_roundtrip () =
  let path = Filename.temp_file "blockrep" ".trace" in
  let entries = Workload.Trace.synthesize_bsd_like ~rng:(Util.Prng.create 10) ~n_blocks:32 ~length:100 in
  Workload.Trace.save path entries;
  (match Workload.Trace.load path with
  | Ok back -> Alcotest.(check bool) "file roundtrip" true (back = entries)
  | Error e -> Alcotest.fail e);
  Sys.remove path

let test_trace_bsd_profile () =
  let entries = Workload.Trace.synthesize_bsd_like ~rng:(Util.Prng.create 11) ~n_blocks:32 ~length:10_000 in
  Alcotest.(check (float 0.3)) "2.5:1 profile" 2.5 (Workload.Trace.read_write_ratio entries)

let test_trace_ops_conversion () =
  let entries = [ Workload.Trace.W (2, "tok"); Workload.Trace.R 1 ] in
  let ops = Workload.Trace.to_ops entries in
  let back = Workload.Trace.of_ops ops in
  Alcotest.(check bool) "entry->op->entry" true (back = entries)

(* ------------------------------------------------------------------ *)
(* Runner / Experiment                                                 *)
(* ------------------------------------------------------------------ *)

let test_closed_loop_counts () =
  let c = make_cluster () in
  let gen = Workload.Access_gen.create ~rng:(Util.Prng.create 12) ~n_blocks:16 ~reads_per_write:1.0 () in
  let r = Workload.Runner.run_closed_loop c gen ~site:0 ~ops:200 in
  Alcotest.(check int) "all issued" 200 r.Workload.Runner.issued;
  Alcotest.(check int) "all succeed failure-free" 200 (r.Workload.Runner.read_ok + r.Workload.Runner.write_ok);
  Alcotest.(check (float 1e-9)) "success fraction" 1.0 (Workload.Runner.success_fraction r)

let test_closed_loop_with_down_site () =
  let c = make_cluster () in
  Cluster.fail_site c 0;
  let gen = Workload.Access_gen.create ~rng:(Util.Prng.create 13) ~n_blocks:16 ~reads_per_write:1.0 () in
  let r = Workload.Runner.run_closed_loop c gen ~site:0 ~ops:50 in
  Alcotest.(check int) "all fail at a dead site" 50
    (r.Workload.Runner.read_failed + r.Workload.Runner.write_failed)

let test_open_loop_runs () =
  let c = make_cluster () in
  let gen = Workload.Access_gen.create ~rng:(Util.Prng.create 14) ~n_blocks:16 ~reads_per_write:2.0 () in
  let r = Workload.Runner.run_open_loop c gen ~site:0 ~rate:5.0 ~horizon:100.0 in
  Alcotest.(check bool) "roughly rate*horizon ops" true (r.Workload.Runner.issued > 300 && r.Workload.Runner.issued < 700);
  Alcotest.(check (float 1e-9)) "span is the horizon" 100.0 r.Workload.Runner.span

let test_replay () =
  let c = make_cluster () in
  let entries = [ Workload.Trace.W (1, "alpha"); Workload.Trace.R 1; Workload.Trace.R 1 ] in
  let r = Workload.Runner.replay c entries ~site:0 in
  Alcotest.(check int) "writes" 1 r.Workload.Runner.write_ok;
  Alcotest.(check int) "reads" 2 r.Workload.Runner.read_ok;
  match Cluster.read_sync c ~site:0 ~block:1 with
  | Ok (b, _) ->
      Alcotest.(check string) "replayed data" "alpha" (String.sub (Blockdev.Block.to_string b) 0 5)
  | Error _ -> Alcotest.fail "read after replay failed"

let test_latency_by_scheme () =
  (* Constant latency 0.5 per hop: voting ops and AC writes take one round
     trip (1.0); copy-scheme reads and NAC writes complete locally (0). *)
  let measure scheme =
    let c =
      Cluster.create
        (Blockrep.Config.make_exn ~scheme ~n_sites:3 ~n_blocks:8
           ~latency:(Util.Dist.Constant 0.5) ~seed:909 ())
    in
    let gen = Workload.Access_gen.create ~rng:(Util.Prng.create 15) ~n_blocks:8 ~reads_per_write:1.0 () in
    let r = Workload.Runner.run_closed_loop c gen ~site:0 ~ops:100 in
    (Workload.Runner.mean_read_latency r, Workload.Runner.mean_write_latency r)
  in
  let vr, vw = measure Types.Voting in
  Alcotest.(check (float 1e-6)) "voting read one round trip" 1.0 vr;
  Alcotest.(check (float 1e-6)) "voting write one round trip" 1.0 vw;
  let ar, aw = measure Types.Available_copy in
  Alcotest.(check (float 1e-6)) "ac read local" 0.0 ar;
  Alcotest.(check (float 1e-6)) "ac write one round trip" 1.0 aw;
  let nr, nw = measure Types.Naive_available_copy in
  Alcotest.(check (float 1e-6)) "nac read local" 0.0 nr;
  Alcotest.(check (float 1e-6)) "nac write fire-and-forget" 0.0 nw

let test_experiment_availability_sane () =
  let s =
    Workload.Experiment.measure_availability ~scheme:Types.Naive_available_copy ~n_sites:3 ~rho:0.1
      ~horizon:5_000.0 ()
  in
  let model = Analysis.Nac_model.availability ~n:3 ~rho:0.1 in
  Alcotest.(check bool) "within 2% of the model" true
    (Float.abs (s.Workload.Experiment.availability -. model) < 0.02);
  Alcotest.(check bool) "failures injected" true (s.Workload.Experiment.failures > 0)

let test_experiment_traffic_exact_nac () =
  let s =
    Workload.Experiment.measure_traffic ~scheme:Types.Naive_available_copy ~n_sites:5
      ~env:Net.Network.Multicast ~reads_per_write:2.0 ~ops:500 ()
  in
  Alcotest.(check (float 1e-9)) "nac multicast = exactly 1 per write" 1.0
    s.Workload.Experiment.messages_per_write_group

let () =
  Alcotest.run "workload"
    [
      ( "access-gen",
        [
          Alcotest.test_case "ratio" `Slow test_gen_ratio;
          Alcotest.test_case "write-only" `Quick test_gen_write_only;
          Alcotest.test_case "blocks in range" `Quick test_gen_blocks_in_range;
          Alcotest.test_case "sequential locality" `Quick test_gen_sequential;
          Alcotest.test_case "zipf skew" `Quick test_gen_zipf_skew;
          Alcotest.test_case "distinct payloads" `Quick test_gen_payloads_distinct;
        ] );
      ( "failure-gen",
        [
          Alcotest.test_case "injects failures" `Quick test_failure_gen_injects;
          Alcotest.test_case "stop" `Quick test_failure_gen_stop;
          Alcotest.test_case "scripted schedule" `Quick test_failure_script;
          Alcotest.test_case "rates validated" `Quick test_failure_rates_rejected;
        ] );
      ( "trace",
        [
          Alcotest.test_case "line roundtrip" `Quick test_trace_roundtrip_lines;
          Alcotest.test_case "parse errors" `Quick test_trace_parse_errors;
          Alcotest.test_case "comments skipped" `Quick test_trace_comments_skipped;
          Alcotest.test_case "file roundtrip" `Quick test_trace_file_roundtrip;
          Alcotest.test_case "bsd profile" `Slow test_trace_bsd_profile;
          Alcotest.test_case "ops conversion" `Quick test_trace_ops_conversion;
        ] );
      ( "runner",
        [
          Alcotest.test_case "closed loop" `Quick test_closed_loop_counts;
          Alcotest.test_case "closed loop with failure" `Quick test_closed_loop_with_down_site;
          Alcotest.test_case "open loop" `Quick test_open_loop_runs;
          Alcotest.test_case "trace replay" `Quick test_replay;
          Alcotest.test_case "latency by scheme" `Quick test_latency_by_scheme;
        ] );
      ( "experiment",
        [
          Alcotest.test_case "availability sane" `Slow test_experiment_availability_sane;
          Alcotest.test_case "traffic exact for NAC" `Quick test_experiment_traffic_exact_nac;
        ] );
    ]
