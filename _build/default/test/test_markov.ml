(* Tests for Markov: Matrix, Ctmc, Chains. *)

let check_close ?(tol = 1e-9) msg expected actual = Alcotest.(check (float tol)) msg expected actual

(* ------------------------------------------------------------------ *)
(* Matrix                                                              *)
(* ------------------------------------------------------------------ *)

let test_matrix_get_set () =
  let m = Markov.Matrix.create ~rows:2 ~cols:3 in
  Markov.Matrix.set m 1 2 4.5;
  Markov.Matrix.add m 1 2 0.5;
  Alcotest.(check (float 1e-12)) "set+add" 5.0 (Markov.Matrix.get m 1 2);
  Alcotest.(check (float 1e-12)) "default zero" 0.0 (Markov.Matrix.get m 0 0)

let test_matrix_transpose () =
  let m = Markov.Matrix.of_rows [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |]; [| 5.0; 6.0 |] |] in
  let t = Markov.Matrix.transpose m in
  Alcotest.(check int) "rows" 2 (Markov.Matrix.rows t);
  Alcotest.(check int) "cols" 3 (Markov.Matrix.cols t);
  Alcotest.(check (float 1e-12)) "transposed entry" 5.0 (Markov.Matrix.get t 0 2)

let test_matrix_mul_vec () =
  let m = Markov.Matrix.of_rows [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  let y = Markov.Matrix.mul_vec m [| 1.0; 1.0 |] in
  Alcotest.(check (array (float 1e-12))) "product" [| 3.0; 7.0 |] y

let test_matrix_solve_identity () =
  let m = Markov.Matrix.of_rows [| [| 1.0; 0.0 |]; [| 0.0; 1.0 |] |] in
  let x = Markov.Matrix.solve m [| 3.0; -2.0 |] in
  Alcotest.(check (array (float 1e-9))) "identity solve" [| 3.0; -2.0 |] x

let test_matrix_solve_general () =
  (* Requires pivoting: the leading entry is zero. *)
  let m = Markov.Matrix.of_rows [| [| 0.0; 2.0; 1.0 |]; [| 1.0; 1.0; 1.0 |]; [| 2.0; 0.0; -1.0 |] |] in
  let x = Markov.Matrix.solve m [| 5.0; 6.0; -1.0 |] in
  let residual = Markov.Matrix.mul_vec m x in
  Alcotest.(check (array (float 1e-9))) "Ax = b" [| 5.0; 6.0; -1.0 |] residual

let test_matrix_solve_singular () =
  let m = Markov.Matrix.of_rows [| [| 1.0; 2.0 |]; [| 2.0; 4.0 |] |] in
  Alcotest.check_raises "singular" (Failure "Matrix.solve: singular matrix") (fun () ->
      ignore (Markov.Matrix.solve m [| 1.0; 2.0 |]))

let test_matrix_solve_does_not_mutate () =
  let m = Markov.Matrix.of_rows [| [| 2.0; 1.0 |]; [| 1.0; 3.0 |] |] in
  ignore (Markov.Matrix.solve m [| 1.0; 1.0 |]);
  Alcotest.(check (float 1e-12)) "input intact" 2.0 (Markov.Matrix.get m 0 0)

let prop_solve_residual =
  QCheck.Test.make ~name:"random well-conditioned systems solve to small residual" ~count:100
    QCheck.(int_range 1 1000)
    (fun seed ->
      let g = Util.Prng.create seed in
      let n = 1 + Util.Prng.int g 6 in
      let m = Markov.Matrix.create ~rows:n ~cols:n in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          Markov.Matrix.set m i j (Util.Prng.float g -. 0.5)
        done;
        (* diagonal dominance keeps it comfortably nonsingular *)
        Markov.Matrix.add m i i (float_of_int n)
      done;
      let b = Array.init n (fun _ -> Util.Prng.float g) in
      let x = Markov.Matrix.solve m b in
      let r = Markov.Matrix.mul_vec m x in
      Array.for_all2 (fun ri bi -> Float.abs (ri -. bi) < 1e-8) r b)

(* ------------------------------------------------------------------ *)
(* Ctmc                                                                *)
(* ------------------------------------------------------------------ *)

let two_state rho =
  (* Up/down machine: availability 1/(1+rho). *)
  let c = Markov.Ctmc.create 2 in
  Markov.Ctmc.add_rate c ~src:0 ~dst:1 rho;
  Markov.Ctmc.add_rate c ~src:1 ~dst:0 1.0;
  c

let test_ctmc_two_state () =
  let pi = Markov.Ctmc.steady_state (two_state 0.25) in
  check_close "up probability" (1.0 /. 1.25) pi.(0);
  check_close "down probability" (0.25 /. 1.25) pi.(1)

let test_ctmc_sums_to_one () =
  let pi = Markov.Ctmc.steady_state (two_state 3.0) in
  check_close "normalised" 1.0 (Array.fold_left ( +. ) 0.0 pi)

let test_ctmc_generator_rows_sum_zero () =
  let q = Markov.Ctmc.generator (two_state 0.5) in
  for i = 0 to 1 do
    let sum = ref 0.0 in
    for j = 0 to 1 do
      sum := !sum +. Markov.Matrix.get q i j
    done;
    check_close "row sums to zero" 0.0 !sum
  done

let test_ctmc_balance () =
  (* pi Q = 0 at the solution. *)
  let c = Markov.Chains.ac_chain ~n:3 ~rho:0.3 in
  let pi = Markov.Ctmc.steady_state c in
  let q = Markov.Ctmc.generator c in
  let qt = Markov.Matrix.transpose q in
  let residual = Markov.Matrix.mul_vec qt pi in
  Array.iter (fun r -> if Float.abs r > 1e-9 then Alcotest.failf "balance violated: %g" r) residual

let test_ctmc_expectations () =
  let c = two_state 1.0 in
  check_close "stationary expectation"
    0.5
    (Markov.Ctmc.stationary_expectation c (fun s -> if s = 0 then 1.0 else 0.0));
  check_close "conditional expectation" 7.0
    (Markov.Ctmc.conditional_expectation c ~pred:(fun s -> s = 0) ~value:(fun _ -> 7.0))

let test_ctmc_rejects_bad_rates () =
  let c = Markov.Ctmc.create 2 in
  Alcotest.check_raises "self loop" (Invalid_argument "Ctmc.add_rate: self-loop") (fun () ->
      Markov.Ctmc.add_rate c ~src:0 ~dst:0 1.0);
  Alcotest.check_raises "non-positive rate" (Invalid_argument "Ctmc.add_rate: rate must be positive")
    (fun () -> Markov.Ctmc.add_rate c ~src:0 ~dst:1 0.0)

(* ------------------------------------------------------------------ *)
(* Chains: cross-checks against the paper's closed forms               *)
(* ------------------------------------------------------------------ *)

let rhos = [ 0.01; 0.05; 0.1; 0.2; 0.5; 1.0 ]

let test_voting_chain_binomial () =
  (* Sites are independent: P(k up) is binomial with p = 1/(1+rho). *)
  List.iter
    (fun rho ->
      let n = 5 in
      let pi = Markov.Chains.voting_state_probabilities ~n ~rho in
      for k = 0 to n do
        let expected = Analysis.Voting_model.binomial n k *. (rho ** float_of_int (n - k)) /. ((1.0 +. rho) ** float_of_int n) in
        check_close ~tol:1e-9 (Printf.sprintf "P(%d up) rho=%g" k rho) expected pi.(k)
      done)
    rhos

let test_ac_chain_matches_eq2_3_4 () =
  List.iter
    (fun rho ->
      List.iter
        (fun n ->
          match Analysis.Ac_model.availability_closed ~n ~rho with
          | Some closed ->
              check_close ~tol:1e-9
                (Printf.sprintf "A_A(%d) rho=%g" n rho)
                closed
                (Markov.Chains.ac_availability ~n ~rho)
          | None -> Alcotest.fail "closed form missing")
        [ 2; 3; 4 ])
    rhos

let test_nac_chain_matches_closed_form () =
  List.iter
    (fun rho ->
      List.iter
        (fun n ->
          check_close ~tol:1e-9
            (Printf.sprintf "A_NA(%d) rho=%g" n rho)
            (Analysis.Nac_model.availability ~n ~rho)
            (Markov.Chains.nac_availability ~n ~rho))
        [ 2; 3; 4; 5; 6 ])
    rhos

let test_nac2_equals_voting3 () =
  List.iter
    (fun rho ->
      check_close ~tol:1e-9
        (Printf.sprintf "A_NA(2)=A_V(3) rho=%g" rho)
        (Markov.Chains.voting_availability ~n:3 ~rho)
        (Markov.Chains.nac_availability ~n:2 ~rho))
    rhos

let test_voting_even_equals_odd () =
  List.iter
    (fun rho ->
      List.iter
        (fun k ->
          check_close ~tol:1e-9
            (Printf.sprintf "A_V(%d)=A_V(%d) rho=%g" (2 * k) ((2 * k) - 1) rho)
            (Markov.Chains.voting_availability ~n:((2 * k) - 1) ~rho)
            (Markov.Chains.voting_availability ~n:(2 * k) ~rho))
        [ 1; 2; 3; 4 ])
    rhos

let test_ac_dominates_nac () =
  (* Standard AC recovers earlier after total failures, so its availability
     is never below naive AC's. *)
  List.iter
    (fun rho ->
      List.iter
        (fun n ->
          let ac = Markov.Chains.ac_availability ~n ~rho in
          let nac = Markov.Chains.nac_availability ~n ~rho in
          if ac +. 1e-12 < nac then Alcotest.failf "AC (%g) < NAC (%g) at n=%d rho=%g" ac nac n rho)
        [ 2; 3; 4; 5 ])
    rhos

let test_participation_formula () =
  List.iter
    (fun rho ->
      List.iter
        (fun n ->
          check_close ~tol:1e-9
            (Printf.sprintf "U_V(%d) rho=%g" n rho)
            (Analysis.Voting_model.participation ~n ~rho)
            (Markov.Chains.voting_participation ~n ~rho))
        [ 2; 3; 5; 8 ])
    rhos

let test_participation_approx () =
  (* All three participations agree to O(rho^2). *)
  let rho = 0.01 in
  let n = 5 in
  let expected = float_of_int n *. (1.0 -. rho) in
  List.iter
    (fun (label, u) -> check_close ~tol:(5.0 *. rho *. rho *. float_of_int n) label expected u)
    [
      ("voting", Markov.Chains.voting_participation ~n ~rho);
      ("ac", Markov.Chains.ac_participation ~n ~rho);
      ("nac", Markov.Chains.nac_participation ~n ~rho);
    ]

let test_availability_monotone_in_rho () =
  let decreasing f =
    let rec go prev = function
      | [] -> true
      | rho :: rest ->
          let a = f rho in
          a <= prev +. 1e-12 && go a rest
    in
    go 1.0 rhos
  in
  Alcotest.(check bool) "voting decreasing" true
    (decreasing (fun rho -> Markov.Chains.voting_availability ~n:5 ~rho));
  Alcotest.(check bool) "ac decreasing" true
    (decreasing (fun rho -> Markov.Chains.ac_availability ~n:3 ~rho));
  Alcotest.(check bool) "nac decreasing" true
    (decreasing (fun rho -> Markov.Chains.nac_availability ~n:3 ~rho))

let test_n1_degenerates () =
  (* One copy: every scheme is just the site availability. *)
  let rho = 0.2 in
  let expected = 1.0 /. (1.0 +. rho) in
  check_close "voting n=1" expected (Markov.Chains.voting_availability ~n:1 ~rho);
  check_close "ac n=1" expected (Markov.Chains.ac_availability ~n:1 ~rho);
  check_close "nac n=1" expected (Markov.Chains.nac_availability ~n:1 ~rho)

(* ------------------------------------------------------------------ *)
(* Transient analysis and MTTF                                         *)
(* ------------------------------------------------------------------ *)

let up_then_down rho =
  (* start surely up *)
  let chain = two_state rho in
  let initial = [| 1.0; 0.0 |] in
  (chain, initial)

let test_transient_t0_is_initial () =
  let chain, initial = up_then_down 0.5 in
  let p = Markov.Transient.probability_at chain ~initial ~t:0.0 in
  Alcotest.(check (array (float 1e-12))) "t=0" initial p

let test_transient_two_state_analytic () =
  (* p_up(t) = 1/(1+rho) + rho/(1+rho) e^{-(1+rho)t}, starting up. *)
  let rho = 0.4 in
  let chain, initial = up_then_down rho in
  List.iter
    (fun t ->
      let expected = (1.0 /. (1.0 +. rho)) +. (rho /. (1.0 +. rho) *. exp (-.(1.0 +. rho) *. t)) in
      let p = Markov.Transient.probability_at chain ~initial ~t in
      check_close ~tol:1e-9 (Printf.sprintf "p_up(%g)" t) expected p.(0))
    [ 0.1; 0.5; 1.0; 3.0; 10.0; 100.0 ]

let test_transient_converges_to_steady_state () =
  (* A = lim p(t): the paper's availability definition, checked directly
     on the AC chain. *)
  let chain = Markov.Chains.ac_chain ~n:3 ~rho:0.2 in
  let n = Markov.Ctmc.n_states chain in
  let initial = Array.init n (fun s -> if s = 2 then 1.0 else 0.0) (* S_3: all up *) in
  let operational s = s < 3 in
  let at_t = Markov.Transient.availability_at chain ~initial ~operational ~t:200.0 in
  let steady = Markov.Chains.ac_availability ~n:3 ~rho:0.2 in
  check_close ~tol:1e-9 "A = lim p(t)" steady at_t

let test_transient_mass_conserved () =
  let chain = Markov.Chains.nac_chain ~n:4 ~rho:0.3 in
  let n = Markov.Ctmc.n_states chain in
  let initial = Array.init n (fun s -> if s = 3 then 1.0 else 0.0) in
  List.iter
    (fun t ->
      let p = Markov.Transient.probability_at chain ~initial ~t in
      check_close ~tol:1e-9 "mass 1" 1.0 (Array.fold_left ( +. ) 0.0 p);
      Array.iter (fun x -> if x < -1e-12 then Alcotest.fail "negative probability") p)
    [ 0.3; 2.0; 50.0 ]

let test_reliability_properties () =
  let chain = Markov.Chains.ac_chain ~n:2 ~rho:0.3 in
  let initial = [| 0.0; 1.0; 0.0; 0.0 |] (* S_2 *) in
  let operational s = s < 2 in
  check_close ~tol:1e-9 "R(0) = 1" 1.0
    (Markov.Transient.reliability_at chain ~initial ~operational ~t:0.0);
  let r1 = Markov.Transient.reliability_at chain ~initial ~operational ~t:1.0 in
  let r5 = Markov.Transient.reliability_at chain ~initial ~operational ~t:5.0 in
  Alcotest.(check bool) "R decreasing" true (r5 < r1 && r1 < 1.0);
  let a5 = Markov.Transient.availability_at chain ~initial ~operational ~t:5.0 in
  Alcotest.(check bool) "R(t) <= A(t)" true (r5 <= a5 +. 1e-12)

let test_mttf_two_state () =
  (* From up, time to failure is exponential with rate lambda: MTTF = 1/rho. *)
  let rho = 0.25 in
  let chain, initial = up_then_down rho in
  check_close ~tol:1e-9 "MTTF = 1/lambda" (1.0 /. rho)
    (Markov.Transient.mean_time_to_failure chain ~initial ~operational:(fun s -> s = 0))

let test_mttf_equals_reliability_integral () =
  (* MTTF = integral of R(t): cross-check the linear solve against
     numerical quadrature of the uniformization. *)
  let chain = Markov.Chains.ac_chain ~n:2 ~rho:0.5 in
  let initial = [| 0.0; 1.0; 0.0; 0.0 |] in
  let operational s = s < 2 in
  let mttf = Markov.Transient.mean_time_to_failure chain ~initial ~operational in
  let dt = 0.02 in
  let horizon = 60.0 in
  let acc = ref 0.0 in
  let steps = int_of_float (horizon /. dt) in
  for i = 0 to steps - 1 do
    let t = (float_of_int i +. 0.5) *. dt in
    acc := !acc +. (dt *. Markov.Transient.reliability_at chain ~initial ~operational ~t)
  done;
  check_close ~tol:0.01 "MTTF = integral R" mttf !acc

let test_mttf_ac_exceeds_voting () =
  (* Same 3 sites: voting dies when the second site falls, AC only at
     total failure — its mission time is much longer. *)
  let rho = 0.1 in
  let v_chain = Markov.Chains.voting_chain ~n:3 ~rho in
  let v_initial = [| 0.0; 0.0; 0.0; 1.0 |] (* 3 up *) in
  let v_mttf =
    Markov.Transient.mean_time_to_failure v_chain ~initial:v_initial ~operational:(fun k -> 2 * k > 3)
  in
  let a_chain = Markov.Chains.ac_chain ~n:3 ~rho in
  let a_initial = Array.init 6 (fun s -> if s = 2 then 1.0 else 0.0) in
  let a_mttf =
    Markov.Transient.mean_time_to_failure a_chain ~initial:a_initial ~operational:(fun s -> s < 3)
  in
  Alcotest.(check bool)
    (Printf.sprintf "AC MTTF %.1f > voting MTTF %.1f" a_mttf v_mttf)
    true (a_mttf > 2.0 *. v_mttf)

let test_mttf_rejects_bad_initial () =
  let chain = Markov.Chains.voting_chain ~n:3 ~rho:0.1 in
  Alcotest.check_raises "mass on failed states"
    (Invalid_argument "Transient.mean_time_to_failure: initial mass on non-operational states")
    (fun () ->
      ignore
        (Markov.Transient.mean_time_to_failure chain ~initial:[| 1.0; 0.0; 0.0; 0.0 |]
           ~operational:(fun k -> 2 * k > 3)))

let prop_chain_probabilities_valid =
  QCheck.Test.make ~name:"chain distributions are simplex points" ~count:100
    QCheck.(pair (int_range 1 6) (float_range 0.001 2.0))
    (fun (n, rho) ->
      let check pi =
        Array.for_all (fun p -> p >= -1e-12 && p <= 1.0 +. 1e-9) pi
        && Float.abs (Array.fold_left ( +. ) 0.0 pi -. 1.0) < 1e-9
      in
      check (Markov.Chains.ac_state_probabilities ~n ~rho)
      && check (Markov.Chains.nac_state_probabilities ~n ~rho)
      && check (Markov.Chains.voting_state_probabilities ~n ~rho))

let () =
  Alcotest.run "markov"
    [
      ( "matrix",
        [
          Alcotest.test_case "get/set/add" `Quick test_matrix_get_set;
          Alcotest.test_case "transpose" `Quick test_matrix_transpose;
          Alcotest.test_case "mul_vec" `Quick test_matrix_mul_vec;
          Alcotest.test_case "solve identity" `Quick test_matrix_solve_identity;
          Alcotest.test_case "solve with pivoting" `Quick test_matrix_solve_general;
          Alcotest.test_case "singular detected" `Quick test_matrix_solve_singular;
          Alcotest.test_case "solve preserves input" `Quick test_matrix_solve_does_not_mutate;
          QCheck_alcotest.to_alcotest prop_solve_residual;
        ] );
      ( "ctmc",
        [
          Alcotest.test_case "two-state machine" `Quick test_ctmc_two_state;
          Alcotest.test_case "normalisation" `Quick test_ctmc_sums_to_one;
          Alcotest.test_case "generator rows" `Quick test_ctmc_generator_rows_sum_zero;
          Alcotest.test_case "global balance" `Quick test_ctmc_balance;
          Alcotest.test_case "expectations" `Quick test_ctmc_expectations;
          Alcotest.test_case "bad rates rejected" `Quick test_ctmc_rejects_bad_rates;
        ] );
      ( "chains",
        [
          Alcotest.test_case "voting chain is binomial" `Quick test_voting_chain_binomial;
          Alcotest.test_case "AC chain matches eqs (2)-(4)" `Quick test_ac_chain_matches_eq2_3_4;
          Alcotest.test_case "NAC chain matches B(n;rho) form" `Quick test_nac_chain_matches_closed_form;
          Alcotest.test_case "A_NA(2) = A_V(3)" `Quick test_nac2_equals_voting3;
          Alcotest.test_case "A_V(2k) = A_V(2k-1)" `Quick test_voting_even_equals_odd;
          Alcotest.test_case "AC >= NAC" `Quick test_ac_dominates_nac;
          Alcotest.test_case "U_V closed form" `Quick test_participation_formula;
          Alcotest.test_case "participation ~ n(1-rho)" `Quick test_participation_approx;
          Alcotest.test_case "availability decreases in rho" `Quick test_availability_monotone_in_rho;
          Alcotest.test_case "n=1 degenerates" `Quick test_n1_degenerates;
          QCheck_alcotest.to_alcotest prop_chain_probabilities_valid;
        ] );
      ( "transient",
        [
          Alcotest.test_case "t=0 is the initial distribution" `Quick test_transient_t0_is_initial;
          Alcotest.test_case "two-state analytic p(t)" `Quick test_transient_two_state_analytic;
          Alcotest.test_case "A = lim p(t)" `Quick test_transient_converges_to_steady_state;
          Alcotest.test_case "mass conserved" `Quick test_transient_mass_conserved;
          Alcotest.test_case "reliability properties" `Quick test_reliability_properties;
          Alcotest.test_case "MTTF two-state" `Quick test_mttf_two_state;
          Alcotest.test_case "MTTF = integral of R" `Slow test_mttf_equals_reliability_integral;
          Alcotest.test_case "AC MTTF beats voting" `Quick test_mttf_ac_exceeds_voting;
          Alcotest.test_case "MTTF input validation" `Quick test_mttf_rejects_bad_initial;
        ] );
    ]
