(** Packaged experiments: one call per measured point of Figures 9–12.

    These are the simulation counterparts of the analytic curves in
    [Analysis]; benches and the CLI call them to put measured points next
    to the model's. *)

type availability_sample = {
  scheme : Blockrep.Types.scheme;
  n_sites : int;
  rho : float;
  horizon : float;
  availability : float;  (** time-weighted, from the cluster monitor *)
  failures : int;
  repairs : int;
  truncated_outage : float option;
      (** elapsed duration of an outage still open at the horizon — absent
          from the monitor's completed outage-duration stats, so it must
          be reported or MTTR reads biased low *)
}

val measure_availability :
  scheme:Blockrep.Types.scheme ->
  n_sites:int ->
  rho:float ->
  ?horizon:float ->
  ?seed:int ->
  ?track_liveness:bool ->
  unit ->
  availability_sample
(** Run a cluster under Poisson failures (λ = ρ, μ = 1) for [horizon]
    virtual time units (default 50_000) and report the observed
    availability.  [track_liveness] defaults to [true] so the
    available-copy run matches the idealised chain of Figure 7 (see
    DESIGN.md); it is irrelevant to the other schemes. *)

type traffic_sample = {
  scheme : Blockrep.Types.scheme;
  n_sites : int;
  env : Net.Network.mode;
  reads_per_write : float;
  writes : int;
  reads : int;
  read_cost_measured : float;  (** transmissions per successful read *)
  write_cost_measured : float;  (** transmissions per successful write *)
  messages_per_write_group : float;
      (** [write_cost + reads_per_write * read_cost], measured — the
          dependent axis of Figures 11 and 12, directly comparable to
          [Analysis.Traffic_model.workload_cost] at the same ratio *)
  bytes_per_write_group : float;
      (** same, in payload bytes — the Section 5 remark that a size-based
          comparison is "similar, though slightly less pronounced" *)
  recovery_messages : int;
}

val measure_traffic :
  scheme:Blockrep.Types.scheme ->
  n_sites:int ->
  env:Net.Network.mode ->
  reads_per_write:float ->
  ?ops:int ->
  ?seed:int ->
  ?fault_profile:Net.Faults.profile ->
  unit ->
  traffic_sample
(** Failure-free closed-loop run of [ops] operations (default 2000) at the
    given read:write mix, counting high-level transmissions.
    [fault_profile] (default pristine, i.e. the paper's reliable network)
    injects per-link message faults; Section 5 accounting still charges
    every transmission at send time, so drops raise the measured cost per
    {e successful} operation. *)

type amortization_sample = {
  scheme : Blockrep.Types.scheme;
  n_sites : int;
  env : Net.Network.mode;
  batch : int;  (** blocks per group-commit batch *)
  groups : int;  (** batched writes issued *)
  blocks_committed : int;  (** [groups * batch] *)
  write_messages : int;  (** Write-operation transmissions charged *)
  write_bytes : int;
  messages_per_block : float;
  bytes_per_block : float;
  wall_clock_per_block : float;  (** host CPU seconds per committed block *)
}

val measure_batch_amortization :
  scheme:Blockrep.Types.scheme ->
  n_sites:int ->
  env:Net.Network.mode ->
  batch:int ->
  ?groups:int ->
  ?seed:int ->
  unit ->
  amortization_sample
(** Failure-free group-commit run: [groups] batches (default 100) of
    [batch] distinct blocks each, written through the driver stub's
    batched path, measuring Write transmissions, payload bytes and host
    time per committed block.  [batch = 1] takes the unbatched
    single-block path and is the baseline the larger batches amortize
    against; under voting in multicast a k-block batch costs one vote
    round and one update multicast in total, so messages per block fall
    roughly as 1/k while bytes per block stay nearly flat (the payloads
    still have to travel). *)

type repair_sample = {
  scheme : Blockrep.Types.scheme;
  n_sites : int;
  ops : int;
  bitrot_injected : int;  (** maskable latent faults that actually landed *)
  repaired_blocks : int;  (** quarantined copies healed from a peer *)
  scrub_replayed : int;  (** torn applies replayed from the journal *)
  repair_messages : int;  (** Repair-operation transmissions *)
  repair_bytes : int;
  total_messages : int;  (** all transmissions in the run *)
  repair_overhead : float;  (** [repair_messages / total_messages] *)
}

val measure_repair_cost :
  scheme:Blockrep.Types.scheme ->
  n_sites:int ->
  ?ops:int ->
  ?rot_every:int ->
  ?seed:int ->
  unit ->
  repair_sample
(** Closed-loop run of [ops] operations (default 400) at a 2:1 read:write
    mix with a seeded bitrot injection every [rot_every] operations
    (default 10) on a rotating, always-maskable victim, followed by a full
    readback of every copy so nothing stays quarantined.  The Repair cells
    of the traffic matrix are exactly the peer read-repair cost of
    surviving the decay — zero in a fault-free run, so the overhead column
    is the marginal price of the storage fault model. *)

type campaign_sample = {
  scheme : Blockrep.Types.scheme;
  n_sites : int;
  n_blocks : int;  (** total logical block space across all groups *)
  groups : int;  (** virtual groups the space was partitioned into *)
  shards : int;  (** execution width requested *)
  lanes_used : int;  (** lanes actually used, [min shards groups] *)
  parallel : bool;  (** whether lanes ran on OCaml 5 domains *)
  issued : int;
  read_ok : int;
  read_failed : int;
  write_ok : int;
  write_failed : int;
  read_latency : Util.Stats.t;  (** merged across groups (Chan et al.) *)
  write_latency : Util.Stats.t;
  latency_hist : Util.Stats.Histogram.t;
      (** merged per-group latency histograms, bin-exact *)
  traffic : Net.Traffic.t;  (** cell-wise sum of every group's table *)
  total_messages : int;
  total_bytes : int;
  wall_clock : float;  (** host seconds for the sharded fold *)
}

val measure_campaign :
  scheme:Blockrep.Types.scheme ->
  n_sites:int ->
  n_blocks:int ->
  shards:int ->
  ?groups:int ->
  ?ops_per_group:int ->
  ?reads_per_write:float ->
  ?seed:int ->
  unit ->
  campaign_sample
(** Large-block-space campaign, sharded over domains.  The block space is
    partitioned into [groups] (default 16) virtual groups by stable hash
    of the block id; each group runs [ops_per_group] closed-loop
    operations (default 200) on its own cluster, seeded from the campaign
    [seed] and its group id.  [shards] sets only how many parallel lanes
    execute the groups — the partition, the per-group seeds and the
    group-id-order merge are all independent of it, so every field except
    [shards]/[lanes_used]/[parallel]/[wall_clock] is bit-identical across
    shard counts (and across the OCaml 4.14 sequential fallback). *)

type degradation_sample = {
  scheme : Blockrep.Types.scheme;
  n_sites : int;
  fault_profile : Net.Faults.profile;
  ops : int;
  completed : int;  (** operations that succeeded through the device *)
  failed : int;  (** operations the device finally refused *)
  retries : int;
  recovered : int;
  timeouts : int;
  gave_up : int;
  faults_injected : int;
}

val measure_degradation :
  scheme:Blockrep.Types.scheme ->
  n_sites:int ->
  fault_profile:Net.Faults.profile ->
  ?reads_per_write:float ->
  ?ops:int ->
  ?seed:int ->
  unit ->
  degradation_sample
(** Drive [ops] operations (default 200) through a {!Blockrep.Reliable_device}
    over a lossy network and report how the bounded-retry layer coped — the
    simulation counterpart of the robustness question Sections 4–5 leave
    open by assuming reliable delivery. *)

type brownout_sample = {
  scheme : Blockrep.Types.scheme;
  n_sites : int;
  offered_rate : float;  (** Poisson arrival rate, ops per virtual second *)
  robustness_on : bool;
  horizon : float;  (** arrival window length *)
  issued : int;
  succeeded : int;
  timeouts : int;  (** deadline expiries ([Timed_out]) *)
  gave_up : int;  (** other terminal failures *)
  rejected : int;  (** [Overloaded] from full site entry queues *)
  shed : int;  (** refused at the device admission gate *)
  goodput : float;  (** successful operations per virtual second *)
  latency_p50 : float;  (** successful-operation response time quantiles *)
  latency_p99 : float;
  hedged : int;
  hedge_wins : int;
  breaker_trips : int;
  messages_shed : int;
  conserved : bool;
      (** counter conservation held after the drain:
          [issued = succeeded + timeouts + gave_up + rejected + shed]
          with nothing left in flight *)
}

val saturation_rate : unit -> float
(** Reference saturation arrival rate of one site under the default
    service model (reciprocal mean client admission cost) — size brown-out
    offered loads as multiples of this. *)

val measure_brownout :
  scheme:Blockrep.Types.scheme ->
  n_sites:int ->
  offered_rate:float ->
  robustness:bool ->
  ?slow:int * float ->
  ?reads_per_write:float ->
  ?horizon:float ->
  ?seed:int ->
  unit ->
  brownout_sample
(** Open-loop brown-out: Poisson arrivals at [offered_rate] hit the async
    device path for [horizon] virtual seconds (default 400) with every
    site behind {!Net.Service_model.default}, then the system drains.
    [robustness] toggles the whole client-side stack (deadlines at twice
    the op budget, hedged reads with full-queue spillover, circuit
    breakers, admission control at 96 in-flight ops)
    against {!Blockrep.Robustness.off}; the arrival stream is identical
    either way.  [slow] optionally makes one site gray-slow for the whole
    run, e.g. [(1, 10.0)].  Past saturation the robustness-on flavour
    sheds and deadline-fails work fast, keeping goodput and tail latency
    of the survivors; the off flavour lets queues stall everything. *)
