type availability_sample = {
  scheme : Blockrep.Types.scheme;
  n_sites : int;
  rho : float;
  horizon : float;
  availability : float;
  failures : int;
  repairs : int;
  truncated_outage : float option;
}

let measure_availability ~scheme ~n_sites ~rho ?(horizon = 50_000.0) ?(seed = 7) ?(track_liveness = true)
    () =
  if rho < 0.0 then invalid_arg "Experiment.measure_availability: negative rho";
  let config =
    Blockrep.Config.make_exn ~scheme ~n_sites ~n_blocks:4
      ~latency:(Util.Dist.Constant 0.001)
        (* Latency and timeouts far below the mean repair time (1.0), so
           recovery handshakes are effectively instantaneous next to the
           failure process — the regime the chains assume. *)
      ~track_liveness ~seed ()
  in
  let cluster = Blockrep.Cluster.create config in
  let rho_eff = if rho <= 0.0 then 1e-9 else rho in
  let gen = Failure_gen.attach cluster ~rng:(Util.Prng.create (seed + 1)) ~lambda:rho_eff ~mu:1.0 in
  Blockrep.Cluster.run_until cluster horizon;
  Failure_gen.stop gen;
  let monitor = Blockrep.Cluster.monitor cluster in
  {
    scheme;
    n_sites;
    rho;
    horizon;
    availability = Blockrep.Availability_monitor.availability monitor;
    failures = Failure_gen.failures_injected gen;
    repairs = Failure_gen.repairs_injected gen;
    (* An outage still open at the horizon is excluded from the completed
       outage-duration stats; surfacing it keeps MTTR readers honest. *)
    truncated_outage = Blockrep.Availability_monitor.current_outage monitor;
  }

type traffic_sample = {
  scheme : Blockrep.Types.scheme;
  n_sites : int;
  env : Net.Network.mode;
  reads_per_write : float;
  writes : int;
  reads : int;
  read_cost_measured : float;
  write_cost_measured : float;
  messages_per_write_group : float;
  bytes_per_write_group : float;
  recovery_messages : int;
}

let measure_traffic ~scheme ~n_sites ~env ~reads_per_write ?(ops = 2000) ?(seed = 11)
    ?(fault_profile = Net.Faults.pristine) () =
  let config =
    Blockrep.Config.make_exn ~scheme ~n_sites ~n_blocks:32 ~net_mode:env ~seed ~fault_profile ()
  in
  let cluster = Blockrep.Cluster.create config in
  let gen =
    Access_gen.create ~rng:(Util.Prng.create (seed + 1)) ~n_blocks:32 ~reads_per_write ()
  in
  let results = Runner.run_closed_loop cluster gen ~site:0 ~ops in
  let traffic = Blockrep.Cluster.traffic cluster in
  let writes = results.Runner.write_ok in
  let reads = results.Runner.read_ok in
  let per count value = if count = 0 then 0.0 else float_of_int value /. float_of_int count in
  let read_cost_measured = per reads (Net.Traffic.by_operation traffic Net.Message.Read) in
  let write_cost_measured = per writes (Net.Traffic.by_operation traffic Net.Message.Write) in
  let read_bytes = per reads (Net.Traffic.bytes_by_operation traffic Net.Message.Read) in
  let write_bytes = per writes (Net.Traffic.bytes_by_operation traffic Net.Message.Write) in
  {
    scheme;
    n_sites;
    env;
    reads_per_write;
    writes;
    reads;
    read_cost_measured;
    write_cost_measured;
    messages_per_write_group = write_cost_measured +. (reads_per_write *. read_cost_measured);
    bytes_per_write_group = write_bytes +. (reads_per_write *. read_bytes);
    recovery_messages = Net.Traffic.by_operation traffic Net.Message.Recovery;
  }

type amortization_sample = {
  scheme : Blockrep.Types.scheme;
  n_sites : int;
  env : Net.Network.mode;
  batch : int;
  groups : int;
  blocks_committed : int;
  write_messages : int;
  write_bytes : int;
  messages_per_block : float;
  bytes_per_block : float;
  wall_clock_per_block : float;
}

(* Group-commit amortization: push [groups] batches of [batch] distinct
   blocks through the driver stub and charge the Write-operation traffic
   to the blocks committed.  batch = 1 goes down the unbatched path, so
   the batch-1 row doubles as the historical baseline. *)
let measure_batch_amortization ~scheme ~n_sites ~env ~batch ?(groups = 100) ?(seed = 31) () =
  if batch <= 0 then invalid_arg "Experiment.measure_batch_amortization: batch must be positive";
  let n_blocks = max 64 batch in
  let config = Blockrep.Config.make_exn ~scheme ~n_sites ~n_blocks ~net_mode:env ~seed () in
  let device = Blockrep.Reliable_device.of_config config in
  let stub = Blockrep.Reliable_device.stub device in
  let traffic = Blockrep.Cluster.traffic (Blockrep.Reliable_device.cluster device) in
  let msgs0 = Net.Traffic.by_operation traffic Net.Message.Write in
  let bytes0 = Net.Traffic.bytes_by_operation traffic Net.Message.Write in
  let t0 = Util.Clock.now () in
  for g = 0 to groups - 1 do
    let base = g * batch mod n_blocks in
    let writes =
      List.init batch (fun i ->
          ((base + i) mod n_blocks, Blockdev.Block.of_string (Printf.sprintf "g%d.%d" g i)))
    in
    ignore (Blockrep.Driver_stub.write_blocks stub writes : Blockrep.Types.batch_write_result)
  done;
  let elapsed = Util.Clock.elapsed_s t0 in
  let blocks = groups * batch in
  let write_messages = Net.Traffic.by_operation traffic Net.Message.Write - msgs0 in
  let write_bytes = Net.Traffic.bytes_by_operation traffic Net.Message.Write - bytes0 in
  {
    scheme;
    n_sites;
    env;
    batch;
    groups;
    blocks_committed = blocks;
    write_messages;
    write_bytes;
    messages_per_block = float_of_int write_messages /. float_of_int blocks;
    bytes_per_block = float_of_int write_bytes /. float_of_int blocks;
    wall_clock_per_block = elapsed /. float_of_int blocks;
  }

type repair_sample = {
  scheme : Blockrep.Types.scheme;
  n_sites : int;
  ops : int;
  bitrot_injected : int;
  repaired_blocks : int;
  scrub_replayed : int;
  repair_messages : int;
  repair_bytes : int;
  total_messages : int;
  repair_overhead : float;
}

(* Scrub/repair cost: run a closed-loop workload while latent bitrot lands
   on rotating replicas, then read every block back from every site so any
   copy still quarantined gets healed.  The healing traffic is exactly the
   Repair-operation cells of the traffic matrix (a category invented for
   this purpose — zero in any fault-free run), so the overhead is directly
   the paper-style message count of defending against media decay. *)
let measure_repair_cost ~scheme ~n_sites ?(ops = 400) ?(rot_every = 10) ?(seed = 17) () =
  if rot_every <= 0 then invalid_arg "Experiment.measure_repair_cost: rot_every must be positive";
  let n_blocks = 16 in
  let config = Blockrep.Config.make_exn ~scheme ~n_sites ~n_blocks ~seed () in
  let cluster = Blockrep.Cluster.create config in
  let gen =
    Access_gen.create ~rng:(Util.Prng.create (seed + 1)) ~n_blocks ~reads_per_write:2.0 ()
  in
  let rot_rng = Util.Prng.create (seed lxor 0x726f74) in
  let try_rot () =
    (* Only maskable faults: the victim's copy must be verified and some
       other mounted site must hold a verified copy at least as new. *)
    let victim = Util.Prng.int rot_rng n_sites in
    let block = Util.Prng.int rot_rng n_blocks in
    let covered =
      Blockrep.Cluster.checksum_ok cluster ~site:victim ~block
      &&
      let v = Blockrep.Cluster.effective_version cluster ~site:victim ~block in
      let rec check j =
        j < n_sites
        && ((j <> victim
            && Blockrep.Cluster.checksum_ok cluster ~site:j ~block
            && Blockrep.Cluster.effective_version cluster ~site:j ~block >= v)
           || check (j + 1))
      in
      check 0
    in
    if covered then Blockrep.Cluster.inject_bitrot cluster ~site:victim ~block
  in
  for i = 1 to ops do
    let site = i mod n_sites in
    (match Access_gen.next gen with
    | Access_gen.Read block -> ignore (Blockrep.Cluster.read_sync cluster ~site ~block)
    | Access_gen.Write (block, data) ->
        ignore (Blockrep.Cluster.write_sync cluster ~site ~block data));
    if i mod rot_every = 0 then try_rot ()
  done;
  (* Heal the tail: probe every copy so nothing stays quarantined. *)
  for site = 0 to n_sites - 1 do
    for block = 0 to n_blocks - 1 do
      ignore (Blockrep.Cluster.read_sync cluster ~site ~block)
    done
  done;
  Blockrep.Cluster.settle cluster;
  let traffic = Blockrep.Cluster.traffic cluster in
  let counters = Blockrep.Cluster.storage_counters cluster in
  let repair_messages = Net.Traffic.by_operation traffic Net.Message.Repair in
  let total_messages = Net.Traffic.total traffic in
  {
    scheme;
    n_sites;
    ops;
    bitrot_injected = counters.Blockdev.Durable_store.bitrot_injected;
    repaired_blocks = counters.Blockdev.Durable_store.repaired_blocks;
    scrub_replayed = counters.Blockdev.Durable_store.scrub_replayed;
    repair_messages;
    repair_bytes = Net.Traffic.bytes_by_operation traffic Net.Message.Repair;
    total_messages;
    repair_overhead =
      (if total_messages = 0 then 0.0
       else float_of_int repair_messages /. float_of_int total_messages);
  }

type campaign_sample = {
  scheme : Blockrep.Types.scheme;
  n_sites : int;
  n_blocks : int;
  groups : int;
  shards : int;
  lanes_used : int;
  parallel : bool;
  issued : int;
  read_ok : int;
  read_failed : int;
  write_ok : int;
  write_failed : int;
  read_latency : Util.Stats.t;
  write_latency : Util.Stats.t;
  latency_hist : Util.Stats.Histogram.t;
  traffic : Net.Traffic.t;
  total_messages : int;
  total_bytes : int;
  wall_clock : float;
}

(* Latency histograms share one geometry so per-group histograms merge;
   closed-loop latencies are short vote round trips, well inside [0, 1)
   virtual seconds (out-of-range samples land in overflow, not a bin). *)
let campaign_hist () = Util.Stats.Histogram.create ~lo:0.0 ~hi:1.0 ~bins:100

(* One self-contained unit of a sharded campaign: group [g] simulates its
   slice of the block space on its own cluster, seeded from the campaign
   seed and the group id alone — never from the shard count.  Runs on
   whatever lane [Shard_engine] assigns it. *)
let campaign_group ~scheme ~n_sites ~reads_per_write ~seed ~ops g blocks =
  let hist = campaign_hist () in
  if blocks = 0 then (None, hist)
  else begin
    let group_seed = Sim.Shard_engine.lane_seed ~seed ~shard:g in
    let config = Blockrep.Config.make_exn ~scheme ~n_sites ~n_blocks:blocks ~seed:group_seed () in
    let cluster = Blockrep.Cluster.create config in
    let gen =
      Access_gen.create
        ~rng:(Util.Prng.create (group_seed + 1))
        ~n_blocks:blocks ~reads_per_write ()
    in
    let results =
      Runner.run_closed_loop
        ~observe:(fun _op latency -> Util.Stats.Histogram.add hist latency)
        cluster gen ~site:(g mod n_sites) ~ops
    in
    Blockrep.Cluster.settle cluster;
    (Some (results, Blockrep.Cluster.traffic cluster), hist)
  end

let measure_campaign ~scheme ~n_sites ~n_blocks ~shards ?(groups = 16) ?(ops_per_group = 200)
    ?(reads_per_write = 2.0) ?(seed = 41) () =
  if n_blocks <= 0 then invalid_arg "Experiment.measure_campaign: n_blocks must be positive";
  if groups <= 0 then invalid_arg "Experiment.measure_campaign: groups must be positive";
  if ops_per_group < 0 then invalid_arg "Experiment.measure_campaign: negative ops_per_group";
  (* Partition the block space into [groups] virtual groups by stable
     hash.  The partition depends only on (n_blocks, groups): [shards]
     below controls execution width alone, which is what makes
     [--shards n] bit-identical to [--shards 1]. *)
  let sizes = Array.make groups 0 in
  for b = 0 to n_blocks - 1 do
    let g = Sim.Shard_engine.shard_of_block ~shards:groups b in
    sizes.(g) <- sizes.(g) + 1
  done;
  (* Seal the histogram before it crosses the domain boundary: lanes
     capture an immutable list, never the mutable array. *)
  let group_sizes = Array.to_list sizes in
  let plan = Sim.Shard_engine.plan_lanes ~shards ~tasks:groups in
  let t0 = Util.Clock.now () in
  let per_group =
    Sim.Shard_engine.map_tasks ~shards ~tasks:groups (fun g ->
        campaign_group ~scheme ~n_sites ~reads_per_write ~seed ~ops:ops_per_group g
          (List.nth group_sizes g))
  in
  let wall_clock = Util.Clock.elapsed_s t0 in
  (* Deterministic merge, in group-id order (map_tasks already returns
     task order regardless of lane assignment). *)
  let traffic = Net.Traffic.create () in
  let issued = ref 0
  and read_ok = ref 0
  and read_failed = ref 0
  and write_ok = ref 0
  and write_failed = ref 0 in
  let read_latency = ref (Util.Stats.create ())
  and write_latency = ref (Util.Stats.create ())
  and latency_hist = ref (campaign_hist ()) in
  Array.iter
    (fun (outcome, hist) ->
      latency_hist := Util.Stats.Histogram.merge !latency_hist hist;
      match outcome with
      | None -> ()
      | Some (r, t) ->
          issued := !issued + r.Runner.issued;
          read_ok := !read_ok + r.Runner.read_ok;
          read_failed := !read_failed + r.Runner.read_failed;
          write_ok := !write_ok + r.Runner.write_ok;
          write_failed := !write_failed + r.Runner.write_failed;
          read_latency := Util.Stats.merge !read_latency r.Runner.read_latency;
          write_latency := Util.Stats.merge !write_latency r.Runner.write_latency;
          Net.Traffic.accumulate ~into:traffic t)
    per_group;
  {
    scheme;
    n_sites;
    n_blocks;
    groups;
    shards;
    lanes_used = plan.Sim.Shard_engine.lanes_used;
    parallel = plan.Sim.Shard_engine.parallel;
    issued = !issued;
    read_ok = !read_ok;
    read_failed = !read_failed;
    write_ok = !write_ok;
    write_failed = !write_failed;
    read_latency = !read_latency;
    write_latency = !write_latency;
    latency_hist = !latency_hist;
    traffic;
    total_messages = Net.Traffic.total traffic;
    total_bytes = Net.Traffic.total_bytes traffic;
    wall_clock;
  }

type degradation_sample = {
  scheme : Blockrep.Types.scheme;
  n_sites : int;
  fault_profile : Net.Faults.profile;
  ops : int;
  completed : int;
  failed : int;
  retries : int;
  recovered : int;
  timeouts : int;
  gave_up : int;
  faults_injected : int;
}

let measure_degradation ~scheme ~n_sites ~fault_profile ?(reads_per_write = 2.0) ?(ops = 200)
    ?(seed = 23) () =
  let config =
    Blockrep.Config.make_exn ~scheme ~n_sites ~n_blocks:16 ~fault_profile ~seed ()
  in
  let device = Blockrep.Reliable_device.of_config config in
  let gen = Access_gen.create ~rng:(Util.Prng.create (seed + 1)) ~n_blocks:16 ~reads_per_write () in
  let completed = ref 0 in
  let failed = ref 0 in
  for _ = 1 to ops do
    let ok =
      match Access_gen.next gen with
      | Access_gen.Read block -> Blockrep.Reliable_device.read_block device block <> None
      | Access_gen.Write (block, data) -> Blockrep.Reliable_device.write_block device block data
    in
    incr (if ok then completed else failed)
  done;
  let d = Blockrep.Reliable_device.degradation device in
  {
    scheme;
    n_sites;
    fault_profile;
    ops;
    completed = !completed;
    failed = !failed;
    retries = d.Blockrep.Reliable_device.retries;
    recovered = d.Blockrep.Reliable_device.recovered;
    timeouts = d.Blockrep.Reliable_device.timeouts;
    gave_up = d.Blockrep.Reliable_device.gave_up;
    faults_injected = d.Blockrep.Reliable_device.faults_injected;
  }

type brownout_sample = {
  scheme : Blockrep.Types.scheme;
  n_sites : int;
  offered_rate : float;
  robustness_on : bool;
  horizon : float;
  issued : int;
  succeeded : int;
  timeouts : int;
  gave_up : int;
  rejected : int;
  shed : int;
  goodput : float;
  latency_p50 : float;
  latency_p99 : float;
  hedged : int;
  hedge_wins : int;
  breaker_trips : int;
  messages_shed : int;
  conserved : bool;
}

let saturation_rate () = 1.0 /. Net.Service_model.mean_client_cost Net.Service_model.default

let brownout_robustness ~op_timeout =
  {
    Blockrep.Robustness.deadlines = true;
    op_budget = Some (2.0 *. op_timeout);
    hedge = Some { Blockrep.Robustness.quantile = 0.9; floor = 1.0 };
    breaker = Some { Blockrep.Robustness.threshold = 5; cooldown = 5.0 *. op_timeout };
    (* Looser than the 64-slot site queue on purpose: with hedge spillover a
       read shed at the home's full entry queue is served at an idle peer, so
       throttling ops before they reach the cluster would only waste that
       overflow capacity. *)
    admission = Some 96;
  }

(* Open-loop brown-out: Poisson arrivals at [offered_rate] ops per virtual
   second hit the async device path for [horizon] virtual seconds, with
   every site behind the default service model — so past the saturation
   rate the entry queues fill and something must give.  The robustness-on
   flavour fails ops fast (admission shed, deadline timeouts) and routes
   reads around slowness (hedges, breakers); the off flavour lets them
   queue and stall.  Goodput counts completed-successful operations per
   virtual second of the arrival window; latencies are successful-op
   response times. *)
let measure_brownout ~scheme ~n_sites ~offered_rate ~robustness ?slow
    ?(reads_per_write = 2.0) ?(horizon = 400.0) ?(seed = 29) () =
  if offered_rate <= 0.0 then invalid_arg "Experiment.measure_brownout: offered_rate must be positive";
  if horizon <= 0.0 then invalid_arg "Experiment.measure_brownout: horizon must be positive";
  let n_blocks = 16 in
  let config =
    Blockrep.Config.make_exn ~scheme ~n_sites ~n_blocks ~seed
      ~service:Net.Service_model.default
      ~robustness:
        (if robustness then brownout_robustness ~op_timeout:4.0 else Blockrep.Robustness.off)
      ()
  in
  let device = Blockrep.Reliable_device.of_config config in
  let cluster = Blockrep.Reliable_device.cluster device in
  let engine = Blockrep.Cluster.engine cluster in
  (match slow with
  | Some (site, factor) -> Blockrep.Cluster.set_rate_factor cluster site factor
  | None -> ());
  let gen =
    Access_gen.create ~rng:(Util.Prng.create (seed + 1)) ~n_blocks ~reads_per_write ()
  in
  let hist = Util.Stats.Histogram.create ~lo:0.0 ~hi:32.0 ~bins:256 in
  let issued = ref 0 in
  let record_latency start = Util.Stats.Histogram.add hist (Sim.Engine.now engine -. start) in
  let issue () =
    incr issued;
    let start = Sim.Engine.now engine in
    match Access_gen.next gen with
    | Access_gen.Read block ->
        Blockrep.Reliable_device.read_block_async device block (function
          | Ok _ -> record_latency start
          | Error _ -> ())
    | Access_gen.Write (block, data) ->
        Blockrep.Reliable_device.write_block_async device block data (function
          | Ok _ -> record_latency start
          | Error _ -> ())
  in
  (* Pre-schedule the whole Poisson arrival process so the client stream
     is identical whatever the cluster does with it. *)
  let arr_rng = Util.Prng.create (seed lxor 0x61727276) in
  let t = ref 0.0 in
  let exp_gap () = -.(1.0 /. offered_rate) *. log (Util.Prng.float_pos arr_rng) in
  t := !t +. exp_gap ();
  while !t <= horizon do
    ignore (Sim.Engine.schedule_at engine ~time:!t issue : Sim.Engine.handle);
    t := !t +. exp_gap ()
  done;
  Blockrep.Cluster.run_until cluster horizon;
  (* Drain: every in-flight operation settles (no site ever fails here). *)
  Blockrep.Cluster.settle cluster;
  let d = Blockrep.Reliable_device.degradation device in
  {
    scheme;
    n_sites;
    offered_rate;
    robustness_on = robustness;
    horizon;
    issued = !issued;
    succeeded = d.Blockrep.Reliable_device.succeeded;
    timeouts = d.Blockrep.Reliable_device.timeouts;
    gave_up = d.Blockrep.Reliable_device.gave_up;
    rejected = d.Blockrep.Reliable_device.rejected;
    shed = d.Blockrep.Reliable_device.shed;
    goodput = float_of_int d.Blockrep.Reliable_device.succeeded /. horizon;
    latency_p50 = Util.Stats.Histogram.quantile hist 0.5;
    latency_p99 = Util.Stats.Histogram.quantile hist 0.99;
    hedged = d.Blockrep.Reliable_device.hedged;
    hedge_wins = d.Blockrep.Reliable_device.hedge_wins;
    breaker_trips = d.Blockrep.Reliable_device.breaker_trips;
    messages_shed = d.Blockrep.Reliable_device.messages_shed;
    conserved =
      Blockrep.Reliable_device.degradation_conserved d
      && Blockrep.Reliable_device.in_flight device = 0
      && d.Blockrep.Reliable_device.requests = !issued;
  }
