type availability_sample = {
  scheme : Blockrep.Types.scheme;
  n_sites : int;
  rho : float;
  horizon : float;
  availability : float;
  failures : int;
  repairs : int;
}

let measure_availability ~scheme ~n_sites ~rho ?(horizon = 50_000.0) ?(seed = 7) ?(track_liveness = true)
    () =
  if rho < 0.0 then invalid_arg "Experiment.measure_availability: negative rho";
  let config =
    Blockrep.Config.make_exn ~scheme ~n_sites ~n_blocks:4
      ~latency:(Util.Dist.Constant 0.001)
        (* Latency and timeouts far below the mean repair time (1.0), so
           recovery handshakes are effectively instantaneous next to the
           failure process — the regime the chains assume. *)
      ~track_liveness ~seed ()
  in
  let cluster = Blockrep.Cluster.create config in
  let rho_eff = if rho <= 0.0 then 1e-9 else rho in
  let gen = Failure_gen.attach cluster ~rng:(Util.Prng.create (seed + 1)) ~lambda:rho_eff ~mu:1.0 in
  Blockrep.Cluster.run_until cluster horizon;
  Failure_gen.stop gen;
  {
    scheme;
    n_sites;
    rho;
    horizon;
    availability = Blockrep.Availability_monitor.availability (Blockrep.Cluster.monitor cluster);
    failures = Failure_gen.failures_injected gen;
    repairs = Failure_gen.repairs_injected gen;
  }

type traffic_sample = {
  scheme : Blockrep.Types.scheme;
  n_sites : int;
  env : Net.Network.mode;
  reads_per_write : float;
  writes : int;
  reads : int;
  read_cost_measured : float;
  write_cost_measured : float;
  messages_per_write_group : float;
  bytes_per_write_group : float;
  recovery_messages : int;
}

let measure_traffic ~scheme ~n_sites ~env ~reads_per_write ?(ops = 2000) ?(seed = 11)
    ?(fault_profile = Net.Faults.pristine) () =
  let config =
    Blockrep.Config.make_exn ~scheme ~n_sites ~n_blocks:32 ~net_mode:env ~seed ~fault_profile ()
  in
  let cluster = Blockrep.Cluster.create config in
  let gen =
    Access_gen.create ~rng:(Util.Prng.create (seed + 1)) ~n_blocks:32 ~reads_per_write ()
  in
  let results = Runner.run_closed_loop cluster gen ~site:0 ~ops in
  let traffic = Blockrep.Cluster.traffic cluster in
  let writes = results.Runner.write_ok in
  let reads = results.Runner.read_ok in
  let per count value = if count = 0 then 0.0 else float_of_int value /. float_of_int count in
  let read_cost_measured = per reads (Net.Traffic.by_operation traffic Net.Message.Read) in
  let write_cost_measured = per writes (Net.Traffic.by_operation traffic Net.Message.Write) in
  let read_bytes = per reads (Net.Traffic.bytes_by_operation traffic Net.Message.Read) in
  let write_bytes = per writes (Net.Traffic.bytes_by_operation traffic Net.Message.Write) in
  {
    scheme;
    n_sites;
    env;
    reads_per_write;
    writes;
    reads;
    read_cost_measured;
    write_cost_measured;
    messages_per_write_group = write_cost_measured +. (reads_per_write *. read_cost_measured);
    bytes_per_write_group = write_bytes +. (reads_per_write *. read_bytes);
    recovery_messages = Net.Traffic.by_operation traffic Net.Message.Recovery;
  }

type amortization_sample = {
  scheme : Blockrep.Types.scheme;
  n_sites : int;
  env : Net.Network.mode;
  batch : int;
  groups : int;
  blocks_committed : int;
  write_messages : int;
  write_bytes : int;
  messages_per_block : float;
  bytes_per_block : float;
  wall_clock_per_block : float;
}

(* Group-commit amortization: push [groups] batches of [batch] distinct
   blocks through the driver stub and charge the Write-operation traffic
   to the blocks committed.  batch = 1 goes down the unbatched path, so
   the batch-1 row doubles as the historical baseline. *)
let measure_batch_amortization ~scheme ~n_sites ~env ~batch ?(groups = 100) ?(seed = 31) () =
  if batch <= 0 then invalid_arg "Experiment.measure_batch_amortization: batch must be positive";
  let n_blocks = max 64 batch in
  let config = Blockrep.Config.make_exn ~scheme ~n_sites ~n_blocks ~net_mode:env ~seed () in
  let device = Blockrep.Reliable_device.of_config config in
  let stub = Blockrep.Reliable_device.stub device in
  let traffic = Blockrep.Cluster.traffic (Blockrep.Reliable_device.cluster device) in
  let msgs0 = Net.Traffic.by_operation traffic Net.Message.Write in
  let bytes0 = Net.Traffic.bytes_by_operation traffic Net.Message.Write in
  let t0 = Util.Clock.now () in
  for g = 0 to groups - 1 do
    let base = g * batch mod n_blocks in
    let writes =
      List.init batch (fun i ->
          ((base + i) mod n_blocks, Blockdev.Block.of_string (Printf.sprintf "g%d.%d" g i)))
    in
    ignore (Blockrep.Driver_stub.write_blocks stub writes : Blockrep.Types.batch_write_result)
  done;
  let elapsed = Util.Clock.elapsed_s t0 in
  let blocks = groups * batch in
  let write_messages = Net.Traffic.by_operation traffic Net.Message.Write - msgs0 in
  let write_bytes = Net.Traffic.bytes_by_operation traffic Net.Message.Write - bytes0 in
  {
    scheme;
    n_sites;
    env;
    batch;
    groups;
    blocks_committed = blocks;
    write_messages;
    write_bytes;
    messages_per_block = float_of_int write_messages /. float_of_int blocks;
    bytes_per_block = float_of_int write_bytes /. float_of_int blocks;
    wall_clock_per_block = elapsed /. float_of_int blocks;
  }

type repair_sample = {
  scheme : Blockrep.Types.scheme;
  n_sites : int;
  ops : int;
  bitrot_injected : int;
  repaired_blocks : int;
  scrub_replayed : int;
  repair_messages : int;
  repair_bytes : int;
  total_messages : int;
  repair_overhead : float;
}

(* Scrub/repair cost: run a closed-loop workload while latent bitrot lands
   on rotating replicas, then read every block back from every site so any
   copy still quarantined gets healed.  The healing traffic is exactly the
   Repair-operation cells of the traffic matrix (a category invented for
   this purpose — zero in any fault-free run), so the overhead is directly
   the paper-style message count of defending against media decay. *)
let measure_repair_cost ~scheme ~n_sites ?(ops = 400) ?(rot_every = 10) ?(seed = 17) () =
  if rot_every <= 0 then invalid_arg "Experiment.measure_repair_cost: rot_every must be positive";
  let n_blocks = 16 in
  let config = Blockrep.Config.make_exn ~scheme ~n_sites ~n_blocks ~seed () in
  let cluster = Blockrep.Cluster.create config in
  let gen =
    Access_gen.create ~rng:(Util.Prng.create (seed + 1)) ~n_blocks ~reads_per_write:2.0 ()
  in
  let rot_rng = Util.Prng.create (seed lxor 0x726f74) in
  let try_rot () =
    (* Only maskable faults: the victim's copy must be verified and some
       other mounted site must hold a verified copy at least as new. *)
    let victim = Util.Prng.int rot_rng n_sites in
    let block = Util.Prng.int rot_rng n_blocks in
    let covered =
      Blockrep.Cluster.checksum_ok cluster ~site:victim ~block
      &&
      let v = Blockrep.Cluster.effective_version cluster ~site:victim ~block in
      let rec check j =
        j < n_sites
        && ((j <> victim
            && Blockrep.Cluster.checksum_ok cluster ~site:j ~block
            && Blockrep.Cluster.effective_version cluster ~site:j ~block >= v)
           || check (j + 1))
      in
      check 0
    in
    if covered then Blockrep.Cluster.inject_bitrot cluster ~site:victim ~block
  in
  for i = 1 to ops do
    let site = i mod n_sites in
    (match Access_gen.next gen with
    | Access_gen.Read block -> ignore (Blockrep.Cluster.read_sync cluster ~site ~block)
    | Access_gen.Write (block, data) ->
        ignore (Blockrep.Cluster.write_sync cluster ~site ~block data));
    if i mod rot_every = 0 then try_rot ()
  done;
  (* Heal the tail: probe every copy so nothing stays quarantined. *)
  for site = 0 to n_sites - 1 do
    for block = 0 to n_blocks - 1 do
      ignore (Blockrep.Cluster.read_sync cluster ~site ~block)
    done
  done;
  Blockrep.Cluster.settle cluster;
  let traffic = Blockrep.Cluster.traffic cluster in
  let counters = Blockrep.Cluster.storage_counters cluster in
  let repair_messages = Net.Traffic.by_operation traffic Net.Message.Repair in
  let total_messages = Net.Traffic.total traffic in
  {
    scheme;
    n_sites;
    ops;
    bitrot_injected = counters.Blockdev.Durable_store.bitrot_injected;
    repaired_blocks = counters.Blockdev.Durable_store.repaired_blocks;
    scrub_replayed = counters.Blockdev.Durable_store.scrub_replayed;
    repair_messages;
    repair_bytes = Net.Traffic.bytes_by_operation traffic Net.Message.Repair;
    total_messages;
    repair_overhead =
      (if total_messages = 0 then 0.0
       else float_of_int repair_messages /. float_of_int total_messages);
  }

type degradation_sample = {
  scheme : Blockrep.Types.scheme;
  n_sites : int;
  fault_profile : Net.Faults.profile;
  ops : int;
  completed : int;
  failed : int;
  retries : int;
  recovered : int;
  timeouts : int;
  gave_up : int;
  faults_injected : int;
}

let measure_degradation ~scheme ~n_sites ~fault_profile ?(reads_per_write = 2.0) ?(ops = 200)
    ?(seed = 23) () =
  let config =
    Blockrep.Config.make_exn ~scheme ~n_sites ~n_blocks:16 ~fault_profile ~seed ()
  in
  let device = Blockrep.Reliable_device.of_config config in
  let gen = Access_gen.create ~rng:(Util.Prng.create (seed + 1)) ~n_blocks:16 ~reads_per_write () in
  let completed = ref 0 in
  let failed = ref 0 in
  for _ = 1 to ops do
    let ok =
      match Access_gen.next gen with
      | Access_gen.Read block -> Blockrep.Reliable_device.read_block device block <> None
      | Access_gen.Write (block, data) -> Blockrep.Reliable_device.write_block device block data
    in
    incr (if ok then completed else failed)
  done;
  let d = Blockrep.Reliable_device.degradation device in
  {
    scheme;
    n_sites;
    fault_profile;
    ops;
    completed = !completed;
    failed = !failed;
    retries = d.Blockrep.Reliable_device.retries;
    recovered = d.Blockrep.Reliable_device.recovered;
    timeouts = d.Blockrep.Reliable_device.timeouts;
    gave_up = d.Blockrep.Reliable_device.gave_up;
    faults_injected = d.Blockrep.Reliable_device.faults_injected;
  }
