(** Drive workloads against a cluster and collect outcome statistics. *)

type results = {
  issued : int;
  read_ok : int;
  read_failed : int;
  write_ok : int;
  write_failed : int;
  span : float;  (** virtual time consumed by the run *)
  read_latency : Util.Stats.t;
      (** virtual-time latency of successful reads: 0 for the copy schemes'
          local reads, a vote round trip under voting *)
  write_latency : Util.Stats.t;
      (** successful writes: 0 for naive fire-and-forget, one round trip
          for AC acks and voting quorums *)
}

val ops_total : results -> int
val success_fraction : results -> float

val mean_read_latency : results -> float
(** [nan] when no read succeeded. *)

val mean_write_latency : results -> float

val run_closed_loop :
  ?observe:(Access_gen.op -> float -> unit) ->
  Blockrep.Cluster.t ->
  Access_gen.t ->
  site:int ->
  ops:int ->
  results
(** Issue [ops] operations one after another from [site], each waiting for
    the previous to settle (the driver-stub usage pattern).  Operations
    failing because the site is down are counted as failures and the run
    continues — with an attached failure generator the site may well be
    down for a while.  [observe] (default: nothing) is called with each
    {e successful} operation and its virtual-time latency, in completion
    order — sharded campaigns use it to fill per-group histograms. *)

val run_open_loop :
  Blockrep.Cluster.t ->
  Access_gen.t ->
  site:int ->
  rate:float ->
  horizon:float ->
  results
(** Schedule operation arrivals as a Poisson process of the given [rate]
    from time now until [now + horizon], then run the engine to the
    horizon.  Models clients that do not wait for each other. *)

val replay :
  Blockrep.Cluster.t -> Trace.entry list -> site:int -> results
(** Closed-loop replay of a saved trace. *)
