type op = Read of Blockdev.Block.id | Write of Blockdev.Block.id * Blockdev.Block.t

let op_block = function Read b -> b | Write (b, _) -> b
let is_read = function Read _ -> true | Write _ -> false

type locality = Uniform | Zipf of float | Sequential

type t = {
  rng : Util.Prng.t;
  n_blocks : int;
  read_fraction : float;
  locality : locality;
  payload_seed : string;
  zipf_cdf : float array option;
  mutable cursor : int;
  mutable generated : int;
  mutable reads : int;
  mutable writes : int;
}

let zipf_cdf n exponent =
  let weights = Array.init n (fun i -> 1.0 /. (float_of_int (i + 1) ** exponent)) in
  let total = Array.fold_left ( +. ) 0.0 weights in
  let acc = ref 0.0 in
  Array.map
    (fun w ->
      acc := !acc +. (w /. total);
      !acc)
    weights

let create ~rng ~n_blocks ~reads_per_write ?(locality = Uniform) ?(payload_seed = "blockrep") () =
  if n_blocks <= 0 then invalid_arg "Access_gen.create: need blocks";
  if reads_per_write < 0.0 then invalid_arg "Access_gen.create: negative read ratio";
  let read_fraction = reads_per_write /. (1.0 +. reads_per_write) in
  let zipf_cdf =
    match locality with
    | Zipf e when e <= 0.0 -> invalid_arg "Access_gen.create: zipf exponent must be positive"
    | Zipf e -> Some (zipf_cdf n_blocks e)
    | Uniform | Sequential -> None
  in
  {
    rng;
    n_blocks;
    read_fraction;
    locality;
    payload_seed;
    zipf_cdf;
    cursor = 0;
    generated = 0;
    reads = 0;
    writes = 0;
  }

let pick_block t =
  match t.locality with
  | Uniform -> Util.Prng.int t.rng t.n_blocks
  | Sequential ->
      let b = t.cursor in
      t.cursor <- (t.cursor + 1) mod t.n_blocks;
      b
  | Zipf _ -> (
      match t.zipf_cdf with
      | Some cdf ->
          let u = Util.Prng.float t.rng in
          let rec find i = if i >= Array.length cdf - 1 || cdf.(i) >= u then i else find (i + 1) in
          find 0
      | None ->
          ((assert false)
          [@lint.allow "partiality"
            "unreachable: the constructor materializes zipf_cdf whenever locality is Zipf"]))

let next t =
  t.generated <- t.generated + 1;
  let block = pick_block t in
  if Util.Prng.float t.rng < t.read_fraction then begin
    t.reads <- t.reads + 1;
    Read block
  end
  else begin
    t.writes <- t.writes + 1;
    let payload = Printf.sprintf "%s-%d-%d" t.payload_seed t.generated block in
    Write (block, Blockdev.Block.of_string payload)
  end

let generated t = t.generated
let reads_emitted t = t.reads
let writes_emitted t = t.writes

let take t n = List.init n (fun _ -> next t)
