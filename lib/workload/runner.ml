type results = {
  issued : int;
  read_ok : int;
  read_failed : int;
  write_ok : int;
  write_failed : int;
  span : float;
  read_latency : Util.Stats.t;
  write_latency : Util.Stats.t;
}

let ops_total r = r.read_ok + r.read_failed + r.write_ok + r.write_failed

let success_fraction r =
  let total = ops_total r in
  if total = 0 then nan else float_of_int (r.read_ok + r.write_ok) /. float_of_int total

let mean_read_latency r = Util.Stats.mean r.read_latency
let mean_write_latency r = Util.Stats.mean r.write_latency

type counters = {
  mutable issued : int;
  mutable read_ok : int;
  mutable read_failed : int;
  mutable write_ok : int;
  mutable write_failed : int;
  read_latency : Util.Stats.t;
  write_latency : Util.Stats.t;
}

let fresh_counters () =
  {
    issued = 0;
    read_ok = 0;
    read_failed = 0;
    write_ok = 0;
    write_failed = 0;
    read_latency = Util.Stats.create ();
    write_latency = Util.Stats.create ();
  }

let results_of c ~span =
  {
    issued = c.issued;
    read_ok = c.read_ok;
    read_failed = c.read_failed;
    write_ok = c.write_ok;
    write_failed = c.write_failed;
    span;
    read_latency = c.read_latency;
    write_latency = c.write_latency;
  }

(* Issue one operation asynchronously, accounting outcome and latency when
   its callback lands. *)
let issue_at ?(observe = fun (_ : Access_gen.op) (_ : float) -> ()) cluster c site op =
  let engine = Blockrep.Cluster.engine cluster in
  let started = Sim.Engine.now engine in
  let latency () = Sim.Engine.now engine -. started in
  c.issued <- c.issued + 1;
  match op with
  | Access_gen.Read block ->
      Blockrep.Cluster.read cluster ~site ~block (function
        | Ok _ ->
            c.read_ok <- c.read_ok + 1;
            let l = latency () in
            Util.Stats.add c.read_latency l;
            observe op l
        | Error _ -> c.read_failed <- c.read_failed + 1)
  | Access_gen.Write (block, data) ->
      Blockrep.Cluster.write cluster ~site ~block data (function
        | Ok _ ->
            c.write_ok <- c.write_ok + 1;
            let l = latency () in
            Util.Stats.add c.write_latency l;
            observe op l
        | Error _ -> c.write_failed <- c.write_failed + 1)

(* Synchronous issue: run the engine until this operation settles. *)
let completed c = c.read_ok + c.read_failed + c.write_ok + c.write_failed

let issue_sync ?observe cluster c site op =
  let engine = Blockrep.Cluster.engine cluster in
  let before = completed c in
  issue_at ?observe cluster c site op;
  while completed c = before && Sim.Engine.step engine do
    ()
  done

let run_closed_loop ?observe cluster gen ~site ~ops =
  let c = fresh_counters () in
  let start = Sim.Engine.now (Blockrep.Cluster.engine cluster) in
  for _ = 1 to ops do
    issue_sync ?observe cluster c site (Access_gen.next gen)
  done;
  results_of c ~span:(Sim.Engine.now (Blockrep.Cluster.engine cluster) -. start)

let run_open_loop cluster gen ~site ~rate ~horizon =
  if rate <= 0.0 then invalid_arg "Runner.run_open_loop: rate must be positive";
  if horizon <= 0.0 then invalid_arg "Runner.run_open_loop: horizon must be positive";
  let engine = Blockrep.Cluster.engine cluster in
  let rng = Util.Prng.create 0x0b5e55ed in
  let c = fresh_counters () in
  let start = Sim.Engine.now engine in
  let rec arm at =
    if at <= start +. horizon then
      ignore
        (Sim.Engine.schedule_at engine ~time:at (fun () ->
             issue_at cluster c site (Access_gen.next gen);
             arm (Sim.Engine.now engine +. Util.Dist.exponential ~rate rng))
          : Sim.Engine.handle)
  in
  arm (start +. Util.Dist.exponential ~rate rng);
  Blockrep.Cluster.run_until cluster (start +. horizon);
  results_of c ~span:horizon

let replay cluster entries ~site =
  let c = fresh_counters () in
  let start = Sim.Engine.now (Blockrep.Cluster.engine cluster) in
  List.iter
    (fun entry ->
      match Trace.to_ops [ entry ] with
      | [ op ] -> issue_sync cluster c site op
      | [] | _ :: _ :: _ -> invalid_arg "Runner.replay: a trace entry must map to exactly one op")
    entries;
  results_of c ~span:(Sim.Engine.now (Blockrep.Cluster.engine cluster) -. start)
