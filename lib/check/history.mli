(** Recorded operation histories.

    The raw material of consistency checking: a sequence of operation
    records — kind, block, serving site, virtual invocation/response
    times, payload, and outcome — appended either through the
    instrumentation hooks ({!attach_stub}, {!attach_cluster}) or manually
    ({!record}, for synthetic histories in oracle tests).

    {!attach_stub} is the one the oracle wants: the stub reports one event
    per {e logical} request, after failover and retry resolution, which is
    exactly the client-visible history one-copy serializability speaks
    about.  {!attach_cluster} records every per-site attempt instead —
    useful for debugging a failing schedule, too fine-grained to judge. *)

type kind = Read | Write

type entry = {
  id : int;  (** position in the history, 0-based *)
  kind : kind;
  block : int;
  site : int;  (** serving site (success) or last site tried (failure) *)
  invoked : float;
  responded : float;
  payload : Blockdev.Block.t option;
      (** data written (all writes) or returned (successful reads) *)
  version : int option;  (** version assigned/served; [None] on failure *)
  error : string option;  (** failure reason; [None] on success *)
}

val ok : entry -> bool
(** Did the operation succeed ([error = None])? *)

type t

val create : unit -> t

val record :
  t ->
  kind:kind ->
  block:int ->
  site:int ->
  invoked:float ->
  responded:float ->
  ?payload:Blockdev.Block.t ->
  ?version:int ->
  ?error:string ->
  unit ->
  unit
(** Append one entry (ids are assigned in append order). *)

val attach_stub : t -> Blockrep.Driver_stub.t -> unit
(** Record every logical request completed through the stub from now on. *)

val attach_cluster : t -> Blockrep.Cluster.t -> unit
(** Record every per-site operation completion from now on. *)

val length : t -> int

val entries : t -> entry list
(** In append (= response) order. *)

val pp_entry : Format.formatter -> entry -> unit
val pp : Format.formatter -> t -> unit
