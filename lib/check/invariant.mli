(** Quiescent-cluster invariant scans.

    Where the {!Oracle} judges what clients were told, these scans judge
    the replicas themselves.  They are meaningful at {e quiescent} points —
    no message in flight, no recovery exchange half-done (drain the engine
    first); the chaos harness runs them after cancelling its schedule and
    again after repairing every site.

    Per scheme:

    - {b available copy / naive available copy}: every available site
      holds the globally newest version of every block, and available
      stores agree bit-for-bit ([stale-available-copy],
      [copy-divergence]); every available site's version vector dominates
      every comatose site's ([dominance]); and for every site — up, down
      or comatose — the closure of its was-available set contains, for
      each block, a site holding the newest version ([closure-gap]): this
      is what makes recovery-by-closure sound after a total failure.
    - {b voting / dynamic voting}: within every network-reachable group
      whose available weight can still form a read quorum, some available
      site knows the globally newest version of every block
      ([quorum-stale]) — the observable form of quorum intersection.
      (Dynamic voting uses its own service predicate in place of the
      static quorum test.)

    All scans are checksum-aware: staleness, divergence and quorum
    currency are judged over {e verified} copies, and a quarantined
    (checksum-invalid) copy is excused — it refuses to serve rather than
    serving garbage, so the protocols owe it a repair, not a violation.
    Stored version numbers stay trustworthy under media faults (the
    version table is journaled separately from the data bytes), so the
    dominance and closure checks keep using stored vectors. *)

val scan : Blockrep.Cluster.t -> Violation.t list
(** Empty list = every invariant holds.  Only inspects state — never
    mutates the cluster or advances time. *)
