(** Per-block atomic-register (one-copy serializability) checker.

    The reliable device claims to behave like a single block device.  For
    a sequential client history — each operation invoked after the
    previous one responded, which is what {!History.attach_stub} records —
    that claim has a simple per-block shape the oracle checks directly:

    - versions of successful writes are strictly increasing, and no two
      operations bind different payloads to one version;
    - every successful read returns a payload some write actually wrote
      (or the initial/baseline contents), at a version consistent with it;
    - a read never returns a version below one already committed: the
      {e floor} is the largest version among the baseline and all writes
      that succeeded before the read was invoked ([stale-read]);
    - observed versions never regress between reads ([read-regression]) —
      this also pins down writes that {e failed} at the client but were
      partially applied: the register may or may not have absorbed them,
      but once a read observes one, later reads must not lose it.

    Failed writes are "maybe" operations: their payloads may legitimately
    surface at any later version (a retried rotation can even re-apply one
    twice), so the oracle accepts them wherever a read observes them and
    only holds the register to what it has already revealed.

    The [baseline] gives the pre-history contents (version and payload per
    block) for histories that start on a used cluster — e.g. resuming
    after a checkpoint restore; the default is the all-zero initial
    device. *)

val check :
  ?baseline:(int -> int * Blockdev.Block.t) -> History.t -> Violation.t list
(** All violations, in history order (empty = the history is explainable
    as a single consistent device).  Violation codes:
    ["non-sequential-history"], ["version-collision"],
    ["write-version-regression"], ["stale-read"], ["read-regression"],
    ["read-value-conflict"], ["phantom-read"]. *)

val first_violation :
  ?baseline:(int -> int * Blockdev.Block.t) -> History.t -> Violation.t option
