(** A consistency violation found by the checking subsystem.

    One record per finding, whether it came from the {!Oracle} (a served
    read that no one-copy serialization can explain) or from an
    {!Invariant} scan (replica state that breaks a protocol guarantee).
    The [code] is a short stable tag for grouping and assertions; the
    [detail] is the human-readable explanation the harness prints. *)

type t = {
  code : string;  (** stable tag, e.g. ["stale-read"], ["closure-gap"] *)
  block : int option;  (** the block involved, when meaningful *)
  time : float;  (** virtual time of the offending observation *)
  detail : string;  (** full human-readable explanation *)
}

val make : ?block:int -> code:string -> time:float -> string -> t

val pp : Format.formatter -> t -> unit
val to_string : t -> string
