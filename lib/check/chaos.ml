module Types = Blockrep.Types
module Cluster = Blockrep.Cluster
module Runtime = Blockrep.Runtime
module Store = Blockdev.Store
module Prng = Util.Prng

type event =
  | Fail of int
  | Repair of int
  | Partition of int list list
  | Heal
  | Crash_torn of int
  | Bitrot of int * int
  | Disk_replace of int
  | Slow_site of int * float
  | Burst of int
  | Queue_flood of int * int
  | Wire_corrupt of int * int
  | Wire_heal of int * int

type schedule = (float * event) list

type env = {
  scheme : Types.scheme;
  n_sites : int;
  n_blocks : int;
  seed : int;
  ops : int;
  mean_gap : float;
  reads_per_write : float;
  horizon : float;
  failures : bool;
  failure_rate : float;
  down_mean : float;
  partitions : bool;
  partition_rate : float;
  partition_duration : float;
  total_failures : bool;
  total_failure_rate : float;
  total_down_mean : float;
  faults : Net.Faults.profile;
  weaken_read : int option;
  weaken_write : int option;
  settle : float option;
  readback : bool;
  batch : int;
  crash_writes : bool;
  crash_write_rate : float;
  bitrot : bool;
  bitrot_rate : float;
  disk_replace : bool;
  disk_replace_rate : float;
  media_down_mean : float;
  service : Net.Service_model.t option;
  robustness : Blockrep.Robustness.t;
  slow_sites : bool;
  slow_rate : float;
  slow_factor : float;
  slow_mean : float;
  bursts : bool;
  burst_rate : float;
  burst_ops : int;
  queue_floods : bool;
  flood_rate : float;
  flood_count : int;
  encoded : bool;
  wire_corrupt_links : bool;
  wire_corrupt_rate : float;
  wire_corrupt_mean : float;
}

(* The group-commit fast path under chaos: client writes are absorbed by
   a write-back cache over the reliable device and committed in batched
   groups when the coalescing window closes (or on an explicit flush).
   The harness flushes eagerly just before injecting a failure or a
   partition — the moment a deployment's flush-on-failover hook fires —
   so the dirty set crosses the wire while the quorum that accepted the
   writes is still intact. *)
module Wb_cache = Fs.Buffer_cache.Make_batched (Blockrep.Reliable_device)

let supported_faults =
  Net.Faults.make_exn ~duplicate:0.05 ~reorder:0.05
    ~jitter:(Util.Dist.Uniform (0.0, 1.0))
    ~extra_delay:0.1 ()

(* Ambient byte damage of the wire envelope.  The hardened ingress
   redelivers a rejected frame up to [Net.Network.redelivery_budget]
   times, so at a combined per-frame corruption rate around 6% the
   residual loss is ~ 0.06^7 — far below anything a 25-seed sweep could
   surface.  A {e persistent} corruptor link defeats the budget by
   design, which is why [wire_corrupt_links] stays off here: that event
   turns corruption into message loss, and drops are outside every
   scheme's envelope (fire-and-forget updates are lost for good). *)
let supported_corruption =
  {
    Net.Faults.bit_flip = 0.02;
    truncate = 0.01;
    garbage_prefix = 0.01;
    garbage_suffix = 0.01;
    splice = 0.01;
  }

let default_env ?(seed = 1) scheme =
  let failures, total_failures =
    match scheme with
    | Types.Available_copy | Types.Naive_available_copy -> (true, true)
    | Types.Voting | Types.Dynamic_voting ->
        (* The one-round write (commit on votes, unacknowledged update
           multicast — the paper's 1+u message budget) leaves a window
           where a voter crashes after its vote was counted but before the
           update reaches its disk; a later read quorum formed without the
           writer can then be jointly stale.  Site failures are therefore
           outside the voting envelope — [run] with [failures = true]
           demonstrates the oracle catching exactly that. *)
        (false, false)
  in
  {
    scheme;
    n_sites = 3;
    n_blocks = 8;
    seed;
    ops = 110;
    mean_gap = 2.5;
    reads_per_write = 2.5;
    horizon = 260.0;
    failures;
    failure_rate = 0.04;
    down_mean = 6.0;
    partitions = false;
    partition_rate = 0.01;
    partition_duration = 8.0;
    total_failures;
    total_failure_rate = 0.004;
    total_down_mean = 4.0;
    faults = supported_faults;
    weaken_read = None;
    weaken_write = None;
    settle = None;
    readback = true;
    batch = 1;
    crash_writes = false;
    crash_write_rate = 0.02;
    bitrot = false;
    bitrot_rate = 0.03;
    disk_replace = false;
    disk_replace_rate = 0.005;
    media_down_mean = 6.0;
    service = None;
    robustness = Blockrep.Robustness.off;
    slow_sites = false;
    slow_rate = 0.02;
    slow_factor = 10.0;
    slow_mean = 12.0;
    bursts = false;
    burst_rate = 0.015;
    burst_ops = 15;
    queue_floods = false;
    flood_rate = 0.015;
    flood_count = 48;
    encoded = false;
    wire_corrupt_links = false;
    wire_corrupt_rate = 0.01;
    wire_corrupt_mean = 10.0;
  }

let media_env ?seed scheme =
  (* The storage-fault envelope per scheme.  Crash-torn writes and disk
     replacement take a site down; under the one-round voting write any
     site failure is already outside that scheme's envelope (see
     [default_env]), so the voting flavours get latent bitrot only —
     every copy stays mounted, quarantine + quorum re-pull heal it. *)
  let base = default_env ?seed scheme in
  match scheme with
  | Types.Available_copy | Types.Naive_available_copy ->
      { base with crash_writes = true; bitrot = true; disk_replace = true }
  | Types.Voting | Types.Dynamic_voting -> { base with bitrot = true }

let overload_env ?seed scheme =
  (* The overload + gray-failure envelope: every site runs the calibrated
     service model and the client stack has deadlines, hedged reads,
     breakers and admission on.  Slow sites, client bursts and queue
     floods never take a site down or lose an acknowledged message, so
     they are inside {e every} scheme's correctness envelope (including
     voting, whose envelope excludes site failures) — the oracle must stay
     silent while p99 degrades. *)
  let base = default_env ?seed scheme in
  {
    base with
    failures = false;
    total_failures = false;
    service = Some Net.Service_model.default;
    robustness =
      {
        Blockrep.Robustness.deadlines = true;
        op_budget = None;
        hedge = Some { Blockrep.Robustness.quantile = 0.9; floor = 1.0 };
        breaker = Some { Blockrep.Robustness.threshold = 5; cooldown = 30.0 };
        admission = Some 64;
      };
    slow_sites = true;
    bursts = true;
    queue_floods = true;
  }

let wire_env ?seed scheme =
  (* The hostile-bytes envelope: frames cross the network encoded and the
     injector damages their bytes at the [supported_corruption] ambient
     rates on top of the supported delay/duplicate/reorder faults.  The
     hardened ingress (CRC/shape rejection + bounded link-layer
     redelivery) must absorb all of it, so byte damage is inside {e
     every} scheme's correctness envelope — the oracle must stay silent
     and every injected corruption must be accounted for by the ingress
     conservation identity (checked as an invariant, not assumed). *)
  let base = default_env ?seed scheme in
  {
    base with
    encoded = true;
    faults = { base.faults with Net.Faults.corruption = supported_corruption };
  }

(* --- schedules --- *)

let exp_sample rng mean = -.mean *. log (Prng.float_pos rng)

let site_failure_events env rng site =
  let events = ref [] in
  let t = ref (exp_sample rng (1.0 /. env.failure_rate)) in
  while !t <= env.horizon do
    events := (!t, Fail site) :: !events;
    t := !t +. exp_sample rng env.down_mean;
    if !t <= env.horizon then events := (!t, Repair site) :: !events;
    t := !t +. exp_sample rng (1.0 /. env.failure_rate)
  done;
  List.rev !events

let partition_events env rng =
  let events = ref [] in
  let t = ref (exp_sample rng (1.0 /. env.partition_rate)) in
  while !t <= env.horizon do
    (* a random two-way split with both sides nonempty *)
    let side = Array.init env.n_sites (fun _ -> Prng.bool rng) in
    let all_same = Array.for_all (fun b -> b = side.(0)) side in
    if all_same then side.(Prng.int rng env.n_sites) <- not side.(0);
    let left = ref [] and right = ref [] in
    Array.iteri (fun i b -> if b then left := i :: !left else right := i :: !right) side;
    events := (!t, Partition [ List.rev !left; List.rev !right ]) :: !events;
    let heal_t = !t +. exp_sample rng env.partition_duration in
    if heal_t <= env.horizon then events := (heal_t, Heal) :: !events;
    t := heal_t +. exp_sample rng (1.0 /. env.partition_rate)
  done;
  List.rev !events

let total_failure_events env rng =
  let events = ref [] in
  let t = ref (exp_sample rng (1.0 /. env.total_failure_rate)) in
  while !t <= env.horizon do
    let last_repair = ref !t in
    for site = 0 to env.n_sites - 1 do
      (* stagger the crashes slightly so there is a genuine "last site to
         fail", then repair each site independently *)
      let fail_t = !t +. (0.3 *. Prng.float rng) in
      events := (fail_t, Fail site) :: !events;
      let repair_t = fail_t +. 0.5 +. exp_sample rng env.total_down_mean in
      if repair_t <= env.horizon then begin
        events := (repair_t, Repair site) :: !events;
        last_repair := Float.max !last_repair repair_t
      end
    done;
    t := !last_repair +. exp_sample rng (1.0 /. env.total_failure_rate)
  done;
  List.rev !events

let crash_write_events env rng =
  (* Crash-torn writes: the site loses power mid-write; the next crash is
     armed to tear the apply of its most recent journaled write, and the
     site is repaired a while later (the scrub replays the intention). *)
  let events = ref [] in
  let t = ref (exp_sample rng (1.0 /. env.crash_write_rate)) in
  while !t <= env.horizon do
    let site = Prng.int rng env.n_sites in
    events := (!t, Crash_torn site) :: !events;
    let repair_t = !t +. 0.5 +. exp_sample rng env.media_down_mean in
    if repair_t <= env.horizon then events := (repair_t, Repair site) :: !events;
    t := !t +. exp_sample rng (1.0 /. env.crash_write_rate)
  done;
  List.rev !events

let bitrot_events env rng =
  let events = ref [] in
  let t = ref (exp_sample rng (1.0 /. env.bitrot_rate)) in
  while !t <= env.horizon do
    events := (!t, Bitrot (Prng.int rng env.n_sites, Prng.int rng env.n_blocks)) :: !events;
    t := !t +. exp_sample rng (1.0 /. env.bitrot_rate)
  done;
  List.rev !events

let disk_replace_events env rng =
  let events = ref [] in
  let t = ref (exp_sample rng (1.0 /. env.disk_replace_rate)) in
  while !t <= env.horizon do
    let site = Prng.int rng env.n_sites in
    events := (!t, Disk_replace site) :: !events;
    let repair_t = !t +. 0.5 +. exp_sample rng env.media_down_mean in
    if repair_t <= env.horizon then events := (repair_t, Repair site) :: !events;
    t := !t +. exp_sample rng (1.0 /. env.disk_replace_rate)
  done;
  List.rev !events

let slow_site_events env rng =
  (* Gray failure: a random site turns [slow_factor]x slow for an
     exponential episode, then recovers to full speed (factor 1.0). *)
  let events = ref [] in
  let t = ref (exp_sample rng (1.0 /. env.slow_rate)) in
  while !t <= env.horizon do
    let site = Prng.int rng env.n_sites in
    events := (!t, Slow_site (site, env.slow_factor)) :: !events;
    let recover_t = !t +. exp_sample rng env.slow_mean in
    if recover_t <= env.horizon then events := (recover_t, Slow_site (site, 1.0)) :: !events;
    t := recover_t +. exp_sample rng (1.0 /. env.slow_rate)
  done;
  List.rev !events

let burst_events env rng =
  let events = ref [] in
  let t = ref (exp_sample rng (1.0 /. env.burst_rate)) in
  while !t <= env.horizon do
    events := (!t, Burst env.burst_ops) :: !events;
    t := !t +. exp_sample rng (1.0 /. env.burst_rate)
  done;
  List.rev !events

let queue_flood_events env rng =
  let events = ref [] in
  let t = ref (exp_sample rng (1.0 /. env.flood_rate)) in
  while !t <= env.horizon do
    events := (!t, Queue_flood (Prng.int rng env.n_sites, env.flood_count)) :: !events;
    t := !t +. exp_sample rng (1.0 /. env.flood_rate)
  done;
  List.rev !events

let wire_corrupt_events env rng =
  (* A persistent corruptor episode: one directed link flips every frame
     it carries until healed.  Paired with its heal at an exponential
     episode length, like slow-site episodes. *)
  let events = ref [] in
  let t = ref (exp_sample rng (1.0 /. env.wire_corrupt_rate)) in
  while !t <= env.horizon do
    let from = Prng.int rng env.n_sites in
    let dst = (from + 1 + Prng.int rng (env.n_sites - 1)) mod env.n_sites in
    events := (!t, Wire_corrupt (from, dst)) :: !events;
    let heal_t = !t +. exp_sample rng env.wire_corrupt_mean in
    if heal_t <= env.horizon then events := (heal_t, Wire_heal (from, dst)) :: !events;
    t := heal_t +. exp_sample rng (1.0 /. env.wire_corrupt_rate)
  done;
  List.rev !events

let generate_schedule env =
  let events = ref [] in
  if env.failures then begin
    let frng = Prng.create (env.seed lxor 0x6661696c) in
    for site = 0 to env.n_sites - 1 do
      let rng = Prng.split frng in
      events := !events @ site_failure_events env rng site
    done
  end;
  if env.partitions then
    events := !events @ partition_events env (Prng.create (env.seed lxor 0x70617274));
  if env.total_failures then
    events := !events @ total_failure_events env (Prng.create (env.seed lxor 0x746f7461));
  if env.crash_writes then
    events := !events @ crash_write_events env (Prng.create (env.seed lxor 0x746f726e));
  if env.bitrot then events := !events @ bitrot_events env (Prng.create (env.seed lxor 0x726f74));
  if env.disk_replace then
    events := !events @ disk_replace_events env (Prng.create (env.seed lxor 0x7265706c));
  if env.slow_sites then
    events := !events @ slow_site_events env (Prng.create (env.seed lxor 0x736c6f77));
  if env.bursts then events := !events @ burst_events env (Prng.create (env.seed lxor 0x62757273));
  if env.queue_floods then
    events := !events @ queue_flood_events env (Prng.create (env.seed lxor 0x666c6f64));
  if env.wire_corrupt_links then
    events := !events @ wire_corrupt_events env (Prng.create (env.seed lxor 0x77697265));
  List.stable_sort (fun (a, _) (b, _) -> Float.compare a b) !events

(* --- serialization --- *)

let pp_event ppf (time, ev) =
  match ev with
  | Fail s -> Format.fprintf ppf "@%.4f fail %d" time s
  | Repair s -> Format.fprintf ppf "@%.4f repair %d" time s
  | Partition groups ->
      Format.fprintf ppf "@%.4f partition %s" time
        (String.concat " | "
           (List.map (fun g -> String.concat " " (List.map string_of_int g)) groups))
  | Heal -> Format.fprintf ppf "@%.4f heal" time
  | Crash_torn s -> Format.fprintf ppf "@%.4f crash-torn %d" time s
  | Bitrot (s, b) -> Format.fprintf ppf "@%.4f bitrot %d %d" time s b
  | Disk_replace s -> Format.fprintf ppf "@%.4f disk-replace %d" time s
  | Slow_site (s, f) -> Format.fprintf ppf "@%.4f slow-site %d %.4f" time s f
  | Burst n -> Format.fprintf ppf "@%.4f burst %d" time n
  | Queue_flood (s, n) -> Format.fprintf ppf "@%.4f queue-flood %d %d" time s n
  | Wire_corrupt (s, d) -> Format.fprintf ppf "@%.4f wire-corrupt %d %d" time s d
  | Wire_heal (s, d) -> Format.fprintf ppf "@%.4f wire-heal %d %d" time s d

let pp_schedule ppf schedule =
  Format.pp_print_list ~pp_sep:Format.pp_print_newline pp_event ppf schedule

let schedule_to_string schedule =
  String.concat "\n" (List.map (Format.asprintf "%a" pp_event) schedule)

let schedule_of_string text =
  let parse_line i line =
    let line = String.trim line in
    if line = "" || line.[0] = '#' then Ok None
    else
      let fail () = Error (Printf.sprintf "line %d: cannot parse %S" (i + 1) line) in
      match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
      | time :: rest when String.length time > 1 && time.[0] = '@' -> (
          match float_of_string_opt (String.sub time 1 (String.length time - 1)) with
          | None -> fail ()
          | Some t -> (
              match rest with
              | [ "fail"; s ] -> (
                  match int_of_string_opt s with Some s -> Ok (Some (t, Fail s)) | None -> fail ())
              | [ "repair"; s ] -> (
                  match int_of_string_opt s with Some s -> Ok (Some (t, Repair s)) | None -> fail ())
              | [ "heal" ] -> Ok (Some (t, Heal))
              | [ "crash-torn"; s ] -> (
                  match int_of_string_opt s with
                  | Some s -> Ok (Some (t, Crash_torn s))
                  | None -> fail ())
              | [ "bitrot"; s; b ] -> (
                  match (int_of_string_opt s, int_of_string_opt b) with
                  | Some s, Some b -> Ok (Some (t, Bitrot (s, b)))
                  | _ -> fail ())
              | [ "disk-replace"; s ] -> (
                  match int_of_string_opt s with
                  | Some s -> Ok (Some (t, Disk_replace s))
                  | None -> fail ())
              | [ "slow-site"; s; f ] -> (
                  match (int_of_string_opt s, float_of_string_opt f) with
                  | Some s, Some f -> Ok (Some (t, Slow_site (s, f)))
                  | _ -> fail ())
              | [ "burst"; n ] -> (
                  match int_of_string_opt n with Some n -> Ok (Some (t, Burst n)) | None -> fail ())
              | [ "queue-flood"; s; n ] -> (
                  match (int_of_string_opt s, int_of_string_opt n) with
                  | Some s, Some n -> Ok (Some (t, Queue_flood (s, n)))
                  | _ -> fail ())
              | [ "wire-corrupt"; s; d ] -> (
                  match (int_of_string_opt s, int_of_string_opt d) with
                  | Some s, Some d -> Ok (Some (t, Wire_corrupt (s, d)))
                  | _ -> fail ())
              | [ "wire-heal"; s; d ] -> (
                  match (int_of_string_opt s, int_of_string_opt d) with
                  | Some s, Some d -> Ok (Some (t, Wire_heal (s, d)))
                  | _ -> fail ())
              | "partition" :: groups -> (
                  let rec split acc cur = function
                    | [] -> List.rev (List.rev cur :: acc)
                    | "|" :: rest -> split (List.rev cur :: acc) [] rest
                    | s :: rest -> (
                        match int_of_string_opt s with
                        | Some s -> split acc (s :: cur) rest
                        | None -> [])
                  in
                  match split [] [] groups with
                  | [] -> fail ()
                  | gs when List.exists (fun g -> g = []) gs -> fail ()
                  | gs -> Ok (Some (t, Partition gs)))
              | _ -> fail ()))
      | _ -> fail ()
  in
  let lines = String.split_on_char '\n' text in
  let rec go i acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
        match parse_line i line with
        | Error e -> Error e
        | Ok None -> go (i + 1) acc rest
        | Ok (Some ev) -> go (i + 1) (ev :: acc) rest)
  in
  go 0 [] lines

(* --- running --- *)

type outcome = {
  seed : int;
  schedule : schedule;
  history : History.t;
  oracle : Violation.t list;
  invariants_mid : Violation.t list;
  invariants_final : Violation.t list;
  ops_ok : int;
  ops_failed : int;
  faults_injected : int;
  storage : Blockdev.Durable_store.counters;
  end_time : float;
}

let violations o = o.oracle @ o.invariants_mid @ o.invariants_final
let passed o = violations o = []

let cluster_of_env env =
  let quorum =
    match (env.weaken_read, env.weaken_write) with
    | None, None -> None
    | r, w ->
        let majority = (env.n_sites / 2) + 1 in
        Some
          (Blockrep.Quorum.unsafe
             ~weights:(Array.make env.n_sites 1)
             ~read_threshold:(Option.value r ~default:majority)
             ~write_threshold:(Option.value w ~default:majority))
  in
  Cluster.create
    (Blockrep.Config.make_exn ~scheme:env.scheme ~n_sites:env.n_sites ~n_blocks:env.n_blocks
       ?quorum ~seed:env.seed ~fault_profile:env.faults ?service:env.service
       ~robustness:env.robustness ~encoded_delivery:env.encoded ())

(* Maskability guards for media faults.  The paper's disks are fail-stop;
   a latent fault that destroys the {e only} current copy of a block is
   unmaskable by any replication protocol, so the generator's random
   injections are filtered at apply time to those a correct system must
   survive: some other mounted site still holds a verified copy at least
   as new as whatever the fault wipes out.  (Crash-torn writes need no
   guard: the committed intention journal survives the tear and the
   recovery scrub replays it, so even a sole survivor loses nothing.) *)

let covered_elsewhere cluster ~victim ~block ~version =
  version = 0
  ||
  let n = Cluster.n_sites cluster in
  let rec check j =
    j < n
    && ((j <> victim
        && Cluster.site_state cluster j = Types.Available
        && Cluster.checksum_ok cluster ~site:j ~block
        && Cluster.effective_version cluster ~site:j ~block >= version)
       || check (j + 1))
  in
  check 0

let stored_version cluster s block =
  Store.version (Runtime.site (Cluster.runtime cluster) s).Runtime.store block

let apply_event cluster = function
  | Fail s -> if Cluster.site_state cluster s <> Types.Failed then Cluster.fail_site cluster s
  | Repair s -> if Cluster.site_state cluster s = Types.Failed then Cluster.repair_site cluster s
  | Partition groups -> Cluster.partition cluster groups
  | Heal -> Cluster.heal cluster
  | Crash_torn s ->
      if Cluster.site_state cluster s = Types.Available then begin
        Cluster.arm_torn_write cluster s;
        Cluster.fail_site cluster s
      end
  | Bitrot (s, b) ->
      if
        Cluster.site_state cluster s <> Types.Failed
        && covered_elsewhere cluster ~victim:s ~block:b ~version:(stored_version cluster s b)
      then Cluster.inject_bitrot cluster ~site:s ~block:b
  | Disk_replace s ->
      let n_blocks = Cluster.n_blocks cluster in
      let rec all_covered b =
        b >= n_blocks
        || (covered_elsewhere cluster ~victim:s ~block:b ~version:(stored_version cluster s b)
           && all_covered (b + 1))
      in
      if all_covered 0 then Cluster.replace_disk cluster s
  | Slow_site (s, f) -> Cluster.set_rate_factor cluster s f
  | Queue_flood (s, n) -> Cluster.flood_site cluster s ~count:n
  | Wire_corrupt (s, d) -> Cluster.corrupt_link cluster ~from:s ~dst:d
  | Wire_heal (s, d) -> Cluster.heal_link cluster ~from:s ~dst:d
  | Burst _ -> () (* handled by the workload loop, not the cluster *)

let run_against env ~cluster ~schedule =
  let engine = Cluster.engine cluster in
  let rt = Cluster.runtime cluster in
  let n_blocks = Cluster.n_blocks cluster in
  (* Oracle baseline: the newest committed state per block at entry, so a
     restored (checkpointed) cluster's contents are legal first reads. *)
  let baseline_tbl =
    Array.init n_blocks (fun block ->
        let best = ref (0, Blockdev.Block.zero) in
        Array.iter
          (fun (s : Runtime.site) ->
            (* Verified copies only: a quarantined block must not seed the
               oracle's notion of committed state. *)
            match Blockdev.Durable_store.read_verified s.durable block with
            | Some (data, v) -> if v > fst !best then best := (v, data)
            | None -> ())
          (Runtime.sites rt);
        !best)
  in
  let baseline block = baseline_tbl.(block) in
  let device = Blockrep.Reliable_device.create ?settle:env.settle cluster in
  let history = History.create () in
  History.attach_stub history (Blockrep.Reliable_device.stub device);
  (* No coalescing timer here: a timer can close the window in the middle
     of another client operation's engine drive, and the nested batched
     write would make the recorded history non-sequential (the oracle
     judges single-client histories).  The loop below commits the dirty
     set explicitly once [batch] writes have been absorbed, which is the
     same group size with deterministic, never-nested flush points. *)
  let cache =
    if env.batch <= 1 then None
    else Some (Wb_cache.create ~policy:Fs.Buffer_cache.Write_back ~capacity:n_blocks device)
  in
  let in_op = ref false in
  let flush_cache () =
    match cache with
    | None -> ()
    | Some c ->
        (* Never flush from inside a client operation (a schedule event
           can fire while one is driving the engine): the nested write
           would be recorded before the in-flight operation responds. *)
        if not !in_op then ignore (Wb_cache.flush c : bool)
  in
  let now0 = Sim.Engine.now engine in
  (* Bursts ask the workload loop to skip its think time for the next [n]
     operations — closed-loop arrival pressure, no cluster state touched. *)
  let burst_credit = ref 0 in
  let handles =
    List.filter_map
      (fun (time, ev) ->
        if time < now0 then None
        else
          Some
            (Sim.Engine.schedule_at engine ~time (fun () ->
                 (* Flush-on-failover: commit the dirty set before the
                    fault lands (reentrant flushes are ignored by the
                    cache, so a flush already in flight is safe). *)
                 (match ev with
                 | Fail _ | Partition _ | Crash_torn _ | Disk_replace _ -> flush_cache ()
                 | Repair _ | Heal | Bitrot _ | Slow_site _ | Burst _ | Queue_flood _
                 | Wire_corrupt _ | Wire_heal _ ->
                     ());
                 (match ev with Burst n -> burst_credit := !burst_credit + n | _ -> ());
                 apply_event cluster ev)))
      schedule
  in
  let gap_rng = Prng.create (env.seed lxor 0x676170) in
  let gen =
    Workload.Access_gen.create
      ~rng:(Prng.create (env.seed lxor 0x6f7073))
      ~n_blocks ~reads_per_write:env.reads_per_write
      ~payload_seed:(Printf.sprintf "chaos-%d" env.seed)
      ()
  in
  let ops_ok = ref 0 and ops_failed = ref 0 in
  for _ = 1 to env.ops do
    if !burst_credit > 0 then decr burst_credit
    else Cluster.run_until cluster (Sim.Engine.now engine +. exp_sample gap_rng env.mean_gap);
    in_op := true;
    (match Workload.Access_gen.next gen with
    | Workload.Access_gen.Read block -> (
        let answer =
          match cache with
          | Some c -> Wb_cache.read_block c block
          | None -> Blockrep.Reliable_device.read_block device block
        in
        match answer with Some _ -> incr ops_ok | None -> incr ops_failed)
    | Workload.Access_gen.Write (block, data) ->
        let ok =
          match cache with
          | Some c -> Wb_cache.write_block c block data
          | None -> Blockrep.Reliable_device.write_block device block data
        in
        if ok then incr ops_ok else incr ops_failed);
    in_op := false;
    (* Group commit: the dirty set rides one batched request as soon as
       it reaches the configured group size. *)
    match cache with
    | Some c when Wb_cache.dirty_blocks c >= env.batch -> ignore (Wb_cache.flush c : bool)
    | Some _ | None -> ()
  done;
  (* Stop injecting, commit anything still buffered, drain, and look at
     the state the run ended in. *)
  List.iter (Sim.Engine.cancel engine) handles;
  flush_cache ();
  Cluster.settle cluster;
  let invariants_mid = Invariant.scan cluster in
  (* Full recovery: heal, repair everyone, let recovery protocols finish. *)
  Cluster.heal cluster;
  for site = 0 to Cluster.n_sites cluster - 1 do
    if Cluster.site_state cluster site = Types.Failed then Cluster.repair_site cluster site
  done;
  Cluster.settle cluster;
  (* A flush during the run may have failed with the quorum down; with
     everything repaired the leftovers must commit. *)
  flush_cache ();
  Cluster.settle cluster;
  let invariants_final = Invariant.scan cluster in
  (* The ingress conservation identity is checked, not assumed: every
     corruption the injector counted must have been classified exactly
     one way (decoder reject, quarantine discard, or survived decode). *)
  let invariants_final =
    if Cluster.corruption_conserved cluster then invariants_final
    else
      invariants_final
      @ [
          Violation.make ~code:"wire-unconserved" ~time:(Sim.Engine.now engine)
            (Printf.sprintf
               "corrupted deliveries %d <> rejected %d + quarantined %d + survived %d"
               (Cluster.corrupted_deliveries cluster)
               (Cluster.corrupt_rejected cluster)
               (Cluster.corrupt_quarantined cluster)
               (Cluster.corrupt_survived cluster));
        ]
  in
  if env.readback then
    for block = 0 to n_blocks - 1 do
      ignore (Blockrep.Reliable_device.read_block device block)
    done;
  let oracle = Oracle.check ~baseline history in
  {
    seed = env.seed;
    schedule;
    history;
    oracle;
    invariants_mid;
    invariants_final;
    ops_ok = !ops_ok;
    ops_failed = !ops_failed;
    faults_injected =
      (match Cluster.faults cluster with None -> 0 | Some f -> Net.Faults.total_injected f);
    storage = Cluster.storage_counters cluster;
    end_time = Sim.Engine.now engine;
  }

let run ?schedule env =
  let schedule = match schedule with Some s -> s | None -> generate_schedule env in
  run_against env ~cluster:(cluster_of_env env) ~schedule

(* --- shrinking --- *)

let shrink ?(max_runs = 300) env schedule =
  let runs = ref 0 in
  let try_run sched =
    incr runs;
    run_against env ~cluster:(cluster_of_env env) ~schedule:sched
  in
  let failing o = not (passed o) in
  let first = try_run schedule in
  if not (failing first) then (schedule, first)
  else begin
    let best = ref (Array.of_list schedule) in
    let best_outcome = ref first in
    let chunk = ref (max 1 ((Array.length !best + 1) / 2)) in
    while !chunk >= 1 && !runs < max_runs do
      let progressed = ref false in
      let i = ref 0 in
      while !i < Array.length !best && !runs < max_runs do
        let len = Array.length !best in
        let hi = min len (!i + !chunk) in
        let candidate = Array.append (Array.sub !best 0 !i) (Array.sub !best hi (len - hi)) in
        if Array.length candidate < len then begin
          let o = try_run (Array.to_list candidate) in
          if failing o then begin
            best := candidate;
            best_outcome := o;
            progressed := true
            (* keep [i]: the next chunk slid into place *)
          end
          else i := !i + !chunk
        end
        else i := !i + !chunk
      done;
      if not !progressed then if !chunk = 1 then chunk := 0 else chunk := !chunk / 2
    done;
    (Array.to_list !best, !best_outcome)
  end

(* --- sweeping --- *)

type run_summary = {
  run_seed : int;
  run_passed : bool;
  run_violations : int;
  run_ops_ok : int;
  run_ops_failed : int;
  run_faults : int;
  run_storage_faults : int;
}

type sweep_result = {
  sweep_env : env;
  summaries : run_summary list;
  failing : int list;
  first_failure : (int * outcome) option;
  shrunk : (schedule * outcome) option;
}

let sweep ?(shrink_failures = true) ?max_shrink_runs ?(shards = 1) env ~seeds =
  (* Each seed's run builds its own cluster, schedule and PRNG streams
     from [{env with seed}] alone, so seeds are the sweep's shard units:
     [shards] picks only how many domains execute them, and the verdict
     merge below walks the results in seed-list order either way. *)
  let runs =
    Sim.Shard_engine.map_list ~shards seeds (fun seed ->
        let o = run { env with seed } in
        let n_violations = List.length (violations o) in
        ( {
            run_seed = seed;
            run_passed = n_violations = 0;
            run_violations = n_violations;
            run_ops_ok = o.ops_ok;
            run_ops_failed = o.ops_failed;
            run_faults = o.faults_injected;
            run_storage_faults =
              o.storage.Blockdev.Durable_store.torn_writes
              + o.storage.Blockdev.Durable_store.bitrot_injected
              + o.storage.Blockdev.Durable_store.disk_replacements;
          },
          o ))
  in
  let summaries = List.map fst runs in
  let first_failure =
    List.find_map (fun (s, o) -> if s.run_passed then None else Some (s.run_seed, o)) runs
  in
  let failing = List.filter_map (fun s -> if s.run_passed then None else Some s.run_seed) summaries in
  let shrunk =
    match first_failure with
    | Some (seed, o) when shrink_failures ->
        Some (shrink ?max_runs:max_shrink_runs { env with seed } o.schedule)
    | _ -> None
  in
  { sweep_env = env; summaries; failing; first_failure; shrunk }
