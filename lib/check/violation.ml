type t = { code : string; block : int option; time : float; detail : string }

let make ?block ~code ~time detail = { code; block; time; detail }

let pp ppf t =
  Format.fprintf ppf "[%s]%s t=%.3f: %s" t.code
    (match t.block with None -> "" | Some b -> Printf.sprintf " block %d" b)
    t.time t.detail

let to_string t = Format.asprintf "%a" pp t
