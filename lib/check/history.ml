type kind = Read | Write

type entry = {
  id : int;
  kind : kind;
  block : int;
  site : int;
  invoked : float;
  responded : float;
  payload : Blockdev.Block.t option;
  version : int option;
  error : string option;
}

let ok e = e.error = None

type t = { mutable rev_entries : entry list; mutable n : int }

let create () = { rev_entries = []; n = 0 }

let record t ~kind ~block ~site ~invoked ~responded ?payload ?version ?error () =
  let entry = { id = t.n; kind; block; site; invoked; responded; payload; version; error } in
  t.rev_entries <- entry :: t.rev_entries;
  t.n <- t.n + 1

let of_observe_kind = function
  | Blockrep.Cluster.Observe.Read -> Read
  | Blockrep.Cluster.Observe.Write -> Write

let attach_stub t stub =
  Blockrep.Driver_stub.add_observer stub (fun (v : Blockrep.Driver_stub.op_view) ->
      record t ~kind:(of_observe_kind v.kind) ~block:v.block ~site:v.site ~invoked:v.invoked
        ~responded:v.responded ?payload:v.payload ?version:v.version
        ?error:(Option.map Blockrep.Types.failure_reason_to_string v.error)
        ())

let attach_cluster t cluster =
  Blockrep.Cluster.add_observer cluster (fun (e : Blockrep.Cluster.Observe.event) ->
      record t ~kind:(of_observe_kind e.kind) ~block:e.block ~site:e.site ~invoked:e.invoked
        ~responded:e.responded ?payload:e.payload ?version:e.version
        ?error:(Option.map Blockrep.Types.failure_reason_to_string e.error)
        ())

let length t = t.n
let entries t = List.rev t.rev_entries

let payload_brief = function
  | None -> "-"
  | Some b ->
      let s = Blockdev.Block.to_string b in
      let rec measure i = if i < String.length s && s.[i] <> '\000' then measure (i + 1) else i in
      String.sub s 0 (Int.min (measure 0) 16)

let pp_entry ppf e =
  Format.fprintf ppf "#%d %-5s block %d @ site %d [%.3f, %.3f] %s"
    e.id
    (match e.kind with Read -> "read" | Write -> "write")
    e.block e.site e.invoked e.responded
    (match (e.version, e.error) with
    | Some v, _ -> Printf.sprintf "-> v%d %S" v (payload_brief e.payload)
    | None, Some err -> "failed: " ^ err
    | None, None -> "failed")

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter (fun e -> Format.fprintf ppf "%a@," pp_entry e) (entries t);
  Format.fprintf ppf "@]"
