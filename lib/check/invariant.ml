module Types = Blockrep.Types
module Runtime = Blockrep.Runtime
module Store = Blockdev.Store
module Durable = Blockdev.Durable_store
module Vv = Blockdev.Version_vector

(* Staleness and divergence are judged over {e verified} copies: a
   quarantined (checksum-invalid) copy refuses to serve, vote or transfer,
   so it can make nobody read garbage — the protocols owe it a repair, not
   an excuse.  Stored version numbers stay trustworthy under media faults
   (the version table is journaled separately from the data bytes), so the
   dominance and closure checks keep using stored vectors. *)
let effective (s : Runtime.site) block = Durable.effective_version s.durable block

let global_max sites block =
  Array.fold_left (fun acc (s : Runtime.site) -> Int.max acc (effective s block)) 0 sites

(* Maximal groups of mutually reachable sites (singleton groups for
   isolated sites).  With no partition installed this is one group. *)
let connectivity_groups net n =
  let assigned = Array.make n false in
  let groups = ref [] in
  for i = 0 to n - 1 do
    if not assigned.(i) then begin
      let group = ref [] in
      for j = n - 1 downto 0 do
        if (not assigned.(j)) && Runtime.Transport.reachable net i j && Runtime.Transport.reachable net j i
        then begin
          assigned.(j) <- true;
          group := j :: !group
        end
      done;
      groups := !group :: !groups
    end
  done;
  List.rev !groups

let scan_copy cluster ~add =
  let rt = Blockrep.Cluster.runtime cluster in
  let sites = Runtime.sites rt in
  let n_blocks = Blockrep.Cluster.n_blocks cluster in
  let available = Array.to_list sites |> List.filter (fun (s : Runtime.site) -> s.state = Types.Available) in
  let comatose = Array.to_list sites |> List.filter (fun (s : Runtime.site) -> s.state = Types.Comatose) in
  (* 1. Every available site is current everywhere, and current copies agree. *)
  for block = 0 to n_blocks - 1 do
    let gm = global_max sites block in
    List.iter
      (fun (s : Runtime.site) ->
        (* A quarantined copy is excused from the staleness check: it
           serves nothing (reads there trigger peer repair) and the bitrot
           guard guarantees a verified current copy elsewhere. *)
        if Durable.checksum_ok s.durable block then begin
          let v = effective s block in
          if v < gm then
            add ~block "stale-available-copy"
              (Printf.sprintf
                 "site %d is available but holds version %d of block %d while version %d exists in \
                  the system — a read served there would be stale"
                 s.id v block gm)
        end)
      available;
    (match
       List.filter_map
         (fun (s : Runtime.site) ->
           match Durable.read_verified s.durable block with
           | Some (data, v) when v = gm -> Some (s, data)
           | _ -> None)
         available
     with
    | [] | [ _ ] -> ()
    | (first, reference) :: rest ->
        List.iter
          (fun ((s : Runtime.site), data) ->
            if not (Blockdev.Block.equal data reference) then
              add ~block "copy-divergence"
                (Printf.sprintf
                   "sites %d and %d both hold version %d of block %d with different contents — \
                    two writes were committed under one version number"
                   first.id s.id gm block))
          rest)
  done;
  (* 2. Available version vectors dominate comatose ones. *)
  List.iter
    (fun (a : Runtime.site) ->
      List.iter
        (fun (c : Runtime.site) ->
          let va = Store.versions a.store and vc = Store.versions c.store in
          if not (Vv.dominates va vc) then begin
            let block = ref (-1) in
            for b = n_blocks - 1 downto 0 do
              if Vv.get vc b > Vv.get va b then block := b
            done;
            add ~block:!block "dominance"
              (Printf.sprintf
                 "available site %d is behind comatose site %d on block %d (v%d < v%d): the \
                  recovering site holds news the serving site missed"
                 a.id c.id !block (Vv.get va !block) (Vv.get vc !block))
          end)
        comatose)
    available;
  (* 3. W-set closure soundness: recovery from a total failure waits for
     the closure of the recovering site's was-available set, so for every
     site that closure must reach a holder of every block's newest
     version. *)
  let w_of u = Some (Runtime.site rt u).w in
  Array.iter
    (fun (s : Runtime.site) ->
      let closure = Blockrep.Closure.compute ~self:s.id ~own:s.w ~known:w_of in
      for block = 0 to n_blocks - 1 do
        let gm = global_max sites block in
        let reaches_current =
          (* Verified copies only: a quarantined gm-holder cannot be
             transferred from, so it does not plug a closure gap. *)
          Types.Int_set.exists (fun u -> effective (Runtime.site rt u) block = gm) closure
        in
        if not reaches_current then
          add ~block "closure-gap"
            (Printf.sprintf
               "the closure of site %d's was-available set (%s) holds only stale copies of block \
                %d (newest is v%d): recovery from a total failure starting at site %d could come \
                back stale"
               s.id
               (Format.asprintf "%a" Types.pp_int_set closure)
               block gm s.id)
      done)
    sites

let scan_quorum cluster ~add =
  let rt = Blockrep.Cluster.runtime cluster in
  let sites = Runtime.sites rt in
  let n_sites = Blockrep.Cluster.n_sites cluster in
  let n_blocks = Blockrep.Cluster.n_blocks cluster in
  let net = Blockrep.Cluster.network cluster in
  let check_group label group =
    for block = 0 to n_blocks - 1 do
      let gm = global_max sites block in
      let known_up =
        List.exists
          (fun i ->
            let s = Runtime.site rt i in
            s.state = Types.Available && effective s block = gm)
          group
      in
      if not known_up then
        add ~block "quorum-stale"
          (Printf.sprintf
             "%s can still form a read quorum, but no available site in it knows version %d of \
              block %d — the quorum the next read collects cannot see the newest write"
             label gm block)
    done
  in
  match Blockrep.Cluster.scheme cluster with
  | Types.Voting ->
      let quorum = (Blockrep.Cluster.config cluster).Blockrep.Config.quorum in
      List.iter
        (fun group ->
          let avail =
            List.filter (fun i -> (Runtime.site rt i).state = Types.Available) group
          in
          let weight = Blockrep.Quorum.weight_of quorum avail in
          if Blockrep.Quorum.read_quorum_met quorum weight then
            check_group
              (Printf.sprintf "reachable group {%s}" (String.concat "," (List.map string_of_int group)))
              group)
        (connectivity_groups net n_sites)
  | Types.Dynamic_voting ->
      if Blockrep.Cluster.system_available cluster then
        check_group "the service-available system" (List.init n_sites Fun.id)
  | Types.Available_copy | Types.Naive_available_copy ->
      ((assert false)
      [@lint.allow "partiality"
        "unreachable: scan dispatches copy schemes to scan_copy; scan_quorum is only ever entered for quorum schemes"])

let scan cluster =
  let now = Sim.Engine.now (Blockrep.Cluster.engine cluster) in
  let violations = ref [] in
  let add ~block code detail =
    let block = if block < 0 then None else Some block in
    violations := Violation.make ?block ~code ~time:now detail :: !violations
  in
  (match Blockrep.Cluster.scheme cluster with
  | Types.Available_copy | Types.Naive_available_copy -> scan_copy cluster ~add
  | Types.Voting | Types.Dynamic_voting -> scan_quorum cluster ~add);
  List.rev !violations
