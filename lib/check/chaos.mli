(** Seeded chaos schedules over a live workload, with a consistency verdict.

    A chaos run builds a cluster, derives a randomized {e schedule} of
    site failures/repairs, total failures, and partitions from the seed,
    installs a message-fault profile, and drives a closed-loop client
    workload through a {!Blockrep.Reliable_device} while the schedule
    plays out.  At the end it lets the system drain, runs {!Invariant}
    scans (once as-is, once after repairing every site and healing the
    network), reads every block back, and hands the recorded history to
    the {!Oracle}.  Everything is derived from the seed: same environment
    + same seed = same run, bit for bit.

    {b Supported environments.}  Each scheme has a fault envelope inside
    which it must be violation-free, encoded by {!default_env}:

    - {e available copy} and {e naive available copy}: site failures +
      total failures + benign message faults (duplicate, reorder, jitter,
      extra delay).  Partitions excluded, as the paper itself notes
      (available-copy schemes assume failures are clean).
    - {e voting} and {e dynamic voting}: benign message faults only.
      Site failures, partitions and total failures are {e excluded}: the
      paper's one-round write commits on votes and propagates the new
      version with one unacknowledged update multicast (that is what
      makes its multicast write cost 1+u), so a voter that crashes — or
      is cut off — between its counted vote and the update's delivery
      keeps a stale disk, and a later read quorum formed without the
      writer can be jointly stale.  Forcing [failures = true] on voting
      is the canonical demonstration that the oracle catches this.

    Message {e drops} are outside every envelope: update propagation is
    fire-and-forget in all three protocols, so a dropped update is lost
    for good.  Forcing drops/partitions/failures beyond the envelope, or
    weakening the quorum thresholds via {!Blockrep.Quorum.unsafe}, turns
    the harness into a demonstration that the oracle catches real
    violations. *)

type event =
  | Fail of int
  | Repair of int
  | Partition of int list list
  | Heal
  | Crash_torn of int
      (** arm the site's next crash to tear its most recent journaled
          write, then fail it — the committed intention survives, so the
          recovery scrub replays the write (no guard needed: even a sole
          survivor loses nothing acknowledged) *)
  | Bitrot of int * int
      (** (site, block): silent sector decay of one stored copy.  Applied
          only when some other mounted site holds a verified copy at least
          as new — destroying the only current copy is unmaskable by any
          replication protocol (the paper's disks are fail-stop) *)
  | Disk_replace of int
      (** swap the site's medium for a blank one (fails the site).
          Applied only when every block it holds is covered by a verified
          peer copy, same reasoning as bitrot *)
  | Slow_site of int * float
      (** (site, rate factor): gray failure — the site's service times are
          scaled by the factor from now on (1.0 restores full speed).  The
          site stays up and still answers; no-op without a service model *)
  | Burst of int
      (** the workload loop issues its next [n] operations back-to-back
          (no think time): closed-loop arrival pressure *)
  | Queue_flood of int * int
      (** (site, count): inject [count] junk jobs into the site's work
          queue ahead of legitimate traffic; no-op without a service
          model *)
  | Wire_corrupt of int * int
      (** (from, dst): the directed link becomes a {e persistent}
          corruptor — every frame it carries is bit-flipped until healed.
          No-op without a fault injector; has no observable effect unless
          the cluster runs encoded delivery (there are no wire bytes to
          damage otherwise).  A persistent corruptor defeats the bounded
          redelivery budget by design, turning corruption into message
          loss on that link — outside every scheme's envelope, and the
          circuit breaker's job to contain. *)
  | Wire_heal of int * int
      (** (from, dst): restore the link to the run's ambient profile *)

type schedule = (float * event) list
(** Timed events, ascending. *)

type env = {
  scheme : Blockrep.Types.scheme;
  n_sites : int;
  n_blocks : int;
  seed : int;
  ops : int;  (** workload operations issued by the client *)
  mean_gap : float;  (** mean think time between operations *)
  reads_per_write : float;
  horizon : float;  (** schedule events are generated on [0, horizon] *)
  failures : bool;  (** independent per-site failure/repair processes *)
  failure_rate : float;  (** per-site failure rate (mean up time = 1/rate) *)
  down_mean : float;  (** mean repair time of an individual failure *)
  partitions : bool;
  partition_rate : float;
  partition_duration : float;
  total_failures : bool;  (** whole-system crashes (staggered site failures) *)
  total_failure_rate : float;
  total_down_mean : float;  (** mean per-site outage after a total failure *)
  faults : Net.Faults.profile;  (** message-fault profile for the run *)
  weaken_read : int option;  (** voting: forced (unsafe) read threshold *)
  weaken_write : int option;  (** voting: forced (unsafe) write threshold *)
  settle : float option;  (** driver-stub failover settle override *)
  readback : bool;  (** read every block back after final recovery *)
  batch : int;
      (** > 1 routes the workload through a write-back cache over the
          device: writes are absorbed until [batch] blocks are dirty,
          then commit as one batched group request.  The harness also
          flushes the dirty set just before each injected failure or
          partition (flush-on-failover, skipped if a client operation is
          mid-flight — the oracle judges single-client histories, so a
          nested commit may not be recorded inside another operation)
          and again after final recovery.
          The client-visible history then contains the {e committed}
          operations, so the oracle judges what the replicated layer
          actually did — the cache's absorption delay is invisible to
          it.  [1] (the default) is the unbatched path, bit-identical
          to the historical harness. *)
  crash_writes : bool;  (** seeded {!Crash_torn} process (default off) *)
  crash_write_rate : float;
  bitrot : bool;  (** seeded {!Bitrot} process (default off) *)
  bitrot_rate : float;
  disk_replace : bool;  (** seeded {!Disk_replace} process (default off) *)
  disk_replace_rate : float;
  media_down_mean : float;
      (** mean outage after a crash-torn write or a disk replacement,
          before the paired repair *)
  service : Net.Service_model.t option;
      (** per-site service model for the run's cluster (default [None]:
          infinitely fast sites, bit-identical to the historical harness) *)
  robustness : Blockrep.Robustness.t;
      (** client-side robustness stack for the run's cluster (default
          {!Blockrep.Robustness.off}) *)
  slow_sites : bool;  (** seeded {!Slow_site} episodes (default off) *)
  slow_rate : float;
  slow_factor : float;  (** degradation factor of a slow episode *)
  slow_mean : float;  (** mean episode duration *)
  bursts : bool;  (** seeded {!Burst} process (default off) *)
  burst_rate : float;
  burst_ops : int;  (** operations issued back-to-back per burst *)
  queue_floods : bool;  (** seeded {!Queue_flood} process (default off) *)
  flood_rate : float;
  flood_count : int;  (** junk jobs injected per flood *)
  encoded : bool;
      (** run the cluster in encoded-frame delivery mode (default off:
          in-heap delivery, bit-identical to the historical harness) *)
  wire_corrupt_links : bool;
      (** seeded {!Wire_corrupt}/{!Wire_heal} episodes (default off; see
          {!Wire_corrupt} for why these sit outside every envelope) *)
  wire_corrupt_rate : float;
  wire_corrupt_mean : float;  (** mean corruptor-episode duration *)
}

val default_env : ?seed:int -> Blockrep.Types.scheme -> env
(** The scheme's supported environment (see above) at moderate chaos
    rates: 3 sites, 8 blocks, 110 operations, benign-fault profile
    {!supported_faults}.  All media-fault processes are off: a default
    run exercises no storage fault and is bit-identical to the
    pre-durable harness. *)

val media_env : ?seed:int -> Blockrep.Types.scheme -> env
(** {!default_env} plus the scheme's {e storage-fault} envelope, inside
    which it must stay violation-free: the copy schemes get crash-torn
    writes, bitrot and disk replacement; the voting flavours get bitrot
    only (torn crashes and replacement take a site down, and any site
    failure is already outside the one-round-write voting envelope). *)

val overload_env : ?seed:int -> Blockrep.Types.scheme -> env
(** The {e overload + gray-failure} envelope, inside which every scheme —
    voting included — must stay violation-free: all sites run
    {!Net.Service_model.default}, the client stack has deadlines, hedged
    reads, circuit breakers and admission control enabled, and the
    schedule carries slow-site episodes, client bursts and queue floods.
    None of these events takes a site down or destroys an acknowledged
    message, so correctness must hold while tail latency degrades.  Site
    failures and partitions are off. *)

val wire_env : ?seed:int -> Blockrep.Types.scheme -> env
(** The {e hostile-bytes} envelope, inside which every scheme must stay
    violation-free: frames cross the network encoded and the injector
    damages their bytes at the {!supported_corruption} ambient rates on
    top of {!supported_faults}.  The hardened ingress (CRC/shape
    rejection, bounded link-layer redelivery, poison-frame quarantine)
    must absorb all of it; on top of the oracle verdict, the run fails
    with a [wire-unconserved] violation if any injected corruption went
    unaccounted for by the ingress conservation identity.  Persistent
    corruptor links stay off: they turn corruption into message loss,
    which is outside every envelope (see {!Wire_corrupt}). *)

val supported_faults : Net.Faults.profile
(** duplicate 0.05, reorder 0.05 with jitter ~ U(0,1), extra delay 0.1 —
    and no drops. *)

val supported_corruption : Net.Faults.corruption
(** Ambient byte damage of {!wire_env}: bit flip 0.02; truncate, garbage
    prefix/suffix and splice 0.01 each.  At these rates the bounded
    redelivery budget makes residual frame loss negligible
    (~[rate^(budget+1)]). *)

(** {1 Schedules} *)

val generate_schedule : env -> schedule
(** The seed-derived schedule for [env] (empty when every process is
    disabled). *)

val schedule_to_string : schedule -> string
(** One event per line ([@time fail 2], [@time partition 0 1 | 2], ...);
    round-trips through {!schedule_of_string} for replay. *)

val schedule_of_string : string -> (schedule, string) result

val pp_event : Format.formatter -> float * event -> unit
val pp_schedule : Format.formatter -> schedule -> unit

(** {1 Running} *)

type outcome = {
  seed : int;
  schedule : schedule;  (** the schedule that was played *)
  history : History.t;
  oracle : Violation.t list;
  invariants_mid : Violation.t list;
      (** scan after the workload drained, before forced repairs — the
          partial-failure state the run ended in *)
  invariants_final : Violation.t list;
      (** scan after every site repaired, the network healed and recovery
          completed *)
  ops_ok : int;
  ops_failed : int;
  faults_injected : int;
  storage : Blockdev.Durable_store.counters;
      (** summed storage-fault counters across all sites: faults injected
          (torn writes, bitrot, replacements) and the repair work the
          protocols did about them (scrub replays, quarantines, peer
          repairs, refused installs) *)
  end_time : float;
}

val violations : outcome -> Violation.t list
(** Oracle + both scans, in that order. *)

val passed : outcome -> bool

val cluster_of_env : env -> Blockrep.Cluster.t
(** A fresh cluster for [env] (applies the weakened quorum and fault
    profile when set). *)

val run_against : env -> cluster:Blockrep.Cluster.t -> schedule:schedule -> outcome
(** Play [schedule] and the client workload against an existing cluster —
    the entry point for checkpoint-resume checks.  Events scheduled
    before the cluster's current virtual time are skipped.  The oracle
    baseline is captured from the cluster's stores at entry, so a
    restored cluster's prior contents are legal initial reads. *)

val run : ?schedule:schedule -> env -> outcome
(** Fresh cluster + generated (or given) schedule + workload + verdict. *)

(** {1 Shrinking and sweeping} *)

val shrink : ?max_runs:int -> env -> schedule -> schedule * outcome
(** Greedy ddmin-style minimization: repeatedly drop chunks of the
    schedule while some violation still reproduces (failure/repair and
    partition events are individually removable — a repair of an up site
    or a stray heal is a no-op).  Returns the smallest failing schedule
    found within [max_runs] (default 300) re-runs and its outcome; if the
    given schedule does not fail at all, returns it unchanged. *)

type run_summary = {
  run_seed : int;
  run_passed : bool;
  run_violations : int;
  run_ops_ok : int;
  run_ops_failed : int;
  run_faults : int;
  run_storage_faults : int;  (** torn writes + bitrot + disk replacements *)
}

type sweep_result = {
  sweep_env : env;
  summaries : run_summary list;
  failing : int list;  (** seeds whose run had any violation *)
  first_failure : (int * outcome) option;
  shrunk : (schedule * outcome) option;
      (** minimized schedule of the first failing seed (when shrinking) *)
}

val sweep :
  ?shrink_failures:bool ->
  ?max_shrink_runs:int ->
  ?shards:int ->
  env ->
  seeds:int list ->
  sweep_result
(** Run [{env with seed}] for every seed; shrink the first failure
    (default on).  [shards] (default 1) runs the seeds on up to that many
    parallel domains (OCaml 5; sequential on 4.14): every run is
    self-contained, results merge in seed-list order, and [first_failure]
    is still the first failing seed of the {e list}, so the result is
    bit-identical across shard counts. *)
