module Block = Blockdev.Block

type block_state = {
  bound : (int, Block.t) Hashtbl.t;  (** version -> payload, once established *)
  written : (string, int) Hashtbl.t;  (** payloads of invoked writes -> write id *)
  mutable floor : int;  (** largest committed version: baseline + ok writes *)
  mutable floor_src : string;
  mutable max_write : int;  (** largest successful-write version *)
  mutable last_read : int;  (** largest version observed by a read; -1 = none *)
  mutable last_read_id : int;
}

let state_for states ~baseline block =
  match Hashtbl.find_opt states block with
  | Some s -> s
  | None ->
      let bound = Hashtbl.create 16 in
      let base_version, base_payload = baseline block in
      Hashtbl.replace bound 0 Block.zero;
      Hashtbl.replace bound base_version base_payload;
      let s =
        {
          bound;
          written = Hashtbl.create 16;
          floor = base_version;
          floor_src =
            (if base_version = 0 then "the initial device"
             else Printf.sprintf "the baseline state (v%d)" base_version);
          max_write = base_version;
          last_read = -1;
          last_read_id = -1;
        }
      in
      Hashtbl.replace states block s;
      s

let default_baseline _ = (0, Block.zero)

let check ?(baseline = default_baseline) history =
  let states : (int, block_state) Hashtbl.t = Hashtbl.create 16 in
  let violations = ref [] in
  let add ~block ~time code detail = violations := Violation.make ~block ~code ~time detail :: !violations in
  let prev_responded = ref neg_infinity in
  let prev_interval = ref (neg_infinity, neg_infinity) in
  let seq_reported = ref false in
  List.iter
    (fun (e : History.entry) ->
      (* Per-block views of one batched request share the request's
         [invoked, responded] interval exactly — they are one operation,
         not concurrent clients — so only genuinely different overlapping
         intervals break sequentiality. *)
      let same_batch = !prev_interval = (e.invoked, e.responded) in
      if e.invoked < !prev_responded -. 1e-9 && (not same_batch) && not !seq_reported then begin
        seq_reported := true;
        add ~block:e.block ~time:e.invoked "non-sequential-history"
          (Printf.sprintf
             "operation #%d was invoked at %.3f, before the previous response at %.3f; the oracle \
              judges sequential (single-client) histories only"
             e.id e.invoked !prev_responded)
      end;
      prev_responded := Float.max !prev_responded e.responded;
      prev_interval := (e.invoked, e.responded);
      let s = state_for states ~baseline e.block in
      match e.kind with
      | History.Write -> (
          (match e.payload with
          | Some p ->
              if not (Hashtbl.mem s.written (Block.to_string p)) then
                Hashtbl.replace s.written (Block.to_string p) e.id
          | None -> ());
          match (e.version, e.payload) with
          | Some v, Some p ->
              (match Hashtbl.find_opt s.bound v with
              | Some p' when not (Block.equal p p') ->
                  add ~block:e.block ~time:e.responded "version-collision"
                    (Printf.sprintf
                       "write #%d was assigned version %d of block %d, but that version already \
                        holds different contents — two writes were committed under one version \
                        number"
                       e.id v e.block)
              | _ -> Hashtbl.replace s.bound v p);
              if v <= s.max_write then
                add ~block:e.block ~time:e.responded "write-version-regression"
                  (Printf.sprintf
                     "write #%d of block %d was assigned version %d, not above the version %d an \
                      earlier successful write already holds — the version order no longer \
                      matches the request order"
                     e.id e.block v s.max_write);
              s.max_write <- Int.max s.max_write v;
              if v > s.floor then begin
                s.floor <- v;
                s.floor_src <- Printf.sprintf "write #%d (committed v%d at t=%.3f)" e.id v e.responded
              end
          | _ -> ())
      | History.Read -> (
          match (e.version, e.payload) with
          | Some v, Some p ->
              if v < s.floor then
                add ~block:e.block ~time:e.responded "stale-read"
                  (Printf.sprintf
                     "read #%d at site %d returned version %d of block %d, but %s had already \
                      made version %d the current copy — a one-copy device can never serve the \
                      older state again"
                     e.id e.site v e.block s.floor_src s.floor)
              else if v < s.last_read then
                add ~block:e.block ~time:e.responded "read-regression"
                  (Printf.sprintf
                     "read #%d at site %d returned version %d of block %d, but read #%d had \
                      already observed version %d — the device forgot a state it had revealed"
                     e.id e.site v e.block s.last_read_id s.last_read);
              (match Hashtbl.find_opt s.bound v with
              | Some p' ->
                  if not (Block.equal p p') then
                    add ~block:e.block ~time:e.responded "read-value-conflict"
                      (Printf.sprintf
                         "read #%d returned contents for version %d of block %d that differ from \
                          the contents previously established for that version"
                         e.id v e.block)
              | None ->
                  if Hashtbl.mem s.written (Block.to_string p) then Hashtbl.replace s.bound v p
                  else
                    add ~block:e.block ~time:e.responded "phantom-read"
                      (Printf.sprintf
                         "read #%d returned version %d of block %d with contents no write ever \
                          produced"
                         e.id v e.block));
              if v > s.last_read then begin
                s.last_read <- v;
                s.last_read_id <- e.id
              end
          | _ -> ()))
    (History.entries history);
  List.rev !violations

let first_violation ?baseline history =
  match check ?baseline history with [] -> None | v :: _ -> Some v
