type t = float

(* The single justified determinism suppression in the tree: benchmark
   harnesses read host time only through this opaque stopwatch, so the
   lint report shows exactly one audited envelope exit. *)
let now () : t =
  ((Sys.time ())
  [@lint.allow "determinism"
    "the one audited envelope exit: harness code measures wall-clock throughput through this opaque stopwatch and cannot feed host time back into protocol decisions"])

let elapsed_s t0 =
  let t1 = now () in
  if t1 > t0 then t1 -. t0 else 0.0
