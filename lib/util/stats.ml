type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable min_v : float;
  mutable max_v : float;
}

let create () = { n = 0; mean = 0.0; m2 = 0.0; min_v = infinity; max_v = neg_infinity }

let add s x =
  s.n <- s.n + 1;
  let delta = x -. s.mean in
  s.mean <- s.mean +. (delta /. float_of_int s.n);
  s.m2 <- s.m2 +. (delta *. (x -. s.mean));
  if x < s.min_v then s.min_v <- x;
  if x > s.max_v then s.max_v <- x

let count s = s.n
let mean s = if s.n = 0 then nan else s.mean
let variance s = if s.n < 2 then nan else s.m2 /. float_of_int (s.n - 1)
let stddev s = sqrt (variance s)
let min_value s = s.min_v
let max_value s = s.max_v

let confidence_interval_95 s =
  if s.n < 2 then nan else 1.96 *. stddev s /. sqrt (float_of_int s.n)

let merge a b =
  if a.n = 0 then { b with n = b.n }
  else if b.n = 0 then { a with n = a.n }
  else begin
    let n = a.n + b.n in
    let delta = b.mean -. a.mean in
    let mean = a.mean +. (delta *. float_of_int b.n /. float_of_int n) in
    let m2 =
      a.m2 +. b.m2
      +. (delta *. delta *. float_of_int a.n *. float_of_int b.n /. float_of_int n)
    in
    { n; mean; m2; min_v = Float.min a.min_v b.min_v; max_v = Float.max a.max_v b.max_v }
  end

module Timed = struct
  type t = {
    start : float;
    mutable last_time : float;
    mutable last_value : float;
    mutable accum : float;
  }

  let create ~at ~value = { start = at; last_time = at; last_value = value; accum = 0.0 }

  let update t ~at ~value =
    if at < t.last_time then invalid_arg "Stats.Timed.update: time went backwards";
    t.accum <- t.accum +. (t.last_value *. (at -. t.last_time));
    t.last_time <- at;
    t.last_value <- value

  let integral t ~upto =
    if upto < t.last_time then invalid_arg "Stats.Timed.integral: upto precedes last update";
    t.accum +. (t.last_value *. (upto -. t.last_time))

  let average t ~upto =
    let span = upto -. t.start in
    if span <= 0.0 then nan else integral t ~upto /. span
end

module Histogram = struct
  type t = {
    lo : float;
    hi : float;
    width : float;
    counts : int array;
    mutable total : int;
    mutable underflow : int;
    mutable overflow : int;
  }

  let create ~lo ~hi ~bins =
    if bins <= 0 then invalid_arg "Stats.Histogram.create: bins must be positive";
    if hi <= lo then invalid_arg "Stats.Histogram.create: hi must exceed lo";
    {
      lo;
      hi;
      width = (hi -. lo) /. float_of_int bins;
      counts = Array.make bins 0;
      total = 0;
      underflow = 0;
      overflow = 0;
    }

  (* Out-of-range samples used to be clamped into the edge bins, which
     dragged the edge quantiles toward the range limits; they are now
     tracked separately so the in-range quantiles stay faithful. *)
  let add h x =
    h.total <- h.total + 1;
    if x < h.lo then h.underflow <- h.underflow + 1
    else if x >= h.hi then h.overflow <- h.overflow + 1
    else begin
      let bins = Array.length h.counts in
      let idx = int_of_float ((x -. h.lo) /. h.width) in
      let idx = if idx >= bins then bins - 1 else idx in
      h.counts.(idx) <- h.counts.(idx) + 1
    end

  let merge a b =
    if a.lo <> b.lo || a.hi <> b.hi || Array.length a.counts <> Array.length b.counts then
      invalid_arg "Stats.Histogram.merge: incompatible geometries";
    let counts = Array.make (Array.length a.counts) 0 in
    for i = 0 to Array.length counts - 1 do
      counts.(i) <- a.counts.(i) + b.counts.(i)
    done;
    {
      lo = a.lo;
      hi = a.hi;
      width = a.width;
      counts;
      total = a.total + b.total;
      underflow = a.underflow + b.underflow;
      overflow = a.overflow + b.overflow;
    }

  let counts h = Array.copy h.counts
  let total h = h.total
  let underflow h = h.underflow
  let overflow h = h.overflow
  let in_range h = h.total - h.underflow - h.overflow

  let quantile h q =
    let n = in_range h in
    if n = 0 then nan
    else begin
      let q = Float.max 0.0 (Float.min 1.0 q) in
      let target = q *. float_of_int n in
      let rec walk i seen =
        if i >= Array.length h.counts then h.hi
        else
          let seen' = seen +. float_of_int h.counts.(i) in
          if seen' >= target && h.counts.(i) > 0 then
            let frac = (target -. seen) /. float_of_int h.counts.(i) in
            h.lo +. ((float_of_int i +. frac) *. h.width)
          else walk (i + 1) seen'
      in
      walk 0 0.0
    end
end
