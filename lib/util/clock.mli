(** Host-clock stopwatch for benchmark reporting.

    Sim-critical code must never observe host time — virtual time from
    the engine is the only clock the protocol layers may read, and the
    determinism lint ({!page-"DESIGN"} section 4f) enforces that.
    Benchmark harnesses still want to cite wall-clock throughput, so
    this module is the one audited exit from the simulation envelope:
    instants are opaque, only durations escape, and nothing here can
    leak back into protocol decisions. *)

type t
(** An opaque instant captured from the host clock. *)

val now : unit -> t
(** Capture the current host instant. *)

val elapsed_s : t -> float
(** [elapsed_s t0] is the host processor time, in seconds, spent since
    [t0] was captured.  Monotone: later calls never report less. *)
