(** Deterministic pseudo-random number generation.

    All randomness in the project flows through this module so that every
    simulation is reproducible from a single integer seed.  The generator is
    SplitMix64 (Steele, Lea & Flood, OOPSLA 2014): a small, fast, splittable
    generator with a 64-bit state and good statistical quality, more than
    adequate for driving Poisson failure processes and workload generation. *)

type t
(** A mutable generator.  Generators are cheap; use {!split} to derive
    independent streams (one per site, one per workload, ...) so that adding
    draws to one stream never perturbs another. *)

val create : int -> t
(** [create seed] returns a fresh generator.  Equal seeds yield equal
    streams.  The seed is pre-mixed through the SplitMix64 output function
    (stream version 2, see DESIGN.md): nearby seeds — in particular [s] and
    [s + 0x9E3779B97F4A7C15] — yield unrelated streams rather than shifted
    copies of the same one. *)

val derive : seed:int -> int -> int
(** [derive ~seed k] is the [k]-th derived seed of [seed]: a deterministic
    mix of both values, suitable for giving shard lane [k] (or site [k],
    replica [k], ...) its own stream.  Distinct [(seed, k)] pairs yield
    distinct, statistically independent streams; [derive ~seed k] never
    equals the stream of [create seed] itself. *)

val copy : t -> t
(** [copy g] is a generator with the same state as [g]; the two evolve
    independently afterwards. *)

val split : t -> t
(** [split g] draws once from [g] and returns a new generator whose stream is
    statistically independent of the remainder of [g]'s stream. *)

val bits64 : t -> int64
(** [bits64 g] is the next raw 64-bit output. *)

val float : t -> float
(** [float g] is uniform on [\[0, 1)], using the top 53 bits of {!bits64}. *)

val float_pos : t -> float
(** [float_pos g] is uniform on [(0, 1)]; never returns [0.], so it is safe
    as the argument of [log] when sampling exponentials. *)

val int : t -> int -> int
(** [int g bound] is uniform on [\[0, bound)].  [bound] must be positive;
    raises [Invalid_argument] otherwise. *)

val bool : t -> bool
(** [bool g] is a fair coin flip. *)

val shuffle : t -> 'a array -> unit
(** [shuffle g a] permutes [a] in place, uniformly (Fisher–Yates). *)

val pick : t -> 'a list -> 'a
(** [pick g l] is a uniformly chosen element of [l].  Raises
    [Invalid_argument] on the empty list. *)
