(** Streaming statistics.

    Availability in the paper is a *time average* (the limiting probability of
    being in an operating state), so alongside the usual sample statistics we
    provide a time-weighted accumulator for piecewise-constant signals such as
    "the replicated block is currently available". *)

(** {1 Sample statistics} *)

type t
(** Running mean/variance accumulator (Welford's algorithm: numerically
    stable, single pass). *)

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val mean : t -> float
(** [mean s] is [nan] when no samples were added. *)

val variance : t -> float
(** Unbiased sample variance; [nan] with fewer than two samples. *)

val stddev : t -> float
val min_value : t -> float
val max_value : t -> float

val confidence_interval_95 : t -> float
(** Half-width of the normal-approximation 95% confidence interval for the
    mean ([1.96 * stddev / sqrt n]); [nan] with fewer than two samples. *)

val merge : t -> t -> t
(** [merge a b] summarises the union of both sample sets (Chan et al.
    parallel combination). *)

(** {1 Time-weighted averages} *)

module Timed : sig
  type t
  (** Accumulates the time integral of a piecewise-constant real signal. *)

  val create : at:float -> value:float -> t
  (** [create ~at ~value] starts observing a signal equal to [value] at time
      [at]. *)

  val update : t -> at:float -> value:float -> unit
  (** [update t ~at ~value] records that the signal changed to [value] at
      time [at].  Raises [Invalid_argument] if [at] precedes the previous
      update (time must be non-decreasing). *)

  val average : t -> upto:float -> float
  (** [average t ~upto] is the time average of the signal on
      [\[start, upto\]].  [nan] when the window is empty. *)

  val integral : t -> upto:float -> float
  (** Time integral of the signal over the observation window. *)
end

(** {1 Histograms} *)

module Histogram : sig
  type t
  (** Fixed-width binned histogram over [\[lo, hi)].  Out-of-range samples
      are tracked in separate {!underflow}/{!overflow} counters rather than
      clamped into the edge bins (an earlier version clamped, which dragged
      the edge quantiles toward [lo]/[hi]). *)

  val create : lo:float -> hi:float -> bins:int -> t
  val add : t -> float -> unit

  val merge : t -> t -> t
  (** [merge a b] is a fresh histogram holding both sample sets; bin
      counts, totals and under/overflow add cell-wise.  Raises
      [Invalid_argument] unless both share the same [lo]/[hi]/bin
      geometry.  Merging per-shard histograms in shard-id order equals
      the unsharded histogram exactly (integer addition commutes). *)

  val counts : t -> int array

  val total : t -> int
  (** Every sample ever added, including out-of-range ones. *)

  val underflow : t -> int
  (** Samples below [lo]. *)

  val overflow : t -> int
  (** Samples at or above [hi]. *)

  val in_range : t -> int
  (** [total - underflow - overflow]: the samples the bins actually hold. *)

  val quantile : t -> float -> float
  (** [quantile h q] approximates the [q]-quantile ([0 <= q <= 1]) of the
      {e in-range} samples by linear interpolation within the containing
      bin; under/overflow samples are excluded.  [nan] when no in-range
      samples exist. *)
end
