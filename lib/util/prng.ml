type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

(* The SplitMix64 output function: two xor-shift-multiply rounds. *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* Stream version 2: the raw seed is pre-mixed through the output function
   before becoming state.  Installing it raw meant seeds [s] and
   [s + 0x9E3779B97F4A7C15] walked the same gamma lattice one step apart —
   shifted copies of one stream, exactly the collision class an arithmetic
   seed-derivation scheme (shard ids, seed sweeps) would hit. *)
let create seed = { state = mix64 (Int64.of_int seed) }

let copy g = { state = g.state }

let bits64 g =
  g.state <- Int64.add g.state golden_gamma;
  mix64 g.state

let split g = { state = bits64 g }

let derive ~seed k =
  (* The k-th derived seed of [seed]: element k of the pre-mixed root's
     gamma lattice, finalized.  Distinct (seed, k) pairs land on distinct,
     well-separated streams, so per-shard generators never collide with
     each other or with the root. *)
  Int64.to_int (mix64 (Int64.add (mix64 (Int64.of_int seed)) (Int64.mul (Int64.of_int k) golden_gamma)))

let float g =
  (* 53 uniform bits scaled into [0,1). *)
  let bits = Int64.shift_right_logical (bits64 g) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let rec float_pos g =
  let u = float g in
  if u > 0.0 then u else float_pos g

let int g bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection sampling on the high bits to avoid modulo bias. *)
  let rec draw () =
    let r = Int64.to_int (Int64.shift_right_logical (bits64 g) 2) in
    let v = r mod bound in
    if r - v + (bound - 1) >= 0 then v else draw ()
  in
  draw ()

let bool g = Int64.logand (bits64 g) 1L = 1L

let shuffle g a =
  for i = Array.length a - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick g l =
  match l with
  | [] -> invalid_arg "Prng.pick: empty list"
  | _ -> List.nth l (int g (List.length l))
