module Make (Dev : Blockdev.Device_intf.S) = struct
  type entry = { data : Blockdev.Block.t; mutable last_used : int }

  type t = {
    dev : Dev.t;
    capacity : int;
    entries : (Blockdev.Block.id, entry) Hashtbl.t;
    mutable clock : int;
    mutable hits : int;
    mutable misses : int;
  }

  let create ~capacity dev =
    if capacity <= 0 then invalid_arg "Buffer_cache.create: capacity must be positive";
    { dev; capacity; entries = Hashtbl.create capacity; clock = 0; hits = 0; misses = 0 }

  let device t = t.dev
  let capacity t = t.capacity
  let device_capacity t = Dev.capacity t.dev

  let touch t entry =
    t.clock <- t.clock + 1;
    entry.last_used <- t.clock

  let evict_if_full t =
    if Hashtbl.length t.entries >= t.capacity then begin
      (* LRU by linear scan: cache capacities are small and this keeps the
         structure trivially correct. *)
      let victim =
        Hashtbl.fold
          (fun k e acc ->
            match acc with
            | Some (_, oldest) when oldest <= e.last_used -> acc
            | _ -> Some (k, e.last_used))
          t.entries None
      in
      match victim with Some (k, _) -> Hashtbl.remove t.entries k | None -> ()
    end

  let install t k data =
    match Hashtbl.find_opt t.entries k with
    | Some entry ->
        touch t entry;
        Hashtbl.replace t.entries k { entry with data }
    | None ->
        evict_if_full t;
        t.clock <- t.clock + 1;
        Hashtbl.replace t.entries k { data; last_used = t.clock }

  let read_block t k =
    match Hashtbl.find_opt t.entries k with
    | Some entry ->
        t.hits <- t.hits + 1;
        touch t entry;
        Some entry.data
    | None -> (
        t.misses <- t.misses + 1;
        match Dev.read_block t.dev k with
        | Some data ->
            install t k data;
            Some data
        | None -> None)

  let write_block t k data =
    (* Write-through: the device is the source of truth; only cache what
       the device accepted. *)
    if Dev.write_block t.dev k data then begin
      install t k data;
      true
    end
    else false

  let hits t = t.hits
  let misses t = t.misses

  let hit_rate t =
    let total = t.hits + t.misses in
    if total = 0 then nan else float_of_int t.hits /. float_of_int total

  let cached_blocks t = Hashtbl.length t.entries
  let flush t = Hashtbl.reset t.entries
end
