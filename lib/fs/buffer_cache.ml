type policy = Write_through | Write_back

module Make_batched (Dev : Blockdev.Device_intf.BATCHED) = struct
  type entry = { mutable data : Blockdev.Block.t; mutable last_used : int; mutable dirty : bool }

  type t = {
    dev : Dev.t;
    capacity : int;
    policy : policy;
    entries : (Blockdev.Block.id, entry) Hashtbl.t;
    scheduler : (float -> (unit -> unit) -> unit) option;
    window : float;
    mutable window_armed : bool;
    mutable flushing : bool;
    mutable clock : int;
    mutable hits : int;
    mutable misses : int;
    mutable write_backs : int;
    mutable blocks_written_back : int;
    mutable lost_updates : int;
  }

  let create ?(policy = Write_through) ?scheduler ?(window = 0.0) ~capacity dev =
    if capacity <= 0 then invalid_arg "Buffer_cache.create: capacity must be positive";
    if window < 0.0 then invalid_arg "Buffer_cache.create: window must be non-negative";
    {
      dev;
      capacity;
      policy;
      entries = Hashtbl.create capacity;
      scheduler;
      window;
      window_armed = false;
      flushing = false;
      clock = 0;
      hits = 0;
      misses = 0;
      write_backs = 0;
      blocks_written_back = 0;
      lost_updates = 0;
    }

  let device t = t.dev
  let capacity t = t.capacity
  let device_capacity t = Dev.capacity t.dev
  let policy t = t.policy

  let touch t entry =
    t.clock <- t.clock + 1;
    entry.last_used <- t.clock

  (* ---------------------------------------------------------------- *)
  (* Write-back machinery                                              *)
  (* ---------------------------------------------------------------- *)

  let dirty_set t =
    Hashtbl.fold (fun k e acc -> if e.dirty then (k, e.data) :: acc else acc) t.entries []
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

  let dirty_blocks t =
    (Hashtbl.fold (fun _ e acc -> if e.dirty then acc + 1 else acc) t.entries 0
    [@lint.allow "hashtbl-order" "pure count: integer addition is commutative, so the result cannot depend on iteration order"])

  (* Commit a group of dirty blocks.  The whole group goes down in one
     batched device request; if the device rejects it — a quorum lost
     mid-rotation can fail some blocks' round and not others' — the
     group is split in half and each half retried, so every block that
     {e can} commit does, and the failure is narrowed to the blocks
     that genuinely cannot.  An entry is marked clean only if it still
     holds exactly the data that went down (a client may overwrite a
     block while its flush is in flight on the simulated wire). *)
  let rec write_back t writes =
    match writes with
    | [] -> true
    | _ ->
        t.write_backs <- t.write_backs + 1;
        t.blocks_written_back <- t.blocks_written_back + List.length writes;
        let ok =
          match writes with
          | [ (k, d) ] -> Dev.write_block t.dev k d
          | _ -> Dev.write_blocks t.dev writes
        in
        if ok then begin
          List.iter
            (fun (k, d) ->
              match Hashtbl.find_opt t.entries k with
              | Some e when e.data == d -> e.dirty <- false
              | Some _ | None -> ())
            writes;
          true
        end
        else begin
          match writes with
          | [ _ ] -> false
          | _ ->
              let n = List.length writes / 2 in
              let left = List.filteri (fun i _ -> i < n) writes in
              let right = List.filteri (fun i _ -> i >= n) writes in
              (* Attempt both halves even if the first fails: commit
                 whatever the device will take. *)
              let l = write_back t left in
              let r = write_back t right in
              l && r
        end

  let flush t =
    if t.flushing then true
    else begin
      t.flushing <- true;
      let ok = write_back t (dirty_set t) in
      t.flushing <- false;
      ok
    end

  let arm_window t =
    match t.scheduler with
    | Some schedule when t.window > 0.0 && not t.window_armed ->
        t.window_armed <- true;
        schedule t.window (fun () ->
            t.window_armed <- false;
            ignore (flush t : bool))
    | Some _ | None -> ()

  (* ---------------------------------------------------------------- *)
  (* LRU with dirty-aware eviction                                     *)
  (* ---------------------------------------------------------------- *)

  let evict_if_full t =
    if Hashtbl.length t.entries >= t.capacity then begin
      (* LRU by linear scan: cache capacities are small and this keeps
         the structure trivially correct.  Clean frames are preferred —
         reclaiming one is free; only when every frame is dirty is the
         LRU dirty block written back (exactly once) to make room. *)
      let oldest pred =
        (* Minimum by (last_used, key): the key tie-break makes the
           winner independent of hash iteration order even when two
           frames were touched on the same tick. *)
        (Hashtbl.fold
           (fun k e acc ->
             if not (pred e) then acc
             else
               match acc with
               | Some (k', u') when u' < e.last_used || (u' = e.last_used && k' < k) -> acc
               | _ -> Some (k, e.last_used))
           t.entries None
        [@lint.allow "hashtbl-order"
          "commutative min-reduction over (last_used, key); the total tie-break keeps the result iteration-order independent"])
      in
      match oldest (fun e -> not e.dirty) with
      | Some (k, _) -> Hashtbl.remove t.entries k
      | None -> (
          match oldest (fun _ -> true) with
          | Some (k, _) -> (
              match Hashtbl.find_opt t.entries k with
              | Some e ->
                  if write_back t [ (k, e.data) ] then Hashtbl.remove t.entries k
                  (* Device refused: keep the dirty block (dropping it
                     would lose the update) and overflow capacity by one
                     frame until a later flush succeeds. *)
              | None -> ())
          | None -> ())
    end

  let install t k data ~dirty =
    match Hashtbl.find_opt t.entries k with
    | Some entry ->
        touch t entry;
        entry.data <- data;
        entry.dirty <- entry.dirty || dirty
    | None ->
        evict_if_full t;
        t.clock <- t.clock + 1;
        Hashtbl.replace t.entries k { data; last_used = t.clock; dirty }

  (* ---------------------------------------------------------------- *)
  (* The device interface                                              *)
  (* ---------------------------------------------------------------- *)

  let read_block t k =
    match Hashtbl.find_opt t.entries k with
    | Some entry ->
        t.hits <- t.hits + 1;
        touch t entry;
        Some entry.data
    | None -> (
        t.misses <- t.misses + 1;
        match Dev.read_block t.dev k with
        | Some data ->
            install t k data ~dirty:false;
            Some data
        | None -> None)

  let write_block t k data =
    match t.policy with
    | Write_through ->
        (* The device is the source of truth; only cache what it
           accepted. *)
        if Dev.write_block t.dev k data then begin
          install t k data ~dirty:false;
          true
        end
        else false
    | Write_back ->
        (* The cache absorbs the write; the device sees it at the next
           flush (or when the coalescing window closes).  Only range
           errors are detectable now — availability errors surface at
           flush time. *)
        if k < 0 || k >= Dev.capacity t.dev then false
        else begin
          install t k data ~dirty:true;
          arm_window t;
          true
        end

  (* ---------------------------------------------------------------- *)
  (* Introspection                                                     *)
  (* ---------------------------------------------------------------- *)

  let hits t = t.hits
  let misses t = t.misses

  let hit_rate t =
    let total = t.hits + t.misses in
    if total = 0 then nan else float_of_int t.hits /. float_of_int total

  let cached_blocks t = Hashtbl.length t.entries
  let write_backs t = t.write_backs
  let blocks_written_back t = t.blocks_written_back
  let lost_updates t = t.lost_updates

  let invalidate t =
    t.lost_updates <- t.lost_updates + dirty_blocks t;
    Hashtbl.reset t.entries
end

module Make (Dev : Blockdev.Device_intf.S) = Make_batched (Blockdev.Device_intf.Batched_of_simple (Dev))
