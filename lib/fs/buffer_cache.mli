(** A write-through LRU buffer cache over any block device.

    Figure 1 of the paper has the file system consult its buffer cache
    before the device driver; only misses reach the (possibly replicated)
    device.  This functor reproduces that layer: it implements the same
    {!Blockdev.Device_intf.S} it consumes, so it can be slotted between
    [Fs.Flat_fs] and a [Blockrep.Reliable_device] — cutting the voting
    scheme's per-read quorum traffic by exactly the hit rate.

    Policy: write-through (every write goes to the device immediately, the
    cache is never dirty), LRU eviction. *)

module Make (Dev : Blockdev.Device_intf.S) : sig
  type t

  val create : capacity:int -> Dev.t -> t
  (** [create ~capacity dev] caches up to [capacity] blocks of [dev];
      [capacity] must be positive. *)

  val device : t -> Dev.t

  include Blockdev.Device_intf.S with type t := t
  (** [capacity] is the cache's {e configured} capacity (the [~capacity]
      given to {!create}), not the underlying device's block count — an
      early version delegated to [Dev.capacity] by accident (the functor
      argument shadowed the field).  For the device's addressable size use
      {!device_capacity}. *)

  val device_capacity : t -> int
  (** [Dev.capacity] of the underlying device. *)

  val hits : t -> int
  val misses : t -> int

  val hit_rate : t -> float
  (** Fraction of reads served from the cache; [nan] before any read. *)

  val cached_blocks : t -> int

  val flush : t -> unit
  (** Forget everything (e.g. after direct writes to the underlying
      device by another client). *)
end
