(** An LRU buffer cache over any block device — write-through by
    default, with an opt-in write-back (group commit) mode.

    Figure 1 of the paper has the file system consult its buffer cache
    before the device driver; only misses reach the (possibly replicated)
    device.  This functor reproduces that layer: it implements the same
    {!Blockdev.Device_intf.S} it consumes, so it can be slotted between
    [Fs.Flat_fs] and a [Blockrep.Reliable_device] — cutting the voting
    scheme's per-read quorum traffic by exactly the hit rate.

    {b Write-through} (the default) sends every write to the device
    immediately; the cache is never dirty and a crash loses nothing.
    This mode is bit-identical to the historical behaviour.

    {b Write-back} absorbs writes into the cache and commits the dirty
    set later — on {!flush}, when a dirty frame must be evicted, or when
    the configured coalescing window closes.  Over a batched device the
    whole dirty set rides {e one} group request (one quorum round and
    one update multicast under voting), which is the group-commit
    amortization the bench measures.  The price is the classic one: a
    crash before the flush (modelled by {!invalidate}) silently loses
    the absorbed updates — see {!lost_updates}. *)

(** When writes reach the device. *)
type policy = Write_through | Write_back

(** The cache over a natively batched device: dirty sets flush as one
    group request. *)
module Make_batched (Dev : Blockdev.Device_intf.BATCHED) : sig
  type t

  val create :
    ?policy:policy ->
    ?scheduler:(float -> (unit -> unit) -> unit) ->
    ?window:float ->
    capacity:int ->
    Dev.t ->
    t
  (** [create ~capacity dev] caches up to [capacity] blocks of [dev];
      [capacity] must be positive.  [policy] defaults to
      [Write_through].  Under [Write_back], a non-zero [window] arms a
      coalescing timer on the first dirtying write: [scheduler delay k]
      must run [k] after [delay] units of virtual time (pass a closure
      over [Sim.Engine.schedule]; the cache takes a scheduler rather
      than an engine so [fs] stays independent of [sim]).  Writes
      landing within the window coalesce into one batched flush when it
      closes.  With no scheduler the dirty set grows until an explicit
      {!flush} or a capacity eviction. *)

  val device : t -> Dev.t

  include Blockdev.Device_intf.S with type t := t
  (** [capacity] is the cache's {e configured} capacity (the [~capacity]
      given to {!create}), not the underlying device's block count — an
      early version delegated to [Dev.capacity] by accident (the functor
      argument shadowed the field).  For the device's addressable size use
      {!device_capacity}.

      Under [Write_back], [write_block] only fails on out-of-range ids:
      availability errors surface at flush time, not write time. *)

  val device_capacity : t -> int
  (** [Dev.capacity] of the underlying device. *)

  val policy : t -> policy

  val flush : t -> bool
  (** Commit every dirty block to the device as one batched group
      request, eldest block id first.  If the device rejects the group
      (e.g. quorum lost for some blocks mid-rotation), the batch is
      split in half and each half retried recursively, so every block
      that can commit does.  Returns [true] when the cache is entirely
      clean afterwards.  Idempotent: a second call with nothing dirty
      issues no device requests.  Under [Write_through] this is a no-op
      returning [true]. *)

  val invalidate : t -> unit
  (** Forget everything {e without} writing anything back — after direct
      writes to the underlying device by another client, or to model a
      crash of the caching host.  Dirty blocks present at the time are
      counted in {!lost_updates}: under [Write_back] their updates are
      silently lost, which is precisely the durability cost group
      commit trades for its message savings. *)

  val dirty_blocks : t -> int
  (** Currently dirty (absorbed, not yet committed) blocks. *)

  val hits : t -> int
  val misses : t -> int

  val hit_rate : t -> float
  (** Fraction of reads served from the cache; [nan] before any read. *)

  val cached_blocks : t -> int

  val write_backs : t -> int
  (** Device write requests issued by the cache (each batched group —
      including each half of a split — counts once). *)

  val blocks_written_back : t -> int
  (** Total blocks carried by those requests; [blocks_written_back /.
      write_backs] is the realised flush batch size. *)

  val lost_updates : t -> int
  (** Dirty blocks dropped by {!invalidate} over the cache's lifetime. *)
end

(** The cache over a plain device, batched by looping (no wire
    amortization, identical semantics). *)
module Make (Dev : Blockdev.Device_intf.S) : sig
  include module type of Make_batched (Blockdev.Device_intf.Batched_of_simple (Dev))
end
