type summary = {
  label : string;
  requests : int;
  site_attempts : int;
  failovers : int;
  retries : int;
  succeeded : int;
  recovered : int;
  timeouts : int;
  gave_up : int;
  rejected : int;
  drops : int;
  duplicates : int;
  reorders : int;
  delayed : int;
  jittered : int;
  last_errors : (float * string) list;
}

let collect ?(label = "device") device =
  let d = Blockrep.Reliable_device.degradation device in
  let drops, duplicates, reorders, delayed, jittered =
    match Blockrep.Cluster.faults (Blockrep.Reliable_device.cluster device) with
    | None -> (0, 0, 0, 0, 0)
    | Some f ->
        ( Net.Faults.drops f,
          Net.Faults.duplicates f,
          Net.Faults.reorders f,
          Net.Faults.delayed f,
          Net.Faults.jittered f )
  in
  {
    label;
    requests = d.Blockrep.Reliable_device.requests;
    site_attempts = d.site_attempts;
    failovers = d.failovers;
    retries = d.retries;
    succeeded = d.succeeded;
    recovered = d.recovered;
    timeouts = d.timeouts;
    gave_up = d.gave_up;
    rejected = d.rejected;
    drops;
    duplicates;
    reorders;
    delayed;
    jittered;
    last_errors = d.last_errors;
  }

let header =
  Printf.sprintf "%-18s %8s %8s %8s %8s %8s %8s %8s %6s %6s %6s %5s %5s %5s %6s" "label" "requests"
    "attempts" "failover" "retries" "ok" "recover" "timeout" "gaveup" "reject" "drops" "dups"
    "reord" "delay" "jitter"

let print_row ppf s =
  Format.fprintf ppf "%-18s %8d %8d %8d %8d %8d %8d %8d %6d %6d %6d %5d %5d %5d %6d" s.label
    s.requests s.site_attempts s.failovers s.retries s.succeeded s.recovered s.timeouts s.gave_up
    s.rejected s.drops s.duplicates s.reorders s.delayed s.jittered

let print ppf ?(errors = false) rows =
  Format.fprintf ppf "@[<v>%s@," header;
  List.iter
    (fun s ->
      print_row ppf s;
      Format.fprintf ppf "@,";
      if errors then
        List.iter
          (fun (at, msg) -> Format.fprintf ppf "    t=%-10.3f %s@," at msg)
          (List.rev s.last_errors))
    rows;
  Format.fprintf ppf "@]"

let csv_rows rows =
  "label,requests,site_attempts,failovers,retries,succeeded,recovered,timeouts,gave_up,rejected,drops,duplicates,reorders,delayed,jittered"
  :: List.map
       (fun s ->
         String.concat ","
           [
             s.label;
             string_of_int s.requests;
             string_of_int s.site_attempts;
             string_of_int s.failovers;
             string_of_int s.retries;
             string_of_int s.succeeded;
             string_of_int s.recovered;
             string_of_int s.timeouts;
             string_of_int s.gave_up;
             string_of_int s.rejected;
             string_of_int s.drops;
             string_of_int s.duplicates;
             string_of_int s.reorders;
             string_of_int s.delayed;
             string_of_int s.jittered;
           ])
       rows
