type site_load = {
  site : int;
  served : int;
  queue_shed : int;
  depth_p50 : float;
  depth_p99 : float;
  sojourn_mean : float;
  sojourn_max : float;
}

type summary = {
  label : string;
  requests : int;
  site_attempts : int;
  failovers : int;
  retries : int;
  succeeded : int;
  recovered : int;
  timeouts : int;
  gave_up : int;
  rejected : int;
  shed : int;
  hedged : int;
  hedge_wins : int;
  breaker_trips : int;
  messages_shed : int;
  drops : int;
  duplicates : int;
  reorders : int;
  delayed : int;
  jittered : int;
  corrupted : int;
  frames_rejected : int;
  rejects : (Net.Message.reject * int) list;
  frames_quarantined : int;
  frames_retransmitted : int;
  quarantine_trips : int;
  corrupt_survived : int;
  wire_conserved : bool;
  sites : site_load list;
  last_errors : (float * string) list;
}

let site_loads cluster =
  let n = Blockrep.Cluster.n_sites cluster in
  List.filter_map
    (fun site ->
      match Blockrep.Cluster.server cluster site with
      | None -> None
      | Some srv ->
          let depth = Sim.Server.depth_histogram srv in
          let sojourn = Sim.Server.sojourn srv in
          Some
            {
              site;
              served = Sim.Server.served srv;
              queue_shed = Sim.Server.shed srv;
              depth_p50 = Util.Stats.Histogram.quantile depth 0.5;
              depth_p99 = Util.Stats.Histogram.quantile depth 0.99;
              sojourn_mean = Util.Stats.mean sojourn;
              sojourn_max = Util.Stats.max_value sojourn;
            })
    (List.init n Fun.id)

let collect ?(label = "device") device =
  let d = Blockrep.Reliable_device.degradation device in
  let cluster = Blockrep.Reliable_device.cluster device in
  let drops, duplicates, reorders, delayed, jittered =
    match Blockrep.Cluster.faults cluster with
    | None -> (0, 0, 0, 0, 0)
    | Some f ->
        ( Net.Faults.drops f,
          Net.Faults.duplicates f,
          Net.Faults.reorders f,
          Net.Faults.delayed f,
          Net.Faults.jittered f )
  in
  {
    label;
    requests = d.Blockrep.Reliable_device.requests;
    site_attempts = d.site_attempts;
    failovers = d.failovers;
    retries = d.retries;
    succeeded = d.succeeded;
    recovered = d.recovered;
    timeouts = d.timeouts;
    gave_up = d.gave_up;
    rejected = d.rejected;
    shed = d.shed;
    hedged = d.hedged;
    hedge_wins = d.hedge_wins;
    breaker_trips = d.breaker_trips;
    messages_shed = d.messages_shed;
    drops;
    duplicates;
    reorders;
    delayed;
    jittered;
    corrupted = d.corrupted_deliveries;
    frames_rejected = d.frames_rejected;
    rejects =
      List.map
        (fun r ->
          (r, Net.Traffic.rejected_of (Blockrep.Cluster.traffic cluster) r))
        Net.Message.all_rejects;
    frames_quarantined = d.frames_quarantined;
    frames_retransmitted = d.frames_retransmitted;
    quarantine_trips = d.quarantine_trips;
    corrupt_survived = d.corrupt_survived;
    wire_conserved = Blockrep.Reliable_device.wire_conserved d;
    sites = site_loads cluster;
    last_errors = d.last_errors;
  }

let header =
  Printf.sprintf
    "%-18s %8s %8s %8s %8s %8s %8s %8s %6s %6s %5s %6s %6s %5s %7s %6s %5s %5s %5s %6s %7s %6s %6s %5s"
    "label" "requests" "attempts" "failover" "retries" "ok" "recover" "timeout" "gaveup" "reject"
    "shed" "hedged" "hwins" "trips" "msgshed" "drops" "dups" "reord" "delay" "jitter" "corrupt"
    "frej" "fquar" "retx"

let print_row ppf s =
  Format.fprintf ppf
    "%-18s %8d %8d %8d %8d %8d %8d %8d %6d %6d %5d %6d %6d %5d %7d %6d %5d %5d %5d %6d %7d %6d %6d %5d"
    s.label s.requests s.site_attempts s.failovers s.retries s.succeeded s.recovered s.timeouts
    s.gave_up s.rejected s.shed s.hedged s.hedge_wins s.breaker_trips s.messages_shed s.drops
    s.duplicates s.reorders s.delayed s.jittered s.corrupted s.frames_rejected
    s.frames_quarantined s.frames_retransmitted

(* nan quantiles/means (no samples yet) print as a dash, not "nan". *)
let pf v = if Float.is_nan v then "-" else Printf.sprintf "%.3f" v

let print_site_row ppf l =
  Format.fprintf ppf "    site %-3d %8d served %6d shed  depth p50/p99 %s/%s  sojourn mean/max %s/%s"
    l.site l.served l.queue_shed (pf l.depth_p50) (pf l.depth_p99) (pf l.sojourn_mean)
    (pf l.sojourn_max)

let print ppf ?(errors = false) rows =
  Format.fprintf ppf "@[<v>%s@," header;
  List.iter
    (fun s ->
      print_row ppf s;
      Format.fprintf ppf "@,";
      List.iter
        (fun l ->
          print_site_row ppf l;
          Format.fprintf ppf "@,")
        s.sites;
      if errors then
        List.iter
          (fun (at, msg) -> Format.fprintf ppf "    t=%-10.3f %s@," at msg)
          (List.rev s.last_errors))
    rows;
  Format.fprintf ppf "@]"

let csv_rows rows =
  "label,requests,site_attempts,failovers,retries,succeeded,recovered,timeouts,gave_up,rejected,\
   shed,hedged,hedge_wins,breaker_trips,messages_shed,drops,duplicates,reorders,delayed,jittered,\
   corrupted,frames_rejected,reject_truncated,reject_bad_magic,reject_trailing,reject_crc,\
   reject_bad_tag,reject_malformed,frames_quarantined,frames_retransmitted,quarantine_trips,\
   corrupt_survived,wire_conserved"
  :: List.map
       (fun s ->
         let reject r =
           string_of_int (try List.assoc r s.rejects with Not_found -> 0)
         in
         String.concat ","
           [
             s.label;
             string_of_int s.requests;
             string_of_int s.site_attempts;
             string_of_int s.failovers;
             string_of_int s.retries;
             string_of_int s.succeeded;
             string_of_int s.recovered;
             string_of_int s.timeouts;
             string_of_int s.gave_up;
             string_of_int s.rejected;
             string_of_int s.shed;
             string_of_int s.hedged;
             string_of_int s.hedge_wins;
             string_of_int s.breaker_trips;
             string_of_int s.messages_shed;
             string_of_int s.drops;
             string_of_int s.duplicates;
             string_of_int s.reorders;
             string_of_int s.delayed;
             string_of_int s.jittered;
             string_of_int s.corrupted;
             string_of_int s.frames_rejected;
             reject Net.Message.Reject_truncated;
             reject Net.Message.Reject_bad_magic;
             reject Net.Message.Reject_trailing;
             reject Net.Message.Reject_crc;
             reject Net.Message.Reject_bad_tag;
             reject Net.Message.Reject_malformed;
             string_of_int s.frames_quarantined;
             string_of_int s.frames_retransmitted;
             string_of_int s.quarantine_trips;
             string_of_int s.corrupt_survived;
             (if s.wire_conserved then "1" else "0");
           ])
       rows

let site_csv_rows rows =
  "label,site,served,queue_shed,depth_p50,depth_p99,sojourn_mean,sojourn_max"
  :: List.concat_map
       (fun s ->
         List.map
           (fun l ->
             String.concat ","
               [
                 s.label;
                 string_of_int l.site;
                 string_of_int l.served;
                 string_of_int l.queue_shed;
                 Printf.sprintf "%.6f" l.depth_p50;
                 Printf.sprintf "%.6f" l.depth_p99;
                 Printf.sprintf "%.6f" l.sojourn_mean;
                 Printf.sprintf "%.6f" l.sojourn_max;
               ])
           s.sites)
       rows
