(** Tabular rendering of chaos sweeps (see {!Check.Chaos}): one row per
    environment, a PASS/FAIL verdict, CSV export, and a detailed dump of
    the first failing seed with its shrunken, replayable schedule. *)

type row = {
  label : string;
  seeds : int;
  failing : int;  (** seeds with at least one violation *)
  violations : int;  (** total violations across the sweep *)
  ops_ok : int;
  ops_failed : int;
  faults : int;  (** message faults injected across the sweep *)
  storage_faults : int;
      (** media faults injected across the sweep: torn writes + bitrot +
          disk replacements *)
}

val row_of_sweep : label:string -> Check.Chaos.sweep_result -> row
val header : string
val print_row : Format.formatter -> row -> unit
val print : Format.formatter -> row list -> unit

val csv_rows : row list -> string list
(** Header line included. *)

val print_failure : Format.formatter -> Check.Chaos.sweep_result -> unit
(** The first failing seed's violations (up to 8) and, when available, the
    shrunken schedule that still reproduces one. *)
