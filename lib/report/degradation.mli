(** Reporting of the reliable device's degradation statistics.

    The fault-injection studies need the same answer in three shapes: a
    structured record (for assertions), an aligned text table (for the CLI
    and examples) and CSV (for external plotting).  One {!summary} row per
    device, combining the stub's request/failover counters, the retry
    layer's degradation counts, the robustness stack's overload counters
    (shed, hedged, breaker trips), per-site work-queue load and the
    network injector's per-category fault totals. *)

type site_load = {
  site : int;
  served : int;  (** jobs whose service completed at this site *)
  queue_shed : int;  (** submissions refused on a full queue *)
  depth_p50 : float;  (** median queue depth seen at submission *)
  depth_p99 : float;
  sojourn_mean : float;  (** mean wait-plus-service time *)
  sojourn_max : float;
}
(** Per-site work-queue load, present only when the cluster runs a
    service model; quantiles and means are [nan] (printed as a dash)
    before any sample. *)

type summary = {
  label : string;
  requests : int;
  site_attempts : int;
  failovers : int;
  retries : int;
  succeeded : int;
  recovered : int;
  timeouts : int;
  gave_up : int;
  rejected : int;
  shed : int;  (** operations refused at device admission *)
  hedged : int;  (** reads that issued a hedge *)
  hedge_wins : int;  (** hedges that answered first *)
  breaker_trips : int;  (** closed-to-open breaker transitions *)
  messages_shed : int;  (** protocol messages lost to full queues *)
  drops : int;
  duplicates : int;
  reorders : int;
  delayed : int;
  jittered : int;
  corrupted : int;  (** deliveries the injector byte-damaged *)
  frames_rejected : int;  (** ingress decode refusals, all classes *)
  rejects : (Net.Message.reject * int) list;  (** per-class breakdown *)
  frames_quarantined : int;  (** discarded undecoded under quarantine *)
  frames_retransmitted : int;  (** link-layer redeliveries *)
  quarantine_trips : int;
  corrupt_survived : int;  (** corrupted frames that still decoded *)
  wire_conserved : bool;
      (** the ingress conservation identity held: corrupted =
          caught + quarantined + survived *)
  sites : site_load list;  (** empty without a service model *)
  last_errors : (float * string) list;
}

val collect : ?label:string -> Blockrep.Reliable_device.t -> summary
(** Snapshot a device's degradation state; fault counters are zero when no
    injector is installed, robustness counters zero when the stack is off. *)

val print : Format.formatter -> ?errors:bool -> summary list -> unit
(** Aligned table, one row per summary, with per-site load sub-rows when a
    service model is installed; [errors] (default false) appends each
    row's recent-error window. *)

val csv_rows : summary list -> string list
(** Header line plus one CSV line per summary, for {!Csv.write_file}. *)

val site_csv_rows : summary list -> string list
(** Header line plus one CSV line per (summary, site-load) pair. *)
