(** Reporting of the reliable device's degradation statistics.

    The fault-injection studies need the same answer in three shapes: a
    structured record (for assertions), an aligned text table (for the CLI
    and examples) and CSV (for external plotting).  One {!summary} row per
    device, combining the stub's request/failover counters, the retry
    layer's degradation counts and the network injector's per-category
    fault totals. *)

type summary = {
  label : string;
  requests : int;
  site_attempts : int;
  failovers : int;
  retries : int;
  succeeded : int;
  recovered : int;
  timeouts : int;
  gave_up : int;
  rejected : int;
  drops : int;
  duplicates : int;
  reorders : int;
  delayed : int;
  jittered : int;
  last_errors : (float * string) list;
}

val collect : ?label:string -> Blockrep.Reliable_device.t -> summary
(** Snapshot a device's degradation state; fault counters are zero when no
    injector is installed. *)

val print : Format.formatter -> ?errors:bool -> summary list -> unit
(** Aligned table, one row per summary; [errors] (default false) appends
    each row's recent-error window. *)

val csv_rows : summary list -> string list
(** Header line plus one CSV line per summary, for {!Csv.write_file}. *)
