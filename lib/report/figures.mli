(** Regeneration of every evaluation artifact in the paper.

    Each [figure_*] function computes the series behind the corresponding
    figure — analytic model, exact Markov solution and (optionally)
    event-driven simulation — and [print_*] renders them as aligned text
    tables.  The bench harness and the CLI both call these, so the numbers
    in EXPERIMENTS.md are regenerable with one command. *)

type availability_row = {
  rho : float;
  voting : float;  (** A_V(2n), = A_V(2n-1) *)
  ac_closed : float;  (** A_A(n), paper's closed form *)
  ac_chain : float;  (** A_A(n), Figure 7 chain *)
  nac_closed : float;  (** A_NA(n), closed form *)
  nac_chain : float;  (** A_NA(n), Figure 8 chain *)
  ac_sim : float option;
  nac_sim : float option;
  voting_sim : float option;
}

val figure_9_10 :
  n_copies:int -> ?rhos:float list -> ?simulate:bool -> ?sim_horizon:float -> unit -> availability_row list
(** Figure 9 is [n_copies = 3] (voting uses 6 copies), Figure 10 is
    [n_copies = 4] (voting uses 8).  Default ρ grid: 0.00 to 0.20 in steps
    of 0.02.  [simulate] (default false) adds event-driven measurements. *)

type traffic_row = {
  n_sites : int;
  voting_x1 : float;
  voting_x2 : float;
  voting_x4 : float;  (** voting cost for 1 write + x reads, x = 1, 2, 4 *)
  ac : float;  (** read traffic is zero, so x does not matter *)
  nac : float;
  ac_sim : float option;  (** measured at x = 2 *)
  nac_sim : float option;
  voting_x2_sim : float option;
}

val figure_11 : ?rho:float -> ?sites:int list -> ?simulate:bool -> unit -> traffic_row list
(** Multicast environment, ρ = 0.05, n from 2 to 10 by default. *)

val figure_12 : ?rho:float -> ?sites:int list -> ?simulate:bool -> unit -> traffic_row list
(** Unique-address environment. *)

type identity_row = { label : string; lhs : float; rhs : float; holds : bool }

val identity_checks : ?rhos:float list -> unit -> identity_row list
(** The analytic claims of Section 4: A_V(2k) = A_V(2k-1); A_NA(2) = A_V(3);
    closed forms (2)-(4) vs the chain; the bound (5); Theorem 4.1 at each
    grid point; U_V^n closed form vs the chain. *)

(** {1 Group-commit amortization}

    Not a paper figure: the measured payoff of the batched write path
    (one vote round + one update multicast per batch), per scheme and
    batch size.  The batch-1 row is the unbatched baseline. *)

type amortization_row = {
  batch : int;
  per_scheme : (Blockrep.Types.scheme * Workload.Experiment.amortization_sample) list;
}

val amortization_table :
  ?n_sites:int ->
  ?env:Net.Network.mode ->
  ?schemes:Blockrep.Types.scheme list ->
  ?batches:int list ->
  ?groups:int ->
  ?seed:int ->
  unit ->
  amortization_row list
(** Defaults: 5 sites, multicast, voting + AC + NAC, batches 1/4/16/64,
    100 groups per point. *)

val print_amortization : Format.formatter -> title:string -> amortization_row list -> unit

val print_availability : Format.formatter -> title:string -> availability_row list -> unit
val print_traffic : Format.formatter -> title:string -> traffic_row list -> unit
val print_identities : Format.formatter -> identity_row list -> unit
