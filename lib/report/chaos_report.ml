type row = {
  label : string;
  seeds : int;
  failing : int;
  violations : int;
  ops_ok : int;
  ops_failed : int;
  faults : int;
  storage_faults : int;
}

let row_of_sweep ~label (r : Check.Chaos.sweep_result) =
  let fold f = List.fold_left (fun acc s -> acc + f s) 0 r.summaries in
  {
    label;
    seeds = List.length r.summaries;
    failing = List.length r.failing;
    violations = fold (fun (s : Check.Chaos.run_summary) -> s.run_violations);
    ops_ok = fold (fun s -> s.run_ops_ok);
    ops_failed = fold (fun s -> s.run_ops_failed);
    faults = fold (fun s -> s.run_faults);
    storage_faults = fold (fun s -> s.run_storage_faults);
  }

let header =
  Printf.sprintf "%-22s %6s %8s %11s %8s %8s %8s %8s %8s" "environment" "seeds" "failing"
    "violations" "ops-ok" "ops-fail" "faults" "media" "verdict"

let print_row ppf r =
  Format.fprintf ppf "%-22s %6d %8d %11d %8d %8d %8d %8d %8s" r.label r.seeds r.failing r.violations
    r.ops_ok r.ops_failed r.faults r.storage_faults
    (if r.failing = 0 then "PASS" else "FAIL")

let print ppf rows =
  Format.fprintf ppf "@[<v>%s@," header;
  List.iter (fun r -> Format.fprintf ppf "%a@," print_row r) rows;
  Format.fprintf ppf "@]"

let csv_header = "environment,seeds,failing,violations,ops_ok,ops_failed,faults,storage_faults"

let csv_row r =
  Printf.sprintf "%s,%d,%d,%d,%d,%d,%d,%d" r.label r.seeds r.failing r.violations r.ops_ok
    r.ops_failed r.faults r.storage_faults

let csv_rows rows = csv_header :: List.map csv_row rows

let print_failure ppf (r : Check.Chaos.sweep_result) =
  match r.first_failure with
  | None -> Format.fprintf ppf "no failing seed@."
  | Some (seed, outcome) ->
      Format.fprintf ppf "@[<v>seed %d: %d violation(s)@," seed
        (List.length (Check.Chaos.violations outcome));
      List.iteri
        (fun i v -> if i < 8 then Format.fprintf ppf "  %a@," Check.Violation.pp v)
        (Check.Chaos.violations outcome);
      (match r.shrunk with
      | None -> ()
      | Some (schedule, shrunk_outcome) ->
          Format.fprintf ppf "shrunken schedule (%d of %d events still failing):@,"
            (List.length schedule)
            (List.length outcome.Check.Chaos.schedule);
          Format.fprintf ppf "%a@," Check.Chaos.pp_schedule schedule;
          (match Check.Chaos.violations shrunk_outcome with
          | v :: _ -> Format.fprintf ppf "  reproduces: %a@," Check.Violation.pp v
          | [] -> ()));
      Format.fprintf ppf "@]"
