type availability_row = {
  rho : float;
  voting : float;
  ac_closed : float;
  ac_chain : float;
  nac_closed : float;
  nac_chain : float;
  ac_sim : float option;
  nac_sim : float option;
  voting_sim : float option;
}

let default_rhos = List.init 11 (fun i -> 0.02 *. float_of_int i)

let simulate_availability scheme ~n_sites ~rho ~horizon =
  if rho <= 0.0 then 1.0
  else
    (Workload.Experiment.measure_availability ~scheme ~n_sites ~rho ~horizon ()).availability

let figure_9_10 ~n_copies ?(rhos = default_rhos) ?(simulate = false) ?(sim_horizon = 50_000.0) () =
  if n_copies < 2 then invalid_arg "Figures.figure_9_10: need at least two copies";
  let voting_n = 2 * n_copies in
  let row rho =
    let nac_closed = if rho = 0.0 then 1.0 else Analysis.Nac_model.availability ~n:n_copies ~rho in
    let sim scheme n = if simulate then Some (simulate_availability scheme ~n_sites:n ~rho ~horizon:sim_horizon) else None in
    {
      rho;
      voting = Analysis.Voting_model.availability ~n:voting_n ~rho;
      ac_closed = Analysis.Ac_model.availability ~n:n_copies ~rho;
      ac_chain = Markov.Chains.ac_availability ~n:n_copies ~rho;
      nac_closed;
      nac_chain = Markov.Chains.nac_availability ~n:n_copies ~rho;
      ac_sim = sim Blockrep.Types.Available_copy n_copies;
      nac_sim = sim Blockrep.Types.Naive_available_copy n_copies;
      voting_sim = sim Blockrep.Types.Voting voting_n;
    }
  in
  List.map row rhos

type traffic_row = {
  n_sites : int;
  voting_x1 : float;
  voting_x2 : float;
  voting_x4 : float;
  ac : float;
  nac : float;
  ac_sim : float option;
  nac_sim : float option;
  voting_x2_sim : float option;
}

let default_sites = [ 2; 3; 4; 5; 6; 7; 8; 9; 10 ]

let traffic_figure env net_env ?(rho = 0.05) ?(sites = default_sites) ?(simulate = false) () =
  let open Analysis.Traffic_model in
  let row n =
    let cost scheme x = workload_cost env scheme ~n ~rho ~reads_per_write:x in
    let sim scheme =
      if simulate then
        Some
          (Workload.Experiment.measure_traffic ~scheme ~n_sites:n ~env:net_env ~reads_per_write:2.0 ())
            .messages_per_write_group
      else None
    in
    {
      n_sites = n;
      voting_x1 = cost Voting 1.0;
      voting_x2 = cost Voting 2.0;
      voting_x4 = cost Voting 4.0;
      ac = cost Available_copy 2.0;
      nac = cost Naive_available_copy 2.0;
      ac_sim = sim Blockrep.Types.Available_copy;
      nac_sim = sim Blockrep.Types.Naive_available_copy;
      voting_x2_sim = sim Blockrep.Types.Voting;
    }
  in
  List.map row sites

let figure_11 ?rho ?sites ?simulate () =
  traffic_figure Analysis.Traffic_model.Multicast Net.Network.Multicast ?rho ?sites ?simulate ()

let figure_12 ?rho ?sites ?simulate () =
  traffic_figure Analysis.Traffic_model.Unique_address Net.Network.Unicast ?rho ?sites ?simulate ()

type identity_row = { label : string; lhs : float; rhs : float; holds : bool }

let close a b = Float.abs (a -. b) <= 1e-9 +. (1e-6 *. Float.max (Float.abs a) (Float.abs b))

let identity_checks ?(rhos = [ 0.01; 0.05; 0.1; 0.2; 0.5; 1.0 ]) () =
  let rows = ref [] in
  let push label lhs rhs holds = rows := { label; lhs; rhs; holds } :: !rows in
  List.iter
    (fun rho ->
      (* A_V(2k) = A_V(2k-1) for k = 2, 3, 4. *)
      List.iter
        (fun k ->
          let lhs = Analysis.Voting_model.availability ~n:(2 * k) ~rho in
          let rhs = Analysis.Voting_model.availability ~n:((2 * k) - 1) ~rho in
          push (Printf.sprintf "A_V(%d)=A_V(%d) @ rho=%.2f" (2 * k) ((2 * k) - 1) rho) lhs rhs
            (close lhs rhs))
        [ 2; 3; 4 ];
      (* A_NA(2) = A_V(3). *)
      let lhs = Analysis.Nac_model.availability ~n:2 ~rho in
      let rhs = Analysis.Voting_model.availability ~n:3 ~rho in
      push (Printf.sprintf "A_NA(2)=A_V(3) @ rho=%.2f" rho) lhs rhs (close lhs rhs);
      (* Closed forms (2)-(4) vs the Figure 7 chain. *)
      List.iter
        (fun n ->
          let lhs =
            match Analysis.Ac_model.availability_closed ~n ~rho with Some a -> a | None -> nan
          in
          let rhs = Markov.Chains.ac_availability ~n ~rho in
          push (Printf.sprintf "eq(%d): A_A(%d) closed=chain @ rho=%.2f" n n rho) lhs rhs (close lhs rhs))
        [ 2; 3; 4 ];
      (* Lower bound (5). *)
      List.iter
        (fun n ->
          let a = Markov.Chains.ac_availability ~n ~rho in
          let bound = Analysis.Ac_model.lower_bound ~n ~rho in
          push (Printf.sprintf "bound(5): A_A(%d) > 1-n rho^n/(1+rho)^n @ rho=%.2f" n rho) a bound
            (a > bound))
        [ 2; 3; 4; 5; 6 ];
      (* Theorem 4.1 for rho <= 1. *)
      if rho <= 1.0 then
        List.iter
          (fun n ->
            let a_ac = Markov.Chains.ac_availability ~n ~rho in
            let a_v = Analysis.Voting_model.availability ~n:((2 * n) - 1) ~rho in
            push (Printf.sprintf "thm4.1: A_A(%d) > A_V(%d) @ rho=%.2f" n ((2 * n) - 1) rho) a_ac a_v
              (a_ac > a_v))
          [ 2; 3; 4; 5 ];
      (* U_V closed form vs chain. *)
      List.iter
        (fun n ->
          let lhs = Analysis.Voting_model.participation ~n ~rho in
          let rhs = Markov.Chains.voting_participation ~n ~rho in
          push (Printf.sprintf "U_V(%d) closed=chain @ rho=%.2f" n rho) lhs rhs (close lhs rhs))
        [ 3; 5; 7 ])
    rhos;
  List.rev !rows

let pp_opt ppf = function None -> Format.fprintf ppf "%9s" "-" | Some v -> Format.fprintf ppf "%9.5f" v

let print_availability ppf ~title rows =
  Format.fprintf ppf "@[<v>%s@," title;
  Format.fprintf ppf "%5s %9s %9s %9s %9s %9s %9s %9s %9s@," "rho" "A_V" "A_A" "A_A.mc" "A_NA"
    "A_NA.mc" "A_A.sim" "A_NA.sim" "A_V.sim";
  List.iter
    (fun r ->
      Format.fprintf ppf "%5.2f %9.5f %9.5f %9.5f %9.5f %9.5f %a %a %a@," r.rho r.voting r.ac_closed
        r.ac_chain r.nac_closed r.nac_chain pp_opt r.ac_sim pp_opt r.nac_sim pp_opt r.voting_sim)
    rows;
  Format.fprintf ppf "@]"

let print_traffic ppf ~title rows =
  Format.fprintf ppf "@[<v>%s@," title;
  Format.fprintf ppf "%3s %9s %9s %9s %9s %9s %9s %9s %9s@," "n" "V(x=1)" "V(x=2)" "V(x=4)" "AC" "NAC"
    "AC.sim" "NAC.sim" "V2.sim";
  List.iter
    (fun r ->
      Format.fprintf ppf "%3d %9.3f %9.3f %9.3f %9.3f %9.3f %a %a %a@," r.n_sites r.voting_x1
        r.voting_x2 r.voting_x4 r.ac r.nac pp_opt r.ac_sim pp_opt r.nac_sim pp_opt r.voting_x2_sim)
    rows;
  Format.fprintf ppf "@]"

let print_identities ppf rows =
  Format.fprintf ppf "@[<v>Analytic identities and theorems (Section 4/5)@,";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-55s %12.8f %12.8f  %s@," r.label r.lhs r.rhs
        (if r.holds then "ok" else "VIOLATED"))
    rows;
  let failed = List.length (List.filter (fun r -> not r.holds) rows) in
  Format.fprintf ppf "%d checks, %d violated@]" (List.length rows) failed

(* --- group-commit amortization (the PR's perf target, not a paper figure) --- *)

type amortization_row = {
  batch : int;
  per_scheme : (Blockrep.Types.scheme * Workload.Experiment.amortization_sample) list;
}

let amortization_table ?(n_sites = 5) ?(env = Net.Network.Multicast)
    ?(schemes = [ Blockrep.Types.Voting; Blockrep.Types.Available_copy; Blockrep.Types.Naive_available_copy ])
    ?(batches = [ 1; 4; 16; 64 ]) ?(groups = 100) ?(seed = 31) () =
  List.map
    (fun batch ->
      {
        batch;
        per_scheme =
          List.map
            (fun scheme ->
              ( scheme,
                Workload.Experiment.measure_batch_amortization ~scheme ~n_sites ~env ~batch
                  ~groups ~seed () ))
            schemes;
      })
    batches

let print_amortization ppf ~title rows =
  Format.fprintf ppf "@[<v>%s@," title;
  (match rows with
  | [] -> ()
  | first :: _ ->
      Format.fprintf ppf "%5s" "batch";
      List.iter
        (fun (scheme, _) ->
          let tag =
            match scheme with
            | Blockrep.Types.Voting -> "V"
            | Blockrep.Types.Available_copy -> "AC"
            | Blockrep.Types.Naive_available_copy -> "NAC"
            | Blockrep.Types.Dynamic_voting -> "DV"
          in
          Format.fprintf ppf " %11s %11s %12s" (tag ^ ".msg/blk") (tag ^ ".KB/blk") (tag ^ ".us/blk"))
        first.per_scheme;
      Format.fprintf ppf "@,";
      List.iter
        (fun row ->
          Format.fprintf ppf "%5d" row.batch;
          List.iter
            (fun (_, s) ->
              Format.fprintf ppf " %11.3f %11.3f %12.2f"
                s.Workload.Experiment.messages_per_block
                (s.Workload.Experiment.bytes_per_block /. 1024.0)
                (s.Workload.Experiment.wall_clock_per_block *. 1e6))
            row.per_scheme;
          Format.fprintf ppf "@,")
        rows);
  Format.fprintf ppf "@]"
