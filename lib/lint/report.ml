(* Rendering: a human report grouped by file, and a JSON document for
   the CI artifact.  Suppressed findings are listed with their
   justifications — a suppression is a visible, reviewed decision, not
   a way to make a finding disappear. *)

type summary = {
  total : int;
  unsuppressed : int;
  suppressed : int;
  by_rule : (string * int) list; (* unsuppressed counts, every rule listed *)
}

let summarize findings =
  let unsuppressed = List.filter (fun f -> not (Finding.suppressed f)) findings in
  let by_rule =
    List.map
      (fun rule ->
        (rule, List.length (List.filter (fun (f : Finding.t) -> f.Finding.rule = rule) unsuppressed)))
      Config.rule_ids
  in
  {
    total = List.length findings;
    unsuppressed = List.length unsuppressed;
    suppressed = List.length findings - List.length unsuppressed;
    by_rule;
  }

let clean findings = (summarize findings).unsuppressed = 0

(* An unreadable .cmt is an analysis failure, not a code finding: CI
   must be able to tell "the tree is dirty" (exit 1) from "the linter
   could not do its job" (exit 2). *)
let internal_error findings =
  List.exists
    (fun (f : Finding.t) -> f.Finding.rule = Config.rule_internal && not (Finding.suppressed f))
    findings

let pp_human ppf findings =
  let s = summarize findings in
  let active = List.filter (fun f -> not (Finding.suppressed f)) findings in
  let quiet = List.filter Finding.suppressed findings in
  if active <> [] then begin
    Format.fprintf ppf "Findings:@.";
    List.iter (fun f -> Format.fprintf ppf "  %s@." (Finding.to_string f)) active
  end;
  if quiet <> [] then begin
    Format.fprintf ppf "Suppressed (each carries a reviewed justification):@.";
    List.iter (fun f -> Format.fprintf ppf "  %s@." (Finding.to_string f)) quiet
  end;
  Format.fprintf ppf "blockrep-lint: %d finding%s (%d unsuppressed, %d suppressed)@." s.total
    (if s.total = 1 then "" else "s")
    s.unsuppressed s.suppressed;
  if s.unsuppressed > 0 then begin
    Format.fprintf ppf "by rule:";
    List.iter (fun (r, n) -> if n > 0 then Format.fprintf ppf " %s=%d" r n) s.by_rule;
    Format.fprintf ppf "@."
  end

let to_json findings =
  let s = summarize findings in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n  \"version\": 1,\n  \"summary\": {";
  Buffer.add_string b
    (Printf.sprintf "\"total\": %d, \"unsuppressed\": %d, \"suppressed\": %d, \"by_rule\": {"
       s.total s.unsuppressed s.suppressed);
  List.iteri
    (fun i (r, n) ->
      if i > 0 then Buffer.add_string b ", ";
      Buffer.add_string b (Printf.sprintf "\"%s\": %d" (Finding.json_escape r) n))
    s.by_rule;
  Buffer.add_string b "}},\n  \"findings\": [\n";
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_string b ",\n";
      Buffer.add_string b "    ";
      Buffer.add_string b (Finding.to_json f))
    findings;
  Buffer.add_string b "\n  ]\n}\n";
  Buffer.contents b

(* SARIF 2.1.0, the exchange format GitHub code scanning ingests: each
   finding becomes a [result] with a physical location, suppressed
   findings carry a [suppressions] entry (code scanning then shows them
   as reviewed rather than open), and the rule metadata comes from
   [Config.rule_descriptions].  Hand-rendered like [to_json]: the
   subset we emit is small and a JSON library is not worth a
   dependency. *)
let to_sarif findings =
  let e = Finding.json_escape in
  let b = Buffer.create 8192 in
  Buffer.add_string b
    "{\n\
    \  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n\
    \  \"version\": \"2.1.0\",\n\
    \  \"runs\": [\n\
    \    {\n\
    \      \"tool\": {\n\
    \        \"driver\": {\n\
    \          \"name\": \"blockrep-lint\",\n\
    \          \"informationUri\": \"https://example.invalid/blockrep\",\n\
    \          \"rules\": [\n";
  List.iteri
    (fun i rule ->
      if i > 0 then Buffer.add_string b ",\n";
      let desc =
        match List.assoc_opt rule Config.rule_descriptions with
        | Some d -> d
        | None -> rule
      in
      Buffer.add_string b
        (Printf.sprintf
           "            {\"id\": \"%s\", \"shortDescription\": {\"text\": \"%s\"}}" (e rule)
           (e desc)))
    Config.rule_ids;
  Buffer.add_string b "\n          ]\n        }\n      },\n      \"results\": [\n";
  List.iteri
    (fun i (f : Finding.t) ->
      if i > 0 then Buffer.add_string b ",\n";
      let suppressions =
        match f.Finding.justification with
        | None -> "\"suppressions\": []"
        | Some j ->
            Printf.sprintf
              "\"suppressions\": [{\"kind\": \"inSource\", \"justification\": \"%s\"}]" (e j)
      in
      Buffer.add_string b
        (Printf.sprintf
           "        {\"ruleId\": \"%s\", \"level\": \"error\", \"message\": {\"text\": \"%s\"}, \
            \"locations\": [{\"physicalLocation\": {\"artifactLocation\": {\"uri\": \"%s\"}, \
            \"region\": {\"startLine\": %d, \"startColumn\": %d}}}], %s}"
           (e f.Finding.rule) (e f.Finding.message) (e f.Finding.pos.Finding.file)
           (max 1 f.Finding.pos.Finding.line)
           (f.Finding.pos.Finding.col + 1)
           suppressions))
    findings;
  Buffer.add_string b "\n      ]\n    }\n  ]\n}\n";
  Buffer.contents b
