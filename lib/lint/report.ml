(* Rendering: a human report grouped by file, and a JSON document for
   the CI artifact.  Suppressed findings are listed with their
   justifications — a suppression is a visible, reviewed decision, not
   a way to make a finding disappear. *)

type summary = {
  total : int;
  unsuppressed : int;
  suppressed : int;
  by_rule : (string * int) list; (* unsuppressed counts, every rule listed *)
}

let summarize findings =
  let unsuppressed = List.filter (fun f -> not (Finding.suppressed f)) findings in
  let by_rule =
    List.map
      (fun rule ->
        (rule, List.length (List.filter (fun (f : Finding.t) -> f.Finding.rule = rule) unsuppressed)))
      Config.rule_ids
  in
  {
    total = List.length findings;
    unsuppressed = List.length unsuppressed;
    suppressed = List.length findings - List.length unsuppressed;
    by_rule;
  }

let clean findings = (summarize findings).unsuppressed = 0

let pp_human ppf findings =
  let s = summarize findings in
  let active = List.filter (fun f -> not (Finding.suppressed f)) findings in
  let quiet = List.filter Finding.suppressed findings in
  if active <> [] then begin
    Format.fprintf ppf "Findings:@.";
    List.iter (fun f -> Format.fprintf ppf "  %s@." (Finding.to_string f)) active
  end;
  if quiet <> [] then begin
    Format.fprintf ppf "Suppressed (each carries a reviewed justification):@.";
    List.iter (fun f -> Format.fprintf ppf "  %s@." (Finding.to_string f)) quiet
  end;
  Format.fprintf ppf "blockrep-lint: %d finding%s (%d unsuppressed, %d suppressed)@." s.total
    (if s.total = 1 then "" else "s")
    s.unsuppressed s.suppressed;
  if s.unsuppressed > 0 then begin
    Format.fprintf ppf "by rule:";
    List.iter (fun (r, n) -> if n > 0 then Format.fprintf ppf " %s=%d" r n) s.by_rule;
    Format.fprintf ppf "@."
  end

let to_json findings =
  let s = summarize findings in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n  \"version\": 1,\n  \"summary\": {";
  Buffer.add_string b
    (Printf.sprintf "\"total\": %d, \"unsuppressed\": %d, \"suppressed\": %d, \"by_rule\": {"
       s.total s.unsuppressed s.suppressed);
  List.iteri
    (fun i (r, n) ->
      if i > 0 then Buffer.add_string b ", ";
      Buffer.add_string b (Printf.sprintf "\"%s\": %d" (Finding.json_escape r) n))
    s.by_rule;
  Buffer.add_string b "}},\n  \"findings\": [\n";
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_string b ",\n";
      Buffer.add_string b "    ";
      Buffer.add_string b (Finding.to_json f))
    findings;
  Buffer.add_string b "\n  ]\n}\n";
  Buffer.contents b
