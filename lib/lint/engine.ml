(* Pass 2: the per-unit rule engine.

   One [Tast_iterator] walk per compilation unit, carrying three pieces
   of mutable context: the active [@lint.allow] suppressions (scoped to
   the attributed expression / binding / whole module), a sorted-context
   depth (inside an argument of List.sort & friends, unordered Hashtbl
   iteration is fine — the sort launders the order away), and the
   finding accumulator.  Cross-module knowledge comes from the pass-1
   [Tables.t]. *)

open Typedtree

type allow = { a_rule : string; a_just : string }

type ctx = {
  cfg : Config.t;
  tables : Tables.t;
  unit_name : string;
  library : string;
  mutable allows : allow list;
  mutable sorted : int;
  mutable expr_depth : int; (* 0 = structural position (module-level binding) *)
  bindings : (string, Typedtree.expression) Hashtbl.t;
      (* Ident.unique_name -> defining expression, for every let binding
         seen so far in this unit.  The domain-capture pass resolves
         captured local functions through this to analyse *their*
         captures instead of rejecting every closure outright. *)
  mutable out : Finding.t list;
}

let emit ctx ~loc rule message =
  let justification =
    List.find_map (fun a -> if a.a_rule = rule then Some a.a_just else None) ctx.allows
  in
  ctx.out <-
    Finding.make ~rule ~pos:(Finding.pos_of_location loc) ~unit_name:ctx.unit_name
      ~library:ctx.library ~message ~justification
    :: ctx.out

(* ------------------------------------------------------------------ *)
(* [@lint.allow "rule" "justification"] parsing                        *)
(* ------------------------------------------------------------------ *)

let string_const (e : Parsetree.expression) =
  match e.pexp_desc with Pexp_constant (Pconst_string (s, _, _)) -> Some s | _ -> None

(* Returns the suppressions this attribute list contributes.  A
   malformed or justification-less allow contributes nothing — the
   finding it was meant to hide still fires — and is itself reported
   under the "lint-allow" rule. *)
let parse_allows ctx (attrs : Parsetree.attributes) =
  List.filter_map
    (fun (attr : Parsetree.attribute) ->
      if attr.attr_name.txt <> "lint.allow" then None
      else
        let loc = attr.attr_loc in
        match attr.attr_payload with
        | PStr [ { pstr_desc = Pstr_eval (e, _); _ } ] -> (
            match e.pexp_desc with
            | Pexp_apply (f, [ (Nolabel, arg) ]) -> (
                match (string_const f, string_const arg) with
                | Some rule, Some just ->
                    if not (List.mem rule Config.rule_ids) then begin
                      emit ctx ~loc Config.rule_allow
                        (Printf.sprintf "[@lint.allow] names unknown rule %S" rule);
                      None
                    end
                    else if String.trim just = "" then begin
                      emit ctx ~loc Config.rule_allow
                        (Printf.sprintf "[@lint.allow %S] has an empty justification" rule);
                      None
                    end
                    else Some { a_rule = rule; a_just = just }
                | _ ->
                    emit ctx ~loc Config.rule_allow
                      "[@lint.allow] expects two string literals: a rule name and a justification";
                    None)
            | Pexp_constant (Pconst_string (rule, _, _)) ->
                emit ctx ~loc Config.rule_allow
                  (Printf.sprintf
                     "[@lint.allow %S] is missing the mandatory justification string" rule);
                None
            | _ ->
                emit ctx ~loc Config.rule_allow
                  "[@lint.allow] expects two string literals: a rule name and a justification";
                None)
        | _ ->
            emit ctx ~loc Config.rule_allow
              "[@lint.allow] expects a payload of two string literals";
            None)
    attrs

let with_allows ctx allows f =
  match allows with
  | [] -> f ()
  | _ ->
      let saved = ctx.allows in
      ctx.allows <- allows @ saved;
      Fun.protect ~finally:(fun () -> ctx.allows <- saved) f

(* ------------------------------------------------------------------ *)
(* Type classification for the poly-compare rule                       *)
(* ------------------------------------------------------------------ *)

let head_constr_name ctx ty =
  match Types.get_desc ty with
  | Types.Tconstr (p, _, _) -> Some (Syms.canonical ~unit_name:ctx.unit_name (Path.name p))
  | _ -> None

let is_tree_backed name =
  Syms.has_suffix ~suffix:"Int_set.t" name
  || Syms.has_suffix ~suffix:".Set.t" name
  || Syms.has_suffix ~suffix:".Map.t" name
  || (let re = "Set.Make" in
      let contains hay needle =
        let n = String.length needle in
        let rec at i = i + n <= String.length hay && (String.sub hay i n = needle || at (i + 1)) in
        at 0
      in
      contains name re || contains name "Map.Make")

(* Why is structural comparison at this type dangerous?  [None] when it
   is fine (or unknowable, e.g. still polymorphic). *)
let classify_compared_type ctx ty =
  let visited = Hashtbl.create 16 in
  let rec go depth ty =
    if depth > 64 then None
    else
      let id = Types.get_id ty in
      if Hashtbl.mem visited id then None
      else begin
        Hashtbl.add visited id ();
        match Types.get_desc ty with
        | Types.Tarrow _ -> Some "the compared type contains a function"
        | Types.Ttuple l -> List.find_map (go (depth + 1)) l
        | Types.Tpoly (t', _) -> go (depth + 1) t'
        | Types.Tconstr (p, args, _) -> (
            let name = Syms.canonical ~unit_name:ctx.unit_name (Path.name p) in
            if List.mem name ctx.cfg.Config.message_types then
              Some (Printf.sprintf "%s is a wire-message type (add a field and every structural comparison silently changes meaning)" name)
            else
              match Tables.closure_carrier ctx.tables name with
              | Some field ->
                  Some
                    (Printf.sprintf "%s carries a closure (field/constructor %s): structural comparison raises at runtime" name field)
              | None ->
                  if is_tree_backed name then
                    Some
                      (Printf.sprintf "%s is a balanced-tree set/map: structural equality depends on construction history, use the module's equal/compare" name)
                  else if
                    List.exists
                      (fun prefix -> Syms.has_prefix ~prefix name)
                      ctx.cfg.Config.suspicious_prefixes
                    && not (Tables.is_pure_enum ctx.tables name)
                  then
                    Some
                      (Printf.sprintf "%s is a protocol type not provably a pure enum: use a dedicated equality" name)
                  else List.find_map (go (depth + 1)) args)
        | _ -> None
      end
  in
  go 0 ty

(* First argument type of a (possibly partially applied) comparison
   ident: for ['a -> 'a -> int] and friends, the ['a] instantiation. *)
let first_arg_type ty =
  match Types.get_desc ty with Types.Tarrow (_, arg, _, _) -> Some arg | _ -> None

let result_type ty =
  let rec go depth ty =
    if depth > 16 then ty
    else match Types.get_desc ty with Types.Tarrow (_, _, r, _) -> go (depth + 1) r | _ -> ty
  in
  go 0 ty

let is_list_type ty =
  match Types.get_desc ty with
  | Types.Tconstr (p, _, _) -> (
      match Syms.split_path (Path.name p) with
      | [ "list" ] | [ "Stdlib"; "list" ] -> true
      | _ -> false)
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Ident classification                                                *)
(* ------------------------------------------------------------------ *)

let poly_compare_idents =
  [ "="; "<>"; "compare"; "min"; "max"; "List.mem"; "List.assoc"; "List.mem_assoc" ]

let partiality_idents = [ "List.hd"; "List.tl"; "Option.get"; "failwith" ]

let hashtbl_unordered =
  [ "Hashtbl.fold"; "Hashtbl.iter"; "Hashtbl.to_seq"; "Hashtbl.to_seq_keys"; "Hashtbl.to_seq_values" ]

let sort_idents =
  [ "List.sort"; "List.stable_sort"; "List.fast_sort"; "List.sort_uniq"; "Array.sort"; "Array.stable_sort" ]

let banned_determinism name =
  name = "Sys.time"
  || Syms.has_prefix ~prefix:"Unix." name
  || name = "Random.self_init"
  || name = "Random.State.make_self_init"
  || (Syms.has_prefix ~prefix:"Random." name && not (Syms.has_prefix ~prefix:"Random.State." name))

let rec head_ident (e : expression) =
  match e.exp_desc with
  | Texp_ident (p, _, _) -> Some p
  | Texp_apply (f, _) -> head_ident f
  | _ -> None

let canonical_head ctx e =
  Option.map (fun p -> Syms.canonical ~unit_name:ctx.unit_name (Path.name p)) (head_ident e)

(* ------------------------------------------------------------------ *)
(* Pattern helpers (GADT-polymorphic over value/computation patterns)  *)
(* ------------------------------------------------------------------ *)

let rec is_catch_all : type k. k general_pattern -> bool =
 fun p ->
  match Compat.pat_alias_inner p with
  | Some q -> is_catch_all q
  | None -> (
      match p.pat_desc with
      | Tpat_any -> true
      | Tpat_var _ -> true
      | Tpat_value v -> is_catch_all (v :> value general_pattern)
      | Tpat_or (a, b, _) -> is_catch_all a || is_catch_all b
      | _ -> false)

let rec iter_pattern_ctors : type k. (Types.constructor_description -> unit) -> k general_pattern -> unit =
 fun f p ->
  match Compat.pat_alias_inner p with
  | Some q -> iter_pattern_ctors f q
  | None -> (
      match p.pat_desc with
      | Tpat_construct (_, cd, args, _) ->
          f cd;
          List.iter (iter_pattern_ctors f) args
      | Tpat_or (a, b, _) ->
          iter_pattern_ctors f a;
          iter_pattern_ctors f b
      | Tpat_value v -> iter_pattern_ctors f (v :> value general_pattern)
      | Tpat_exception q -> iter_pattern_ctors f q
      | Tpat_tuple l | Tpat_array l -> List.iter (iter_pattern_ctors f) l
      | Tpat_record (fields, _) -> List.iter (fun (_, _, q) -> iter_pattern_ctors f q) fields
      | Tpat_variant (_, Some q, _) -> iter_pattern_ctors f q
      | Tpat_lazy q -> iter_pattern_ctors f q
      | _ -> ())

let is_wire_ctor ctx (cd : Types.constructor_description) =
  match head_constr_name ctx cd.cstr_res with
  | Some name -> name = ctx.cfg.Config.wire_type
  | None -> false

(* The protocol type a constructor dispatches over, if the wire rule
   watches it: the wire-message type itself or one of the codec tag
   enums.  [Syms.canonical] only qualifies bare single-segment names
   with the mentioning unit, so inside wire.ml the tag type prints as
   "Tag.t" — re-qualify with the unit before matching against the
   configured canonical spelling. *)
let dispatch_type ctx (cd : Types.constructor_description) =
  match head_constr_name ctx cd.cstr_res with
  | None -> None
  | Some name ->
      if name = ctx.cfg.Config.wire_type then Some ctx.cfg.Config.wire_type
      else
        List.find_opt
          (fun entry -> name = entry || ctx.unit_name ^ "." ^ name = entry)
          ctx.cfg.Config.tag_types

(* ------------------------------------------------------------------ *)
(* Rules on one expression node                                        *)
(* ------------------------------------------------------------------ *)

let check_ident ctx (e : expression) path =
  let name = Syms.canonical ~unit_name:ctx.unit_name (Path.name path) in
  if Config.in_scope ctx.cfg.Config.determinism_libs ctx.library && banned_determinism name then
    emit ctx ~loc:e.exp_loc Config.rule_determinism
      (Printf.sprintf
         "%s is outside the simulation envelope: virtual time and seeded Util.Prng streams are the only clocks and randomness sim-critical code may observe"
         name);
  if Config.in_scope ctx.cfg.Config.partiality_libs ctx.library && List.mem name partiality_idents
  then
    emit ctx ~loc:e.exp_loc Config.rule_partiality
      (Printf.sprintf "%s can raise in a protocol hot path: match explicitly or justify with [@lint.allow]" name);
  if
    Config.in_scope ctx.cfg.Config.hashtbl_libs ctx.library
    && List.mem name hashtbl_unordered
    && ctx.sorted = 0
  then begin
    let into_list = is_list_type (result_type e.exp_type) in
    emit ctx ~loc:e.exp_loc Config.rule_hashtbl
      (Printf.sprintf
         "%s iterates in unspecified hash order%s: sort the result (the sort may wrap this expression directly or via |>) or justify with [@lint.allow]"
         name
         (if into_list then " and its result flows into a list" else ""))
  end;
  if List.mem name poly_compare_idents then
    match Option.bind (first_arg_type e.exp_type) (classify_compared_type ctx) with
    | Some reason ->
        emit ctx ~loc:e.exp_loc Config.rule_poly_compare
          (Printf.sprintf "polymorphic %s used where %s" name reason)
    | None -> ()

let analyze_dispatch : type k. ctx -> Location.t -> k case list -> unit =
 fun ctx loc cases ->
  let ctors = Hashtbl.create 8 in (* (dispatched type, ctor name) -> () *)
  let catch_all = ref None in
  List.iter
    (fun (c : k case) ->
      iter_pattern_ctors
        (fun cd ->
          match dispatch_type ctx cd with
          | Some ty -> Hashtbl.replace ctors (ty, cd.Types.cstr_name) ()
          | None -> ())
        c.c_lhs;
      if is_catch_all c.c_lhs && Option.is_none !catch_all then catch_all := Some c.c_lhs.pat_loc)
    cases;
  ignore (loc : Location.t);
  match !catch_all with
  | None -> ()
  | Some pat_loc ->
      let per_type = Hashtbl.create 4 in
      Hashtbl.iter
        (fun (ty, _) () ->
          Hashtbl.replace per_type ty
            (1 + Option.value ~default:0 (Hashtbl.find_opt per_type ty)))
        ctors;
      (* Sorted so the reported type is deterministic when a dispatch
         somehow mixes watched types. *)
      let offending =
        Hashtbl.fold
          (fun ty n acc -> if n >= ctx.cfg.Config.dispatch_min_ctors then (ty, n) :: acc else acc)
          per_type []
        |> List.sort (fun (a, _) (b, _) -> String.compare a b)
      in
      match offending with
      | [] -> ()
      | (ty, n) :: _ ->
          emit ctx ~loc:pat_loc Config.rule_wire
            (Printf.sprintf
               "catch-all case in a wire-message dispatch (%d %s constructors matched): a new message constructor would be silently swallowed — enumerate the remaining constructors"
               n ty)

(* ------------------------------------------------------------------ *)
(* Domain-safety: capture/escape analysis at spawn points              *)
(* ------------------------------------------------------------------ *)

(* How a captured variable is touched inside a lane thunk.  The
   distinction drives which rule fires: direct access to shared mutable
   state is [domain-capture]; access routed exclusively through
   function calls may be [merge-only-sharing] (an unblessed merge
   point) or exempt (a blessed one). *)
type use_kind = Use_direct | Use_call_head | Use_call_arg of string

type use_record = { u_kind : use_kind; u_ty : Types.type_expr; u_loc : Location.t }

let is_arrow_type ty =
  let rec go depth ty =
    if depth > 16 then false
    else
      match Types.get_desc ty with
      | Types.Tarrow _ -> true
      | Types.Tpoly (t', _) -> go (depth + 1) t'
      | _ -> false
  in
  go 0 ty

(* Stdlib entry points that read or write their mutable argument in
   place: a captured Hashtbl fed to [Hashtbl.replace] is direct shared
   mutation, not a candidate merge point. *)
let direct_access_callees = [ "!"; ":="; "incr"; "decr" ]

let direct_access_prefixes =
  [ "Hashtbl."; "Buffer."; "Queue."; "Stack."; "Bytes."; "Array."; "Weak."; "Atomic."; "Ref." ]

let forces_direct name =
  List.mem name direct_access_callees
  || List.exists (fun prefix -> Syms.has_prefix ~prefix name) direct_access_prefixes

(* One traversal of [root] collecting (a) every ident the expression
   binds (patterns carry unique stamps, so an inner rebinding never
   masks a capture) and (b) every use of a [Pident] with its context.
   Free variables of [root] are exactly the uses minus the bound set. *)
let collect_fv ctx (root : expression) =
  let bound : (string, unit) Hashtbl.t = Hashtbl.create 32 in
  let uses : (string, Ident.t * use_record list ref) Hashtbl.t = Hashtbl.create 32 in
  let add_use id kind (e : expression) =
    let key = Ident.unique_name id in
    let occ = { u_kind = kind; u_ty = e.exp_type; u_loc = e.exp_loc } in
    match Hashtbl.find_opt uses key with
    | Some (_, l) -> l := occ :: !l
    | None -> Hashtbl.add uses key (id, ref [ occ ])
  in
  let default = Tast_iterator.default_iterator in
  let pat : type k. Tast_iterator.iterator -> k general_pattern -> unit =
   fun it p ->
    List.iter
      (fun id -> Hashtbl.replace bound (Ident.unique_name id) ())
      (Compat.pat_binding_idents p);
    default.Tast_iterator.pat it p
  in
  let expr it (e : expression) =
    match e.exp_desc with
    | Texp_ident (Path.Pident id, _, _) -> add_use id Use_direct e
    | Texp_apply (f, args) ->
        let callee = canonical_head ctx f in
        (match f.exp_desc with
        | Texp_ident (Path.Pident id, _, _) -> add_use id Use_call_head f
        | _ -> it.Tast_iterator.expr it f);
        List.iter
          (fun (_, arg) ->
            match arg with
            | Some ({ exp_desc = Texp_ident (Path.Pident id, _, _); _ } as ae) ->
                add_use id
                  (match callee with Some n -> Use_call_arg n | None -> Use_direct)
                  ae
            | Some a -> it.Tast_iterator.expr it a
            | None -> ())
          args
    | _ -> default.Tast_iterator.expr it e
  in
  let it = { default with Tast_iterator.expr; pat } in
  it.Tast_iterator.expr it root;
  (bound, uses)

(* Analyse one lane body.  Captured local functions are resolved
   through [ctx.bindings] and their own free variables folded into the
   same capture set (a closure shares whatever it closed over);
   unresolvable function captures are findings, because the analyzer
   cannot see what they share.  Soundness limits (aliasing, functions
   from other units, eta-expanded spawn wrappers) are documented in
   DESIGN.md section 4k. *)
let analyze_thunk ctx ~spawn_name (thunk : expression) =
  let seen : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let queue = Queue.create () in
  Queue.add (None, thunk) queue;
  while not (Queue.is_empty queue) do
    let via, root = Queue.take queue in
    let bound, uses = collect_fv ctx root in
    let free =
      Hashtbl.fold
        (fun key (id, occs) acc ->
          if Hashtbl.mem bound key then acc else (key, id, List.rev !occs) :: acc)
        uses []
      |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)
    in
    List.iter
      (fun (key, id, occs) ->
        if not (Hashtbl.mem seen key) then begin
          let name = Ident.name id in
          let chain =
            match via with
            | None -> ""
            | Some f -> Printf.sprintf " (captured via local function %s)" f
          in
          match occs with
          | [] -> ()
          | first :: _ -> (
              match Tables.mutability ctx.tables ~unit_name:ctx.unit_name first.u_ty with
              | Tables.Imm | Tables.Atomic_ok -> Hashtbl.add seen key ()
              | Tables.Mut reason ->
                  if is_arrow_type first.u_ty then begin
                    match Hashtbl.find_opt ctx.bindings key with
                    | Some bexpr ->
                        Hashtbl.add seen key ();
                        Queue.add (Some name, bexpr) queue
                    | None ->
                        Hashtbl.add seen key ();
                        emit ctx ~loc:first.u_loc Config.rule_capture
                          (Printf.sprintf
                             "lane thunk passed to %s captures the function %s%s, whose own \
                              captures the analyzer cannot see — pass a literal fun or a \
                              function defined in this unit, or justify with [@lint.allow]"
                             spawn_name name chain)
                  end
                  else begin
                    Hashtbl.add seen key ();
                    let blessed o =
                      match o.u_kind with
                      | Use_call_arg n -> List.mem n ctx.cfg.Config.merge_points
                      | _ -> false
                    in
                    if not (List.for_all blessed occs) then begin
                      let direct o =
                        match o.u_kind with
                        | Use_direct | Use_call_head -> true
                        | Use_call_arg n -> forces_direct n
                      in
                      if List.exists direct occs then
                        emit ctx ~loc:first.u_loc Config.rule_capture
                          (Printf.sprintf
                             "lane thunk passed to %s captures %s%s: %s — lanes must not \
                              share mutable state; allocate it inside the thunk \
                              (lane-fresh), use Atomic.t over immutable contents, or share \
                              only through the blessed merge points"
                             spawn_name name chain reason)
                      else begin
                        let callees =
                          List.filter_map
                            (fun o ->
                              match o.u_kind with
                              | Use_call_arg n when not (List.mem n ctx.cfg.Config.merge_points)
                                ->
                                  Some n
                              | _ -> None)
                            occs
                          |> List.sort_uniq String.compare
                        in
                        emit ctx ~loc:first.u_loc Config.rule_merge_only
                          (Printf.sprintf
                             "lane thunk passed to %s shares %s%s (%s) through %s, not a \
                              blessed merge point — bless it in Config.merge_points (see \
                              DESIGN.md section 4k) or make the state lane-local"
                             spawn_name name chain reason
                             (String.concat ", " callees))
                      end
                    end
                  end)
        end)
      free
  done

let check_spawn ctx (e : expression) =
  match e.exp_desc with
  | Texp_apply (f, args) -> (
      match canonical_head ctx f with
      | Some spawn_name when List.mem spawn_name ctx.cfg.Config.spawn_points ->
          List.iter
            (fun (_, arg) ->
              match arg with
              | Some a when is_arrow_type a.exp_type -> (
                  match a.exp_desc with
                  | Texp_ident (Path.Pident id, _, _) -> (
                      match Hashtbl.find_opt ctx.bindings (Ident.unique_name id) with
                      | Some bexpr -> analyze_thunk ctx ~spawn_name bexpr
                      | None ->
                          emit ctx ~loc:a.exp_loc Config.rule_capture
                            (Printf.sprintf
                               "opaque lane body passed to %s: the analyzer cannot see \
                                inside %s — pass a literal fun or a function defined in \
                                this unit, or justify with [@lint.allow]"
                               spawn_name (Ident.name id)))
                  | Texp_ident _ ->
                      (* A function from another unit can only close over
                         that unit's top-level state, which the
                         shared-global rule covers where it is declared. *)
                      ()
                  | _ -> analyze_thunk ctx ~spawn_name a)
              | _ -> ())
            args
      | _ -> ())
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Domain-safety: top-level mutable state                              *)
(* ------------------------------------------------------------------ *)

let check_shared_global ctx (vb : value_binding) =
  if Config.in_scope ctx.cfg.Config.shared_global_libs ctx.library then begin
    let name = match Compat.pat_bound_name vb.vb_pat with Some n -> n | None -> "_" in
    let ty = vb.vb_pat.pat_type in
    if is_arrow_type ty then begin
      (* A top-level function is code, not state — unless its right-hand
         side allocates a mutable cell the closure then hides. *)
      let rec hidden (e : expression) =
        match e.exp_desc with
        | Texp_let (_, vbs, body) ->
            List.iter
              (fun (vb' : value_binding) ->
                let ty' = vb'.vb_pat.pat_type in
                if not (is_arrow_type ty') then
                  match Tables.mutability ctx.tables ~unit_name:ctx.unit_name ty' with
                  | Tables.Imm -> ()
                  | Tables.Atomic_ok | Tables.Mut _ ->
                      emit ctx ~loc:vb'.vb_loc Config.rule_shared_global
                        (Printf.sprintf
                           "top-level function %s closes over hidden mutable state: every \
                            caller in every lane shares the same cell — thread the state \
                            explicitly or justify with [@lint.allow]"
                           name))
              vbs;
            hidden body
        | _ -> ()
      in
      hidden vb.vb_expr
    end
    else
      match Tables.mutability ctx.tables ~unit_name:ctx.unit_name ty with
      | Tables.Imm -> ()
      | Tables.Atomic_ok ->
          emit ctx ~loc:vb.vb_loc Config.rule_shared_global
            (Printf.sprintf
               "top-level atomic %s is still cross-lane shared state: updates interleave \
                nondeterministically across lanes — make it lane-local and merge, or \
                justify with [@lint.allow]"
               name)
      | Tables.Mut reason ->
          emit ctx ~loc:vb.vb_loc Config.rule_shared_global
            (Printf.sprintf
               "top-level mutable state %s (%s) in a sim-critical library: a single value \
                shared by every lane breaks determinism and domain-safety — make it \
                lane-local (plus a blessed merge) or justify with [@lint.allow]"
               name reason)
  end

let check_expr ctx (e : expression) =
  (match e.exp_desc with Texp_ident (p, _, _) -> check_ident ctx e p | _ -> ());
  check_spawn ctx e;
  if Config.in_scope ctx.cfg.Config.partiality_libs ctx.library && Compat.is_assert_false e then
    emit ctx ~loc:e.exp_loc Config.rule_partiality
      "assert false in a protocol hot path: make the case unrepresentable or justify with [@lint.allow]";
  match e.exp_desc with
  | Texp_match (_, cases, _) -> analyze_dispatch ctx e.exp_loc cases
  | _ -> (
      match Compat.function_cases e with
      | Some cases -> analyze_dispatch ctx e.exp_loc cases
      | None -> ())

(* ------------------------------------------------------------------ *)
(* Charging-function verification (wire-exhaustiveness, part 1)        *)
(* ------------------------------------------------------------------ *)

let check_charging ctx (vb : value_binding) value_name =
  match Compat.function_cases vb.vb_expr with
  | None ->
      emit ctx ~loc:vb.vb_loc Config.rule_wire
        (Printf.sprintf
           "charging function %s is not a direct function-by-cases: the linter cannot verify that every wire constructor is charged to exactly one traffic category"
           value_name)
  | Some cases ->
      let charged : (string, string) Hashtbl.t = Hashtbl.create 32 in
      let ok = ref true in
      List.iter
        (fun (c : value case) ->
          if is_catch_all c.c_lhs then begin
            ok := false;
            emit ctx ~loc:c.c_lhs.pat_loc Config.rule_wire
              (Printf.sprintf
                 "catch-all case in charging function %s: a new wire constructor would silently inherit a default traffic category instead of failing the build"
                 value_name)
          end
          else begin
            let names = ref [] in
            iter_pattern_ctors
              (fun cd -> if is_wire_ctor ctx cd then names := cd.Types.cstr_name :: !names)
              c.c_lhs;
            match c.c_rhs.exp_desc with
            | Texp_construct (_, cat, []) ->
                List.iter (fun n -> Hashtbl.add charged n cat.Types.cstr_name) !names
            | _ ->
                ok := false;
                emit ctx ~loc:c.c_rhs.exp_loc Config.rule_wire
                  (Printf.sprintf
                     "charging function %s: case result is not a constant category constructor, so the constructor-to-category mapping cannot be statically verified"
                     value_name)
          end)
        cases;
      if !ok then
        match Tables.variant_ctors ctx.tables ctx.cfg.Config.wire_type with
        | None -> () (* wire type declaration not among the scanned units *)
        | Some all ->
            List.iter
              (fun ctor ->
                match Hashtbl.find_all charged ctor with
                | [] ->
                    emit ctx ~loc:vb.vb_loc Config.rule_wire
                      (Printf.sprintf "charging function %s: wire constructor %s is not charged to any traffic category"
                         value_name ctor)
                | [ _ ] -> ()
                | cats ->
                    emit ctx ~loc:vb.vb_loc Config.rule_wire
                      (Printf.sprintf
                         "charging function %s: wire constructor %s is charged %d times (%s)"
                         value_name ctor (List.length cats) (String.concat ", " cats)))
              all

(* ------------------------------------------------------------------ *)
(* The iterator                                                        *)
(* ------------------------------------------------------------------ *)

let binding_name (vb : value_binding) = Compat.pat_bound_name vb.vb_pat

let make_iterator ctx =
  let default = Tast_iterator.default_iterator in
  let expr it (e : expression) =
    ctx.expr_depth <- ctx.expr_depth + 1;
    Fun.protect ~finally:(fun () -> ctx.expr_depth <- ctx.expr_depth - 1) @@ fun () ->
    let allows = parse_allows ctx e.exp_attributes in
    with_allows ctx allows (fun () ->
        check_expr ctx e;
        let visit_sorted sub =
          ctx.sorted <- ctx.sorted + 1;
          Fun.protect ~finally:(fun () -> ctx.sorted <- ctx.sorted - 1) (fun () -> it.Tast_iterator.expr it sub)
        in
        let is_sort e' =
          match canonical_head ctx e' with Some n -> List.mem n sort_idents | None -> false
        in
        match e.exp_desc with
        | Texp_apply (f, args) when is_sort f ->
            (* The sort's arguments are order-laundered. *)
            it.Tast_iterator.expr it f;
            List.iter (function _, Some a -> visit_sorted a | _, None -> ()) args
        | Texp_apply (op, [ (_, Some data); (_, Some fn) ])
          when canonical_head ctx op = Some "|>" && is_sort fn ->
            it.Tast_iterator.expr it fn;
            visit_sorted data
        | Texp_apply (op, [ (_, Some fn); (_, Some data) ])
          when canonical_head ctx op = Some "@@" && is_sort fn ->
            it.Tast_iterator.expr it fn;
            visit_sorted data
        | _ -> default.Tast_iterator.expr it e)
  in
  let value_binding it (vb : value_binding) =
    (* Remember what every local name is bound to, so the capture pass
       can look through locally-defined functions a spawn site uses. *)
    (match Compat.pat_binding_idents vb.vb_pat with
    | [ id ] -> Hashtbl.replace ctx.bindings (Ident.unique_name id) vb.vb_expr
    | _ -> ());
    let allows = parse_allows ctx vb.vb_attributes in
    with_allows ctx allows (fun () ->
        (match binding_name vb with
        | Some name when List.mem (ctx.unit_name, name) ctx.cfg.Config.charging ->
            check_charging ctx vb name
        | _ -> ());
        if ctx.expr_depth = 0 then check_shared_global ctx vb;
        default.Tast_iterator.value_binding it vb)
  in
  { default with Tast_iterator.expr; value_binding }

(* Module-wide [@@@lint.allow ...] floating attributes. *)
let module_allows ctx (str : structure) =
  List.concat_map
    (fun (it : structure_item) ->
      match it.str_desc with Tstr_attribute attr -> parse_allows ctx [ attr ] | _ -> [])
    str.str_items

let scan_structure ~cfg ~tables ~unit_name ~library (str : structure) =
  let ctx =
    {
      cfg;
      tables;
      unit_name;
      library;
      allows = [];
      sorted = 0;
      expr_depth = 0;
      bindings = Hashtbl.create 64;
      out = [];
    }
  in
  ctx.allows <- module_allows ctx str;
  let it = make_iterator ctx in
  it.Tast_iterator.structure it str;
  List.rev ctx.out
