(* A single lint finding: where, which rule, why — plus, when an
   enclosing [@lint.allow] matched, the justification that suppressed
   it.  Suppressed findings stay in the report (the whole point of the
   mandatory justification is that the report surfaces it); only
   unsuppressed ones fail the build. *)

type pos = { file : string; line : int; col : int }

type t = {
  rule : string;
  pos : pos;
  unit_name : string; (* canonical unit, e.g. "Blockrep.Runtime" *)
  library : string; (* dune library (or executable) name *)
  message : string;
  justification : string option; (* [Some j] when suppressed by [@lint.allow] *)
}

let make ~rule ~pos ~unit_name ~library ~message ~justification =
  { rule; pos; unit_name; library; message; justification }

let suppressed t = t.justification <> None

let pos_of_location (loc : Location.t) =
  let p = loc.loc_start in
  { file = p.pos_fname; line = p.pos_lnum; col = p.pos_cnum - p.pos_bol }

let compare_by_site a b =
  let c = String.compare a.pos.file b.pos.file in
  if c <> 0 then c
  else
    let c = Int.compare a.pos.line b.pos.line in
    if c <> 0 then c
    else
      let c = Int.compare a.pos.col b.pos.col in
      if c <> 0 then c else String.compare a.rule b.rule

let to_string t =
  let status = match t.justification with None -> "" | Some j -> Printf.sprintf " (allowed: %s)" j in
  Printf.sprintf "%s:%d:%d: [%s] %s%s" t.pos.file t.pos.line t.pos.col t.rule t.message status

(* Minimal JSON rendering — enough for a machine-readable CI artifact
   without pulling a JSON library into the build. *)
let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json t =
  let just =
    match t.justification with
    | None -> "null"
    | Some j -> Printf.sprintf "\"%s\"" (json_escape j)
  in
  Printf.sprintf
    "{\"rule\":\"%s\",\"file\":\"%s\",\"line\":%d,\"col\":%d,\"unit\":\"%s\",\"library\":\"%s\",\"message\":\"%s\",\"suppressed\":%b,\"justification\":%s}"
    (json_escape t.rule) (json_escape t.pos.file) t.pos.line t.pos.col (json_escape t.unit_name)
    (json_escape t.library) (json_escape t.message) (suppressed t) just
