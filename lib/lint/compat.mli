(* The typedtree constructs whose shape changes across the OCaml
   versions CI builds with (4.14, 5.1, 5.2): [Texp_assert] gained a
   location argument in 5.1, [Texp_function] switched from a case
   record to a params/body form in 5.2, and [Tpat_var]/[Tpat_alias]
   gained a shape-Uid field in 5.2.  dune copies the matching
   compat_*.ml-src into compat.ml based on %{ocaml_version}; everything
   else the linter touches is stable across those versions. *)

val is_assert_false : Typedtree.expression -> bool
(** The expression is literally [assert false]. *)

val function_cases : Typedtree.expression -> Typedtree.value Typedtree.case list option
(** [Some cases] when the expression is a [function]-style (or
    single-argument case-list) function; [None] for [fun]-with-body
    and non-functions. *)

val pat_bound_name : Typedtree.pattern -> string option
(** The name a [Tpat_var] or [Tpat_alias] binding pattern introduces —
    an annotated [let f : t = ...] typechecks as an alias pattern. *)

val pat_alias_inner : 'k Typedtree.general_pattern -> 'k Typedtree.general_pattern option
(** [Some inner] when the pattern is [inner as x]; [None] otherwise. *)

val pat_binding_idents : 'k Typedtree.general_pattern -> Ident.t list
(** The idents this pattern node itself binds ([Tpat_var] / the alias
    ident of [Tpat_alias]) — non-recursive; sub-patterns are reached by
    the caller's own traversal.  Used by the domain-capture pass, which
    needs ident stamps (not just names) to tell captured variables from
    lane-local rebindings. *)
