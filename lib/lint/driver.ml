(* Orchestration: find .cmt files under dune's _build tree, run the
   pass-1 table collection over all of them, then the pass-2 rule
   engine over each, and return the sorted findings.

   The library a unit belongs to is recovered from dune's object-dir
   naming: lib/core/.blockrep.objs/byte/Foo.cmt -> "blockrep",
   bin/.blockrep_cli.eobjs/byte/... -> "blockrep_cli". *)

type unit_src = { cmt_path : string; library : string }

let is_objs_dir seg =
  String.length seg > 1 && seg.[0] = '.'
  && (Syms.has_suffix ~suffix:".objs" seg || Syms.has_suffix ~suffix:".eobjs" seg)

let library_of_path path =
  let segs = String.split_on_char '/' path in
  List.fold_left
    (fun acc seg ->
      if is_objs_dir seg then
        let strip suffix = String.sub seg 1 (String.length seg - 1 - String.length suffix) in
        if Syms.has_suffix ~suffix:".eobjs" seg then Some (strip ".eobjs")
        else Some (strip ".objs")
      else acc)
    None segs
  |> Option.value ~default:"unknown"

let rec find_cmts acc dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> acc
  | entries ->
      Array.sort String.compare entries;
      Array.fold_left
        (fun acc entry ->
          let path = Filename.concat dir entry in
          if Sys.is_directory path then
            (* .sandbox trees and other dot-dirs that are not object dirs
               hold duplicate or unrelated artifacts. *)
            if String.length entry > 0 && entry.[0] = '.' && not (is_objs_dir entry) then acc
            else find_cmts acc path
          else if Filename.check_suffix entry ".cmt" then
            { cmt_path = path; library = library_of_path path } :: acc
          else acc)
        acc entries

let find_units ~root ~dirs =
  List.concat_map
    (fun d ->
      let dir = Filename.concat root d in
      if Sys.file_exists dir && Sys.is_directory dir then find_cmts [] dir else [])
    dirs
  |> List.sort (fun a b -> String.compare a.cmt_path b.cmt_path)

type loaded = {
  src : unit_src;
  unit_name : string;
  structure : Typedtree.structure option; (* None: not an implementation *)
}

let internal_finding ~path ~library message =
  Finding.make ~rule:Config.rule_internal
    ~pos:{ Finding.file = path; line = 1; col = 0 }
    ~unit_name:"" ~library ~message ~justification:None

let load (src : unit_src) =
  match Cmt_format.read_cmt src.cmt_path with
  | exception e ->
      Error
        (internal_finding ~path:src.cmt_path ~library:src.library
           (Printf.sprintf "cannot read cmt: %s" (Printexc.to_string e)))
  | infos -> (
      let unit_name = Syms.canonical_unit infos.cmt_modname in
      match infos.cmt_annots with
      | Implementation str -> Ok { src; unit_name; structure = Some str }
      | _ -> Ok { src; unit_name; structure = None })

let run ~cfg units =
  let loaded, errors =
    List.fold_left
      (fun (ok, errs) src ->
        match load src with Ok l -> (l :: ok, errs) | Error f -> (ok, f :: errs))
      ([], []) units
  in
  let loaded = List.rev loaded in
  let tables = Tables.create () in
  List.iter
    (fun l ->
      match l.structure with
      | Some str -> Tables.collect tables ~unit_name:l.unit_name str
      | None -> ())
    loaded;
  let findings =
    List.concat_map
      (fun l ->
        match l.structure with
        | None -> []
        | Some str -> (
            match
              Engine.scan_structure ~cfg ~tables ~unit_name:l.unit_name ~library:l.src.library str
            with
            | fs -> fs
            | exception e ->
                [
                  internal_finding ~path:l.src.cmt_path ~library:l.src.library
                    (Printf.sprintf "rule engine failed on %s: %s" l.unit_name
                       (Printexc.to_string e));
                ]))
      loaded
  in
  List.sort Finding.compare_by_site (errors @ findings)

let run_dirs ~cfg ~root ~dirs = run ~cfg (find_units ~root ~dirs)
