(* Canonical names for compiler paths.

   The typechecker records fully resolved paths, but the same entity
   prints differently depending on where it is mentioned: [Wire.t] is
   ["t"] inside wire.ml, ["Blockrep__Wire.t"] from a sibling module of
   the wrapped library, and ["Blockrep.Wire.t"] from another library.
   Rules match on one canonical spelling: dune's ["Lib__Unit"] mangling
   is split into ["Lib.Unit"], a leading ["Stdlib"] is dropped (so
   [Sys.time] and [Stdlib.Sys.time] coincide), the ["Dune__exe"]
   prefix of executable units is erased, and a bare local name is
   qualified with the canonical name of the unit mentioning it. *)

let split_mangled seg =
  (* "Blockrep__Wire" -> ["Blockrep"; "Wire"]; plain segments (including
     names with single underscores, like "site_state") pass through. *)
  let find_sep s =
    let n = String.length s in
    let rec at i =
      if i + 1 >= n - 1 then None
      else if s.[i] = '_' && s.[i + 1] = '_' && i > 0 then Some i
      else at (i + 1)
    in
    at 1
  in
  let rec go acc rest =
    match find_sep rest with
    | Some i -> go (String.sub rest 0 i :: acc) (String.sub rest (i + 2) (String.length rest - i - 2))
    | None -> List.rev (rest :: acc)
  in
  if String.length seg >= 2 && seg.[0] = '_' then [ seg ] else go [] seg

let split_path name =
  String.split_on_char '.' name |> List.concat_map split_mangled

(* Canonical name of a compilation unit, from [cmt_modname]:
   "Blockrep__Wire" -> "Blockrep.Wire", "Dune__exe__Blockrep_cli" ->
   "Blockrep_cli". *)
let canonical_unit modname =
  let segs = split_path modname in
  let segs = match segs with "Dune" :: "exe" :: rest -> rest | segs -> segs in
  String.concat "." segs

(* Canonical name of a path mentioned inside [unit_name] (itself
   canonical).  [raw] is the [Path.name] spelling. *)
let canonical ~unit_name raw =
  match split_path raw with
  | [ single ] when not (String.contains raw '.') ->
      (* A genuinely local name: qualify with the mentioning unit so
         that wire.ml's own [t] and other units' [Wire.t] coincide. *)
      if unit_name = "" then single else unit_name ^ "." ^ single
  | "Stdlib" :: (_ :: _ as rest) -> String.concat "." rest
  | "Dune" :: "exe" :: (_ :: _ as rest) -> String.concat "." rest
  | segs -> String.concat "." segs

let has_prefix ~prefix s =
  String.length s >= String.length prefix && String.sub s 0 (String.length prefix) = prefix

let has_suffix ~suffix s =
  let n = String.length s and m = String.length suffix in
  n >= m && String.sub s (n - m) m = suffix
