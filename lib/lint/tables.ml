(* Pass 1: cross-module type tables.

   Walking every .cmt first lets the expression rules reason about
   nominal types they cannot see into locally: a record declared three
   libraries away whose field is a closure, or a variant proven to be
   a pure enum (all-constant constructors), which makes polymorphic
   comparison on it total and deterministic.  Keys are canonical type
   names ("Blockrep.Types.site_state"). *)

type t = {
  pure_enums : (string, unit) Hashtbl.t;
  closure_carriers : (string, string) Hashtbl.t; (* type -> offending field/ctor *)
  variants : (string, string list) Hashtbl.t; (* type -> constructor names *)
}

let create () =
  { pure_enums = Hashtbl.create 64; closure_carriers = Hashtbl.create 16; variants = Hashtbl.create 64 }

let is_pure_enum t name = Hashtbl.mem t.pure_enums name
let closure_carrier t name = Hashtbl.find_opt t.closure_carriers name
let variant_ctors t name = Hashtbl.find_opt t.variants name

(* Does a type expression syntactically mention an arrow?  Nominal
   abbreviations are not expanded (that would need a full environment);
   the closure_carriers table is how arrows hidden behind record /
   variant declarations are found anyway. *)
let mentions_arrow ty =
  let visited = Hashtbl.create 16 in
  let rec go depth ty =
    if depth > 64 then false
    else
      let id = Types.get_id ty in
      if Hashtbl.mem visited id then false
      else begin
        Hashtbl.add visited id ();
        match Types.get_desc ty with
        | Types.Tarrow _ -> true
        | Types.Ttuple l -> List.exists (go (depth + 1)) l
        | Types.Tconstr (_, args, _) -> List.exists (go (depth + 1)) args
        | Types.Tpoly (t', args) -> go (depth + 1) t' || List.exists (go (depth + 1)) args
        | _ -> false
      end
  in
  go 0 ty

let add_declaration t ~type_name (decl : Typedtree.type_declaration) =
  match decl.typ_kind with
  | Ttype_variant ctors ->
      let names = List.map (fun (c : Typedtree.constructor_declaration) -> c.cd_name.txt) ctors in
      Hashtbl.replace t.variants type_name names;
      let arg_types (c : Typedtree.constructor_declaration) =
        match c.cd_args with
        | Cstr_tuple args -> List.map (fun (ct : Typedtree.core_type) -> ct.ctyp_type) args
        | Cstr_record lds -> List.map (fun (ld : Typedtree.label_declaration) -> ld.ld_type.ctyp_type) lds
      in
      let constant c = match arg_types c with [] -> true | _ :: _ -> false in
      if List.for_all constant ctors then Hashtbl.replace t.pure_enums type_name ()
      else
        List.iter
          (fun (c : Typedtree.constructor_declaration) ->
            if List.exists mentions_arrow (arg_types c) then
              Hashtbl.replace t.closure_carriers type_name c.cd_name.txt)
          ctors
  | Ttype_record lds ->
      List.iter
        (fun (ld : Typedtree.label_declaration) ->
          if mentions_arrow ld.ld_type.ctyp_type then
            Hashtbl.replace t.closure_carriers type_name ld.ld_name.txt)
        lds
  | Ttype_abstract | Ttype_open -> ()

(* Collect declarations from one unit's typed structure, descending
   into plain nested modules (functor bodies are keyed without their
   argument, an acceptable approximation). *)
let collect t ~unit_name (str : Typedtree.structure) =
  let rec module_expr prefix (me : Typedtree.module_expr) =
    match me.mod_desc with
    | Tmod_structure s -> List.iter (item prefix) s.str_items
    | Tmod_constraint (me', _, _, _) -> module_expr prefix me'
    | Tmod_functor (_, me') -> module_expr prefix me'
    | _ -> ()
  and item prefix (it : Typedtree.structure_item) =
    match it.str_desc with
    | Tstr_type (_, decls) ->
        List.iter
          (fun (d : Typedtree.type_declaration) ->
            add_declaration t ~type_name:(prefix ^ "." ^ d.typ_name.txt) d)
          decls
    | Tstr_module mb -> (
        match mb.mb_name.txt with
        | Some name -> module_expr (prefix ^ "." ^ name) mb.mb_expr
        | None -> ())
    | Tstr_recmodule mbs ->
        List.iter
          (fun (mb : Typedtree.module_binding) ->
            match mb.mb_name.txt with
            | Some name -> module_expr (prefix ^ "." ^ name) mb.mb_expr
            | None -> ())
          mbs
    | _ -> ()
  in
  List.iter (item unit_name) str.str_items
