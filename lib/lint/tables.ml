(* Pass 1: cross-module type tables.

   Walking every .cmt first lets the expression rules reason about
   nominal types they cannot see into locally: a record declared three
   libraries away whose field is a closure, or a variant proven to be
   a pure enum (all-constant constructors), which makes polymorphic
   comparison on it total and deterministic.  Keys are canonical type
   names ("Blockrep.Types.site_state"). *)

(* Structural summary of a type declaration, kept so the mutability
   classification below can look through nominal types declared in
   other units.  Component [Types.type_expr]s were elaborated in the
   declaring unit, so each shape remembers that unit for canonical
   name resolution. *)
type shape =
  | Shape_variant of Types.type_expr list (* every constructor argument type *)
  | Shape_record of (string * bool * Types.type_expr) list (* field, mutable?, type *)
  | Shape_alias of Types.type_expr
  | Shape_opaque

type t = {
  pure_enums : (string, unit) Hashtbl.t;
  closure_carriers : (string, string) Hashtbl.t; (* type -> offending field/ctor *)
  variants : (string, string list) Hashtbl.t; (* type -> constructor names *)
  shapes : (string, string * shape) Hashtbl.t; (* type -> (declaring unit, shape) *)
  functor_sets : (string, unit) Hashtbl.t; (* "U.M.t" for M = Set.Make/Map.Make (...) *)
  mut_memo : (string, string option) Hashtbl.t; (* decl-level verdict cache *)
}

let create () =
  {
    pure_enums = Hashtbl.create 64;
    closure_carriers = Hashtbl.create 16;
    variants = Hashtbl.create 64;
    shapes = Hashtbl.create 128;
    functor_sets = Hashtbl.create 8;
    mut_memo = Hashtbl.create 128;
  }

let is_pure_enum t name = Hashtbl.mem t.pure_enums name
let closure_carrier t name = Hashtbl.find_opt t.closure_carriers name
let variant_ctors t name = Hashtbl.find_opt t.variants name

(* Does a type expression syntactically mention an arrow?  Nominal
   abbreviations are not expanded (that would need a full environment);
   the closure_carriers table is how arrows hidden behind record /
   variant declarations are found anyway. *)
let mentions_arrow ty =
  let visited = Hashtbl.create 16 in
  let rec go depth ty =
    if depth > 64 then false
    else
      let id = Types.get_id ty in
      if Hashtbl.mem visited id then false
      else begin
        Hashtbl.add visited id ();
        match Types.get_desc ty with
        | Types.Tarrow _ -> true
        | Types.Ttuple l -> List.exists (go (depth + 1)) l
        | Types.Tconstr (_, args, _) -> List.exists (go (depth + 1)) args
        | Types.Tpoly (t', args) -> go (depth + 1) t' || List.exists (go (depth + 1)) args
        | _ -> false
      end
  in
  go 0 ty

let add_declaration t ~unit_name ~type_name (decl : Typedtree.type_declaration) =
  (match decl.typ_kind with
  | Ttype_variant ctors ->
      let args =
        List.concat_map
          (fun (c : Typedtree.constructor_declaration) ->
            match c.cd_args with
            | Cstr_tuple args -> List.map (fun (ct : Typedtree.core_type) -> ct.ctyp_type) args
            | Cstr_record lds ->
                List.map (fun (ld : Typedtree.label_declaration) -> ld.ld_type.ctyp_type) lds)
          ctors
      in
      Hashtbl.replace t.shapes type_name (unit_name, Shape_variant args)
  | Ttype_record lds ->
      let fields =
        List.map
          (fun (ld : Typedtree.label_declaration) ->
            (ld.ld_name.txt, ld.ld_mutable = Asttypes.Mutable, ld.ld_type.ctyp_type))
          lds
      in
      Hashtbl.replace t.shapes type_name (unit_name, Shape_record fields)
  | Ttype_abstract -> (
      match decl.typ_manifest with
      | Some ct -> Hashtbl.replace t.shapes type_name (unit_name, Shape_alias ct.ctyp_type)
      | None -> Hashtbl.replace t.shapes type_name (unit_name, Shape_opaque))
  | Ttype_open -> Hashtbl.replace t.shapes type_name (unit_name, Shape_opaque));
  match decl.typ_kind with
  | Ttype_variant ctors ->
      let names = List.map (fun (c : Typedtree.constructor_declaration) -> c.cd_name.txt) ctors in
      Hashtbl.replace t.variants type_name names;
      let arg_types (c : Typedtree.constructor_declaration) =
        match c.cd_args with
        | Cstr_tuple args -> List.map (fun (ct : Typedtree.core_type) -> ct.ctyp_type) args
        | Cstr_record lds -> List.map (fun (ld : Typedtree.label_declaration) -> ld.ld_type.ctyp_type) lds
      in
      let constant c = match arg_types c with [] -> true | _ :: _ -> false in
      if List.for_all constant ctors then Hashtbl.replace t.pure_enums type_name ()
      else
        List.iter
          (fun (c : Typedtree.constructor_declaration) ->
            if List.exists mentions_arrow (arg_types c) then
              Hashtbl.replace t.closure_carriers type_name c.cd_name.txt)
          ctors
  | Ttype_record lds ->
      List.iter
        (fun (ld : Typedtree.label_declaration) ->
          if mentions_arrow ld.ld_type.ctyp_type then
            Hashtbl.replace t.closure_carriers type_name ld.ld_name.txt)
        lds
  | Ttype_abstract | Ttype_open -> ()

(* Collect declarations from one unit's typed structure, descending
   into plain nested modules (functor bodies are keyed without their
   argument, an acceptable approximation). *)
let collect t ~unit_name (str : Typedtree.structure) =
  (* [Set.Make]/[Map.Make] applications produce balanced persistent
     trees: remember the resulting module so "<prefix>.<M>.t" can be
     classified immutable even though the functor body is opaque. *)
  let rec functor_head (me : Typedtree.module_expr) =
    match me.mod_desc with
    | Tmod_ident (p, _) -> Some (Path.name p)
    | Tmod_constraint (me', _, _, _) -> functor_head me'
    | _ -> None
  in
  let rec persistent_functor (me : Typedtree.module_expr) =
    match me.mod_desc with
    | Tmod_apply (f, _, _) -> (
        (* The compiler wraps the applied functor in the signature
           constraint of its result, so look through constraints before
           expecting the ident. *)
        match functor_head f with
        | Some name ->
            Syms.has_suffix ~suffix:"Set.Make" name || Syms.has_suffix ~suffix:"Map.Make" name
        | None -> persistent_functor f)
    | Tmod_constraint (me', _, _, _) -> persistent_functor me'
    | _ -> false
  in
  let rec module_expr prefix (me : Typedtree.module_expr) =
    match me.mod_desc with
    | Tmod_structure s -> List.iter (item prefix) s.str_items
    | Tmod_constraint (me', _, _, _) -> module_expr prefix me'
    | Tmod_functor (_, me') -> module_expr prefix me'
    | _ -> ()
  and item prefix (it : Typedtree.structure_item) =
    match it.str_desc with
    | Tstr_type (_, decls) ->
        List.iter
          (fun (d : Typedtree.type_declaration) ->
            add_declaration t ~unit_name ~type_name:(prefix ^ "." ^ d.typ_name.txt) d)
          decls
    | Tstr_module mb -> (
        match mb.mb_name.txt with
        | Some name ->
            if persistent_functor mb.mb_expr then
              Hashtbl.replace t.functor_sets (prefix ^ "." ^ name ^ ".t") ();
            module_expr (prefix ^ "." ^ name) mb.mb_expr
        | None -> ())
    | Tstr_recmodule mbs ->
        List.iter
          (fun (mb : Typedtree.module_binding) ->
            match mb.mb_name.txt with
            | Some name -> module_expr (prefix ^ "." ^ name) mb.mb_expr
            | None -> ())
          mbs
    | _ -> ()
  in
  List.iter (item unit_name) str.str_items

(* ------------------------------------------------------------------ *)
(* Mutability classification                                           *)
(* ------------------------------------------------------------------ *)

(* Three-way verdict on a type: deeply immutable (safe to share across
   lanes), an atomic cell over immutable contents (safe to share, races
   resolved by the hardware, determinism still the caller's problem),
   or transitively mutable with a human-readable reason.  Arrows are
   mutable: a closure's captures cannot be verified from its type, and
   a closure over a Hashtbl is exactly as racy as the Hashtbl. *)
type mutability = Imm | Atomic_ok | Mut of string

let worst a b =
  match (a, b) with
  | (Mut _ as m), _ | _, (Mut _ as m) -> m
  | Atomic_ok, _ | _, Atomic_ok -> Atomic_ok
  | Imm, Imm -> Imm

(* Stdlib types with mutable innards.  Both the bare spelling and the
   [Stdlib.]-qualified one canonicalise to these. *)
let builtin_mutable =
  [
    ("ref", "a ref cell");
    ("array", "an array");
    ("bytes", "a mutable byte buffer");
    ("Bytes.t", "a mutable byte buffer");
    ("Hashtbl.t", "a hash table");
    ("Buffer.t", "a Buffer.t");
    ("Queue.t", "a Queue.t");
    ("Stack.t", "a Stack.t");
    ("Weak.t", "a weak array");
    ("Random.State.t", "a mutable PRNG state");
    ("Lazy.t", "a lazy cell (forcing races and memoises)");
    ("lazy_t", "a lazy cell (forcing races and memoises)");
    ("Seq.t", "a Seq.t (suspended closures)");
    ("Format.formatter", "a formatter (buffered output state)");
    ("in_channel", "an I/O channel");
    ("out_channel", "an I/O channel");
    ("Mutex.t", "a mutex (locked sharing is still nondeterministic interleaving)");
    ("Condition.t", "a condition variable");
  ]

let builtin_immutable =
  [ "int"; "char"; "bool"; "unit"; "float"; "string"; "int32"; "int64"; "nativeint"; "exn";
    "Int.t"; "Char.t"; "Bool.t"; "Float.t"; "String.t"; "Int32.t"; "Int64.t"; "Nativeint.t" ]

(* Type constructors that are immutable iff their arguments are: the
   classification recurses into the arguments anyway, so these need no
   verdict of their own. *)
let builtin_transparent = [ "option"; "list"; "result"; "Either.t"; "either" ]

let is_persistent_tree t name =
  Hashtbl.mem t.functor_sets name
  || Syms.has_suffix ~suffix:".Set.t" name
  || Syms.has_suffix ~suffix:".Map.t" name
  (* Inside the declaring unit the path keeps its short spelling
     ([Int_set.t]) while the functor table records the fully qualified
     one — accept a suffix match, same as the shapes fallback. *)
  || (let suffix = "." ^ name in
      Hashtbl.fold (fun k () acc -> acc || Syms.has_suffix ~suffix k) t.functor_sets false)

(* Decl-level verdict for a canonical type name, ignoring parameters
   (the caller folds the actual arguments in separately; formal
   parameters classify as Imm, so a ['a t = 'a ref] still comes out
   mutable through the [ref], and a phantom parameter costs nothing).
   [None] = not mutable by itself.  Cycles assume Imm, the standard
   coinductive reading: a recursive type with no mutable node anywhere
   on the cycle is immutable. *)
let rec decl_mutability t name ~in_progress =
  match Hashtbl.find_opt t.mut_memo name with
  | Some v -> v
  | None ->
      if List.mem name in_progress then None
      else begin
        let v = compute_decl_mutability t name ~in_progress:(name :: in_progress) in
        (* Only cache cycle-free computations at the root of a cycle;
           caching mid-cycle could freeze the Imm assumption. *)
        if in_progress = [] then Hashtbl.replace t.mut_memo name v;
        v
      end

and compute_decl_mutability t name ~in_progress =
  match List.assoc_opt name builtin_mutable with
  | Some reason -> Some reason
  | None ->
      if List.mem name builtin_immutable || List.mem name builtin_transparent then None
      else if name = "Atomic.t" then None (* the caller special-cases Atomic *)
      else if is_persistent_tree t name then None
      else begin
        (* A use site may reach a type through a local module alias
           ([module Types = Blockrep.Types]); the recorded path then
           keeps the alias spelling.  When the direct lookup misses,
           accept a UNIQUE suffix match against the declared shapes —
           ambiguity stays conservative (opaque). *)
        let lookup () =
          match Hashtbl.find_opt t.shapes name with
          | Some _ as hit -> hit
          | None -> (
              let suffix = "." ^ name in
              match
                Hashtbl.fold
                  (fun k v acc -> if Syms.has_suffix ~suffix k then (k, v) :: acc else acc)
                  t.shapes []
              with
              | [ (_, v) ] -> Some v
              | _ -> None)
        in
        match lookup () with
        | None -> Some "an abstract type the mutability table cannot prove immutable"
        | Some (decl_unit, shape) -> (
            let sub ty =
              match type_mutability t ~unit_name:decl_unit ty ~in_progress with
              | Imm | Atomic_ok -> None
              | Mut reason -> Some reason
            in
            match shape with
            | Shape_opaque -> Some "an abstract type the mutability table cannot prove immutable"
            | Shape_alias ty -> sub ty
            | Shape_variant args -> List.find_map sub args
            | Shape_record fields ->
                List.find_map
                  (fun (fname, is_mut, ty) ->
                    if is_mut then Some (Printf.sprintf "record with mutable field %s" fname)
                    else
                      Option.map
                        (fun r -> Printf.sprintf "field %s is %s" fname r)
                        (sub ty))
                  fields)
      end

(* Verdict for a type expression as seen at a use site in [unit_name]. *)
and type_mutability t ~unit_name ty ~in_progress =
  let visited = Hashtbl.create 16 in
  let rec go depth ty =
    if depth > 64 then Imm
    else
      let id = Types.get_id ty in
      if Hashtbl.mem visited id then Imm
      else begin
        Hashtbl.add visited id ();
        match Types.get_desc ty with
        | Types.Tarrow _ -> Mut "a function — what its closure captures cannot be verified"
        | Types.Ttuple l -> List.fold_left (fun acc ty' -> worst acc (go (depth + 1) ty')) Imm l
        | Types.Tpoly (t', _) -> go (depth + 1) t'
        | Types.Tvar _ | Types.Tunivar _ -> Imm
        | Types.Tconstr (p, args, _) -> (
            let raw = Path.name p in
            (* Predefined types ([int], [array], [ref], ...) reach us as
               bare idents with no declaring unit; qualifying them with
               the mentioning unit would hide them from the builtin
               tables.  A unit-local type shadowing a predef name would
               be misread — none exists in this tree, and the misreading
               is at worst conservative for the mutable spellings. *)
            let name =
              if
                (not (String.contains raw '.'))
                && (List.mem_assoc raw builtin_mutable
                   || List.mem raw builtin_immutable
                   || List.mem raw builtin_transparent)
              then raw
              else Syms.canonical ~unit_name raw
            in
            let args_verdict () =
              List.fold_left (fun acc ty' -> worst acc (go (depth + 1) ty')) Imm args
            in
            if name = "Atomic.t" then
              match args_verdict () with
              | Imm | Atomic_ok -> Atomic_ok
              | Mut reason -> Mut (Printf.sprintf "an Atomic.t over mutable contents (%s)" reason)
            else begin
              match decl_mutability t name ~in_progress with
              | Some reason -> Mut (Printf.sprintf "%s (%s)" name reason)
              | None -> args_verdict ()
            end)
        | Types.Tobject _ -> Mut "an object (mutable instance state)"
        | Types.Tpackage _ -> Mut "a first-class module (contents unverifiable)"
        | Types.Tvariant _ ->
            (* Polymorphic variants do not occur in the protocol tree;
               classifying their rows needs version-drifting row API, so
               stay conservative. *)
            Mut "a polymorphic variant (row not analysed)"
        | _ -> Imm
      end
  in
  go 0 ty

let mutability t ~unit_name ty = type_mutability t ~unit_name ty ~in_progress:[]
