let category_index = function
  | Message.Vote_request -> 0
  | Message.Vote_reply -> 1
  | Message.Block_update -> 2
  | Message.Write_ack -> 3
  | Message.Block_request -> 4
  | Message.Block_transfer -> 5
  | Message.Recovery_probe -> 6
  | Message.Recovery_reply -> 7
  | Message.Version_vector_send -> 8
  | Message.Version_vector_reply -> 9
  | Message.Was_available_update -> 10

let operation_index = function
  | Message.Read -> 0
  | Message.Write -> 1
  | Message.Recovery -> 2
  | Message.Repair -> 3

let n_categories = List.length Message.all
let n_operations = List.length Message.all_operations

type t = {
  cells : int array; (* n_operations * n_categories transmission counts *)
  byte_cells : int array; (* parallel payload-byte totals *)
}

let create () =
  let size = n_operations * n_categories in
  { cells = Array.make size 0; byte_cells = Array.make size 0 }

let reset t =
  Array.fill t.cells 0 (Array.length t.cells) 0;
  Array.fill t.byte_cells 0 (Array.length t.byte_cells) 0

let cell_index op cat = (operation_index op * n_categories) + category_index cat

let record t ?(bytes = 0) op cat k =
  if k < 0 then invalid_arg "Traffic.record: negative count";
  if bytes < 0 then invalid_arg "Traffic.record: negative bytes";
  let i = cell_index op cat in
  t.cells.(i) <- t.cells.(i) + k;
  t.byte_cells.(i) <- t.byte_cells.(i) + bytes

let accumulate ~into src =
  (* Both tables have the same fixed geometry, so cell-wise addition is
     the whole merge; used to fold per-shard traffic into a campaign
     total in shard-id order. *)
  for i = 0 to Array.length into.cells - 1 do
    into.cells.(i) <- into.cells.(i) + src.cells.(i);
    into.byte_cells.(i) <- into.byte_cells.(i) + src.byte_cells.(i)
  done

let total t = Array.fold_left ( + ) 0 t.cells
let total_bytes t = Array.fold_left ( + ) 0 t.byte_cells

let by_category t cat =
  List.fold_left (fun acc op -> acc + t.cells.(cell_index op cat)) 0 Message.all_operations

let by_operation t op =
  List.fold_left (fun acc cat -> acc + t.cells.(cell_index op cat)) 0 Message.all

let bytes_by_operation t op =
  List.fold_left (fun acc cat -> acc + t.byte_cells.(cell_index op cat)) 0 Message.all

let of_cell t op cat = t.cells.(cell_index op cat)
let bytes_of_cell t op cat = t.byte_cells.(cell_index op cat)

let snapshot t =
  List.concat_map
    (fun op ->
      List.filter_map
        (fun cat ->
          let k = of_cell t op cat in
          if k = 0 then None else Some (op, cat, k))
        Message.all)
    Message.all_operations

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (op, cat, k) ->
      Format.fprintf ppf "%-8s %-22s %6d  %8d B@," (Message.operation_to_string op)
        (Message.to_string cat) k
        (bytes_of_cell t op cat))
    (snapshot t);
  Format.fprintf ppf "total %d transmissions, %d payload bytes@]" (total t) (total_bytes t)
