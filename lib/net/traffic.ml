let category_index = function
  | Message.Vote_request -> 0
  | Message.Vote_reply -> 1
  | Message.Block_update -> 2
  | Message.Write_ack -> 3
  | Message.Block_request -> 4
  | Message.Block_transfer -> 5
  | Message.Recovery_probe -> 6
  | Message.Recovery_reply -> 7
  | Message.Version_vector_send -> 8
  | Message.Version_vector_reply -> 9
  | Message.Was_available_update -> 10

let operation_index = function
  | Message.Read -> 0
  | Message.Write -> 1
  | Message.Recovery -> 2
  | Message.Repair -> 3

let n_categories = List.length Message.all
let n_operations = List.length Message.all_operations

let reject_index = function
  | Message.Reject_truncated -> 0
  | Message.Reject_bad_magic -> 1
  | Message.Reject_trailing -> 2
  | Message.Reject_crc -> 3
  | Message.Reject_bad_tag -> 4
  | Message.Reject_malformed -> 5

let n_rejects = List.length Message.all_rejects

type t = {
  cells : int array; (* n_operations * n_categories transmission counts *)
  byte_cells : int array; (* parallel payload-byte totals *)
  reject_cells : int array; (* per-class rejected-frame counts at ingress *)
  mutable quarantined : int; (* frames discarded undecoded by quarantine *)
}

let create () =
  let size = n_operations * n_categories in
  {
    cells = Array.make size 0;
    byte_cells = Array.make size 0;
    reject_cells = Array.make n_rejects 0;
    quarantined = 0;
  }

let reset t =
  Array.fill t.cells 0 (Array.length t.cells) 0;
  Array.fill t.byte_cells 0 (Array.length t.byte_cells) 0;
  Array.fill t.reject_cells 0 (Array.length t.reject_cells) 0;
  t.quarantined <- 0

let cell_index op cat = (operation_index op * n_categories) + category_index cat

let record t ?(bytes = 0) op cat k =
  if k < 0 then invalid_arg "Traffic.record: negative count";
  if bytes < 0 then invalid_arg "Traffic.record: negative bytes";
  let i = cell_index op cat in
  t.cells.(i) <- t.cells.(i) + k;
  t.byte_cells.(i) <- t.byte_cells.(i) + bytes

let record_rejected t reject =
  let i = reject_index reject in
  t.reject_cells.(i) <- t.reject_cells.(i) + 1

let record_quarantined t = t.quarantined <- t.quarantined + 1
let rejected_of t reject = t.reject_cells.(reject_index reject)
let frames_rejected t = Array.fold_left ( + ) 0 t.reject_cells
let frames_quarantined t = t.quarantined

let rejected_snapshot t =
  List.filter_map
    (fun r ->
      let k = rejected_of t r in
      if k = 0 then None else Some (r, k))
    Message.all_rejects

let accumulate ~into src =
  (* Both tables have the same fixed geometry, so cell-wise addition is
     the whole merge; used to fold per-shard traffic into a campaign
     total in shard-id order. *)
  for i = 0 to Array.length into.cells - 1 do
    into.cells.(i) <- into.cells.(i) + src.cells.(i);
    into.byte_cells.(i) <- into.byte_cells.(i) + src.byte_cells.(i)
  done;
  for i = 0 to Array.length into.reject_cells - 1 do
    into.reject_cells.(i) <- into.reject_cells.(i) + src.reject_cells.(i)
  done;
  into.quarantined <- into.quarantined + src.quarantined

let total t = Array.fold_left ( + ) 0 t.cells
let total_bytes t = Array.fold_left ( + ) 0 t.byte_cells

let by_category t cat =
  List.fold_left (fun acc op -> acc + t.cells.(cell_index op cat)) 0 Message.all_operations

let by_operation t op =
  List.fold_left (fun acc cat -> acc + t.cells.(cell_index op cat)) 0 Message.all

let bytes_by_operation t op =
  List.fold_left (fun acc cat -> acc + t.byte_cells.(cell_index op cat)) 0 Message.all

let of_cell t op cat = t.cells.(cell_index op cat)
let bytes_of_cell t op cat = t.byte_cells.(cell_index op cat)

let snapshot t =
  List.concat_map
    (fun op ->
      List.filter_map
        (fun cat ->
          let k = of_cell t op cat in
          if k = 0 then None else Some (op, cat, k))
        Message.all)
    Message.all_operations

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (op, cat, k) ->
      Format.fprintf ppf "%-8s %-22s %6d  %8d B@," (Message.operation_to_string op)
        (Message.to_string cat) k
        (bytes_of_cell t op cat))
    (snapshot t);
  List.iter
    (fun (r, k) ->
      Format.fprintf ppf "rejected %-22s %6d@," (Message.reject_to_string r) k)
    (rejected_snapshot t);
  if t.quarantined > 0 then Format.fprintf ppf "quarantined %6d@," t.quarantined;
  Format.fprintf ppf "total %d transmissions, %d payload bytes@]" (total t) (total_bytes t)
