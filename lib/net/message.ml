type category =
  | Vote_request
  | Vote_reply
  | Block_update
  | Write_ack
  | Block_request
  | Block_transfer
  | Recovery_probe
  | Recovery_reply
  | Version_vector_send
  | Version_vector_reply
  | Was_available_update

let all =
  [
    Vote_request;
    Vote_reply;
    Block_update;
    Write_ack;
    Block_request;
    Block_transfer;
    Recovery_probe;
    Recovery_reply;
    Version_vector_send;
    Version_vector_reply;
    Was_available_update;
  ]

let to_string = function
  | Vote_request -> "vote-request"
  | Vote_reply -> "vote-reply"
  | Block_update -> "block-update"
  | Write_ack -> "write-ack"
  | Block_request -> "block-request"
  | Block_transfer -> "block-transfer"
  | Recovery_probe -> "recovery-probe"
  | Recovery_reply -> "recovery-reply"
  | Version_vector_send -> "version-vector-send"
  | Version_vector_reply -> "version-vector-reply"
  | Was_available_update -> "was-available-update"

let pp ppf c = Format.pp_print_string ppf (to_string c)

type operation = Read | Write | Recovery | Repair

let operation_to_string = function
  | Read -> "read"
  | Write -> "write"
  | Recovery -> "recovery"
  | Repair -> "repair"

let all_operations = [ Read; Write; Recovery; Repair ]

let pp_operation ppf o = Format.pp_print_string ppf (operation_to_string o)

type reject =
  | Reject_truncated
  | Reject_bad_magic
  | Reject_trailing
  | Reject_crc
  | Reject_bad_tag
  | Reject_malformed

let all_rejects =
  [
    Reject_truncated;
    Reject_bad_magic;
    Reject_trailing;
    Reject_crc;
    Reject_bad_tag;
    Reject_malformed;
  ]

let reject_to_string = function
  | Reject_truncated -> "truncated"
  | Reject_bad_magic -> "bad-magic"
  | Reject_trailing -> "trailing"
  | Reject_crc -> "crc"
  | Reject_bad_tag -> "bad-tag"
  | Reject_malformed -> "malformed"

let pp_reject ppf r = Format.pp_print_string ppf (reject_to_string r)
