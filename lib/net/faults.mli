(** Seeded message-level fault injection for {!Network}.

    The paper's evaluation assumes reliable, partition-free message delivery;
    this module lets adversarial experiments relax that assumption without
    touching any protocol code.  Each link (ordered site pair) carries a
    {!profile} of independent per-message fault probabilities:

    - {b drop}: the message vanishes after being charged to the traffic
      counters (transmissions are accounted at send time, as in Section 5 —
      a lossy wire does not refund the sender);
    - {b duplicate}: a second copy is delivered, with its own latency draw;
    - {b jitter}: a random extra latency drawn from the [jitter]
      distribution on {e every} delivery of the link;
    - {b reorder}: the delivery is additionally deferred by a second,
      independent [jitter] draw, letting later sends overtake it;
    - {b extra_delay}: a deterministic added latency on every delivery.

    The default profile is {!pristine} (all knobs zero), and a network with
    no faults installed — or a pristine profile — behaves {e exactly} as the
    fault-free network: same code path, same RNG draws, same counters.  The
    injector owns a dedicated RNG, so enabling faults never perturbs the
    latency or workload streams of the same seed. *)

(** Byte-level wire damage, applied to the {e encoded frame} of a delivery
    when the network runs in encoded mode (no-op otherwise — there are no
    bytes to damage).  Independent per-delivery probabilities; every kind
    that fires actually changes the byte string (a splice of two identical
    frames is the one exception, and the ingress accounts it as a
    corruption the decoder survived). *)
type corruption = {
  bit_flip : float;  (** flip one random bit of the frame *)
  truncate : float;  (** drop at least one byte off the tail *)
  garbage_prefix : float;  (** prepend 1–8 random bytes *)
  garbage_suffix : float;  (** append 1–8 random bytes *)
  splice : float;
      (** run the head of the link's previous frame into the tail of this
          one (two sends damaged into one byte string) *)
}

val no_corruption : corruption
val corruption_is_trivial : corruption -> bool

type profile = {
  drop : float;  (** probability a delivery is lost, in [0, 1] *)
  duplicate : float;  (** probability a delivery is doubled *)
  reorder : float;  (** probability of an extra deferring jitter draw *)
  jitter : Util.Dist.t;  (** random extra delay, drawn on every delivery *)
  extra_delay : float;  (** deterministic extra latency, every delivery *)
  corruption : corruption;  (** byte-level damage, encoded mode only *)
}

val pristine : profile
(** All-zero knobs: provably no fault is ever injected. *)

val persistent_corruptor : profile
(** Every delivery on the link gets one bit flipped ([bit_flip = 1.0],
    everything else pristine): a hostile or broken NIC.  Defeats any
    bounded retransmission budget, so it belongs on individual links
    (breaker experiments), not in a sweep's ambient profile. *)

val is_pristine : profile -> bool
(** Whether every knob — including the jitter distribution, which only
    [Constant 0.0] makes trivial — is at its pristine value. *)

val validate_profile : profile -> (profile, string) result
(** Checks probabilities are in [0, 1], the jitter distribution is valid and
    the extra delay non-negative. *)

val make :
  ?drop:float ->
  ?duplicate:float ->
  ?reorder:float ->
  ?jitter:Util.Dist.t ->
  ?extra_delay:float ->
  ?corruption:corruption ->
  unit ->
  (profile, string) result
(** Build a validated profile; every knob defaults to its pristine value. *)

val make_exn :
  ?drop:float ->
  ?duplicate:float ->
  ?reorder:float ->
  ?jitter:Util.Dist.t ->
  ?extra_delay:float ->
  ?corruption:corruption ->
  unit ->
  profile

type t
(** A fault injector: a default profile, per-link overrides, a dedicated
    RNG and per-category injection counters. *)

val create : rng:Util.Prng.t -> profile -> t
(** [create ~rng profile] validates [profile] and installs it as the
    default for every link.  Raises [Invalid_argument] on a bad profile. *)

val of_seed : seed:int -> profile -> t
(** Convenience: [create] with a fresh SplitMix64 stream. *)

val set_link : t -> from:int -> dst:int -> profile -> unit
(** Override the profile of one directed link. *)

val link_profile : t -> from:int -> dst:int -> profile
(** The profile governing [from -> dst] (the default unless overridden). *)

val default_profile : t -> profile

val plan : t -> from:int -> dst:int -> float list
(** Decide the fate of one delivery on a link: a list of extra delays, one
    per copy to deliver.  [[]] means the message is dropped; [[0.0]] is an
    undisturbed delivery; two elements mean a duplicate.  Updates the
    injection counters.  On a pristine link this returns [[0.0]] without
    drawing from the RNG. *)

val corrupt : t -> from:int -> dst:int -> Bytes.t -> Bytes.t * bool
(** [corrupt t ~from ~dst frame] decides the byte-level fate of one
    encoded delivery on a link: the (possibly damaged) frame to hand to
    the ingress, and whether it differs from the input.  The caller's
    buffer is never mutated — damage is applied to a fresh copy, so
    duplicates sharing one encoded buffer are corrupted independently.
    On a link with trivial corruption this returns the input unchanged
    without drawing from the RNG; otherwise it draws one uniform per
    kind unconditionally (stream stability, as in {!plan}) and applies
    the kinds that fire in a fixed order: splice, truncate, garbage
    prefix, garbage suffix, bit flip.  Updates the injection counters,
    including {!corrupted_deliveries} when any kind fired. *)

(** {1 Injection counters} *)

val drops : t -> int
val duplicates : t -> int
val reorders : t -> int

val delayed : t -> int
(** Deliveries that received the deterministic [extra_delay]. *)

val jittered : t -> int
(** Delivery copies that received a random [jitter] draw. *)

val bit_flips : t -> int
val truncates : t -> int
val garbage_prefixed : t -> int
val garbage_suffixed : t -> int
val splices : t -> int

val corrupted_deliveries : t -> int
(** Deliveries whose frame left {!corrupt} different from how it went in
    (at most one per delivery, however many kinds fired).  The ingress
    conservation identity accounts each one as rejected, quarantined or
    survived — see {!Network}. *)

val total_injected : t -> int

val reset_counters : t -> unit

val pp_profile : Format.formatter -> profile -> unit
val pp : Format.formatter -> t -> unit
