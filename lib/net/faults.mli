(** Seeded message-level fault injection for {!Network}.

    The paper's evaluation assumes reliable, partition-free message delivery;
    this module lets adversarial experiments relax that assumption without
    touching any protocol code.  Each link (ordered site pair) carries a
    {!profile} of independent per-message fault probabilities:

    - {b drop}: the message vanishes after being charged to the traffic
      counters (transmissions are accounted at send time, as in Section 5 —
      a lossy wire does not refund the sender);
    - {b duplicate}: a second copy is delivered, with its own latency draw;
    - {b jitter}: a random extra latency drawn from the [jitter]
      distribution on {e every} delivery of the link;
    - {b reorder}: the delivery is additionally deferred by a second,
      independent [jitter] draw, letting later sends overtake it;
    - {b extra_delay}: a deterministic added latency on every delivery.

    The default profile is {!pristine} (all knobs zero), and a network with
    no faults installed — or a pristine profile — behaves {e exactly} as the
    fault-free network: same code path, same RNG draws, same counters.  The
    injector owns a dedicated RNG, so enabling faults never perturbs the
    latency or workload streams of the same seed. *)

type profile = {
  drop : float;  (** probability a delivery is lost, in [0, 1] *)
  duplicate : float;  (** probability a delivery is doubled *)
  reorder : float;  (** probability of an extra deferring jitter draw *)
  jitter : Util.Dist.t;  (** random extra delay, drawn on every delivery *)
  extra_delay : float;  (** deterministic extra latency, every delivery *)
}

val pristine : profile
(** All-zero knobs: provably no fault is ever injected. *)

val is_pristine : profile -> bool
(** Whether every knob — including the jitter distribution, which only
    [Constant 0.0] makes trivial — is at its pristine value. *)

val validate_profile : profile -> (profile, string) result
(** Checks probabilities are in [0, 1], the jitter distribution is valid and
    the extra delay non-negative. *)

val make :
  ?drop:float ->
  ?duplicate:float ->
  ?reorder:float ->
  ?jitter:Util.Dist.t ->
  ?extra_delay:float ->
  unit ->
  (profile, string) result
(** Build a validated profile; every knob defaults to its pristine value. *)

val make_exn :
  ?drop:float ->
  ?duplicate:float ->
  ?reorder:float ->
  ?jitter:Util.Dist.t ->
  ?extra_delay:float ->
  unit ->
  profile

type t
(** A fault injector: a default profile, per-link overrides, a dedicated
    RNG and per-category injection counters. *)

val create : rng:Util.Prng.t -> profile -> t
(** [create ~rng profile] validates [profile] and installs it as the
    default for every link.  Raises [Invalid_argument] on a bad profile. *)

val of_seed : seed:int -> profile -> t
(** Convenience: [create] with a fresh SplitMix64 stream. *)

val set_link : t -> from:int -> dst:int -> profile -> unit
(** Override the profile of one directed link. *)

val link_profile : t -> from:int -> dst:int -> profile
(** The profile governing [from -> dst] (the default unless overridden). *)

val default_profile : t -> profile

val plan : t -> from:int -> dst:int -> float list
(** Decide the fate of one delivery on a link: a list of extra delays, one
    per copy to deliver.  [[]] means the message is dropped; [[0.0]] is an
    undisturbed delivery; two elements mean a duplicate.  Updates the
    injection counters.  On a pristine link this returns [[0.0]] without
    drawing from the RNG. *)

(** {1 Injection counters} *)

val drops : t -> int
val duplicates : t -> int
val reorders : t -> int

val delayed : t -> int
(** Deliveries that received the deterministic [extra_delay]. *)

val jittered : t -> int
(** Delivery copies that received a random [jitter] draw. *)

val total_injected : t -> int

val reset_counters : t -> unit

val pp_profile : Format.formatter -> profile -> unit
val pp : Format.formatter -> t -> unit
