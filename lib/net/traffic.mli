(** Transmission accounting.

    Counts are incremented when a transmission is {e sent}, not when it is
    delivered: under unique addressing a writer sends to all [n-1] remote
    sites whether or not they are up, which is exactly how Section 5 counts
    (e.g. an available-copy write costs [n-1] sends plus the operational
    sites' replies). *)

type t

val create : unit -> t
val reset : t -> unit

val record : t -> ?bytes:int -> Message.operation -> Message.category -> int -> unit
(** [record t ?bytes op cat k] adds [k] transmissions of category [cat] on
    behalf of operation [op], carrying [bytes] payload bytes in total
    (default 0 — callers that do not model sizes still get counts).

    Section 5 argues congestion tracks the {e number} of messages, but also
    notes a size-based comparison is "similar, though slightly less
    pronounced"; tracking both lets the harness reproduce that remark. *)

val record_rejected : t -> Message.reject -> unit
(** Count one arriving frame the hardened ingress refused to deliver,
    by reject class.  Recorded at {e receive} time, unlike sends. *)

val record_quarantined : t -> unit
(** Count one frame discarded {e undecoded} because its (receiver,
    sender) link was under poison-frame quarantine. *)

val rejected_of : t -> Message.reject -> int
val frames_rejected : t -> int
(** Sum over all reject classes.  Quarantined frames are not included:
    a quarantined frame was never decoded, so it has no reject class. *)

val frames_quarantined : t -> int

val rejected_snapshot : t -> (Message.reject * int) list
(** Non-zero reject classes, for reports. *)

val accumulate : into:t -> t -> unit
(** [accumulate ~into src] adds every cell of [src] (counts, bytes,
    rejected frames and quarantine) into [into].  Merging per-shard
    tables in shard-id order yields the same totals as a single
    unsharded run. *)

val total : t -> int
(** All transmissions since creation/reset. *)

val total_bytes : t -> int

val by_category : t -> Message.category -> int
val by_operation : t -> Message.operation -> int
val bytes_by_operation : t -> Message.operation -> int

val of_cell : t -> Message.operation -> Message.category -> int
(** Count for one (operation, category) pair. *)

val bytes_of_cell : t -> Message.operation -> Message.category -> int

val snapshot : t -> (Message.operation * Message.category * int) list
(** Non-zero cells, for reports. *)

val pp : Format.formatter -> t -> unit
(** Table of non-zero cells plus totals. *)
