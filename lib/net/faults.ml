type corruption = {
  bit_flip : float;
  truncate : float;
  garbage_prefix : float;
  garbage_suffix : float;
  splice : float;
}

let no_corruption =
  { bit_flip = 0.0; truncate = 0.0; garbage_prefix = 0.0; garbage_suffix = 0.0; splice = 0.0 }

let corruption_is_trivial c =
  c.bit_flip = 0.0 && c.truncate = 0.0 && c.garbage_prefix = 0.0 && c.garbage_suffix = 0.0
  && c.splice = 0.0

type profile = {
  drop : float;
  duplicate : float;
  reorder : float;
  jitter : Util.Dist.t;
  extra_delay : float;
  corruption : corruption;
}

let pristine =
  {
    drop = 0.0;
    duplicate = 0.0;
    reorder = 0.0;
    jitter = Util.Dist.Constant 0.0;
    extra_delay = 0.0;
    corruption = no_corruption;
  }

let persistent_corruptor = { pristine with corruption = { no_corruption with bit_flip = 1.0 } }

(* Constant 0.0 is the only jitter distribution that provably never
   perturbs a delivery; anything else makes the profile non-pristine. *)
let jitter_is_trivial = function Util.Dist.Constant 0.0 -> true | _ -> false

let is_pristine p =
  (* The jitter term was historically omitted, so a jitter-only profile
     was classified pristine and silently injected nothing; every new
     knob — corruption included — must appear here the day it is born. *)
  p.drop = 0.0 && p.duplicate = 0.0 && p.reorder = 0.0 && p.extra_delay = 0.0
  && jitter_is_trivial p.jitter
  && corruption_is_trivial p.corruption

let validate_profile p =
  let prob what x =
    if x < 0.0 || x > 1.0 || Float.is_nan x then
      Error (Printf.sprintf "%s must be a probability in [0, 1]" what)
    else Ok ()
  in
  let ( let* ) = Result.bind in
  let* () = prob "drop" p.drop in
  let* () = prob "duplicate" p.duplicate in
  let* () = prob "reorder" p.reorder in
  let* _ = Result.map_error (fun e -> "bad jitter distribution: " ^ e) (Util.Dist.validate p.jitter) in
  let* () = prob "bit_flip" p.corruption.bit_flip in
  let* () = prob "truncate" p.corruption.truncate in
  let* () = prob "garbage_prefix" p.corruption.garbage_prefix in
  let* () = prob "garbage_suffix" p.corruption.garbage_suffix in
  let* () = prob "splice" p.corruption.splice in
  if p.extra_delay < 0.0 || Float.is_nan p.extra_delay then Error "extra_delay must be non-negative"
  else Ok p

let make ?(drop = 0.0) ?(duplicate = 0.0) ?(reorder = 0.0) ?(jitter = Util.Dist.Constant 0.0)
    ?(extra_delay = 0.0) ?(corruption = no_corruption) () =
  validate_profile { drop; duplicate; reorder; jitter; extra_delay; corruption }

let make_exn ?drop ?duplicate ?reorder ?jitter ?extra_delay ?corruption () =
  match make ?drop ?duplicate ?reorder ?jitter ?extra_delay ?corruption () with
  | Ok p -> p
  | Error msg -> invalid_arg ("Faults.make: " ^ msg)

type counters = {
  mutable drops : int;
  mutable duplicates : int;
  mutable reorders : int;
  mutable delayed : int;
  mutable jittered : int;
  mutable bit_flips : int;
  mutable truncates : int;
  mutable garbage_prefixed : int;
  mutable garbage_suffixed : int;
  mutable splices : int;
  mutable corrupted : int; (* deliveries with >= 1 byte-level mutation *)
}

type t = {
  rng : Util.Prng.t;
  default : profile;
  links : (int * int, profile) Hashtbl.t;
  counters : counters;
  last_frames : (int * int, Bytes.t) Hashtbl.t; (* splice partners, per link *)
}

let create ~rng profile =
  match validate_profile profile with
  | Error msg -> invalid_arg ("Faults.create: " ^ msg)
  | Ok default ->
      {
        rng;
        default;
        links = Hashtbl.create 8;
        counters =
          {
            drops = 0;
            duplicates = 0;
            reorders = 0;
            delayed = 0;
            jittered = 0;
            bit_flips = 0;
            truncates = 0;
            garbage_prefixed = 0;
            garbage_suffixed = 0;
            splices = 0;
            corrupted = 0;
          };
        last_frames = Hashtbl.create 8;
      }

let of_seed ~seed profile = create ~rng:(Util.Prng.create seed) profile

let set_link t ~from ~dst profile =
  match validate_profile profile with
  | Error msg -> invalid_arg ("Faults.set_link: " ^ msg)
  | Ok p -> Hashtbl.replace t.links (from, dst) p

let link_profile t ~from ~dst =
  match Hashtbl.find_opt t.links (from, dst) with Some p -> p | None -> t.default

let default_profile t = t.default

(* A fault plan never perturbs the traffic counters: transmissions are
   accounted at send time, exactly as Section 5 counts them; faults only
   decide what the wire then does to the already-charged message. *)
let plan t ~from ~dst =
  let p = link_profile t ~from ~dst in
  if is_pristine p then [ 0.0 ]
  else begin
    let c = t.counters in
    (* Draw the three uniforms unconditionally so the fault stream of a link
       does not depend on which knobs are zero — only on the seed. *)
    let u_drop = Util.Prng.float t.rng in
    let u_dup = Util.Prng.float t.rng in
    let u_reorder = Util.Prng.float t.rng in
    if u_drop < p.drop then begin
      c.drops <- c.drops + 1;
      []
    end
    else begin
      let base =
        if p.extra_delay > 0.0 then begin
          c.delayed <- c.delayed + 1;
          p.extra_delay
        end
        else 0.0
      in
      (* Jitter perturbs {e every} delivery of a non-trivial profile (it
         used to fire only on a reorder, so a jitter-only profile was a
         silent no-op); the reorder knob additionally defers the delivery
         by a second, independent draw so later sends can overtake it. *)
      let jitter_draw () =
        if jitter_is_trivial p.jitter then 0.0
        else begin
          c.jittered <- c.jittered + 1;
          Util.Dist.sample p.jitter t.rng
        end
      in
      let reorder_kick u =
        if u < p.reorder then begin
          c.reorders <- c.reorders + 1;
          Util.Dist.sample p.jitter t.rng
        end
        else 0.0
      in
      let first = base +. jitter_draw () +. reorder_kick u_reorder in
      if u_dup < p.duplicate then begin
        c.duplicates <- c.duplicates + 1;
        [ first; base +. jitter_draw () +. reorder_kick (Util.Prng.float t.rng) ]
      end
      else [ first ]
    end
  end

(* Byte-level wire damage, applied at ingress to the encoded frame of one
   delivery.  Applied kinds in a fixed order — splice, truncate, garbage
   prefix, garbage suffix, bit flip — each guaranteed to actually change
   the byte string when it fires (a truncate removes >= 1 byte, garbage
   adds >= 1 byte, a flip toggles one bit), except a splice of two
   identical frames, which can reproduce the original and then counts as
   an (attempted) corruption the decoder legitimately survives. *)
let corrupt t ~from ~dst bytes =
  let p = link_profile t ~from ~dst in
  let c = p.corruption in
  if corruption_is_trivial c then (bytes, false)
  else begin
    let k = t.counters in
    (* Draw the five uniforms unconditionally so the corruption stream of
       a link does not depend on which knobs are zero — same discipline
       as [plan]. *)
    let u_splice = Util.Prng.float t.rng in
    let u_trunc = Util.Prng.float t.rng in
    let u_pre = Util.Prng.float t.rng in
    let u_suf = Util.Prng.float t.rng in
    let u_flip = Util.Prng.float t.rng in
    let prev = Hashtbl.find_opt t.last_frames (from, dst) in
    Hashtbl.replace t.last_frames (from, dst) (Bytes.copy bytes);
    let buf = ref bytes in
    let mutated = ref false in
    (if u_splice < c.splice then
       match prev with
       | Some prev when Bytes.length prev > 0 && Bytes.length !buf > 0 ->
           (* head of the previous frame on this link + tail of this one:
              two sends run together at an arbitrary cut *)
           let head = 1 + Util.Prng.int t.rng (Bytes.length prev) in
           let cut = Util.Prng.int t.rng (Bytes.length !buf + 1) in
           buf :=
             Bytes.cat (Bytes.sub prev 0 head) (Bytes.sub !buf cut (Bytes.length !buf - cut));
           mutated := true;
           k.splices <- k.splices + 1
       | _ -> () (* no partner yet: nothing to splice with *));
    (if u_trunc < c.truncate && Bytes.length !buf >= 2 then begin
       let keep = 1 + Util.Prng.int t.rng (Bytes.length !buf - 1) in
       buf := Bytes.sub !buf 0 keep;
       mutated := true;
       k.truncates <- k.truncates + 1
     end);
    let garbage n =
      let g = Bytes.create n in
      for i = 0 to n - 1 do
        Bytes.set g i (Char.chr (Util.Prng.int t.rng 256))
      done;
      g
    in
    (if u_pre < c.garbage_prefix then begin
       buf := Bytes.cat (garbage (1 + Util.Prng.int t.rng 8)) !buf;
       mutated := true;
       k.garbage_prefixed <- k.garbage_prefixed + 1
     end);
    (if u_suf < c.garbage_suffix then begin
       buf := Bytes.cat !buf (garbage (1 + Util.Prng.int t.rng 8));
       mutated := true;
       k.garbage_suffixed <- k.garbage_suffixed + 1
     end);
    (if u_flip < c.bit_flip && Bytes.length !buf > 0 then begin
       (* the only in-place kind: copy first if [buf] still aliases the
          caller's pristine frame (duplicates share the encoded buffer) *)
       if not !mutated then buf := Bytes.copy !buf;
       let i = Util.Prng.int t.rng (Bytes.length !buf) in
       let bit = Util.Prng.int t.rng 8 in
       Bytes.set !buf i (Char.chr (Char.code (Bytes.get !buf i) lxor (1 lsl bit)));
       mutated := true;
       k.bit_flips <- k.bit_flips + 1
     end);
    if !mutated then k.corrupted <- k.corrupted + 1;
    (!buf, !mutated)
  end

let drops t = t.counters.drops
let duplicates t = t.counters.duplicates
let reorders t = t.counters.reorders
let delayed t = t.counters.delayed
let jittered t = t.counters.jittered
let bit_flips t = t.counters.bit_flips
let truncates t = t.counters.truncates
let garbage_prefixed t = t.counters.garbage_prefixed
let garbage_suffixed t = t.counters.garbage_suffixed
let splices t = t.counters.splices
let corrupted_deliveries t = t.counters.corrupted

let total_injected t =
  drops t + duplicates t + reorders t + delayed t + jittered t + bit_flips t + truncates t
  + garbage_prefixed t + garbage_suffixed t + splices t

let reset_counters t =
  let c = t.counters in
  c.drops <- 0;
  c.duplicates <- 0;
  c.reorders <- 0;
  c.delayed <- 0;
  c.jittered <- 0;
  c.bit_flips <- 0;
  c.truncates <- 0;
  c.garbage_prefixed <- 0;
  c.garbage_suffixed <- 0;
  c.splices <- 0;
  c.corrupted <- 0

let pp_profile ppf p =
  Format.fprintf ppf "faults(drop=%g, dup=%g, reorder=%g, jitter=%a, delay=%g" p.drop p.duplicate
    p.reorder Util.Dist.pp p.jitter p.extra_delay;
  if not (corruption_is_trivial p.corruption) then
    Format.fprintf ppf ", corrupt(flip=%g, trunc=%g, pre=%g, suf=%g, splice=%g)"
      p.corruption.bit_flip p.corruption.truncate p.corruption.garbage_prefix
      p.corruption.garbage_suffix p.corruption.splice;
  Format.fprintf ppf ")"

let pp ppf t =
  Format.fprintf ppf
    "@[<v>%a@,\
     injected: %d drops, %d duplicates, %d reorders, %d delayed, %d jittered@,\
     corrupted: %d deliveries (%d flips, %d truncates, %d gar-pre, %d gar-suf, %d splices)@]"
    pp_profile t.default (drops t) (duplicates t) (reorders t) (delayed t) (jittered t)
    (corrupted_deliveries t) (bit_flips t) (truncates t) (garbage_prefixed t)
    (garbage_suffixed t) (splices t)
